// Command upcreport reduces raw µPC histograms (written by vaxsim) into
// the paper's tables — the "additional interpretation of the raw histogram
// data" of §2.2. Multiple histograms are summed into a composite, as the
// paper does for its five workloads.
//
// Usage:
//
//	upcreport hist1.upc [hist2.upc ...]
//	upcreport -table 8 composite.upc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vax780/internal/cli"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/report"
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1,2,3,5,7,8,9 or all")
	hot := flag.Int("hot", 0, "also print the N hottest control-store locations")
	csmap := flag.Bool("map", false, "print the control-store map (microcode listing) and exit")
	flag.Parse()
	if *csmap {
		fmt.Print(cpu.CS.Listing())
		return
	}
	if flag.NArg() == 0 {
		fatalf("need at least one histogram file")
	}
	comp := &core.Histogram{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		h, err := core.LoadHistogram(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		comp.Add(h)
	}
	r := core.Reduce(comp, cpu.CS)
	w := os.Stdout

	show := func(n string) bool { return *table == "all" || *table == n }

	fmt.Fprintf(w, "Composite of %d histogram(s): %d instructions, %d cycles, CPI %.3f\n\n",
		flag.NArg(), r.Instructions, r.Cycles, r.CPI())

	if show("1") {
		var rows [][]string
		for g := vax.Group(0); g < vax.NumGroups; g++ {
			rows = append(rows, []string{g.String(), report.Pct(100 * r.GroupFreq(g))})
		}
		report.Table(w, "Table 1: Opcode Group Frequency (percent)", []string{"group", "freq"}, rows)
	}
	if show("2") {
		var rows [][]string
		for c := vax.PCClass(1); c < vax.NumPCClasses; c++ {
			st := r.PCClasses[c]
			if st.Entries == 0 {
				continue
			}
			rows = append(rows, []string{c.String(),
				report.Pct(100 * float64(st.Entries) / float64(r.Instructions)),
				report.Pct(st.PctTaken())})
		}
		report.Table(w, "Table 2: PC-Changing Instructions", []string{"type", "% of all", "% taken"}, rows)
	}
	if show("3") {
		s1, s26, bd := r.SpecsPerInstr()
		report.Table(w, "Table 3: Specifiers per Average Instruction",
			[]string{"object", "per instr"}, [][]string{
				{"First specifiers", report.F(s1, 3)},
				{"Other specifiers", report.F(s26, 3)},
				{"Branch displacements", report.F(bd, 3)},
			})
	}
	if show("5") {
		var rows [][]string
		for _, row := range r.MemOps {
			rows = append(rows, []string{row.Label, report.F(row.Reads, 3), report.F(row.Writes, 3)})
		}
		report.Table(w, "Table 5: Reads and Writes per Average Instruction",
			[]string{"source", "reads", "writes"}, rows)
	}
	if show("7") {
		h := r.Headway
		report.Table(w, "Table 7: Event Headway (instructions)",
			[]string{"event", "headway"}, [][]string{
				{"Software interrupt requests", report.F(h.SoftIntHeadway(), 0)},
				{"HW and SW interrupts", report.F(h.InterruptHeadway(), 0)},
				{"Context switches", report.F(h.CtxSwitchHeadway(), 0)},
			})
	}
	if show("8") {
		var rows [][]string
		for row := ucode.Row(0); row < ucode.NumRows; row++ {
			c := r.Timing[row]
			rows = append(rows, []string{row.String(),
				report.F(c.Compute, 3), report.F(c.Read, 3), report.F(c.RStall, 3),
				report.F(c.Write, 3), report.F(c.WStall, 3), report.F(c.IBStall, 3),
				report.F(c.Total(), 3)})
		}
		t := r.TimingTotal
		rows = append(rows, []string{"TOTAL",
			report.F(t.Compute, 3), report.F(t.Read, 3), report.F(t.RStall, 3),
			report.F(t.Write, 3), report.F(t.WStall, 3), report.F(t.IBStall, 3),
			report.F(t.Total(), 3)})
		report.Table(w, "Table 8: Average VAX Instruction Timing (cycles per instruction)",
			[]string{"row", "compute", "read", "r-stall", "write", "w-stall", "ib-stall", "total"}, rows)
	}
	if show("9") {
		var rows [][]string
		for g := vax.Group(0); g < vax.NumGroups; g++ {
			c := r.WithinGroup(g)
			rows = append(rows, []string{g.String(),
				report.F(c.Compute, 2), report.F(c.Read, 2), report.F(c.RStall, 2),
				report.F(c.Write, 2), report.F(c.WStall, 2), report.F(c.Total(), 2)})
		}
		report.Table(w, "Table 9: Cycles per Instruction Within Each Group",
			[]string{"group", "compute", "read", "r-stall", "write", "w-stall", "total"}, rows)
	}
	if show("8") {
		// A bar view of where the time goes (rows of Table 8).
		fmt.Fprintln(w, "Time distribution (cycles per instruction by row):")
		for row := ucode.Row(0); row < ucode.NumRows; row++ {
			total := r.Timing[row].Total()
			bar := int(total * 8)
			if bar > 64 {
				bar = 64
			}
			fmt.Fprintf(w, "  %-11v %6.3f %s\n", row, total, strings.Repeat("#", bar))
		}
		fmt.Fprintln(w)
	}
	if *hot > 0 {
		var rows [][]string
		for _, s := range core.HotSpots(comp, cpu.CS, *hot) {
			rows = append(rows, []string{
				s.Name, s.Row.String(), s.Class.String(),
				fmt.Sprintf("%d", s.Execs), fmt.Sprintf("%d", s.Stalls),
				fmt.Sprintf("%.2f%%", 100*s.Share),
			})
		}
		report.Table(w, fmt.Sprintf("Hottest %d control-store locations", *hot),
			[]string{"location", "row", "class", "execs", "stalls", "share"}, rows)
	}
	if !strings.Contains("1 2 3 5 7 8 9 all", *table) {
		fatalf("unknown table %q", *table)
	}
}

func fatalf(format string, args ...any) {
	cli.Fatalf("upcreport", format, args...)
}
