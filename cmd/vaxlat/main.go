// Command vaxlat emits the static per-opcode latency table — the
// speedup regression oracle of DESIGN.md §16 — as committed
// latency.json (machine-readable, byte-deterministic) and LATENCY.md
// (the uops.info-style human rendering). The table is derived by the
// ulat analyzer from the execute microroutines themselves; the dynamic
// cross-check in internal/experiments must land inside its bounds, and
// CI regenerates both files and fails on any drift against the
// committed copies, so a change to any microroutine's cycle counting is
// visible in review even when no test asserts the specific number.
//
// Usage:
//
//	go run ./cmd/vaxlat           # rewrite LATENCY.md + latency.json at the module root
//	go run ./cmd/vaxlat -check    # regenerate in memory and diff against the committed copies
//
// Contract:
//
//   - exit 0: files written (or, with -check, both committed copies are
//     byte-identical to the regeneration and the derivation is clean);
//   - exit 1: -check found drift, or the derivation reported findings
//     (an underivable opcode is not a valid oracle);
//   - exit 2: the load or derivation itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vax780/internal/analysis"
	"vax780/internal/cli"
	"vax780/internal/latency"
)

func main() {
	check := flag.Bool("check", false, "diff the regenerated table against the committed files instead of writing")
	flag.Parse()

	root, err := latency.Root("")
	if err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	pkgs, err := analysis.LoadModule(root, []string{"./..."})
	if err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	tab, diags, err := analysis.DeriveLatencyTable(pkgs)
	if err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		cli.Exitf(1, "vaxlat", "%d derivation findings; the table is not a valid oracle", len(diags))
	}

	jsonBytes, err := tab.Marshal()
	if err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	mdBytes := []byte(render(tab))

	jsonPath := filepath.Join(root, latency.File)
	mdPath := filepath.Join(root, latency.Doc)
	if *check {
		bad := false
		for _, f := range []struct {
			path string
			want []byte
		}{{jsonPath, jsonBytes}, {mdPath, mdBytes}} {
			got, err := os.ReadFile(f.path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vaxlat: %v\n", err)
				bad = true
				continue
			}
			if string(got) != string(f.want) {
				fmt.Fprintf(os.Stderr, "vaxlat: %s drifted from the microroutines; regenerate with `go run ./cmd/vaxlat`\n", f.path)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
		fmt.Printf("vaxlat: %d opcodes, %d modes — committed table matches the microroutines\n",
			len(tab.Opcodes), len(tab.Modes))
		return
	}

	if err := os.WriteFile(jsonPath, jsonBytes, 0o644); err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	if err := os.WriteFile(mdPath, mdBytes, 0o644); err != nil {
		cli.Exitf(2, "vaxlat", "%v", err)
	}
	fmt.Printf("vaxlat: wrote %s and %s (%d opcodes, %d modes)\n",
		latency.File, latency.Doc, len(tab.Opcodes), len(tab.Modes))
}

// classOrder fixes the column order of the rendering: the execute-phase
// classes in rough pipeline order, then anything the derivation ever
// produces beyond them, alphabetically.
var classOrder = []string{"ClassCompute", "ClassRead", "ClassWrite", "ClassDispatch"}

func classColumns(tab *latency.Table) []string {
	seen := make(map[string]bool)
	for _, c := range classOrder {
		seen[c] = true
	}
	var extra []string
	note := func(m map[string]latency.Bound) {
		for c := range m {
			if !seen[c] {
				seen[c] = true
				extra = append(extra, c)
			}
		}
	}
	for _, op := range tab.Opcodes {
		note(op.Classes)
		for _, l := range op.Loops {
			for c := range l.Classes {
				if !seen[c] {
					seen[c] = true
					extra = append(extra, c)
				}
			}
		}
	}
	for _, mo := range tab.Modes {
		note(mo.Classes)
	}
	sort.Strings(extra)
	return append(append([]string{}, classOrder...), extra...)
}

func bound(b latency.Bound) string {
	if b.Min == b.Max {
		return fmt.Sprintf("%d", b.Min)
	}
	return fmt.Sprintf("%d–%d", b.Min, b.Max)
}

func render(tab *latency.Table) string {
	var sb strings.Builder
	cols := classColumns(tab)
	short := func(c string) string { return strings.TrimPrefix(c, "Class") }

	sb.WriteString("# Per-opcode latency table\n\n")
	sb.WriteString("Static execute-phase microcycle bounds per `ucode.Class`, derived from the\n")
	sb.WriteString("microroutines by the ulat analyzer (DESIGN.md §16). `min–max` spans the\n")
	sb.WriteString("paths through the routine; a loop term `+k×var` relaxes the upper bound of\n")
	sb.WriteString("its classes by k cycles per iteration of the data-dependent loop scaled by\n")
	sb.WriteString("`var`. Service rows (Mem Mgmt, Int+Except, Abort) and IB-stall/marker\n")
	sb.WriteString("cycles are excluded on both sides of the oracle. ⚖ marks FPA-configuration\n")
	sb.WriteString("scaled costs (bounds hold for the default FPA-present machine).\n")
	sb.WriteString("\nRegenerate with `go run ./cmd/vaxlat`; CI fails on drift; the dynamic\n")
	sb.WriteString("cross-check is `go test -run TestLatencyOracle ./internal/experiments`.\n\n")

	sb.WriteString("## Opcodes\n\n")
	sb.WriteString("| Opcode | Row |")
	for _, c := range cols {
		sb.WriteString(" " + short(c) + " |")
	}
	sb.WriteString(" Loop terms |\n")
	sb.WriteString("|---|---|")
	for range cols {
		sb.WriteString("---|")
	}
	sb.WriteString("---|\n")
	for _, op := range tab.Opcodes {
		name := op.Name
		if op.Scaled {
			name += " ⚖"
		}
		row := strings.TrimPrefix(op.Row, "Row")
		sb.WriteString(fmt.Sprintf("| %s | %s |", name, row))
		for _, c := range cols {
			if b, ok := op.Classes[c]; ok {
				sb.WriteString(" " + bound(b) + " |")
			} else {
				sb.WriteString(" · |")
			}
		}
		var terms []string
		for _, l := range op.Loops {
			cs := make([]string, 0, len(l.Classes))
			for c := range l.Classes {
				cs = append(cs, c)
			}
			sort.Strings(cs)
			for _, c := range cs {
				terms = append(terms, fmt.Sprintf("+%d×%s %s", l.Classes[c], l.Var, short(c)))
			}
		}
		if len(terms) == 0 {
			sb.WriteString(" |\n")
		} else {
			sb.WriteString(" " + strings.Join(terms, ", ") + " |\n")
		}
	}

	if len(tab.Modes) > 0 {
		sb.WriteString("\n## Addressing modes (read access, longword operand)\n\n")
		sb.WriteString("| Mode |")
		for _, c := range cols {
			sb.WriteString(" " + short(c) + " |")
		}
		sb.WriteString("\n|---|")
		for range cols {
			sb.WriteString("---|")
		}
		sb.WriteString("\n")
		for _, mo := range tab.Modes {
			sb.WriteString(fmt.Sprintf("| %s |", strings.TrimPrefix(mo.Mode, "Mode")))
			for _, c := range cols {
				if b, ok := mo.Classes[c]; ok {
					sb.WriteString(" " + bound(b) + " |")
				} else {
					sb.WriteString(" · |")
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
