// Command vaxdbg loads a program into a bare machine and opens the
// operator's console: stepping, breakpoints, register and memory
// examination, disassembly, and live histogram summaries.
//
// Usage:
//
//	vaxdbg prog.s
//	echo "b 1006
//	c
//	r
//	q" | vaxdbg prog.s       # scripted session
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780/internal/asm"
	"vax780/internal/cli"
	"vax780/internal/console"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
)

func main() {
	org := flag.Uint64("org", 0x1000, "load address")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("need one assembly source file")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	im, err := asm.Assemble(uint32(*org), string(src))
	if err != nil {
		fatalf("assemble: %v", err)
	}
	m := cpu.New(cpu.Config{MemBytes: 1 << 20})
	mon := core.NewMonitor()
	mon.Start()
	m.AttachProbe(mon)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)

	fmt.Fprintf(os.Stderr, "vaxdbg: %d bytes at %#x; type ? for help\n", len(im.Bytes), im.Org)
	c := console.New(m, mon, os.Stdout)
	if err := c.Run(os.Stdin); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxdbg", format, args...)
}
