// Command vaxtrace captures a reference trace from a workload and runs
// trace-driven design studies over it: the cache-geometry sweep of the
// 1983 companion cache study and the tagged-TB policy question of §3.4.
//
// Usage:
//
//	vaxtrace -workload timesharing-research -cycles 2000000
//	vaxtrace -workload rte-scientific -o refs.trc       # save the trace
//	vaxtrace -replay refs.trc                           # sweep a saved trace
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780/internal/cache"
	"vax780/internal/cli"
	"vax780/internal/report"
	"vax780/internal/trace"
	"vax780/internal/vmos"
	"vax780/internal/workload"
)

func main() {
	wl := flag.String("workload", "timesharing-research", "workload profile to trace")
	cycles := flag.Uint64("cycles", 2_000_000, "cycle budget for capture")
	out := flag.String("o", "", "save the captured trace to this file")
	replay := flag.String("replay", "", "skip capture; sweep this saved trace")
	maxEvents := flag.Int("max-events", 4_000_000, "trace event cap")
	flag.Parse()

	var tr *trace.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		tr, err = trace.Load(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		p, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		sys := vmos.NewSystem(vmos.Config{IncludeNull: true})
		for i := 0; i < p.Procs; i++ {
			im, err := workload.Generate(workload.GenConfig{
				Mix: p.Mix, Blocks: p.Blocks, LoopIter: p.LoopIter,
				StringLen: p.StringLen, Seed: p.Seed + int64(i)*1000,
			})
			if err != nil {
				fatalf("%v", err)
			}
			if _, err := sys.AddProcess(fmt.Sprintf("p%d", i), im); err != nil {
				fatalf("%v", err)
			}
		}
		if err := sys.Boot(); err != nil {
			fatalf("%v", err)
		}
		sys.SetScriptText(p.Script)
		sys.QueueTerminalEvents(p.TerminalSchedule(*cycles))
		rec := &trace.Recorder{MaxEvents: *maxEvents}
		rec.Attach(sys.Machine())
		res := sys.Run(*cycles)
		if res.Err != nil {
			fatalf("run: %v", res.Err)
		}
		tr = &rec.Trace
		fmt.Fprintf(os.Stderr, "vaxtrace: captured %d events over %d instructions (truncated=%v)\n",
			len(tr.Events), res.Instructions, rec.Truncated)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		if err := tr.Save(f); err != nil {
			fatalf("%v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "vaxtrace: trace saved to %s\n", *out)
	}

	// Cache design sweep (the 1983 study's axes: size and associativity).
	var cfgs []cache.Config
	for _, kb := range []int{2, 4, 8, 16, 32, 64} {
		for _, ways := range []int{1, 2, 4} {
			cfgs = append(cfgs, cache.Config{SizeBytes: kb * 1024, Ways: ways, BlockBytes: 8})
		}
	}
	pts := trace.SweepCache(tr, cfgs)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d KB", p.Config.SizeBytes/1024),
			fmt.Sprintf("%d-way", p.Config.Ways),
			fmt.Sprintf("%.2f%%", 100*p.MissRatio),
			fmt.Sprintf("%.2f%%", 100*p.IMiss),
			fmt.Sprintf("%.2f%%", 100*p.DMiss),
		})
	}
	report.Table(os.Stdout, "Trace-driven cache sweep (read miss ratios; the 11/780 is 8 KB 2-way)",
		[]string{"size", "assoc", "miss", "I-miss", "D-miss"}, rows)

	// TB geometry sweep (Clark & Emer's TB-study axes).
	var tgs []trace.TBGeometry
	for _, sets := range []int{8, 16, 32, 64, 128} {
		tgs = append(tgs, trace.TBGeometry{SetsPerHalf: sets, Ways: 2, SplitHalves: true, FlushOnCtx: true})
	}
	tpts := trace.SweepTB(tr, tgs)
	trows := make([][]string, 0, len(tpts))
	for _, p := range tpts {
		trows = append(trows, []string{
			fmt.Sprintf("%d entries", 2*p.Geometry.SetsPerHalf*p.Geometry.Ways),
			fmt.Sprintf("%d", p.Misses),
			fmt.Sprintf("%.3f%%", 100*p.MissRatio),
		})
	}
	report.Table(os.Stdout, "Trace-driven TB sweep (2-way split halves; the 11/780 is 128 entries)",
		[]string{"size", "misses", "miss ratio"}, trows)

	// TB flush policy.
	flushed := trace.ReplayTB(tr)
	tagged := trace.ReplayTBNoFlush(tr)
	fm := flushed.Misses[0] + flushed.Misses[1]
	tm := tagged.Misses[0] + tagged.Misses[1]
	lookups := fm + flushed.Hits[0] + flushed.Hits[1]
	fmt.Printf("TB policy (%d lookups, %d context-switch flushes):\n", lookups, flushed.ProcessFlushes)
	fmt.Printf("  flush on LDPCTX (11/780): %d misses (%.3f%%)\n", fm, 100*float64(fm)/float64(lookups))
	fmt.Printf("  address-space tagged:     %d misses (%.3f%%)\n", tm, 100*float64(tm)/float64(lookups))
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxtrace", format, args...)
}
