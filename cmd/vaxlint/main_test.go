package main

import (
	"strings"
	"testing"

	"vax780/internal/analysis"
)

// TestSelectAnalyzers pins the -run contract: valid names resolve in
// order, and an unknown name is an error that lists every valid name
// (the driver turns it into exit 2) rather than silently running an
// empty selection.
func TestSelectAnalyzers(t *testing.T) {
	all := analysis.All()

	got, err := selectAnalyzers("goleak, ctxflow", all)
	if err != nil {
		t.Fatalf("valid spec errored: %v", err)
	}
	if len(got) != 2 || got[0].Name != "goleak" || got[1].Name != "ctxflow" {
		t.Fatalf("selectAnalyzers picked %v, want [goleak ctxflow]", got)
	}

	_, err = selectAnalyzers("gloeak", all)
	if err == nil {
		t.Fatal("unknown analyzer name did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown analyzer "gloeak"`) {
		t.Errorf("error %q does not name the bad analyzer", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error %q does not list valid name %q", msg, a.Name)
		}
	}

	if _, err := selectAnalyzers(" , ", all); err == nil {
		t.Error("blank spec did not error")
	}
}
