// Command vaxlint statically proves the simulator's invariants: opcode
// table ↔ execute-microroutine registration, microword name references ↔
// control-store declarations, paper headline numbers ↔ internal/paper,
// the single-threaded Machine/probe contract, determinism of the
// measurement core (no wall clock, no global rand, no map iteration
// reachable from the simulation loop, serializers or checkpoint paths),
// checkpoint state-completeness, typed boundary errors, and exhaustive
// enum switches — plus the µflow attribution proofs: every microword
// counted on the channel its class permits (uwflow), no structurally
// zero histogram bucket (uwdead), and per-row scoping of the exec files
// (rowscope) — the hot-path performance contract (hotpath/hotbox), and
// the concflow concurrency contracts over the farm: every spawned
// goroutine has a guaranteed exit path (goleak), every channel exactly
// one closing owner with no send reachable after the close (chanprot),
// every blocking op in context-carrying code cancellation-guarded
// (ctxflow), and worker-owned state untouched outside its goroutine
// until the merge barrier (onewriter) — and the latency-oracle
// derivation (ulat): static per-opcode microcycle bounds from every
// registered microroutine, the table committed as latency.json and
// cross-checked dynamically (DESIGN.md §16). It is a multichecker-style
// driver for the analyzers in internal/analysis and is part of the
// tier-1 verify (Makefile `check`); the suite runs with one goroutine
// per analyzer, findings merged into one deterministic position order.
//
// Usage:
//
//	go run ./cmd/vaxlint ./...                  # whole module (the normal form)
//	go run ./cmd/vaxlint -vet=false ./...       # skip the standard go vet passes
//	go run ./cmd/vaxlint -run determinism ./... # only the named analyzers
//	go run ./cmd/vaxlint -json ./...            # machine-readable findings
//	go run ./cmd/vaxlint -sarif ./...           # SARIF 2.1.0 log (CI code scanning)
//	go run ./cmd/vaxlint -allows ./...          # list every justified suppression
//	go run ./cmd/vaxlint -list                  # show the suite
//
// Contract:
//
//   - exit 0: the tree is clean — no analyzer reported a finding (and go
//     vet passed, unless -vet=false);
//   - exit 1: findings were reported (or go vet failed); with -json each
//     finding is one JSON object per line on stdout, of the form
//     {"file":...,"line":...,"col":...,"analyzer":...,"message":...},
//     findings only — vet output stays on stderr; with -sarif stdout is
//     one SARIF 2.1.0 log built from the same findings (emitted on exit
//     0 too, with an empty results array, so CI can upload it
//     unconditionally); -json and -sarif are mutually exclusive;
//   - exit 2: the load itself failed (bad pattern, unparseable or
//     untypeable source, unknown -run name): no findings were computed
//     and the tree's health is unknown.
//
// -allows is the audit view of the suppression layer: instead of running
// the analyzers it lists every //vaxlint:allow note in the load — one
// line per note, "file:line: analyzer[,analyzer]: reason" — sorted by
// file then line, so the set of accepted exceptions is reviewable as a
// whole and diffable between revisions. Exit 0 regardless of count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"vax780/internal/analysis"
	"vax780/internal/cli"
)

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// selectAnalyzers resolves a comma-separated -run spec against the
// suite. An unknown or empty name is an error that lists the valid
// names, so a typo exits 2 instead of silently running an empty (or
// wrong) selection.
func selectAnalyzers(spec string, all []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	names := make([]string, len(all))
	for i, a := range all {
		byName[a.Name] = a
		names[i] = a.Name
	}
	valid := strings.Join(names, ", ")
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("empty analyzer name in -run %q; valid names: %s", spec, valid)
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q; valid names: %s", name, valid)
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("-run %q selected no analyzers; valid names: %s", spec, valid)
	}
	return selected, nil
}

func main() {
	runVet := flag.Bool("vet", true, "also run the standard `go vet` passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout")
	allows := flag.Bool("allows", false, "list every //vaxlint:allow suppression and exit")
	flag.Parse()
	if *jsonOut && *sarifOut {
		cli.Exitf(2, "vaxlint", "-json and -sarif are mutually exclusive")
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		selected, err := selectAnalyzers(*runNames, analyzers)
		if err != nil {
			cli.Exitf(2, "vaxlint", "%v", err)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *allows {
		pkgs, err := analysis.LoadModule(".", patterns)
		if err != nil {
			cli.Exitf(2, "vaxlint", "%v", err)
		}
		for _, e := range analysis.CollectAllows(pkgs) {
			fmt.Printf("%s:%d: %s: %s\n",
				e.Pos.Filename, e.Pos.Line, strings.Join(e.Analyzers, ","), e.Reason)
		}
		return
	}

	exitCode := 0
	if *runVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stderr // keep stdout JSON-clean
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			exitCode = 1
		}
	}

	pkgs, err := analysis.LoadModule(".", patterns)
	if err != nil {
		cli.Exitf(2, "vaxlint", "%v", err)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		cli.Exitf(2, "vaxlint", "%v", err)
	}
	findings := make([]jsonDiag, len(diags))
	for i, d := range diags {
		findings[i] = jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sarifFrom(analyzers, findings))
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			_ = enc.Encode(f)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		exitCode = 1
	}
	os.Exit(exitCode)
}
