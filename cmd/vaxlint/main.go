// Command vaxlint statically proves the simulator's cross-table
// invariants: opcode table ↔ execute-microroutine registration, microword
// name references ↔ control-store declarations, paper headline numbers ↔
// internal/paper, and the single-threaded Machine/probe contract. It is a
// multichecker-style driver for the analyzers in internal/analysis and is
// part of the tier-1 verify (see Makefile `check`).
//
// Usage:
//
//	go run ./cmd/vaxlint ./...          # whole module (the normal form)
//	go run ./cmd/vaxlint -vet=false .   # skip the standard go vet passes
//	go run ./cmd/vaxlint -list          # show the suite
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding (or go vet fails), 2 on a load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"vax780/internal/analysis"
	"vax780/internal/cli"
)

func main() {
	runVet := flag.Bool("vet", true, "also run the standard `go vet` passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exitCode := 0
	if *runVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			exitCode = 1
		}
	}

	pkgs, err := analysis.LoadModule(".", patterns)
	if err != nil {
		cli.Exitf(2, "vaxlint", "%v", err)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		cli.Exitf(2, "vaxlint", "%v", err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		exitCode = 1
	}
	os.Exit(exitCode)
}
