package main

import (
	"os"
	"path/filepath"

	"vax780/internal/analysis"
)

// SARIF 2.1.0 output (-sarif): the minimal log shape code-scanning
// uploaders accept — one run, the suite as the rule table, one result
// per finding. Results are built from the same jsonDiag findings the
// -json mode emits, so the two machine-readable modes cannot drift.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifFrom assembles the log: every analyzer that ran becomes a rule
// (found something or not), every finding a result. An empty findings
// slice still yields a valid log with "results": [].
func sarifFrom(analyzers []*analysis.Analyzer, findings []jsonDiag) sarifLog {
	drv := sarifDriver{Name: "vaxlint", Rules: []sarifRule{}}
	for _, a := range analyzers {
		drv.Rules = append(drv.Rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(f.File)},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: drv}, Results: results}},
	}
}

// relPath renders a finding path repo-relative with forward slashes (the
// artifact URI form scanners expect), falling back to the path as given.
func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(p)
}

func hasDotDotPrefix(p string) bool {
	return len(p) >= 3 && p[:3] == ".."+string(filepath.Separator)
}
