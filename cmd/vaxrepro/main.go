// Command vaxrepro runs the full reproduction: the five-workload composite
// measured by the µPC histogram monitor, reduced into every table and
// figure of Emer & Clark (ISCA 1984) and compared against the published
// numbers.
//
// Long reproductions can be supervised: -checkpoint enables periodic
// crash-safe snapshots (one subdirectory per workload), -deadline bounds
// the wall-clock time, SIGINT/SIGTERM trigger a final checkpoint before a
// clean non-zero exit, and -resume continues an interrupted reproduction
// with tables bit-identical to an uninterrupted run.
//
// Usage:
//
//	vaxrepro [-cycles N] [-only T8] [-summary]
//	vaxrepro -cycles 8000000 -checkpoint ckpt/ -deadline 30m
//	vaxrepro -resume -checkpoint ckpt/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vax780/internal/cli"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/experiments"
	"vax780/internal/report"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

func main() {
	cycles := flag.Uint64("cycles", 8_000_000, "cycles to run per workload (five workloads total)")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. T8, F1, S4.2)")
	summary := flag.Bool("summary", false, "print only the pass/fail summary")
	perWorkload := flag.Bool("per-workload", false, "also print per-workload variation (the paper reports only the composite)")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: enables periodic crash-safe snapshots, one subdirectory per workload")
	ckptEvery := flag.Uint64("checkpoint-every", workload.DefaultCheckpointEvery, "cycles between automatic checkpoints")
	resume := flag.Bool("resume", false, "resume an interrupted reproduction from the -checkpoint directory")
	deadline := flag.Duration("deadline", 0, "wall-clock budget; an expired deadline checkpoints and exits non-zero")
	flag.Parse()

	if *resume && *ckptDir == "" {
		fatalf("-resume requires -checkpoint <dir>")
	}

	fmt.Fprintf(os.Stderr, "measuring composite: 5 workloads x %d cycles (%.1f simulated seconds)...\n",
		*cycles, float64(*cycles*5)*float64(cpu.CycleNanoseconds)/1e9)
	var ctx *experiments.Context
	if *ckptDir != "" || *deadline != 0 {
		runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		sup := workload.Supervisor{CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Deadline: *deadline}
		comp, err := workload.RunCompositeSupervised(runCtx, *cycles, cpu.Config{}, sup, *resume)
		if err != nil {
			var intr *workload.Interrupted
			if errors.As(err, &intr) && *ckptDir != "" {
				fatalf("%v (resume with: vaxrepro -resume -checkpoint %s)", intr, *ckptDir)
			}
			fatalf("%v", err)
		}
		ctx = experiments.NewContextFromComposite(comp, cpu.Config{})
	} else {
		var err error
		ctx, err = experiments.NewContext(*cycles, cpu.Config{})
		if err != nil {
			fatalf("%v", err)
		}
	}
	outs := experiments.RunAll(ctx)
	for _, o := range outs {
		if *only != "" && !strings.EqualFold(o.ID, *only) {
			continue
		}
		if !*summary {
			fmt.Printf("==== %s: %s ====\n\n%s\n", o.ID, o.Title, o.Text)
		}
	}
	if *perWorkload {
		var rows [][]string
		for _, run := range ctx.Comp.Runs {
			r := core.Reduce(run.Hist, cpu.CS)
			rows = append(rows, []string{
				run.Profile.Name,
				fmt.Sprintf("%d", r.Instructions),
				fmt.Sprintf("%.2f", r.CPI()),
				fmt.Sprintf("%.1f%%", 100*r.GroupFreq(vax.GroupSimple)),
				fmt.Sprintf("%.1f%%", 100*r.GroupFreq(vax.GroupFloat)),
				fmt.Sprintf("%.2f%%", 100*r.GroupFreq(vax.GroupCharacter)),
				fmt.Sprintf("%.3f", r.TBMiss.PerInstr(r.Instructions)),
			})
		}
		report.Table(os.Stdout, "Per-workload variation (not published in the paper; composite above)",
			[]string{"workload", "instructions", "CPI", "simple", "float", "char", "tb-miss/instr"}, rows)
	}
	fmt.Println(experiments.Summary(outs))
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxrepro", format, args...)
}
