// Command vaxrepro runs the full reproduction: the five-workload composite
// measured by the µPC histogram monitor, reduced into every table and
// figure of Emer & Clark (ISCA 1984) and compared against the published
// numbers.
//
// Usage:
//
//	vaxrepro [-cycles N] [-only T8] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/experiments"
	"vax780/internal/report"
	"vax780/internal/vax"
)

func main() {
	cycles := flag.Uint64("cycles", 8_000_000, "cycles to run per workload (five workloads total)")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. T8, F1, S4.2)")
	summary := flag.Bool("summary", false, "print only the pass/fail summary")
	perWorkload := flag.Bool("per-workload", false, "also print per-workload variation (the paper reports only the composite)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "measuring composite: 5 workloads x %d cycles (%.1f simulated seconds)...\n",
		*cycles, float64(*cycles*5)*float64(cpu.CycleNanoseconds)/1e9)
	ctx, err := experiments.NewContext(*cycles, cpu.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxrepro:", err)
		os.Exit(1)
	}
	outs := experiments.RunAll(ctx)
	for _, o := range outs {
		if *only != "" && !strings.EqualFold(o.ID, *only) {
			continue
		}
		if !*summary {
			fmt.Printf("==== %s: %s ====\n\n%s\n", o.ID, o.Title, o.Text)
		}
	}
	if *perWorkload {
		var rows [][]string
		for _, run := range ctx.Comp.Runs {
			r := core.Reduce(run.Hist, cpu.CS)
			rows = append(rows, []string{
				run.Profile.Name,
				fmt.Sprintf("%d", r.Instructions),
				fmt.Sprintf("%.2f", r.CPI()),
				fmt.Sprintf("%.1f%%", 100*r.GroupFreq(vax.GroupSimple)),
				fmt.Sprintf("%.1f%%", 100*r.GroupFreq(vax.GroupFloat)),
				fmt.Sprintf("%.2f%%", 100*r.GroupFreq(vax.GroupCharacter)),
				fmt.Sprintf("%.3f", r.TBMiss.PerInstr(r.Instructions)),
			})
		}
		report.Table(os.Stdout, "Per-workload variation (not published in the paper; composite above)",
			[]string{"workload", "instructions", "CPI", "simple", "float", "char", "tb-miss/instr"}, rows)
	}
	fmt.Println(experiments.Summary(outs))
}
