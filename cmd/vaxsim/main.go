// Command vaxsim runs one workload (or a user program) on the simulated
// VAX-11/780 under the µPC histogram monitor and writes the raw histogram
// to a file for later reduction with upcreport — the paper's two-step
// measure-then-interpret flow (§2.2).
//
// Workload runs can be supervised: -checkpoint enables periodic crash-safe
// snapshots, -deadline bounds the wall-clock time, SIGINT/SIGTERM trigger
// a final checkpoint before a clean non-zero exit, and -resume continues
// from the newest snapshot with results bit-identical to an uninterrupted
// run.
//
// Usage:
//
//	vaxsim -workload rte-commercial -cycles 5000000 -o hist.upc
//	vaxsim -program prog.s -cycles 1000000 -o hist.upc
//	vaxsim -workload rte-commercial -inject "seed=7,mem=0.0001,sbi=1/50000"
//	vaxsim -workload rte-commercial -checkpoint ckpt/ -deadline 30m
//	vaxsim -resume -checkpoint ckpt/ -o hist.upc
//	vaxsim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vax780/internal/asm"
	"vax780/internal/cli"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "workload profile to run (see -list)")
	prog := flag.String("program", "", "assembly source file to run bare (no OS)")
	cycles := flag.Uint64("cycles", 5_000_000, "cycle budget")
	out := flag.String("o", "hist.upc", "output histogram file")
	list := flag.Bool("list", false, "list workload profiles")
	stats := flag.Bool("stats", false, "print the hardware statistics report")
	inject := flag.String("inject", "", `fault-injection spec, e.g. "seed=7,mem=0.0001,sbi=1/50000" (see internal/fault)`)
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: enables periodic crash-safe snapshots (workload runs only)")
	ckptEvery := flag.Uint64("checkpoint-every", workload.DefaultCheckpointEvery, "cycles between automatic checkpoints")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in the -checkpoint directory instead of starting fresh")
	deadline := flag.Duration("deadline", 0, "wall-clock budget; an expired deadline checkpoints and exits non-zero")
	flag.Parse()

	var fcfg *fault.Config
	if *inject != "" {
		c, err := fault.ParseSpec(*inject)
		if err != nil {
			fatalf("bad -inject spec: %v", err)
		}
		fcfg = &c
	}

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-24s %-18s %2d users, %d processes\n", p.Name, p.Kind, p.Users, p.Procs)
		}
		return
	}

	var hist *core.Histogram
	switch {
	case *resume:
		if *ckptDir == "" {
			fatalf("-resume requires -checkpoint <dir>")
		}
		res := runSupervised(nil, *ckptDir, *ckptEvery, *deadline, true, nil, 0)
		hist = res.Hist
		fmt.Fprintf(os.Stderr, "vaxsim: %s (resumed): %d instructions, %d cycles (%.2f CPI)\n",
			res.Profile.Name, res.Instructions, res.Cycles, float64(res.Cycles)/float64(res.Instructions))
	case *wl != "":
		p, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q (try -list)", *wl)
		}
		var res *workload.Result
		if *ckptDir != "" || *deadline != 0 {
			res = runSupervised(&p, *ckptDir, *ckptEvery, *deadline, false, fcfg, *cycles)
		} else {
			var plane *fault.Plane
			if fcfg != nil {
				plane = fault.NewPlane(*fcfg)
			}
			var err error
			res, err = workload.RunInjected(p, *cycles, cpu.Config{}, plane)
			if err != nil {
				fatalf("%v", err)
			}
		}
		hist = res.Hist
		fmt.Fprintf(os.Stderr, "vaxsim: %s: %d instructions, %d cycles (%.2f CPI)\n",
			p.Name, res.Instructions, res.Cycles, float64(res.Cycles)/float64(res.Instructions))
		if fcfg != nil {
			printInjection(res.Faults, res.HW)
		}
		_ = stats // the workload path reports via upcreport; -stats applies to -program
	case *prog != "":
		src, err := os.ReadFile(*prog)
		if err != nil {
			fatalf("%v", err)
		}
		im, err := asm.Assemble(0x1000, string(src))
		if err != nil {
			fatalf("assemble: %v", err)
		}
		var plane *fault.Plane
		if fcfg != nil {
			plane = fault.NewPlane(*fcfg)
		}
		m := cpu.New(cpu.Config{MemBytes: 1 << 20})
		mon := core.NewMonitor()
		mon.Start()
		m.AttachProbe(mon)
		m.AttachFaultPlane(plane)
		m.Mem.Load(im.Org, im.Bytes)
		m.R[vax.SP] = 0x8000
		m.SetPC(im.Org)
		res := m.Run(*cycles)
		if res.Err != nil {
			fatalf("run: %v", res.Err)
		}
		hist = mon.Snapshot()
		fmt.Fprintf(os.Stderr, "vaxsim: %s: %d instructions, %d cycles (halted=%v)\n",
			*prog, res.Instructions, res.Cycles, res.Halted)
		if plane != nil {
			printInjection(plane.Stats(), m.HW())
		}
		if *stats {
			fmt.Fprint(os.Stderr, m.StatsReport())
		}
	default:
		fatalf("need -workload, -program, -resume, or -list")
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := hist.Save(f); err != nil {
		fatalf("saving histogram: %v", err)
	}
	fmt.Fprintf(os.Stderr, "vaxsim: histogram written to %s (%d classified cycles)\n",
		*out, hist.TotalCycles())
}

// runSupervised runs (or resumes) one workload under the run supervisor
// with SIGINT/SIGTERM wired to a final checkpoint and a clean non-zero
// exit. It only returns on success.
func runSupervised(p *workload.Profile, dir string, every uint64, deadline time.Duration, resume bool, fcfg *fault.Config, cycles uint64) *workload.Result {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sup := workload.Supervisor{CheckpointDir: dir, CheckpointEvery: every, Deadline: deadline}
	var res *workload.Result
	var err error
	if resume {
		res, err = workload.ResumeSupervised(ctx, dir, sup)
	} else {
		res, err = workload.RunSupervised(ctx, workload.Spec{
			Profile: *p, Cycles: cycles, Machine: cpu.Config{}, Fault: fcfg,
		}, sup)
	}
	if err != nil {
		var intr *workload.Interrupted
		if errors.As(err, &intr) && dir != "" {
			fatalf("%v (resume with: vaxsim -resume -checkpoint %s)", intr, dir)
		}
		fatalf("%v", err)
	}
	return res
}

func printInjection(fs fault.Stats, hw cpu.HWCounters) {
	fmt.Fprintf(os.Stderr, "vaxsim: injection:")
	for pt := fault.Point(0); pt < fault.NumPoints; pt++ {
		fmt.Fprintf(os.Stderr, " %s=%d/%d", pt, fs.Injected[pt], fs.Samples[pt])
	}
	fmt.Fprintf(os.Stderr, "; %d machine checks delivered, %d lost\n",
		hw.MachineChecks, hw.MachineChecksLost)
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxsim", format, args...)
}
