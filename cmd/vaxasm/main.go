// Command vaxasm assembles the project's VAX assembly dialect and prints a
// listing or writes a flat binary image.
//
// Usage:
//
//	vaxasm [-org 0x1000] [-o image.bin] [-listing] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"vax780/internal/asm"
	"vax780/internal/cli"
)

func main() {
	org := flag.String("org", "0x1000", "assembly origin")
	out := flag.String("o", "", "write the flat image to this file")
	listing := flag.Bool("listing", false, "print a disassembly listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("need exactly one source file")
	}
	origin, err := strconv.ParseUint(*org, 0, 32)
	if err != nil {
		fatalf("bad -org: %v", err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	im, err := asm.Assemble(uint32(origin), string(src))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "vaxasm: %d bytes at %#x, %d symbols\n", len(im.Bytes), im.Org, len(im.Labels))
	if *listing {
		fmt.Print(asm.Listing(im))
	}
	if *out != "" {
		if err := os.WriteFile(*out, im.Bytes, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxasm", format, args...)
}
