// Command vaxfarm runs a fleet of simulated VAX-11/780s: N machine-
// instances sharded across W supervised workers, each measured under the
// µPC histogram monitor, merged into per-profile and composite histograms
// (internal/farm). The farm survives partial failure — worker panics are
// retried with backoff, killed workers' instances are rescued from their
// newest checkpoint on a surviving worker, and sustained failure sheds
// instances into an explicit outcome ledger instead of biasing the merge.
//
// SIGINT/SIGTERM and -deadline checkpoint every live instance and exit
// non-zero with one resume hint, the same contract as vaxsim; -resume
// continues the whole farm from its root directory with results
// bit-identical to an undisturbed sweep.
//
// Usage:
//
//	vaxfarm -instances 100 -workers 8 -cycles 2000000 -checkpoint farm/
//	vaxfarm -resume -checkpoint farm/
//	vaxfarm -instances 20 -inject "seed=7,mem=0.0001" -o out/
//	vaxfarm -instances 12 -chaos "0@5,2@9" -ledger   (kill-a-worker demo)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"vax780/internal/cli"
	"vax780/internal/core"
	"vax780/internal/farm"
	"vax780/internal/fault"
	"vax780/internal/workload"
)

func main() {
	instances := flag.Int("instances", 10, "machine-instances to measure")
	workers := flag.Int("workers", 4, "worker-pool width")
	cycles := flag.Uint64("cycles", 2_000_000, "cycle budget per instance")
	wl := flag.String("workload", "all", `workload rotation: "all" or comma-separated profile names (see -list)`)
	inject := flag.String("inject", "", `fault-injection spec applied to every instance, e.g. "seed=7,mem=0.0001" (see internal/fault)`)
	ckptRoot := flag.String("checkpoint", "", "farm root directory: enables durable checkpoints, rescue from disk, and -resume")
	ckptEvery := flag.Uint64("checkpoint-every", workload.DefaultCheckpointEvery, "cycles between automatic per-instance checkpoints")
	resume := flag.Bool("resume", false, "resume the farm recorded under the -checkpoint root")
	retries := flag.Int("retries", 2, "per-instance retry allowance before shedding")
	budget := flag.Int("failure-budget", 0, "farm-wide failed-attempt budget before shedding (0 = one per instance)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget; expiry checkpoints every live instance and exits non-zero")
	chaos := flag.String("chaos", "", `scripted worker kills, "worker@chunk" pairs: "0@5,2@9"`)
	out := flag.String("o", ".", "output directory for farm-total.upc and per-profile .upc files")
	ledger := flag.Bool("ledger", false, "print the full per-instance outcome ledger")
	list := flag.Bool("list", false, "list workload profiles")
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-24s %-18s %2d users, %d processes\n", p.Name, p.Kind, p.Users, p.Procs)
		}
		return
	}

	var f *farm.Farm
	var err error
	if *resume {
		if *ckptRoot == "" {
			fatalf("-resume requires -checkpoint <dir>")
		}
		f, err = farm.Resume(*ckptRoot)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		cfg := farm.Config{
			Instances:       *instances,
			Workers:         *workers,
			Cycles:          *cycles,
			Root:            *ckptRoot,
			CheckpointEvery: *ckptEvery,
			Retries:         *retries,
			FailureBudget:   *budget,
			Deadline:        *deadline,
			Kills:           parseChaos(*chaos),
		}
		if *wl != "all" {
			cfg.Profiles = strings.Split(*wl, ",")
		}
		if *inject != "" {
			c, err := fault.ParseSpec(*inject)
			if err != nil {
				fatalf("bad -inject spec: %v", err)
			}
			cfg.Fault = &c
		}
		f, err = farm.New(cfg)
		if err != nil {
			fatalf("%v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := f.Run(ctx)
	if err != nil {
		var intr *farm.Interrupted
		var pe *farm.PoolExhausted
		switch {
		case errors.As(err, &intr) && intr.Root != "":
			fatalf("%v (resume with: vaxfarm -resume -checkpoint %s)", intr, intr.Root)
		case errors.As(err, &intr):
			fatalf("%v (no -checkpoint root: paused instances are not resumable)", intr)
		case errors.As(err, &pe):
			// Graceful degradation: report what completed, then fail.
			report(res, *out, *ledger)
			fatalf("%v", pe)
		default:
			fatalf("%v", err)
		}
	}
	report(res, *out, *ledger)
	if res.Shed > 0 {
		cli.Exitf(3, "vaxfarm", "%d of %d instances shed; merged histograms cover the remainder",
			res.Shed, len(res.Ledger))
	}
}

// report writes the merged histograms and prints the run summary.
func report(res *farm.Result, out string, full bool) {
	if err := os.MkdirAll(out, 0o777); err != nil {
		fatalf("%v", err)
	}
	save := func(name string, h *core.Histogram) {
		path := filepath.Join(out, name)
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := h.Save(f); err != nil {
			fatalf("saving %s: %v", path, err)
		}
	}
	save("farm-total.upc", res.Merged)
	for _, ps := range res.ByProfile {
		save("farm-"+ps.Name+".upc", ps.Hist)
	}
	fmt.Fprintf(os.Stderr, "vaxfarm: %d completed (%d rescued), %d shed, %d paused; %d failures, %d workers lost; %d cycles merged\n",
		res.Completed, res.Rescued, res.Shed, res.Paused, res.Failures, res.Lost, res.Cycles)
	if full {
		for _, o := range res.Ledger {
			line := fmt.Sprintf("vaxfarm:   #%04d %-22s %-9s attempts=%d rescues=%d cycle=%d",
				o.ID, o.Profile, o.Status, o.Attempts, o.Rescues, o.Cycle)
			if o.Cause != "" {
				line += " cause=" + o.Cause
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

// parseChaos parses "worker@chunk" pairs via farm.ParseKills.
func parseChaos(spec string) []farm.Kill {
	kills, err := farm.ParseKills(spec)
	if err != nil {
		fatalf("bad -chaos spec: %v", err)
	}
	return kills
}

func fatalf(format string, args ...any) {
	cli.Fatalf("vaxfarm", format, args...)
}
