// Quickstart: assemble a small VAX program, run it on the simulated
// VAX-11/780 with the µPC histogram monitor attached, and interpret the
// histogram — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"vax780/internal/asm"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

const program = `
; Sum the first 100 integers, then copy a greeting.
	MOVL	#100, R7
	CLRL	R6
loop:	ADDL2	R7, R6
	SOBGTR	R7, loop
	MOVC3	#14, msg, out
	HALT
msg:	.ascii	"hello, VAX-780"
out:	.space	16
`

func main() {
	im, err := asm.Assemble(0x1000, program)
	if err != nil {
		log.Fatal(err)
	}

	// A stock VAX-11/780: 8 KB write-through cache, 128-entry TB, 6-cycle
	// read miss, one-longword write buffer.
	m := cpu.New(cpu.Config{MemBytes: 1 << 20})

	// The monitor is the paper's contribution: one histogram bucket per
	// microcode location, counting executions and stalls passively.
	mon := core.NewMonitor()
	mon.Start()
	m.AttachProbe(mon)

	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	res := m.Run(1_000_000)
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	fmt.Printf("sum(1..100) = %d\n", m.R[6])
	fmt.Printf("copied text = %q\n", string(m.Mem.Read(im.MustAddr("out"), 14)))
	fmt.Printf("%d instructions in %d cycles (%.0f ns each at 200 ns/cycle)\n",
		res.Instructions, res.Cycles,
		float64(res.Cycles)/float64(res.Instructions)*cpu.CycleNanoseconds)

	// Reduce the histogram the way the paper's analysts did.
	r := core.Reduce(mon.Snapshot(), cpu.CS)
	fmt.Printf("\nCPI = %.2f cycles per instruction\n", r.CPI())
	fmt.Printf("loop branches: %d taken of %d (%.0f%%)\n",
		r.PCClasses[vax.PCLoop].Taken, r.PCClasses[vax.PCLoop].Entries,
		r.PCClasses[vax.PCLoop].PctTaken())
	fmt.Println("\ncycles per instruction by activity (Table 8 rows):")
	for row, cols := range r.Timing {
		if t := cols.Total(); t > 0.001 {
			fmt.Printf("  %-11v %6.3f\n", ucode.Row(row), t)
		}
	}
}
