// Scientific: characterize the RTE scientific workload (40 simulated users
// running floating-point computation and program development) and report
// the within-group costs of Table 9 — including the two-orders-of-
// magnitude spread between SIMPLE and the string/decimal groups that the
// paper highlights in §5.
package main

import (
	"fmt"
	"log"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

func main() {
	p := workload.RTEScientific
	fmt.Printf("measuring %q (%s, %d simulated users)...\n", p.Name, p.Kind, p.Users)

	res, err := workload.Run(p, 4_000_000, cpu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r := core.Reduce(res.Hist, cpu.CS)

	fmt.Printf("\ninstruction mix (Table 1 style):\n")
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		fmt.Printf("  %-10v %6.2f%%\n", g, 100*r.GroupFreq(g))
	}

	fmt.Printf("\ncycles per average instruction WITHIN each group (Table 9):\n")
	fmt.Printf("  %-10s %8s %7s %7s %8s\n", "group", "compute", "reads", "writes", "total")
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		c := r.WithinGroup(g)
		if r.Groups[g] == 0 {
			continue
		}
		fmt.Printf("  %-10v %8.2f %7.2f %7.2f %8.2f\n", g, c.Compute, c.Read, c.Write, c.Total())
	}
	simple := r.WithinGroup(vax.GroupSimple).Total()
	char := r.WithinGroup(vax.GroupCharacter).Total()
	if simple > 0 && char > 0 {
		fmt.Printf("\nspread: an average CHARACTER instruction costs %.0fx an average SIMPLE one\n", char/simple)
	}
	fmt.Printf("floating point is %.1f%% of instructions but %.1f%% of execute-phase time\n",
		100*r.GroupFreq(vax.GroupFloat),
		100*r.WithinGroup(vax.GroupFloat).Total()*r.GroupFreq(vax.GroupFloat)/r.CPI())
}
