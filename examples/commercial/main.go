// Commercial: characterize the RTE transaction-processing workload (32
// simulated users doing database inquiries and updates) and demonstrate
// the paper's observation that rare, complex instructions — decimal and
// character strings, procedure calls — claim a disproportionate share of
// processor time, while 80-90% of executions are SIMPLE but cheap.
package main

import (
	"fmt"
	"log"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/ucode"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

func main() {
	p := workload.RTECommercial
	fmt.Printf("measuring %q (%s, %d simulated users)...\n", p.Name, p.Kind, p.Users)

	res, err := workload.Run(p, 4_000_000, cpu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r := core.Reduce(res.Hist, cpu.CS)

	fmt.Printf("\n%-10s %10s %14s\n", "group", "% of execs", "% of exec time")
	var execTime float64
	rows := []ucode.Row{ucode.RowSimple, ucode.RowField, ucode.RowFloat, ucode.RowCallRet,
		ucode.RowSystem, ucode.RowCharacter, ucode.RowDecimal}
	for _, row := range rows {
		execTime += r.Timing[row].Total()
	}
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		share := r.WithinGroup(g).Total() * r.GroupFreq(g) / execTime
		fmt.Printf("%-10v %9.2f%% %13.2f%%\n", g, 100*r.GroupFreq(g), 100*share)
	}

	fmt.Printf("\nterminal I/O through the kernel: %d system-service requests\n",
		r.Groups[vax.GroupSystem])
	s1, s26, _ := r.SpecsPerInstr()
	fmt.Printf("operand specifiers: %.2f per instruction; average instruction %.1f bytes\n",
		s1+s26, r.EstInstrBytes())
	var mr, mw float64
	for _, row := range r.MemOps {
		mr += row.Reads
		mw += row.Writes
	}
	fmt.Printf("memory traffic: %.2f reads and %.2f writes per instruction (%.1f:1)\n",
		mr, mw, mr/mw)
}
