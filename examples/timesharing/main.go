// Timesharing: measure a live-timesharing-style workload (the paper's
// research-machine load: editing, program development, mail) on the full
// stack — VMS-like kernel, scheduler, terminals — and print the central
// Table 8 timing matrix for it.
package main

import (
	"fmt"
	"log"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/ucode"
	"vax780/internal/workload"
)

func main() {
	p := workload.TimesharingResearch
	fmt.Printf("measuring %q (%s, %d simulated users, %d processes)...\n",
		p.Name, p.Kind, p.Users, p.Procs)

	res, err := workload.Run(p, 4_000_000, cpu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r := core.Reduce(res.Hist, cpu.CS)

	fmt.Printf("\n%d measured instructions, CPI %.2f (paper: 10.6)\n\n", r.Instructions, r.CPI())
	fmt.Println("Average VAX instruction timing (cycles per instruction):")
	fmt.Printf("%-12s %8s %7s %8s %7s %8s %8s %8s\n",
		"row", "compute", "read", "r-stall", "write", "w-stall", "ib-stall", "total")
	for row := ucode.Row(0); row < ucode.NumRows; row++ {
		c := r.Timing[row]
		fmt.Printf("%-12v %8.3f %7.3f %8.3f %7.3f %8.3f %8.3f %8.3f\n",
			row, c.Compute, c.Read, c.RStall, c.Write, c.WStall, c.IBStall, c.Total())
	}
	t := r.TimingTotal
	fmt.Printf("%-12s %8.3f %7.3f %8.3f %7.3f %8.3f %8.3f %8.3f\n",
		"TOTAL", t.Compute, t.Read, t.RStall, t.Write, t.WStall, t.IBStall, t.Total())

	fmt.Printf("\noperating-system visibility (Table 7):\n")
	fmt.Printf("  interrupts every %.0f instructions, context switch every %.0f\n",
		r.Headway.InterruptHeadway(), r.Headway.CtxSwitchHeadway())
	fmt.Printf("  TB misses: %.3f per instruction, %.1f cycles each\n",
		r.TBMiss.PerInstr(r.Instructions), r.TBMiss.CyclesPerMiss())
}
