// Ablation750: §5 of the paper reads Table 8 as a map of "where 11/780
// performance may be improved": the non-overlapped decode cycle ("the
// later VAX model 11/750 did [overlap] this"), the one-longword write
// buffer, and the 6-cycle miss penalty. This example measures a workload
// on the stock 780 and on three hypothetical machines, showing each
// column move the way the paper predicts.
package main

import (
	"fmt"
	"log"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/workload"
)

func measure(name string, cfg cpu.Config) *core.Report {
	res, err := workload.Run(workload.TimesharingCPUDev, 2_500_000, cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return core.Reduce(res.Hist, cpu.CS)
}

func main() {
	fmt.Println("measuring four machines on the cpu-development timesharing load...")
	base := measure("11/780", cpu.Config{})
	overlap := measure("overlapped decode", cpu.Config{DecodeOverlap: true})
	deepWB := measure("4-longword write buffer", cpu.Config{WriteBufferDepth: 4})
	taggedTB := measure("tagged TB", cpu.Config{NoTBFlushOnSwitch: true})

	fmt.Printf("\n%-26s %7s %9s %9s %9s\n", "machine", "CPI", "w-stall", "r-stall", "ib-stall")
	row := func(name string, r *core.Report) {
		t := r.TimingTotal
		fmt.Printf("%-26s %7.3f %9.3f %9.3f %9.3f\n", name, r.CPI(), t.WStall, t.RStall, t.IBStall)
	}
	row("VAX-11/780 (stock)", base)
	row("+ overlapped decode", overlap)
	row("+ 4-longword write buffer", deepWB)
	row("+ address-space-tagged TB", taggedTB)

	fmt.Printf("\nthe paper's §5 predictions, observed:\n")
	fmt.Printf("  overlapped decode saves %.2f CPI (~1 cycle x %.0f%% non-PC-changing instructions)\n",
		base.CPI()-overlap.CPI(), 100*(1-pcChangingShare(base)))
	fmt.Printf("  deeper write buffer removes %.0f%% of write stall\n",
		100*(1-deepWB.TimingTotal.WStall/base.TimingTotal.WStall))
	fmt.Printf("  tagged TB saves %.2f CPI of flush-refill work\n",
		base.CPI()-taggedTB.CPI())
}

func pcChangingShare(r *core.Report) float64 {
	var taken uint64
	for _, st := range r.PCClasses {
		taken += st.Taken
	}
	return float64(taken) / float64(r.Instructions)
}
