module vax780

go 1.22
