// Package vax780 reproduces Emer & Clark, "A Characterization of Processor
// Performance in the VAX-11/780" (ISCA 1984): a cycle-level model of the
// VAX-11/780 processor, the µPC histogram monitor the paper introduced, a
// miniature timesharing operating system, the paper's five measurement
// workloads, and the reduction pipeline that regenerates every table of
// the paper from a raw histogram.
//
// The shortest path from zero to a measurement:
//
//	m := vax780.NewMachine(vax780.MachineConfig{})
//	mon := vax780.NewMonitor()
//	mon.Start()
//	m.AttachProbe(mon)
//	// ... load a program (internal/asm) and m.Run(budget) ...
//	report := vax780.Reduce(mon.Snapshot())
//	fmt.Println(report.CPI())
//
// Or reproduce the whole paper:
//
//	ctx, _ := vax780.MeasureComposite(8_000_000, vax780.MachineConfig{})
//	for _, out := range vax780.RunAllExperiments(ctx) {
//	    fmt.Println(out.Text)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package vax780

import (
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/experiments"
	"vax780/internal/ucode"
	"vax780/internal/workload"
)

// Machine is the simulated VAX-11/780 processor.
type Machine = cpu.Machine

// MachineConfig selects memory size, cache/bus timing and the ablation
// knobs (decode overlap, character write spacing, microcode patches).
type MachineConfig = cpu.Config

// NewMachine builds a VAX-11/780 with the paper's default parameters.
func NewMachine(cfg MachineConfig) *Machine { return cpu.New(cfg) }

// Monitor is the µPC histogram board (the paper's measurement hardware).
type Monitor = core.Monitor

// NewMonitor returns a stopped, cleared monitor.
func NewMonitor() *Monitor { return core.NewMonitor() }

// Histogram is the raw product of a measurement: two counters per
// control-store location. Histograms sum into composites.
type Histogram = core.Histogram

// Report is the reduction of a histogram into the paper's tables.
type Report = core.Report

// Reduce interprets a raw histogram against this model's microcode map.
func Reduce(h *Histogram) *Report { return core.Reduce(h, cpu.CS) }

// ControlStore returns the microcode control-store map the monitor and the
// reduction share.
func ControlStore() *ucode.Store { return cpu.CS }

// Workload is one of the paper's five measurement workloads.
type Workload = workload.Profile

// Workloads returns the five workloads of the paper's §2.2 in order: two
// live-timesharing loads and three RTE loads.
func Workloads() []Workload { return workload.All() }

// MeasureWorkload runs one workload under a collecting monitor.
func MeasureWorkload(p Workload, cycles uint64, cfg MachineConfig) (*workload.Result, error) {
	return workload.Run(p, cycles, cfg)
}

// MeasureComposite measures all five workloads and sums their histograms,
// producing the context every experiment runs against.
func MeasureComposite(cyclesEach uint64, cfg MachineConfig) (*experiments.Context, error) {
	return experiments.NewContext(cyclesEach, cfg)
}

// Experiment is one reproduced table or figure with its shape checks.
type Experiment = experiments.Outcome

// RunAllExperiments reproduces every table and figure of the paper against
// one composite measurement.
func RunAllExperiments(ctx *experiments.Context) []Experiment {
	return experiments.RunAll(ctx)
}
