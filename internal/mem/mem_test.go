package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := New(4096)
	m.WriteLong(0x100, 0xDEADBEEF)
	if got := m.ReadLong(0x100); got != 0xDEADBEEF {
		t.Errorf("ReadLong = %#x", got)
	}
	if got := m.Byte(0x100); got != 0xEF {
		t.Errorf("little-endian byte 0 = %#x, want 0xEF", got)
	}
	if got := m.Byte(0x103); got != 0xDE {
		t.Errorf("byte 3 = %#x, want 0xDE", got)
	}
	m.SetByte(0x101, 0x00)
	if got := m.ReadLong(0x100); got != 0xDEAD00EF {
		t.Errorf("after byte write: %#x", got)
	}
}

func TestMemoryLoadRead(t *testing.T) {
	m := New(1024)
	m.Load(10, []byte{1, 2, 3})
	if got := m.Read(10, 3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Read = %v", got)
	}
}

func TestMemoryBoundsLatchFault(t *testing.T) {
	m := New(16)
	if got := m.ReadLong(14); got != 0 {
		t.Errorf("out-of-range read = %#x, want 0", got)
	}
	f, ok := m.TakeFault()
	if !ok || f.Kind != FaultRange || f.Addr != 14 {
		t.Errorf("latched fault = %+v ok=%v, want FaultRange at 14", f, ok)
	}
	if _, ok := m.TakeFault(); ok {
		t.Error("TakeFault should clear the latch")
	}
	// The latch holds the FIRST syndrome only.
	m.ReadLong(20)
	m.SetByte(40, 1)
	f, ok = m.TakeFault()
	if !ok || f.Addr != 20 {
		t.Errorf("first-error latch = %+v ok=%v, want addr 20", f, ok)
	}
	// Out-of-range writes are dropped, not applied mod-size.
	m2 := New(32)
	m2.WriteLong(30, 0xFFFFFFFF)
	if got := m2.ReadLong(28); got != 0 {
		t.Errorf("dropped write leaked: %#x", got)
	}
	m2.TakeFault()
}

func TestMemoryRDSInjection(t *testing.T) {
	m := New(64)
	m.WriteLong(8, 0x12345678)
	fire := false
	m.SetInjector(func() bool { return fire })
	if got := m.ReadLong(8); got != 0x12345678 {
		t.Errorf("read with idle injector = %#x", got)
	}
	if _, ok := m.TakeFault(); ok {
		t.Error("idle injector latched a fault")
	}
	fire = true
	// RDS delivers the (still correct) data AND latches the syndrome: the
	// error is in the modelled check bits, not the simulated array.
	if got := m.ReadLong(8); got != 0x12345678 {
		t.Errorf("RDS read = %#x, want correct data", got)
	}
	f, ok := m.TakeFault()
	if !ok || f.Kind != FaultRDS || f.Addr != 8 {
		t.Errorf("RDS fault = %+v ok=%v", f, ok)
	}
	if s := f.Kind.String(); s == "" || s == "unknown memory fault" {
		t.Errorf("FaultRDS string = %q", s)
	}
}

func TestPropertyMemoryLongRoundTrip(t *testing.T) {
	m := New(1 << 16)
	f := func(addr uint16, v uint32) bool {
		pa := uint32(addr)
		if pa > m.Size()-4 {
			pa = m.Size() - 4
		}
		m.WriteLong(pa, v)
		return m.ReadLong(pa) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mustSBI builds a default-configured SBI, failing the test on error.
func mustSBI(t *testing.T) *SBI {
	t.Helper()
	s, err := NewSBI(DefaultSBIConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSBIBadConfigErrors(t *testing.T) {
	if _, err := NewSBI(SBIConfig{ReadLatency: 0, WriteOccupancy: 6}); err == nil {
		t.Error("zero read latency should be rejected")
	}
	if _, err := NewSBI(SBIConfig{ReadLatency: 6, WriteOccupancy: -1}); err == nil {
		t.Error("negative write occupancy should be rejected")
	}
}

func TestSBITimeoutInjection(t *testing.T) {
	s := mustSBI(t)
	fire := false
	s.SetInjector(func() bool { return fire })
	if done := s.Read(100); done != 106 {
		t.Errorf("clean read done = %d", done)
	}
	fire = true
	// A timed-out transaction completes after the timeout interval plus
	// the normal latency, and latches the starting cycle.
	if done := s.Read(200); done != 200+TimeoutPenalty+6 {
		t.Errorf("timed-out read done = %d, want %d", done, 200+TimeoutPenalty+6)
	}
	cyc, ok := s.TakeFault()
	if !ok || cyc != 200 {
		t.Errorf("latched timeout = %d ok=%v, want cycle 200", cyc, ok)
	}
	if s.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", s.Stats().Timeouts)
	}
}

func TestSBIUncontendedRead(t *testing.T) {
	s := mustSBI(t)
	if done := s.Read(100); done != 106 {
		t.Errorf("read done = %d, want 106", done)
	}
	if s.Stats().Reads != 1 {
		t.Errorf("reads = %d", s.Stats().Reads)
	}
}

func TestSBIContention(t *testing.T) {
	s := mustSBI(t)
	first := s.Read(100) // 106
	second := s.Read(102)
	if second != first+6 {
		t.Errorf("contended read done = %d, want %d", second, first+6)
	}
	// After the bus drains, a later read is uncontended again.
	third := s.Read(second + 10)
	if third != second+16 {
		t.Errorf("post-drain read done = %d, want %d", third, second+16)
	}
}

func TestSBIWriteOccupiesBus(t *testing.T) {
	s := mustSBI(t)
	s.Write(0) // occupies until 6
	if done := s.Read(1); done != 12 {
		t.Errorf("read behind write done = %d, want 12", done)
	}
}

func TestWriteBufferFastPath(t *testing.T) {
	s := mustSBI(t)
	w := NewWriteBuffer(s)
	if stall := w.Write(10); stall != 0 {
		t.Errorf("first write stall = %d", stall)
	}
	// A write 6+ cycles later does not stall.
	if stall := w.Write(16); stall != 0 {
		t.Errorf("spaced write stall = %d", stall)
	}
}

func TestWriteBufferBackToBackStalls(t *testing.T) {
	s := mustSBI(t)
	w := NewWriteBuffer(s)
	w.Write(10) // drains at 16
	if stall := w.Write(12); stall != 4 {
		t.Errorf("back-to-back write stall = %d, want 4", stall)
	}
	st := w.Stats()
	if st.Writes != 2 || st.Stalls != 1 || st.StallCycles != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteBufferChainOfWrites(t *testing.T) {
	// N back-to-back writes issued on consecutive cycles: each pays the
	// residual occupancy of its predecessor.
	s := mustSBI(t)
	w := NewWriteBuffer(s)
	now := uint64(0)
	var total uint64
	for i := 0; i < 10; i++ {
		stall := w.Write(now)
		total += stall
		now += stall + 1 // one cycle to initiate the write, then next attempt
	}
	// First write free; each subsequent write waits 5 cycles (6-cycle
	// occupancy minus the 1-cycle initiation).
	if total != 9*5 {
		t.Errorf("total stall = %d, want 45", total)
	}
}

func TestPropertySBIMonotonic(t *testing.T) {
	// Completion times never move backwards no matter the request pattern.
	f := func(deltas []uint8) bool {
		s := mustSBI(t)
		now, last := uint64(0), uint64(0)
		for i, d := range deltas {
			now += uint64(d % 8)
			var done uint64
			if i%2 == 0 {
				done = s.Read(now)
			} else {
				done = s.Write(now)
			}
			if done < last || done < now {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriteBufferDepthTwo(t *testing.T) {
	s := mustSBI(t)
	w := NewWriteBufferDepth(s, 2)
	if w.Depth() != 2 {
		t.Fatalf("depth = %d", w.Depth())
	}
	// Two back-to-back writes fit the buffer without stalling.
	if st := w.Write(10); st != 0 {
		t.Errorf("first write stall = %d", st)
	}
	if st := w.Write(11); st != 0 {
		t.Errorf("second write stall = %d (depth 2 should absorb it)", st)
	}
	// The third must wait for the first to drain (at cycle 16).
	if st := w.Write(12); st != 4 {
		t.Errorf("third write stall = %d, want 4", st)
	}
}

func TestWriteBufferDepthReducesStalls(t *testing.T) {
	run := func(depth int) uint64 {
		s := mustSBI(t)
		w := NewWriteBufferDepth(s, depth)
		now := uint64(0)
		for i := 0; i < 50; i++ {
			now += w.Write(now) + 2 // writes two cycles apart
		}
		return w.Stats().StallCycles
	}
	d1, d2, d4 := run(1), run(2), run(4)
	if !(d1 >= d2 && d2 >= d4) {
		t.Errorf("stalls not monotone in depth: %d, %d, %d", d1, d2, d4)
	}
	if d1 == 0 {
		t.Error("depth-1 buffer should stall on 2-cycle-apart writes")
	}
}
