package mem

import "fmt"

// SBIConfig sets the timing parameters of the backplane.
type SBIConfig struct {
	// ReadLatency is the number of cycles from an uncontended cache-miss
	// read request to data arrival. The paper gives 6 cycles for the
	// simplest case (no concurrent memory activity).
	ReadLatency int
	// WriteOccupancy is the number of cycles a write transaction occupies
	// memory. A write attempted less than this many cycles after the
	// previous write stalls (the 4-byte write buffer holds only one
	// longword), per §2.1.
	WriteOccupancy int
}

// DefaultSBIConfig returns the VAX-11/780 parameters from the paper.
func DefaultSBIConfig() SBIConfig {
	return SBIConfig{ReadLatency: 6, WriteOccupancy: 6}
}

// SBIStats are cumulative transaction counts.
type SBIStats struct {
	Reads  uint64 // cache-miss read transactions
	Writes uint64 // write-through transactions
	// BusyCycles is the total number of cycles the bus+memory were
	// occupied; used to compute utilization.
	BusyCycles uint64
	// Timeouts counts transactions that timed out and were retried on
	// the bus (injected faults; each also raises a machine check).
	Timeouts uint64
}

// TimeoutPenalty is the extra bus occupancy of a timed-out transaction:
// the SBI waits out its timeout interval, latches the fault, and the
// retried transaction then proceeds.
const TimeoutPenalty = 32

// SBI models the Synchronous Backplane Interconnect plus the memory
// controller as a single transaction-at-a-time resource: a new transaction
// queues behind whatever is in flight. Both the I-Fetch unit and the EBOX
// issue transactions through it, which is how I-stream misses delay
// D-stream misses (and vice versa) in this model.
type SBI struct {
	cfg       SBIConfig //vaxlint:allow statecomplete -- travels as part of checkpoint Meta.Machine
	busyUntil uint64
	stats     SBIStats

	inject     func() bool //vaxlint:allow statecomplete -- attachment derived from the fault plane (timeout sampler, nil = never)
	faultCycle uint64
	hasFault   bool
}

// NewSBI returns an SBI with the given timing configuration.
func NewSBI(cfg SBIConfig) (*SBI, error) {
	if cfg.ReadLatency <= 0 || cfg.WriteOccupancy <= 0 {
		return nil, fmt.Errorf("mem: SBI latencies must be positive (read %d, write %d)",
			cfg.ReadLatency, cfg.WriteOccupancy)
	}
	return &SBI{cfg: cfg}, nil
}

// Config returns the SBI timing configuration.
func (s *SBI) Config() SBIConfig { return s.cfg }

// Stats returns cumulative transaction statistics.
func (s *SBI) Stats() SBIStats { return s.stats }

// SetInjector installs a bus-timeout fault sampler consulted once per
// transaction (nil removes it). See internal/fault.
func (s *SBI) SetInjector(sample func() bool) { s.inject = sample }

// TakeFault returns and clears the latched timeout syndrome: the cycle at
// which the timed-out transaction started. Single-error latch.
func (s *SBI) TakeFault() (cycle uint64, ok bool) {
	c, had := s.faultCycle, s.hasFault
	s.faultCycle, s.hasFault = 0, false
	return c, had
}

// timeout applies an injected bus timeout to a transaction starting at
// start: the retried transfer lands TimeoutPenalty cycles later.
func (s *SBI) timeout(start uint64) uint64 {
	s.stats.Timeouts++
	if !s.hasFault {
		s.faultCycle, s.hasFault = start, true
	}
	return start + TimeoutPenalty
}

// Read starts a cache-miss read transaction at cycle now and returns the
// cycle at which the data arrives at the requester.
func (s *SBI) Read(now uint64) (done uint64) {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	if s.inject != nil && s.inject() {
		start = s.timeout(start)
	}
	done = start + uint64(s.cfg.ReadLatency)
	s.busyUntil = done
	s.stats.Reads++
	s.stats.BusyCycles += done - start
	return done
}

// Write starts a write-through transaction at cycle now (the cycle the
// write buffer accepted the data) and returns the cycle at which memory is
// free again.
func (s *SBI) Write(now uint64) (done uint64) {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	if s.inject != nil && s.inject() {
		start = s.timeout(start)
	}
	done = start + uint64(s.cfg.WriteOccupancy)
	s.busyUntil = done
	s.stats.Writes++
	s.stats.BusyCycles += done - start
	return done
}

// BusyUntil reports the cycle at which the current transaction (if any)
// completes.
func (s *SBI) BusyUntil() uint64 { return s.busyUntil }

// WriteBuffer models the 780's single-longword write buffer. The EBOX takes
// one cycle to initiate a write and continues; it is held up only if
// another write is attempted before the previous one completed in memory.
// A depth greater than one models the deeper buffers of later machines
// (an ablation of §5's write-stall discussion).
type WriteBuffer struct {
	sbi    *SBI //vaxlint:allow statecomplete -- wiring to the rebuilt SBI
	depth  int  //vaxlint:allow statecomplete -- configuration; travels as part of checkpoint Meta.Machine
	drains []uint64 // completion times of buffered writes, ascending
	stats  WriteBufferStats
}

// WriteBufferStats are cumulative write-buffer statistics.
type WriteBufferStats struct {
	Writes      uint64 // writes accepted
	StallCycles uint64 // total cycles the EBOX was write-stalled
	Stalls      uint64 // writes that stalled at all
}

// NewWriteBuffer returns a one-longword write buffer (the 11/780's).
func NewWriteBuffer(sbi *SBI) *WriteBuffer {
	return NewWriteBufferDepth(sbi, 1)
}

// NewWriteBufferDepth returns a write buffer holding up to depth longwords.
func NewWriteBufferDepth(sbi *SBI, depth int) *WriteBuffer {
	if depth < 1 {
		depth = 1
	}
	// Drain-time storage is preallocated at capacity: dropDrained keeps
	// len ≤ depth, so the append in Write never grows the backing array.
	return &WriteBuffer{sbi: sbi, depth: depth, drains: make([]uint64, 0, depth)}
}

// Depth returns the buffer capacity in longwords.
func (w *WriteBuffer) Depth() int { return w.depth }

// Write attempts a write at cycle now. It returns the number of cycles the
// EBOX must stall before the buffer accepts the data (0 on the fast path).
func (w *WriteBuffer) Write(now uint64) (stall uint64) {
	w.dropDrained(now)
	if len(w.drains) >= w.depth {
		// Wait for the oldest buffered write to drain.
		stall = w.drains[0] - now
		w.stats.Stalls++
		w.stats.StallCycles += stall
	}
	accepted := now + stall
	w.dropDrained(accepted)
	//vaxlint:allow hotpath -- bounded: capacity depth is preallocated at construction and dropDrained keeps len < depth here, so this append never grows
	w.drains = append(w.drains, w.sbi.Write(accepted))
	w.stats.Writes++
	return stall
}

// dropDrained removes entries that have drained by cycle now, compacting
// in place so the slice keeps its preallocated backing array (re-slicing
// the front away would shrink the capacity until append reallocates).
func (w *WriteBuffer) dropDrained(now uint64) {
	n := 0
	for n < len(w.drains) && w.drains[n] <= now {
		n++
	}
	if n > 0 {
		w.drains = w.drains[:copy(w.drains, w.drains[n:])]
	}
}

// FreeAt reports when the buffer fully drains; a write at or after this
// cycle will not stall regardless of depth.
func (w *WriteBuffer) FreeAt() uint64 {
	if len(w.drains) == 0 {
		return 0
	}
	return w.drains[len(w.drains)-1]
}

// Stats returns cumulative statistics.
func (w *WriteBuffer) Stats() WriteBufferStats { return w.stats }
