// Package mem models the VAX-11/780 memory subsystem below the cache: the
// physical memory array, the SBI (Synchronous Backplane Interconnect) as a
// contended single-transaction resource, and the one-longword write buffer
// that makes the 780's write-through scheme tolerable (§2.1 of the paper).
//
// All timing in this package is expressed in EBOX cycles (200 ns).
//
// The memory array never stops the simulation on a bad reference. Like the
// real controller, it latches an error syndrome — an out-of-range physical
// address, or an injected RDS (Read Data Substitute, the 780's
// uncorrectable-error signal) — and completes the access benignly: reads
// return zero or the (still correct) array data, writes are dropped. The
// CPU polls the latch between instructions and converts it into a machine
// check (internal/cpu, DESIGN.md "Fault model & machine checks").
package mem

// FaultKind classifies a latched memory fault.
type FaultKind int

const (
	// FaultRange is a physical access beyond the memory array — on the
	// real machine, an SBI reference no controller answered.
	FaultRange FaultKind = iota + 1
	// FaultRDS is an uncorrectable array error: the controller delivers
	// substitute data and signals Read Data Substitute.
	FaultRDS
)

func (k FaultKind) String() string {
	switch k {
	case FaultRange:
		return "nonexistent memory"
	case FaultRDS:
		return "RDS (uncorrectable array error)"
	}
	return "unknown memory fault"
}

// Fault is one latched memory error syndrome.
type Fault struct {
	Kind FaultKind
	Addr uint32 // physical address of the failing reference
}

// Memory is the physical memory array (the paper's machines had 8 MB).
type Memory struct {
	data []byte

	inject   func() bool //vaxlint:allow statecomplete -- attachment derived from the fault plane (RDS sampler, nil = never)
	fault    Fault
	hasFault bool
}

// New returns a physical memory of the given size in bytes.
func New(size uint32) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// SetInjector installs an RDS fault sampler consulted once per read
// reference (nil removes it). See internal/fault.
func (m *Memory) SetInjector(sample func() bool) { m.inject = sample }

// TakeFault returns and clears the latched error syndrome. The latch
// holds the first error only; further errors while it is full are lost,
// as on the real controller.
func (m *Memory) TakeFault() (Fault, bool) {
	f, ok := m.fault, m.hasFault
	m.fault, m.hasFault = Fault{}, false
	return f, ok
}

func (m *Memory) latch(k FaultKind, pa uint32) {
	if !m.hasFault {
		m.fault = Fault{Kind: k, Addr: pa}
		m.hasFault = true
	}
}

// check validates an access; out-of-range references latch a fault and
// report false so the caller can complete the access benignly.
func (m *Memory) check(pa uint32, n int) bool {
	if uint64(pa)+uint64(n) > uint64(len(m.data)) {
		m.latch(FaultRange, pa)
		return false
	}
	return true
}

// readCheck additionally samples the RDS injector on an in-range read.
// The simulated array still returns correct data — the error is in the
// (modelled) check bits, not the simulation's copy — so a logged-and-
// continued machine check leaves architectural state exact.
func (m *Memory) readCheck(pa uint32, n int) bool {
	if !m.check(pa, n) {
		return false
	}
	if m.inject != nil && m.inject() {
		m.latch(FaultRDS, pa)
	}
	return true
}

// Byte reads one byte at a physical address.
func (m *Memory) Byte(pa uint32) byte {
	if !m.readCheck(pa, 1) {
		return 0
	}
	return m.data[pa]
}

// ReadLong reads an aligned-agnostic longword at a physical address.
func (m *Memory) ReadLong(pa uint32) uint32 {
	if !m.readCheck(pa, 4) {
		return 0
	}
	return uint32(m.data[pa]) | uint32(m.data[pa+1])<<8 |
		uint32(m.data[pa+2])<<16 | uint32(m.data[pa+3])<<24
}

// SetByte writes one byte at a physical address.
func (m *Memory) SetByte(pa uint32, v byte) {
	if !m.check(pa, 1) {
		return
	}
	m.data[pa] = v
}

// WriteLong writes a longword at a physical address.
func (m *Memory) WriteLong(pa uint32, v uint32) {
	if !m.check(pa, 4) {
		return
	}
	m.data[pa] = byte(v)
	m.data[pa+1] = byte(v >> 8)
	m.data[pa+2] = byte(v >> 16)
	m.data[pa+3] = byte(v >> 24)
}

// Load copies a byte image into physical memory.
func (m *Memory) Load(pa uint32, b []byte) {
	if !m.check(pa, len(b)) {
		return
	}
	copy(m.data[pa:], b)
}

// Read copies n bytes out of physical memory.
func (m *Memory) Read(pa uint32, n int) []byte {
	out := make([]byte, n)
	if !m.readCheck(pa, n) {
		return out
	}
	copy(out, m.data[pa:])
	return out
}
