// Package mem models the VAX-11/780 memory subsystem below the cache: the
// physical memory array, the SBI (Synchronous Backplane Interconnect) as a
// contended single-transaction resource, and the one-longword write buffer
// that makes the 780's write-through scheme tolerable (§2.1 of the paper).
//
// All timing in this package is expressed in EBOX cycles (200 ns).
package mem

import "fmt"

// Memory is the physical memory array (the paper's machines had 8 MB).
type Memory struct {
	data []byte
}

// New returns a physical memory of the given size in bytes.
func New(size uint32) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

func (m *Memory) check(pa uint32, n int) {
	if uint64(pa)+uint64(n) > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: physical access %#x+%d beyond %#x", pa, n, len(m.data)))
	}
}

// Byte reads one byte at a physical address.
func (m *Memory) Byte(pa uint32) byte {
	m.check(pa, 1)
	return m.data[pa]
}

// ReadLong reads an aligned-agnostic longword at a physical address.
func (m *Memory) ReadLong(pa uint32) uint32 {
	m.check(pa, 4)
	return uint32(m.data[pa]) | uint32(m.data[pa+1])<<8 |
		uint32(m.data[pa+2])<<16 | uint32(m.data[pa+3])<<24
}

// SetByte writes one byte at a physical address.
func (m *Memory) SetByte(pa uint32, v byte) {
	m.check(pa, 1)
	m.data[pa] = v
}

// WriteLong writes a longword at a physical address.
func (m *Memory) WriteLong(pa uint32, v uint32) {
	m.check(pa, 4)
	m.data[pa] = byte(v)
	m.data[pa+1] = byte(v >> 8)
	m.data[pa+2] = byte(v >> 16)
	m.data[pa+3] = byte(v >> 24)
}

// Load copies a byte image into physical memory.
func (m *Memory) Load(pa uint32, b []byte) {
	m.check(pa, len(b))
	copy(m.data[pa:], b)
}

// Read copies n bytes out of physical memory.
func (m *Memory) Read(pa uint32, n int) []byte {
	m.check(pa, n)
	out := make([]byte, n)
	copy(out, m.data[pa:])
	return out
}
