package mem

import "fmt"

// Serialized state of the memory subsystem, for the checkpoint/resume
// path (internal/checkpoint). Export copies everything it captures so the
// live structure can keep running after a snapshot is taken; Import
// restores a structure built with the same configuration. Fields wired at
// construction or attachment time (size, timing config, injectors) are not
// part of the state: the resume path reconstructs the structure first and
// then imports into it. The completeness test in internal/checkpoint walks
// the live structs field by field against these state structs.

// MemoryState is the serialized state of the physical memory array.
type MemoryState struct {
	Data     []byte
	Fault    Fault
	HasFault bool
}

// ExportState captures the memory array and its error latch.
func (m *Memory) ExportState() MemoryState {
	st := MemoryState{
		Data:     make([]byte, len(m.data)),
		Fault:    m.fault,
		HasFault: m.hasFault,
	}
	copy(st.Data, m.data)
	return st
}

// ImportState restores a state captured from a memory of the same size.
func (m *Memory) ImportState(st MemoryState) error {
	if len(st.Data) != len(m.data) {
		return fmt.Errorf("mem: snapshot holds %d bytes, memory has %d", len(st.Data), len(m.data))
	}
	copy(m.data, st.Data)
	m.fault = st.Fault
	m.hasFault = st.HasFault
	return nil
}

// SBIState is the serialized state of the backplane.
type SBIState struct {
	BusyUntil  uint64
	Stats      SBIStats
	FaultCycle uint64
	HasFault   bool
}

// ExportState captures the bus occupancy, statistics and error latch.
func (s *SBI) ExportState() SBIState {
	return SBIState{
		BusyUntil:  s.busyUntil,
		Stats:      s.stats,
		FaultCycle: s.faultCycle,
		HasFault:   s.hasFault,
	}
}

// ImportState restores a captured SBI state.
func (s *SBI) ImportState(st SBIState) {
	s.busyUntil = st.BusyUntil
	s.stats = st.Stats
	s.faultCycle = st.FaultCycle
	s.hasFault = st.HasFault
}

// WriteBufferState is the serialized state of the write buffer.
type WriteBufferState struct {
	Drains []uint64
	Stats  WriteBufferStats
}

// ExportState captures the buffered-write drain times and statistics.
func (w *WriteBuffer) ExportState() WriteBufferState {
	st := WriteBufferState{
		Drains: make([]uint64, len(w.drains)),
		Stats:  w.stats,
	}
	copy(st.Drains, w.drains)
	return st
}

// ImportState restores a state captured from a buffer of the same depth.
func (w *WriteBuffer) ImportState(st WriteBufferState) error {
	if len(st.Drains) > w.depth {
		return fmt.Errorf("mem: snapshot holds %d buffered writes, buffer depth is %d",
			len(st.Drains), w.depth)
	}
	w.drains = append(w.drains[:0], st.Drains...)
	w.stats = st.Stats
	return nil
}
