package tb

// State is the serialized state of the translation buffer, for the
// checkpoint/resume path (internal/checkpoint). The tracer and fault
// injector are attachment-time wiring, re-attached on resume.

// EntryState is one TB entry.
type EntryState struct {
	Valid bool
	Tag   uint32
	PFN   uint32
	MRU   bool
}

// State captures both halves, the statistics and the parity-error latch.
type State struct {
	Halves  [2][SetsPerHalf][Ways]EntryState
	Stats   Stats
	FaultVA uint32
	HasFault bool
}

// ExportState captures the full TB state.
func (t *TB) ExportState() State {
	st := State{Stats: t.stats, FaultVA: t.faultVA, HasFault: t.hasFault}
	for h := range t.halves {
		for s := range t.halves[h] {
			for w, e := range t.halves[h][s] {
				st.Halves[h][s][w] = EntryState{Valid: e.valid, Tag: e.tag, PFN: e.pfn, MRU: e.mru}
			}
		}
	}
	return st
}

// ImportState restores a captured TB state.
func (t *TB) ImportState(st State) {
	for h := range t.halves {
		for s := range t.halves[h] {
			for w := range t.halves[h][s] {
				e := st.Halves[h][s][w]
				t.halves[h][s][w] = entry{valid: e.Valid, tag: e.Tag, pfn: e.PFN, mru: e.MRU}
			}
		}
	}
	t.stats = st.Stats
	t.faultVA = st.FaultVA
	t.hasFault = st.HasFault
}
