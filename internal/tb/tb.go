// Package tb models the VAX-11/780 translation buffer: 128 entries, two-way
// set-associative, split into a system half and a process half; the process
// half is flushed on context switch (LDPCTX). The TB is controlled by
// microcode: a miss causes a microcode trap to the miss-service routine
// (internal/ebox), which makes the miss *visible to the µPC monitor* — the
// property §4.2 of the paper relies on.
package tb

import "vax780/internal/mmu"

const (
	// Ways and SetsPerHalf give the 11/780 geometry: 2 × 32 × 2 halves =
	// 128 entries.
	Ways        = 2
	SetsPerHalf = 32
)

// Stats are cumulative hardware-visible counts (the paper derives miss
// counts from the microcode histogram; these counters exist for
// cross-checking).
type Stats struct {
	Hits           [2]uint64 // indexed by stream: 0 = I-stream, 1 = D-stream
	Misses         [2]uint64
	ProcessFlushes uint64
	FullFlushes    uint64
	// ParityErrors counts injected TB parity errors. Each invalidates
	// the affected entry, forces a miss (the microcode re-walks the page
	// table), and raises a machine check.
	ParityErrors uint64
}

// Stream distinguishes I-stream from D-stream references in statistics.
type Stream int

// Stream values.
const (
	IStream Stream = 0
	DStream Stream = 1
)

type entry struct {
	valid bool
	tag   uint32
	pfn   uint32
	mru   bool
}

// Tracer observes TB activity (see internal/trace). All callbacks fire
// before the operation's state change is applied.
type Tracer interface {
	TBLookup(va uint32, st Stream)
	TBInsert(va uint32)
	TBFlushProcess()
	TBFlushAll()
	TBInvalidate(va uint32)
}

// TB is the translation buffer.
type TB struct {
	// halves[0] = process (P0/P1), halves[1] = system (S0).
	halves [2][SetsPerHalf][Ways]entry
	stats  Stats
	tracer Tracer //vaxlint:allow statecomplete -- attachment; re-attached after resume

	inject   func() bool //vaxlint:allow statecomplete -- attachment derived from the fault plane (parity sampler, nil = never)
	faultVA  uint32
	hasFault bool
}

// SetTracer attaches a passive activity tracer (nil detaches).
func (t *TB) SetTracer(tr Tracer) { t.tracer = tr }

// SetInjector installs a parity fault sampler consulted once per lookup
// (nil removes it). See internal/fault.
func (t *TB) SetInjector(sample func() bool) { t.inject = sample }

// TakeFault returns and clears the latched parity syndrome: the virtual
// address whose lookup saw bad parity. Single-error latch.
func (t *TB) TakeFault() (va uint32, ok bool) {
	a, had := t.faultVA, t.hasFault
	t.faultVA, t.hasFault = 0, false
	return a, had
}

// New returns an empty translation buffer.
func New() *TB { return &TB{} }

// Stats returns cumulative statistics.
func (t *TB) Stats() Stats { return t.stats }

func half(va uint32) int {
	if mmu.IsSystem(va) {
		return 1
	}
	return 0
}

// index and tag: the set index is the low bits of the VPN *including* the
// region bits above it in the tag so P0 and P1 pages do not alias.
func split(va uint32) (set int, tag uint32) {
	vpn := va >> mmu.PageShift // includes region bits in the high part
	return int(vpn % SetsPerHalf), vpn / SetsPerHalf
}

// Lookup translates va. On a hit it returns the physical address and true.
// On a miss it returns false; the caller (microcode) must walk the page
// table and Insert the translation.
func (t *TB) Lookup(va uint32, st Stream) (pa uint32, hit bool) {
	if t.tracer != nil {
		t.tracer.TBLookup(va, st)
	}
	h := half(va)
	set, tag := split(va)
	ways := &t.halves[h][set]
	if t.inject != nil && t.inject() {
		// Parity error: a matching entry can no longer be trusted —
		// drop it so the lookup misses and the microcode re-walks the
		// page table, and latch the syndrome for the machine check.
		for w := range ways {
			if ways[w].valid && ways[w].tag == tag {
				ways[w] = entry{}
			}
		}
		t.stats.ParityErrors++
		if !t.hasFault {
			t.faultVA, t.hasFault = va, true
		}
		t.stats.Misses[st]++
		return 0, false
	}
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].mru = true
			ways[1-w].mru = false
			t.stats.Hits[st]++
			return ways[w].pfn<<mmu.PageShift | va&mmu.PageMask, true
		}
	}
	t.stats.Misses[st]++
	return 0, false
}

// Probe reports whether va would hit, without touching statistics or LRU.
func (t *TB) Probe(va uint32) bool {
	h := half(va)
	set, tag := split(va)
	for _, e := range t.halves[h][set] {
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// Insert installs a translation (called by the TB-miss microcode routine).
// The not-most-recently-used way of the set is replaced.
func (t *TB) Insert(va uint32, pfn uint32) {
	if t.tracer != nil {
		t.tracer.TBInsert(va)
	}
	h := half(va)
	set, tag := split(va)
	ways := &t.halves[h][set]
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if !ways[w].mru {
			victim = w
		}
	}
	ways[victim] = entry{valid: true, tag: tag, pfn: pfn & mmu.PTEPFNMask, mru: true}
	ways[1-victim].mru = false
}

// Invalidate removes a single translation (MTPR TBIS).
func (t *TB) Invalidate(va uint32) {
	if t.tracer != nil {
		t.tracer.TBInvalidate(va)
	}
	h := half(va)
	set, tag := split(va)
	ways := &t.halves[h][set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w] = entry{}
		}
	}
}

// FlushProcess invalidates the process half (performed by LDPCTX on a
// context switch; the system half survives).
func (t *TB) FlushProcess() {
	if t.tracer != nil {
		t.tracer.TBFlushProcess()
	}
	t.halves[0] = [SetsPerHalf][Ways]entry{}
	t.stats.ProcessFlushes++
}

// FlushAll invalidates both halves (MTPR TBIA).
func (t *TB) FlushAll() {
	if t.tracer != nil {
		t.tracer.TBFlushAll()
	}
	t.halves[0] = [SetsPerHalf][Ways]entry{}
	t.halves[1] = [SetsPerHalf][Ways]entry{}
	t.stats.FullFlushes++
}
