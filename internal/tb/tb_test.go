package tb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vax780/internal/mmu"
)

func TestMissInsertHit(t *testing.T) {
	b := New()
	va := uint32(0x80001234)
	if _, hit := b.Lookup(va, DStream); hit {
		t.Fatal("cold lookup should miss")
	}
	b.Insert(va, 0x42)
	pa, hit := b.Lookup(va, DStream)
	if !hit {
		t.Fatal("lookup after insert should hit")
	}
	want := uint32(0x42)<<mmu.PageShift | va&mmu.PageMask
	if pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
	st := b.Stats()
	if st.Misses[DStream] != 1 || st.Hits[DStream] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHalvesIndependent(t *testing.T) {
	b := New()
	proc := uint32(0x00002000)
	sys := uint32(0x80002000)
	b.Insert(proc, 1)
	b.Insert(sys, 2)
	if _, hit := b.Lookup(proc, DStream); !hit {
		t.Error("process entry lost")
	}
	if _, hit := b.Lookup(sys, DStream); !hit {
		t.Error("system entry lost")
	}
	b.FlushProcess()
	if b.Probe(proc) {
		t.Error("process half should be flushed")
	}
	if !b.Probe(sys) {
		t.Error("system half must survive a process flush")
	}
}

func TestFlushAll(t *testing.T) {
	b := New()
	b.Insert(0x1000, 1)
	b.Insert(0x80001000, 2)
	b.FlushAll()
	if b.Probe(0x1000) || b.Probe(0x80001000) {
		t.Error("FlushAll left entries")
	}
	if b.Stats().FullFlushes != 1 {
		t.Error("flush not counted")
	}
}

func TestInvalidateSingle(t *testing.T) {
	b := New()
	b.Insert(0x3000, 3)
	b.Insert(0x5000, 5)
	b.Invalidate(0x3000)
	if b.Probe(0x3000) {
		t.Error("invalidated entry still present")
	}
	if !b.Probe(0x5000) {
		t.Error("unrelated entry lost")
	}
}

func TestP0P1NoAliasing(t *testing.T) {
	b := New()
	// Same VPN-within-region, different regions -> distinct translations.
	p0 := uint32(7 * mmu.PageSize)
	p1 := uint32(0x40000000 + 7*mmu.PageSize)
	b.Insert(p0, 100)
	b.Insert(p1, 200)
	pa0, hit0 := b.Lookup(p0, DStream)
	pa1, hit1 := b.Lookup(p1, DStream)
	if !hit0 || !hit1 {
		t.Fatal("both should hit")
	}
	if pa0 == pa1 {
		t.Error("P0 and P1 pages aliased")
	}
}

func TestNMUReplacementKeepsMRU(t *testing.T) {
	b := New()
	// Three pages in the same set: VPNs differing by SetsPerHalf.
	mk := func(i uint32) uint32 { return (5 + i*SetsPerHalf) << mmu.PageShift }
	b.Insert(mk(0), 10)
	b.Insert(mk(1), 11)
	b.Lookup(mk(0), DStream) // make entry 0 MRU
	b.Insert(mk(2), 12)      // must replace entry 1
	if !b.Probe(mk(0)) {
		t.Error("MRU entry was replaced")
	}
	if b.Probe(mk(1)) {
		t.Error("non-MRU entry should have been replaced")
	}
	if !b.Probe(mk(2)) {
		t.Error("new entry missing")
	}
}

func TestPropertyInsertThenProbe(t *testing.T) {
	f := func(pages []uint32) bool {
		b := New()
		for _, p := range pages {
			va := p &^ 0xC0000000 // keep out of reserved region
			b.Insert(va, p&mmu.PTEPFNMask)
			if !b.Probe(va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the TB is a cache of mmu.Translate — after a miss is serviced
// by walking real page tables, Lookup returns the same PA that Translate
// computes.
func TestPropertyTBMatchesWalk(t *testing.T) {
	pfnOf := func(va uint32) uint32 { return (va>>mmu.PageShift)*7 + 3 } // arbitrary injective-ish map
	b := New()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		va := uint32(r.Intn(1 << 24))
		if r.Intn(2) == 0 {
			va |= 0x80000000
		}
		pa, hit := b.Lookup(va, Stream(r.Intn(2)))
		if !hit {
			b.Insert(va, pfnOf(va))
			pa, hit = b.Lookup(va, DStream)
			if !hit {
				t.Fatalf("insert of %#x did not take", va)
			}
		}
		want := (pfnOf(va)&mmu.PTEPFNMask)<<mmu.PageShift | va&mmu.PageMask
		if pa != want {
			t.Fatalf("va %#x: pa = %#x, want %#x", va, pa, want)
		}
	}
	st := b.Stats()
	if st.Hits[0]+st.Hits[1]+st.Misses[0]+st.Misses[1] < 5000 {
		t.Error("lookups undercounted")
	}
}
