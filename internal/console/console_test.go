package console

import (
	"strings"
	"testing"

	"vax780/internal/asm"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
)

func testMachine(t *testing.T, src string) (*cpu.Machine, *core.Monitor, *asm.Image) {
	t.Helper()
	im, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Config{MemBytes: 1 << 20})
	mon := core.NewMonitor()
	mon.Start()
	m.AttachProbe(mon)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	return m, mon, im
}

const dbgProgram = `
	MOVL	#5, R1
loop:	ADDL2	#2, R2
	SOBGTR	R1, loop
target:	MOVL	#0x1234, R3
	HALT
`

func TestStepAndRegs(t *testing.T) {
	m, mon, _ := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, mon, &out)
	c.Exec("s")
	if m.Instructions() != 1 {
		t.Errorf("instret = %d after one step", m.Instructions())
	}
	c.Exec("s 2")
	if m.Instructions() != 3 {
		t.Errorf("instret = %d after three steps", m.Instructions())
	}
	out.Reset()
	c.Exec("r")
	s := out.String()
	if !strings.Contains(s, "R1") || !strings.Contains(s, "PSL") || !strings.Contains(s, "cc=") {
		t.Errorf("regs output incomplete:\n%s", s)
	}
}

func TestBreakpoint(t *testing.T) {
	m, mon, im := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, mon, &out)
	target := im.MustAddr("target")
	c.Exec("b " + hex(target))
	c.Exec("c")
	if m.PCVal() != target {
		t.Errorf("stopped at %#x, want breakpoint %#x", m.PCVal(), target)
	}
	if m.Halted() {
		t.Error("should have stopped at the breakpoint, not HALT")
	}
	if !strings.Contains(out.String(), "break at") {
		t.Error("breakpoint hit not reported")
	}
	// Continue to completion after deleting the breakpoint.
	c.Exec("bd " + hex(target))
	c.Exec("c")
	if !m.Halted() {
		t.Error("did not reach HALT")
	}
	if m.R[3] != 0x1234 {
		t.Errorf("R3 = %#x", m.R[3])
	}
}

func TestExamineAndDisasm(t *testing.T) {
	m, mon, im := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, mon, &out)
	c.Exec("e 1000 2")
	if !strings.Contains(out.String(), "00001000:") {
		t.Errorf("examine output:\n%s", out.String())
	}
	out.Reset()
	c.Exec("d " + hex(im.Org) + " 3")
	s := out.String()
	if !strings.Contains(s, "MOVL") || !strings.Contains(s, "ADDL2") || !strings.Contains(s, "SOBGTR") {
		t.Errorf("disasm output:\n%s", s)
	}
}

func TestHistogramSummary(t *testing.T) {
	m, mon, _ := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, mon, &out)
	c.Exec("c")
	out.Reset()
	c.Exec("h 3")
	s := out.String()
	if !strings.Contains(s, "CPI") || !strings.Contains(s, "decode.ird") {
		t.Errorf("hist output:\n%s", s)
	}
	// Without a monitor the command degrades gracefully.
	var out2 strings.Builder
	c2 := New(m, nil, &out2)
	c2.Exec("h")
	if !strings.Contains(out2.String(), "no monitor") {
		t.Error("missing-monitor case not handled")
	}
}

func TestScriptedSession(t *testing.T) {
	m, mon, _ := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, mon, &out)
	script := strings.NewReader("s 3\nr\nbl\nc\nq\nignored-after-quit\n")
	if err := c.Run(script); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Error("session should have run to HALT")
	}
	if !strings.Contains(out.String(), "halted at cycle") {
		t.Errorf("missing halt report:\n%s", out.String())
	}
}

func TestUnknownCommandAndHelp(t *testing.T) {
	m, _, _ := testMachine(t, dbgProgram)
	var out strings.Builder
	c := New(m, nil, &out)
	c.Exec("frobnicate")
	if !strings.Contains(out.String(), "unknown command") {
		t.Error("unknown command not reported")
	}
	out.Reset()
	c.Exec("?")
	if !strings.Contains(out.String(), "step") || !strings.Contains(out.String(), "breakpoint") {
		t.Errorf("help output:\n%s", out.String())
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return string(out)
}
