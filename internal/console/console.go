// Package console is an operator's console for the simulated VAX-11/780:
// single-stepping, breakpoints, register and memory examination,
// disassembly at the PC, and (when a monitor is attached) live histogram
// summaries. It is line-oriented and scriptable, in the spirit of the
// machine's console processor.
package console

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vax780/internal/asm"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/mmu"
	"vax780/internal/vax"
)

// Console drives one machine.
type Console struct {
	m      *cpu.Machine
	mon    *core.Monitor // optional
	out    io.Writer
	breaks map[uint32]bool
	quit   bool
}

// New returns a console for the machine. mon may be nil.
func New(m *cpu.Machine, mon *core.Monitor, out io.Writer) *Console {
	return &Console{m: m, mon: mon, out: out, breaks: map[uint32]bool{}}
}

// Run reads commands until EOF or "q". Unknown commands print help.
func (c *Console) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for !c.quit && sc.Scan() {
		c.Exec(sc.Text())
	}
	return sc.Err()
}

// Exec executes one command line.
func (c *Console) Exec(line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	arg := func(i int, def uint64) uint64 {
		if i >= len(fields) {
			return def
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[i], "0x"), 16, 64)
		if err != nil {
			v2, err2 := strconv.ParseUint(fields[i], 10, 64)
			if err2 != nil {
				fmt.Fprintf(c.out, "?bad number %q\n", fields[i])
				return def
			}
			return v2
		}
		return v
	}
	switch fields[0] {
	case "s", "step":
		c.step(int(arg(1, 1)))
	case "c", "continue":
		c.cont(arg(1, 1_000_000))
	case "b", "break":
		if len(fields) < 2 {
			fmt.Fprintln(c.out, "?break needs an address")
			return
		}
		c.breaks[uint32(arg(1, 0))] = true
		fmt.Fprintf(c.out, "break at %08x\n", uint32(arg(1, 0)))
	case "bd":
		delete(c.breaks, uint32(arg(1, 0)))
	case "bl":
		addrs := make([]uint32, 0, len(c.breaks))
		for a := range c.breaks {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(c.out, "break %08x\n", a)
		}
	case "r", "regs":
		c.regs()
	case "e", "examine":
		c.examine(uint32(arg(1, 0)), int(arg(2, 4)))
	case "d", "disasm":
		addr := c.m.PCVal()
		if len(fields) > 1 {
			addr = uint32(arg(1, uint64(addr)))
		}
		c.disasm(addr, int(arg(2, 8)))
	case "h", "hist":
		c.hist(int(arg(1, 8)))
	case "q", "quit":
		c.quit = true
	case "?", "help":
		c.help()
	default:
		fmt.Fprintf(c.out, "?unknown command %q (try ?)\n", fields[0])
	}
}

func (c *Console) help() {
	fmt.Fprint(c.out, `commands:
  s [n]        step n instructions (default 1)
  c [cycles]   continue for a cycle budget, honoring breakpoints
  b <addr>     set a breakpoint (hex)
  bd <addr>    delete a breakpoint
  bl           list breakpoints
  r            show registers and condition codes
  e <addr> [n] examine n longwords (hex address)
  d [addr] [n] disassemble n instructions (default: at PC)
  h [n]        histogram summary: CPI and the n hottest locations
  q            quit
`)
}

func (c *Console) step(n int) {
	for i := 0; i < n && !c.m.Halted() && c.m.Err() == nil; i++ {
		c.m.StepInstruction()
	}
	c.status()
	c.disasm(c.m.PCVal(), 1)
}

func (c *Console) cont(budget uint64) {
	start := c.m.Cycle()
	for !c.m.Halted() && c.m.Err() == nil && c.m.Cycle()-start < budget {
		c.m.StepInstruction()
		if c.breaks[c.m.PCVal()] {
			fmt.Fprintf(c.out, "break at %08x\n", c.m.PCVal())
			break
		}
	}
	c.status()
}

func (c *Console) status() {
	switch {
	case c.m.Err() != nil:
		fmt.Fprintf(c.out, "machine error: %v\n", c.m.Err())
	case c.m.Halted():
		fmt.Fprintf(c.out, "halted at cycle %d (%d instructions)\n", c.m.Cycle(), c.m.Instructions())
	default:
		fmt.Fprintf(c.out, "pc=%08x cycle=%d instr=%d\n", c.m.PCVal(), c.m.Cycle(), c.m.Instructions())
	}
}

func (c *Console) regs() {
	for i := 0; i < 16; i += 4 {
		for j := i; j < i+4; j++ {
			name := vax.Reg(j).String()
			v := c.m.R[j]
			if vax.Reg(j) == vax.PC {
				v = c.m.PCVal()
			}
			fmt.Fprintf(c.out, "%-3s %08x   ", name, v)
		}
		fmt.Fprintln(c.out)
	}
	psl := c.m.PSL
	cc := ""
	for _, b := range []struct {
		bit  uint32
		name string
	}{{vax.PSLN, "N"}, {vax.PSLZ, "Z"}, {vax.PSLV, "V"}, {vax.PSLC, "C"}} {
		if psl&b.bit != 0 {
			cc += b.name
		} else {
			cc += "-"
		}
	}
	fmt.Fprintf(c.out, "PSL %08x  cc=%s  mode=%d ipl=%d\n", psl, cc, c.m.CurrentMode(), vax.IPL(psl))
}

func (c *Console) examine(va uint32, n int) {
	for i := 0; i < n; i++ {
		addr := va + uint32(4*i)
		pa, err := c.translate(addr)
		if err != nil {
			fmt.Fprintf(c.out, "%08x: <%v>\n", addr, err)
			return
		}
		fmt.Fprintf(c.out, "%08x: %08x\n", addr, c.m.Mem.ReadLong(pa))
	}
}

func (c *Console) translate(va uint32) (uint32, error) {
	return mmu.Translate(va, &c.m.MMU, c.m.Mem)
}

func (c *Console) disasm(va uint32, n int) {
	for i := 0; i < n; i++ {
		pa, err := c.translate(va)
		if err != nil {
			fmt.Fprintf(c.out, "%08x: <%v>\n", va, err)
			return
		}
		// Pull enough bytes for one instruction through translation.
		buf := make([]byte, 0, 24)
		for j := uint32(0); j < 24; j++ {
			p, err := c.translate(va + j)
			if err != nil {
				break
			}
			buf = append(buf, c.m.Mem.Byte(p))
		}
		_ = pa
		text, size, err := asm.DisasmOne(buf, va, 0)
		if err != nil {
			fmt.Fprintf(c.out, "%08x: .byte %02x ; %v\n", va, buf[0], err)
			return
		}
		fmt.Fprintf(c.out, "%08x: %s\n", va, text)
		va += uint32(size)
	}
}

func (c *Console) hist(n int) {
	if c.mon == nil {
		fmt.Fprintln(c.out, "?no monitor attached")
		return
	}
	h := c.mon.Snapshot()
	r := core.Reduce(h, cpu.CS)
	fmt.Fprintf(c.out, "%d instructions, %d cycles, CPI %.3f\n", r.Instructions, r.Cycles, r.CPI())
	for _, s := range core.HotSpots(h, cpu.CS, n) {
		fmt.Fprintf(c.out, "  %-26s %-10s %8d execs %8d stalls %5.1f%%\n",
			s.Name, s.Row, s.Execs, s.Stalls, 100*s.Share)
	}
}
