// Package mmu implements the VAX virtual-memory architecture used by the
// model: the P0/P1/S0 address regions, 512-byte pages, page-table entries
// and the page-table walk that the translation-buffer miss microcode
// performs. (The translation buffer itself is internal/tb; the walk here is
// the architectural definition the microcode routine implements.)
package mmu

import "fmt"

// Page geometry.
const (
	PageShift = 9
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Region is a VAX virtual address region, selected by VA bits 31:30.
type Region uint8

const (
	P0 Region = iota // 0x00000000-0x3FFFFFFF: program region
	P1               // 0x40000000-0x7FFFFFFF: control (stack) region
	S0               // 0x80000000-0xBFFFFFFF: system region
	Reserved
)

func (r Region) String() string {
	switch r {
	case P0:
		return "P0"
	case P1:
		return "P1"
	case S0:
		return "S0"
	}
	return "reserved"
}

// RegionOf returns the region of a virtual address.
func RegionOf(va uint32) Region { return Region(va >> 30) }

// IsSystem reports whether va is in system space (used to pick the
// system/process half of the translation buffer).
func IsSystem(va uint32) bool { return va&0x80000000 != 0 }

// VPN returns the virtual page number within the address's region.
func VPN(va uint32) uint32 { return (va & 0x3FFFFFFF) >> PageShift }

// PTE layout (the architectural 32-bit page table entry; this model uses
// the valid bit, the protection field and the PFN).
const (
	PTEValid     = uint32(1) << 31
	PTEModify    = uint32(1) << 26
	PTEProtShift = 27
	PTEProtMask  = uint32(0xF) << PTEProtShift
	PTEPFNMask   = uint32(0x1FFFFF)
)

// Protection codes (subset).
const (
	ProtNone uint32 = 0x0
	ProtKW   uint32 = 0x2 // kernel read/write
	ProtUR   uint32 = 0xE // user read, kernel write
	ProtUW   uint32 = 0x4 // all read/write
)

// MakePTE builds a valid PTE for a page frame number.
func MakePTE(pfn uint32, prot uint32) uint32 {
	return PTEValid | (prot << PTEProtShift & PTEProtMask) | (pfn & PTEPFNMask)
}

// PFN extracts the page frame number of a PTE.
func PFN(pte uint32) uint32 { return pte & PTEPFNMask }

// Valid reports whether a PTE is valid.
func Valid(pte uint32) bool { return pte&PTEValid != 0 }

// Registers are the memory-management processor registers. P0BR and P1BR
// are *system-space virtual* addresses (as on the real VAX); SBR is a
// physical address.
type Registers struct {
	P0BR, P0LR uint32
	P1BR, P1LR uint32
	SBR, SLR   uint32
	// Enabled gates address translation (MAPEN). When false, virtual
	// addresses are physical addresses.
	Enabled bool
}

// Fault describes a memory-management fault discovered during translation.
type Fault struct {
	VA     uint32
	Kind   FaultKind
	Detail string
}

// FaultKind classifies translation faults.
type FaultKind uint8

const (
	FaultLength FaultKind = iota // VPN beyond the region's length register
	FaultInvalid                 // PTE valid bit clear (page fault)
	FaultRegion                  // reference to the reserved region
)

func (f *Fault) Error() string {
	kinds := [...]string{"length violation", "invalid PTE", "reserved region"}
	return fmt.Sprintf("mmu: %s at va %#x (%s)", kinds[f.Kind], f.VA, f.Detail)
}

// fault builds the error for a failed translation. Kept out of line so the
// walk's success path allocates nothing: every caller unwinds into the
// fault-delivery microcode, which costs hundreds of cycles anyway.
//
//vaxlint:allow hotpath -- cold: runs only when a translation faults; the fault-delivery microcode dominates
func fault(va uint32, kind FaultKind, detail string) error {
	return &Fault{VA: va, Kind: kind, Detail: detail}
}

// LongReader reads an aligned longword of physical memory; the walk uses
// it to fetch page-table entries. An interface (not a func value) so hot
// callers can pass their memory array without binding a method closure.
type LongReader interface {
	ReadLong(pa uint32) uint32
}

// PTERef locates the page-table entry for a virtual address. For process
// regions the PTE lives in system virtual space and its address must itself
// be translated — the nested walk the real TB-miss microcode performs.
type PTERef struct {
	Addr   uint32 // address of the PTE
	IsPhys bool   // true: Addr is physical (system page table)
}

// PTEAddr returns where the PTE for va lives, checking the region length
// register.
func (r *Registers) PTEAddr(va uint32) (PTERef, error) {
	vpn := VPN(va)
	switch RegionOf(va) {
	case P0:
		if vpn >= r.P0LR {
			return PTERef{}, fault(va, FaultLength, "P0LR")
		}
		return PTERef{Addr: r.P0BR + 4*vpn}, nil
	case P1:
		// Simplification: P1 is modelled as growing upward from P1BR like
		// P0 (the real VAX's downward-growing P1 offset arithmetic adds
		// nothing to the performance behaviour measured by the paper).
		if vpn >= r.P1LR {
			return PTERef{}, fault(va, FaultLength, "P1LR")
		}
		return PTERef{Addr: r.P1BR + 4*vpn}, nil
	case S0:
		if vpn >= r.SLR {
			return PTERef{}, fault(va, FaultLength, "SLR")
		}
		return PTERef{Addr: r.SBR + 4*vpn, IsPhys: true}, nil
	}
	return PTERef{}, fault(va, FaultRegion, "VA bits 31:30 = 3")
}

// Translate performs a complete architectural translation of va using a
// physical-memory reader, including the nested system-space walk for
// process-region addresses. It is the reference implementation used by the
// loader, the console, and tests; the timed microcode routine in
// internal/ebox performs the same steps as individual timed reads.
func Translate(va uint32, r *Registers, mem LongReader) (uint32, error) {
	if !r.Enabled {
		return va, nil
	}
	ref, err := r.PTEAddr(va)
	if err != nil {
		return 0, err
	}
	pteAddr := ref.Addr
	if !ref.IsPhys {
		// The process PTE lives in S0 space: translate its address first.
		sysRef, err := r.PTEAddr(pteAddr)
		if err != nil {
			return 0, err
		}
		sysPTE := mem.ReadLong(sysRef.Addr)
		if !Valid(sysPTE) {
			return 0, fault(pteAddr, FaultInvalid, "system PTE for process page table")
		}
		pteAddr = PFN(sysPTE)<<PageShift | (pteAddr & PageMask)
	}
	pte := mem.ReadLong(pteAddr)
	if !Valid(pte) {
		return 0, fault(va, FaultInvalid, "page PTE")
	}
	return PFN(pte)<<PageShift | (va & PageMask), nil
}
