package mmu

import (
	"testing"
	"testing/quick"

	"vax780/internal/mem"
)

func TestRegionOf(t *testing.T) {
	cases := map[uint32]Region{
		0x00000000: P0, 0x3FFFFFFF: P0,
		0x40000000: P1, 0x7FFFFFFF: P1,
		0x80000000: S0, 0xBFFFFFFF: S0,
		0xC0000000: Reserved,
	}
	for va, want := range cases {
		if got := RegionOf(va); got != want {
			t.Errorf("RegionOf(%#x) = %v, want %v", va, got, want)
		}
	}
}

func TestPTEBits(t *testing.T) {
	pte := MakePTE(0x1234, ProtUW)
	if !Valid(pte) {
		t.Error("MakePTE should set valid")
	}
	if PFN(pte) != 0x1234 {
		t.Errorf("PFN = %#x", PFN(pte))
	}
	if Valid(pte &^ PTEValid) {
		t.Error("cleared valid bit should be invalid")
	}
}

// buildTables sets up: S0 pages identity-mapped to low memory; a P0 page
// table living in S0 space.
func buildTables(t *testing.T, m *mem.Memory) *Registers {
	t.Helper()
	const (
		sbr       = 0x10000 // physical address of system page table
		nSysPages = 256     // map S0 va 0x80000000.. to phys 0..
		p0tableVA = 0x80000000 + uint32(100)*PageSize
	)
	r := &Registers{SBR: sbr, SLR: 512, Enabled: true}
	// System PTEs: S0 page i -> frame i (identity for first nSysPages).
	for i := uint32(0); i < nSysPages; i++ {
		m.WriteLong(sbr+4*i, MakePTE(i, ProtKW))
	}
	// The P0 page table occupies S0 page 100 -> physical frame 100.
	// P0 page j -> frame 200+j.
	p0tablePA := uint32(100) * PageSize
	for j := uint32(0); j < 16; j++ {
		m.WriteLong(p0tablePA+4*j, MakePTE(200+j, ProtUW))
	}
	r.P0BR = p0tableVA
	r.P0LR = 16
	r.P1BR = p0tableVA // unused in these tests
	r.P1LR = 0
	return r
}

func TestTranslateSystemSpace(t *testing.T) {
	m := mem.New(1 << 20)
	r := buildTables(t, m)
	pa, err := Translate(0x80000000+5*PageSize+7, r, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(5*PageSize + 7); pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
}

func TestTranslateProcessSpaceNested(t *testing.T) {
	m := mem.New(1 << 20)
	r := buildTables(t, m)
	pa, err := Translate(3*PageSize+9, r, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32((200+3)*PageSize + 9); pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
}

func TestTranslateFaults(t *testing.T) {
	m := mem.New(1 << 20)
	r := buildTables(t, m)
	// Length violation: P0 vpn 16 >= P0LR.
	if _, err := Translate(16*PageSize, r, m); err == nil {
		t.Error("length violation not detected")
	}
	// Invalid PTE: clear a PTE.
	m.WriteLong(uint32(100)*PageSize+4*2, 0)
	if _, err := Translate(2*PageSize, r, m); err == nil {
		t.Error("invalid PTE not detected")
	}
	// Reserved region.
	if _, err := Translate(0xC0000000, r, m); err == nil {
		t.Error("reserved region not detected")
	}
	// Fault message includes the VA.
	_, err := Translate(16*PageSize, r, m)
	if f, ok := err.(*Fault); !ok || f.Kind != FaultLength {
		t.Errorf("err = %v, want length Fault", err)
	}
}

func TestTranslateDisabled(t *testing.T) {
	r := &Registers{Enabled: false}
	pa, err := Translate(0x1234, r, nil)
	if err != nil || pa != 0x1234 {
		t.Errorf("disabled translation: pa=%#x err=%v", pa, err)
	}
}

func TestPropertyTranslatePreservesOffset(t *testing.T) {
	m := mem.New(1 << 20)
	r := buildTables(t, m)
	f := func(page uint8, off uint16) bool {
		va := 0x80000000 + uint32(page%200)*PageSize + uint32(off)&PageMask
		pa, err := Translate(va, r, m)
		if err != nil {
			return false
		}
		return pa&PageMask == va&PageMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
