package trace

import (
	"bytes"
	"testing"

	"vax780/internal/asm"
	"vax780/internal/cache"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
	"vax780/internal/vmos"
	"vax780/internal/workload"
)

// capture runs a small timesharing system with a recorder attached.
func capture(t *testing.T) (*cpu.Machine, *Recorder) {
	t.Helper()
	s := vmos.NewSystem(vmos.Config{IncludeNull: true})
	im, err := workload.Generate(workload.GenConfig{
		Mix: workload.TimesharingResearch.Mix, Blocks: 30, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.AddProcess("w", im); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	rec.Attach(s.Machine())
	res := s.Run(400_000)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	return s.Machine(), rec
}

func TestExactTBReplayMatchesLive(t *testing.T) {
	m, rec := capture(t)
	live := m.TLB.Stats()
	replayed := ReplayTB(&rec.Trace)
	if replayed.Hits != live.Hits || replayed.Misses != live.Misses {
		t.Errorf("TB replay diverged: live hits=%v misses=%v, replay hits=%v misses=%v",
			live.Hits, live.Misses, replayed.Hits, replayed.Misses)
	}
	if replayed.ProcessFlushes != live.ProcessFlushes {
		t.Errorf("flush counts differ: %d vs %d", live.ProcessFlushes, replayed.ProcessFlushes)
	}
}

func TestExactCacheReplayMatchesLive(t *testing.T) {
	m, rec := capture(t)
	live := m.Cache.Stats()
	replayed, err := ReplayCache(&rec.Trace, m.Cache.Config())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.ReadHits != live.ReadHits || replayed.ReadMisses != live.ReadMisses {
		t.Errorf("cache replay diverged:\nlive   %+v\nreplay %+v", live, replayed)
	}
	if replayed.WriteHits != live.WriteHits || replayed.WriteMisses != live.WriteMisses {
		t.Errorf("write replay diverged: %+v vs %+v", live, replayed)
	}
}

func TestTaggedTBReducesMisses(t *testing.T) {
	m, rec := capture(t)
	if m.TLB.Stats().ProcessFlushes == 0 {
		t.Skip("no context switches captured")
	}
	flushed := ReplayTB(&rec.Trace)
	tagged := ReplayTBNoFlush(&rec.Trace)
	fm := flushed.Misses[0] + flushed.Misses[1]
	tm := tagged.Misses[0] + tagged.Misses[1]
	if tm > fm {
		t.Errorf("tagged TB has MORE misses (%d) than flushing TB (%d)", tm, fm)
	}
	if tm == fm {
		t.Log("note: no flush-attributable misses in this short trace")
	}
}

func TestCacheSweepMonotoneInSize(t *testing.T) {
	_, rec := capture(t)
	cfgs := []cache.Config{
		{SizeBytes: 2 * 1024, Ways: 2, BlockBytes: 8},
		{SizeBytes: 8 * 1024, Ways: 2, BlockBytes: 8},
		{SizeBytes: 32 * 1024, Ways: 2, BlockBytes: 8},
	}
	pts := SweepCache(&rec.Trace, cfgs)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Same trace, bigger cache: miss ratio must not increase (LRU within
	// fixed associativity is stack-ordered per set; allow tiny slack for
	// set-mapping effects).
	if pts[2].MissRatio > pts[0].MissRatio*1.05 {
		t.Errorf("miss ratio not improving with size: %v", pts)
	}
	for _, p := range pts {
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Errorf("miss ratio out of range: %+v", p)
		}
	}
}

func TestTraceSaveLoad(t *testing.T) {
	_, rec := capture(t)
	var buf bytes.Buffer
	if err := rec.Trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(rec.Trace.Events) {
		t.Fatalf("events %d != %d", len(got.Events), len(rec.Trace.Events))
	}
	for i := range got.Events {
		if got.Events[i] != rec.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestRecorderCap(t *testing.T) {
	rec := &Recorder{MaxEvents: 3}
	for i := 0; i < 10; i++ {
		rec.CacheWrite(uint32(i))
	}
	if len(rec.Trace.Events) != 3 || !rec.Truncated {
		t.Errorf("cap not honored: %d events, truncated=%v", len(rec.Trace.Events), rec.Truncated)
	}
}

func TestRecorderIsPassive(t *testing.T) {
	// The same program with and without a recorder must produce identical
	// cycle counts: tracing is passive, like the monitor board.
	im, err := asm.Assemble(0x1000, `
	MOVL	#200, R7
l:	MOVL	#0x4000, R8
	INCL	(R8)
	SOBGTR	R7, l
	HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(withRec bool) uint64 {
		m := cpu.New(cpu.Config{MemBytes: 1 << 20})
		if withRec {
			(&Recorder{}).Attach(m)
		}
		mon := core.NewMonitor()
		mon.Start()
		m.AttachProbe(mon)
		m.Mem.Load(im.Org, im.Bytes)
		m.R[vax.SP] = 0x8000
		m.SetPC(im.Org)
		res := m.Run(1_000_000)
		if res.Err != nil || !res.Halted {
			t.Fatalf("halted=%v err=%v", res.Halted, res.Err)
		}
		return res.Cycles
	}
	if a, b := runOnce(false), runOnce(true); a != b {
		t.Errorf("recorder perturbed timing: %d vs %d cycles", a, b)
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvTBLookup; k <= EvCacheFlush; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("kind %d has bad string %q", k, s)
		}
	}
}

func TestTBGeometrySweep(t *testing.T) {
	_, rec := capture(t)
	gs := []TBGeometry{
		{SetsPerHalf: 8, Ways: 2, SplitHalves: true, FlushOnCtx: true},
		{SetsPerHalf: 32, Ways: 2, SplitHalves: true, FlushOnCtx: true}, // the 11/780
		{SetsPerHalf: 128, Ways: 2, SplitHalves: true, FlushOnCtx: true},
	}
	pts := SweepTB(&rec.Trace, gs)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Bigger TBs must not miss more.
	if pts[2].MissRatio > pts[0].MissRatio {
		t.Errorf("TB miss ratio rose with size: %+v", pts)
	}
	for _, p := range pts {
		if p.Lookups == 0 {
			t.Error("no lookups replayed")
		}
	}
	// Flushing must not reduce misses.
	noFlush, err := SimulateTB(&rec.Trace, TBGeometry{SetsPerHalf: 32, Ways: 2, SplitHalves: true})
	if err != nil {
		t.Fatal(err)
	}
	if noFlush.Misses > pts[1].Misses {
		t.Errorf("suppressing flushes increased misses: %d vs %d", noFlush.Misses, pts[1].Misses)
	}
}

func TestTBGeometryBadErrors(t *testing.T) {
	if _, err := SimulateTB(&Trace{}, TBGeometry{}); err == nil {
		t.Error("bad geometry should report an error")
	}
	if _, err := ReplayCache(&Trace{}, cache.Config{SizeBytes: -1}); err == nil {
		t.Error("bad cache geometry should report an error")
	}
	// A sweep over a grid containing bad points skips them instead of dying.
	if pts := SweepTB(&Trace{}, []TBGeometry{{}, {SetsPerHalf: 8, Ways: 2}}); len(pts) != 1 {
		t.Errorf("sweep over bad geometry: got %d points, want 1", len(pts))
	}
}
