// Package trace captures reference traces from a running machine and
// replays them offline — the methodology of the companion studies the
// paper leans on (Clark, "Cache Performance in the VAX-11/780", TOCS 1983;
// Clark & Emer's TB study): attach a recorder, run a workload, then drive
// trace-driven simulations of alternative cache geometries or TB policies
// without re-running the processor model.
//
// Two replay modes are provided:
//
//   - exact replay (ReplayTB, ReplayCache): re-applies the recorded
//     operations to a fresh structure of the same geometry; the resulting
//     statistics must equal the live run's, which cross-validates both the
//     trace capture and the structures' determinism;
//   - design sweep (SimulateCache): replays the same reference stream into
//     arbitrary cache geometries, regenerating miss-ratio curves in the
//     style of the 1983 cache study.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"vax780/internal/cache"
	"vax780/internal/cpu"
	"vax780/internal/tb"
)

// Kind tags one trace event.
type Kind uint8

// Event kinds.
const (
	EvTBLookup Kind = iota
	EvTBInsert
	EvTBFlushProcess
	EvTBFlushAll
	EvTBInvalidate
	EvCacheRead
	EvCacheWrite
	EvCacheFlush
)

func (k Kind) String() string {
	switch k {
	case EvTBLookup:
		return "tb-lookup"
	case EvTBInsert:
		return "tb-insert"
	case EvTBFlushProcess:
		return "tb-flush-process"
	case EvTBFlushAll:
		return "tb-flush-all"
	case EvTBInvalidate:
		return "tb-invalidate"
	case EvCacheRead:
		return "cache-read"
	case EvCacheWrite:
		return "cache-write"
	case EvCacheFlush:
		return "cache-flush"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded operation. Stream is a tb.Stream or cache.Stream
// depending on the kind (both use 0 = I-stream, 1 = D-stream).
type Event struct {
	Kind   Kind
	Stream uint8
	Addr   uint32
}

// Trace is a recorded event sequence.
type Trace struct {
	Events []Event
}

// Save writes the trace in a portable binary form.
func (t *Trace) Save(w io.Writer) error { return gob.NewEncoder(w).Encode(t) }

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}

// Recorder captures TB and cache activity. It implements tb.Tracer and
// cache.Tracer; attach with Attach (or SetTracer on the structures
// directly).
type Recorder struct {
	Trace Trace
	// MaxEvents caps the trace (0 = unbounded); capture stops silently at
	// the cap and Truncated reports it.
	MaxEvents int
	Truncated bool
}

var (
	_ tb.Tracer    = (*Recorder)(nil)
	_ cache.Tracer = (*Recorder)(nil)
)

// Attach connects the recorder to a machine's TB and cache.
func (r *Recorder) Attach(m *cpu.Machine) {
	m.TLB.SetTracer(r)
	m.Cache.SetTracer(r)
}

// Detach disconnects the recorder.
func (r *Recorder) Detach(m *cpu.Machine) {
	m.TLB.SetTracer(nil)
	m.Cache.SetTracer(nil)
}

//vaxlint:allow hotpath -- cold: a Recorder is attached only in trace captures, never in measurement runs; events are bounded by MaxEvents
func (r *Recorder) add(e Event) {
	if r.MaxEvents > 0 && len(r.Trace.Events) >= r.MaxEvents {
		r.Truncated = true
		return
	}
	r.Trace.Events = append(r.Trace.Events, e)
}

// TBLookup implements tb.Tracer.
func (r *Recorder) TBLookup(va uint32, st tb.Stream) {
	r.add(Event{Kind: EvTBLookup, Stream: uint8(st), Addr: va})
}

// TBInsert implements tb.Tracer.
func (r *Recorder) TBInsert(va uint32) { r.add(Event{Kind: EvTBInsert, Addr: va}) }

// TBFlushProcess implements tb.Tracer.
func (r *Recorder) TBFlushProcess() { r.add(Event{Kind: EvTBFlushProcess}) }

// TBFlushAll implements tb.Tracer.
func (r *Recorder) TBFlushAll() { r.add(Event{Kind: EvTBFlushAll}) }

// TBInvalidate implements tb.Tracer.
func (r *Recorder) TBInvalidate(va uint32) { r.add(Event{Kind: EvTBInvalidate, Addr: va}) }

// CacheRead implements cache.Tracer.
func (r *Recorder) CacheRead(pa uint32, st cache.Stream) {
	r.add(Event{Kind: EvCacheRead, Stream: uint8(st), Addr: pa})
}

// CacheWrite implements cache.Tracer.
func (r *Recorder) CacheWrite(pa uint32) { r.add(Event{Kind: EvCacheWrite, Addr: pa}) }

// CacheFlush implements cache.Tracer.
func (r *Recorder) CacheFlush() { r.add(Event{Kind: EvCacheFlush}) }

// ---------------------------------------------------------------------------
// Replay.

// ReplayTB re-applies the recorded TB operations to a fresh translation
// buffer. Because insert and flush events are recorded explicitly, the
// replayed state transitions are identical to the live run's and the
// returned statistics must match it exactly.
func ReplayTB(t *Trace) tb.Stats {
	b := tb.New()
	for _, e := range t.Events {
		switch e.Kind {
		case EvTBLookup:
			b.Lookup(e.Addr, tb.Stream(e.Stream))
		case EvTBInsert:
			b.Insert(e.Addr, e.Addr>>9) // PFN is irrelevant to hit/miss behaviour
		case EvTBFlushProcess:
			b.FlushProcess()
		case EvTBFlushAll:
			b.FlushAll()
		case EvTBInvalidate:
			b.Invalidate(e.Addr)
		}
	}
	return b.Stats()
}

// ReplayTBNoFlush replays the TB trace with context-switch flushes
// suppressed — the tagged-TB policy question of §3.4 ("the context-switch
// figure is useful in setting the flush interval in ... translation buffer
// simulations"), answered by trace-driven simulation.
func ReplayTBNoFlush(t *Trace) tb.Stats {
	b := tb.New()
	for _, e := range t.Events {
		switch e.Kind {
		case EvTBLookup:
			if _, hit := b.Lookup(e.Addr, tb.Stream(e.Stream)); !hit {
				// Policy replay: a miss fills the entry (the microcode
				// would have walked the page table).
				b.Insert(e.Addr, e.Addr>>9)
			}
		case EvTBFlushProcess:
			// Suppressed: the hypothetical TB is address-space tagged.
		case EvTBFlushAll:
			b.FlushAll()
		case EvTBInvalidate:
			b.Invalidate(e.Addr)
		}
	}
	return b.Stats()
}

// ReplayCache re-applies the recorded cache references to a fresh cache of
// the given geometry. With the live geometry the statistics match the live
// run exactly; with other geometries this is the design-sweep simulator.
// An invalid geometry is reported as an error.
func ReplayCache(t *Trace, cfg cache.Config) (cache.Stats, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return cache.Stats{}, err
	}
	for _, e := range t.Events {
		switch e.Kind {
		case EvCacheRead:
			c.Read(e.Addr, cache.Stream(e.Stream))
		case EvCacheWrite:
			c.Write(e.Addr)
		case EvCacheFlush:
			c.Flush()
		}
	}
	return c.Stats(), nil
}

// SweepPoint is one cache geometry's trace-driven result.
type SweepPoint struct {
	Config    cache.Config
	MissRatio float64 // combined read miss ratio
	IMiss     float64
	DMiss     float64
}

// SweepCache replays the trace through each geometry — the 1983 cache
// study's methodology applied to this trace. Invalid geometries are
// skipped (a sweep over a generated grid should not die on one bad point).
func SweepCache(t *Trace, cfgs []cache.Config) []SweepPoint {
	out := make([]SweepPoint, 0, len(cfgs))
	for _, cfg := range cfgs {
		st, err := ReplayCache(t, cfg)
		if err != nil {
			continue
		}
		total := st.Reads(cache.IStream) + st.Reads(cache.DStream)
		misses := st.ReadMisses[cache.IStream] + st.ReadMisses[cache.DStream]
		p := SweepPoint{Config: cfg}
		if total > 0 {
			p.MissRatio = float64(misses) / float64(total)
		}
		p.IMiss = st.MissRatio(cache.IStream)
		p.DMiss = st.MissRatio(cache.DStream)
		out = append(out, p)
	}
	return out
}

// ---------------------------------------------------------------------------
// TB geometry sweep: a standalone parameterized translation buffer (the
// live TB's 128-entry 2-way split geometry is fixed, as on the hardware),
// replayed with the fill-on-miss policy. This regenerates the design axes
// of Clark & Emer's TB study.

// TBGeometry parameterizes the simulated translation buffer.
type TBGeometry struct {
	SetsPerHalf int  // sets in each of the process and system halves
	Ways        int
	SplitHalves bool // false: one unified array indexed ignoring space
	FlushOnCtx  bool // honor recorded process flushes
}

type simTBEntry struct {
	valid bool
	tag   uint32
	stamp uint64
}

// TBSweepPoint is one geometry's replayed miss behaviour.
type TBSweepPoint struct {
	Geometry  TBGeometry
	Lookups   uint64
	Misses    uint64
	MissRatio float64
}

// SimulateTB replays the trace's TB lookups through an LRU TB of the given
// geometry, filling on miss. An invalid geometry is reported as an error.
func SimulateTB(t *Trace, g TBGeometry) (TBSweepPoint, error) {
	if g.SetsPerHalf <= 0 || g.Ways <= 0 {
		return TBSweepPoint{}, fmt.Errorf("trace: bad TB geometry %+v", g)
	}
	halves := 2
	if !g.SplitHalves {
		halves = 1
	}
	sets := make([][]simTBEntry, halves*g.SetsPerHalf)
	for i := range sets {
		sets[i] = make([]simTBEntry, g.Ways)
	}
	var stamp uint64
	p := TBSweepPoint{Geometry: g}
	lookup := func(va uint32) {
		stamp++
		p.Lookups++
		vpn := va >> 9
		half := 0
		if g.SplitHalves && va&0x80000000 != 0 {
			half = 1
		}
		set := sets[half*g.SetsPerHalf+int(vpn)%g.SetsPerHalf]
		tag := vpn / uint32(g.SetsPerHalf)
		for w := range set {
			if set[w].valid && set[w].tag == tag {
				set[w].stamp = stamp
				return
			}
		}
		p.Misses++
		victim := 0
		for w := range set {
			if !set[w].valid {
				victim = w
				break
			}
			if set[w].stamp < set[victim].stamp {
				victim = w
			}
		}
		set[victim] = simTBEntry{valid: true, tag: tag, stamp: stamp}
	}
	flushProcess := func() {
		// With split halves only the process half (the first) is cleared;
		// a unified TB cannot distinguish and must flush everything.
		n := g.SetsPerHalf
		if !g.SplitHalves {
			n = len(sets)
		}
		for i := 0; i < n; i++ {
			for w := range sets[i] {
				sets[i][w] = simTBEntry{}
			}
		}
	}
	for _, e := range t.Events {
		switch e.Kind {
		case EvTBLookup:
			lookup(e.Addr)
		case EvTBFlushProcess:
			if g.FlushOnCtx {
				flushProcess()
			}
		case EvTBFlushAll:
			for i := range sets {
				for w := range sets[i] {
					sets[i][w] = simTBEntry{}
				}
			}
		}
	}
	if p.Lookups > 0 {
		p.MissRatio = float64(p.Misses) / float64(p.Lookups)
	}
	return p, nil
}

// SweepTB replays the trace through each geometry, skipping invalid ones.
func SweepTB(t *Trace, gs []TBGeometry) []TBSweepPoint {
	out := make([]TBSweepPoint, 0, len(gs))
	for _, g := range gs {
		p, err := SimulateTB(t, g)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}
