package workload

import (
	"vax780/internal/cpu"
)

// Session is a prepared-but-unstarted measurement run, exposed so the
// benchmark harness (cmd/vaxbench) and the allocation-contract tests can
// separate the expensive construction — generation, boot, monitor
// attachment — from the stepping loop they actually measure. Run and
// RunInjected stay the one-call paths for real measurements.
type Session struct {
	s *session
}

// Prepare boots a measurement session for p with a collecting monitor
// attached, exactly as Run would, but returns before stepping a cycle.
func Prepare(p Profile, cycles uint64, mcfg cpu.Config) (*Session, error) {
	s, err := build(p, cycles, mcfg, nil)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Machine exposes the booted machine for direct stepping.
func (s *Session) Machine() *cpu.Machine { return s.s.sys.Machine() }

// Run advances the session by at most cycles cycles under the system's
// scheduler (terminal events, console script) and reports why it stopped.
func (s *Session) Run(cycles uint64) cpu.RunResult {
	return s.s.sys.Run(cycles)
}

// Result assembles the measurement from the session's current state.
func (s *Session) Result() *Result { return s.s.result() }
