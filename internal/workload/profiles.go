package workload

import "math/rand"

// Profile describes one of the paper's five measurement workloads,
// scaled down: the paper's machines carried 15-40 users for about an hour;
// this model runs a handful of processes for tens of millions of cycles.
// The user count survives as the terminal-interrupt pacing.
type Profile struct {
	Name  string
	Kind  string // "live timesharing" or "RTE"
	Users int    // nominal simulated users (drives terminal-event rate)
	Procs int    // concurrent processes in the run rotation
	Mix   Mix
	// TermInterval is the average cycle gap between terminal interrupts.
	TermInterval uint64
	// Blocks sizes the generated programs (code footprint).
	Blocks int
	// SyscallWeight already inside Mix; LoopIter/StringLen tune loops.
	LoopIter  int
	StringLen int
	Seed      int64
	// Script is the canned terminal input the RTE "types".
	Script string
}

// The five workloads of §2.2. Mix weights are calibrated so the composite
// instruction mix lands near Table 1 (see internal/experiments and
// EXPERIMENTS.md for the measured result).
var (
	// TimesharingResearch is the lightly-loaded research-group machine:
	// text editing, program development, electronic mail (~15 users).
	TimesharingResearch = Profile{
		Name: "timesharing-research", Kind: "live timesharing",
		Users: 15, Procs: 4,
		Mix: Mix{
			ALU: 0.20, MemScan: 0.16, Branchy: 0.37, Call: 0.045, Subr: 0.055,
			Field: 0.21, Float: 0.013, String: 0.004, Decimal: 0.0002,
			Queue: 0.007, Syscall: 0.012,
		},
		TermInterval: 9_000, Blocks: 105, LoopIter: 10, StringLen: 40, Seed: 101,
		Script: "edit main.pas\nfind procedure\nsubstitute/old/new\nmail\n",
	}

	// TimesharingCPUDev is the heavier VAX-CPU-development machine:
	// general timesharing plus circuit simulation and microcode
	// development (~30 users).
	TimesharingCPUDev = Profile{
		Name: "timesharing-cpudev", Kind: "live timesharing",
		Users: 30, Procs: 5,
		Mix: Mix{
			ALU: 0.19, MemScan: 0.16, Branchy: 0.35, Call: 0.04, Subr: 0.05,
			Field: 0.22, Float: 0.070, String: 0.003, Decimal: 0.0002,
			Queue: 0.007, Syscall: 0.010,
		},
		TermInterval: 6_000, Blocks: 119, LoopIter: 10, StringLen: 36, Seed: 202,
		Script: "spice cpu.ckt\nmicroasm ebox.mic\ndiff listing.old\n",
	}

	// RTEEducational: 40 simulated users doing program development in
	// various languages and file manipulation.
	RTEEducational = Profile{
		Name: "rte-educational", Kind: "RTE",
		Users: 40, Procs: 5,
		Mix: Mix{
			ALU: 0.19, MemScan: 0.15, Branchy: 0.37, Call: 0.05, Subr: 0.055,
			Field: 0.21, Float: 0.018, String: 0.005, Decimal: 0.0004,
			Queue: 0.007, Syscall: 0.014,
		},
		TermInterval: 5_000, Blocks: 112, LoopIter: 9, StringLen: 44, Seed: 303,
		Script: "pascal prog1.pas\nrun prog1\ncopy a.dat b.dat\n",
	}

	// RTEScientific: 40 simulated users doing scientific computation and
	// program development.
	RTEScientific = Profile{
		Name: "rte-scientific", Kind: "RTE",
		Users: 40, Procs: 5,
		Mix: Mix{
			ALU: 0.20, MemScan: 0.17, Branchy: 0.34, Call: 0.04, Subr: 0.05,
			Field: 0.16, Float: 0.150, String: 0.002, Decimal: 0.0002,
			Queue: 0.006, Syscall: 0.010,
		},
		TermInterval: 6_500, Blocks: 126, LoopIter: 12, StringLen: 36, Seed: 404,
		Script: "fortran sim.for\nrun sim\nplot results.dat\n",
	}

	// RTECommercial: 32 simulated users doing transactional database
	// inquiries and updates.
	RTECommercial = Profile{
		Name: "rte-commercial", Kind: "RTE",
		Users: 32, Procs: 5,
		Mix: Mix{
			ALU: 0.20, MemScan: 0.14, Branchy: 0.36, Call: 0.05, Subr: 0.045,
			Field: 0.18, Float: 0.008, String: 0.009, Decimal: 0.0012,
			Queue: 0.012, Syscall: 0.018,
		},
		TermInterval: 4_500, Blocks: 98, LoopIter: 8, StringLen: 44, Seed: 505,
		Script: "inquire account 40113\nupdate balance 129.50\ncommit\n",
	}
)

// All returns the five workloads in the paper's order.
func All() []Profile {
	return []Profile{
		TimesharingResearch,
		TimesharingCPUDev,
		RTEEducational,
		RTEScientific,
		RTECommercial,
	}
}

// ByName finds a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// TerminalSchedule builds the RTE's terminal-interrupt schedule over a run
// of the given length: Poisson-ish arrivals averaging one per
// TermInterval cycles, jittered deterministically by the profile seed.
func (p Profile) TerminalSchedule(cycles uint64) []uint64 {
	r := rand.New(rand.NewSource(p.Seed * 7919))
	var events []uint64
	t := uint64(0)
	for {
		gap := uint64(float64(p.TermInterval) * (0.25 + 1.5*r.Float64()))
		if gap == 0 {
			gap = 1
		}
		t += gap
		if t >= cycles {
			return events
		}
		events = append(events, t)
	}
}
