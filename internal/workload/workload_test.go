package workload

import (
	"testing"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Mix: TimesharingResearch.Mix, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bytes) != len(b.Bytes) {
		t.Fatalf("non-deterministic generation: %d vs %d bytes", len(a.Bytes), len(b.Bytes))
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestGenerateAllProfilesAssemble(t *testing.T) {
	for _, p := range All() {
		for i := 0; i < 3; i++ {
			im, err := Generate(GenConfig{
				Mix: p.Mix, LoopIter: p.LoopIter, StringLen: p.StringLen,
				Seed: p.Seed + int64(i)*1000,
			})
			if err != nil {
				t.Errorf("%s[%d]: %v", p.Name, i, err)
				continue
			}
			if len(im.Bytes) < 200 {
				t.Errorf("%s[%d]: suspiciously small program (%d bytes)", p.Name, i, len(im.Bytes))
			}
		}
	}
}

func TestGenerateEmptyMixFails(t *testing.T) {
	if _, err := Generate(GenConfig{}); err == nil {
		t.Error("empty mix should fail")
	}
}

func TestTerminalSchedule(t *testing.T) {
	ev := RTECommercial.TerminalSchedule(1_000_000)
	if len(ev) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(ev); i++ {
		if ev[i] < ev[i-1] {
			t.Fatal("events not sorted")
		}
	}
	if ev[len(ev)-1] >= 1_000_000 {
		t.Error("event beyond the run")
	}
	// Rate should be near 1/TermInterval.
	avg := float64(ev[len(ev)-1]) / float64(len(ev))
	if avg < float64(RTECommercial.TermInterval)/2 || avg > float64(RTECommercial.TermInterval)*2 {
		t.Errorf("average gap %.0f far from %d", avg, RTECommercial.TermInterval)
	}
}

func TestRunWorkloadShort(t *testing.T) {
	r, err := Run(TimesharingResearch, 600_000, cpu.Config{MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rep := core.Reduce(r.Hist, cpu.CS)
	if rep.Instructions == 0 {
		t.Fatal("nothing measured")
	}
	if rep.CPI() < 4 || rep.CPI() > 30 {
		t.Errorf("CPI = %.2f", rep.CPI())
	}
	// SIMPLE should dominate the mix for every profile.
	if f := rep.GroupFreq(vax.GroupSimple); f < 0.5 {
		t.Errorf("simple frequency %.2f too low", f)
	}
	if r.IB.CacheRefs == 0 {
		t.Error("no IB references recorded")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("rte-scientific"); !ok {
		t.Error("rte-scientific missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown profile found")
	}
	if len(All()) != 5 {
		t.Errorf("want 5 workloads, got %d", len(All()))
	}
}

func TestRunCompositeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("composite run in -short mode")
	}
	comp, err := RunComposite(400_000, cpu.Config{MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Runs) != 5 {
		t.Fatalf("runs = %d", len(comp.Runs))
	}
	rep := core.Reduce(comp.Hist, cpu.CS)
	var sum uint64
	for _, r := range comp.Runs {
		sum += core.Reduce(r.Hist, cpu.CS).Instructions
	}
	if rep.Instructions != sum {
		t.Errorf("composite instructions %d != sum %d", rep.Instructions, sum)
	}
	// Every group must appear in the composite.
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		if rep.Groups[g] == 0 {
			t.Errorf("group %v absent from composite", g)
		}
	}
}

func TestAnalyzeStatic(t *testing.T) {
	for _, p := range All() {
		im, err := Generate(GenConfig{
			Mix: p.Mix, Blocks: p.Blocks, LoopIter: p.LoopIter,
			StringLen: p.StringLen, Seed: p.Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		mix, err := AnalyzeStatic(im)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if mix.Instructions < 100 {
			t.Errorf("%s: only %d static instructions", p.Name, mix.Instructions)
		}
		// Static group presence must reflect the nonzero mix weights.
		if p.Mix.Float > 0 && mix.Groups[vax.GroupFloat] == 0 {
			t.Errorf("%s: float weight %v but no float instructions", p.Name, p.Mix.Float)
		}
		if p.Mix.Field > 0 && mix.Groups[vax.GroupField] == 0 {
			t.Errorf("%s: field weight set but no field instructions", p.Name)
		}
		// SIMPLE dominates statically too.
		if f := mix.Freq(vax.GroupSimple); f < 0.5 {
			t.Errorf("%s: static simple share %.2f", p.Name, f)
		}
		// The String renderer mentions each group.
		s := mix.String()
		if len(s) < 100 {
			t.Errorf("%s: short render: %q", p.Name, s)
		}
	}
}

// The scientific profile must be statically more float-heavy than the
// research profile (the flavor distinction of §2.2).
func TestProfilesAreDistinct(t *testing.T) {
	mixOf := func(p Profile) *StaticMix {
		im, err := Generate(GenConfig{Mix: p.Mix, Blocks: p.Blocks, Seed: p.Seed})
		if err != nil {
			t.Fatal(err)
		}
		m, err := AnalyzeStatic(im)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	sci := mixOf(RTEScientific)
	res := mixOf(TimesharingResearch)
	com := mixOf(RTECommercial)
	if sci.Freq(vax.GroupFloat) <= res.Freq(vax.GroupFloat) {
		t.Error("scientific not more float-heavy than research")
	}
	if com.Freq(vax.GroupDecimal) < res.Freq(vax.GroupDecimal) {
		t.Error("commercial not more decimal-heavy than research")
	}
}
