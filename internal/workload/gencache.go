package workload

import (
	"sync"

	"vax780/internal/asm"
)

// The generated-program cache. Generation is deterministic in GenConfig
// (a comparable value: mix weights, geometry, seed), and the consumer —
// vmos.AddProcess — only copies the image bytes into machine memory, so
// one shared immutable *asm.Image can back any number of processes. The
// win is mass construction and re-construction: a fleet (internal/farm)
// rebuilding an instance after a worker death, or a checkpoint resume
// rebuilding its session, pays generation and assembly once per distinct
// program instead of once per attempt.
var genCache = struct {
	sync.Mutex
	byConfig map[GenConfig]*asm.Image
}{byConfig: make(map[GenConfig]*asm.Image)}

// genCacheCap bounds the cache for sweeps over many distinct seeds; a
// full cache is dropped wholesale rather than evicted piecemeal, since
// regeneration is cheap and the common fleet case (retries and rescues
// of a bounded instance set) never gets near the cap.
const genCacheCap = 4096

// generateShared returns the shared generated image for one
// configuration, generating it on first use. The returned image is
// shared and must be treated as read-only.
func generateShared(cfg GenConfig) (*asm.Image, error) {
	genCache.Lock()
	im, ok := genCache.byConfig[cfg]
	genCache.Unlock()
	if ok {
		return im, nil
	}
	// Generate outside the lock so concurrent workers building different
	// programs don't serialize; duplicate fills for the same key are
	// byte-identical, so last-write-wins is harmless.
	im, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	genCache.Lock()
	if len(genCache.byConfig) >= genCacheCap {
		genCache.byConfig = make(map[GenConfig]*asm.Image)
	}
	genCache.byConfig[cfg] = im
	genCache.Unlock()
	return im, nil
}
