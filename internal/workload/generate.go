// Package workload synthesizes the five measurement workloads of the
// paper (§2.2): two "live timesharing" loads and three Remote Terminal
// Emulator loads (educational, scientific, commercial). Since the original
// user populations and canned RTE scripts are unavailable, each workload
// is a set of generated VAX programs whose block mix is tuned so that the
// *composite* of all five lands near the paper's Table 1 instruction mix,
// plus an RTE terminal-event schedule pacing the interrupt load.
//
// Program shape: real programs spend most of their time inside loops, so
// the generator emits a sequence of counted loops (trip count ~10, per the
// paper's loop-branch statistics) whose bodies are composed from the
// weighted block mix; conditional branches, calls and operand traffic all
// live inside loop bodies, making the *dynamic* mix track the weights. A
// short straight-line tail carries the rare block types and the system
// service calls, and the whole program repeats forever.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"vax780/internal/asm"
	"vax780/internal/vax"
)

// ErrBadMix reports a workload configuration whose block mix selects
// nothing. It crosses the workload boundary typed so cmd/* callers can
// distinguish a configuration mistake from a run failure with errors.Is.
var ErrBadMix = errors.New("unusable workload mix")

// Mix weights the body-block types. Weights need not sum to 1.
type Mix struct {
	ALU     float64 // register/memory moves, adds, compares, booleans
	MemScan float64 // array stepping through the 64 KB data window
	Branchy float64 // compare/branch chains, low-bit tests, case dispatch
	Call    float64 // CALLS procedure calls with entry masks
	Subr    float64 // BSB/JSB/RSB subroutine linkage
	Field   float64 // bit-field extracts/inserts and bit branches
	Float   float64 // F/D floating point and integer multiply/divide
	String  float64 // MOVC3/CMPC3/LOCC character work
	Decimal float64 // packed-decimal arithmetic
	Queue   float64 // INSQUE/REMQUE
	Syscall float64 // CHMK service blocks (terminal I/O, yield)
}

func (m Mix) weights() []float64 {
	return []float64{m.ALU, m.MemScan, m.Branchy, m.Call, m.Subr, m.Field,
		m.Float, m.String, m.Decimal, m.Queue, m.Syscall}
}

// Data-region geometry: the roving pointer R6 stays inside the first
// 64 KB window; displacement operands reach up to ~32 KB beyond it, always
// below the fixed structures at strOff. The window is several times the
// 8 KB cache and wider than the 32 KB the 64-entry process half of the TB
// can map, so cache and TB misses occur at realistic rates.
const (
	dataWindow = 64 * 1024
	dataSize   = 128 * 1024
	strOff     = 100 * 1024 // strings live inside the data region (R7 base)
	strDstOff  = strOff + 4096
	ioBufOff   = strOff + 8192
)

// GenConfig controls program generation.
type GenConfig struct {
	Mix       Mix
	Blocks    int // body blocks across all loops (code footprint)
	LoopIter  int // average inner-loop trip count (the paper sees ~10)
	StringLen int // average character-string length (paper: 36-44)
	Seed      int64
}

// generator carries state while emitting one program.
type generator struct {
	b      *asm.Builder
	r      *rand.Rand
	cfg    GenConfig
	nLabel int
	nProcs int
	nSubs  int
}

func (g *generator) label(prefix string) string {
	g.nLabel++
	return fmt.Sprintf("%s%d", prefix, g.nLabel)
}

func (g *generator) iters() int32 {
	n := g.cfg.LoopIter/2 + g.r.Intn(g.cfg.LoopIter)
	if n < 2 {
		n = 2
	}
	return int32(n)
}

// Generate builds one synthetic user program.
func Generate(cfg GenConfig) (*asm.Image, error) {
	if cfg.Blocks == 0 {
		cfg.Blocks = 48
	}
	if cfg.LoopIter == 0 {
		cfg.LoopIter = 10
	}
	if cfg.StringLen == 0 {
		cfg.StringLen = 40
	}
	g := &generator{
		b:   asm.NewBuilder(0x200),
		r:   rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
	b := g.b

	w := cfg.Mix.weights()
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: %w: every mix weight is zero", ErrBadMix)
	}
	emitters := []func(){
		g.emitALU, g.emitMemScan, g.emitBranchy, g.emitCall, g.emitSubr,
		g.emitField, g.emitFloat, g.emitString, g.emitDecimal, g.emitQueue,
		g.emitSyscall,
	}
	pick := func() int {
		p := g.r.Float64() * total
		for j, x := range w {
			p -= x
			if p < 0 {
				return j
			}
		}
		return 0
	}

	// Prologue: R6 = roving data pointer, R7 = data base, R11 = flags.
	b.Op("MOVAL", asm.LblAddr("data"), asm.R(vax.R6))
	b.Op("MOVL", asm.R(vax.R6), asm.R(vax.R7))
	b.Op("MOVL", asm.Imm(0x5A5A1234), asm.R(vax.R11))
	b.Label("top")

	const bodyPerLoop = 7
	nLoops := cfg.Blocks / bodyPerLoop
	if nLoops < 1 {
		nLoops = 1
	}
	picked := make([]int, len(w))
	for l := 0; l < nLoops; l++ {
		loop := g.label("lp")
		b.Op("MOVL", asm.Lit(g.iters()), asm.R(vax.R8))
		b.Label(loop)
		start := b.PC()
		for k := 0; k < bodyPerLoop; k++ {
			j := pick()
			if j == 10 {
				j = 0 // system services do not belong inside hot loops
			}
			picked[j]++
			emitters[j]()
		}
		// Close the loop: SOBGTR reaches back a byte displacement; larger
		// bodies use ACBL's word displacement (adding the ACB flavor the
		// paper groups with loop branches).
		if b.PC()-start > 100 {
			b.Br("ACBL", loop, asm.Lit(1), asm.Imm(0xFFFFFFFF), asm.R(vax.R8))
		} else {
			b.Br("SOBGTR", loop, asm.R(vax.R8))
		}
		g.wrapR6()
	}

	// Straight-line tail: system services paced once per pass, plus any
	// block type the loop bodies never picked (the rare groups must exist
	// in the dynamic mix: the paper's decimal group is only 0.03%).
	scTarget := int(float64(cfg.Blocks) * cfg.Mix.Syscall / total * 4)
	if cfg.Mix.Syscall > 0 && scTarget == 0 {
		scTarget = 1
	}
	for k := 0; k < scTarget; k++ {
		g.emitSyscall()
	}
	for j, x := range w {
		if x > 0 && picked[j] == 0 && j != 10 {
			emitters[j]()
		}
	}
	b.Op("JMP", asm.LblAddr("top"))

	g.emitProcedures()
	g.emitData()
	return b.Finish()
}

// ---------------------------------------------------------------------------
// Block emitters. Register conventions: R0-R5 scratch (clobbered by string
// instructions and CHMK services), R6 roving data pointer, R7 data base,
// R8 loop counter, R9/R10 temporaries, R11 flags word.

// dataOff samples a displacement into the data region: mostly byte-range
// displacements, some word-range — matching the paper's observation that
// displacements are most often a byte.
func (g *generator) dataOff() int32 {
	if g.r.Float64() < 0.72 {
		return int32(4 * g.r.Intn(31))
	}
	return int32(128 + 4*g.r.Intn(8100))
}

func (g *generator) emitALU() { g.aluBlock() }

func (g *generator) aluBlock() {
	b := g.b
	off := g.dataOff()
	switch p := g.r.Float64(); {
	case p < 0.22: // load pair (memory-first operands dominate real code)
		b.Op("MOVL", asm.D(off, vax.R6), asm.R(vax.R9))
		b.Op("MOVL", asm.D(off+12, vax.R6), asm.R(vax.R10))
	case p < 0.34: // memory-to-memory compare
		b.Op("CMPL", asm.D(off, vax.R6), asm.D(off+4, vax.R6))
	case p < 0.48: // indexed element read-modify-write
		b.Op("MOVL", asm.Idx(asm.D(off, vax.R6), vax.R8), asm.R(vax.R10))
		b.Op("ADDL2", asm.Lit(1), asm.R(vax.R10))
		b.Op("MOVL", asm.R(vax.R10), asm.Idx(asm.D(off, vax.R6), vax.R8))
	case p < 0.58: // pure tests of memory (often indexed table probes)
		if g.r.Intn(2) == 0 {
			b.Op("TSTL", asm.Idx(asm.D(off, vax.R6), vax.R8))
		} else {
			b.Op("TSTL", asm.D(off, vax.R6))
		}
		b.Op("BITL", asm.Lit(7), asm.Idx(asm.D(off+8, vax.R6), vax.R8))
	case p < 0.66: // load-modify-store
		b.Op("MOVL", asm.D(off, vax.R6), asm.R(vax.R10))
		b.Op("ADDL2", asm.Lit(int32(g.r.Intn(60))), asm.R(vax.R10))
		b.Op("MOVL", asm.R(vax.R10), asm.D(off, vax.R6))
	case p < 0.72: // three-operand: second operand and destination in memory
		b.Op("ADDL3", asm.R(vax.R10), asm.D(off, vax.R6), asm.D(off+4, vax.R6))
	case p < 0.78: // memory modify
		b.Op("ADDL2", asm.R(vax.R10), asm.D(off, vax.R6))
	case p < 0.84: // byte/word traffic
		b.Op("MOVZBL", asm.D(off, vax.R6), asm.R(vax.R10))
		b.Op("INCL", asm.R(vax.R10))
		b.Op("MOVB", asm.R(vax.R10), asm.D(off, vax.R6))
	case p < 0.89: // register-only plus a memory-second compare
		b.Op("ADDL3", asm.R(vax.R10), asm.R(vax.R11), asm.R(vax.R9))
		b.Op("CMPL", asm.R(vax.R9), asm.D(off, vax.R6))
	case p < 0.93: // memory-to-memory move
		b.Op("MOVL", asm.D(off, vax.R6), asm.D(off+8, vax.R6))
	case p < 0.96: // quadword load (register pair destination)
		b.Op("MOVQ", asm.D(off, vax.R6), asm.R(vax.R9))
	default: // stack push/pop and shift
		b.Op("PUSHL", asm.R(vax.R11))
		b.Op("MOVL", asm.Inc(vax.SP), asm.R(vax.R10))
		b.Op("ASHL", asm.Lit(int32(g.r.Intn(7))), asm.R(vax.R10), asm.R(vax.R10))
	}
}

func (g *generator) emitMemScan() {
	b := g.b
	// One stepping reference through the data window per body execution;
	// the wrap after the loop keeps R6 in bounds.
	switch g.r.Intn(6) {
	case 0:
		b.Op("ADDL2", asm.Inc(vax.R6), asm.R(vax.R10))
	case 1:
		b.Op("MOVL", asm.Inc(vax.R6), asm.R(vax.R10))
		b.Op("CMPL", asm.R(vax.R10), asm.R(vax.R11))
	case 2: // read-modify-write, then hop a cache block
		b.Op("INCL", asm.Def(vax.R6))
		b.Op("MOVAL", asm.D(68, vax.R6), asm.R(vax.R6))
	case 3: // indexed element touch
		b.Op("ADDL2", asm.Idx(asm.Def(vax.R6), vax.R8), asm.R(vax.R10))
		b.Op("MOVAL", asm.D(60, vax.R6), asm.R(vax.R6))
	default: // page-stride hops (TB traffic): two cases' weight
		b.Op("ADDL2", asm.D(4, vax.R6), asm.R(vax.R10))
		b.Op("MOVAL", asm.D(1028, vax.R6), asm.R(vax.R6))
	}
}

// wrapR6 folds the roving pointer back into the 64 KB window, aligned.
func (g *generator) wrapR6() {
	b := g.b
	b.Op("SUBL3", asm.R(vax.R7), asm.R(vax.R6), asm.R(vax.R10))
	b.Op("BICL2", asm.Imm(uint64(^uint32(dataWindow-1))|3), asm.R(vax.R10))
	b.Op("ADDL3", asm.R(vax.R7), asm.R(vax.R10), asm.R(vax.R6))
}

func (g *generator) emitBranchy() {
	b := g.b
	switch p := g.r.Float64(); {
	case p < 0.28: // compare-and-skip chain, two conditional branches
		d1 := g.label("bd")
		d2 := g.label("bd")
		b.Op("CMPL", asm.R(vax.R10), asm.Lit(int32(g.r.Intn(40))))
		b.Br("BLSS", d1)
		b.Op("SUBL2", asm.Lit(7), asm.R(vax.R10))
		b.Label(d1)
		b.Op("BITL", asm.Lit(7), asm.R(vax.R10))
		b.Br("BEQL", d2) // untaken 7 of 8 times
		b.Op("INCL", asm.R(vax.R9))
		b.Label(d2)
	case p < 0.55: // test-and-branch chain, two conditional branches
		d1 := g.label("bd")
		d2 := g.label("bd")
		if g.r.Intn(2) == 0 {
			b.Op("TSTL", asm.D(g.dataOff(), vax.R6))
		} else {
			b.Op("TSTL", asm.R(vax.R10))
		}
		b.Br("BLSS", d1) // rarely taken (values are mostly non-negative)
		b.Op("MCOML", asm.R(vax.R10), asm.R(vax.R9))
		b.Label(d1)
		b.Op("CMPL", asm.R(vax.R9), asm.R(vax.R11))
		b.Br("BNEQ", d2) // almost always taken
		b.Op("CLRL", asm.R(vax.R9))
		b.Label(d2)
	case p < 0.72: // low-bit test (BLBS/BLBC: Table 2's 2.0%, 41% taken)
		skip := g.label("lb")
		switch g.r.Intn(4) {
		case 0, 1:
			b.Br("BLBS", skip, asm.R(vax.R11)) // ~40% of flag bits set
		case 2:
			b.Br("BLBS", skip, asm.R(vax.R9))
		default:
			b.Br("BLBS", skip, asm.R(vax.R10)) // data values: mostly even
		}
		if g.r.Intn(2) == 0 {
			b.Op("INCL", asm.D(g.dataOff(), vax.R6))
		} else {
			b.Op("INCL", asm.R(vax.R10))
		}
		b.Label(skip)
		b.Op("ROTL", asm.Lit(1), asm.R(vax.R11), asm.R(vax.R11))
	case p < 0.86: // memory compare feeding a branch
		done := g.label("bd")
		if g.r.Intn(3) != 0 { // often indexed by the loop counter
			b.Op("CMPL", asm.Idx(asm.D(g.dataOff(), vax.R6), vax.R8), asm.R(vax.R11))
		} else {
			b.Op("CMPL", asm.D(g.dataOff(), vax.R6), asm.R(vax.R11))
		}
		b.Br("BNEQ", done)
		b.Op("MOVL", asm.R(vax.R11), asm.R(vax.R10))
		b.Label(done)
	case p < 0.945: // case dispatch
		c0, c1, c2, done := g.label("c"), g.label("c"), g.label("c"), g.label("cd")
		b.Op("BICL3", asm.Imm(0xFFFFFFFC), asm.R(vax.R10), asm.R(vax.R5))
		b.Case("CASEL", asm.R(vax.R5), asm.Lit(0), asm.Lit(2), c0, c1, c2)
		b.Br("BRB", done)
		b.Label(c0)
		b.Op("INCL", asm.R(vax.R9))
		b.Br("BRB", done)
		b.Label(c1)
		b.Op("DECL", asm.R(vax.R9))
		b.Br("BRB", done)
		b.Label(c2)
		b.Op("ADDL2", asm.Lit(2), asm.R(vax.R9))
		b.Label(done)
	case p < 0.975: // unconditional JMP over dead code
		over := g.label("ov")
		b.Op("JMP", asm.LblAddr(over))
		b.Op("CLRL", asm.R(vax.R9)) // skipped
		b.Label(over)
	default: // BRB skip
		over := g.label("ov")
		b.Br("BRB", over)
		b.Op("CLRL", asm.R(vax.R9)) // skipped
		b.Op("CLRL", asm.R(vax.R10))
		b.Label(over)
	}
}

func (g *generator) emitCall() {
	b := g.b
	proc := fmt.Sprintf("proc%d", g.r.Intn(3))
	g.needProc(3)
	nargs := int32(g.r.Intn(3))
	for i := int32(0); i < nargs; i++ {
		b.Op("PUSHL", asm.R(vax.R10))
	}
	b.Op("CALLS", asm.Lit(nargs), asm.LblAddr(proc))
}

func (g *generator) emitSubr() {
	b := g.b
	sub := fmt.Sprintf("sub%d", g.r.Intn(2))
	g.needSub(2)
	if g.r.Intn(2) == 0 {
		b.Br("BSBW", sub)
	} else {
		b.Op("JSB", asm.LblAddr(sub))
	}
}

func (g *generator) emitField() {
	b := g.b
	switch p := g.r.Float64(); {
	case p < 0.16:
		b.Op("EXTZV", asm.Lit(int32(g.r.Intn(20))), asm.Lit(int32(1+g.r.Intn(12))), asm.R(vax.R11), asm.R(vax.R10))
	case p < 0.28:
		b.Op("INSV", asm.R(vax.R10), asm.Lit(int32(g.r.Intn(20))), asm.Lit(int32(1+g.r.Intn(8))), asm.Def(vax.R6))
	case p < 0.36:
		b.Op("FFS", asm.Lit(0), asm.Lit(32), asm.R(vax.R11), asm.R(vax.R10))
	default: // bit branches are the bulk of FIELD (Table 2: 4.3%, 44% taken)
		skip := g.label("bb")
		pos := asm.Lit(int32(g.r.Intn(28)))
		switch g.r.Intn(5) {
		case 0:
			b.Br("BBS", skip, pos, asm.R(vax.R11)) // rotating flags: ~34%
		case 1:
			b.Br("BBS", skip, pos, asm.Def(vax.R6)) // data mostly small: rarely set
		case 2:
			b.Br("BBC", skip, pos, asm.R(vax.R11)) // ~66%
		case 3:
			b.Br("BBSS", skip, pos, asm.R(vax.R11)) // set...
		default:
			b.Br("BBCC", skip, pos, asm.R(vax.R11)) // ...and clear, balancing
		}
		if g.r.Intn(2) == 0 {
			b.Op("INCL", asm.D(g.dataOff(), vax.R6))
		} else {
			b.Op("INCL", asm.R(vax.R10))
		}
		b.Label(skip)
	}
}

func (g *generator) emitFloat() {
	b := g.b
	fc := asm.D(int32(strOff-32), vax.R7)
	dc := asm.D(int32(strOff-24), vax.R7)
	switch g.r.Intn(5) {
	case 0:
		b.Op("CVTLF", asm.R(vax.R8), asm.R(vax.R4))
		b.Op("ADDF2", fc, asm.R(vax.R4))
		b.Op("MULF2", asm.Lit(4<<3), asm.R(vax.R4))
		b.Op("CVTFL", asm.R(vax.R4), asm.R(vax.R9))
	case 1:
		b.Op("MOVF", fc, asm.R(vax.R4))
		b.Op("ADDF2", asm.Lit(2<<3), asm.R(vax.R4))
		b.Op("MULF2", asm.Lit(1<<3|4), asm.R(vax.R4))
		b.Op("SUBF2", asm.Lit(3<<3), asm.R(vax.R4))
	case 2:
		b.Op("MULL3", asm.R(vax.R10), asm.Lit(13), asm.R(vax.R5))
		b.Op("DIVL2", asm.Lit(7), asm.R(vax.R5))
	case 3:
		b.Op("MOVD", dc, asm.R(vax.R4))
		b.Op("ADDD2", asm.Lit(3<<3), asm.R(vax.R4))
		b.Op("CMPD", asm.R(vax.R4), dc)
	default:
		b.Op("EMUL", asm.R(vax.R10), asm.Lit(21), asm.R(vax.R10), asm.D(int32(strOff-16), vax.R7))
	}
}

func (g *generator) emitString() {
	b := g.b
	n := int32(g.cfg.StringLen/2 + g.r.Intn(g.cfg.StringLen))
	if n > 120 {
		n = 120
	}
	lenArg := func(v int32) asm.Arg {
		if v <= 63 {
			return asm.Lit(v)
		}
		return asm.Imm(uint64(uint16(v)))
	}
	src := asm.D(int32(strOff), vax.R7)
	dst := asm.D(int32(strDstOff), vax.R7)
	switch g.r.Intn(4) {
	case 0:
		b.Op("MOVC3", lenArg(n), src, dst)
	case 1:
		b.Op("CMPC3", lenArg(n), src, dst)
	case 2:
		b.Op("LOCC", asm.Imm(uint64('e')), lenArg(n), src)
	default:
		b.Op("MOVC5", lenArg(n/2), src, asm.Lit(int32(' ')), lenArg(n), dst)
	}
}

func (g *generator) emitDecimal() {
	b := g.b
	pk1 := asm.D(int32(strOff-64), vax.R7)
	pk2 := asm.D(int32(strOff-56), vax.R7)
	pk3 := asm.D(int32(strOff-48), vax.R7)
	switch g.r.Intn(4) {
	case 0:
		b.Op("ADDP4", asm.Lit(9), pk1, asm.Lit(9), pk2)
	case 1:
		b.Op("MOVP", asm.Lit(9), pk2, pk3)
	case 2:
		b.Op("CMPP3", asm.Lit(9), pk1, pk3)
	default:
		b.Op("CVTLP", asm.R(vax.R10), asm.Lit(9), pk1)
	}
}

func (g *generator) emitQueue() {
	b := g.b
	b.Op("MOVAL", asm.D(int32(strOff-88), vax.R7), asm.R(vax.R5))
	b.Op("INSQUE", asm.Def(vax.R5), asm.D(int32(strOff-96), vax.R7))
	b.Op("REMQUE", asm.Def(vax.R5), asm.R(vax.R4))
}

func (g *generator) emitSyscall() {
	b := g.b
	switch g.r.Intn(4) {
	case 0:
		b.Op("MOVAL", asm.D(int32(ioBufOff), vax.R7), asm.R(vax.R2))
		b.Op("MOVL", asm.Lit(48), asm.R(vax.R3))
		b.Op("CHMK", asm.Lit(1)) // terminal read
	case 1:
		b.Op("MOVAL", asm.D(int32(ioBufOff), vax.R7), asm.R(vax.R2))
		b.Op("MOVL", asm.Lit(48), asm.R(vax.R3))
		b.Op("CHMK", asm.Lit(2)) // terminal write
	case 2:
		b.Op("CHMK", asm.Lit(3)) // get time
	default:
		switch g.r.Intn(4) {
		case 0:
			b.Op("CHMK", asm.Lit(4)) // asynchronous disk transfer
		case 1:
			b.Op("CHMK", asm.Lit(0)) // yield (requests a reschedule)
		default:
			b.Op("CHMK", asm.Lit(3))
		}
	}
}

func (g *generator) needProc(n int) {
	if g.nProcs < n {
		g.nProcs = n
	}
}

func (g *generator) needSub(n int) {
	if g.nSubs < n {
		g.nSubs = n
	}
}

// emitProcedures generates the CALLS procedures and JSB subroutines.
// Entry masks save 3-6 registers, matching the paper's "about 8 registers
// pushed and popped" per CALL/RET (mask registers plus PC, FP, AP and the
// mask word).
func (g *generator) emitProcedures() {
	b := g.b
	for i := 0; i < g.nProcs; i++ {
		b.Label(fmt.Sprintf("proc%d", i))
		masks := []uint16{0x01C0, 0x03C0, 0x0FC0} // R6-R8, R6-R9, R6-R11
		b.Word(masks[i%len(masks)])
		// The callee re-derives its data base (R6/R7 are in the mask).
		b.Op("MOVAL", asm.LblAddr("data"), asm.R(vax.R6))
		b.Op("MOVL", asm.R(vax.R6), asm.R(vax.R7))
		body := 2 + g.r.Intn(3)
		for j := 0; j < body; j++ {
			g.aluBlock()
		}
		if i == 0 {
			b.Op("MOVC3", asm.Lit(24), asm.D(int32(strOff), vax.R7), asm.D(int32(strDstOff), vax.R7))
		}
		b.Op("RET")
	}
	for i := 0; i < g.nSubs; i++ {
		b.Label(fmt.Sprintf("sub%d", i))
		b.Op("PUSHL", asm.R(vax.R10))
		g.aluBlock()
		b.Op("MOVL", asm.Inc(vax.SP), asm.R(vax.R10))
		b.Op("RSB")
	}
}

// emitData lays out the 128 KB data region; queue nodes, packed decimals,
// float constants, strings and the I/O buffer live at fixed offsets from
// the base held in R7.
func (g *generator) emitData() {
	b := g.b
	b.Align(4)
	b.Label("data")
	for i := 0; i < 256; i++ {
		b.Long(uint32(g.r.Intn(1 << 16)))
	}
	b.Space(strOff - 96 - 4*256)
	// Layout below the strings area:
	//   strOff-96: queue head   strOff-88: queue node
	//   strOff-64: pk1          strOff-56: pk2        strOff-48: pk3
	//   strOff-32: F constant   strOff-24: D constant strOff-16: EMUL dst
	b.Label("qhead")
	b.LongLabel("qhead")
	b.LongLabel("qhead")
	b.Long(0, 0) // queue node at strOff-88
	b.Space(16)
	b.Byte(0x12, 0x34, 0x56, 0x78, 0x9C) // pk1
	b.Space(3)
	b.Byte(0x00, 0x12, 0x34, 0x56, 0x7C) // pk2
	b.Space(3)
	b.Space(8) // pk3
	b.Space(8)
	b.Long(0x40490FDB) // F constant (model F_floating bits)
	b.Space(4)
	b.Quad(0x400921FB54442D18) // D constant
	b.Quad(0)                  // EMUL destination
	b.Space(8)
	text := "now is the time for all good users to share the processor; "
	for len(text) < 256 {
		text += "edit compile link run debug print mail "
	}
	b.Byte([]byte(text[:256])...)
	b.Space(4096 - 256)
	b.Space(4096) // string destination
	b.Space(64)   // I/O buffer
	b.Space(dataSize - (ioBufOff + 64))
}
