package workload

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"vax780/internal/checkpoint"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
)

// Run supervision: the paper's measurement sessions ran for about an hour
// attached to live machines (§2.2); at that scale the measurement
// infrastructure itself must survive interruption. A supervised run adds,
// on top of the plain Run loop:
//
//   - cooperative cancellation (context) checked at instruction
//     boundaries, so SIGINT/SIGTERM and deadlines stop the machine in a
//     checkpointable state;
//   - a wall-clock deadline;
//   - a periodic auto-checkpoint ticker writing atomic snapshot
//     generations (internal/checkpoint);
//   - a progress watchdog converting a wedged machine — no instruction
//     retired for a cycle budget — into a structured *cpu.MachineError
//     with the stuck µPC and a state dump, instead of an infinite spin.
//
// Resumed runs are bit-identical to uninterrupted ones (proved by
// TestCheckpointResumeDeterminism), so an interrupted measurement keeps
// its validity for paper-table comparisons.

// Supervisor defaults.
const (
	// DefaultCheckpointEvery is the auto-checkpoint period in cycles.
	DefaultCheckpointEvery = 1_000_000
	// DefaultWatchdogCycles is the progress watchdog budget. It must
	// comfortably exceed the longest legitimate instruction plus the
	// longest delivery sequence; the worst case in the model is a
	// maximum-length character-string instruction at tens of thousands
	// of cycles, so two million cycles of no retirement is a wedge.
	DefaultWatchdogCycles = 2_000_000
)

// ErrStopRequested is the cancellation cause of a run stopped by the
// supervisor's StopAt cycle mark.
var ErrStopRequested = errors.New("stop-at cycle reached")

// Supervisor configures a supervised run. The zero value supervises with
// defaults and no checkpointing, no deadline.
type Supervisor struct {
	// CheckpointDir enables periodic checkpointing into the directory
	// (created if needed). Empty disables.
	CheckpointDir string
	// CheckpointEvery is the auto-checkpoint period in cycles
	// (DefaultCheckpointEvery when zero).
	CheckpointEvery uint64
	// Keep is the number of snapshot generations retained
	// (checkpoint.DefaultKeep when zero).
	Keep int
	// Watchdog is the progress watchdog budget in cycles
	// (DefaultWatchdogCycles when zero).
	Watchdog uint64
	// Deadline is the wall-clock run budget (none when zero). An expired
	// deadline checkpoints and returns *Interrupted.
	Deadline time.Duration
	// StopAt, when nonzero and below the cycle budget, stops the run
	// (with a final checkpoint) once the machine reaches that cycle —
	// a deterministic interruption point for staged runs and tests.
	StopAt uint64
	// OnChunk, when set, is called after each executed run slice with
	// the machine's current cycle, before that slice's checkpoint is
	// written. It gives a supervision layer above this one
	// (internal/farm) a low-rate re-entry point into a running
	// instance: worker kill switches, health accounting. A panic out
	// of OnChunk unwinds through supervise without writing a final
	// checkpoint, so to everything downstream it is indistinguishable
	// from the worker dying at that cycle — exactly the semantics a
	// hard-death chaos test needs.
	OnChunk func(cycle uint64)
}

// Spec names a supervised run: which workload, for how long, on what
// machine, with what fault injection (nil = clean).
type Spec struct {
	Profile Profile
	Cycles  uint64
	Machine cpu.Config
	Fault   *fault.Config
}

// Interrupted reports a supervised run stopped before completing its
// cycle budget — by cancellation, deadline, or StopAt — with the final
// checkpoint (if a checkpoint directory was configured) recorded so the
// run can be resumed.
type Interrupted struct {
	Cause      error  // context.Canceled, context.DeadlineExceeded, or ErrStopRequested
	Cycle      uint64 // machine cycle at the stop
	Checkpoint string // path of the final snapshot ("" without a checkpoint dir)
}

func (e *Interrupted) Error() string {
	msg := fmt.Sprintf("run interrupted at cycle %d: %v", e.Cycle, e.Cause)
	if e.Checkpoint != "" {
		msg += "; checkpoint written to " + e.Checkpoint
	}
	return msg
}

func (e *Interrupted) Unwrap() error { return e.Cause }

// RunSupervised executes one workload under the supervisor.
func RunSupervised(ctx context.Context, spec Spec, sup Supervisor) (*Result, error) {
	var plane *fault.Plane
	if spec.Fault != nil {
		plane = fault.NewPlane(*spec.Fault)
	}
	s, err := build(spec.Profile, spec.Cycles, spec.Machine, plane)
	if err != nil {
		return nil, err
	}
	return s.supervise(ctx, spec.Fault, sup)
}

// ResumeSupervised continues a checkpointed run from the newest loadable
// snapshot generation in dir (corrupt generations are skipped). A
// snapshot of a completed run reconstructs its Result without running.
// Unless sup.CheckpointDir says otherwise, further checkpoints go back
// to dir.
func ResumeSupervised(ctx context.Context, dir string, sup Supervisor) (*Result, error) {
	d, err := checkpoint.Open(dir, sup.Keep)
	if err != nil {
		return nil, err
	}
	snap, _, err := d.LoadLatest()
	if err != nil {
		return nil, err
	}
	s, err := restore(snap)
	if err != nil {
		return nil, err
	}
	if snap.Complete() {
		return s.result(), nil
	}
	if sup.CheckpointDir == "" {
		sup.CheckpointDir = dir
	}
	return s.supervise(ctx, snap.Meta.Fault, sup)
}

// restore rebuilds a session from a snapshot: the same deterministic
// construction as a fresh run, then every piece of captured state
// imported over it.
func restore(snap *checkpoint.Snapshot) (*session, error) {
	p, ok := ByName(snap.Meta.Profile)
	if !ok {
		return nil, fmt.Errorf("workload: snapshot is of unknown workload %q", snap.Meta.Profile)
	}
	if snap.Meta.Seed != 0 {
		// Fleet instances run the registry profile under a derived seed;
		// rebuilding with the registry default would resume a different
		// program. Zero means a pre-Seed-field snapshot: registry default.
		p.Seed = snap.Meta.Seed
	}
	var plane *fault.Plane
	if snap.Meta.Fault != nil {
		plane = fault.NewPlane(*snap.Meta.Fault)
	}
	s, err := build(p, snap.Meta.TotalCycles, snap.Meta.Machine, plane)
	if err != nil {
		return nil, err
	}
	if err := s.sys.Machine().ImportState(snap.CPU); err != nil {
		return nil, fmt.Errorf("workload %s: restoring machine: %w", p.Name, err)
	}
	if err := s.sys.ImportState(snap.OS); err != nil {
		return nil, fmt.Errorf("workload %s: restoring system: %w", p.Name, err)
	}
	s.mon.ImportState(snap.Monitor)
	s.plane.ImportState(snap.FaultState)
	return s, nil
}

// snapshot captures the session's complete state.
func (s *session) snapshot(fcfg *fault.Config) (*checkpoint.Snapshot, error) {
	m := s.sys.Machine()
	cpuSt, err := m.ExportState()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.p.Name, err)
	}
	osSt, err := s.sys.ExportState()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.p.Name, err)
	}
	return &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			Profile:     s.p.Name,
			Seed:        s.p.Seed,
			TotalCycles: s.cycles,
			Cycle:       m.Cycle(),
			Machine:     m.Config(),
			Fault:       fcfg,
		},
		CPU:        cpuSt,
		OS:         osSt,
		Monitor:    s.mon.ExportState(),
		FaultState: s.plane.ExportState(),
	}, nil
}

// supervise is the supervised run loop: execute in slices bounded by the
// next checkpoint tick, checkpoint between slices, stop cleanly on
// cancellation, deadline, StopAt, completion, or machine failure.
func (s *session) supervise(ctx context.Context, fcfg *fault.Config, sup Supervisor) (*Result, error) {
	m := s.sys.Machine()
	wd := sup.Watchdog
	if wd == 0 {
		wd = DefaultWatchdogCycles
	}
	m.SetWatchdog(wd)

	var dir *checkpoint.Dir
	if sup.CheckpointDir != "" {
		var err error
		dir, err = checkpoint.Open(sup.CheckpointDir, sup.Keep)
		if err != nil {
			return nil, err
		}
	}
	if sup.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sup.Deadline)
		defer cancel()
	}
	every := sup.CheckpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	stopAt := s.cycles
	if sup.StopAt != 0 && sup.StopAt < stopAt {
		stopAt = sup.StopAt
	}

	lastCkpt := ""
	writeCkpt := func() error {
		if dir == nil {
			return nil
		}
		snap, err := s.snapshot(fcfg)
		if err != nil {
			return err
		}
		path, err := dir.Save(snap)
		if err != nil {
			return err
		}
		lastCkpt = path
		return nil
	}

	for m.Cycle() < stopAt {
		chunk := stopAt - m.Cycle()
		// Chunk at checkpoint ticks when anything observes chunk
		// boundaries: the checkpoint writer, or a supervision layer's
		// OnChunk hook (which must fire at the same cadence whether or
		// not checkpoints are being written).
		if dir != nil || sup.OnChunk != nil {
			if nextTick := (m.Cycle()/every + 1) * every; nextTick < m.Cycle()+chunk {
				chunk = nextTick - m.Cycle()
			}
		}
		res := s.sys.RunCtx(ctx, chunk)
		if res.Err != nil {
			if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
				if err := writeCkpt(); err != nil {
					return nil, fmt.Errorf("interrupted at cycle %d and the final checkpoint failed: %w",
						m.Cycle(), err)
				}
				return nil, &Interrupted{Cause: res.Err, Cycle: m.Cycle(), Checkpoint: lastCkpt}
			}
			return nil, fmt.Errorf("workload %s: run: %w", s.p.Name, res.Err)
		}
		if res.Halted {
			return nil, fmt.Errorf("workload %s: %w (kernel fatal)", s.p.Name, ErrUnexpectedHalt)
		}
		if sup.OnChunk != nil {
			sup.OnChunk(m.Cycle())
		}
		if err := writeCkpt(); err != nil {
			return nil, err
		}
	}
	if stopAt < s.cycles {
		return nil, &Interrupted{Cause: ErrStopRequested, Cycle: m.Cycle(), Checkpoint: lastCkpt}
	}
	return s.result(), nil
}

// RunCompositeSupervised measures the five-workload composite under the
// supervisor, checkpointing each workload into its own subdirectory of
// sup.CheckpointDir. With resume set, workloads whose subdirectory holds
// a loadable snapshot continue from it — completed workloads reconstruct
// their Result without re-running — so a crashed or interrupted composite
// picks up where it stopped.
func RunCompositeSupervised(ctx context.Context, cyclesEach uint64, mcfg cpu.Config, sup Supervisor, resume bool) (*Composite, error) {
	comp := &Composite{Hist: &core.Histogram{}}
	for _, p := range All() {
		sub := sup
		if sup.CheckpointDir != "" {
			sub.CheckpointDir = filepath.Join(sup.CheckpointDir, p.Name)
		}
		r, err := runOneComposite(ctx, p, cyclesEach, mcfg, sub, resume)
		if err != nil {
			return nil, err
		}
		comp.Runs = append(comp.Runs, r)
		comp.Hist.Add(r.Hist)
	}
	return comp, nil
}

func runOneComposite(ctx context.Context, p Profile, cyclesEach uint64, mcfg cpu.Config, sup Supervisor, resume bool) (*Result, error) {
	if resume && sup.CheckpointDir != "" {
		d, err := checkpoint.Open(sup.CheckpointDir, sup.Keep)
		if err != nil {
			return nil, err
		}
		gens, err := d.Generations()
		if err != nil {
			return nil, err
		}
		if len(gens) > 0 {
			return ResumeSupervised(ctx, sup.CheckpointDir, sup)
		}
		// No generations yet: this workload had not started; fall through.
	}
	return RunSupervised(ctx, Spec{Profile: p, Cycles: cyclesEach, Machine: mcfg}, sup)
}
