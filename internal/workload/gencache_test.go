package workload

import (
	"bytes"
	"testing"
)

// TestGenerateSharedMatchesFresh pins the cache's only safety argument:
// the shared image is byte-identical to a fresh generation of the same
// configuration, and repeat lookups return the same image rather than
// regenerating.
func TestGenerateSharedMatchesFresh(t *testing.T) {
	cfg := GenConfig{Mix: Mix{ALU: 1, Branchy: 0.5, Call: 0.25}, Blocks: 24, Seed: 42}

	cached, err := generateShared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Org != fresh.Org || !bytes.Equal(cached.Bytes, fresh.Bytes) {
		t.Fatalf("cached image differs from fresh generation: org %#x vs %#x, %d vs %d bytes",
			cached.Org, fresh.Org, len(cached.Bytes), len(fresh.Bytes))
	}
	again, err := generateShared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Error("second generateShared regenerated instead of sharing")
	}

	// A different seed must miss the cache and produce a different program.
	other := cfg
	other.Seed = 43
	im, err := generateShared(other)
	if err != nil {
		t.Fatal(err)
	}
	if im == cached || bytes.Equal(im.Bytes, cached.Bytes) {
		t.Error("distinct configurations share one image")
	}
}
