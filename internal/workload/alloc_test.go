package workload

import (
	"testing"

	"vax780/internal/cpu"
)

// stepAllocBudget is the per-instruction heap-allocation contract of the
// stepping loop, measured in steady state (after boot and warmup). The
// loop itself allocates nothing; what remains are the justified cold and
// bounded slices the hotpath analyzer carries allows for — fault
// parameter buffers, decimal-string scratch — which fire on a small
// fraction of instructions. The bound is deliberately tight: the
// measured rate is ~0.001 allocs/instruction, and a single new
// allocation in the per-cycle path would land at 1.0 and fail every
// profile at once.
const stepAllocBudget = 0.05

// TestStepAllocations pins the allocation behavior of the stepping loop
// for all five workload profiles: prepare a session exactly as a real
// measurement would (monitor attached), run past boot into steady state,
// then meter StepInstruction directly.
func TestStepAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is too slow for -short")
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s, err := Prepare(p, 1_000_000, cpu.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if res := s.Run(200_000); res.Err != nil || res.Halted {
				t.Fatalf("warmup: halted=%v err=%v", res.Halted, res.Err)
			}
			m := s.Machine()
			avg := testing.AllocsPerRun(2000, func() {
				m.StepInstruction()
			})
			if avg > stepAllocBudget {
				t.Errorf("%s: %.4f allocs/instruction in steady state, budget %.2f",
					p.Name, avg, stepAllocBudget)
			}
			t.Logf("%s: %.4f allocs/instruction", p.Name, avg)
		})
	}
}
