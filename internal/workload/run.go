package workload

import (
	"errors"
	"fmt"

	"vax780/internal/cache"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/tb"
	"vax780/internal/vmos"
)

// ErrUnexpectedHalt reports a workload that executed a kernel HALT before
// its cycle budget ran out — a kernel fatal, not a measurement. Typed so
// callers across the workload boundary can route on it with errors.Is.
var ErrUnexpectedHalt = errors.New("workload halted unexpectedly")

// Result is one measurement session: the raw histogram plus the hardware
// counters the paper's companion studies supply (§4.1, §4.2).
type Result struct {
	Profile      Profile
	Hist         *core.Histogram
	Instructions uint64 // machine-level (includes the null process)
	Cycles       uint64
	Cache        cache.Stats
	IB           cpu.IBStats
	TB           tb.Stats
	HW           cpu.HWCounters
	Faults       fault.Stats // injection activity (zero without a plane)
}

// session is one prepared measurement run: a booted system with monitor
// and (optional) fault plane attached. Both the plain and the supervised
// run paths build one, and the resume path builds one and then overwrites
// its state from a snapshot.
type session struct {
	p      Profile
	cycles uint64 // total cycle budget
	sys    *vmos.System
	mon    *core.Monitor
	plane  *fault.Plane
}

// build boots a measurement session for one workload. The construction is
// deterministic in (p, cycles, mcfg): the resume path depends on two
// builds from the same inputs being identical before state import.
func build(p Profile, cycles uint64, mcfg cpu.Config, plane *fault.Plane) (*session, error) {
	sys := vmos.NewSystem(vmos.Config{
		Machine:     mcfg,
		IncludeNull: true,
	})
	mon := core.NewMonitor()
	mon.Start()
	sys.Machine().AttachProbe(mon)
	sys.Machine().AttachFaultPlane(plane)

	for i := 0; i < p.Procs; i++ {
		im, err := generateShared(GenConfig{
			Mix:       p.Mix,
			Blocks:    p.Blocks,
			LoopIter:  p.LoopIter,
			StringLen: p.StringLen,
			Seed:      p.Seed + int64(i)*1000,
		})
		if err != nil {
			return nil, fmt.Errorf("workload %s: generate: %w", p.Name, err)
		}
		if _, err := sys.AddProcess(fmt.Sprintf("%s-%d", p.Name, i), im); err != nil {
			return nil, err
		}
	}
	if err := sys.Boot(); err != nil {
		return nil, fmt.Errorf("workload %s: boot: %w", p.Name, err)
	}
	sys.SetScriptText(p.Script)
	sys.QueueTerminalEvents(p.TerminalSchedule(cycles))
	return &session{p: p, cycles: cycles, sys: sys, mon: mon, plane: plane}, nil
}

// result assembles the measurement from the session's current state.
func (s *session) result() *Result {
	m := s.sys.Machine()
	return &Result{
		Profile:      s.p,
		Hist:         s.mon.Snapshot(),
		Instructions: m.Instructions(),
		Cycles:       m.Cycle(),
		Cache:        m.Cache.Stats(),
		IB:           m.IBStats(),
		TB:           m.TLB.Stats(),
		HW:           m.HW(),
		Faults:       s.plane.Stats(),
	}
}

// Run executes one workload for the given cycle budget under a collecting
// monitor and returns the measurement.
func Run(p Profile, cycles uint64, mcfg cpu.Config) (*Result, error) {
	return RunInjected(p, cycles, mcfg, nil)
}

// RunInjected is Run with a fault-injection plane attached to the machine
// (nil behaves exactly like Run). Injected runs exercise the machine-check
// path; their tables are NOT comparable with the paper's clean numbers.
func RunInjected(p Profile, cycles uint64, mcfg cpu.Config, plane *fault.Plane) (*Result, error) {
	s, err := build(p, cycles, mcfg, plane)
	if err != nil {
		return nil, err
	}
	res := s.sys.Run(cycles)
	if res.Err != nil {
		return nil, fmt.Errorf("workload %s: run: %w", p.Name, res.Err)
	}
	if res.Halted {
		return nil, fmt.Errorf("workload %s: %w (kernel fatal)", p.Name, ErrUnexpectedHalt)
	}
	return s.result(), nil
}

// Composite is the sum of the five workloads' histograms — the paper
// reports "the composite of all five, that is, the sum of the five UPC
// histograms" (§2.2).
type Composite struct {
	Runs []*Result
	Hist *core.Histogram
}

// RunComposite measures all five workloads for cyclesEach cycles each and
// sums their histograms.
func RunComposite(cyclesEach uint64, mcfg cpu.Config) (*Composite, error) {
	comp := &Composite{Hist: &core.Histogram{}}
	for _, p := range All() {
		r, err := Run(p, cyclesEach, mcfg)
		if err != nil {
			return nil, err
		}
		comp.Runs = append(comp.Runs, r)
		comp.Hist.Add(r.Hist)
	}
	return comp, nil
}

// HWTotals sums the hardware counters across the composite's runs.
func (c *Composite) HWTotals() (cache.Stats, cpu.IBStats, tb.Stats, cpu.HWCounters, uint64) {
	var cs cache.Stats
	var ib cpu.IBStats
	var ts tb.Stats
	var hw cpu.HWCounters
	var instr uint64
	for _, r := range c.Runs {
		for i := 0; i < 2; i++ {
			cs.ReadHits[i] += r.Cache.ReadHits[i]
			cs.ReadMisses[i] += r.Cache.ReadMisses[i]
			ts.Hits[i] += r.TB.Hits[i]
			ts.Misses[i] += r.TB.Misses[i]
		}
		cs.WriteHits += r.Cache.WriteHits
		cs.WriteMisses += r.Cache.WriteMisses
		cs.ParityErrors += r.Cache.ParityErrors
		ts.ProcessFlushes += r.TB.ProcessFlushes
		ts.ParityErrors += r.TB.ParityErrors
		ib.CacheRefs += r.IB.CacheRefs
		ib.BytesDelivered += r.IB.BytesDelivered
		ib.BytesConsumed += r.IB.BytesConsumed
		ib.Redirects += r.IB.Redirects
		ib.TBMisses += r.IB.TBMisses
		hw.Unaligned += r.HW.Unaligned
		hw.SIRRRequests += r.HW.SIRRRequests
		hw.Interrupts += r.HW.Interrupts
		hw.Exceptions += r.HW.Exceptions
		hw.CtxSwitches += r.HW.CtxSwitches
		hw.MachineChecks += r.HW.MachineChecks
		hw.MachineChecksLost += r.HW.MachineChecksLost
		for i := range hw.MachineChecksByCause {
			hw.MachineChecksByCause[i] += r.HW.MachineChecksByCause[i]
		}
		instr += r.Instructions
	}
	return cs, ib, ts, hw, instr
}
