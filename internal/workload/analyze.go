package workload

import (
	"fmt"
	"strings"

	"vax780/internal/asm"
	"vax780/internal/vax"
)

// StaticMix is the static (as-assembled) opcode composition of a generated
// program: a sanity lens on the generator, distinct from the dynamic mix
// the monitor measures.
type StaticMix struct {
	Instructions int
	Bytes        int // code bytes (up to the first undecodable byte)
	Groups       [vax.NumGroups]int
	PCChanging   int
}

// Freq returns a group's share of static instructions.
func (s *StaticMix) Freq(g vax.Group) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Groups[g]) / float64(s.Instructions)
}

// AnalyzeStatic walks a generated image from its entry point, decoding
// until the code region ends (generated programs put data after the code,
// and the first data bytes do not decode as instructions, or decode past
// the known code labels — the walk also stops at the generated data label).
func AnalyzeStatic(im *asm.Image) (*StaticMix, error) {
	end := uint32(len(im.Bytes))
	if dataAddr, ok := im.Addr("data"); ok {
		end = dataAddr - im.Org
	}
	// Procedure entry masks are data words at each procN label; the walk
	// must skip them.
	maskAt := map[uint32]bool{}
	for name, addr := range im.Labels {
		if strings.HasPrefix(name, "proc") {
			maskAt[addr-im.Org] = true
		}
	}
	mix := &StaticMix{}
	off := uint32(0) // entry is the image origin
	for off < end {
		if maskAt[off] {
			off += 2 // the CALLS entry mask word
			continue
		}
		in, err := vax.Decode(im.Bytes[off:])
		if err != nil {
			return nil, fmt.Errorf("workload: analyze at +%#x: %w", off, err)
		}
		mix.Instructions++
		mix.Bytes += in.Size
		mix.Groups[in.Info.Group]++
		if in.Info.PCClass != vax.PCNone {
			mix.PCChanging++
		}
		off += uint32(in.Size)
		// CASEx displacement tables follow the instruction in the
		// I-stream; generated case tables always have three entries.
		if in.Info.PCClass == vax.PCCase {
			off += 6
		}
	}
	return mix, nil
}

// String renders the static mix.
func (s *StaticMix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions, %d bytes (%.2f avg)\n",
		s.Instructions, s.Bytes, float64(s.Bytes)/float64(s.Instructions))
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		fmt.Fprintf(&sb, "  %-10v %6.2f%%\n", g, 100*s.Freq(g))
	}
	fmt.Fprintf(&sb, "  %-10s %6.2f%%\n", "PC-chg", 100*float64(s.PCChanging)/float64(s.Instructions))
	return sb.String()
}
