package workload

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vax780/internal/checkpoint"
	"vax780/internal/core"
	"vax780/internal/cpu"
)

// histBytes encodes a histogram exactly as vaxsim writes it to disk, so
// equality is asserted at the byte level of the real data product — the
// determinism contract is "`cmp` passes on the .upc files", not
// "approximately equal tables".
func histBytes(t *testing.T, h *core.Histogram) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// requireIdentical asserts the full determinism contract between an
// uninterrupted baseline and a checkpoint-resumed run.
func requireIdentical(t *testing.T, name string, base, resumed *Result) {
	t.Helper()
	if !bytes.Equal(histBytes(t, base.Hist), histBytes(t, resumed.Hist)) {
		t.Errorf("%s: resumed histogram differs from the uninterrupted run", name)
	}
	if base.Instructions != resumed.Instructions || base.Cycles != resumed.Cycles {
		t.Errorf("%s: instructions/cycles diverged: %d/%d vs %d/%d",
			name, base.Instructions, base.Cycles, resumed.Instructions, resumed.Cycles)
	}
	if !reflect.DeepEqual(base.Cache, resumed.Cache) {
		t.Errorf("%s: cache stats diverged:\n%+v\n%+v", name, base.Cache, resumed.Cache)
	}
	if !reflect.DeepEqual(base.IB, resumed.IB) {
		t.Errorf("%s: IB stats diverged:\n%+v\n%+v", name, base.IB, resumed.IB)
	}
	if !reflect.DeepEqual(base.TB, resumed.TB) {
		t.Errorf("%s: TB stats diverged:\n%+v\n%+v", name, base.TB, resumed.TB)
	}
	if !reflect.DeepEqual(base.HW, resumed.HW) {
		t.Errorf("%s: HW counters diverged:\n%+v\n%+v", name, base.HW, resumed.HW)
	}
	baseRep := core.Reduce(base.Hist, cpu.CS)
	resRep := core.Reduce(resumed.Hist, cpu.CS)
	if baseRep.CPI() != resRep.CPI() {
		t.Errorf("%s: reduced CPI diverged: %v vs %v", name, baseRep.CPI(), resRep.CPI())
	}
}

// TestCheckpointResumeDeterminism is the tentpole's central guarantee,
// proved for every workload profile: a run stopped at a deterministic
// mid-point, checkpointed, and resumed in a fresh session produces a
// bit-identical histogram and identical counters versus a run that was
// never interrupted.
func TestCheckpointResumeDeterminism(t *testing.T) {
	const cycles = 280_000
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(p, cycles, cpu.Config{})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}

			dir := filepath.Join(t.TempDir(), "ck")
			sup := Supervisor{
				CheckpointDir:   dir,
				CheckpointEvery: cycles / 4,
				StopAt:          cycles/2 + 137,
			}
			_, err = RunSupervised(context.Background(),
				Spec{Profile: p, Cycles: cycles, Machine: cpu.Config{}}, sup)
			var intr *Interrupted
			if !errors.As(err, &intr) {
				t.Fatalf("want *Interrupted at the stop mark, got %v", err)
			}
			if !errors.Is(err, ErrStopRequested) {
				t.Fatalf("interruption cause = %v, want ErrStopRequested", intr.Cause)
			}
			if intr.Checkpoint == "" {
				t.Fatal("interruption recorded no checkpoint path")
			}

			resumed, err := ResumeSupervised(context.Background(), dir, Supervisor{})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			requireIdentical(t, p.Name, base, resumed)

			// The completed run left a final snapshot; resuming it again
			// reconstructs the same Result without re-running.
			again, err := ResumeSupervised(context.Background(), dir, Supervisor{})
			if err != nil {
				t.Fatalf("resume of completed run: %v", err)
			}
			requireIdentical(t, p.Name+"/completed", base, again)
		})
	}
}

// TestCrashConsistencyKillAndResume simulates the crash the format is
// designed for: the process dies mid-write, leaving the newest generation
// truncated. The resume must reject it with the typed corruption error
// internally, fall back to the previous intact generation, and still
// produce results bit-identical to an uninterrupted run.
func TestCrashConsistencyKillAndResume(t *testing.T) {
	const cycles = 260_000
	p := TimesharingResearch

	base, err := Run(p, cycles, cpu.Config{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "ck")
	_, err = RunSupervised(context.Background(),
		Spec{Profile: p, Cycles: cycles, Machine: cpu.Config{}},
		Supervisor{CheckpointDir: dir, CheckpointEvery: cycles / 5, StopAt: cycles / 2})
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted, got %v", err)
	}

	d, err := checkpoint.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) < 2 {
		t.Fatalf("need at least two generations to prove fallback, have %d", len(gens))
	}
	newest := gens[len(gens)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)*2/3], 0o666); err != nil {
		t.Fatal(err)
	}

	// The damaged generation itself must fail with the typed error.
	f, err := os.Open(newest)
	if err != nil {
		t.Fatal(err)
	}
	_, derr := checkpoint.Decode(f)
	f.Close()
	if !errors.Is(derr, checkpoint.ErrCorrupt) {
		t.Fatalf("truncated snapshot: want ErrCorrupt, got %v", derr)
	}

	resumed, err := ResumeSupervised(context.Background(), dir, Supervisor{})
	if err != nil {
		t.Fatalf("resume past corrupt generation: %v", err)
	}
	requireIdentical(t, p.Name, base, resumed)
}

// TestSupervisedDeadline: an effectively-zero wall-clock budget stops the
// run almost immediately with a final checkpoint and a typed
// interruption whose cause is the deadline.
func TestSupervisedDeadline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	_, err := RunSupervised(context.Background(),
		Spec{Profile: RTECommercial, Cycles: 50_000_000, Machine: cpu.Config{}},
		Supervisor{CheckpointDir: dir, Deadline: time.Millisecond})
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted from the deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", intr.Cause)
	}
	if intr.Checkpoint == "" {
		t.Fatal("deadline interruption wrote no checkpoint")
	}
	if _, err := ResumeSupervised(context.Background(), dir,
		Supervisor{StopAt: intr.Cycle + 1}); err == nil {
		t.Fatal("expected the immediate re-stop to report *Interrupted")
	} else if !errors.As(err, &intr) {
		t.Fatalf("resume after deadline: %v", err)
	}
}

// TestSupervisedCancellation: cancelling the context stops the run with a
// final checkpoint, and the cancelled session's machine is left in a
// clean (checkpointable, resumable) state.
func TestSupervisedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first instruction
	dir := filepath.Join(t.TempDir(), "ck")
	_, err := RunSupervised(ctx,
		Spec{Profile: RTEScientific, Cycles: 300_000, Machine: cpu.Config{}},
		Supervisor{CheckpointDir: dir})
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted from cancellation, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause = %v, want context.Canceled", intr.Cause)
	}
	resumed, err := ResumeSupervised(context.Background(), dir, Supervisor{})
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	base, err := Run(RTEScientific, 300_000, cpu.Config{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	requireIdentical(t, "rte-scientific", base, resumed)
}

// TestResumeErrors: resuming nothing, or pure damage, is a clean typed
// error — never a panic, never a silent fresh run.
func TestResumeErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "nothing")
	if _, err := ResumeSupervised(context.Background(), empty, Supervisor{}); !errors.Is(err, checkpoint.ErrNoSnapshot) {
		t.Errorf("empty dir: want ErrNoSnapshot, got %v", err)
	}
	junkDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(junkDir, "ckpt-00000000000000000001.vaxck"), []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSupervised(context.Background(), junkDir, Supervisor{}); !errors.Is(err, checkpoint.ErrNoSnapshot) {
		t.Errorf("junk dir: want ErrNoSnapshot, got %v", err)
	}
}

// TestCompositeSupervisedResume interrupts a supervised composite partway
// through the workload list and resumes it: finished workloads come back
// from their final snapshots, the interrupted one continues, and the
// composite histogram equals the uninterrupted composite's bit for bit.
func TestCompositeSupervisedResume(t *testing.T) {
	const cyclesEach = 120_000
	baseComp, err := RunComposite(cyclesEach, cpu.Config{})
	if err != nil {
		t.Fatalf("baseline composite: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "comp")
	sup := Supervisor{CheckpointDir: dir, CheckpointEvery: cyclesEach / 3}
	// A context cancelled after a couple of workloads' worth of wall time
	// would be racy; instead interrupt deterministically by running the
	// composite with a StopAt that wedges the first workload mid-run.
	_, err = RunCompositeSupervised(context.Background(), cyclesEach, cpu.Config{},
		Supervisor{CheckpointDir: dir, CheckpointEvery: cyclesEach / 3, StopAt: cyclesEach / 2}, false)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted from the stop mark, got %v", err)
	}

	comp, err := RunCompositeSupervised(context.Background(), cyclesEach, cpu.Config{}, sup, true)
	if err != nil {
		t.Fatalf("composite resume: %v", err)
	}
	if len(comp.Runs) != len(baseComp.Runs) {
		t.Fatalf("composite has %d runs, want %d", len(comp.Runs), len(baseComp.Runs))
	}
	if !bytes.Equal(histBytes(t, baseComp.Hist), histBytes(t, comp.Hist)) {
		t.Error("resumed composite histogram differs from the uninterrupted composite")
	}
	for i := range comp.Runs {
		requireIdentical(t, comp.Runs[i].Profile.Name, baseComp.Runs[i], comp.Runs[i])
	}
}
