package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "Title", []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta-long-name", "22"},
	})
	out := sb.String()
	for _, want := range []string{"Title", "alpha", "beta-long-name", "22", "name", "value"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the same width as the header line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(12.345) != "12.35" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
}

func TestCheckOK(t *testing.T) {
	cases := []struct {
		c    Check
		want bool
	}{
		{Check{Paper: 10, Measured: 10, RelTol: 0.1}, true},
		{Check{Paper: 10, Measured: 11, RelTol: 0.1}, true},
		{Check{Paper: 10, Measured: 11.5, RelTol: 0.1}, false},
		{Check{Paper: 10, Measured: 9, RelTol: 0.05}, false},
		{Check{Paper: 0, Measured: 0.01, AbsTol: 0.02}, true},
		{Check{Paper: 0, Measured: 0.5, AbsTol: 0.02}, false},
		{Check{Paper: 1, Measured: 1.5, RelTol: 0.1, AbsTol: 1}, true}, // abs rescues
	}
	for i, c := range cases {
		if got := c.c.OK(); got != c.want {
			t.Errorf("case %d: OK() = %v, want %v (%+v)", i, got, c.want, c.c)
		}
	}
}

func TestCheckDelta(t *testing.T) {
	c := Check{Paper: 10, Measured: 12}
	if d := c.Delta(); d != 20 {
		t.Errorf("Delta = %v, want 20", d)
	}
	if (Check{Paper: 0, Measured: 5}).Delta() != 0 {
		t.Error("zero-paper delta should be 0")
	}
}

func TestChecksCountsFailures(t *testing.T) {
	var sb strings.Builder
	fails := Checks(&sb, "checks", []Check{
		{Name: "good", Paper: 1, Measured: 1, RelTol: 0.1},
		{Name: "bad", Paper: 1, Measured: 2, RelTol: 0.1},
		{Name: "estimated", Paper: 1, Measured: 1.05, RelTol: 0.1, Estimated: true},
	})
	if fails != 1 {
		t.Errorf("fails = %d, want 1", fails)
	}
	out := sb.String()
	if !strings.Contains(out, "OFF") {
		t.Error("failing check not marked OFF")
	}
	if !strings.Contains(out, "(est.)") {
		t.Error("estimated check not annotated")
	}
}
