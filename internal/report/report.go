// Package report renders the reproduction's tables in a plain-text form
// echoing the paper's layout, with paper-vs-measured columns and
// tolerance-checked deltas.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes a fixed-width text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", total))
	writeRow := func(cells []string) {
		for i, cell := range cells {
			pad := widths[i] - len(cell)
			if i == 0 {
				fmt.Fprintf(w, "%s%s  ", cell, strings.Repeat(" ", pad))
			} else {
				fmt.Fprintf(w, "%s%s  ", strings.Repeat(" ", pad), cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// F formats a float with n decimals.
func F(v float64, n int) string { return fmt.Sprintf("%.*f", n, v) }

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v) }

// Check is a single paper-vs-measured comparison.
type Check struct {
	Name     string
	Paper    float64
	Measured float64
	// RelTol is the acceptable relative deviation (e.g. 0.25 = ±25%);
	// AbsTol is an absolute allowance for near-zero targets.
	RelTol float64
	AbsTol float64
	// Estimated marks the paper value as reconstructed from garbled OCR.
	Estimated bool
}

// OK reports whether the measured value is within tolerance.
func (c Check) OK() bool {
	diff := math.Abs(c.Measured - c.Paper)
	if diff <= c.AbsTol {
		return true
	}
	if c.Paper == 0 {
		return false
	}
	return diff/math.Abs(c.Paper) <= c.RelTol
}

// Delta returns the relative deviation in percent (0 when paper is 0).
func (c Check) Delta() float64 {
	if c.Paper == 0 {
		return 0
	}
	return 100 * (c.Measured - c.Paper) / c.Paper
}

// Checks renders a check list and returns the number of failures.
func Checks(w io.Writer, title string, checks []Check) int {
	rows := make([][]string, 0, len(checks))
	fails := 0
	for _, c := range checks {
		status := "ok"
		if !c.OK() {
			status = "OFF"
			fails++
		}
		name := c.Name
		if c.Estimated {
			name += " (est.)"
		}
		rows = append(rows, []string{
			name, F(c.Paper, 3), F(c.Measured, 3),
			fmt.Sprintf("%+.1f%%", c.Delta()), status,
		})
	}
	Table(w, title, []string{"metric", "paper", "measured", "delta", ""}, rows)
	return fails
}
