// Package vmos is a miniature VMS-like timesharing kernel for the modelled
// VAX-11/780 — the substrate the paper's measurements run on. It provides:
//
//   - virtual memory: an identity-mapped system region and per-process P0
//     spaces with real page tables walked by the TB-miss microcode;
//   - a round-robin scheduler driven by the interval clock through a
//     software interrupt, context-switching with SVPCTX/LDPCTX (the Table 7
//     events);
//   - CHMK system services (yield, terminal read/write, get-time) whose
//     kernel-mode work contributes the operating-system component of the
//     measurements, as the paper stresses;
//   - a terminal device fed by the Remote Terminal Emulator in
//     internal/workload;
//   - the VMS null process ("branch to self, awaiting an interrupt"),
//     excluded from measurement via the monitor gate exactly as in §2.2.
//
// The kernel itself is written in VAX assembly (internal/asm) and executed
// by the simulated processor, so kernel time is measured by the µPC
// monitor like any other time.
package vmos

import (
	"fmt"

	"vax780/internal/asm"
	"vax780/internal/cpu"
	"vax780/internal/mmu"
	"vax780/internal/vax"
)

// Service codes for the CHMK interface.
const (
	SvcYield     = 0 // give up the processor (requests a reschedule)
	SvcTermRead  = 1 // read a line from the terminal: R2 = buffer, R3 = length
	SvcTermWrite = 2 // write a line to the terminal: R2 = buffer, R3 = length
	SvcGetTime   = 3 // R1 <- clock ticks
	SvcDiskIO    = 4 // queue an asynchronous disk transfer
)

// Config sets up a system.
type Config struct {
	Machine cpu.Config
	// ClockInterval is the interval-timer period in cycles (default
	// 50,000 = 10 ms at the 200 ns cycle).
	ClockInterval uint64
	// ReschedTicks requests a reschedule every N clock ticks (default 1).
	ReschedTicks uint32
	// DiskLatency is the cycles from a disk request (CHMK SvcDiskIO) to
	// its completion interrupt (default 3000 = 600 µs).
	DiskLatency uint64
	// IncludeNull creates the null process (default on via NewSystem).
	IncludeNull bool
	// NullInRotation schedules the null process like any other (off by
	// default: the measured machines were busy, and VMS only ran the null
	// process when nothing else was runnable; our synthetic processes are
	// always runnable).
	NullInRotation bool
	// MaxProcesses bounds the process table (default 16).
	MaxProcesses int
}

// Process is one timesharing process.
type Process struct {
	PID     int
	Name    string
	PCB     uint32 // physical PCB address
	P0Table uint32 // physical address of the P0 page table
	Base    uint32 // physical base of the contiguous P0 backing
	Pages   uint32 // P0 pages mapped
	Null    bool
}

// System is a booted machine plus its kernel.
type System struct {
	cfg  Config       //vaxlint:allow statecomplete -- the resume path rebuilds the system from the same Config
	m    *cpu.Machine //vaxlint:allow statecomplete -- the machine travels separately as Snapshot.CPU
	kern *asm.Image   //vaxlint:allow statecomplete -- kernel image is laid down deterministically by Boot; its bytes travel in memory

	procs     []*Process //vaxlint:allow statecomplete -- process set is regenerated deterministically from the profile
	nullPCB   uint32     //vaxlint:allow statecomplete -- assigned deterministically by Boot
	nextFrame uint32     //vaxlint:allow statecomplete -- frame allocator is deterministic given the same boot sequence

	nextClock  uint64
	termEvents []uint64 // cycle numbers of terminal interrupts (sorted)
	termNext   int
	diskSeen   uint32   // disk requests already scheduled
	diskDue    []uint64 // pending disk completion times

	// Per-process CPU accounting (by resident PCB between instructions).
	lastCycle uint64
	lastPCB   uint32
	cpuTime   map[uint32]uint64 // PCB -> cycles charged

	booted bool
}

// Physical memory layout constants.
const (
	scbPhys    = 0x00000200 // system control block
	sysPTPhys  = 0x00004000 // system page table (16 KB -> maps 2 MB of S0)
	sysPTSlots = 4096
	kernPhys   = 0x00010000 // kernel image
	firstFree  = 0x00030000 // frame allocator start
	kstackSize = 4 * mmu.PageSize
	ustackSize = 8 * mmu.PageSize
)

// S0Base is the base virtual address of system space.
const S0Base = 0x80000000

// NewSystem builds (but does not boot) a system.
func NewSystem(cfg Config) *System {
	if cfg.ClockInterval == 0 {
		cfg.ClockInterval = 50_000
	}
	if cfg.ReschedTicks == 0 {
		cfg.ReschedTicks = 1
	}
	if cfg.DiskLatency == 0 {
		cfg.DiskLatency = 3000
	}
	if cfg.MaxProcesses == 0 {
		cfg.MaxProcesses = 16
	}
	s := &System{cfg: cfg, nextFrame: firstFree / mmu.PageSize}
	s.m = cpu.New(cfg.Machine)
	return s
}

// Machine returns the underlying machine.
func (s *System) Machine() *cpu.Machine { return s.m }

// Processes returns the process table.
func (s *System) Processes() []*Process { return s.procs }

// allocFrames takes n contiguous physical frames, or reports that the
// configured physical memory is exhausted.
func (s *System) allocFrames(n uint32) (uint32, error) {
	pa := s.nextFrame * mmu.PageSize
	if (s.nextFrame+n)*mmu.PageSize > s.m.Mem.Size() {
		return 0, fmt.Errorf("vmos: out of physical memory (%d frames requested, %d bytes configured)",
			n, s.m.Mem.Size())
	}
	s.nextFrame += n
	return pa, nil
}

// AddProcess creates a process from a user image assembled into P0 space.
// The image org must be page-aligned or leave room below it in page 0.
func (s *System) AddProcess(name string, im *asm.Image) (*Process, error) {
	if s.booted {
		return nil, fmt.Errorf("vmos: cannot add processes after boot")
	}
	if len(s.procs) >= s.cfg.MaxProcesses {
		return nil, fmt.Errorf("vmos: process table full")
	}
	progPages := (im.Org + uint32(len(im.Bytes)) + 4*mmu.PageSize + mmu.PageSize - 1) / mmu.PageSize
	stackPages := uint32(ustackSize / mmu.PageSize)
	totalPages := progPages + stackPages

	// Physical backing.
	base, err := s.allocFrames(totalPages)
	if err != nil {
		return nil, err
	}
	// P0 page table (in physical memory; referenced through S0).
	ptPages := (totalPages*4 + mmu.PageSize - 1) / mmu.PageSize
	pt, err := s.allocFrames(ptPages)
	if err != nil {
		return nil, err
	}
	for j := uint32(0); j < totalPages; j++ {
		s.m.Mem.WriteLong(pt+4*j, mmu.MakePTE(base/mmu.PageSize+j, mmu.ProtUW))
	}
	// Load the program.
	s.m.Mem.Load(base+im.Org, im.Bytes)

	// PCB.
	pcb, err := s.allocFrames(1)
	if err != nil {
		return nil, err
	}
	kstack, err := s.allocFrames(kstackSize / mmu.PageSize)
	if err != nil {
		return nil, err
	}
	kstackTop := S0Base + kstack + kstackSize
	ustackTop := totalPages * mmu.PageSize

	w := func(slot int, v uint32) { s.m.Mem.WriteLong(pcb+cpu.PCBOffset(slot), v) }
	w(0, kstackTop)                  // KSP
	w(1, ustackTop)                  // USP
	w(16, im.Org)                    // PC = image org (entry point)
	w(17, 3<<24|3<<22)               // PSL: user mode, previous user
	w(18, S0Base+pt)                 // P0BR (system virtual address)
	w(19, totalPages)                // P0LR
	w(20, S0Base+pt)                 // P1BR (unused; valid value required)
	w(21, 0)                         // P1LR

	p := &Process{
		PID:     len(s.procs),
		Name:    name,
		PCB:     pcb,
		P0Table: pt,
		Base:    base,
		Pages:   totalPages,
	}
	s.procs = append(s.procs, p)
	return p, nil
}

// addNullProcess installs the VMS null process: branch-to-self in its own
// tiny address space.
func (s *System) addNullProcess() error {
	b := asm.NewBuilder(0x200)
	b.Label("self")
	b.Br("BRB", "self")
	im, err := b.Finish()
	if err != nil {
		return err
	}
	p, err := s.AddProcess("NULL", im)
	if err != nil {
		return err
	}
	p.Null = true
	s.nullPCB = p.PCB
	return nil
}

// QueueTerminalEvents schedules terminal interrupts at the given cycle
// numbers (must be sorted ascending). The RTE uses this to emulate users.
func (s *System) QueueTerminalEvents(cycles []uint64) {
	s.termEvents = append(s.termEvents, cycles...)
}

// Boot assembles the kernel, builds the system page table and SCB, and
// arranges for the first process to run.
func (s *System) Boot() error {
	if s.booted {
		return fmt.Errorf("vmos: already booted")
	}
	if s.cfg.IncludeNull {
		if err := s.addNullProcess(); err != nil {
			return err
		}
	}
	if len(s.procs) == 0 {
		return fmt.Errorf("vmos: no processes")
	}

	// System page table: identity-map S0 page i -> frame i, covering all
	// physical memory the allocator can hand out.
	slots := s.m.Mem.Size() / mmu.PageSize
	if slots > sysPTSlots {
		slots = sysPTSlots
	}
	for i := uint32(0); i < slots; i++ {
		s.m.Mem.WriteLong(sysPTPhys+4*i, mmu.MakePTE(i, mmu.ProtKW))
	}

	// Kernel.
	kern, err := assembleKernel(S0Base+kernPhys, s.kernelSource())
	if err != nil {
		return fmt.Errorf("vmos: kernel assembly: %w", err)
	}
	s.kern = kern
	s.m.Mem.Load(kernPhys, kern.Bytes)

	// Kernel data: process rotation table (the null process only joins
	// the rotation when explicitly requested).
	tab := kern.MustAddr("pcbtab") - kern.Org
	n := 0
	for _, p := range s.procs {
		if p.Null && !s.cfg.NullInRotation {
			continue
		}
		s.m.Mem.WriteLong(kernPhys+tab+uint32(4*n), p.PCB)
		n++
	}
	s.m.Mem.WriteLong(kernPhys+kern.MustAddr("nproc")-kern.Org, uint32(n))

	// SCB vectors.
	vec := func(off int, label string) {
		s.m.Mem.WriteLong(scbPhys+uint32(off), kern.MustAddr(label))
	}
	vec(cpu.SCBCHMK, "chmk")
	vec(cpu.SCBClock, "clock")
	vec(cpu.SCBTerminal, "term")
	vec(cpu.SCBDiskDevice, "disk")
	vec(cpu.SCBSoftBase+4*schedLevel, "sched")
	vec(cpu.SCBSoftBase+4*forkLevel, "fork")
	vec(cpu.SCBReservedOp, "rsvdop")
	vec(cpu.SCBReservedAddr, "fatal")
	vec(cpu.SCBAccessViol, "fatal")
	vec(cpu.SCBTransInval, "fatal")
	vec(cpu.SCBMachineChk, "mcheck")

	// MMU and processor registers.
	s.m.MMU = mmu.Registers{
		SBR: sysPTPhys, SLR: slots,
		Enabled: true,
	}
	s.m.SetIPR(cpu.IPRSlotSCBB, scbPhys)

	// Start the first non-null process as if LDPCTX+REI had run.
	first := s.procs[0]
	for _, p := range s.procs {
		if !p.Null {
			first = p
			break
		}
	}
	s.startProcess(first)

	s.nextClock = s.cfg.ClockInterval
	s.cpuTime = make(map[uint32]uint64)
	s.lastPCB = s.m.IPR(cpu.IPRSlotPCBB)
	s.m.OnInstruction = s.onInstruction
	s.booted = true
	return nil
}

// startProcess loads a process context by console action (the boot path).
func (s *System) startProcess(p *Process) {
	m := s.m
	rd := func(slot int) uint32 { return m.Mem.ReadLong(p.PCB + cpu.PCBOffset(slot)) }
	m.SetIPR(cpu.IPRSlotPCBB, p.PCB)
	m.SetIPR(cpu.IPRSlotKSP, rd(0))
	m.MMU.P0BR = rd(18)
	m.MMU.P0LR = rd(19)
	m.MMU.P1BR = rd(20)
	m.MMU.P1LR = rd(21)
	m.R[vax.SP] = rd(1) // user stack
	m.PSL = rd(17)
	m.SetPC(rd(16))
}

// Software interrupt levels used by the kernel.
const (
	schedLevel = 3
	forkLevel  = 6
)

// onInstruction drives the devices, the null-process monitor gate, and
// per-process CPU accounting.
func (s *System) onInstruction(m *cpu.Machine) {
	now := m.Cycle()
	// Charge the elapsed cycles to the process that was resident.
	s.cpuTime[s.lastPCB] += now - s.lastCycle
	s.lastCycle = now
	s.lastPCB = m.IPR(cpu.IPRSlotPCBB)
	if now >= s.nextClock {
		m.QueueIRQ(cpu.IRQ{At: now, IPL: cpu.IPLClock, Vector: cpu.SCBClock})
		for s.nextClock <= now {
			s.nextClock += s.cfg.ClockInterval
		}
	}
	for s.termNext < len(s.termEvents) && s.termEvents[s.termNext] <= now {
		m.QueueIRQ(cpu.IRQ{At: now, IPL: cpu.IPLTerminal, Vector: cpu.SCBTerminal})
		s.termNext++
	}
	// Disk: the kernel counts requests in its data area; each schedules a
	// completion interrupt DiskLatency cycles out.
	if req := s.kernelCounter("diskreq"); req > s.diskSeen {
		for ; s.diskSeen < req; s.diskSeen++ {
			s.diskDue = append(s.diskDue, now+s.cfg.DiskLatency)
		}
	}
	for len(s.diskDue) > 0 && s.diskDue[0] <= now {
		m.QueueIRQ(cpu.IRQ{At: now, IPL: cpu.IPLDisk, Vector: cpu.SCBDiskDevice})
		s.diskDue = s.diskDue[1:]
	}
	if s.nullPCB != 0 {
		m.SetMonitorGate(m.IPR(cpu.IPRSlotPCBB) != s.nullPCB)
	}
}

// Run executes for a cycle budget.
func (s *System) Run(cycles uint64) cpu.RunResult {
	if !s.booted {
		return cpu.RunResult{Err: fmt.Errorf("vmos: not booted")}
	}
	return s.m.Run(cycles)
}

// Ticks returns the kernel's clock-tick counter.
func (s *System) Ticks() uint32 {
	return s.m.Mem.ReadLong(kernPhys + s.kern.MustAddr("ticks") - s.kern.Org)
}

// CtxSwitches returns the hardware context-switch count.
func (s *System) CtxSwitches() uint64 { return s.m.HW().CtxSwitches }

// ReadUser reads a longword from a process's P0 space by console access
// (the backing frames are contiguous).
func (s *System) ReadUser(p *Process, va uint32) uint32 {
	return s.m.Mem.ReadLong(p.Base + va)
}

// TermEvents returns the kernel's terminal interrupt count.
func (s *System) TermEvents() uint32 { return s.kernelCounter("termcnt") }

// DiskRequests returns the kernel's disk-request count.
func (s *System) DiskRequests() uint32 { return s.kernelCounter("diskreq") }

// DiskCompleted returns the kernel's disk-completion count.
func (s *System) DiskCompleted() uint32 { return s.kernelCounter("diskdone") }

// MachineChecks returns the kernel's machine-check log count (the checks
// the mcheck handler saw, retried, and survived).
func (s *System) MachineChecks() uint32 { return s.kernelCounter("mchkcnt") }

// MachineCheckCause returns the kernel's per-cause machine-check log slot.
func (s *System) MachineCheckCause(cause cpu.MCCause) uint32 {
	base := kernPhys + s.kern.MustAddr("mccause") - s.kern.Org
	return s.m.Mem.ReadLong(base + 4*uint32(cause))
}

// CPUTime returns the cycles charged to a process (including kernel time
// spent on its behalf; interrupt service is charged to whoever was
// resident, as with simple OS accounting).
func (s *System) CPUTime(p *Process) uint64 { return s.cpuTime[p.PCB] }

// kernelCounter reads a longword counter from the kernel's data area.
func (s *System) kernelCounter(label string) uint32 {
	return s.m.Mem.ReadLong(kernPhys + s.kern.MustAddr(label) - s.kern.Org)
}
