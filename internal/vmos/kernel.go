package vmos

import "fmt"

// kernelSource returns the kernel, written in VAX assembly and assembled
// into system space. Handler conventions:
//
//   - interrupt handlers preserve every register they touch (PUSHR/POPR,
//     contributing the multi-register push/pop traffic VMS shows);
//   - CHMK services clobber R0-R5 (the VMS convention for R0/R1, widened
//     because the string services use MOVC3, which architecturally
//     destroys R0-R5);
//   - the scheduler switches context with SVPCTX/LDPCTX, flushing the
//     process half of the translation buffer exactly as VMS does.
func (s *System) kernelSource() string {
	return fmt.Sprintf(`
; ------------------------------------------------------------------
; vmos kernel: clock, terminal, fork, scheduler, CHMK services.
; ------------------------------------------------------------------

; Interval clock, IPL 24: count ticks, request a reschedule every
; %[1]d ticks through the software interrupt request register.
clock:	INCL	@#ticks
	MOVL	#%[5]d, @#mcbudget	; each tick refills the machine-check budget
	DECL	@#resched
	BNEQ	clk1
	MOVL	#%[1]d, @#resched
	MTPR	#%[2]d, #20		; SIRR <- scheduler level
clk1:	REI

; Terminal controller, IPL 20: count the event, queue a request packet,
; and kick the fork level to do the character processing.
term:	PUSHR	#^X0003		; save R0, R1
	INCL	@#termcnt
	MOVAL	tqe, R0
	INSQUE	(R0), @#tqh
	REMQUE	(R0), R1
	MOVL	@#termcnt, R0	; batch character processing: fork every
	BICL2	#^XFFFFFFF8, R0	; eighth event
	BNEQ	tnofork
	MTPR	#%[3]d, #20		; SIRR <- fork level
tnofork: POPR	#^X0003
	REI

; Fork level, IPL %[3]d: simulated character/packet processing.
fork:	PUSHR	#^X003F		; MOVC3 destroys R0-R5
	MOVC3	#16, fpkt, fdst
	POPR	#^X003F
	REI

; Disk controller, IPL 21: completion interrupt. Dequeue the request,
; copy the block into the staging buffer, and kick the fork level.
disk:	PUSHR	#^X003F		; MOVC3 destroys R0-R5
	INCL	@#diskdone
	MOVAL	dqe, R0
	REMQUE	(R0), R1
	MOVC3	#64, dblk, dstage
	MTPR	#%[3]d, #20		; SIRR <- fork level
	POPR	#^X003F
	REI

; Scheduler, IPL %[2]d: round-robin over the PCB table.
sched:	SVPCTX
	MOVL	@#curproc, R0
	INCL	R0
	CMPL	R0, @#nproc
	BLSS	sc1
	CLRL	R0
sc1:	MOVL	R0, @#curproc
	MOVAL	pcbtab, R1
	MOVL	(R1)[R0], R2
	MTPR	R2, #16		; PCBB
	LDPCTX
	REI

; CHMK dispatcher. Code arrives on top of the kernel stack.
chmk:	MOVL	(SP)+, R0
	CASEL	R0, #0, #4, svcyld, svctrd, svctwr, svctim, svcdio
	REI			; unknown service: ignore

svcyld:	MTPR	#%[2]d, #20		; yield = ask for a reschedule
	REI

; Terminal read: copy the next canned script line into the user buffer.
; In: R2 = user buffer, R3 = length (<= 64). Clobbers R0-R5.
svctrd:	MOVAL	script, R1
	ADDL2	@#scroff, R1
	MOVC3	R3, (R1), (R2)
	MOVL	@#scroff, R0
	ADDL2	#64, R0
	BICL2	#^XFFFFF03F, R0	; wrap within the 4 KB script, 64-aligned
	MOVL	R0, @#scroff
	REI

; Terminal write: copy the user buffer to the output sink and cycle a
; request packet through the device queue. Clobbers R0-R5.
svctwr:	MOVAL	sink, R1
	MOVC3	R3, (R2), (R1)
	MOVAL	qe1, R0
	INSQUE	(R0), @#qh
	REMQUE	(R0), R1
	REI

; Get time: R1 <- tick count.
svctim:	MOVL	@#ticks, R1
	REI

; Disk I/O: queue a request packet and return; the transfer completes
; asynchronously with a disk interrupt. Clobbers R0, R1.
svcdio:	INCL	@#diskreq
	MOVAL	dqe, R0
	INSQUE	(R0), @#dqh
	REI

; Machine check, IPL 31. The frame on the kernel stack (after the two
; saved registers) is: 8(SP) byte count, 12(SP) info, 16(SP) cause,
; 20(SP) PC, 24(SP) PSL. Policy: log the error (total and per-cause
; table), then retry via REI -- delivery is between instructions, so the
; interrupted stream resumes exactly. A budget bounds the retries: an
; error storm that exhausts it before the next clock-tick refill is
; treated as a hard failure and crashes (HALT).
mcheck:	INCL	@#mchkcnt
	PUSHR	#^X0003		; save R0, R1
	MOVL	16(SP), R0	; cause code from the frame
	MOVAL	mccause, R1
	INCL	(R1)[R0]	; per-cause log slot
	DECL	@#mcbudget
	BGTR	mcok
	HALT			; budget exhausted: crash policy
mcok:	POPR	#^X0003
	ADDL2	(SP)+, SP	; pop the byte count, discard the parameters
	REI			; retry the interrupted stream

; Reserved/privileged instruction in user mode, and fatal faults: stop
; the machine so the failure is visible.
rsvdop:	HALT
fatal:	HALT

; ------------------------------------------------------------------
; Kernel data.
; ------------------------------------------------------------------
	.align	4
ticks:	.long	0
resched: .long	%[1]d
curproc: .long	0
nproc:	.long	0
termcnt: .long	0
scroff:	.long	0
diskreq: .long	0
diskdone: .long	0
mchkcnt: .long	0
mcbudget: .long	%[5]d
mccause: .space	32		; per-cause longword slots, indexed by cause code
dqh:	.long	dqh, dqh	; disk request queue head
dqe:	.long	0, 0
dblk:	.ascii	"disk-block-data-disk-block-data-disk-block-data-disk-block-0064"
dstage:	.space	64
qh:	.long	qh, qh		; device queue head (self-linked = empty)
qe1:	.long	0, 0
tqh:	.long	tqh, tqh	; terminal request queue head
tqe:	.long	0, 0
fpkt:	.ascii	"terminal-packet!"
fdst:	.space	16
sink:	.space	256
pcbtab:	.space	%[4]d
	.align	4
script:	.space	4096
`, s.cfg.ReschedTicks, schedLevel, forkLevel, 4*s.cfg.MaxProcesses, mcBudget)
}

// mcBudget is the number of machine checks the kernel will retry between
// clock ticks before declaring an error storm and crashing.
const mcBudget = 64

// ScriptText fills the kernel's canned terminal-input script (what the
// Remote Terminal Emulator "types"). Call after Boot.
func (s *System) SetScriptText(text string) {
	off := s.kern.MustAddr("script") - s.kern.Org
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = ' '
	}
	copy(buf, text)
	s.m.Mem.Load(kernPhys+off, buf)
}
