package vmos

import (
	"bytes"
	"testing"

	"vax780/internal/asm"
)

// TestKernelCacheMatchesFresh pins the sharing argument: the cached
// kernel image is byte-identical to a direct assembly of the same
// source, and repeat boots of the same configuration share one image.
func TestKernelCacheMatchesFresh(t *testing.T) {
	s := NewSystem(Config{})
	src := s.kernelSource()

	cached, err := assembleKernel(S0Base+kernPhys, src)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := asm.Assemble(S0Base+kernPhys, src)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Org != fresh.Org || !bytes.Equal(cached.Bytes, fresh.Bytes) {
		t.Fatalf("cached kernel differs from fresh assembly: org %#x vs %#x, %d vs %d bytes",
			cached.Org, fresh.Org, len(cached.Bytes), len(fresh.Bytes))
	}
	again, err := assembleKernel(S0Base+kernPhys, src)
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Error("second assembleKernel reassembled instead of sharing")
	}

	// A different configuration yields a different source, a cache miss,
	// and a different kernel.
	s2 := NewSystem(Config{ReschedTicks: 7})
	src2 := s2.kernelSource()
	if src2 == src {
		t.Fatal("distinct configs produced identical kernel source; key is degenerate")
	}
	im2, err := assembleKernel(S0Base+kernPhys, src2)
	if err != nil {
		t.Fatal(err)
	}
	if im2 == cached {
		t.Error("distinct kernel sources share one image")
	}
}
