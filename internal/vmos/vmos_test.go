package vmos

import (
	"testing"

	"vax780/internal/asm"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/vax"
)

// counterProgram increments a counter at P0 0x1000 forever, yielding and
// doing terminal I/O periodically.
const counterProgram = `
	MOVL	#0x1000, R7
start:	INCL	(R7)
	MOVL	#100, R8
w:	SOBGTR	R8, w
	MOVL	(R7), R9
	BICL2	#^XFFFFFFE0, R9	; every 32nd iteration: terminal write
	TSTL	R9
	BNEQ	start
	MOVAL	buf, R2
	MOVL	#24, R3
	CHMK	#2		; terminal write
	MOVAL	buf, R2
	MOVL	#24, R3
	CHMK	#1		; terminal read
	CHMK	#0		; yield
	BRB	start
buf:	.ascii	"abcdefghijklmnopqrstuvwx"
`

func buildSystem(t *testing.T, nproc int) (*System, *core.Monitor) {
	t.Helper()
	return buildSystemCfg(t, nproc, Config{IncludeNull: true})
}

func buildSystemCfg(t *testing.T, nproc int, cfg Config) (*System, *core.Monitor) {
	t.Helper()
	s := NewSystem(cfg)
	mon := core.NewMonitor()
	mon.Start()
	s.Machine().AttachProbe(mon)
	im, err := asm.Assemble(0x200, counterProgram)
	if err != nil {
		t.Fatalf("user assemble: %v", err)
	}
	for i := 0; i < nproc; i++ {
		if _, err := s.AddProcess("worker", im); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	s.SetScriptText("the quick brown fox jumps over the lazy dog. ")
	return s, mon
}

func TestTimesharingRuns(t *testing.T) {
	s, _ := buildSystem(t, 3)
	// Terminal events roughly every 20k cycles.
	var events []uint64
	for c := uint64(10_000); c < 2_000_000; c += 20_000 {
		events = append(events, c)
	}
	s.QueueTerminalEvents(events)
	res := s.Run(2_000_000)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.Halted {
		t.Fatal("system halted unexpectedly (kernel fatal handler)")
	}
	if s.Ticks() == 0 {
		t.Error("no clock ticks")
	}
	if s.CtxSwitches() == 0 {
		t.Error("no context switches")
	}
	if s.TermEvents() == 0 {
		t.Error("no terminal interrupts handled")
	}
	// All three workers made progress.
	for _, p := range s.Processes() {
		if p.Null {
			continue
		}
		if got := s.ReadUser(p, 0x1000); got == 0 {
			t.Errorf("process %d made no progress", p.PID)
		}
	}
	// The TB must have been flushed by context switches.
	if s.Machine().TLB.Stats().ProcessFlushes == 0 {
		t.Error("no TB process flushes despite context switches")
	}
}

func TestNullProcessExcluded(t *testing.T) {
	// Force the null process into the rotation so its exclusion by the
	// monitor gate is observable.
	s, mon := buildSystemCfg(t, 1, Config{IncludeNull: true, NullInRotation: true})
	res := s.Run(1_000_000)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	h := mon.Snapshot()
	if h.TotalCycles() == 0 {
		t.Fatal("nothing measured")
	}
	// The null process must be excluded: measured cycles < machine cycles.
	if h.TotalCycles() >= s.Machine().Cycle() {
		t.Errorf("measured %d >= total %d: null process not excluded",
			h.TotalCycles(), s.Machine().Cycle())
	}
	// And the exclusion should be substantial (null shares the rotation).
	if float64(h.TotalCycles()) > 0.95*float64(s.Machine().Cycle()) {
		t.Errorf("only %.1f%% excluded; expected the null process share",
			100*(1-float64(h.TotalCycles())/float64(s.Machine().Cycle())))
	}
}

func TestReductionOnTimesharing(t *testing.T) {
	s, mon := buildSystem(t, 3)
	var events []uint64
	for c := uint64(5_000); c < 3_000_000; c += 15_000 {
		events = append(events, c)
	}
	s.QueueTerminalEvents(events)
	res := s.Run(3_000_000)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	r := core.Reduce(mon.Snapshot(), cpu.CS)
	if r.Instructions == 0 {
		t.Fatal("no instructions measured")
	}
	if cpi := r.CPI(); cpi < 4 || cpi > 30 {
		t.Errorf("CPI = %.2f implausible for timesharing", cpi)
	}
	// System activity must be visible: interrupts, context switches,
	// software interrupt requests (Table 7 events).
	if r.Headway.Interrupts == 0 || r.Headway.CtxSwitches == 0 || r.Headway.SoftIntRequests == 0 {
		t.Errorf("missing Table 7 events: %+v", r.Headway)
	}
	// TB misses from context switching (process half flushed).
	if r.TBMiss.DStreamMisses+r.TBMiss.IStreamMisses == 0 {
		t.Error("no TB misses despite TB flushes")
	}
	if cpm := r.TBMiss.CyclesPerMiss(); cpm < 12 || cpm > 40 {
		t.Errorf("TB miss service %.1f cycles, want near 21.6", cpm)
	}
	// The mix must contain SYSTEM (CHMK/REI/LDPCTX...), CHARACTER (MOVC3
	// in kernel services), CALL/RET (PUSHR/POPR in handlers) and SIMPLE.
	for _, g := range []vax.Group{vax.GroupSimple, vax.GroupSystem, vax.GroupCharacter, vax.GroupCallRet} {
		if r.Groups[g] == 0 {
			t.Errorf("group %v absent from measured mix", g)
		}
	}
	// Decode must cost at least one compute cycle per instruction.
	if r.Timing[0].Compute < 0.999 {
		t.Errorf("decode compute = %.3f cycles/instr, want >= 1", r.Timing[0].Compute)
	}
}

func TestBootErrors(t *testing.T) {
	s := NewSystem(Config{})
	if err := s.Boot(); err == nil {
		t.Error("boot with no processes should fail")
	}
	s2, _ := buildSystem(t, 1)
	if err := s2.Boot(); err == nil {
		t.Error("double boot should fail")
	}
	im, _ := asm.Assemble(0x200, "HALT\n")
	if _, err := s2.AddProcess("late", im); err == nil {
		t.Error("AddProcess after boot should fail")
	}
}

func TestSchedulerFairness(t *testing.T) {
	// Identical processes in the rotation must progress at comparable
	// rates across many quanta.
	s, _ := buildSystem(t, 4)
	res := s.Run(4_000_000)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	var counts []uint32
	for _, p := range s.Processes() {
		if p.Null {
			continue
		}
		counts = append(counts, s.ReadUser(p, 0x1000))
	}
	if len(counts) != 4 {
		t.Fatalf("worker count = %d", len(counts))
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatal("a worker made no progress")
	}
	if float64(max-min)/float64(max) > 0.25 {
		t.Errorf("unfair scheduling: progress %v", counts)
	}
}

func TestPerProcessCPUAccounting(t *testing.T) {
	s, _ := buildSystem(t, 3)
	res := s.Run(2_000_000)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	var total uint64
	for _, p := range s.Processes() {
		if p.Null {
			continue
		}
		ct := s.CPUTime(p)
		if ct == 0 {
			t.Errorf("process %d charged no time", p.PID)
		}
		total += ct
	}
	// The workers' time must account for the bulk of the run (kernel and
	// accounting granularity take the rest).
	if float64(total) < 0.8*float64(res.Cycles) {
		t.Errorf("accounted %d of %d cycles", total, res.Cycles)
	}
}
