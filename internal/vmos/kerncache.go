package vmos

import (
	"fmt"
	"sync"

	"vax780/internal/asm"
)

// The assembled-kernel cache. The kernel source is a deterministic
// function of the few Config fields interpolated into it (reschedule
// interval, process-table size, machine-check budget), so systems built
// from equal configurations assemble byte-identical kernels. Assembling
// once per distinct source and sharing the immutable *asm.Image makes
// booting the ten-thousandth machine of a fleet (internal/farm) as cheap
// as copying the kernel bytes into its memory: Boot only ever reads the
// image (Org, Bytes, label addresses), never writes it.
//
// The cache is bounded: kernel sources vary only with a handful of small
// integers, so in practice it holds a few entries; the cap is a guard
// against a pathological caller sweeping MaxProcesses, not a working-set
// tuning knob.
var kernCache = struct {
	sync.Mutex
	bySource map[string]*asm.Image
}{bySource: make(map[string]*asm.Image)}

const kernCacheCap = 64

// assembleKernel returns the shared assembled image for one kernel
// source, assembling it on first use. The returned image is shared and
// must be treated as read-only.
func assembleKernel(org uint32, source string) (*asm.Image, error) {
	key := fmt.Sprintf("%#x\x00%s", org, source)
	kernCache.Lock()
	im, ok := kernCache.bySource[key]
	kernCache.Unlock()
	if ok {
		return im, nil
	}
	// Assemble outside the lock: a fleet booting W workers concurrently
	// must not serialize every boot behind one assembly. Two goroutines
	// may race to fill the same key; both images are identical
	// (assembly is deterministic), so last-write-wins is harmless.
	im, err := asm.Assemble(org, source)
	if err != nil {
		return nil, err
	}
	kernCache.Lock()
	if len(kernCache.bySource) >= kernCacheCap {
		kernCache.bySource = make(map[string]*asm.Image)
	}
	kernCache.bySource[key] = im
	kernCache.Unlock()
	return im, nil
}
