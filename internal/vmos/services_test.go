package vmos

import (
	"strings"
	"testing"

	"vax780/internal/asm"
	"vax780/internal/core"
)

// runService boots a one-process system whose program performs the given
// service calls and then spins.
func runService(t *testing.T, userSrc string, cycles uint64) (*System, *core.Monitor) {
	t.Helper()
	s := NewSystem(Config{IncludeNull: true})
	mon := core.NewMonitor()
	mon.Start()
	s.Machine().AttachProbe(mon)
	im, err := asm.Assemble(0x200, userSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := s.AddProcess("svc", im); err != nil {
		t.Fatal(err)
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	s.SetScriptText("THE SCRIPT LINE. ")
	res := s.Run(cycles)
	if res.Err != nil || res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	return s, mon
}

func TestServiceTerminalRead(t *testing.T) {
	s, _ := runService(t, `
	MOVAL	buf, R2
	MOVL	#16, R3
	CHMK	#1		; terminal read: kernel copies script text
	MOVL	#1, @#0x1000	; done flag
spin:	BRB	spin
buf:	.space	64
`, 300_000)
	p := s.Processes()[0]
	if s.ReadUser(p, 0x1000) != 1 {
		t.Fatal("service sequence did not complete")
	}
	// The buffer must hold the head of the kernel's canned script; scan
	// the process's first pages for it.
	raw := s.Machine().Mem.Read(p.Base, 2048)
	if !strings.Contains(string(raw), "THE SCRIPT LINE.") {
		t.Error("script text not delivered to the user buffer")
	}
}

func TestServiceTerminalWriteReachesSink(t *testing.T) {
	s, _ := runService(t, `
	MOVAL	msg, R2
	MOVL	#12, R3
	CHMK	#2		; terminal write: kernel copies into its sink
	MOVL	#1, @#0x1000
spin:	BRB	spin
msg:	.ascii	"hello-kernel"
`, 300_000)
	p := s.Processes()[0]
	if s.ReadUser(p, 0x1000) != 1 {
		t.Fatal("service sequence did not complete")
	}
	sinkOff := s.kern.MustAddr("sink") - s.kern.Org
	sink := s.Machine().Mem.Read(kernPhys+sinkOff, 12)
	if string(sink) != "hello-kernel" {
		t.Errorf("kernel sink = %q, want %q", sink, "hello-kernel")
	}
}

func TestServiceGetTime(t *testing.T) {
	s, _ := runService(t, `
wait:	CHMK	#3		; R1 <- ticks
	TSTL	R1
	BEQL	wait		; spin until the first clock tick lands
	MOVL	R1, @#0x1000
spin:	BRB	spin
`, 400_000)
	p := s.Processes()[0]
	ticks := s.ReadUser(p, 0x1000)
	if ticks == 0 {
		t.Fatal("get-time returned zero after clock ticks")
	}
	if uint32(s.Ticks()) < ticks {
		t.Errorf("kernel ticks %d < returned %d", s.Ticks(), ticks)
	}
}

func TestServiceYieldRequestsReschedule(t *testing.T) {
	s, mon := runService(t, `
l:	CHMK	#0		; yield
	BRB	l
`, 200_000)
	if s.Machine().HW().SIRRRequests == 0 {
		t.Error("yield produced no software interrupt requests")
	}
	if mon.Snapshot().TotalCycles() == 0 {
		t.Error("nothing measured")
	}
}

func TestServiceDiskIO(t *testing.T) {
	s, _ := runService(t, `
	CHMK	#4		; queue a disk transfer
	CHMK	#4		; and another
	MOVL	#1, @#0x1000
spin:	BRB	spin
`, 400_000)
	p := s.Processes()[0]
	if s.ReadUser(p, 0x1000) != 1 {
		t.Fatal("service sequence did not complete")
	}
	if got := s.DiskRequests(); got != 2 {
		t.Errorf("disk requests = %d, want 2", got)
	}
	if got := s.DiskCompleted(); got != 2 {
		t.Errorf("disk completions = %d, want 2 (latency %d cycles)", got, 3000)
	}
	// The completion handler staged the block.
	stage := s.Machine().Mem.Read(kernPhys+s.kern.MustAddr("dstage")-s.kern.Org, 15)
	if string(stage) != "disk-block-data" {
		t.Errorf("staging buffer = %q", stage)
	}
}

func TestServiceDiskCompletionIsAsync(t *testing.T) {
	// The request must return to the user before the completion fires.
	s, _ := runService(t, `
	CHMK	#4
	MOVL	@#0x80000000, R9 ; placeholder read (user can proceed)
	MOVL	#1, @#0x1000
spin:	BRB	spin
`, 2_500) // shorter than the 3000-cycle disk latency
	p := s.Processes()[0]
	if s.ReadUser(p, 0x1000) != 1 {
		t.Skip("too few cycles for the user to get going")
	}
	if s.DiskCompleted() != 0 {
		t.Error("disk completed before its latency elapsed")
	}
}
