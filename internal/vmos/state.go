package vmos

import (
	"context"
	"fmt"

	"vax780/internal/cpu"
)

// Checkpoint support. A System snapshot captures only the state that
// evolves after Boot: device schedules and per-process CPU accounting.
// Everything laid down by Boot — the process table, page tables, the
// kernel image, the SCB — lives in (checkpointed) physical memory or is
// rebuilt deterministically by the resume path, which reconstructs the
// System from the same Config and process set before importing. The
// completeness test in internal/checkpoint enforces the split.

// State is the serialized post-boot scheduler and device state.
type State struct {
	NextClock  uint64
	TermEvents []uint64
	TermNext   int
	DiskSeen   uint32
	DiskDue    []uint64
	LastCycle  uint64
	LastPCB    uint32
	CPUTime    map[uint32]uint64
}

// ExportState captures the scheduler and device state (slices and maps
// are copied; the system can keep running).
func (s *System) ExportState() (State, error) {
	if !s.booted {
		return State{}, fmt.Errorf("vmos: cannot checkpoint before boot")
	}
	st := State{
		NextClock:  s.nextClock,
		TermEvents: append([]uint64(nil), s.termEvents...),
		TermNext:   s.termNext,
		DiskSeen:   s.diskSeen,
		DiskDue:    append([]uint64(nil), s.diskDue...),
		LastCycle:  s.lastCycle,
		LastPCB:    s.lastPCB,
		CPUTime:    make(map[uint32]uint64, len(s.cpuTime)),
	}
	//vaxlint:allow determinism -- map-to-map copy: the result is a map again, so iteration order cannot reach the snapshot bytes or any simulated state
	for pcb, t := range s.cpuTime {
		st.CPUTime[pcb] = t
	}
	return st, nil
}

// ImportState restores a captured state into a booted system built from
// the same configuration and process set. The machine state (including
// physical memory) is imported separately via cpu.Machine.ImportState.
func (s *System) ImportState(st State) error {
	if !s.booted {
		return fmt.Errorf("vmos: cannot restore before boot")
	}
	s.nextClock = st.NextClock
	s.termEvents = append([]uint64(nil), st.TermEvents...)
	s.termNext = st.TermNext
	s.diskSeen = st.DiskSeen
	s.diskDue = append([]uint64(nil), st.DiskDue...)
	s.lastCycle = st.LastCycle
	s.lastPCB = st.LastPCB
	s.cpuTime = make(map[uint32]uint64, len(st.CPUTime))
	//vaxlint:allow determinism -- map-to-map copy: the restored accounting table is order-independent; no simulated state observes the iteration
	for pcb, t := range st.CPUTime {
		s.cpuTime[pcb] = t
	}
	return nil
}

// RunCtx executes for a cycle budget with cooperative cancellation (see
// cpu.Machine.RunCtx).
func (s *System) RunCtx(ctx context.Context, cycles uint64) cpu.RunResult {
	if !s.booted {
		return cpu.RunResult{Err: fmt.Errorf("vmos: not booted")}
	}
	return s.m.RunCtx(ctx, cycles)
}
