package vax

import "fmt"

// Opcode is a one-byte VAX opcode. This model implements the single-byte
// opcode space only (the FD-prefixed two-byte opcodes of later VAXes did
// not exist on the 11/780 as measured in the paper).
type Opcode uint8

// Group is the opcode group of Table 1 of the paper.
type Group uint8

const (
	GroupSimple    Group = iota // moves, simple arith, booleans, simple & loop branches, subroutine call/return
	GroupField                  // bit field operations (incl. bit branches)
	GroupFloat                  // floating point and integer multiply/divide
	GroupCallRet                // procedure call/return, multi-register push/pop
	GroupSystem                 // privileged ops, context switch, system services, queues, probes
	GroupCharacter              // character string instructions
	GroupDecimal                // decimal instructions
	NumGroups
)

func (g Group) String() string {
	switch g {
	case GroupSimple:
		return "SIMPLE"
	case GroupField:
		return "FIELD"
	case GroupFloat:
		return "FLOAT"
	case GroupCallRet:
		return "CALL/RET"
	case GroupSystem:
		return "SYSTEM"
	case GroupCharacter:
		return "CHARACTER"
	case GroupDecimal:
		return "DECIMAL"
	}
	return fmt.Sprintf("Group(%d)", uint8(g))
}

// PCClass classifies PC-changing instructions per Table 2 of the paper.
type PCClass uint8

const (
	PCNone       PCClass = iota
	PCSimpleCond         // simple conditional branches, plus BRB/BRW (microcode-shared)
	PCLoop               // loop branches: AOBxx, SOBxx, ACBx
	PCLowBit             // low-bit tests: BLBS, BLBC
	PCSubr               // subroutine call and return: BSBx, JSB, RSB
	PCUncond             // unconditional JMP
	PCCase               // case branches: CASEx
	PCBitBranch          // bit branches: BBx, BBxx (FIELD group)
	PCProc               // procedure call and return: CALLG, CALLS, RET (CALL/RET group)
	PCSystem             // system branches: REI, CHMx (SYSTEM group)
	NumPCClasses
)

func (c PCClass) String() string {
	switch c {
	case PCNone:
		return "-"
	case PCSimpleCond:
		return "Simple cond. plus BRB, BRW"
	case PCLoop:
		return "Loop branches"
	case PCLowBit:
		return "Low-bit tests"
	case PCSubr:
		return "Subroutine call and return"
	case PCUncond:
		return "Unconditional (JMP)"
	case PCCase:
		return "Case branch (CASEx)"
	case PCBitBranch:
		return "Bit branches"
	case PCProc:
		return "Procedure call and return"
	case PCSystem:
		return "System branches"
	}
	return fmt.Sprintf("PCClass(%d)", uint8(c))
}

// OpInfo is the architectural description of one opcode.
type OpInfo struct {
	Code       Opcode
	Name       string
	Group      Group
	Specs      []OperandSpec // operand specifiers, in I-stream order
	BranchDisp DataType      // TypeNone, TypeByte or TypeWord: trailing branch displacement
	PCClass    PCClass       // PC-changing classification (Table 2)
}

// HasBranchDisp reports whether the instruction ends with a PC-relative
// branch displacement (which is not an operand specifier, per §3.2).
func (o *OpInfo) HasBranchDisp() bool { return o.BranchDisp != TypeNone }

// shorthand constructors for operand specifier signatures.
func rb() OperandSpec { return OperandSpec{AccessRead, TypeByte} }
func rw() OperandSpec { return OperandSpec{AccessRead, TypeWord} }
func rl() OperandSpec { return OperandSpec{AccessRead, TypeLong} }
func rq() OperandSpec { return OperandSpec{AccessRead, TypeQuad} }
func rf() OperandSpec { return OperandSpec{AccessRead, TypeFloatF} }
func rd() OperandSpec { return OperandSpec{AccessRead, TypeFloatD} }
func wb() OperandSpec { return OperandSpec{AccessWrite, TypeByte} }
func ww() OperandSpec { return OperandSpec{AccessWrite, TypeWord} }
func wl() OperandSpec { return OperandSpec{AccessWrite, TypeLong} }
func wq() OperandSpec { return OperandSpec{AccessWrite, TypeQuad} }
func wf() OperandSpec { return OperandSpec{AccessWrite, TypeFloatF} }
func wd() OperandSpec { return OperandSpec{AccessWrite, TypeFloatD} }
func mb() OperandSpec { return OperandSpec{AccessModify, TypeByte} }
func mw() OperandSpec { return OperandSpec{AccessModify, TypeWord} }
func ml() OperandSpec { return OperandSpec{AccessModify, TypeLong} }
func mf() OperandSpec { return OperandSpec{AccessModify, TypeFloatF} }
func md() OperandSpec { return OperandSpec{AccessModify, TypeFloatD} }
func ab() OperandSpec { return OperandSpec{AccessAddr, TypeByte} }
func aw() OperandSpec { return OperandSpec{AccessAddr, TypeWord} }
func al() OperandSpec { return OperandSpec{AccessAddr, TypeLong} }
func aq() OperandSpec { return OperandSpec{AccessAddr, TypeQuad} }
func vb() OperandSpec { return OperandSpec{AccessField, TypeByte} }
