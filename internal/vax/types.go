// Package vax describes the VAX architecture as seen by the VAX-11/780
// implementation modelled in this repository: opcodes and their grouping
// (per Table 1 of Emer & Clark, ISCA 1984), operand specifier addressing
// modes, data types, access types and instruction encoding.
//
// The package is purely descriptive: it contains no execution semantics.
// Execution lives in the microcode (internal/ucode, internal/ebox), as it
// did on the real machine.
package vax

import "fmt"

// DataType is the data type of an operand, defined by the instruction that
// uses the operand specifier (the specifier itself does not encode a type).
type DataType uint8

const (
	TypeNone DataType = iota
	TypeByte
	TypeWord
	TypeLong
	TypeQuad
	TypeFloatF // 4-byte F_floating
	TypeFloatD // 8-byte D_floating
)

// Size returns the operand size in bytes.
func (t DataType) Size() int {
	switch t {
	case TypeByte:
		return 1
	case TypeWord:
		return 2
	case TypeLong, TypeFloatF:
		return 4
	case TypeQuad, TypeFloatD:
		return 8
	}
	return 0
}

func (t DataType) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeByte:
		return "byte"
	case TypeWord:
		return "word"
	case TypeLong:
		return "long"
	case TypeQuad:
		return "quad"
	case TypeFloatF:
		return "f_float"
	case TypeFloatD:
		return "d_float"
	}
	return fmt.Sprintf("DataType(%d)", uint8(t))
}

// AccessType is how an instruction accesses an operand: the VAX
// architecture reference distinguishes read, write, modify, address and
// (bit-)field accesses. Branch displacements are not operand specifiers
// and are described separately by OpInfo.BranchDisp.
type AccessType uint8

const (
	AccessNone AccessType = iota
	AccessRead             // operand value is read
	AccessWrite            // operand location is written
	AccessModify           // operand is read then written
	AccessAddr             // address of the operand is computed (no data access)
	AccessField            // base of a variable bit field (address-like; data access in execute phase)
)

func (a AccessType) String() string {
	switch a {
	case AccessNone:
		return "none"
	case AccessRead:
		return "r"
	case AccessWrite:
		return "w"
	case AccessModify:
		return "m"
	case AccessAddr:
		return "a"
	case AccessField:
		return "v"
	}
	return fmt.Sprintf("AccessType(%d)", uint8(a))
}

// OperandSpec describes one operand specifier position of an instruction.
type OperandSpec struct {
	Access AccessType
	Type   DataType
}

func (o OperandSpec) String() string { return o.Access.String() + o.Type.String()[:1] }

// Reg is a general register number. R12..R15 have architectural roles.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	AP // R12: argument pointer
	FP // R13: frame pointer
	SP // R14: stack pointer
	PC // R15: program counter
)

func (r Reg) String() string {
	switch r {
	case AP:
		return "AP"
	case FP:
		return "FP"
	case SP:
		return "SP"
	case PC:
		return "PC"
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// PSL condition code and state bits (subset of the VAX processor status
// longword used by this model).
const (
	PSLC uint32 = 1 << 0 // carry
	PSLV uint32 = 1 << 1 // overflow
	PSLZ uint32 = 1 << 2 // zero
	PSLN uint32 = 1 << 3 // negative

	PSLIS   uint32 = 1 << 26 // interrupt stack
	PSLCurK uint32 = 0 << 24 // current mode kernel (bits 25:24 == 0)
	PSLCurU uint32 = 3 << 24 // current mode user

	PSLIPLShift = 16
	PSLIPLMask  = 0x1F << PSLIPLShift
)

// IPL returns the interrupt priority level field of a PSL value.
func IPL(psl uint32) uint8 { return uint8((psl & PSLIPLMask) >> PSLIPLShift) }

// WithIPL returns psl with its interrupt priority level replaced.
func WithIPL(psl uint32, ipl uint8) uint32 {
	return (psl &^ PSLIPLMask) | (uint32(ipl) << PSLIPLShift) & PSLIPLMask
}
