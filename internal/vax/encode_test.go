package vax

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecifierRoundTrip(t *testing.T) {
	cases := []struct {
		s Specifier
		t DataType
	}{
		{Specifier{Mode: ModeLiteral, Disp: 0}, TypeLong},
		{Specifier{Mode: ModeLiteral, Disp: 63}, TypeLong},
		{Specifier{Mode: ModeRegister, Base: R5}, TypeLong},
		{Specifier{Mode: ModeRegDeferred, Base: R1}, TypeByte},
		{Specifier{Mode: ModeAutoDec, Base: SP}, TypeLong},
		{Specifier{Mode: ModeAutoInc, Base: R3}, TypeWord},
		{Specifier{Mode: ModeAutoIncDef, Base: R9}, TypeLong},
		{Specifier{Mode: ModeImmediate, Imm: 0xDEADBEEF}, TypeLong},
		{Specifier{Mode: ModeImmediate, Imm: 0x7F}, TypeByte},
		{Specifier{Mode: ModeAbsolute, Imm: 0x80001234}, TypeLong},
		{Specifier{Mode: ModeByteDisp, Base: FP, Disp: -8}, TypeLong},
		{Specifier{Mode: ModeByteDispDef, Base: R2, Disp: 12}, TypeLong},
		{Specifier{Mode: ModeWordDisp, Base: AP, Disp: -3000}, TypeLong},
		{Specifier{Mode: ModeWordDispDef, Base: R7, Disp: 1024}, TypeWord},
		{Specifier{Mode: ModeLongDisp, Base: R11, Disp: 1 << 20}, TypeLong},
		{Specifier{Mode: ModeLongDispDef, Base: R0, Disp: -(1 << 20)}, TypeQuad},
		{Specifier{Mode: ModeRegDeferred, Base: R4, Indexed: true, Index: R6}, TypeLong},
		{Specifier{Mode: ModeLongDisp, Base: R8, Disp: 400, Indexed: true, Index: R2}, TypeLong},
	}
	for _, c := range cases {
		buf, err := EncodeSpecifier(nil, c.s, c.t)
		if err != nil {
			t.Fatalf("encode %v: %v", c.s, err)
		}
		got, n, err := DecodeSpecifier(buf, c.t)
		if err != nil {
			t.Fatalf("decode %v: %v", c.s, err)
		}
		if n != len(buf) {
			t.Errorf("%v: decoded %d of %d bytes", c.s, n, len(buf))
		}
		if got != c.s {
			t.Errorf("round trip %v -> % x -> %v", c.s, buf, got)
		}
	}
}

func TestSpecifierEncodeErrors(t *testing.T) {
	if _, err := EncodeSpecifier(nil, Specifier{Mode: ModeLiteral, Disp: 64}, TypeLong); err != ErrBadLiteral {
		t.Errorf("literal 64: err = %v, want ErrBadLiteral", err)
	}
	if _, err := EncodeSpecifier(nil, Specifier{Mode: ModeRegister, Base: R1, Indexed: true, Index: R2}, TypeLong); err != ErrNotIndexable {
		t.Errorf("indexed register mode: err = %v, want ErrNotIndexable", err)
	}
	if _, err := EncodeSpecifier(nil, Specifier{Mode: ModeRegDeferred, Base: R1, Indexed: true, Index: PC}, TypeLong); err != ErrBadIndex {
		t.Errorf("PC index: err = %v, want ErrBadIndex", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	// Word displacement mode with only one displacement byte present.
	if _, _, err := DecodeSpecifier([]byte{0xC5, 0x01}, TypeLong); err != ErrTruncated {
		t.Errorf("truncated word disp: err = %v, want ErrTruncated", err)
	}
	if _, _, err := DecodeSpecifier(nil, TypeLong); err != ErrTruncated {
		t.Errorf("empty: err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{byte(MOVL), 0x51}); err == nil {
		t.Error("MOVL with one specifier should fail to decode")
	}
}

// randomSpecifier builds a random but encodable specifier for property tests.
func randomSpecifier(r *rand.Rand, t DataType) Specifier {
	for {
		mode := AddrMode(r.Intn(NumAddrModes))
		s := Specifier{Mode: mode, Base: Reg(r.Intn(12))}
		switch mode {
		case ModeLiteral:
			s.Disp = int32(r.Intn(64))
			s.Base = 0
		case ModeImmediate:
			s.Imm = r.Uint64() & (1<<(8*uint(t.Size())) - 1)
			s.Base = 0
		case ModeAbsolute:
			s.Imm = uint64(r.Uint32())
			s.Base = 0
		case ModeByteDisp, ModeByteDispDef:
			s.Disp = int32(int8(r.Uint32()))
		case ModeWordDisp, ModeWordDispDef:
			s.Disp = int32(int16(r.Uint32()))
		case ModeLongDisp, ModeLongDispDef:
			s.Disp = int32(r.Uint32())
		}
		if mode.Indexable() && r.Intn(4) == 0 {
			s.Indexed = true
			s.Index = Reg(r.Intn(12))
		}
		return s
	}
}

func TestPropertySpecifierRoundTrip(t *testing.T) {
	types := []DataType{TypeByte, TypeWord, TypeLong, TypeQuad, TypeFloatF, TypeFloatD}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := types[r.Intn(len(types))]
		s := randomSpecifier(r, dt)
		buf, err := EncodeSpecifier(nil, s, dt)
		if err != nil {
			return false
		}
		got, n, err := DecodeSpecifier(buf, dt)
		return err == nil && n == len(buf) && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInstructionRoundTrip(t *testing.T) {
	ops := All()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		info := &ops[r.Intn(len(ops))]
		in := Instruction{Info: info}
		for _, os := range info.Specs {
			in.Specs = append(in.Specs, randomSpecifier(r, os.Type))
		}
		switch info.BranchDisp {
		case TypeByte:
			in.Disp = int32(int8(r.Uint32()))
		case TypeWord:
			in.Disp = int32(int16(r.Uint32()))
		}
		buf, err := in.Encode(nil)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil || got.Size != len(buf) || got.Info != info || got.Disp != in.Disp {
			return false
		}
		for i := range in.Specs {
			if got.Specs[i] != in.Specs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInstructionEncodeSpecCountMismatch(t *testing.T) {
	in := Instruction{Info: Lookup(MOVL), Specs: []Specifier{{Mode: ModeRegister, Base: R0}}}
	if _, err := in.Encode(nil); err == nil {
		t.Error("MOVL with 1 specifier should fail to encode")
	}
}

func TestModeStringsDistinct(t *testing.T) {
	seen := map[string]AddrMode{}
	for m := AddrMode(0); m < AddrMode(NumAddrModes); m++ {
		s := m.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("modes %v and %v share string %q", prev, m, s)
		}
		seen[s] = m
	}
}
