package vax

// Opcode values for the subset of the VAX instruction set implemented by
// this model. Values are the architectural one-byte opcodes.
const (
	HALT   Opcode = 0x00
	NOP    Opcode = 0x01
	REI    Opcode = 0x02
	BPT    Opcode = 0x03
	RET    Opcode = 0x04
	RSB    Opcode = 0x05
	LDPCTX Opcode = 0x06
	SVPCTX Opcode = 0x07

	INDEX  Opcode = 0x0A
	PROBER Opcode = 0x0C
	PROBEW Opcode = 0x0D
	INSQUE Opcode = 0x0E
	REMQUE Opcode = 0x0F

	BSBB Opcode = 0x10
	BRB  Opcode = 0x11
	BNEQ Opcode = 0x12
	BEQL Opcode = 0x13
	BGTR Opcode = 0x14
	BLEQ Opcode = 0x15
	JSB  Opcode = 0x16
	JMP  Opcode = 0x17
	BGEQ Opcode = 0x18
	BLSS Opcode = 0x19

	BGTRU Opcode = 0x1A
	BLEQU Opcode = 0x1B
	BVC   Opcode = 0x1C
	BVS   Opcode = 0x1D
	BCC   Opcode = 0x1E
	BCS   Opcode = 0x1F

	ADDP4 Opcode = 0x20
	ADDP6 Opcode = 0x21
	SUBP4 Opcode = 0x22
	SUBP6 Opcode = 0x23
	MULP  Opcode = 0x25
	DIVP  Opcode = 0x27

	MOVC3 Opcode = 0x28
	CMPC3 Opcode = 0x29
	SCANC Opcode = 0x2A
	SPANC Opcode = 0x2B
	MOVC5 Opcode = 0x2C
	CMPC5 Opcode = 0x2D
	MOVTC Opcode = 0x2E

	BSBW Opcode = 0x30
	BRW  Opcode = 0x31

	MOVP  Opcode = 0x34
	CMPP3 Opcode = 0x35
	CVTPL Opcode = 0x36

	LOCC Opcode = 0x3A
	SKPC Opcode = 0x3B

	CVTWL  Opcode = 0x32
	CVTWB  Opcode = 0x33
	MOVZWL Opcode = 0x3C
	ACBW   Opcode = 0x3D
	MOVAW  Opcode = 0x3E
	PUSHAW Opcode = 0x3F

	ADDF2 Opcode = 0x40
	ADDF3 Opcode = 0x41
	SUBF2 Opcode = 0x42
	SUBF3 Opcode = 0x43
	MULF2 Opcode = 0x44
	MULF3 Opcode = 0x45
	DIVF2 Opcode = 0x46
	DIVF3 Opcode = 0x47

	CVTFL Opcode = 0x4A
	CVTLF Opcode = 0x4E

	MOVF  Opcode = 0x50
	CMPF  Opcode = 0x51
	MNEGF Opcode = 0x52
	TSTF  Opcode = 0x53

	ADDD2 Opcode = 0x60
	ADDD3 Opcode = 0x61
	SUBD2 Opcode = 0x62
	SUBD3 Opcode = 0x63
	MULD2 Opcode = 0x64
	MULD3 Opcode = 0x65
	DIVD2 Opcode = 0x66
	DIVD3 Opcode = 0x67

	MOVD Opcode = 0x70
	CMPD Opcode = 0x71
	TSTD Opcode = 0x73

	ADAWI Opcode = 0x58

	ASHL Opcode = 0x78
	ASHQ Opcode = 0x79
	EMUL Opcode = 0x7A
	EDIV Opcode = 0x7B
	CLRQ Opcode = 0x7C
	MOVQ Opcode = 0x7D
	MOVAQ  Opcode = 0x7E
	PUSHAQ Opcode = 0x7F

	ADDB2 Opcode = 0x80
	ADDB3 Opcode = 0x81
	SUBB2 Opcode = 0x82
	SUBB3 Opcode = 0x83
	BISB2 Opcode = 0x88
	BISB3 Opcode = 0x89
	BICB2 Opcode = 0x8A
	BICB3 Opcode = 0x8B
	XORB2 Opcode = 0x8C
	XORB3 Opcode = 0x8D
	MNEGB Opcode = 0x8E

	CASEB Opcode = 0x8F
	MOVB  Opcode = 0x90
	CMPB  Opcode = 0x91
	MCOMB Opcode = 0x92
	BITB  Opcode = 0x93
	CLRB  Opcode = 0x94
	TSTB  Opcode = 0x95
	INCB  Opcode = 0x96
	DECB  Opcode = 0x97

	CVTBL  Opcode = 0x98
	CVTBW  Opcode = 0x99
	MOVZBL Opcode = 0x9A
	MOVZBW Opcode = 0x9B
	ROTL   Opcode = 0x9C
	ACBB   Opcode = 0x9D
	MOVAB  Opcode = 0x9E
	PUSHAB Opcode = 0x9F

	ADDW2 Opcode = 0xA0
	ADDW3 Opcode = 0xA1
	SUBW2 Opcode = 0xA2
	SUBW3 Opcode = 0xA3
	MULW2 Opcode = 0xA4
	BISW2 Opcode = 0xA8
	BISW3 Opcode = 0xA9
	BICW2 Opcode = 0xAA
	BICW3 Opcode = 0xAB
	XORW2 Opcode = 0xAC
	XORW3 Opcode = 0xAD
	MNEGW Opcode = 0xAE

	CASEW Opcode = 0xAF
	MOVW  Opcode = 0xB0
	CMPW  Opcode = 0xB1
	MCOMW Opcode = 0xB2
	BITW  Opcode = 0xB3
	CLRW  Opcode = 0xB4
	TSTW  Opcode = 0xB5
	INCW  Opcode = 0xB6
	DECW  Opcode = 0xB7

	BISPSW Opcode = 0xB8
	BICPSW Opcode = 0xB9
	POPR   Opcode = 0xBA
	PUSHR  Opcode = 0xBB
	CHMK   Opcode = 0xBC
	CHME   Opcode = 0xBD

	ADDL2 Opcode = 0xC0
	ADDL3 Opcode = 0xC1
	SUBL2 Opcode = 0xC2
	SUBL3 Opcode = 0xC3
	MULL2 Opcode = 0xC4
	MULL3 Opcode = 0xC5
	DIVL2 Opcode = 0xC6
	DIVL3 Opcode = 0xC7
	BISL2 Opcode = 0xC8
	BISL3 Opcode = 0xC9
	BICL2 Opcode = 0xCA
	BICL3 Opcode = 0xCB
	XORL2 Opcode = 0xCC
	XORL3 Opcode = 0xCD
	MNEGL Opcode = 0xCE
	CASEL Opcode = 0xCF

	MOVL  Opcode = 0xD0
	CMPL  Opcode = 0xD1
	MCOML Opcode = 0xD2
	BITL  Opcode = 0xD3
	CLRL  Opcode = 0xD4
	TSTL  Opcode = 0xD5
	INCL  Opcode = 0xD6
	DECL  Opcode = 0xD7
	ADWC  Opcode = 0xD8
	SBWC  Opcode = 0xD9
	MTPR  Opcode = 0xDA
	MFPR  Opcode = 0xDB

	PUSHL Opcode = 0xDD
	MOVAL Opcode = 0xDE
	PUSHAL Opcode = 0xDF

	BBS   Opcode = 0xE0
	BBC   Opcode = 0xE1
	BBSS  Opcode = 0xE2
	BBCS  Opcode = 0xE3
	BBSC  Opcode = 0xE4
	BBCC  Opcode = 0xE5
	BBSSI Opcode = 0xE6
	BBCCI Opcode = 0xE7
	BLBS  Opcode = 0xE8
	BLBC  Opcode = 0xE9
	FFS   Opcode = 0xEA
	FFC   Opcode = 0xEB
	CMPV  Opcode = 0xEC
	CMPZV Opcode = 0xED
	EXTV  Opcode = 0xEE
	EXTZV Opcode = 0xEF
	INSV  Opcode = 0xF0

	ACBL   Opcode = 0xF1
	AOBLSS Opcode = 0xF2
	AOBLEQ Opcode = 0xF3
	SOBGEQ Opcode = 0xF4
	SOBGTR Opcode = 0xF5

	CVTLB Opcode = 0xF6
	CVTLW Opcode = 0xF7
	ASHP  Opcode = 0xF8
	CVTLP Opcode = 0xF9
	CALLG Opcode = 0xFA
	CALLS Opcode = 0xFB
)

// opTable is the architectural description of every implemented opcode.
var opTable = []OpInfo{
	// ---- SYSTEM group -------------------------------------------------
	{HALT, "HALT", GroupSystem, nil, TypeNone, PCNone},
	{REI, "REI", GroupSystem, nil, TypeNone, PCSystem},
	{BPT, "BPT", GroupSystem, nil, TypeNone, PCSystem},
	{LDPCTX, "LDPCTX", GroupSystem, nil, TypeNone, PCNone},
	{SVPCTX, "SVPCTX", GroupSystem, nil, TypeNone, PCNone},
	{PROBER, "PROBER", GroupSystem, []OperandSpec{rb(), rw(), ab()}, TypeNone, PCNone},
	{PROBEW, "PROBEW", GroupSystem, []OperandSpec{rb(), rw(), ab()}, TypeNone, PCNone},
	{INSQUE, "INSQUE", GroupSystem, []OperandSpec{ab(), ab()}, TypeNone, PCNone},
	{REMQUE, "REMQUE", GroupSystem, []OperandSpec{ab(), wl()}, TypeNone, PCNone},
	{BISPSW, "BISPSW", GroupSystem, []OperandSpec{rw()}, TypeNone, PCNone},
	{BICPSW, "BICPSW", GroupSystem, []OperandSpec{rw()}, TypeNone, PCNone},
	{CHMK, "CHMK", GroupSystem, []OperandSpec{rw()}, TypeNone, PCSystem},
	{CHME, "CHME", GroupSystem, []OperandSpec{rw()}, TypeNone, PCSystem},
	{MTPR, "MTPR", GroupSystem, []OperandSpec{rl(), rl()}, TypeNone, PCNone},
	{MFPR, "MFPR", GroupSystem, []OperandSpec{rl(), wl()}, TypeNone, PCNone},

	// ---- SIMPLE group: subroutine linkage and control ------------------
	{NOP, "NOP", GroupSimple, nil, TypeNone, PCNone},
	{INDEX, "INDEX", GroupSimple, []OperandSpec{rl(), rl(), rl(), rl(), rl(), wl()}, TypeNone, PCNone},
	{RET, "RET", GroupCallRet, nil, TypeNone, PCProc},
	{RSB, "RSB", GroupSimple, nil, TypeNone, PCSubr},
	{BSBB, "BSBB", GroupSimple, nil, TypeByte, PCSubr},
	{BSBW, "BSBW", GroupSimple, nil, TypeWord, PCSubr},
	{JSB, "JSB", GroupSimple, []OperandSpec{ab()}, TypeNone, PCSubr},
	{JMP, "JMP", GroupSimple, []OperandSpec{ab()}, TypeNone, PCUncond},
	{BRB, "BRB", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BRW, "BRW", GroupSimple, nil, TypeWord, PCSimpleCond},
	{BNEQ, "BNEQ", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BEQL, "BEQL", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BGTR, "BGTR", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BLEQ, "BLEQ", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BGEQ, "BGEQ", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BLSS, "BLSS", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BGTRU, "BGTRU", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BLEQU, "BLEQU", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BVC, "BVC", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BVS, "BVS", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BCC, "BCC", GroupSimple, nil, TypeByte, PCSimpleCond},
	{BCS, "BCS", GroupSimple, nil, TypeByte, PCSimpleCond},
	{CASEB, "CASEB", GroupSimple, []OperandSpec{rb(), rb(), rb()}, TypeNone, PCCase},
	{CASEW, "CASEW", GroupSimple, []OperandSpec{rw(), rw(), rw()}, TypeNone, PCCase},
	{CASEL, "CASEL", GroupSimple, []OperandSpec{rl(), rl(), rl()}, TypeNone, PCCase},
	{BLBS, "BLBS", GroupSimple, []OperandSpec{rl()}, TypeByte, PCLowBit},
	{BLBC, "BLBC", GroupSimple, []OperandSpec{rl()}, TypeByte, PCLowBit},
	{AOBLSS, "AOBLSS", GroupSimple, []OperandSpec{rl(), ml()}, TypeByte, PCLoop},
	{AOBLEQ, "AOBLEQ", GroupSimple, []OperandSpec{rl(), ml()}, TypeByte, PCLoop},
	{SOBGEQ, "SOBGEQ", GroupSimple, []OperandSpec{ml()}, TypeByte, PCLoop},
	{SOBGTR, "SOBGTR", GroupSimple, []OperandSpec{ml()}, TypeByte, PCLoop},
	{ACBB, "ACBB", GroupSimple, []OperandSpec{rb(), rb(), mb()}, TypeWord, PCLoop},
	{ACBW, "ACBW", GroupSimple, []OperandSpec{rw(), rw(), mw()}, TypeWord, PCLoop},
	{ACBL, "ACBL", GroupSimple, []OperandSpec{rl(), rl(), ml()}, TypeWord, PCLoop},

	// ---- SIMPLE group: moves ------------------------------------------
	{MOVB, "MOVB", GroupSimple, []OperandSpec{rb(), wb()}, TypeNone, PCNone},
	{MOVW, "MOVW", GroupSimple, []OperandSpec{rw(), ww()}, TypeNone, PCNone},
	{MOVL, "MOVL", GroupSimple, []OperandSpec{rl(), wl()}, TypeNone, PCNone},
	{MOVQ, "MOVQ", GroupSimple, []OperandSpec{rq(), wq()}, TypeNone, PCNone},
	{MOVZBL, "MOVZBL", GroupSimple, []OperandSpec{rb(), wl()}, TypeNone, PCNone},
	{CVTBL, "CVTBL", GroupSimple, []OperandSpec{rb(), wl()}, TypeNone, PCNone},
	{CVTBW, "CVTBW", GroupSimple, []OperandSpec{rb(), ww()}, TypeNone, PCNone},
	{CVTWL, "CVTWL", GroupSimple, []OperandSpec{rw(), wl()}, TypeNone, PCNone},
	{CVTWB, "CVTWB", GroupSimple, []OperandSpec{rw(), wb()}, TypeNone, PCNone},
	{CVTLB, "CVTLB", GroupSimple, []OperandSpec{rl(), wb()}, TypeNone, PCNone},
	{CVTLW, "CVTLW", GroupSimple, []OperandSpec{rl(), ww()}, TypeNone, PCNone},
	{MOVZBW, "MOVZBW", GroupSimple, []OperandSpec{rb(), ww()}, TypeNone, PCNone},
	{MOVZWL, "MOVZWL", GroupSimple, []OperandSpec{rw(), wl()}, TypeNone, PCNone},
	{MOVAB, "MOVAB", GroupSimple, []OperandSpec{ab(), wl()}, TypeNone, PCNone},
	{MOVAW, "MOVAW", GroupSimple, []OperandSpec{aw(), wl()}, TypeNone, PCNone},
	{MOVAQ, "MOVAQ", GroupSimple, []OperandSpec{aq(), wl()}, TypeNone, PCNone},
	{MOVAL, "MOVAL", GroupSimple, []OperandSpec{al(), wl()}, TypeNone, PCNone},
	{PUSHAB, "PUSHAB", GroupSimple, []OperandSpec{ab()}, TypeNone, PCNone},
	{PUSHAW, "PUSHAW", GroupSimple, []OperandSpec{aw()}, TypeNone, PCNone},
	{PUSHAQ, "PUSHAQ", GroupSimple, []OperandSpec{aq()}, TypeNone, PCNone},
	{PUSHAL, "PUSHAL", GroupSimple, []OperandSpec{al()}, TypeNone, PCNone},
	{PUSHL, "PUSHL", GroupSimple, []OperandSpec{rl()}, TypeNone, PCNone},
	{CLRB, "CLRB", GroupSimple, []OperandSpec{wb()}, TypeNone, PCNone},
	{CLRW, "CLRW", GroupSimple, []OperandSpec{ww()}, TypeNone, PCNone},
	{CLRL, "CLRL", GroupSimple, []OperandSpec{wl()}, TypeNone, PCNone},
	{CLRQ, "CLRQ", GroupSimple, []OperandSpec{wq()}, TypeNone, PCNone},
	{MCOMB, "MCOMB", GroupSimple, []OperandSpec{rb(), wb()}, TypeNone, PCNone},
	{MCOMW, "MCOMW", GroupSimple, []OperandSpec{rw(), ww()}, TypeNone, PCNone},
	{MCOML, "MCOML", GroupSimple, []OperandSpec{rl(), wl()}, TypeNone, PCNone},
	{MNEGL, "MNEGL", GroupSimple, []OperandSpec{rl(), wl()}, TypeNone, PCNone},
	{MNEGB, "MNEGB", GroupSimple, []OperandSpec{rb(), wb()}, TypeNone, PCNone},
	{MNEGW, "MNEGW", GroupSimple, []OperandSpec{rw(), ww()}, TypeNone, PCNone},

	// ---- SIMPLE group: integer arithmetic and booleans -----------------
	{ADDB2, "ADDB2", GroupSimple, []OperandSpec{rb(), mb()}, TypeNone, PCNone},
	{ADDB3, "ADDB3", GroupSimple, []OperandSpec{rb(), rb(), wb()}, TypeNone, PCNone},
	{SUBB2, "SUBB2", GroupSimple, []OperandSpec{rb(), mb()}, TypeNone, PCNone},
	{SUBB3, "SUBB3", GroupSimple, []OperandSpec{rb(), rb(), wb()}, TypeNone, PCNone},
	{ADDW2, "ADDW2", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{ADDW3, "ADDW3", GroupSimple, []OperandSpec{rw(), rw(), ww()}, TypeNone, PCNone},
	{SUBW2, "SUBW2", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{SUBW3, "SUBW3", GroupSimple, []OperandSpec{rw(), rw(), ww()}, TypeNone, PCNone},
	{ADDL2, "ADDL2", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{ADDL3, "ADDL3", GroupSimple, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{SUBL2, "SUBL2", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{SUBL3, "SUBL3", GroupSimple, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{ADWC, "ADWC", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{SBWC, "SBWC", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{INCB, "INCB", GroupSimple, []OperandSpec{mb()}, TypeNone, PCNone},
	{INCW, "INCW", GroupSimple, []OperandSpec{mw()}, TypeNone, PCNone},
	{INCL, "INCL", GroupSimple, []OperandSpec{ml()}, TypeNone, PCNone},
	{DECB, "DECB", GroupSimple, []OperandSpec{mb()}, TypeNone, PCNone},
	{DECW, "DECW", GroupSimple, []OperandSpec{mw()}, TypeNone, PCNone},
	{DECL, "DECL", GroupSimple, []OperandSpec{ml()}, TypeNone, PCNone},
	{CMPB, "CMPB", GroupSimple, []OperandSpec{rb(), rb()}, TypeNone, PCNone},
	{CMPW, "CMPW", GroupSimple, []OperandSpec{rw(), rw()}, TypeNone, PCNone},
	{CMPL, "CMPL", GroupSimple, []OperandSpec{rl(), rl()}, TypeNone, PCNone},
	{TSTB, "TSTB", GroupSimple, []OperandSpec{rb()}, TypeNone, PCNone},
	{TSTW, "TSTW", GroupSimple, []OperandSpec{rw()}, TypeNone, PCNone},
	{TSTL, "TSTL", GroupSimple, []OperandSpec{rl()}, TypeNone, PCNone},
	{BITB, "BITB", GroupSimple, []OperandSpec{rb(), rb()}, TypeNone, PCNone},
	{BITW, "BITW", GroupSimple, []OperandSpec{rw(), rw()}, TypeNone, PCNone},
	{BITL, "BITL", GroupSimple, []OperandSpec{rl(), rl()}, TypeNone, PCNone},
	{BISB2, "BISB2", GroupSimple, []OperandSpec{rb(), mb()}, TypeNone, PCNone},
	{BISB3, "BISB3", GroupSimple, []OperandSpec{rb(), rb(), wb()}, TypeNone, PCNone},
	{BICB2, "BICB2", GroupSimple, []OperandSpec{rb(), mb()}, TypeNone, PCNone},
	{BICB3, "BICB3", GroupSimple, []OperandSpec{rb(), rb(), wb()}, TypeNone, PCNone},
	{XORB2, "XORB2", GroupSimple, []OperandSpec{rb(), mb()}, TypeNone, PCNone},
	{XORB3, "XORB3", GroupSimple, []OperandSpec{rb(), rb(), wb()}, TypeNone, PCNone},
	{BISW2, "BISW2", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{BISW3, "BISW3", GroupSimple, []OperandSpec{rw(), rw(), ww()}, TypeNone, PCNone},
	{BICW2, "BICW2", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{BICW3, "BICW3", GroupSimple, []OperandSpec{rw(), rw(), ww()}, TypeNone, PCNone},
	{XORW2, "XORW2", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{XORW3, "XORW3", GroupSimple, []OperandSpec{rw(), rw(), ww()}, TypeNone, PCNone},
	{ADAWI, "ADAWI", GroupSimple, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{BISL2, "BISL2", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{BISL3, "BISL3", GroupSimple, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{BICL2, "BICL2", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{BICL3, "BICL3", GroupSimple, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{XORL2, "XORL2", GroupSimple, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{XORL3, "XORL3", GroupSimple, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{ASHL, "ASHL", GroupSimple, []OperandSpec{rb(), rl(), wl()}, TypeNone, PCNone},
	{ROTL, "ROTL", GroupSimple, []OperandSpec{rb(), rl(), wl()}, TypeNone, PCNone},

	// ---- FIELD group ----------------------------------------------------
	{EXTV, "EXTV", GroupField, []OperandSpec{rl(), rb(), vb(), wl()}, TypeNone, PCNone},
	{EXTZV, "EXTZV", GroupField, []OperandSpec{rl(), rb(), vb(), wl()}, TypeNone, PCNone},
	{INSV, "INSV", GroupField, []OperandSpec{rl(), rl(), rb(), vb()}, TypeNone, PCNone},
	{FFS, "FFS", GroupField, []OperandSpec{rl(), rb(), vb(), wl()}, TypeNone, PCNone},
	{FFC, "FFC", GroupField, []OperandSpec{rl(), rb(), vb(), wl()}, TypeNone, PCNone},
	{CMPV, "CMPV", GroupField, []OperandSpec{rl(), rb(), vb(), rl()}, TypeNone, PCNone},
	{CMPZV, "CMPZV", GroupField, []OperandSpec{rl(), rb(), vb(), rl()}, TypeNone, PCNone},
	{BBS, "BBS", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBC, "BBC", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBSS, "BBSS", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBCS, "BBCS", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBSC, "BBSC", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBCC, "BBCC", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBSSI, "BBSSI", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},
	{BBCCI, "BBCCI", GroupField, []OperandSpec{rl(), vb()}, TypeByte, PCBitBranch},

	// ---- FLOAT group (incl. integer multiply/divide, per Table 1) -------
	{ADDF2, "ADDF2", GroupFloat, []OperandSpec{rf(), mf()}, TypeNone, PCNone},
	{ADDF3, "ADDF3", GroupFloat, []OperandSpec{rf(), rf(), wf()}, TypeNone, PCNone},
	{SUBF2, "SUBF2", GroupFloat, []OperandSpec{rf(), mf()}, TypeNone, PCNone},
	{SUBF3, "SUBF3", GroupFloat, []OperandSpec{rf(), rf(), wf()}, TypeNone, PCNone},
	{MULF2, "MULF2", GroupFloat, []OperandSpec{rf(), mf()}, TypeNone, PCNone},
	{MULF3, "MULF3", GroupFloat, []OperandSpec{rf(), rf(), wf()}, TypeNone, PCNone},
	{DIVF2, "DIVF2", GroupFloat, []OperandSpec{rf(), mf()}, TypeNone, PCNone},
	{DIVF3, "DIVF3", GroupFloat, []OperandSpec{rf(), rf(), wf()}, TypeNone, PCNone},
	{CVTFL, "CVTFL", GroupFloat, []OperandSpec{rf(), wl()}, TypeNone, PCNone},
	{CVTLF, "CVTLF", GroupFloat, []OperandSpec{rl(), wf()}, TypeNone, PCNone},
	{MOVF, "MOVF", GroupFloat, []OperandSpec{rf(), wf()}, TypeNone, PCNone},
	{CMPF, "CMPF", GroupFloat, []OperandSpec{rf(), rf()}, TypeNone, PCNone},
	{MNEGF, "MNEGF", GroupFloat, []OperandSpec{rf(), wf()}, TypeNone, PCNone},
	{TSTF, "TSTF", GroupFloat, []OperandSpec{rf()}, TypeNone, PCNone},
	{ADDD2, "ADDD2", GroupFloat, []OperandSpec{rd(), md()}, TypeNone, PCNone},
	{ADDD3, "ADDD3", GroupFloat, []OperandSpec{rd(), rd(), wd()}, TypeNone, PCNone},
	{SUBD2, "SUBD2", GroupFloat, []OperandSpec{rd(), md()}, TypeNone, PCNone},
	{SUBD3, "SUBD3", GroupFloat, []OperandSpec{rd(), rd(), wd()}, TypeNone, PCNone},
	{MULD2, "MULD2", GroupFloat, []OperandSpec{rd(), md()}, TypeNone, PCNone},
	{MULD3, "MULD3", GroupFloat, []OperandSpec{rd(), rd(), wd()}, TypeNone, PCNone},
	{DIVD2, "DIVD2", GroupFloat, []OperandSpec{rd(), md()}, TypeNone, PCNone},
	{DIVD3, "DIVD3", GroupFloat, []OperandSpec{rd(), rd(), wd()}, TypeNone, PCNone},
	{MOVD, "MOVD", GroupFloat, []OperandSpec{rd(), wd()}, TypeNone, PCNone},
	{CMPD, "CMPD", GroupFloat, []OperandSpec{rd(), rd()}, TypeNone, PCNone},
	{TSTD, "TSTD", GroupFloat, []OperandSpec{rd()}, TypeNone, PCNone},
	{MULL2, "MULL2", GroupFloat, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{MULL3, "MULL3", GroupFloat, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{MULW2, "MULW2", GroupFloat, []OperandSpec{rw(), mw()}, TypeNone, PCNone},
	{DIVL2, "DIVL2", GroupFloat, []OperandSpec{rl(), ml()}, TypeNone, PCNone},
	{DIVL3, "DIVL3", GroupFloat, []OperandSpec{rl(), rl(), wl()}, TypeNone, PCNone},
	{ASHQ, "ASHQ", GroupFloat, []OperandSpec{rb(), rq(), wq()}, TypeNone, PCNone},
	{EMUL, "EMUL", GroupFloat, []OperandSpec{rl(), rl(), rl(), wq()}, TypeNone, PCNone},
	{EDIV, "EDIV", GroupFloat, []OperandSpec{rl(), rq(), wl(), wl()}, TypeNone, PCNone},

	// ---- CALL/RET group --------------------------------------------------
	{CALLG, "CALLG", GroupCallRet, []OperandSpec{ab(), ab()}, TypeNone, PCProc},
	{CALLS, "CALLS", GroupCallRet, []OperandSpec{rl(), ab()}, TypeNone, PCProc},
	{PUSHR, "PUSHR", GroupCallRet, []OperandSpec{rw()}, TypeNone, PCNone},
	{POPR, "POPR", GroupCallRet, []OperandSpec{rw()}, TypeNone, PCNone},

	// ---- CHARACTER group -------------------------------------------------
	{MOVC3, "MOVC3", GroupCharacter, []OperandSpec{rw(), ab(), ab()}, TypeNone, PCNone},
	{MOVC5, "MOVC5", GroupCharacter, []OperandSpec{rw(), ab(), rb(), rw(), ab()}, TypeNone, PCNone},
	{CMPC3, "CMPC3", GroupCharacter, []OperandSpec{rw(), ab(), ab()}, TypeNone, PCNone},
	{CMPC5, "CMPC5", GroupCharacter, []OperandSpec{rw(), ab(), rb(), rw(), ab()}, TypeNone, PCNone},
	{MOVTC, "MOVTC", GroupCharacter, []OperandSpec{rw(), ab(), rb(), ab(), rw(), ab()}, TypeNone, PCNone},
	{LOCC, "LOCC", GroupCharacter, []OperandSpec{rb(), rw(), ab()}, TypeNone, PCNone},
	{SKPC, "SKPC", GroupCharacter, []OperandSpec{rb(), rw(), ab()}, TypeNone, PCNone},
	{SCANC, "SCANC", GroupCharacter, []OperandSpec{rw(), ab(), ab(), rb()}, TypeNone, PCNone},
	{SPANC, "SPANC", GroupCharacter, []OperandSpec{rw(), ab(), ab(), rb()}, TypeNone, PCNone},

	// ---- DECIMAL group -----------------------------------------------------
	{ADDP4, "ADDP4", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{ADDP6, "ADDP6", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{SUBP4, "SUBP4", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{SUBP6, "SUBP6", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{MULP, "MULP", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{DIVP, "DIVP", GroupDecimal, []OperandSpec{rw(), ab(), rw(), ab(), rw(), ab()}, TypeNone, PCNone},
	{MOVP, "MOVP", GroupDecimal, []OperandSpec{rw(), ab(), ab()}, TypeNone, PCNone},
	{CMPP3, "CMPP3", GroupDecimal, []OperandSpec{rw(), ab(), ab()}, TypeNone, PCNone},
	{CVTPL, "CVTPL", GroupDecimal, []OperandSpec{rw(), ab(), wl()}, TypeNone, PCNone},
	{CVTLP, "CVTLP", GroupDecimal, []OperandSpec{rl(), rw(), ab()}, TypeNone, PCNone},
	{ASHP, "ASHP", GroupDecimal, []OperandSpec{rb(), rw(), ab(), rb(), rw(), ab()}, TypeNone, PCNone},
}

var opByCode [256]*OpInfo

func init() {
	for i := range opTable {
		info := &opTable[i]
		if opByCode[info.Code] != nil {
			panic("vax: duplicate opcode " + info.Name)
		}
		if len(info.Specs) > 6 {
			panic("vax: too many operand specifiers for " + info.Name)
		}
		opByCode[info.Code] = info
	}
}

// Lookup returns the description of an opcode, or nil if the opcode is not
// implemented by this model.
func Lookup(code Opcode) *OpInfo { return opByCode[code] }

// LookupName returns the description of an opcode by mnemonic, or nil.
func LookupName(name string) *OpInfo {
	for i := range opTable {
		if opTable[i].Name == name {
			return &opTable[i]
		}
	}
	return nil
}

// All returns the descriptions of all implemented opcodes. The returned
// slice must not be modified.
func All() []OpInfo { return opTable }
