package vax

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte strings to the instruction decoder. The
// decoder must never panic; when it accepts an input, the decoded form
// must re-encode to exactly the bytes it consumed (decode/encode identity
// over the accepted language).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0xD0, 0x01, 0x51}, // MOVL #1, R1
		{0xC1, 0x8F, 0x12, 0x34, 0x56, 0x78, 0x52, 0x53}, // ADDL3 imm, R2, R3
		{0x11, 0xFE},                               // BRB .-2
		{0x31, 0x00, 0x10},                         // BRW
		{0xD0, 0x41, 0x62, 0x53},                   // MOVL (R2)[R1], R3
		{0xD0, 0xE2, 0x00, 0x01, 0x00, 0x00, 0x50}, // longword displacement
		{0x28, 0x10, 0x61, 0x62},                   // MOVC3
		{0x41, 0x42},                               // doubled index prefix (rejected)
		{0x9F, 0x9F, 0xFF, 0xFF, 0xFF, 0xFF},       // PUSHAB @#...
		{0x00},                                     // HALT
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		in, err := Decode(b)
		if err != nil {
			return
		}
		if in.Size <= 0 || in.Size > len(b) {
			t.Fatalf("accepted size %d out of range for %d input bytes", in.Size, len(b))
		}
		out, err := in.Encode(nil)
		if err != nil {
			t.Fatalf("decoded instruction does not re-encode: %v", err)
		}
		if !bytes.Equal(out, b[:in.Size]) {
			t.Fatalf("re-encode mismatch:\n in  % x\n out % x", b[:in.Size], out)
		}
	})
}

// FuzzDecodeSpecifier exercises the operand-specifier decoder across all
// immediate sizes. It must never panic and must never report consuming
// more bytes than it was given.
func FuzzDecodeSpecifier(f *testing.F) {
	seeds := []struct {
		b []byte
		t uint8
	}{
		{[]byte{0x3F}, uint8(TypeLong)},             // short literal
		{[]byte{0x51}, uint8(TypeLong)},             // register
		{[]byte{0x8F, 1, 2, 3, 4}, uint8(TypeLong)}, // immediate
		{[]byte{0x8F, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(TypeQuad)},
		{[]byte{0x9F, 0, 0, 1, 0}, uint8(TypeByte)}, // absolute
		{[]byte{0x41, 0x62}, uint8(TypeWord)},       // indexed deferred
		{[]byte{0x41, 0x42}, uint8(TypeLong)},       // doubled prefix
		{[]byte{0xA5, 0x7F}, uint8(TypeByte)},       // byte displacement
		{[]byte{0xC5, 0x00}, uint8(TypeWord)},       // truncated word disp
	}
	for _, s := range seeds {
		f.Add(s.b, s.t)
	}
	types := []DataType{TypeByte, TypeWord, TypeLong, TypeQuad}
	f.Fuzz(func(t *testing.T, b []byte, tsel uint8) {
		dt := types[int(tsel)%len(types)]
		s, n, err := DecodeSpecifier(b, dt)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if _, err := EncodeSpecifier(nil, s, dt); err != nil {
			t.Fatalf("decoded specifier %+v does not re-encode: %v", s, err)
		}
	})
}
