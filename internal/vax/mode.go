package vax

import "fmt"

// AddrMode is a decoded operand specifier addressing mode. The VAX encodes
// the mode in the high nibble of the first specifier byte; modes 0-3 are
// short literals and mode 4 is an index prefix applied to a base mode.
type AddrMode uint8

const (
	ModeLiteral      AddrMode = iota // S^#lit6 (modes 0-3)
	ModeRegister                     // Rn
	ModeRegDeferred                  // (Rn)
	ModeAutoDec                      // -(Rn)
	ModeAutoInc                      // (Rn)+
	ModeAutoIncDef                   // @(Rn)+
	ModeImmediate                    // (PC)+  I^#const
	ModeAbsolute                     // @(PC)+ @#addr
	ModeByteDisp                     // B^d(Rn)
	ModeByteDispDef                  // @B^d(Rn)
	ModeWordDisp                     // W^d(Rn)
	ModeWordDispDef                  // @W^d(Rn)
	ModeLongDisp                     // L^d(Rn)
	ModeLongDispDef                  // @L^d(Rn)
	numAddrModes
)

// NumAddrModes is the number of distinct decoded addressing modes.
const NumAddrModes = int(numAddrModes)

func (m AddrMode) String() string {
	switch m {
	case ModeLiteral:
		return "S^#"
	case ModeRegister:
		return "Rn"
	case ModeRegDeferred:
		return "(Rn)"
	case ModeAutoDec:
		return "-(Rn)"
	case ModeAutoInc:
		return "(Rn)+"
	case ModeAutoIncDef:
		return "@(Rn)+"
	case ModeImmediate:
		return "(PC)+"
	case ModeAbsolute:
		return "@#"
	case ModeByteDisp:
		return "B^d(Rn)"
	case ModeByteDispDef:
		return "@B^d(Rn)"
	case ModeWordDisp:
		return "W^d(Rn)"
	case ModeWordDispDef:
		return "@W^d(Rn)"
	case ModeLongDisp:
		return "L^d(Rn)"
	case ModeLongDispDef:
		return "@L^d(Rn)"
	}
	return fmt.Sprintf("AddrMode(%d)", uint8(m))
}

// IsMemory reports whether the mode references memory for its operand data
// (register and literal/immediate modes do not; immediate data comes from
// the I-stream).
func (m AddrMode) IsMemory() bool {
	switch m {
	case ModeLiteral, ModeRegister, ModeImmediate:
		return false
	}
	return true
}

// Indexable reports whether the mode may carry an index prefix ([Rx]).
// Only memory-referencing base modes may be indexed.
func (m AddrMode) Indexable() bool { return m.IsMemory() }

// Specifier is a decoded operand specifier: an addressing mode, its base
// register, any displacement or literal constant, and an optional index
// register.
type Specifier struct {
	Mode    AddrMode
	Base    Reg    // base register (unused for literal/immediate/absolute)
	Disp    int32  // displacement (B^/W^/L^ modes) or 6-bit literal value
	Imm     uint64 // immediate constant (ModeImmediate) or absolute address (ModeAbsolute)
	Indexed bool
	Index   Reg // index register when Indexed
}

func (s Specifier) String() string {
	var body string
	switch s.Mode {
	case ModeLiteral:
		body = fmt.Sprintf("S^#%d", s.Disp)
	case ModeRegister:
		body = s.Base.String()
	case ModeRegDeferred:
		body = "(" + s.Base.String() + ")"
	case ModeAutoDec:
		body = "-(" + s.Base.String() + ")"
	case ModeAutoInc:
		body = "(" + s.Base.String() + ")+"
	case ModeAutoIncDef:
		body = "@(" + s.Base.String() + ")+"
	case ModeImmediate:
		body = fmt.Sprintf("I^#%d", s.Imm)
	case ModeAbsolute:
		body = fmt.Sprintf("@#%#x", uint32(s.Imm))
	case ModeByteDisp:
		body = fmt.Sprintf("B^%d(%s)", s.Disp, s.Base)
	case ModeByteDispDef:
		body = fmt.Sprintf("@B^%d(%s)", s.Disp, s.Base)
	case ModeWordDisp:
		body = fmt.Sprintf("W^%d(%s)", s.Disp, s.Base)
	case ModeWordDispDef:
		body = fmt.Sprintf("@W^%d(%s)", s.Disp, s.Base)
	case ModeLongDisp:
		body = fmt.Sprintf("L^%d(%s)", s.Disp, s.Base)
	case ModeLongDispDef:
		body = fmt.Sprintf("@L^%d(%s)", s.Disp, s.Base)
	}
	if s.Indexed {
		body += "[" + s.Index.String() + "]"
	}
	return body
}
