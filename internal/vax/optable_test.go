package vax

import "testing"

func TestLookupByCodeAndName(t *testing.T) {
	cases := []struct {
		code Opcode
		name string
	}{
		{MOVL, "MOVL"}, {CALLS, "CALLS"}, {RET, "RET"}, {MOVC3, "MOVC3"},
		{ADDP4, "ADDP4"}, {CHMK, "CHMK"}, {EXTZV, "EXTZV"}, {ADDF2, "ADDF2"},
	}
	for _, c := range cases {
		info := Lookup(c.code)
		if info == nil {
			t.Fatalf("Lookup(%#02x) = nil", c.code)
		}
		if info.Name != c.name {
			t.Errorf("Lookup(%#02x).Name = %q, want %q", c.code, info.Name, c.name)
		}
		if byName := LookupName(c.name); byName != info {
			t.Errorf("LookupName(%q) != Lookup(%#02x)", c.name, c.code)
		}
	}
	if Lookup(0xFF) != nil {
		t.Error("Lookup(0xFF) should be nil (unimplemented)")
	}
	if LookupName("XYZZY") != nil {
		t.Error("LookupName of unknown mnemonic should be nil")
	}
}

func TestGroupAssignments(t *testing.T) {
	// Spot checks against Table 1's group definitions.
	wantGroup := map[Opcode]Group{
		MOVL:   GroupSimple, // move instructions
		ADDL2:  GroupSimple, // simple arith
		BICL2:  GroupSimple, // boolean
		BEQL:   GroupSimple, // simple branches
		SOBGTR: GroupSimple, // loop branches
		BSBB:   GroupSimple, // subroutine call
		RSB:    GroupSimple, // subroutine return
		EXTV:   GroupField,
		BBS:    GroupField, // bit branches live in FIELD (Table 2 note)
		ADDF2:  GroupFloat,
		MULL2:  GroupFloat, // integer multiply is grouped with FLOAT
		DIVL3:  GroupFloat,
		CALLS:  GroupCallRet,
		RET:    GroupCallRet,
		PUSHR:  GroupCallRet, // multi-register push
		CHMK:   GroupSystem,  // system service request
		SVPCTX: GroupSystem,  // context switch
		INSQUE: GroupSystem,  // queue manipulation
		PROBER: GroupSystem,  // protection probe
		MOVC3:  GroupCharacter,
		ADDP4:  GroupDecimal,
	}
	for code, want := range wantGroup {
		info := Lookup(code)
		if info == nil {
			t.Fatalf("opcode %#02x missing from table", code)
		}
		if info.Group != want {
			t.Errorf("%s group = %v, want %v", info.Name, info.Group, want)
		}
	}
}

func TestEveryGroupPopulated(t *testing.T) {
	seen := make(map[Group]int)
	for _, info := range All() {
		seen[info.Group]++
	}
	for g := Group(0); g < NumGroups; g++ {
		if seen[g] == 0 {
			t.Errorf("group %v has no opcodes", g)
		}
	}
}

func TestEveryPCClassPopulated(t *testing.T) {
	seen := make(map[PCClass]int)
	for _, info := range All() {
		seen[info.PCClass]++
	}
	for c := PCClass(1); c < NumPCClasses; c++ {
		if seen[c] == 0 {
			t.Errorf("PC class %v has no opcodes", c)
		}
	}
}

func TestSpecifierLimits(t *testing.T) {
	for _, info := range All() {
		if len(info.Specs) > 6 {
			t.Errorf("%s has %d specifiers; VAX instructions have 0-6", info.Name, len(info.Specs))
		}
		for i, s := range info.Specs {
			if s.Access == AccessNone || s.Type == TypeNone {
				t.Errorf("%s specifier %d has unset access/type", info.Name, i+1)
			}
		}
	}
}

func TestBranchDispOnlyByteOrWord(t *testing.T) {
	for _, info := range All() {
		switch info.BranchDisp {
		case TypeNone, TypeByte, TypeWord:
		default:
			t.Errorf("%s branch displacement type %v invalid", info.Name, info.BranchDisp)
		}
		if info.PCClass == PCSimpleCond && info.BranchDisp == TypeNone {
			t.Errorf("%s is a simple branch but has no displacement", info.Name)
		}
	}
}

func TestDataTypeSizes(t *testing.T) {
	want := map[DataType]int{
		TypeNone: 0, TypeByte: 1, TypeWord: 2, TypeLong: 4,
		TypeQuad: 8, TypeFloatF: 4, TypeFloatD: 8,
	}
	for dt, sz := range want {
		if got := dt.Size(); got != sz {
			t.Errorf("%v.Size() = %d, want %d", dt, got, sz)
		}
	}
}

func TestIPLHelpers(t *testing.T) {
	psl := WithIPL(0, 24)
	if got := IPL(psl); got != 24 {
		t.Errorf("IPL(WithIPL(0,24)) = %d, want 24", got)
	}
	psl = WithIPL(psl, 0)
	if got := IPL(psl); got != 0 {
		t.Errorf("IPL after clearing = %d, want 0", got)
	}
	if WithIPL(PSLN|PSLZ, 7)&(PSLN|PSLZ) != PSLN|PSLZ {
		t.Error("WithIPL must preserve unrelated PSL bits")
	}
}
