package vax

import (
	"errors"
	"fmt"
)

// Errors returned by the specifier encoder/decoder.
var (
	ErrBadLiteral   = errors.New("vax: short literal out of range (0..63)")
	ErrBadMode      = errors.New("vax: addressing mode cannot be encoded")
	ErrTruncated    = errors.New("vax: truncated instruction stream")
	ErrNotIndexable = errors.New("vax: addressing mode cannot be indexed")
	ErrBadIndex     = errors.New("vax: PC may not be used as an index register")
)

// EncodeSpecifier appends the I-stream encoding of a specifier to buf,
// given the data type of the operand (needed to size immediate constants).
func EncodeSpecifier(buf []byte, s Specifier, t DataType) ([]byte, error) {
	if s.Indexed {
		if !s.Mode.Indexable() {
			return nil, ErrNotIndexable
		}
		if s.Index == PC {
			return nil, ErrBadIndex
		}
		buf = append(buf, 0x40|byte(s.Index))
	}
	switch s.Mode {
	case ModeLiteral:
		if s.Disp < 0 || s.Disp > 63 {
			return nil, ErrBadLiteral
		}
		buf = append(buf, byte(s.Disp))
	case ModeRegister:
		buf = append(buf, 0x50|byte(s.Base))
	case ModeRegDeferred:
		buf = append(buf, 0x60|byte(s.Base))
	case ModeAutoDec:
		buf = append(buf, 0x70|byte(s.Base))
	case ModeAutoInc:
		buf = append(buf, 0x80|byte(s.Base))
	case ModeAutoIncDef:
		buf = append(buf, 0x90|byte(s.Base))
	case ModeImmediate:
		buf = append(buf, 0x80|byte(PC))
		buf = appendUint(buf, s.Imm, t.Size())
	case ModeAbsolute:
		buf = append(buf, 0x90|byte(PC))
		buf = appendUint(buf, s.Imm, 4)
	case ModeByteDisp:
		buf = append(buf, 0xA0|byte(s.Base), byte(int8(s.Disp)))
	case ModeByteDispDef:
		buf = append(buf, 0xB0|byte(s.Base), byte(int8(s.Disp)))
	case ModeWordDisp:
		buf = append(buf, 0xC0|byte(s.Base))
		buf = appendUint(buf, uint64(uint16(int16(s.Disp))), 2)
	case ModeWordDispDef:
		buf = append(buf, 0xD0|byte(s.Base))
		buf = appendUint(buf, uint64(uint16(int16(s.Disp))), 2)
	case ModeLongDisp:
		buf = append(buf, 0xE0|byte(s.Base))
		buf = appendUint(buf, uint64(uint32(s.Disp)), 4)
	case ModeLongDispDef:
		buf = append(buf, 0xF0|byte(s.Base))
		buf = appendUint(buf, uint64(uint32(s.Disp)), 4)
	default:
		return nil, ErrBadMode
	}
	return buf, nil
}

// DecodeSpecifier decodes one operand specifier from b, returning the
// specifier and the number of I-stream bytes it consumed.
func DecodeSpecifier(b []byte, t DataType) (Specifier, int, error) {
	var s Specifier
	n := 0
	if len(b) == 0 {
		return s, 0, ErrTruncated
	}
	if b[0]>>4 == 4 { // index prefix
		s.Indexed = true
		s.Index = Reg(b[0] & 0x0F)
		if s.Index == PC {
			return s, 0, ErrBadIndex
		}
		b = b[1:]
		n = 1
		if len(b) == 0 {
			return s, 0, ErrTruncated
		}
	}
	mb := b[0] // mode byte, kept for diagnostics: b advances past it below
	mode := mb >> 4
	reg := Reg(mb & 0x0F)
	b = b[1:]
	n++
	switch {
	case mode <= 3:
		s.Mode = ModeLiteral
		s.Disp = int32(mode)<<4 | int32(reg)
	case mode == 5:
		s.Mode = ModeRegister
		s.Base = reg
	case mode == 6:
		s.Mode = ModeRegDeferred
		s.Base = reg
	case mode == 7:
		s.Mode = ModeAutoDec
		s.Base = reg
	case mode == 8 && reg == PC:
		s.Mode = ModeImmediate
		sz := t.Size()
		if len(b) < sz {
			return s, 0, ErrTruncated
		}
		s.Imm = readUint(b, sz)
		n += sz
	case mode == 8:
		s.Mode = ModeAutoInc
		s.Base = reg
	case mode == 9 && reg == PC:
		s.Mode = ModeAbsolute
		if len(b) < 4 {
			return s, 0, ErrTruncated
		}
		s.Imm = readUint(b, 4)
		n += 4
	case mode == 9:
		s.Mode = ModeAutoIncDef
		s.Base = reg
	case mode == 0xA || mode == 0xB:
		if len(b) < 1 {
			return s, 0, ErrTruncated
		}
		s.Mode = ModeByteDisp
		if mode == 0xB {
			s.Mode = ModeByteDispDef
		}
		s.Base = reg
		s.Disp = int32(int8(b[0]))
		n++
	case mode == 0xC || mode == 0xD:
		if len(b) < 2 {
			return s, 0, ErrTruncated
		}
		s.Mode = ModeWordDisp
		if mode == 0xD {
			s.Mode = ModeWordDispDef
		}
		s.Base = reg
		s.Disp = int32(int16(readUint(b, 2)))
		n += 2
	case mode == 0xE || mode == 0xF:
		if len(b) < 4 {
			return s, 0, ErrTruncated
		}
		s.Mode = ModeLongDisp
		if mode == 0xF {
			s.Mode = ModeLongDispDef
		}
		s.Base = reg
		s.Disp = int32(uint32(readUint(b, 4)))
		n += 4
	default:
		// Reached for a doubled index prefix (4x 4x): mode 4 after the
		// first prefix has already been consumed.
		//vaxlint:allow hotbox -- cold: reserved-operand decode error; the machine delivers a fault and the instruction aborts
		return s, 0, fmt.Errorf("vax: unhandled specifier byte %#02x", mb)
	}
	if s.Indexed && !s.Mode.Indexable() {
		return s, 0, ErrNotIndexable
	}
	return s, n, nil
}

// Instruction is a decoded VAX instruction: opcode description, decoded
// operand specifiers and (if present) sign-extended branch displacement.
type Instruction struct {
	Info     *OpInfo
	Specs    []Specifier
	Disp     int32 // sign-extended branch displacement
	Size     int   // total encoded size in bytes
	CaseDisp []int16
}

// Encode appends the instruction's I-stream encoding to buf.
func (in *Instruction) Encode(buf []byte) ([]byte, error) {
	if in.Info == nil {
		return nil, errors.New("vax: encode of instruction with nil Info")
	}
	buf = append(buf, byte(in.Info.Code))
	if len(in.Specs) != len(in.Info.Specs) {
		return nil, fmt.Errorf("vax: %s needs %d specifiers, got %d",
			in.Info.Name, len(in.Info.Specs), len(in.Specs))
	}
	var err error
	for i, s := range in.Specs {
		buf, err = EncodeSpecifier(buf, s, in.Info.Specs[i].Type)
		if err != nil {
			return nil, fmt.Errorf("vax: %s specifier %d: %w", in.Info.Name, i+1, err)
		}
	}
	switch in.Info.BranchDisp {
	case TypeByte:
		buf = append(buf, byte(int8(in.Disp)))
	case TypeWord:
		buf = appendUint(buf, uint64(uint16(int16(in.Disp))), 2)
	}
	if in.Info.PCClass == PCCase {
		for _, d := range in.CaseDisp {
			buf = appendUint(buf, uint64(uint16(d)), 2)
		}
	}
	return buf, nil
}

// Decode decodes one instruction from the start of b. CASEx displacement
// tables are not consumed here (their length depends on a runtime operand);
// the caller sees them as I-stream data following the instruction.
func Decode(b []byte) (Instruction, error) {
	var in Instruction
	if len(b) == 0 {
		return in, ErrTruncated
	}
	in.Info = Lookup(Opcode(b[0]))
	if in.Info == nil {
		return in, fmt.Errorf("vax: unimplemented opcode %#02x", b[0])
	}
	n := 1
	for _, os := range in.Info.Specs {
		s, sn, err := DecodeSpecifier(b[n:], os.Type)
		if err != nil {
			return in, fmt.Errorf("vax: %s: %w", in.Info.Name, err)
		}
		in.Specs = append(in.Specs, s)
		n += sn
	}
	switch in.Info.BranchDisp {
	case TypeByte:
		if len(b) < n+1 {
			return in, ErrTruncated
		}
		in.Disp = int32(int8(b[n]))
		n++
	case TypeWord:
		if len(b) < n+2 {
			return in, ErrTruncated
		}
		in.Disp = int32(int16(readUint(b[n:], 2)))
		n += 2
	}
	in.Size = n
	return in, nil
}

func appendUint(buf []byte, v uint64, n int) []byte {
	for i := 0; i < n; i++ {
		buf = append(buf, byte(v>>(8*i)))
	}
	return buf
}

func readUint(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
