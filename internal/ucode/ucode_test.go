package ucode

import (
	"testing"
	"testing/quick"
)

func TestDefineAndLookup(t *testing.T) {
	s := NewStore()
	a := s.Define("ird", RowDecode, ClassDispatch)
	b := s.Define("spec1.entry", RowSpec1, ClassDispatch)
	if a == 0 || b == 0 {
		t.Error("address 0 must stay reserved")
	}
	if a == b {
		t.Error("addresses must be distinct")
	}
	if got := s.MustLookup("ird"); got != a {
		t.Errorf("MustLookup = %d, want %d", got, a)
	}
	w := s.Word(a)
	if w.Name != "ird" || w.Row != RowDecode || w.Class != ClassDispatch {
		t.Errorf("Word = %+v", w)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup of missing name should fail")
	}
}

func TestDuplicatePanics(t *testing.T) {
	s := NewStore()
	s.Define("x", RowSimple, ClassCompute)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Define should panic")
		}
	}()
	s.Define("x", RowSimple, ClassCompute)
}

// TestSealFreezesStore pins the two-phase contract the fleet supervisor
// relies on: after Seal, Define panics (no writer can appear once readers
// share the store across goroutines), every read-side method still works,
// and sealing again is a no-op.
func TestSealFreezesStore(t *testing.T) {
	s := NewStore()
	a := s.Define("ird", RowDecode, ClassDispatch)
	if s.Sealed() {
		t.Fatal("new store reports sealed")
	}
	s.Seal()
	s.Seal() // double seal must be a no-op
	if !s.Sealed() {
		t.Fatal("Sealed() = false after Seal")
	}
	if got := s.MustLookup("ird"); got != a {
		t.Errorf("MustLookup after seal = %d, want %d", got, a)
	}
	if s.Word(a).Name != "ird" || s.Len() != 2 || s.Listing() == "" {
		t.Error("read-side methods broken by Seal")
	}
	defer func() {
		if recover() == nil {
			t.Error("Define on a sealed store should panic")
		}
	}()
	s.Define("late", RowSimple, ClassCompute)
}

func TestUndefinedWord(t *testing.T) {
	s := NewStore()
	w := s.Word(9999)
	if w.Name != "(undefined)" {
		t.Errorf("undefined word = %+v", w)
	}
}

func TestRowAndClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for r := Row(0); r < NumRows; r++ {
		str := r.String()
		if seen[str] {
			t.Errorf("duplicate row name %q", str)
		}
		seen[str] = true
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}

func TestPropertyAddressesSequentialAndResolvable(t *testing.T) {
	f := func(names []string) bool {
		s := NewStore()
		defined := map[string]uint16{}
		for i, n := range names {
			key := n + "#" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + itoa(i)
			if _, dup := defined[key]; dup {
				continue
			}
			addr := s.Define(key, Row(i%int(NumRows)), Class(i%int(NumClasses)))
			defined[key] = addr
		}
		for k, a := range defined {
			if got := s.MustLookup(k); got != a {
				return false
			}
			if s.Word(a).Name != k {
				return false
			}
		}
		return s.Len() == len(defined)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestListing(t *testing.T) {
	s := NewStore()
	s.Define("alpha.entry", RowSimple, ClassCompute)
	s.Define("beta.read", RowMemMgmt, ClassRead)
	l := s.Listing()
	for _, want := range []string{"alpha.entry", "beta.read", "Simple", "Mem Mgmt", "compute", "read", "0001", "0002"} {
		if !containsStr(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestNearestDeterministic pins the tie-breaking of nearest: with several
// candidates sharing the same common prefix and length, the suggestion in
// the MustLookup panic must be the lexicographically smallest, on every
// run and regardless of definition (map insertion) order.
func TestNearestDeterministic(t *testing.T) {
	build := func(names []string) *Store {
		s := NewStore()
		for _, n := range names {
			s.Define(n, RowSimple, ClassCompute)
		}
		return s
	}
	// All four candidates share the prefix "exec." (len 5) with the
	// query and have equal length; "exec.aa" must win every time.
	names := []string{"exec.dd", "exec.bb", "exec.aa", "exec.cc"}
	for trial := 0; trial < 20; trial++ {
		// Rotate the definition order so any map-order dependence would
		// surface as a different suggestion between stores.
		rot := append(append([]string{}, names[trial%len(names):]...), names[:trial%len(names)]...)
		near, _, ok := build(rot).nearest("exec.zz")
		if !ok || near != "exec.aa" {
			t.Fatalf("definition order %v: nearest = %q, want %q", rot, near, "exec.aa")
		}
	}
}

// BenchmarkListing guards the strings.Builder rendering: the old
// byte-slice/pad implementation was quadratic in padding and reallocated
// per column, which showed up once the listing covered a full store.
func BenchmarkListing(b *testing.B) {
	s := NewStore()
	for i := 0; i < 2000; i++ {
		s.Define("bench.word."+itoa(i+1), RowSimple, ClassCompute)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Listing()) == 0 {
			b.Fatal("empty listing")
		}
	}
}
