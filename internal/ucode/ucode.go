// Package ucode describes the VAX-11/780 microcode control store as the
// µPC histogram monitor sees it: a table of microinstruction locations,
// each with a stable address, a human-readable name, a timing row (which
// stage/activity of instruction execution it belongs to, per Table 8 of
// the paper) and a class (what the microinstruction does in the cycle it
// executes: autonomous computation, a data read, a data write, an
// IB-dispatch request, or a dedicated IB-stall location).
//
// The execution semantics of each location live in internal/cpu; this
// package carries only the descriptive map that the paper's data-reduction
// step needs ("additional interpretation of the raw histogram data", §2.2).
package ucode

import (
	"fmt"
	"sort"
	"strings"
)

// StoreSize is the number of addressable control-store locations (and thus
// histogram buckets): the monitor board had 16,000 count locations; the
// 11/780 control store is 16 K microwords.
const StoreSize = 16384

// Row is the first dimension of Table 8: the stage or activity of
// instruction execution a microinstruction belongs to.
type Row uint8

// Rows of Table 8, in the paper's order.
const (
	RowDecode Row = iota
	RowSpec1
	RowSpec26
	RowBDisp
	RowSimple
	RowField
	RowFloat
	RowCallRet
	RowSystem
	RowCharacter
	RowDecimal
	RowIntExcept
	RowMemMgmt
	RowAbort
	NumRows
)

func (r Row) String() string {
	switch r {
	case RowDecode:
		return "Decode"
	case RowSpec1:
		return "SPEC1"
	case RowSpec26:
		return "SPEC2-6"
	case RowBDisp:
		return "B-DISP"
	case RowSimple:
		return "Simple"
	case RowField:
		return "Field"
	case RowFloat:
		return "Float"
	case RowCallRet:
		return "Call/Ret"
	case RowSystem:
		return "System"
	case RowCharacter:
		return "Character"
	case RowDecimal:
		return "Decimal"
	case RowIntExcept:
		return "Int/Except"
	case RowMemMgmt:
		return "Mem Mgmt"
	case RowAbort:
		return "Abort"
	}
	return fmt.Sprintf("Row(%d)", uint8(r))
}

// Class is what a microinstruction does in its execution cycle. On the
// 11/780 the six Table 8 columns are mutually exclusive: a word either
// computes, reads, or writes; its stalled cycles land in the matching
// stall column; and IB stall is counted as executions of dedicated
// dispatch locations.
type Class uint8

// Classes of microinstruction.
const (
	ClassCompute  Class = iota // autonomous EBOX operation, no memory reference
	ClassRead                  // D-stream data read (stall cycles = read stall)
	ClassWrite                 // D-stream data write (stall cycles = write stall)
	ClassDispatch              // IB byte request / decode dispatch (a compute cycle)
	ClassIBStall               // dedicated "insufficient bytes" location: its
	// execution count IS the IB stall cycle count (§4.3)
	ClassMarker // counts events that consume no EBOX cycle (used only by
	// the DecodeOverlap ablation's folded dispatch)
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassDispatch:
		return "dispatch"
	case ClassIBStall:
		return "ib-stall"
	case ClassMarker:
		return "marker"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ConstName returns the Go constant name of the row ("RowSimple") — the
// name-space the vaxlint analyzers prove properties in and the one the
// committed latency table (internal/latency) carries, so the dynamic
// cross-check can key measured cycles the same way the static
// derivation does.
func (r Row) ConstName() string {
	switch r {
	case RowDecode:
		return "RowDecode"
	case RowSpec1:
		return "RowSpec1"
	case RowSpec26:
		return "RowSpec26"
	case RowBDisp:
		return "RowBDisp"
	case RowSimple:
		return "RowSimple"
	case RowField:
		return "RowField"
	case RowFloat:
		return "RowFloat"
	case RowCallRet:
		return "RowCallRet"
	case RowSystem:
		return "RowSystem"
	case RowCharacter:
		return "RowCharacter"
	case RowDecimal:
		return "RowDecimal"
	case RowIntExcept:
		return "RowIntExcept"
	case RowMemMgmt:
		return "RowMemMgmt"
	case RowAbort:
		return "RowAbort"
	}
	return fmt.Sprintf("Row(%d)", uint8(r))
}

// ConstName returns the Go constant name of the class ("ClassCompute");
// see Row.ConstName.
func (c Class) ConstName() string {
	switch c {
	case ClassCompute:
		return "ClassCompute"
	case ClassRead:
		return "ClassRead"
	case ClassWrite:
		return "ClassWrite"
	case ClassDispatch:
		return "ClassDispatch"
	case ClassIBStall:
		return "ClassIBStall"
	case ClassMarker:
		return "ClassMarker"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Word is one control-store location.
type Word struct {
	Addr  uint16
	Name  string
	Row   Row
	Class Class
}

// Store is the control-store map. Addresses are allocated sequentially
// from 1 (address 0 is reserved so that a zero µPC is always invalid).
//
// A Store has two phases. While open, Define allocates locations; once
// Seal is called the map is immutable and every read-side method
// (Word, Lookup, MustLookup, Words, Listing) is safe for unsynchronized
// use from any number of goroutines — the property the fleet supervisor
// (internal/farm) relies on to share one control store across thousands
// of concurrently stepping machines instead of building one per machine.
type Store struct {
	words  []Word
	byName map[string]uint16
	sealed bool
}

// NewStore returns an empty control store map.
func NewStore() *Store {
	return &Store{
		words:  []Word{{Addr: 0, Name: "(reserved)", Row: RowAbort, Class: ClassCompute}},
		byName: make(map[string]uint16),
	}
}

// Define allocates a new control-store location. Names must be unique;
// they are structured dot-paths (e.g. "spec1.mode.(Rn)+.read") that the
// reduction engine keys on.
func (s *Store) Define(name string, row Row, class Class) uint16 {
	if s.sealed {
		panic(fmt.Sprintf("ucode: Define(%q) on a sealed control store", name))
	}
	if prev, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("ucode: duplicate microword name %q (already at µPC %#04x)", name, prev))
	}
	if len(s.words) >= StoreSize {
		panic("ucode: control store full")
	}
	if row >= NumRows || class >= NumClasses {
		panic("ucode: bad row/class for " + name)
	}
	addr := uint16(len(s.words))
	s.words = append(s.words, Word{Addr: addr, Name: name, Row: row, Class: class})
	s.byName[name] = addr
	return addr
}

// Seal freezes the store: further Define calls panic, and all read-side
// methods become safe for concurrent use. Sealing twice is a no-op, so a
// package that builds its store in init can seal it from a package-level
// initializer without coordinating with tests that re-run init paths.
func (s *Store) Seal() { s.sealed = true }

// Sealed reports whether the store has been frozen by Seal.
func (s *Store) Sealed() bool { return s.sealed }

// Len returns the number of defined locations (including the reserved
// location 0).
func (s *Store) Len() int { return len(s.words) }

// Word returns the description of a location.
func (s *Store) Word(addr uint16) Word {
	if int(addr) >= len(s.words) {
		return Word{Addr: addr, Name: "(undefined)", Row: RowAbort, Class: ClassCompute}
	}
	return s.words[addr]
}

// Lookup returns the address of a named location.
func (s *Store) Lookup(name string) (uint16, bool) {
	a, ok := s.byName[name]
	return a, ok
}

// MustLookup returns the address of a named location, panicking if absent.
// The panic names the nearest defined microword and its µPC address, since
// the usual cause is a typo in a reduction-engine table.
func (s *Store) MustLookup(name string) uint16 {
	a, ok := s.byName[name]
	if !ok {
		if near, addr, ok := s.nearest(name); ok {
			panic(fmt.Sprintf("ucode: no microword named %q (%d words defined; nearest is %q at µPC %#04x)",
				name, len(s.words), near, addr))
		}
		panic(fmt.Sprintf("ucode: no microword named %q (%d words defined)", name, len(s.words)))
	}
	return a
}

// nearest returns the defined name sharing the longest common prefix with
// name, breaking ties toward the shorter candidate and then toward the
// lexicographically smaller one. Candidates are visited in sorted order,
// never map order, so the panic message of MustLookup is reproducible —
// a diagnostic that changes between runs defeats golden-logging it.
func (s *Store) nearest(name string) (string, uint16, bool) {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	best, bestAddr, bestLen := "", uint16(0), -1
	for _, n := range names {
		l := commonPrefixLen(n, name)
		if l > bestLen || (l == bestLen && len(n) < len(best)) {
			best, bestAddr, bestLen = n, s.byName[n], l
		}
	}
	return best, bestAddr, bestLen >= 0
}

func commonPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Words returns all defined locations in address order. The slice must not
// be modified.
func (s *Store) Words() []Word { return s.words }

// Listing renders the control-store map as a microcode listing: address,
// name, row and class per location — the document the paper's analysts
// worked from when interpreting histograms.
func (s *Store) Listing() string {
	var b strings.Builder
	b.Grow(len(s.words) * 56) // 5+1 addr, 30+1 name, 12+1 row, class, newline
	for _, w := range s.words[1:] {
		writePadded(&b, itox(w.Addr), 5)
		writePadded(&b, w.Name, 30)
		writePadded(&b, w.Row.String(), 12)
		b.WriteString(w.Class.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// writePadded writes s space-padded to n columns plus one separator space,
// without the per-column string reallocation the old pad helper paid.
func writePadded(b *strings.Builder, s string, n int) {
	b.WriteString(s)
	for i := len(s); i < n; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
}

func itox(v uint16) string {
	const digits = "0123456789abcdef"
	out := []byte{'0', '0', '0', '0'}
	for i := 3; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return string(out)
}
