// Package cli holds the error-reporting conventions shared by every
// command in this repository: failures go to stderr, prefixed with the
// command name, and the process exits non-zero. Centralizing the helper
// keeps the seven commands' behavior identical (and testable by grep:
// no command formats its own fatal error).
package cli

import (
	"fmt"
	"os"
)

// Exitf reports a fatal error on stderr as "name: message" and exits
// with the given code.
func Exitf(code int, name, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
	os.Exit(code)
}

// Fatalf is Exitf with the conventional exit code 1.
func Fatalf(name, format string, args ...any) {
	Exitf(1, name, format, args...)
}

// Check is Fatalf on a non-nil error, a no-op otherwise.
func Check(name string, err error) {
	if err != nil {
		Fatalf(name, "%v", err)
	}
}
