// Package paper records the published numbers of Emer & Clark, "A
// Characterization of Processor Performance in the VAX-11/780", ISCA 1984
// — the targets every experiment compares against.
//
// The available text is an OCR scan with some garbled interior cells in
// Tables 5, 8 and 9. Row and column totals and most headline numbers are
// legible; garbled cells are reconstructed from the legible marginals and
// from statements in the prose, and are marked Estimated. The
// reconstruction is validated by TestTable8Balances: every row and column
// sums to its legible total within rounding.
package paper

import (
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// Table1 gives opcode-group frequency in percent of instruction
// executions.
var Table1 = map[vax.Group]float64{
	vax.GroupSimple:    83.60,
	vax.GroupField:     6.92,
	vax.GroupFloat:     3.62,
	vax.GroupCallRet:   3.22,
	vax.GroupSystem:    2.11,
	vax.GroupCharacter: 0.43,
	vax.GroupDecimal:   0.03,
}

// Table2Row is one row of Table 2 (PC-changing instructions).
type Table2Row struct {
	Class    vax.PCClass
	PctAll   float64 // percent of all instructions
	PctTaken float64 // percent that actually branch
}

// Table2 lists the PC-changing classes. The TOTAL row is 38.5% of all
// instructions, 67% taken, 25.7% of all instructions taken.
var Table2 = []Table2Row{
	{vax.PCSimpleCond, 19.3, 56},
	{vax.PCLoop, 4.1, 91},
	{vax.PCLowBit, 2.0, 41},
	{vax.PCSubr, 4.5, 100},
	{vax.PCUncond, 0.3, 100},
	{vax.PCCase, 0.9, 100},
	{vax.PCBitBranch, 4.3, 44},
	{vax.PCProc, 2.4, 100},
	{vax.PCSystem, 0.4, 100},
}

// Table2Total is the TOTAL row of Table 2.
var Table2Total = Table2Row{Class: vax.NumPCClasses, PctAll: 38.5, PctTaken: 67}

// Table 3: specifiers and branch displacements per average instruction.
const (
	Table3FirstSpecs  = 0.726
	Table3OtherSpecs  = 0.758
	Table3BranchDisps = 0.312
)

// Table4Row is one row of the operand-specifier distribution (percent).
type Table4Row struct {
	Label     string
	Spec1     float64
	Spec26    float64
	Estimated bool // true when reconstructed from marginals, not legible
}

// Table4 gives the specifier mode distribution. The total column of the
// paper is the specifier-count-weighted average of the two columns (this
// identity holds for every legible cell). Register, short literal,
// immediate and the SPEC1 displacement cell are legible; the remaining
// memory-mode cells are reconstructed to make each column sum to 100.
var Table4 = []Table4Row{
	{"Register R", 28.7, 52.6, false},
	{"Short literal", 21.1, 10.8, false},
	{"Immediate (PC)+", 3.2, 1.7, false},
	{"Displacement D(R)", 25.0, 19.0, true},
	{"Register deferred (R)", 9.0, 7.0, true},
	{"Autoincrement (R)+", 6.0, 4.0, true},
	{"Disp. deferred @D(R)", 3.0, 2.5, true},
	{"Autodecrement -(R)", 2.0, 1.4, true},
	{"Absolute @#", 1.5, 0.7, true},
	{"Autoinc. deferred @(R)+", 0.5, 0.3, true},
}

// Table4Indexed is the "percent indexed" line.
var Table4Indexed = struct{ Spec1, Spec26, Total float64 }{8.5, 4.2, 6.3}

// Table5Row is one row of Table 5 (D-stream reads and writes per average
// instruction, by source).
type Table5Row struct {
	Label     string
	Reads     float64
	Writes    float64
	Estimated bool // writes column pairing partially reconstructed
}

// Table5 reads column is fully legible (it sums to the legible 0.783);
// the writes column pairing is reconstructed to sum to the legible 0.409.
var Table5 = []Table5Row{
	{"Spec1", 0.306, 0.116, true},
	{"Spec2-6", 0.148, 0.046, true},
	{"Simple", 0.029, 0.033, true},
	{"Field", 0.049, 0.007, true},
	{"Float", 0.000, 0.008, true},
	{"Call/Ret", 0.133, 0.130, false},
	{"System", 0.015, 0.014, true},
	{"Character", 0.039, 0.046, true},
	{"Decimal", 0.001, 0.001, true},
	{"Other", 0.062, 0.008, true},
}

// Table5 totals (legible).
const (
	Table5TotalReads  = 0.783
	Table5TotalWrites = 0.409
)

// Table 6: estimated size of the average instruction.
const (
	Table6SpecBytes  = 1.68 // average encoded specifier size
	Table6InstrBytes = 3.8  // average instruction size
)

// Table 7: average instruction headway between events.
const (
	Table7SoftIntHeadway   = 2539.0
	Table7InterruptHeadway = 637.0
	Table7CtxSwitchHeadway = 6418.0
)

// Table8Row is one row of the average-instruction timing matrix, in
// cycles per average instruction.
type Table8Row struct {
	Compute, Read, RStall, Write, WStall, IBStall float64
	Estimated                                     bool
}

// Total sums the six columns.
func (r Table8Row) Total() float64 {
	return r.Compute + r.Read + r.RStall + r.Write + r.WStall + r.IBStall
}

// Table8 is the paper's central result. Legible anchors: the TOTAL row
// (7.267, 0.783, 0.964, 0.409, 0.450, 0.720 -> CPI 10.593), the Decode,
// Simple, Field, Float and Abort rows, most of Call/Ret and Decimal, the
// row totals of System (0.522), Character (0.506) and Mem Mgmt (0.824),
// and the B-DISP total (0.226). Remaining cells are reconstructed so all
// rows and columns balance (see the package test).
var Table8 = map[ucode.Row]Table8Row{
	ucode.RowDecode:    {1.000, 0, 0, 0, 0, 0.613, false},
	ucode.RowSpec1:     {0.895, 0.306, 0.330, 0.114, 0.135, 0.070, true},
	ucode.RowSpec26:    {1.051, 0.148, 0.166, 0.046, 0.058, 0.018, true},
	ucode.RowBDisp:     {0.221, 0, 0, 0, 0, 0.005, false},
	ucode.RowSimple:    {0.870, 0.029, 0.017, 0.033, 0.027, 0.001, false},
	ucode.RowField:     {0.482, 0.049, 0.058, 0.007, 0.002, 0.002, false},
	ucode.RowFloat:     {0.292, 0.000, 0.000, 0.008, 0.001, 0.001, false},
	ucode.RowCallRet:   {0.937, 0.133, 0.074, 0.130, 0.184, 0.000, true},
	ucode.RowSystem:    {0.419, 0.015, 0.039, 0.014, 0.031, 0.004, true},
	ucode.RowCharacter: {0.337, 0.039, 0.080, 0.046, 0.004, 0.000, true},
	ucode.RowDecimal:   {0.026, 0.001, 0.001, 0.001, 0.001, 0.000, true},
	ucode.RowIntExcept: {0.055, 0.002, 0.004, 0.006, 0.004, 0.000, true},
	ucode.RowMemMgmt:   {0.555, 0.061, 0.195, 0.004, 0.003, 0.006, true},
	ucode.RowAbort:     {0.127, 0, 0, 0, 0, 0, false},
}

// Table8Total is the legible TOTAL row.
var Table8Total = Table8Row{7.267, 0.783, 0.964, 0.409, 0.450, 0.720, false}

// CPI is the paper's headline: cycles per average VAX instruction.
const CPI = 10.593

// Table9 returns the within-group timing (Table 9): the Table 8 execute
// row scaled by the inverse group frequency. This identity holds exactly
// for every legible Table 9 cell (e.g. Call/Ret 1.458/0.0322 = 45.3 vs the
// paper's 45.25), so Table 9 is derived rather than transcribed.
func Table9(g vax.Group) Table8Row {
	var row ucode.Row
	switch g {
	case vax.GroupSimple:
		row = ucode.RowSimple
	case vax.GroupField:
		row = ucode.RowField
	case vax.GroupFloat:
		row = ucode.RowFloat
	case vax.GroupCallRet:
		row = ucode.RowCallRet
	case vax.GroupSystem:
		row = ucode.RowSystem
	case vax.GroupCharacter:
		row = ucode.RowCharacter
	case vax.GroupDecimal:
		row = ucode.RowDecimal
	default:
		return Table8Row{}
	}
	f := Table1[g] / 100
	t8 := Table8[row]
	inv := 1 / f
	return Table8Row{
		Compute: t8.Compute * inv, Read: t8.Read * inv, RStall: t8.RStall * inv,
		Write: t8.Write * inv, WStall: t8.WStall * inv, IBStall: t8.IBStall * inv,
		Estimated: t8.Estimated,
	}
}

// Section 4.1/4.2 implementation-event numbers (from the paper and its
// companion cache study).
const (
	IBRefsPerInstr      = 2.2   // IB cache references per instruction
	IBBytesPerRef       = 1.7   // average bytes delivered per IB reference
	CacheMissPerInstr   = 0.28  // cache read misses per instruction
	CacheMissIStream    = 0.18  //   of which I-stream
	CacheMissDStream    = 0.10  //   of which D-stream
	TBMissPerInstr      = 0.029 // TB misses per instruction
	TBMissDStream       = 0.020
	TBMissIStream       = 0.009
	TBMissServiceCycles = 21.6 // cycles per TB miss service
	TBMissPTEReadStall  = 3.5  // of which read stall on the PTE fetch
	UnalignedPerInstr   = 0.016
	LoopIterations      = 10 // "about 10" iterations per loop (Table 2)
	CharStringBytes     = 40 // average character-string size 36-44 bytes
	CallRetRegs         = 8  // about 8 registers pushed/popped per CALL/RET
)
