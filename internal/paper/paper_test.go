package paper

import (
	"math"
	"testing"

	"vax780/internal/ucode"
	"vax780/internal/vax"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable1SumsTo100(t *testing.T) {
	var sum float64
	for _, pct := range Table1 {
		sum += pct
	}
	// The paper's groups sum to 99.93 (rounding in the original).
	if !near(sum, 100, 0.1) {
		t.Errorf("Table 1 sums to %.2f", sum)
	}
}

func TestTable2TotalConsistent(t *testing.T) {
	var all, taken float64
	for _, row := range Table2 {
		all += row.PctAll
		taken += row.PctAll * row.PctTaken / 100
	}
	if !near(all, Table2Total.PctAll, 0.35) { // paper rows themselves sum to 38.2 vs stated 38.5
		t.Errorf("Table 2 rows sum to %.1f%%, total says %.1f%%", all, Table2Total.PctAll)
	}
	// 67%% of 38.5%% = 25.8 ~ the paper's 25.7.
	if !near(taken, 25.7, 0.5) {
		t.Errorf("taken share %.1f%%, paper says 25.7%%", taken)
	}
}

func TestTable3MatchesTable4Weights(t *testing.T) {
	// Specifiers per instruction: 0.726 + 0.758 = 1.48(4), the number the
	// paper quotes in §3.2.
	if !near(Table3FirstSpecs+Table3OtherSpecs, 1.48, 0.01) {
		t.Errorf("specs/instr = %.3f", Table3FirstSpecs+Table3OtherSpecs)
	}
}

func TestTable4ColumnsSumTo100(t *testing.T) {
	var s1, s26 float64
	for _, row := range Table4 {
		s1 += row.Spec1
		s26 += row.Spec26
	}
	if !near(s1, 100, 0.2) || !near(s26, 100, 0.2) {
		t.Errorf("Table 4 columns sum to %.1f / %.1f", s1, s26)
	}
}

func TestTable4TotalIdentity(t *testing.T) {
	// The paper's total column is the weighted average of SPEC1 and
	// SPEC2-6; check the legible anchors.
	w1 := Table3FirstSpecs / (Table3FirstSpecs + Table3OtherSpecs)
	w2 := 1 - w1
	anchors := map[string]float64{
		"Register R":      41.0,
		"Short literal":   15.8,
		"Immediate (PC)+": 2.4,
	}
	for _, row := range Table4 {
		want, ok := anchors[row.Label]
		if !ok {
			continue
		}
		got := row.Spec1*w1 + row.Spec26*w2
		if !near(got, want, 0.5) {
			t.Errorf("%s: weighted %.1f, paper total %.1f", row.Label, got, want)
		}
	}
}

func TestTable5SumsToTotals(t *testing.T) {
	var r, w float64
	for _, row := range Table5 {
		r += row.Reads
		w += row.Writes
	}
	if !near(r, Table5TotalReads, 0.002) {
		t.Errorf("Table 5 reads sum %.3f, total %.3f", r, Table5TotalReads)
	}
	if !near(w, Table5TotalWrites, 0.002) {
		t.Errorf("Table 5 writes sum %.3f, total %.3f", w, Table5TotalWrites)
	}
	// ~2:1 read:write ratio (§3.3.1).
	if ratio := Table5TotalReads / Table5TotalWrites; !near(ratio, 2, 0.15) {
		t.Errorf("read:write ratio %.2f", ratio)
	}
}

func TestTable8RowsAndColumnsBalance(t *testing.T) {
	var col Table8Row
	var grand float64
	for row := ucode.Row(0); row < ucode.NumRows; row++ {
		r, ok := Table8[row]
		if !ok {
			t.Fatalf("Table 8 missing row %v", row)
		}
		col.Compute += r.Compute
		col.Read += r.Read
		col.RStall += r.RStall
		col.Write += r.Write
		col.WStall += r.WStall
		col.IBStall += r.IBStall
		grand += r.Total()
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"compute", col.Compute, Table8Total.Compute},
		{"read", col.Read, Table8Total.Read},
		{"r-stall", col.RStall, Table8Total.RStall},
		{"write", col.Write, Table8Total.Write},
		{"w-stall", col.WStall, Table8Total.WStall},
		{"ib-stall", col.IBStall, Table8Total.IBStall},
		{"grand total", grand, CPI},
	}
	for _, c := range checks {
		if !near(c.got, c.want, 0.012) {
			t.Errorf("Table 8 %s column sums to %.3f, total row says %.3f", c.name, c.got, c.want)
		}
	}
}

func TestTable8AnchorsLegible(t *testing.T) {
	// Decode row is fully legible.
	d := Table8[ucode.RowDecode]
	if d.Compute != 1.000 || d.IBStall != 0.613 || !near(d.Total(), 1.613, 1e-9) {
		t.Errorf("Decode row = %+v", d)
	}
	if !near(Table8[ucode.RowSimple].Total(), 0.977, 0.001) {
		t.Errorf("Simple total = %.3f", Table8[ucode.RowSimple].Total())
	}
	if !near(Table8[ucode.RowCallRet].Total(), 1.458, 0.001) {
		t.Errorf("Call/Ret total = %.3f", Table8[ucode.RowCallRet].Total())
	}
	if !near(Table8[ucode.RowMemMgmt].Total(), 0.824, 0.001) {
		t.Errorf("MemMgmt total = %.3f", Table8[ucode.RowMemMgmt].Total())
	}
	// "Memory management has more than 3 times as many read-stalled
	// cycles as reads."
	mm := Table8[ucode.RowMemMgmt]
	if mm.RStall < 3*mm.Read {
		t.Errorf("MemMgmt RStall %.3f not > 3x reads %.3f", mm.RStall, mm.Read)
	}
}

func TestTable9LegibleAnchors(t *testing.T) {
	// Table 9 anchors from the paper: Call/Ret ~45.25 total, Simple ~1.17,
	// Field ~8.67, Float ~8.33, Character ~117, Decimal ~101.
	anchors := map[vax.Group]float64{
		vax.GroupSimple:    1.17,
		vax.GroupField:     8.67,
		vax.GroupFloat:     8.33,
		vax.GroupCallRet:   45.25,
		vax.GroupCharacter: 117.0,
		vax.GroupDecimal:   101.0,
	}
	for g, want := range anchors {
		got := Table9(g).Total()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("Table 9 %v total = %.2f, paper %.2f", g, got, want)
		}
	}
	// Two orders of magnitude between Simple and Decimal/Character (§5).
	if Table9(vax.GroupCharacter).Total()/Table9(vax.GroupSimple).Total() < 50 {
		t.Error("Table 9 should span two orders of magnitude")
	}
}

func TestHalfTimeInDecodeAndSpecs(t *testing.T) {
	// "The TOTAL column shows that almost half of all the time went into
	// decode and specifier processing, counting their stalls."
	share := (Table8[ucode.RowDecode].Total() + Table8[ucode.RowSpec1].Total() +
		Table8[ucode.RowSpec26].Total() + Table8[ucode.RowBDisp].Total()) / CPI
	if share < 0.40 || share > 0.55 {
		t.Errorf("decode+spec share = %.2f, paper says almost half", share)
	}
}

func TestTBMissNumbersConsistent(t *testing.T) {
	if !near(TBMissDStream+TBMissIStream, TBMissPerInstr, 1e-9) {
		t.Error("TB miss split inconsistent")
	}
	// Mem Mgmt row total ~ TB miss rate x service cycles + alignment.
	est := TBMissPerInstr * TBMissServiceCycles
	if !near(est, Table8[ucode.RowMemMgmt].Total(), 0.21) {
		t.Errorf("TB miss cost %.3f vs MemMgmt row %.3f", est, Table8[ucode.RowMemMgmt].Total())
	}
}
