package core

import (
	"sort"

	"vax780/internal/ucode"
)

// HotSpot is one control-store location's share of processor time — the
// kind of ad-hoc question the paper says the histogram database answers
// "simply by doing additional interpretation of the raw histogram data"
// (§2.2).
type HotSpot struct {
	Addr    uint16
	Name    string
	Row     ucode.Row
	Class   ucode.Class
	Execs   uint64  // non-stalled executions
	Stalls  uint64  // stalled cycles at this location
	Cycles  uint64  // Execs + Stalls (classified time)
	Share   float64 // fraction of all classified cycles
	PerMiss float64 // average stall per execution (stall behaviour)
}

// HotSpots returns the top-n control-store locations by total cycles.
// Marker locations (zero-cycle events) are excluded.
func HotSpots(h *Histogram, cs *ucode.Store, n int) []HotSpot {
	var total uint64
	spots := make([]HotSpot, 0, 64)
	for _, w := range cs.Words() {
		if w.Class == ucode.ClassMarker {
			continue
		}
		c := h.Counts[w.Addr]
		s := h.Stalls[w.Addr]
		if c == 0 && s == 0 {
			continue
		}
		total += c + s
		hs := HotSpot{
			Addr: w.Addr, Name: w.Name, Row: w.Row, Class: w.Class,
			Execs: c, Stalls: s, Cycles: c + s,
		}
		if c > 0 {
			hs.PerMiss = float64(s) / float64(c)
		}
		spots = append(spots, hs)
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Cycles != spots[j].Cycles {
			return spots[i].Cycles > spots[j].Cycles
		}
		return spots[i].Addr < spots[j].Addr
	})
	if n > 0 && len(spots) > n {
		spots = spots[:n]
	}
	for i := range spots {
		if total > 0 {
			spots[i].Share = float64(spots[i].Cycles) / float64(total)
		}
	}
	return spots
}

// StallSpots returns the top-n locations by stalled cycles — where the
// processor waits.
func StallSpots(h *Histogram, cs *ucode.Store, n int) []HotSpot {
	spots := HotSpots(h, cs, 0)
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Stalls != spots[j].Stalls {
			return spots[i].Stalls > spots[j].Stalls
		}
		return spots[i].Addr < spots[j].Addr
	})
	if n > 0 && len(spots) > n {
		spots = spots[:n]
	}
	return spots
}
