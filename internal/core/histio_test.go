package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strconv"
	"testing"

	"vax780/internal/ucode"
)

func testHist() *Histogram {
	h := &Histogram{}
	for i := 0; i < ucode.StoreSize; i += 97 {
		h.Counts[i] = uint64(i)*3 + 1
		h.Stalls[i] = uint64(i) * 2
	}
	h.markOverflow(42)
	return h
}

func TestHistogramSaveLoadRoundtrip(t *testing.T) {
	h := testHist()
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadHistogram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadHistogram: %v", err)
	}
	if *got != *h {
		t.Fatalf("roundtrip changed the histogram")
	}
	if !got.OverflowedAt(42) {
		t.Fatalf("overflow mark lost in roundtrip")
	}
}

func TestHistogramLegacyFormatStillLoads(t *testing.T) {
	h := testHist()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatalf("gob: %v", err)
	}
	got, err := LoadHistogram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if *got != *h {
		t.Fatalf("legacy roundtrip changed the histogram")
	}
}

// TestHistogramCorruptionMatrix damages a saved histogram every way a
// disk or transport can — truncation at every eighth of the file, a
// padding byte, and a flipped byte in each region (header, body,
// trailer) — and requires every case to fail with ErrCorruptHistogram
// and yield no histogram.
func TestHistogramCorruptionMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := testHist().Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data := buf.Bytes()

	mustCorrupt := func(name string, b []byte) {
		t.Helper()
		h, err := LoadHistogram(bytes.NewReader(b))
		if !errors.Is(err, ErrCorruptHistogram) {
			t.Errorf("%s: want ErrCorruptHistogram, got %v", name, err)
		}
		if h != nil {
			t.Errorf("%s: corrupt load returned a histogram", name)
		}
	}

	for i := 0; i <= 7; i++ {
		cut := len(data) * i / 8
		mustCorrupt("truncated to "+strconv.Itoa(cut)+" bytes", data[:cut])
	}
	mustCorrupt("one padding byte", append(append([]byte(nil), data...), 0))

	flip := func(off int) []byte {
		b := append([]byte(nil), data...)
		b[off] ^= 0x5a
		return b
	}
	for off := 0; off < histHeaderLen; off++ {
		mustCorrupt("header flip at "+strconv.Itoa(off), flip(off))
	}
	bodyLen := len(data) - histHeaderLen - histTrailerLen
	for off := histHeaderLen; off < histHeaderLen+bodyLen; off += bodyLen/32 + 1 {
		mustCorrupt("body flip at "+strconv.Itoa(off), flip(off))
	}
	for off := len(data) - histTrailerLen; off < len(data); off++ {
		mustCorrupt("trailer flip at "+strconv.Itoa(off), flip(off))
	}
}
