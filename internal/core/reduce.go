package core

import (
	"fmt"

	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// ColumnSet is one row of the paper's Table 8: cycles per average
// instruction in each of the six mutually-exclusive categories.
type ColumnSet struct {
	Compute float64
	Read    float64
	RStall  float64
	Write   float64
	WStall  float64
	IBStall float64
}

// Total sums the six categories.
func (c ColumnSet) Total() float64 {
	return c.Compute + c.Read + c.RStall + c.Write + c.WStall + c.IBStall
}

func (c *ColumnSet) add(o ColumnSet) {
	c.Compute += o.Compute
	c.Read += o.Read
	c.RStall += o.RStall
	c.Write += o.Write
	c.WStall += o.WStall
	c.IBStall += o.IBStall
}

func (c ColumnSet) scale(f float64) ColumnSet {
	return ColumnSet{c.Compute * f, c.Read * f, c.RStall * f, c.Write * f, c.WStall * f, c.IBStall * f}
}

// PCClassStat is one row of Table 2.
type PCClassStat struct {
	Entries uint64 // executions of instructions in the class
	Taken   uint64 // executions that actually changed the PC
}

// PctTaken returns the percentage of executions that branched.
func (p PCClassStat) PctTaken() float64 {
	if p.Entries == 0 {
		return 0
	}
	return 100 * float64(p.Taken) / float64(p.Entries)
}

// SpecCategory aggregates addressing modes into the paper's Table 4 rows.
type SpecCategory int

// Table 4 rows.
const (
	CatRegister SpecCategory = iota
	CatLiteral
	CatImmediate
	CatDisplacement
	CatRegDeferred
	CatAutoInc
	CatDispDeferred
	CatAutoDec
	CatAbsolute
	CatAutoIncDef
	NumSpecCategories
)

func (c SpecCategory) String() string {
	switch c {
	case CatRegister:
		return "Register R"
	case CatLiteral:
		return "Short literal"
	case CatImmediate:
		return "Immediate (PC)+"
	case CatDisplacement:
		return "Displacement D(R)"
	case CatRegDeferred:
		return "Register deferred (R)"
	case CatAutoInc:
		return "Autoincrement (R)+"
	case CatDispDeferred:
		return "Disp. deferred @D(R)"
	case CatAutoDec:
		return "Autodecrement -(R)"
	case CatAbsolute:
		return "Absolute @#"
	case CatAutoIncDef:
		return "Autoinc. deferred @(R)+"
	}
	return fmt.Sprintf("SpecCategory(%d)", int(c))
}

// categoryOf maps a decoded addressing mode to its Table 4 row and its
// encoded size in bytes (mode byte + constant bytes; immediates assume the
// longword data path, as the paper's estimate does).
func categoryOf(m vax.AddrMode) (SpecCategory, float64) {
	switch m {
	case vax.ModeLiteral:
		return CatLiteral, 1
	case vax.ModeRegister:
		return CatRegister, 1
	case vax.ModeRegDeferred:
		return CatRegDeferred, 1
	case vax.ModeAutoInc:
		return CatAutoInc, 1
	case vax.ModeAutoDec:
		return CatAutoDec, 1
	case vax.ModeAutoIncDef:
		return CatAutoIncDef, 1
	case vax.ModeImmediate:
		return CatImmediate, 5
	case vax.ModeAbsolute:
		return CatAbsolute, 5
	case vax.ModeByteDisp:
		return CatDisplacement, 2
	case vax.ModeWordDisp:
		return CatDisplacement, 3
	case vax.ModeLongDisp:
		return CatDisplacement, 5
	case vax.ModeByteDispDef:
		return CatDispDeferred, 2
	case vax.ModeWordDispDef:
		return CatDispDeferred, 3
	case vax.ModeLongDispDef:
		return CatDispDeferred, 5
	}
	return CatRegister, 1
}

// SpecifierStats covers Tables 3 and 4.
type SpecifierStats struct {
	Spec1      uint64 // first-specifier dispatches
	Spec26     uint64 // other-specifier dispatches
	BranchDisp uint64 // executions of displacement-bearing instructions
	Indexed    uint64 // indexed specifiers

	ByCategory [NumSpecCategories]struct {
		Spec1  uint64
		Spec26 uint64
	}

	// EstSpecBytes is the frequency-weighted average encoded specifier
	// size (the paper's 1.68 bytes).
	EstSpecBytes float64
}

// MemOpRow is one row of Table 5: reads and writes per average instruction
// attributed to a source.
type MemOpRow struct {
	Label  string
	Reads  float64
	Writes float64
}

// HeadwayStats is Table 7: average instruction headway between events.
type HeadwayStats struct {
	SoftIntRequests uint64
	Interrupts      uint64
	CtxSwitches     uint64
	Instructions    uint64
}

// Headway returns instructions per event (0 when the event never fired).
func headway(instr, events uint64) float64 {
	if events == 0 {
		return 0
	}
	return float64(instr) / float64(events)
}

// SoftIntHeadway returns instructions per software-interrupt request.
func (h HeadwayStats) SoftIntHeadway() float64 { return headway(h.Instructions, h.SoftIntRequests) }

// InterruptHeadway returns instructions per delivered interrupt.
func (h HeadwayStats) InterruptHeadway() float64 { return headway(h.Instructions, h.Interrupts) }

// CtxSwitchHeadway returns instructions per context switch.
func (h HeadwayStats) CtxSwitchHeadway() float64 { return headway(h.Instructions, h.CtxSwitches) }

// TBMissStats is the §4.2 translation-buffer characterization.
type TBMissStats struct {
	DStreamMisses uint64
	IStreamMisses uint64
	ServiceCycles uint64 // all cycles in the miss routine, incl. read stalls
	PTEReadStalls uint64 // read-stall cycles on PTE fetches
}

// MissesPerInstr returns total TB misses per instruction.
func (t TBMissStats) PerInstr(instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(t.DStreamMisses+t.IStreamMisses) / float64(instr)
}

// CyclesPerMiss returns the average miss service time.
func (t TBMissStats) CyclesPerMiss() float64 {
	n := t.DStreamMisses + t.IStreamMisses
	if n == 0 {
		return 0
	}
	return float64(t.ServiceCycles) / float64(n)
}

// Report is the full reduction of one histogram: every table of the paper.
type Report struct {
	Instructions uint64
	Cycles       uint64 // classified cycles (executions + stalls)

	// Timing is Table 8: rows by ucode.Row, in cycles per average
	// instruction; TimingTotal is its TOTAL row. CPI is TimingTotal.Total().
	Timing      [ucode.NumRows]ColumnSet
	TimingTotal ColumnSet

	// Groups is Table 1: instruction executions per opcode group.
	Groups [vax.NumGroups]uint64

	// PCClasses is Table 2 (index by vax.PCClass; PCNone unused).
	PCClasses [vax.NumPCClasses]PCClassStat

	// Spec covers Tables 3 and 4.
	Spec SpecifierStats

	// MemOps is Table 5.
	MemOps []MemOpRow

	// Headway is Table 7.
	Headway HeadwayStats

	// TBMiss is §4.2.
	TBMiss TBMissStats
}

// CPI returns cycles per average instruction.
func (r *Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// GroupFreq returns a group's share of instruction executions (0..1).
func (r *Report) GroupFreq(g vax.Group) float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Groups[g]) / float64(r.Instructions)
}

// SpecsPerInstr returns Table 3's specifier rates.
func (r *Report) SpecsPerInstr() (spec1, spec26, bdisp float64) {
	if r.Instructions == 0 {
		return
	}
	n := float64(r.Instructions)
	return float64(r.Spec.Spec1) / n, float64(r.Spec.Spec26) / n, float64(r.Spec.BranchDisp) / n
}

// EstInstrBytes returns Table 6's estimated average instruction size:
// one opcode byte, the specifier bytes, and one byte per branch
// displacement (the paper's estimate).
func (r *Report) EstInstrBytes() float64 {
	if r.Instructions == 0 {
		return 0
	}
	n := float64(r.Instructions)
	specs := float64(r.Spec.Spec1+r.Spec.Spec26) / n
	return 1 + specs*r.Spec.EstSpecBytes + float64(r.Spec.BranchDisp)/n*1.0
}

// WithinGroup returns Table 9: the execute-phase cycles per average
// instruction *of that group* (Table 8's execute rows divided by the
// group's frequency).
func (r *Report) WithinGroup(g vax.Group) ColumnSet {
	if r.Groups[g] == 0 {
		return ColumnSet{}
	}
	er, ok := execRowOf(g)
	if !ok {
		return ColumnSet{}
	}
	row := r.Timing[er]
	return row.scale(float64(r.Instructions) / float64(r.Groups[g]))
}

// execRowOf maps an opcode group to its Table 8 execute row. The second
// result is false for values that are not opcode groups.
func execRowOf(g vax.Group) (ucode.Row, bool) {
	switch g {
	case vax.GroupSimple:
		return ucode.RowSimple, true
	case vax.GroupField:
		return ucode.RowField, true
	case vax.GroupFloat:
		return ucode.RowFloat, true
	case vax.GroupCallRet:
		return ucode.RowCallRet, true
	case vax.GroupSystem:
		return ucode.RowSystem, true
	case vax.GroupCharacter:
		return ucode.RowCharacter, true
	case vax.GroupDecimal:
		return ucode.RowDecimal, true
	}
	return 0, false
}

// groupOfRow inverts execRowOf for rows that are execute rows.
func groupOfRow(row ucode.Row) (vax.Group, bool) {
	switch row {
	case ucode.RowSimple:
		return vax.GroupSimple, true
	case ucode.RowField:
		return vax.GroupField, true
	case ucode.RowFloat:
		return vax.GroupFloat, true
	case ucode.RowCallRet:
		return vax.GroupCallRet, true
	case ucode.RowSystem:
		return vax.GroupSystem, true
	case ucode.RowCharacter:
		return vax.GroupCharacter, true
	case ucode.RowDecimal:
		return vax.GroupDecimal, true
	}
	return 0, false
}

// pcClassWords maps each Table 2 class to the control-store locations
// whose execution counts give its entry and taken counts. The BRB/BRW
// grouping with simple conditionals reproduces the paper's
// microcode-sharing artifact.
var pcClassWords = map[vax.PCClass]struct {
	entries []string
	taken   []string
	hasDisp bool
}{
	vax.PCSimpleCond: {[]string{"exec.br.cond.entry"}, []string{"exec.br.cond.taken"}, true},
	vax.PCLoop:       {[]string{"exec.br.loop.entry"}, []string{"exec.br.loop.taken"}, true},
	vax.PCLowBit:     {[]string{"exec.br.lowbit.entry"}, []string{"exec.br.lowbit.taken"}, true},
	vax.PCSubr: {
		[]string{"exec.br.bsb.entry", "exec.br.jsb.entry", "exec.br.rsb.entry"},
		[]string{"exec.br.bsb.taken", "exec.br.jsb.taken", "exec.br.rsb.taken"},
		false, // only BSBx carries a displacement; counted separately below
	},
	vax.PCUncond:    {[]string{"exec.br.jmp.entry"}, []string{"exec.br.jmp.taken"}, false},
	vax.PCCase:      {[]string{"exec.br.case.entry"}, []string{"exec.br.case.taken"}, false},
	vax.PCBitBranch: {[]string{"exec.bb.entry"}, []string{"exec.bb.taken"}, true},
	vax.PCProc: {
		[]string{"exec.call.entry", "exec.ret.entry"},
		[]string{"exec.call.taken", "exec.ret.taken"},
		false,
	},
	vax.PCSystem: {
		[]string{"exec.sys.chm.entry", "exec.sys.rei.entry"},
		[]string{"exec.sys.chm.taken", "exec.sys.rei.taken"},
		false,
	},
}

// Reduce interprets a raw histogram against a control-store map,
// producing the paper's tables. This is the paper's "additional
// interpretation of the raw histogram data" (§2.2), automated.
func Reduce(h *Histogram, cs *ucode.Store) *Report {
	r := &Report{}
	at := func(name string) (uint64, uint64) {
		addr, ok := cs.Lookup(name)
		if !ok {
			return 0, 0
		}
		return h.Counts[addr], h.Stalls[addr]
	}
	count := func(name string) uint64 { c, _ := at(name); return c }

	r.Instructions = count("decode.ird") + count("decode.ird.folded")
	// Classified cycles exclude marker locations (zero-cycle events used
	// by the DecodeOverlap ablation).
	for _, w := range cs.Words() {
		if w.Class == ucode.ClassMarker {
			continue
		}
		r.Cycles += h.Counts[w.Addr] + h.Stalls[w.Addr]
	}
	instr := float64(r.Instructions)
	if instr == 0 {
		instr = 1 // avoid dividing by zero; all rates become absolute counts
	}

	// ---- Table 8: classify every location by (row, class) -------------
	var memReads, memWrites [ucode.NumRows]uint64
	for _, w := range cs.Words() {
		c := h.Counts[w.Addr]
		s := h.Stalls[w.Addr]
		if c == 0 && s == 0 {
			continue
		}
		col := &r.Timing[w.Row]
		switch w.Class {
		case ucode.ClassCompute, ucode.ClassDispatch:
			col.Compute += float64(c) / instr
		case ucode.ClassRead:
			col.Read += float64(c) / instr
			col.RStall += float64(s) / instr
			memReads[w.Row] += c
		case ucode.ClassWrite:
			col.Write += float64(c) / instr
			col.WStall += float64(s) / instr
			memWrites[w.Row] += c
		case ucode.ClassIBStall:
			col.IBStall += float64(c) / instr
		case ucode.ClassMarker:
			// Event count only; no cycles.
		}
	}
	for row := ucode.Row(0); row < ucode.NumRows; row++ {
		r.TimingTotal.add(r.Timing[row])
	}

	// ---- Table 1: group execution counts from execute-row entry words --
	for _, w := range cs.Words() {
		if g, ok := groupOfRow(w.Row); ok && isEntryWord(w.Name) {
			r.Groups[g] += h.Counts[w.Addr]
		}
	}

	// ---- Table 2: PC-changing classes ----------------------------------
	for class, words := range pcClassWords {
		var st PCClassStat
		for _, n := range words.entries {
			st.Entries += count(n)
		}
		for _, n := range words.taken {
			st.Taken += count(n)
		}
		r.PCClasses[class] = st
		if words.hasDisp {
			r.Spec.BranchDisp += st.Entries
		}
	}
	// BSBB/BSBW carry displacements; JSB/RSB do not.
	r.Spec.BranchDisp += count("exec.br.bsb.entry")

	// ---- Tables 3, 4: specifier dispatch counts ------------------------
	var weightedBytes float64
	for mode := 0; mode < vax.NumAddrModes; mode++ {
		ms := vax.AddrMode(mode).String()
		cat, bytes := categoryOf(vax.AddrMode(mode))
		c1 := count("spec1.disp." + ms)
		c2 := count("spec26.disp." + ms)
		r.Spec.Spec1 += c1
		r.Spec.Spec26 += c2
		r.Spec.ByCategory[cat].Spec1 += c1
		r.Spec.ByCategory[cat].Spec26 += c2
		weightedBytes += bytes * float64(c1+c2)
	}
	r.Spec.Indexed = count("spec26.index") + count("spec1.index")
	// An index prefix adds one byte to the specifier it decorates.
	weightedBytes += float64(r.Spec.Indexed)
	if total := r.Spec.Spec1 + r.Spec.Spec26; total > 0 {
		r.Spec.EstSpecBytes = weightedBytes / float64(total)
	}

	// ---- Table 5: reads/writes per instruction by source ----------------
	addRow := func(label string, rows ...ucode.Row) {
		var rd, wr uint64
		for _, row := range rows {
			rd += memReads[row]
			wr += memWrites[row]
		}
		r.MemOps = append(r.MemOps, MemOpRow{
			Label:  label,
			Reads:  float64(rd) / instr,
			Writes: float64(wr) / instr,
		})
	}
	addRow("Spec1", ucode.RowSpec1)
	addRow("Spec2-6", ucode.RowSpec26)
	addRow("Simple", ucode.RowSimple)
	addRow("Field", ucode.RowField)
	addRow("Float", ucode.RowFloat)
	addRow("Call/Ret", ucode.RowCallRet)
	addRow("System", ucode.RowSystem)
	addRow("Character", ucode.RowCharacter)
	addRow("Decimal", ucode.RowDecimal)
	addRow("Other", ucode.RowDecode, ucode.RowBDisp, ucode.RowIntExcept, ucode.RowMemMgmt, ucode.RowAbort)

	// ---- Table 7: headways ----------------------------------------------
	r.Headway = HeadwayStats{
		SoftIntRequests: count("exec.sys.mtpr.sirr"),
		Interrupts:      count("int.irq.entry"),
		CtxSwitches:     count("exec.sys.ldpctx.entry"),
		Instructions:    r.Instructions,
	}

	// ---- §4.2: TB misses --------------------------------------------------
	r.TBMiss.DStreamMisses = count("mm.tbmiss.d.entry")
	r.TBMiss.IStreamMisses = count("mm.tbmiss.i.entry")
	for _, n := range []string{"mm.tbmiss.d.entry", "mm.tbmiss.i.entry", "mm.tbmiss.work", "mm.tbmiss.read", "mm.tbmiss.done"} {
		c, s := at(n)
		r.TBMiss.ServiceCycles += c + s
	}
	// Count each trap's abort cycle toward the service time, as the paper
	// does (21.6 cycles per miss includes the trap overhead).
	r.TBMiss.ServiceCycles += r.TBMiss.DStreamMisses + r.TBMiss.IStreamMisses
	_, pteStalls := at("mm.tbmiss.read")
	r.TBMiss.PTEReadStalls = pteStalls

	return r
}

// isEntryWord reports whether a location name marks the once-per-
// instruction entry of an execute routine.
func isEntryWord(name string) bool {
	const suffix = ".entry"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}
