// Package core implements the paper's primary contribution: the micro-PC
// histogram monitor (§2.2) and the data-reduction engine that interprets a
// raw histogram — using knowledge of the microcode map — into every table
// of Emer & Clark's VAX-11/780 characterization.
//
// The Monitor mirrors the authors' hardware: a 16,000-bucket count board
// keeping, per control-store location, one count of non-stalled
// microinstruction executions and one count of read-/write-stalled cycles;
// IB stall is counted as executions of dedicated dispatch locations. The
// board is passive (it never perturbs the machine being measured) and is
// driven by a command interface equivalent to the original's Unibus
// commands: start, stop, clear, read.
package core

import (
	"vax780/internal/cpu"
	"vax780/internal/ucode"
)

// Monitor is the µPC histogram board.
type Monitor struct {
	hist      Histogram
	running   bool
	overflow  bool
	maxBucket uint64 // counter capacity; 0 means unbounded
}

var _ cpu.Probe = (*Monitor)(nil)

// NewMonitor returns a stopped, cleared monitor.
//
// The real board's counters had capacity for 1-2 hours of heavy processing
// (§2.2); pass a nonzero bucket capacity to model that and detect
// overflow.
func NewMonitor() *Monitor { return &Monitor{} }

// SetCounterCapacity sets the per-bucket counter capacity (0 = unbounded).
func (mo *Monitor) SetCounterCapacity(max uint64) { mo.maxBucket = max }

// Start begins collection (Unibus "start data collection").
func (mo *Monitor) Start() { mo.running = true }

// Stop halts collection. Already-collected counts remain readable.
func (mo *Monitor) Stop() { mo.running = false }

// Running reports whether the board is collecting.
func (mo *Monitor) Running() bool { return mo.running }

// Clear zeroes all count buckets.
func (mo *Monitor) Clear() {
	mo.hist = Histogram{}
	mo.overflow = false
}

// Overflowed reports whether any bucket hit the configured capacity.
func (mo *Monitor) Overflowed() bool { return mo.overflow }

// Count implements cpu.Probe: n executed cycles at a location.
func (mo *Monitor) Count(upc uint16, n uint64) {
	if !mo.running {
		return
	}
	mo.hist.Counts[upc] = mo.bump(upc, mo.hist.Counts[upc], n)
}

// Stall implements cpu.Probe: n stalled cycles at a location.
func (mo *Monitor) Stall(upc uint16, n uint64) {
	if !mo.running {
		return
	}
	mo.hist.Stalls[upc] = mo.bump(upc, mo.hist.Stalls[upc], n)
}

// bump adds n to a bucket counter with saturate-and-flag degradation: a
// counter that reaches the configured capacity pins there and marks the
// bucket overflowed, so a too-long run yields a histogram that is wrong
// only in known places — never a wrapped (silently corrupt) count.
func (mo *Monitor) bump(upc uint16, cur, n uint64) uint64 {
	v := cur + n
	if mo.maxBucket != 0 && v >= mo.maxBucket {
		mo.overflow = true
		mo.hist.markOverflow(upc)
		v = mo.maxBucket
	}
	return v
}

// ReadBucket reads one bucket's two counters (Unibus "read").
func (mo *Monitor) ReadBucket(addr uint16) (count, stall uint64) {
	return mo.hist.Counts[addr], mo.hist.Stalls[addr]
}

// Snapshot copies the collected histogram.
func (mo *Monitor) Snapshot() *Histogram {
	h := mo.hist
	return &h
}

// Histogram is the raw data product of a measurement run: two counters per
// control-store location. Histograms from separate runs can be summed —
// the paper reports "the composite of all five, that is, the sum of the
// five UPC histograms" (§2.2).
type Histogram struct {
	Counts [ucode.StoreSize]uint64
	Stalls [ucode.StoreSize]uint64
	// Over is a per-bucket overflow bitmap: bit upc%64 of word upc/64 is
	// set when either counter of that location saturated at the monitor's
	// capacity. Gob encodes it with the counters, so the degradation marks
	// survive save/load and histogram summation.
	Over [ucode.StoreSize / 64]uint64
}

func (h *Histogram) markOverflow(upc uint16) {
	h.Over[upc/64] |= 1 << (upc % 64)
}

// OverflowedAt reports whether the bucket at upc saturated.
func (h *Histogram) OverflowedAt(upc uint16) bool {
	return h.Over[upc/64]&(1<<(upc%64)) != 0
}

// OverflowCount returns the number of saturated buckets.
func (h *Histogram) OverflowCount() int {
	n := 0
	for _, w := range h.Over {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Add accumulates another histogram into h. Overflow marks are sticky:
// a sum involving a saturated bucket is itself marked saturated there.
func (h *Histogram) Add(other *Histogram) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
		h.Stalls[i] += other.Stalls[i]
	}
	for i := range h.Over {
		h.Over[i] |= other.Over[i]
	}
}

// TotalCycles returns the total classified cycles (executions + stalls).
func (h *Histogram) TotalCycles() uint64 {
	var t uint64
	for i := range h.Counts {
		t += h.Counts[i] + h.Stalls[i]
	}
	return t
}

// MonitorState is the serialized state of the monitor board, for the
// checkpoint/resume path (internal/checkpoint): the collected histogram
// plus the board's control state, so a resumed run keeps counting exactly
// where the interrupted one stopped.
type MonitorState struct {
	Hist      Histogram
	Running   bool
	Overflow  bool
	MaxBucket uint64
}

// ExportState captures the board state (the histogram is copied).
func (mo *Monitor) ExportState() MonitorState {
	return MonitorState{
		Hist:      mo.hist,
		Running:   mo.running,
		Overflow:  mo.overflow,
		MaxBucket: mo.maxBucket,
	}
}

// ImportState restores a captured board state.
func (mo *Monitor) ImportState(st MonitorState) {
	mo.hist = st.Hist
	mo.running = st.Running
	mo.overflow = st.Overflow
	mo.maxBucket = st.MaxBucket
}
