package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vax780/internal/asm"
	"vax780/internal/cpu"
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// runMonitored assembles and runs src at 0x1000 under a collecting monitor.
func runMonitored(t *testing.T, src string) (*cpu.Machine, *Monitor) {
	t.Helper()
	im, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := cpu.New(cpu.Config{MemBytes: 1 << 20})
	mo := NewMonitor()
	mo.Start()
	m.AttachProbe(mo)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	res := m.Run(5_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	return m, mo
}

const mixedProgram = `
	MOVL	#20, R7
loop:	MOVL	#0x4000, R8
	MOVL	(R8), R9
	ADDL2	#1, (R8)
	CMPL	R9, #5
	BLSS	skip
	MULL3	#3, R9, R10
skip:	MOVC3	#9, src, dst
	PUSHL	#7
	CALLS	#1, fn
	SOBGTR	R7, loop
	HALT
fn:	.word	0x000C		; save R2, R3
	MOVL	4(AP), R2
	EXTZV	#0, #4, R2, R3
	RET
src:	.ascii	"abcdefghi"
dst:	.space	12
`

func TestMonitorCycleConservation(t *testing.T) {
	m, mo := runMonitored(t, mixedProgram)
	h := mo.Snapshot()
	if h.TotalCycles() != m.Cycle() {
		t.Errorf("histogram %d != machine cycles %d", h.TotalCycles(), m.Cycle())
	}
}

func TestReduceInstructionAndCPI(t *testing.T) {
	m, mo := runMonitored(t, mixedProgram)
	r := Reduce(mo.Snapshot(), cpu.CS)
	if r.Instructions != m.Instructions() {
		t.Errorf("instructions = %d, want %d", r.Instructions, m.Instructions())
	}
	if r.Cycles != m.Cycle() {
		t.Errorf("cycles = %d, want %d", r.Cycles, m.Cycle())
	}
	// Table 8's TOTAL must equal CPI.
	if diff := r.TimingTotal.Total() - r.CPI(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Table 8 total %.6f != CPI %.6f", r.TimingTotal.Total(), r.CPI())
	}
	if r.CPI() < 3 || r.CPI() > 40 {
		t.Errorf("CPI = %.2f implausible", r.CPI())
	}
}

func TestReduceGroupCounts(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	r := Reduce(mo.Snapshot(), cpu.CS)
	// 20 iterations: MOVC3 per loop -> 20 character instructions.
	if r.Groups[vax.GroupCharacter] != 20 {
		t.Errorf("character count = %d, want 20", r.Groups[vax.GroupCharacter])
	}
	// CALLS + RET per loop -> 40 CALL/RET instructions.
	if r.Groups[vax.GroupCallRet] != 40 {
		t.Errorf("call/ret count = %d, want 40", r.Groups[vax.GroupCallRet])
	}
	// MULL3 only on iterations where value >= 5: value grows 0..19, so 15
	// executions; EXTZV runs every call: 20 field ops.
	if r.Groups[vax.GroupField] != 20 {
		t.Errorf("field count = %d, want 20", r.Groups[vax.GroupField])
	}
	if r.Groups[vax.GroupFloat] != 15 {
		t.Errorf("float count = %d, want 15", r.Groups[vax.GroupFloat])
	}
	// Sum of groups = instructions.
	var sum uint64
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		sum += r.Groups[g]
	}
	if sum != r.Instructions {
		t.Errorf("group sum %d != instructions %d", sum, r.Instructions)
	}
}

func TestReducePCClasses(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	r := Reduce(mo.Snapshot(), cpu.CS)
	loop := r.PCClasses[vax.PCLoop]
	if loop.Entries != 20 || loop.Taken != 19 {
		t.Errorf("loop = %+v, want 20 entries 19 taken", loop)
	}
	cond := r.PCClasses[vax.PCSimpleCond]
	if cond.Entries != 20 {
		t.Errorf("cond entries = %d, want 20", cond.Entries)
	}
	if cond.Taken != 5 { // BLSS taken while R9 < 5: values 0..4
		t.Errorf("cond taken = %d, want 5", cond.Taken)
	}
	proc := r.PCClasses[vax.PCProc]
	if proc.Entries != 40 || proc.Taken != 40 {
		t.Errorf("proc = %+v, want 40/40", proc)
	}
}

func TestReduceSpecifiersAndMemOps(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	r := Reduce(mo.Snapshot(), cpu.CS)
	s1, s26, _ := r.SpecsPerInstr()
	if s1 <= 0 || s26 <= 0 {
		t.Errorf("specifier rates = %v, %v; want positive", s1, s26)
	}
	if s1 > 1 {
		t.Errorf("spec1 rate %v cannot exceed 1", s1)
	}
	// Table 5: the Spec1 row must show reads (operand fetches).
	var spec1Reads float64
	for _, row := range r.MemOps {
		if row.Label == "Spec1" {
			spec1Reads = row.Reads
		}
	}
	if spec1Reads <= 0 {
		t.Error("expected Spec1 reads in Table 5")
	}
	if r.EstInstrBytes() < 2 || r.EstInstrBytes() > 6 {
		t.Errorf("estimated instruction size %.2f implausible", r.EstInstrBytes())
	}
}

func TestReduceWithinGroupIdentity(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	r := Reduce(mo.Snapshot(), cpu.CS)
	// Table 9 identity: within-group cycles x frequency = Table 8 row.
	for _, g := range []vax.Group{vax.GroupSimple, vax.GroupCallRet, vax.GroupCharacter} {
		wg := r.WithinGroup(g).Total() * r.GroupFreq(g)
		er, ok := execRowOf(g)
		if !ok {
			t.Fatalf("%v has no execute row", g)
		}
		t8 := r.Timing[er].Total()
		if diff := wg - t8; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: within-group x freq = %.6f != Table8 row %.6f", g, wg, t8)
		}
	}
}

func TestHistogramAddLinearity(t *testing.T) {
	_, mo1 := runMonitored(t, mixedProgram)
	_, mo2 := runMonitored(t, `
	MOVL	#5, R1
l:	SOBGTR	R1, l
	HALT
`)
	h1 := mo1.Snapshot()
	h2 := mo2.Snapshot()
	sum := &Histogram{}
	sum.Add(h1)
	sum.Add(h2)
	r1 := Reduce(h1, cpu.CS)
	r2 := Reduce(h2, cpu.CS)
	rs := Reduce(sum, cpu.CS)
	if rs.Instructions != r1.Instructions+r2.Instructions {
		t.Errorf("composite instructions %d != %d + %d", rs.Instructions, r1.Instructions, r2.Instructions)
	}
	if rs.Cycles != r1.Cycles+r2.Cycles {
		t.Errorf("composite cycles mismatch")
	}
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		if rs.Groups[g] != r1.Groups[g]+r2.Groups[g] {
			t.Errorf("group %v not additive", g)
		}
	}
}

func TestHistogramSaveLoad(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	h := mo.Snapshot()
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Error("save/load round trip mismatch")
	}
}

func TestMonitorCommandInterface(t *testing.T) {
	mo := NewMonitor()
	if mo.Running() {
		t.Error("new monitor must be stopped")
	}
	mo.Count(5, 3) // ignored while stopped
	if c, _ := mo.ReadBucket(5); c != 0 {
		t.Error("stopped monitor counted")
	}
	mo.Start()
	mo.Count(5, 3)
	mo.Stall(5, 2)
	if c, s := mo.ReadBucket(5); c != 3 || s != 2 {
		t.Errorf("bucket = %d/%d, want 3/2", c, s)
	}
	mo.Stop()
	mo.Count(5, 1)
	if c, _ := mo.ReadBucket(5); c != 3 {
		t.Error("counting continued after Stop")
	}
	mo.Clear()
	if c, s := mo.ReadBucket(5); c != 0 || s != 0 {
		t.Error("Clear left counts")
	}
}

func TestMonitorOverflow(t *testing.T) {
	mo := NewMonitor()
	mo.SetCounterCapacity(10)
	mo.Start()
	mo.Count(1, 9)
	if mo.Overflowed() {
		t.Error("no overflow yet")
	}
	mo.Count(1, 5)
	if !mo.Overflowed() {
		t.Error("overflow not detected")
	}
	if c, _ := mo.ReadBucket(1); c != 10 {
		t.Errorf("bucket pinned at %d, want 10", c)
	}
	h := mo.Snapshot()
	if !h.OverflowedAt(1) {
		t.Error("saturated bucket not marked in the overflow bitmap")
	}
	if h.OverflowedAt(2) {
		t.Error("clean bucket marked overflowed")
	}
	if n := h.OverflowCount(); n != 1 {
		t.Errorf("OverflowCount = %d, want 1", n)
	}
	// Further counting at the pinned bucket never corrupts it.
	mo.Count(1, 1000)
	if c, _ := mo.ReadBucket(1); c != 10 {
		t.Errorf("bucket moved off the pin: %d", c)
	}
	mo.Clear()
	if mo.Overflowed() || mo.Snapshot().OverflowCount() != 0 {
		t.Error("Clear left overflow state")
	}
}

func TestOverflowBitmapStickyAcrossAdd(t *testing.T) {
	mo := NewMonitor()
	mo.SetCounterCapacity(4)
	mo.Start()
	mo.Stall(100, 9) // saturates bucket 100
	a := mo.Snapshot()
	var b Histogram
	b.Counts[7] = 3
	b.Add(a)
	if !b.OverflowedAt(100) {
		t.Error("Add dropped the overflow mark")
	}
	if b.OverflowedAt(7) {
		t.Error("Add invented an overflow mark")
	}
}

func TestHistogramSaveLoadPreservesOverflow(t *testing.T) {
	mo := NewMonitor()
	mo.SetCounterCapacity(2)
	mo.Start()
	mo.Count(42, 5)
	h := mo.Snapshot()
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OverflowedAt(42) || got.OverflowCount() != 1 {
		t.Error("overflow bitmap lost across save/load")
	}
	if got.Counts[42] != 2 {
		t.Errorf("saturated count = %d, want 2", got.Counts[42])
	}
}

func TestLoadHistogramTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Histogram{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadHistogram(bytes.NewReader(short)); err == nil {
		t.Error("truncated stream should fail to load")
	}
	if _, err := LoadHistogram(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail to load")
	}
}

func TestReduceEmptyHistogram(t *testing.T) {
	r := Reduce(&Histogram{}, cpu.CS)
	if r.Instructions != 0 || r.CPI() != 0 {
		t.Errorf("empty reduce: %+v", r)
	}
	if r.TBMiss.CyclesPerMiss() != 0 {
		t.Error("empty TB miss stats should be zero")
	}
}

func TestNullProcessExclusionGate(t *testing.T) {
	// The machine gate models the paper's exclusion of the VMS null
	// process: cycles with the gate down must not reach the monitor.
	im, err := asm.Assemble(0x1000, `
	MOVL	#10, R1
l:	SOBGTR	R1, l
	HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Config{MemBytes: 1 << 20})
	mo := NewMonitor()
	mo.Start()
	m.AttachProbe(mo)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	m.SetMonitorGate(false)
	m.Run(5_000_000)
	if mo.Snapshot().TotalCycles() != 0 {
		t.Error("gated cycles leaked into the monitor")
	}
}

func TestHotSpots(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	h := mo.Snapshot()
	spots := HotSpots(h, cpu.CS, 10)
	if len(spots) != 10 {
		t.Fatalf("spots = %d, want 10", len(spots))
	}
	// Sorted descending by cycles.
	for i := 1; i < len(spots); i++ {
		if spots[i].Cycles > spots[i-1].Cycles {
			t.Fatal("hot spots not sorted")
		}
	}
	// The decode dispatch must be among the hottest locations (it
	// executes once per instruction).
	found := false
	for _, s := range spots {
		if s.Name == "decode.ird" {
			found = true
		}
	}
	if !found {
		t.Errorf("decode.ird not in the top 10: %+v", spots)
	}
	// Shares are fractions of total classified time.
	var share float64
	for _, s := range spots {
		if s.Share <= 0 || s.Share > 1 {
			t.Errorf("bad share %+v", s)
		}
		share += s.Share
	}
	if share > 1.0001 {
		t.Errorf("top-10 share %.3f > 1", share)
	}
}

func TestStallSpots(t *testing.T) {
	_, mo := runMonitored(t, mixedProgram)
	spots := StallSpots(mo.Snapshot(), cpu.CS, 5)
	for i := 1; i < len(spots); i++ {
		if spots[i].Stalls > spots[i-1].Stalls {
			t.Fatal("stall spots not sorted")
		}
	}
	if len(spots) > 0 && spots[0].Stalls == 0 {
		t.Log("note: no stalls in this short run")
	}
}

func TestHotSpotsEmptyHistogram(t *testing.T) {
	if got := HotSpots(&Histogram{}, cpu.CS, 10); len(got) != 0 {
		t.Errorf("empty histogram produced %d spots", len(got))
	}
}

// TestPropertyReductionConservation: for arbitrary histograms over the
// real control store, the Table 8 matrix times the instruction count must
// equal the classified cycle total (every cycle lands in exactly one
// row/column cell).
func TestPropertyReductionConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &Histogram{}
		words := cpu.CS.Words()
		for i := 0; i < 300; i++ {
			w := words[1+rng.Intn(len(words)-1)]
			h.Counts[w.Addr] += uint64(rng.Intn(1000))
			switch w.Class {
			case ucode.ClassRead, ucode.ClassWrite:
				h.Stalls[w.Addr] += uint64(rng.Intn(1000))
			}
		}
		// Ensure a nonzero instruction count.
		ird, _ := cpu.CS.Lookup("decode.ird")
		h.Counts[ird] += 1 + uint64(rng.Intn(100))
		r := Reduce(h, cpu.CS)
		got := r.TimingTotal.Total() * float64(r.Instructions)
		want := float64(r.Cycles)
		return math.Abs(got-want) < 1e-6*want+1e-3
	}
	// Seed the quick.Config Rand (nil means clock-seeded) so failures
	// reproduce deterministically.
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(0x783))}); err != nil {
		t.Error(err)
	}
}
