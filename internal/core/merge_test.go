package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"vax780/internal/ucode"
)

// Merge determinism is what lets the fleet supervisor (internal/farm)
// shard runs across workers at all: the composite of N complete runs
// must not depend on which worker summed which runs, or in what order.
// The property under test: for histograms h1..hN produced by real
// monitor counting (including saturate-and-flag degradation), folding
// them into one sum via Add is invariant under any partition of the runs
// into W worker-local stores and any permutation within and across them
// — bit-identical through Save, sticky overflow bitmap included.

// randomRunHist produces one run's histogram by driving a real Monitor
// with a random event stream under a small counter capacity, so a
// realistic share of buckets saturate and carry Over bits.
func randomRunHist(r *rand.Rand) *Histogram {
	mo := NewMonitor()
	mo.SetCounterCapacity(64)
	mo.Start()
	for e := 0; e < 200; e++ {
		upc := uint16(r.Intn(ucode.StoreSize))
		n := uint64(r.Intn(40) + 1)
		if r.Intn(3) == 0 {
			mo.Stall(upc, n)
		} else {
			mo.Count(upc, n)
		}
	}
	return mo.Snapshot()
}

func saveBytes(t *testing.T, h *Histogram) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := h.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestPropertyMergePartitionAndOrderInvariant(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		r := rand.New(rand.NewSource(seed))
		w := int(workers%7) + 1
		n := r.Intn(12) + w

		runs := make([]*Histogram, n)
		for i := range runs {
			runs[i] = randomRunHist(r)
		}

		// Reference: single-machine order, one accumulator.
		single := &Histogram{}
		for _, h := range runs {
			single.Add(h)
		}

		// Farm shape: assign runs to W worker-local stores in a random
		// interleaving (workers complete in arbitrary order), then merge
		// the locals in a random order.
		locals := make([]*Histogram, w)
		for i := range locals {
			locals[i] = &Histogram{}
		}
		for _, i := range r.Perm(n) {
			locals[r.Intn(w)].Add(runs[i])
		}
		merged := &Histogram{}
		for _, wi := range r.Perm(w) {
			merged.Add(locals[wi])
		}

		if !bytes.Equal(saveBytes(t, single), saveBytes(t, merged)) {
			return false
		}
		// The sticky saturation marks must survive the shuffle too: a
		// bucket saturated in any run is flagged in both composites.
		for _, h := range runs {
			for upc := 0; upc < ucode.StoreSize; upc++ {
				if h.OverflowedAt(uint16(upc)) && !merged.OverflowedAt(uint16(upc)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
