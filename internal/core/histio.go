package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"vax780/internal/ucode"
)

// Histogram file format. A measurement session's raw data product must
// survive being written to disk on one machine and reduced on another
// possibly weeks later, so the on-disk form is self-checking: a magic, the
// payload length, the encoded histogram, and a SHA-256 trailer over
// everything before it. Truncation, padding and bit rot are all rejected
// with ErrCorruptHistogram rather than silently producing a wrong table.
//
// The payload is a fixed little-endian layout (Counts, Stalls, Over, in
// index order), NOT gob: gob assigns wire type IDs from a process-global
// registry, so its bytes depend on what else the process has encoded —
// a resumed run would write a value-identical but byte-different file.
// The deterministic-resume contract promises `cmp`-level equality of the
// data product, so the encoding must be a pure function of the data.
//
// Files written before the format existed (a bare gob stream) still load,
// without the integrity check.

// ErrCorruptHistogram reports a histogram file that is truncated,
// padded, or fails its checksum. It is returned (wrapped) by
// LoadHistogram; the decode never yields a partially-filled histogram.
var ErrCorruptHistogram = errors.New("corrupt histogram file")

var histMagic = [8]byte{'V', 'A', 'X', 'U', 'P', 'C', 'H', '1'}

const (
	histHeaderLen  = 16 // magic + little-endian uint64 payload length
	histTrailerLen = sha256.Size
	// histPayloadLen is the fixed payload size: Counts, Stalls, Over.
	histPayloadLen = 8 * (2*ucode.StoreSize + ucode.StoreSize/64)
)

// Save writes the histogram in the checksummed binary form. The output
// is a pure function of the histogram's contents: equal histograms write
// byte-identical files.
func (h *Histogram) Save(w io.Writer) error {
	payload := make([]byte, 0, histPayloadLen)
	for _, arr := range [][]uint64{h.Counts[:], h.Stalls[:], h.Over[:]} {
		for _, v := range arr {
			payload = binary.LittleEndian.AppendUint64(payload, v)
		}
	}
	var hdr [histHeaderLen]byte
	copy(hdr[:], histMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	sum := sha256.New()
	sum.Write(hdr[:])
	sum.Write(payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing histogram: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: writing histogram: %w", err)
	}
	if _, err := w.Write(sum.Sum(nil)); err != nil {
		return fmt.Errorf("core: writing histogram: %w", err)
	}
	return nil
}

// LoadHistogram reads a histogram written by Save. Corrupted input —
// truncated at any point, padded, or with any byte of header, body or
// trailer damaged — returns an error wrapping ErrCorruptHistogram and no
// histogram; decode state never escapes on failure.
func LoadHistogram(r io.Reader) (*Histogram, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading histogram: %w", err)
	}
	if len(data) < histHeaderLen || !bytes.Equal(data[:8], histMagic[:]) {
		// Not the checksummed format: try the legacy bare-gob form.
		return loadLegacyHistogram(data)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)) != histHeaderLen+n+histTrailerLen {
		return nil, fmt.Errorf("core: %w: %d bytes on disk, header promises %d",
			ErrCorruptHistogram, len(data), histHeaderLen+n+histTrailerLen)
	}
	body := data[:histHeaderLen+n]
	want := data[histHeaderLen+n:]
	got := sha256.Sum256(body)
	if !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("core: %w: checksum mismatch", ErrCorruptHistogram)
	}
	if n != histPayloadLen {
		return nil, fmt.Errorf("core: %w: payload is %d bytes, the format needs %d",
			ErrCorruptHistogram, n, histPayloadLen)
	}
	var h Histogram
	payload := body[histHeaderLen:]
	for _, arr := range [][]uint64{h.Counts[:], h.Stalls[:], h.Over[:]} {
		for i := range arr {
			arr[i] = binary.LittleEndian.Uint64(payload)
			payload = payload[8:]
		}
	}
	return &h, nil
}

// loadLegacyHistogram decodes the pre-checksum format: a bare gob stream.
func loadLegacyHistogram(data []byte) (*Histogram, error) {
	var h Histogram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&h); err != nil {
		return nil, fmt.Errorf("core: %w: not a histogram file: %v", ErrCorruptHistogram, err)
	}
	return &h, nil
}
