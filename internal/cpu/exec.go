package cpu

import (
	"fmt"

	"vax780/internal/vax"
)

// pswIV is the integer overflow trap enable bit of the PSW.
const pswIV = uint32(1) << 5

// arithIntOvf is the arithmetic-trap type code for integer overflow.
const arithIntOvf = 1

// execFn is the execute-phase microroutine of one opcode.
type execFn func(m *Machine)

var execTable [256]execFn

// register attaches the execute microroutine of one opcode. The exectable
// analyzer (cmd/vaxlint) proves table/handler consistency at build time;
// this runtime check remains as defense in depth.
func register(op vax.Opcode, fn execFn) {
	if execTable[op] != nil {
		name := fmt.Sprintf("opcode %#02x", uint8(op))
		if info := vax.Lookup(op); info != nil {
			name = info.Name
		}
		panic("cpu: duplicate exec registration for " + name)
	}
	execTable[op] = fn
}

// RegisteredOpcodes returns the opcodes with an execute microroutine, in
// ascending code order. The latency oracle (cmd/vaxlat, DESIGN.md §16)
// sweeps exactly this set: its committed table must cover every entry,
// and cover nothing else.
func RegisteredOpcodes() []vax.Opcode {
	var ops []vax.Opcode
	for code := 0; code < len(execTable); code++ {
		if execTable[code] != nil {
			ops = append(ops, vax.Opcode(code))
		}
	}
	return ops
}

// StepInstruction runs one complete VAX instruction: interrupt check,
// decode (one non-overlapped cycle), specifier processing, execute phase.
func (m *Machine) StepInstruction() {
	if m.halted || m.runErr != nil {
		return
	}
	m.instAborted = false
	// Machine checks outrank interrupts: drain the subsystem error latches
	// and deliver a pending check before anything else this boundary.
	m.pollMachineChecks()
	if m.mcPending {
		m.deliverMachineCheck()
		if m.halted || m.runErr != nil {
			return
		}
	}
	m.checkInterrupts()
	if m.halted || m.runErr != nil {
		return
	}
	m.instPC = m.ib.cur()

	// IRD: the first I-Decode of an instruction cannot overlap the
	// previous instruction, costing one EBOX cycle (§2.1). The
	// DecodeOverlap ablation models the 11/750's folding of this cycle
	// into the previous instruction when that instruction did not change
	// the PC (§5).
	m.ibWait(1, uw.irdStall)
	if m.runErr != nil {
		return
	}
	opc := m.ib.consume(1)[0]
	if !(m.cfg.DecodeOverlap && !m.lastPCChange) {
		m.tick(uw.ird)
	} else {
		// Folded into the previous instruction: counted for instruction
		// accounting at a marker location, but no cycle is spent.
		m.tickFree(uw.irdFolded)
	}
	info := vax.Lookup(vax.Opcode(opc))
	if info == nil {
		m.deliverException(SCBReservedOp, nil)
		return
	}
	m.instr = info
	m.nops = len(info.Specs)
	m.lastPCChange = false
	// An I-stream exception during the IRD fetch redirected the IB; the
	// opcode consumed above is the handler's first instruction, which must
	// run normally.
	m.instAborted = false

	for i, os := range info.Specs {
		m.runSpecifier(i, os)
		if m.halted || m.runErr != nil || m.instAborted {
			return
		}
	}
	fn := execTable[info.Code]
	if fn == nil {
		// No execute routine is an unimplemented opcode: architecturally a
		// reserved-instruction fault, not a simulator stop.
		m.deliverException(SCBReservedOp, nil)
		return
	}
	fn(m)
	// Integer overflow traps at instruction end when the PSW IV bit is
	// set (the architectural arithmetic trap).
	if m.PSL&pswIV != 0 && m.PSL&vax.PSLV != 0 && !m.halted && m.runErr == nil && !m.instAborted {
		m.PSL &^= vax.PSLV
		//vaxlint:allow hotpath -- coarse: the compiler proves this trap-parameter slice stack-resident (deliverException never leaks it; pinned in TestEscapeGroundTruth)
		m.deliverException(SCBArithTrap, []uint32{arithIntOvf})
	}
	// Production microcode carries patches: a patched location costs one
	// extra Abort-row cycle when crossed (§5).
	if m.cfg.PatchEvery > 0 {
		m.patchCtr++
		if m.patchCtr >= m.cfg.PatchEvery {
			m.patchCtr = 0
			m.tick(uw.abort)
		}
	}
	m.instret++
	m.wdLastRetire = m.cycle
}

// tickFree counts an execution without spending a cycle (used only by the
// DecodeOverlap ablation so instruction counting via the IRD location
// still works).
func (m *Machine) tickFree(w uint16) {
	if m.probe != nil && m.gate {
		m.probe.Count(w, 1)
	}
}

// ---------------------------------------------------------------------------
// Branch displacement handling.

func (m *Machine) dispSize() int {
	if m.instr.BranchDisp == vax.TypeWord {
		return 2
	}
	return 1
}

// takeDisp consumes the branch displacement with the one-cycle B-DISP
// target calculation and returns the branch target.
func (m *Machine) takeDisp() uint32 {
	n := m.dispSize()
	m.ibWait(n, uw.bdispStall)
	if m.runErr != nil {
		return m.ib.cur()
	}
	b := m.ib.consume(n)
	var disp int32
	if n == 1 {
		disp = int32(int8(b[0]))
	} else {
		disp = int32(int16(uint16(b[0]) | uint16(b[1])<<8))
	}
	target := m.ib.cur() + uint32(disp)
	m.tick(uw.bdisp)
	return target
}

// branchTake consumes the displacement, spends the execute-phase redirect
// cycle at takenWord, and redirects the IB (§5: "an additional cycle is
// consumed in the execute phase to redirect the IB").
func (m *Machine) branchTake(takenWord uint16) {
	target := m.takeDisp()
	m.redirect(takenWord, target)
}

// branchSkip passes over the displacement of an untaken branch; the
// hardware consumes the bytes without a dedicated cycle, which is why the
// paper sees fewer B-DISP compute cycles than branch displacements.
func (m *Machine) branchSkip() {
	m.ib.consumeFree(m.dispSize())
}

// redirect spends the execute-phase redirect cycle at w and restarts the
// IB at target (for PC-changing instructions without displacements).
func (m *Machine) redirect(w uint16, target uint32) {
	m.tick(w)
	m.ib.redirect(target)
	m.lastPCChange = true
}

// ---------------------------------------------------------------------------
// Interrupts.

// RaiseIRQ asserts a device interrupt now.
func (m *Machine) RaiseIRQ(ipl uint8, vector uint16) {
	m.QueueIRQ(IRQ{At: m.cycle, IPL: ipl, Vector: vector})
}

func (m *Machine) checkInterrupts() {
	cur := uint8(m.PSL >> 16 & 0x1F)
	// Device requests, in assertion order.
	for m.nextIRQ < len(m.irqs) && m.irqs[m.nextIRQ].At <= m.cycle {
		q := m.irqs[m.nextIRQ]
		if q.IPL <= cur {
			break // blocked until IPL drops; preserves request order
		}
		m.nextIRQ++
		m.deliverIRQ(q.IPL, q.Vector)
		return
	}
	// Software interrupt summary register.
	sisr := m.ipr[IPRSlotSISR]
	if sisr != 0 {
		lvl := uint8(31 - leadingZeros32(sisr))
		if lvl > cur {
			m.ipr[IPRSlotSISR] &^= 1 << lvl
			m.deliverIRQ(lvl, uint16(SCBSoftBase+4*int(lvl)))
		}
	}
}

func leadingZeros32(v uint32) int {
	n := 0
	for i := 31; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 32
}

// deliverIRQ runs the interrupt microcode: save PSL/PC on the kernel
// stack, fetch the SCB vector, raise IPL, vector to the handler. All
// cycles land in the Int/Except row.
func (m *Machine) deliverIRQ(lvl uint8, vec uint16) {
	m.tick(uw.irqEntry)
	m.ticks(uw.irqWork, 5)
	savedPSL := m.PSL
	savedPC := m.ib.cur()
	m.setMode(0)
	m.push32(uw.irqPush, savedPSL)
	m.push32(uw.irqPush, savedPC)
	handler := m.readSCB(uw.irqVec, vec)
	m.PSL = m.PSL&^(0x1F<<16) | uint32(lvl)<<16
	m.ticks(uw.irqWork, 4)
	m.ib.redirect(handler)
	m.lastPCChange = true
	m.irqDelivered++
}

// ---------------------------------------------------------------------------
// Exceptions.

// deliverException pushes PSL, PC and any parameters on the kernel stack
// and vectors through the SCB.
func (m *Machine) deliverException(vec int, params []uint32) {
	if m.inExc {
		m.fail("nested exception delivering vector %#x", vec)
		return
	}
	m.inExc = true
	// The flag is cleared on every exit below rather than in a defer: a
	// deferred closure would allocate on each delivery, and pageFault runs
	// on the TB-miss path the paper's Mem Mgmt rows time.
	m.tick(uw.excEntry)
	m.ticks(uw.excWork, 3)
	savedPSL := m.PSL
	savedPC := m.instPC
	m.setMode(0)
	m.push32(uw.excPush, savedPSL)
	m.push32(uw.excPush, savedPC)
	for _, p := range params {
		m.push32(uw.excPush, p)
	}
	handler := m.readSCB(uw.excVec, uint16(vec))
	if m.runErr != nil {
		m.inExc = false
		return
	}
	if handler == 0 {
		m.fail("unhandled exception: SCB vector %#x empty (pc %#x)", vec, savedPC)
		m.inExc = false
		return
	}
	m.ticks(uw.excWork, 2)
	m.ib.redirect(handler)
	m.lastPCChange = true
	m.instAborted = true // skip the remaining phases of the faulted instruction
	m.exceptions++
	m.inExc = false
}

func (m *Machine) pageFault(va uint32) {
	//vaxlint:allow hotpath -- coarse: the compiler proves this fault-parameter slice stack-resident (deliverException never leaks it; pinned in TestEscapeGroundTruth)
	m.deliverException(SCBTransInval, []uint32{va})
}

func (m *Machine) memMgmtFault(va uint32, err error) {
	//vaxlint:allow hotpath -- coarse: the compiler proves this fault-parameter slice stack-resident (deliverException never leaks it; pinned in TestEscapeGroundTruth)
	m.deliverException(SCBAccessViol, []uint32{va})
}

// ---------------------------------------------------------------------------
// Stack and SCB helpers (timed).

func (m *Machine) push32(w uint16, v uint32) {
	m.R[vax.SP] -= 4
	m.dwrite(w, m.R[vax.SP], 4, uint64(v))
}

func (m *Machine) pop32(w uint16) uint32 {
	v := uint32(m.dread(w, m.R[vax.SP], 4))
	m.R[vax.SP] += 4
	return v
}

func (m *Machine) readSCB(w uint16, vec uint16) uint32 {
	scbb := m.ipr[IPRSlotSCBB]
	if scbb == 0 {
		m.fail("SCBB not initialised; cannot vector %#x", vec)
		return 0
	}
	return m.readPhys(w, scbb+uint32(vec))
}
