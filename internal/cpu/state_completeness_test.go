package cpu

import (
	"reflect"
	"testing"
)

// TestIBStateCompleteness is the package-internal half of the snapshot
// completeness check in internal/checkpoint (the ibox type is unexported,
// so reflection from that package cannot reach it): every ibox field must
// either travel in IBState or carry a justified exemption.
func TestIBStateCompleteness(t *testing.T) {
	captured := map[string]string{
		"ptr":           "IBState.Ptr",
		"valid":         "IBState.Valid",
		"fillPending":   "IBState.FillPending",
		"fillDone":      "IBState.FillDone",
		"fillBytes":     "IBState.FillBytes",
		"tbMissPending": "IBState.TBMissPending",
		"tbMissVA":      "IBState.TBMissVA",
		"advanced":      "IBState.Advanced",
		"stats":         "IBState.Stats",
	}
	exempt := map[string]string{
		"m":       "wiring to the owning machine",
		"scratch": "transient decode buffer; its contents never outlive one peek/consume",
	}
	typ := reflect.TypeOf(ibox{})
	fields := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		fields[typ.Field(i).Name] = true
	}
	for name := range captured {
		if !fields[name] {
			t.Errorf("captured table names unknown ibox field %q", name)
		}
		if _, both := exempt[name]; both {
			t.Errorf("ibox field %q is both captured and exempted", name)
		}
	}
	for name := range exempt {
		if !fields[name] {
			t.Errorf("exemption table names unknown ibox field %q", name)
		}
	}
	for name := range fields {
		if captured[name] == "" && exempt[name] == "" {
			t.Errorf("ibox field %q is neither captured in IBState nor exempted", name)
		}
	}
}
