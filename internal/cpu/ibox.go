package cpu

import (
	"vax780/internal/cache"
	"vax780/internal/tb"
)

// IBStats are hardware counters of the I-Fetch unit. They are NOT visible
// to the µPC monitor (the paper's §2.2 limitation: I-stream references are
// made by a distinct portion of the processor); they stand in for the
// authors' "earlier cache study" numbers used in §4.1.
type IBStats struct {
	CacheRefs      uint64 // longword cache references made by the IB
	BytesDelivered uint64 // bytes accepted into the IB
	BytesConsumed  uint64 // I-stream bytes decoded (measures instruction size)
	Redirects      uint64 // IB flushes caused by PC-changing instructions
	TBMisses       uint64 // I-stream translation misses detected by I-Fetch
}

// ibox models the I-Fetch stage and the 8-byte instruction buffer. It
// fills autonomously while the EBOX computes: the fill state is advanced
// lazily to the EBOX's current cycle before any interaction.
type ibox struct {
	m *Machine

	ptr   uint32 // VA of the next byte to deliver to I-Decode
	valid int    // valid bytes buffered ahead of ptr (0..8)

	fillPending bool
	fillDone    uint64 // cycle the outstanding longword arrives
	fillBytes   int    // bytes it will deliver

	tbMissPending bool
	tbMissVA      uint32

	advanced uint64 // cycle up to which fill activity is simulated

	stats IBStats

	// scratch backs peek/consume. The decode hardware reads the IB
	// combinationally, so the bytes handed out are valid only until the
	// next peek/consume/zeroed call; callers fold them into values before
	// touching the IB again (wideImmediate is the two-helping case).
	// Reusing one array keeps the per-cycle decode path allocation-free.
	scratch [ibSize]byte
}

const ibSize = 8

// cur returns the VA of the next undecoded byte (the architectural PC).
func (ib *ibox) cur() uint32 { return ib.ptr }

// redirect flushes the IB and restarts fetch at va (branch taken, REI,
// context switch). An in-flight memory transaction is abandoned but its
// bus occupancy remains — as on the real machine.
func (ib *ibox) redirect(va uint32) {
	ib.ptr = va
	ib.valid = 0
	ib.fillPending = false
	ib.tbMissPending = false
	ib.stats.Redirects++
	// Fetch down the new stream starts now, not at the (possibly earlier)
	// cycle the lazy fill simulation had reached.
	if ib.m.cycle > ib.advanced {
		ib.advanced = ib.m.cycle
	}
}

// advance simulates I-Fetch activity up to cycle `to`.
func (ib *ibox) advance(to uint64) {
	if ib.advanced >= to {
		return
	}
	now := ib.advanced
	for now < to {
		if ib.fillPending {
			if ib.fillDone > to {
				break
			}
			now = ib.fillDone
			ib.fillPending = false
			room := ibSize - ib.valid
			n := ib.fillBytes
			if n > room {
				n = room
			}
			ib.valid += n
			ib.stats.BytesDelivered += uint64(n)
			continue
		}
		if ib.valid >= ibSize || ib.tbMissPending {
			break
		}
		// Issue the next longword reference for the first empty byte.
		// The IB can re-reference the same longword (up to four times,
		// §4.1) when only part of it fit; it waits for two bytes of room
		// before requesting, bounding the waste.
		fillVA := ib.ptr + uint32(ib.valid)
		if ibSize-ib.valid < 2 {
			break
		}
		pa, ok := ib.translate(fillVA)
		if !ok {
			// Set the miss flag; the EBOX notices it when it next finds
			// insufficient bytes in the IB (§2.1).
			ib.tbMissPending = true
			ib.tbMissVA = fillVA
			break
		}
		ib.stats.CacheRefs++
		bytesInLong := 4 - int(fillVA&3)
		if ib.m.Cache.Read(pa&^3, cache.IStream) {
			ib.fillPending = true
			ib.fillDone = now + 1
			ib.fillBytes = bytesInLong
		} else {
			ib.fillPending = true
			ib.fillDone = ib.m.SBI.Read(now)
			ib.fillBytes = bytesInLong
		}
	}
	if ib.advanced < to {
		ib.advanced = to
	}
	if now > ib.advanced {
		ib.advanced = now
	}
}

// translate performs the I-Fetch unit's hardware TB lookup.
func (ib *ibox) translate(va uint32) (uint32, bool) {
	if !ib.m.MMU.Enabled {
		return va, true
	}
	pa, hit := ib.m.TLB.Lookup(va, tb.IStream)
	if !hit {
		ib.stats.TBMisses++
		return 0, false
	}
	return pa, true
}

// peek returns n bytes of I-stream starting at ptr without consuming them
// and without advancing time (the decode hardware sees the IB contents
// combinationally). The caller must have ensured valid >= n; the result
// aliases the IB scratch buffer and is invalidated by the next peek or
// consume.
func (ib *ibox) peek(n int) []byte {
	out := ib.scratch[:n]
	for i := 0; i < n; i++ {
		out[i] = ib.m.readVirtByte(ib.ptr + uint32(i))
	}
	return out
}

// zeroed returns n zero bytes from the scratch buffer: what an aborted
// take hands back so partial readers see deterministic zeros, without
// allocating on the failure path.
func (ib *ibox) zeroed(n int) []byte {
	out := ib.scratch[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// consume removes n bytes from the front of the IB and returns them.
func (ib *ibox) consume(n int) []byte {
	b := ib.peek(n)
	ib.ptr += uint32(n)
	ib.valid -= n
	ib.stats.BytesConsumed += uint64(n)
	return b
}

// consumeFree advances the IB pointer past n bytes without requiring them
// to be buffered (used for the displacement bytes of untaken branches,
// which the hardware skips without a dedicated cycle).
func (ib *ibox) consumeFree(n int) {
	ib.ptr += uint32(n)
	ib.valid -= n
	ib.stats.BytesConsumed += uint64(n)
	if ib.valid < 0 {
		ib.valid = 0
		ib.fillPending = false
	}
}

// Stats returns the I-Fetch hardware counters.
func (m *Machine) IBStats() IBStats { return m.ib.stats }
