package cpu

import "vax780/internal/vax"

// Execute-phase microroutines for the CALL/RET group: the VAX procedure
// linkage (considerable state saving and restoring on the stack, §3.1) and
// the multi-register push/pop instructions.
//
// Stack frame built by CALLG/CALLS (FP points at the frame base):
//
//	FP+0   condition handler (0)
//	FP+4   saved PSW<15:0> | register mask<27:16> | S bit<29> (CALLS)
//	FP+8   saved AP
//	FP+12  saved FP
//	FP+16  saved PC
//	FP+20  saved registers, ascending R0..R11 order
//
// CALLS additionally pushed the argument count before the frame; RET pops
// it and removes the arguments when the S bit is set.

func pushMaskRegs(m *Machine, mask uint16) int {
	n := 0
	for r := 11; r >= 0; r-- { // descending pushes leave R0 lowest
		if mask&(1<<uint(r)) != 0 {
			// The real microcode scans the mask and checks stack limits
			// between pushes, which also spaces the writes.
			m.ticks(uw.callWork, 3)
			m.push32(uw.callPush, m.R[r])
			n++
		}
	}
	return n
}

func callCommon(m *Machine, entryAddr uint32, ap uint32, sBit uint32) {
	// Read the procedure entry mask.
	mask := uint16(m.dread(uw.callMaskRead, entryAddr, 2))
	m.ticks(uw.callWork, 6)
	pushMaskRegs(m, mask&0x0FFF)
	ret := m.ib.cur()
	m.push32(uw.callPush, ret)
	m.ticks(uw.callWork, 2)
	m.push32(uw.callPush, m.R[vax.FP])
	m.ticks(uw.callWork, 2)
	m.push32(uw.callPush, m.R[vax.AP])
	m.ticks(uw.callWork, 2)
	m.push32(uw.callPush, uint32(mask&0x0FFF)<<16|sBit<<29|m.PSL&0xFFFF)
	m.ticks(uw.callWork, 2)
	m.push32(uw.callPush, 0) // condition handler
	m.ticks(uw.callWork, 5)
	m.R[vax.FP] = m.R[vax.SP]
	m.R[vax.AP] = ap
	m.PSL &^= vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC
	m.redirect(uw.callTaken, entryAddr+2)
}

func init() {
	// CALLG arglist.ab, dst.ab
	register(vax.CALLG, func(m *Machine) {
		m.tick(uw.callEntry)
		callCommon(m, m.opAddr(1), m.opAddr(0), 0)
	})

	// CALLS numarg.rl, dst.ab
	register(vax.CALLS, func(m *Machine) {
		m.tick(uw.callEntry)
		m.push32(uw.callPush, uint32(m.opVal(0)))
		ap := m.R[vax.SP]
		callCommon(m, m.opAddr(1), ap, 1)
	})

	// RET
	register(vax.RET, func(m *Machine) {
		m.tick(uw.retEntry)
		m.ticks(uw.retWork, 7)
		fp := m.R[vax.FP]
		maskWord := uint32(m.dread(uw.retPop, fp+4, 4))
		ap := uint32(m.dread(uw.retPop, fp+8, 4))
		savedFP := uint32(m.dread(uw.retPop, fp+12, 4))
		pc := uint32(m.dread(uw.retPop, fp+16, 4))
		sp := fp + 20
		mask := uint16(maskWord >> 16 & 0x0FFF)
		for r := 0; r <= 11; r++ {
			if mask&(1<<uint(r)) != 0 {
				m.ticks(uw.retWork, 2)
				m.R[r] = uint32(m.dread(uw.retPop, sp, 4))
				sp += 4
			}
		}
		m.ticks(uw.retWork, 6)
		if maskWord&(1<<29) != 0 { // CALLS frame: remove argument list
			n := uint32(m.dread(uw.retPop, sp, 4))
			sp += 4 + 4*(n&0xFF)
			m.tick(uw.retWork)
		}
		m.R[vax.SP] = sp
		m.R[vax.FP] = savedFP
		m.R[vax.AP] = ap
		m.PSL = m.PSL&^uint32(0xFFFF) | maskWord&0xFFFF
		m.redirect(uw.retTaken, pc)
	})

	// PUSHR mask.rw / POPR mask.rw (PC excluded by architecture).
	register(vax.PUSHR, func(m *Machine) {
		m.tick(uw.pushrEntry)
		m.tick(uw.pushrWork)
		mask := uint16(m.opVal(0)) & 0x7FFF
		for r := 14; r >= 0; r-- {
			if mask&(1<<uint(r)) != 0 {
				m.ticks(uw.pushrWork, 2)
				m.push32(uw.pushrPush, m.R[r])
			}
		}
	})
	register(vax.POPR, func(m *Machine) {
		m.tick(uw.poprEntry)
		m.tick(uw.poprWork)
		mask := uint16(m.opVal(0)) & 0x7FFF
		for r := 0; r <= 14; r++ {
			if mask&(1<<uint(r)) != 0 {
				m.ticks(uw.poprWork, 2)
				m.R[r] = m.pop32(uw.poprPop)
			}
		}
	})
}
