package cpu

import "vax780/internal/vax"

// Execute-phase microroutines for the SIMPLE group: moves, simple
// arithmetic, booleans, simple and loop branches, subroutine call/return
// (Table 1). Most share the one-cycle ALU microword — the microcode
// sharing that prevents the monitor distinguishing, say, integer add from
// subtract (§3.1).

// movResult runs the shared one-cycle move/ALU microword, sets N/Z, and
// stores the result in the last operand.
func movResult(m *Machine, result uint64) {
	m.tick(uw.sAluEntry)
	sz := m.ops[m.nops-1].size()
	m.ccNZ(result, sz)
	m.storeResult(m.nops-1, result)
}

// aluNoStore runs the shared ALU microword for compare/test instructions.
func aluNoStore(m *Machine) { m.tick(uw.sAluEntry) }

func init() {
	// --- Moves --------------------------------------------------------
	mov := func(m *Machine) { movResult(m, m.opVal(0)) }
	register(vax.MOVB, mov)
	register(vax.MOVW, mov)
	register(vax.MOVL, mov)
	register(vax.MOVQ, mov)
	register(vax.MOVZBL, mov)
	register(vax.MOVZBW, mov)
	register(vax.MOVZWL, mov)
	mova := func(m *Machine) { movResult(m, uint64(m.opAddr(0))) }
	register(vax.MOVAB, mova)
	register(vax.MOVAW, mova)
	register(vax.MOVAL, mova)
	register(vax.MOVAQ, mova)
	clr := func(m *Machine) { movResult(m, 0) }
	register(vax.CLRB, clr)
	register(vax.CLRW, clr)
	register(vax.CLRL, clr)
	register(vax.CLRQ, clr)
	mcom := func(m *Machine) { movResult(m, ^m.opVal(0)) }
	register(vax.MCOMB, mcom)
	register(vax.MCOMW, mcom)
	register(vax.MCOML, mcom)
	register(vax.MNEGL, func(m *Machine) { movResult(m, uint64(-int64(int32(uint32(m.opVal(0)))))) })
	register(vax.MNEGB, func(m *Machine) { movResult(m, uint64(-int64(int8(uint8(m.opVal(0)))))) })
	register(vax.MNEGW, func(m *Machine) { movResult(m, uint64(-int64(int16(uint16(m.opVal(0)))))) })

	// Integer converts: sign-extend the source, store at the destination
	// width (shared convert microcode; V on narrowing overflow).
	cvt := func(m *Machine) {
		src := signExtend(m.opVal(0), m.ops[0].size())
		dstSz := m.ops[1].size()
		m.tick(uw.sAluEntry)
		m.ccNZ(uint64(src), dstSz)
		if src != signExtend(uint64(src), dstSz) {
			m.PSL |= vax.PSLV
		}
		m.storeResult(1, uint64(src))
	}
	for _, op := range []vax.Opcode{vax.CVTBL, vax.CVTBW, vax.CVTWL, vax.CVTWB, vax.CVTLB, vax.CVTLW} {
		register(op, cvt)
	}

	// --- Pushes (execute-phase writes in the Simple row) ---------------
	push := func(val func(m *Machine) uint64) execFn {
		return func(m *Machine) {
			m.tick(uw.sAluEntry)
			v := val(m)
			m.ccNZ(v, 4)
			m.push32(uw.sPushWrite, uint32(v))
		}
	}
	register(vax.PUSHL, push(func(m *Machine) uint64 { return m.opVal(0) }))
	pusha := push(func(m *Machine) uint64 { return uint64(m.opAddr(0)) })
	register(vax.PUSHAB, pusha)
	register(vax.PUSHAW, pusha)
	register(vax.PUSHAL, pusha)
	register(vax.PUSHAQ, pusha)

	// --- Two- and three-operand integer arithmetic ---------------------
	add2 := func(m *Machine) {
		a, b := m.opVal(0), m.opVal(1)
		r := a + b
		m.tick(uw.sAluEntry)
		m.ccAdd(a, b, r, m.ops[1].size())
		m.storeResult(1, r)
	}
	register(vax.ADDB2, add2)
	register(vax.ADDW2, add2)
	register(vax.ADDL2, add2)
	add3 := func(m *Machine) {
		a, b := m.opVal(0), m.opVal(1)
		r := a + b
		m.tick(uw.sAluEntry)
		m.ccAdd(a, b, r, m.ops[2].size())
		m.storeResult(2, r)
	}
	register(vax.ADDB3, add3)
	register(vax.ADDW3, add3)
	register(vax.ADDL3, add3)
	sub2 := func(m *Machine) {
		sub, min := m.opVal(0), m.opVal(1)
		r := min - sub
		m.tick(uw.sAluEntry)
		m.ccSub(min, sub, r, m.ops[1].size())
		m.storeResult(1, r)
	}
	register(vax.SUBB2, sub2)
	register(vax.SUBW2, sub2)
	register(vax.SUBL2, sub2)
	sub3 := func(m *Machine) {
		sub, min := m.opVal(0), m.opVal(1)
		r := min - sub
		m.tick(uw.sAluEntry)
		m.ccSub(min, sub, r, m.ops[2].size())
		m.storeResult(2, r)
	}
	register(vax.SUBB3, sub3)
	register(vax.SUBW3, sub3)
	register(vax.SUBL3, sub3)
	register(vax.ADWC, func(m *Machine) {
		c := uint64(0)
		if m.PSL&vax.PSLC != 0 {
			c = 1
		}
		a, b := m.opVal(0), m.opVal(1)
		r := a + b + c
		m.tick(uw.sAluEntry)
		m.ccAdd(a, b+c, r, 4)
		m.storeResult(1, r)
	})
	register(vax.SBWC, func(m *Machine) {
		c := uint64(0)
		if m.PSL&vax.PSLC != 0 {
			c = 1
		}
		a, b := m.opVal(0), m.opVal(1)
		r := b - a - c
		m.tick(uw.sAluEntry)
		m.ccSub(b, a+c, r, 4)
		m.storeResult(1, r)
	})
	inc := func(m *Machine) {
		v := m.opVal(0) + 1
		m.tick(uw.sAluEntry)
		m.ccAdd(m.opVal(0), 1, v, m.ops[0].size())
		m.storeResult(0, v)
	}
	register(vax.INCB, inc)
	register(vax.INCW, inc)
	register(vax.INCL, inc)
	dec := func(m *Machine) {
		v := m.opVal(0) - 1
		m.tick(uw.sAluEntry)
		m.ccSub(m.opVal(0), 1, v, m.ops[0].size())
		m.storeResult(0, v)
	}
	register(vax.DECB, dec)
	register(vax.DECW, dec)
	register(vax.DECL, dec)

	// --- Compares and tests --------------------------------------------
	cmp := func(m *Machine) {
		aluNoStore(m)
		m.ccCmp(m.opVal(0), m.opVal(1), m.ops[0].size())
	}
	register(vax.CMPB, cmp)
	register(vax.CMPW, cmp)
	register(vax.CMPL, cmp)
	tst := func(m *Machine) {
		aluNoStore(m)
		m.ccNZ(m.opVal(0), m.ops[0].size())
	}
	register(vax.TSTB, tst)
	register(vax.TSTW, tst)
	register(vax.TSTL, tst)
	bit := func(m *Machine) {
		aluNoStore(m)
		m.ccNZ(m.opVal(0)&m.opVal(1), m.ops[0].size())
	}
	register(vax.BITB, bit)
	register(vax.BITW, bit)
	register(vax.BITL, bit)

	// --- Booleans -------------------------------------------------------
	bool2 := func(f func(mask, dst uint64) uint64) execFn {
		return func(m *Machine) {
			r := f(m.opVal(0), m.opVal(1))
			m.tick(uw.sAluEntry)
			m.ccNZ(r, m.ops[1].size())
			m.storeResult(1, r)
		}
	}
	bool3 := func(f func(mask, src uint64) uint64) execFn {
		return func(m *Machine) {
			r := f(m.opVal(0), m.opVal(1))
			m.tick(uw.sAluEntry)
			m.ccNZ(r, m.ops[2].size())
			m.storeResult(2, r)
		}
	}
	bis := func(a, b uint64) uint64 { return a | b }
	bic := func(a, b uint64) uint64 { return ^a & b }
	xor := func(a, b uint64) uint64 { return a ^ b }
	for _, e := range []struct {
		op2, op3 vax.Opcode
		f        func(a, b uint64) uint64
	}{
		{vax.BISL2, vax.BISL3, bis}, {vax.BICL2, vax.BICL3, bic}, {vax.XORL2, vax.XORL3, xor},
		{vax.BISW2, vax.BISW3, bis}, {vax.BICW2, vax.BICW3, bic}, {vax.XORW2, vax.XORW3, xor},
		{vax.BISB2, vax.BISB3, bis}, {vax.BICB2, vax.BICB3, bic}, {vax.XORB2, vax.XORB3, xor},
	} {
		register(e.op2, bool2(e.f))
		register(e.op3, bool3(e.f))
	}

	// ADAWI: add aligned word, interlocked (an extra bus-interlock cycle).
	register(vax.ADAWI, func(m *Machine) {
		a, b := m.opVal(0), m.opVal(1)
		r := a + b
		m.tick(uw.sAluEntry)
		m.tick(uw.sAluExtra) // interlock
		m.ccAdd(a, b, r, 2)
		m.storeResult(1, r)
	})

	// --- Shifts (a couple of extra ALU cycles) ---------------------------
	register(vax.ASHL, func(m *Machine) {
		cnt := int8(uint8(m.opVal(0)))
		src := uint32(m.opVal(1))
		var r uint32
		if cnt >= 0 {
			r = src << uint(cnt%32)
		} else {
			r = uint32(int32(src) >> uint(-cnt%32))
		}
		m.tick(uw.sAluEntry)
		m.ticks(uw.sAluExtra, 2)
		m.ccNZ(uint64(r), 4)
		m.storeResult(2, uint64(r))
	})
	register(vax.ROTL, func(m *Machine) {
		cnt := uint(uint8(m.opVal(0))) % 32
		src := uint32(m.opVal(1))
		r := src<<cnt | src>>(32-cnt)
		if cnt == 0 {
			r = src
		}
		m.tick(uw.sAluEntry)
		m.ticks(uw.sAluExtra, 2)
		m.ccNZ(uint64(r), 4)
		m.storeResult(2, uint64(r))
	})

	// --- NOP ------------------------------------------------------------
	register(vax.NOP, func(m *Machine) { m.tick(uw.sAluEntry) })

	// INDEX subscript.rl, low.rl, high.rl, size.rl, indexin.rl, indexout.wl:
	// the array-subscript instruction (indexout = (indexin+subscript)*size)
	// with bounds checking; V set out of range.
	register(vax.INDEX, func(m *Machine) {
		m.tick(uw.sAluEntry)
		m.ticks(uw.sAluExtra, 5) // bounds check and multiply steps
		sub := int64(int32(uint32(m.opVal(0))))
		low := int64(int32(uint32(m.opVal(1))))
		high := int64(int32(uint32(m.opVal(2))))
		size := int64(int32(uint32(m.opVal(3))))
		in := int64(int32(uint32(m.opVal(4))))
		out := (in + sub) * size
		m.ccNZ(uint64(uint32(out)), 4)
		if sub < low || sub > high {
			m.PSL |= vax.PSLV
		}
		m.storeResult(5, uint64(uint32(out)))
	})

	// --- Simple conditional branches (plus BRB/BRW, microcode-shared) ----
	condBr := func(m *Machine) {
		m.tick(uw.brCondEntry)
		if m.branchCond(m.instr.Code) {
			m.branchTake(uw.brCondTaken)
		} else {
			m.branchSkip()
		}
	}
	for _, op := range []vax.Opcode{
		vax.BRB, vax.BRW, vax.BNEQ, vax.BEQL, vax.BGTR, vax.BLEQ,
		vax.BGEQ, vax.BLSS, vax.BGTRU, vax.BLEQU, vax.BVC, vax.BVS,
		vax.BCC, vax.BCS,
	} {
		register(op, condBr)
	}

	// --- Low-bit tests ----------------------------------------------------
	lowbit := func(want uint64) execFn {
		return func(m *Machine) {
			m.tick(uw.brLBEntry)
			if m.opVal(0)&1 == want {
				m.branchTake(uw.brLBTaken)
			} else {
				m.branchSkip()
			}
		}
	}
	register(vax.BLBS, lowbit(1))
	register(vax.BLBC, lowbit(0))

	// --- Loop branches -----------------------------------------------------
	register(vax.SOBGTR, sob(func(v int32) bool { return v > 0 }))
	register(vax.SOBGEQ, sob(func(v int32) bool { return v >= 0 }))
	register(vax.AOBLSS, aob(func(v, limit int32) bool { return v < limit }))
	register(vax.AOBLEQ, aob(func(v, limit int32) bool { return v <= limit }))
	register(vax.ACBB, acb)
	register(vax.ACBW, acb)
	register(vax.ACBL, acb)

	// --- Subroutine call and return ------------------------------------------
	bsb := func(m *Machine) {
		m.tick(uw.brBSBEntry)
		target := m.takeDisp()
		m.push32(uw.brBSBPush, m.ib.cur())
		m.redirect(uw.brBSBTaken, target)
	}
	register(vax.BSBB, bsb)
	register(vax.BSBW, bsb)
	register(vax.JSB, func(m *Machine) {
		m.tick(uw.brJSBEntry)
		m.push32(uw.brJSBPush, m.ib.cur())
		m.redirect(uw.brJSBTaken, m.opAddr(0))
	})
	register(vax.RSB, func(m *Machine) {
		m.tick(uw.brRSBEntry)
		ret := m.pop32(uw.brRSBRead)
		m.redirect(uw.brRSBTaken, ret)
	})
	register(vax.JMP, func(m *Machine) {
		m.tick(uw.brJMPEntry)
		m.redirect(uw.brJMPTaken, m.opAddr(0))
	})

	// --- Case branches ---------------------------------------------------------
	register(vax.CASEB, caseBr)
	register(vax.CASEW, caseBr)
	register(vax.CASEL, caseBr)
}

func sob(taken func(int32) bool) execFn {
	return func(m *Machine) {
		m.tick(uw.brLoopEntry)
		v := uint32(m.opVal(0)) - 1
		m.ccNZ(uint64(v), 4)
		m.storeResult(0, uint64(v))
		if taken(int32(v)) {
			m.branchTake(uw.brLoopTaken)
		} else {
			m.branchSkip()
		}
	}
}

func aob(taken func(v, limit int32) bool) execFn {
	return func(m *Machine) {
		m.tick(uw.brLoopEntry)
		limit := int32(uint32(m.opVal(0)))
		v := uint32(m.opVal(1)) + 1
		m.ccNZ(uint64(v), 4)
		m.storeResult(1, uint64(v))
		if taken(int32(v), limit) {
			m.branchTake(uw.brLoopTaken)
		} else {
			m.branchSkip()
		}
	}
}

// acb implements ACBB/ACBW/ACBL (add-compare-branch, word displacement).
func acb(m *Machine) {
	m.tick(uw.brLoopEntry)
	sz := m.ops[2].size()
	limit := signExtend(m.opVal(0), sz)
	add := signExtend(m.opVal(1), sz)
	v := signExtend(m.opVal(2), sz) + add
	m.ccNZ(uint64(v)&sizeMask(sz), sz)
	m.storeResult(2, uint64(v)&sizeMask(sz))
	taken := (add >= 0 && v <= limit) || (add < 0 && v >= limit)
	if taken {
		m.branchTake(uw.brLoopTaken)
	} else {
		m.branchSkip()
	}
}

// caseBr implements CASEx: selector check, displacement-table read, and an
// unconditional redirect (Table 2 reports case branches at 100%).
func caseBr(m *Machine) {
	m.tick(uw.brCaseEntry)
	m.tick(uw.brCaseWork)
	sz := m.ops[0].size()
	sel := (m.opVal(0) - m.opVal(1)) & sizeMask(sz)
	limit := m.opVal(2) & sizeMask(sz)
	base := m.ib.cur()
	var target uint32
	if sel <= limit {
		d := m.dread(uw.brCaseRead, base+2*uint32(sel), 2)
		target = base + uint32(int32(int16(uint16(d))))
	} else {
		target = base + 2*(uint32(limit)+1)
	}
	m.redirect(uw.brCaseTaken, target)
}
