package cpu

import (
	"testing"

	"vax780/internal/asm"
	"vax780/internal/mmu"
	"vax780/internal/vax"
)

// vmFixture is a minimal virtual-memory machine: system space identity-
// mapped, a user process in P0, an SCB, kernel/user stacks, a CHMK handler
// and a clock interrupt handler.
type vmFixture struct {
	m       *Machine
	probe   *testProbe
	counter uint32 // S0 VA of a counter the kernel handlers increment
}

const (
	fxSCBPhys   = 0x0200 // physical SCB
	fxSysPT     = 0x1000 // physical system page table
	fxKernCode  = 0x80004000
	fxKernStack = 0x80008000 // grows down
	fxUserPT    = 0x80010000 // S0 VA of the P0 page table (phys 0x10000)
	fxUserCode  = 0x00000200 // P0 VA
	fxUserStack = 0x00007000 // P0 VA, grows down
	fxCounter   = 0x80009000
)

func newVMFixture(t *testing.T, userSrc, kernSrc string) *vmFixture {
	t.Helper()
	m := New(Config{MemBytes: 1 << 20})
	p := newTestProbe()
	m.AttachProbe(p)

	// System page table: identity-map the first 256 S0 pages.
	for i := uint32(0); i < 256; i++ {
		m.Mem.WriteLong(fxSysPT+4*i, mmu.MakePTE(i, mmu.ProtKW))
	}
	// P0 page table lives at S0 0x80010000 -> phys 0x10000 (page 128),
	// which the identity map covers. P0 page j -> phys frame 64+j.
	for j := uint32(0); j < 64; j++ {
		m.Mem.WriteLong(0x10000+4*j, mmu.MakePTE(64+j, mmu.ProtUW))
	}
	m.MMU = mmu.Registers{
		SBR: fxSysPT, SLR: 256,
		P0BR: fxUserPT, P0LR: 64,
		P1BR: fxUserPT, P1LR: 0,
		Enabled: true,
	}
	m.SetIPR(IPRSlotSCBB, fxSCBPhys)

	// Kernel code (system space).
	kim, err := asm.Assemble(fxKernCode, kernSrc)
	if err != nil {
		t.Fatalf("kernel assemble: %v", err)
	}
	m.Mem.Load(fxKernCode&0x3FFFFFFF, kim.Bytes)

	// User code (P0): phys = 64*512 + va.
	uim, err := asm.Assemble(fxUserCode, userSrc)
	if err != nil {
		t.Fatalf("user assemble: %v", err)
	}
	m.Mem.Load(64*mmu.PageSize+fxUserCode, uim.Bytes)

	// SCB vectors.
	chmk, ok := kim.Addr("chmk")
	if ok {
		m.Mem.WriteLong(fxSCBPhys+SCBCHMK, chmk)
	}
	clock, ok := kim.Addr("clock")
	if ok {
		m.Mem.WriteLong(fxSCBPhys+SCBClock, clock)
	}
	soft, ok := kim.Addr("soft")
	if ok {
		for lvl := 1; lvl <= 15; lvl++ {
			m.Mem.WriteLong(fxSCBPhys+uint32(SCBSoftBase+4*lvl), soft)
		}
	}

	// Start in user mode with banked stacks.
	m.SetIPR(IPRSlotKSP, fxKernStack)
	m.PSL = 3<<24 | 3<<22 // current mode user, previous user
	m.R[vax.SP] = fxUserStack
	m.SetPC(fxUserCode)
	return &vmFixture{m: m, probe: p, counter: fxCounter}
}

const kernelHandlers = `
chmk:	MOVL	(SP)+, R0	; service code
	TSTL	R0
	BEQL	stop
	INCL	@#0x80009000	; counter
	REI
stop:	HALT
clock:	INCL	@#0x80009004	; clock tick counter
	REI
soft:	INCL	@#0x80009008
	REI
`

func TestVMUserKernelRoundTrip(t *testing.T) {
	fx := newVMFixture(t, `
	MOVL	#10, R6
loop:	CHMK	#1
	SOBGTR	R6, loop
	CHMK	#0		; ask the kernel to halt
	HALT			; not reached
`, kernelHandlers)
	res := fx.m.Run(5_000_000)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !res.Halted {
		t.Fatal("machine did not halt")
	}
	// The counter lives at phys 0x9000 (identity map).
	if got := fx.m.Mem.ReadLong(0x9000); got != 10 {
		t.Errorf("CHMK counter = %d, want 10", got)
	}
	// User-mode execution must have triggered TB activity.
	st := fx.m.TLB.Stats()
	if st.Misses[0]+st.Misses[1] == 0 {
		t.Error("expected TB misses")
	}
	// TB miss service must be visible to the monitor (the paper's key
	// property: the TB is microcode-controlled).
	entryD := CS.MustLookup("mm.tbmiss.d.entry")
	entryI := CS.MustLookup("mm.tbmiss.i.entry")
	if fx.probe.counts[entryD]+fx.probe.counts[entryI] == 0 {
		t.Error("TB miss routine not observed by the monitor")
	}
	// Cycle conservation still holds with VM enabled.
	if fx.probe.total() != fx.m.Cycle() {
		t.Errorf("histogram %d != cycles %d", fx.probe.total(), fx.m.Cycle())
	}
}

func TestVMClockInterrupt(t *testing.T) {
	fx := newVMFixture(t, `
	MOVL	#4000, R6
loop:	SOBGTR	R6, loop
	CHMK	#0
`, kernelHandlers)
	// A clock interrupt every 997 cycles for a while.
	for c := uint64(1000); c < 20000; c += 997 {
		fx.m.QueueIRQ(IRQ{At: c, IPL: IPLClock, Vector: SCBClock})
	}
	res := fx.m.Run(5_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	ticks := fx.m.Mem.ReadLong(0x9004)
	if ticks == 0 {
		t.Fatal("no clock interrupts delivered")
	}
	if fx.m.HW().Interrupts != uint64(ticks) {
		t.Errorf("HW interrupts %d != handler count %d", fx.m.HW().Interrupts, ticks)
	}
	// Interrupt microcode must appear in the IntExcept row.
	if fx.probe.counts[CS.MustLookup("int.irq.entry")] == 0 {
		t.Error("interrupt entry not counted")
	}
}

func TestVMSoftwareInterrupt(t *testing.T) {
	// Kernel requests a software interrupt at IPL 3 via MTPR SIRR while at
	// high IPL; it must be delivered only after IPL drops (the REI).
	fx := newVMFixture(t, `
	CHMK	#1		; kernel handler requests the soft interrupt
	MOVL	#100, R6
l:	SOBGTR	R6, l
	CHMK	#0
`, `
chmk:	MOVL	(SP)+, R0
	TSTL	R0
	BEQL	stop
	MTPR	#21, #18	; IPL = 21: block the soft interrupt
	MTPR	#3, #20		; SIRR <- level 3
	MTPR	#0, #18		; IPL back to 0
	REI
stop:	HALT
soft:	INCL	@#0x80009008
	REI
`)
	res := fx.m.Run(5_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	if got := fx.m.Mem.ReadLong(0x9008); got != 1 {
		t.Errorf("soft interrupt count = %d, want 1", got)
	}
	if fx.m.HW().SIRRRequests != 1 {
		t.Errorf("SIRR requests = %d, want 1", fx.m.HW().SIRRRequests)
	}
	if fx.probe.counts[CS.MustLookup("exec.sys.mtpr.sirr")] != 1 {
		t.Error("SIRR microword not counted exactly once")
	}
}

func TestVMTBMissServiceCost(t *testing.T) {
	// Touch many distinct pages: each first touch costs a TB miss of
	// roughly the paper's 21.6 cycles (§4.2).
	fx := newVMFixture(t, `
	MOVL	#0x1000, R2	; page-aligned base within P0
	MOVL	#24, R6
l:	MOVL	(R2), R3
	ADDL2	#512, R2	; next page
	SOBGTR	R6, l
	CHMK	#0
`, kernelHandlers)
	res := fx.m.Run(5_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	entries := fx.probe.counts[CS.MustLookup("mm.tbmiss.d.entry")] +
		fx.probe.counts[CS.MustLookup("mm.tbmiss.i.entry")]
	if entries < 24 {
		t.Fatalf("TB miss entries = %d, want >= 24", entries)
	}
	var mmCycles uint64
	for _, name := range []string{"mm.tbmiss.d.entry", "mm.tbmiss.i.entry", "mm.tbmiss.work", "mm.tbmiss.read", "mm.tbmiss.done", "abort.utrap"} {
		w := CS.MustLookup(name)
		mmCycles += fx.probe.counts[w] + fx.probe.stalls[w]
	}
	perMiss := float64(mmCycles) / float64(entries)
	if perMiss < 12 || perMiss > 35 {
		t.Errorf("TB miss service = %.1f cycles, want in the vicinity of 21.6", perMiss)
	}
}

func TestVMUserHaltFaults(t *testing.T) {
	// HALT in user mode is a privileged-instruction fault, delivered
	// through the SCB.
	fx := newVMFixture(t, `
	HALT
`, `
chmk:	HALT
`)
	fx.m.Mem.WriteLong(fxSCBPhys+SCBReservedOp, fxKernCode) // chmk: HALT
	res := fx.m.Run(100_000)
	if !res.Halted {
		t.Fatal("expected halt via fault handler")
	}
	if fx.m.HW().Exceptions != 1 {
		t.Errorf("exceptions = %d, want 1", fx.m.HW().Exceptions)
	}
}

func TestArithmeticOverflowTrap(t *testing.T) {
	// With the PSW IV bit set, integer overflow traps through the SCB.
	im, err := asm.Assemble(0x1000, `
	BISPSW	#0x20		; enable integer overflow traps
	MOVL	#0x7FFFFFFF, R1
	ADDL2	#1, R1		; overflows -> trap
	MOVL	#7, R9		; resumed here after the handler
	HALT
ovf:	INCL	@#0x3000
	MOVL	(SP)+, R8	; pop the trap type code
	REI
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetIPR(IPRSlotSCBB, 0x200)
	m.Mem.WriteLong(0x200+SCBArithTrap, im.MustAddr("ovf"))
	m.SetPC(im.Org)
	res := m.Run(100_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("halted=%v err=%v", res.Halted, res.Err)
	}
	if m.Mem.ReadLong(0x3000) != 1 {
		t.Errorf("trap handler ran %d times, want 1", m.Mem.ReadLong(0x3000))
	}
	if m.R[8] != 1 {
		t.Errorf("trap type code = %d, want 1 (integer overflow)", m.R[8])
	}
	if m.R[9] != 7 {
		t.Error("execution did not resume after the trap")
	}
}

func TestNoTrapWithoutIV(t *testing.T) {
	m, _ := run(t, `
	MOVL	#0x7FFFFFFF, R1
	ADDL2	#1, R1		; overflow, but IV disabled
	MOVL	#7, R9
	HALT
`)
	if m.HW().Exceptions != 0 {
		t.Errorf("exceptions = %d with IV disabled", m.HW().Exceptions)
	}
	if m.R[9] != 7 {
		t.Error("program did not complete")
	}
}

func TestUnmappedFetchIsFatalWithoutHandler(t *testing.T) {
	m := New(Config{MemBytes: 1 << 20})
	m.MMU = mmu.Registers{SBR: 0x4000, SLR: 4, Enabled: true}
	// Map nothing valid; no SCB either: the length violation cannot be
	// delivered and must surface as a machine error, not a hang.
	m.SetPC(0x80000000 + 100*mmu.PageSize) // beyond SLR
	res := m.Run(100_000)
	if res.Err == nil {
		t.Fatal("expected a machine error for an unmapped fetch")
	}
}

func TestFaultWithEmptyVectorFails(t *testing.T) {
	fx := newVMFixture(t, `
	HALT
`, `
chmk:	HALT
`)
	// Leave SCBReservedOp empty: the user-mode HALT fault has nowhere to
	// go and the machine must stop with an error.
	res := fx.m.Run(100_000)
	if res.Err == nil {
		t.Fatal("expected an unhandled-exception error")
	}
}
