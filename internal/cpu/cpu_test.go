package cpu

import (
	"testing"

	"vax780/internal/asm"
	"vax780/internal/cache"
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// testProbe is a minimal histogram used to validate cycle conservation.
type testProbe struct {
	counts map[uint16]uint64
	stalls map[uint16]uint64
}

func newTestProbe() *testProbe {
	return &testProbe{counts: map[uint16]uint64{}, stalls: map[uint16]uint64{}}
}

func (p *testProbe) Count(upc uint16, n uint64) { p.counts[upc] += n }
func (p *testProbe) Stall(upc uint16, n uint64) { p.stalls[upc] += n }

func (p *testProbe) total() uint64 {
	var t uint64
	for _, v := range p.counts {
		t += v
	}
	for _, v := range p.stalls {
		t += v
	}
	return t
}

// run assembles src at 0x1000, loads it into a physically-addressed
// machine, and runs it to HALT.
func run(t *testing.T, src string) (*Machine, *testProbe) {
	t.Helper()
	m, p, _ := runImage(t, src)
	return m, p
}

func runImage(t *testing.T, src string) (*Machine, *testProbe, *asm.Image) {
	t.Helper()
	im, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(Config{MemBytes: 1 << 20})
	p := newTestProbe()
	m.AttachProbe(p)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	res := m.Run(2_000_000)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !res.Halted {
		t.Fatal("program did not halt")
	}
	return m, p, im
}

func TestMovlAndHalt(t *testing.T) {
	m, _ := run(t, `
	MOVL	#42, R0
	MOVL	R0, R1
	HALT
`)
	if m.R[0] != 42 || m.R[1] != 42 {
		t.Errorf("R0=%d R1=%d, want 42", m.R[0], m.R[1])
	}
	if m.Instructions() != 3 {
		t.Errorf("instret = %d, want 3", m.Instructions())
	}
}

func TestFibonacciLoop(t *testing.T) {
	m, _ := run(t, `
	MOVL	#0, R0		; fib(0)
	MOVL	#1, R1		; fib(1)
	MOVL	#10, R2		; iterations
loop:	ADDL3	R0, R1, R3
	MOVL	R1, R0
	MOVL	R3, R1
	SOBGTR	R2, loop
	HALT
`)
	// After 10 iterations: R1 = fib(11) = 89.
	if m.R[1] != 89 {
		t.Errorf("R1 = %d, want 89", m.R[1])
	}
}

func TestMemoryOperandsAndAddressing(t *testing.T) {
	m, _ := run(t, `
	MOVL	#0x2000, R2
	MOVL	#7, (R2)
	MOVL	(R2), R3
	ADDL2	#3, (R2)
	MOVL	(R2)+, R4
	MOVL	#0x11, -(R2)
	MOVL	4(R2), R5	; reads 0x2004? no: R2 back at 0x2000, disp 4 -> 0x2004
	MOVL	#0x2100, R6
	MOVL	#0x2200, (R6)
	MOVL	@(R6)+, R7	; pointer at 0x2100 -> reads 0x2200
	MOVL	#99, @#0x2200
	MOVL	@#0x2200, R8
	HALT
`)
	if m.R[3] != 7 {
		t.Errorf("R3 = %d, want 7", m.R[3])
	}
	if m.R[4] != 10 {
		t.Errorf("R4 = %d, want 10", m.R[4])
	}
	if m.R[8] != 99 {
		t.Errorf("R8 = %d, want 99", m.R[8])
	}
	if m.Mem.ReadLong(0x2000) != 0x11 {
		t.Errorf("mem[0x2000] = %#x, want 0x11", m.Mem.ReadLong(0x2000))
	}
}

func TestIndexedAddressing(t *testing.T) {
	m, _ := run(t, `
	MOVL	#0x3000, R1
	MOVL	#2, R2
	MOVL	#55, 0(R1)[R2]	; writes 0x3000 + 4*2
	MOVL	0(R1)[R2], R3
	HALT
`)
	if m.Mem.ReadLong(0x3008) != 55 {
		t.Errorf("mem[0x3008] = %d, want 55", m.Mem.ReadLong(0x3008))
	}
	if m.R[3] != 55 {
		t.Errorf("R3 = %d, want 55", m.R[3])
	}
}

func TestConditionalBranches(t *testing.T) {
	m, _ := run(t, `
	MOVL	#5, R0
	CMPL	R0, #5
	BEQL	eq
	MOVL	#1, R9
eq:	CMPL	R0, #9
	BGEQ	no
	MOVL	#2, R8		; taken path: 5 < 9
no:	TSTL	R0
	BNEQ	done
	MOVL	#3, R7
done:	HALT
`)
	if m.R[9] != 0 {
		t.Error("BEQL should have skipped R9 store")
	}
	if m.R[8] != 2 {
		t.Error("BGEQ should not have branched (5 < 9)")
	}
	if m.R[7] != 0 {
		t.Error("BNEQ should have branched")
	}
}

func TestSubroutineLinkage(t *testing.T) {
	m, _ := run(t, `
	MOVL	#3, R0
	BSBW	double
	BSBW	double
	HALT
double:	ADDL2	R0, R0
	RSB
`)
	if m.R[0] != 12 {
		t.Errorf("R0 = %d, want 12", m.R[0])
	}
}

func TestCallsRet(t *testing.T) {
	m, _ := run(t, `
	MOVL	#100, R2	; clobbered by callee, restored by RET
	MOVL	#5, R3		; not saved
	PUSHL	#7		; argument
	CALLS	#1, func
	HALT
	; procedure with entry mask saving R2
func:	.word	0x0004
	MOVL	4(AP), R0	; first argument
	MOVL	#0, R2		; clobber saved register
	ADDL2	#1, R3		; clobber unsaved register
	RET
`)
	if m.R[0] != 7 {
		t.Errorf("R0 = %d, want 7 (argument)", m.R[0])
	}
	if m.R[2] != 100 {
		t.Errorf("R2 = %d, want 100 (restored by RET)", m.R[2])
	}
	if m.R[3] != 6 {
		t.Errorf("R3 = %d, want 6 (not in mask)", m.R[3])
	}
	// CALLS must remove the argument from the stack.
	if m.R[vax.SP] != 0x8000 {
		t.Errorf("SP = %#x, want 0x8000", m.R[vax.SP])
	}
}

func TestPushrPopr(t *testing.T) {
	m, _ := run(t, `
	MOVL	#1, R1
	MOVL	#2, R2
	MOVL	#3, R3
	PUSHR	#0x0E		; push R1,R2,R3
	CLRL	R1
	CLRL	R2
	CLRL	R3
	POPR	#0x0E
	HALT
`)
	if m.R[1] != 1 || m.R[2] != 2 || m.R[3] != 3 {
		t.Errorf("R1,R2,R3 = %d,%d,%d want 1,2,3", m.R[1], m.R[2], m.R[3])
	}
}

func TestCaseBranch(t *testing.T) {
	m, _ := run(t, `
	MOVL	#1, R0
	CASEL	R0, #0, #2, c0, c1, c2
	MOVL	#111, R5	; out-of-range fallthrough
	BRB	done
c0:	MOVL	#10, R5
	BRB	done
c1:	MOVL	#11, R5
	BRB	done
c2:	MOVL	#12, R5
done:	HALT
`)
	if m.R[5] != 11 {
		t.Errorf("R5 = %d, want 11", m.R[5])
	}
}

func TestCaseOutOfRange(t *testing.T) {
	m, _ := run(t, `
	MOVL	#9, R0
	CASEL	R0, #0, #1, c0, c1
	MOVL	#77, R5
	BRB	done
c0:	MOVL	#10, R5
	BRB	done
c1:	MOVL	#11, R5
done:	HALT
`)
	if m.R[5] != 77 {
		t.Errorf("R5 = %d, want 77 (fallthrough)", m.R[5])
	}
}

func TestLoopBranches(t *testing.T) {
	m, _ := run(t, `
	CLRL	R0
	MOVL	#4, R1
l1:	INCL	R0
	SOBGTR	R1, l1
	CLRL	R2
	MOVL	#0, R3
l2:	INCL	R2
	AOBLSS	#3, R3, l2
	HALT
`)
	if m.R[0] != 4 {
		t.Errorf("SOBGTR count R0 = %d, want 4", m.R[0])
	}
	if m.R[2] != 3 {
		t.Errorf("AOBLSS count R2 = %d, want 3", m.R[2])
	}
}

func TestMovc3(t *testing.T) {
	m, _, im := runImage(t, `
	MOVC3	#13, src, dst
	HALT
src:	.ascii	"hello, world!"
dst:	.space	16
`)
	want := "hello, world!"
	got := string(m.Mem.Read(im.MustAddr("dst"), 13))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dst = %q, want %q", got, want)
		}
	}
	if m.R[0] != 0 {
		t.Errorf("R0 = %d, want 0 after MOVC3", m.R[0])
	}
}

func TestBitFieldOps(t *testing.T) {
	m, _ := run(t, `
	MOVL	#0x3000, R1
	MOVL	#0xABCD1234, (R1)
	EXTZV	#4, #8, (R1), R2	; bits 4..11 of 0x...1234 = 0x23
	MOVL	#0xF, R3
	INSV	R3, #0, #4, (R1)	; low nibble becomes F
	MOVL	(R1), R4
	HALT
`)
	if m.R[2] != 0x23 {
		t.Errorf("EXTZV = %#x, want 0x23", m.R[2])
	}
	if m.R[4] != 0xABCD123F {
		t.Errorf("INSV result = %#x, want 0xABCD123F", m.R[4])
	}
}

func TestBitBranches(t *testing.T) {
	m, _ := run(t, `
	MOVL	#4, R0		; bit 2 set
	BBS	#2, R0, yes
	MOVL	#1, R5
yes:	BBSS	#3, R0, was	; bit 3 clear: no branch, but set it
	MOVL	#1, R6
was:	BBS	#3, R0, done	; now set
	MOVL	#1, R7
done:	HALT
`)
	if m.R[5] != 0 {
		t.Error("BBS #2 should have branched")
	}
	if m.R[6] != 1 {
		t.Error("BBSS on clear bit should not branch")
	}
	if m.R[0]&8 == 0 {
		t.Error("BBSS should have set bit 3")
	}
	if m.R[7] != 0 {
		t.Error("BBS #3 should have branched after BBSS set it")
	}
}

func TestFloatOps(t *testing.T) {
	m, _ := run(t, `
	CVTLF	#7, R0
	CVTLF	#3, R1
	ADDF2	R1, R0		; R0 = 10.0
	MULF2	R0, R0		; R0 = 100.0
	CVTFL	R0, R2
	MULL3	#6, #7, R3
	DIVL3	#5, #100, R4
	HALT
`)
	if m.R[2] != 100 {
		t.Errorf("float chain R2 = %d, want 100", m.R[2])
	}
	if m.R[3] != 42 {
		t.Errorf("MULL3 = %d, want 42", m.R[3])
	}
	if m.R[4] != 20 {
		t.Errorf("DIVL3 = %d, want 20", m.R[4])
	}
}

func TestDecimalOps(t *testing.T) {
	m, _, im := runImage(t, `
	CVTLP	#1234, #5, pk1
	CVTLP	#766, #5, pk2
	ADDP4	#5, pk2, #5, pk1	; pk1 += pk2 -> 2000
	CVTPL	#5, pk1, R0
	MOVP	#5, pk1, pk3
	CVTPL	#5, pk3, R1
	HALT
pk1:	.space	4
pk2:	.space	4
pk3:	.space	4
`)
	_ = im
	if m.R[0] != 2000 {
		t.Errorf("ADDP4 result = %d, want 2000", m.R[0])
	}
	if m.R[1] != 2000 {
		t.Errorf("MOVP round trip = %d, want 2000", m.R[1])
	}
}

func TestQueueInstructions(t *testing.T) {
	m, _, im := runImage(t, `
	; header is a self-linked queue head
	MOVAL	head, R0
	MOVL	R0, (R0)	; head.flink = head
	MOVL	R0, 4(R0)	; head.blink = head
	INSQUE	e1, head
	INSQUE	e2, head	; e2 inserted at head: head -> e2 -> e1
	MOVL	(R0), R4	; first entry address (e2)
	REMQUE	(R4), R3	; removes e2
	HALT
head:	.space	8
e1:	.space	8
e2:	.space	8
`)
	if m.R[3] != im.MustAddr("e2") {
		t.Errorf("REMQUE removed %#x, want e2 %#x", m.R[3], im.MustAddr("e2"))
	}
	if m.Mem.ReadLong(im.MustAddr("head")) != im.MustAddr("e1") {
		t.Errorf("head.flink = %#x, want e1", m.Mem.ReadLong(im.MustAddr("head")))
	}
}

func TestCharacterSearch(t *testing.T) {
	m, _ := run(t, `
	LOCC	#0x58, #10, str		; find 'X'
	MOVL	R0, R6
	HALT
str:	.ascii	"abcdXfghij"
`)
	// 'X' at index 4: R0 = remaining = 10-4 = 6.
	if m.R[6] != 6 {
		t.Errorf("LOCC remaining = %d, want 6", m.R[6])
	}
}

func TestCycleConservation(t *testing.T) {
	// Every cycle the machine spends must appear in the histogram: the
	// paper's technique classifies EVERY processor cycle (§5).
	// MOVC3 clobbers R0-R5 (architectural), so the loop counter lives in R7.
	m, p := run(t, `
	MOVL	#50, R7
loop:	MOVL	#0x4000, R8
	MOVL	(R8), R9
	ADDL2	#1, (R8)
	MOVC3	#13, src, dst
	SOBGTR	R7, loop
	HALT
src:	.ascii	"0123456789abc"
dst:	.space	16
`)
	if got, want := p.total(), m.Cycle(); got != want {
		t.Errorf("histogram total %d != machine cycles %d", got, want)
	}
}

func TestInstructionCountViaIRD(t *testing.T) {
	m, p := run(t, `
	MOVL	#3, R0
l:	SOBGTR	R0, l
	HALT
`)
	ird := CS.MustLookup("decode.ird")
	if p.counts[ird] != m.Instructions() {
		t.Errorf("IRD count %d != instret %d", p.counts[ird], m.Instructions())
	}
}

func TestBranchTakenCounting(t *testing.T) {
	_, p := run(t, `
	MOVL	#5, R0
l:	SOBGTR	R0, l	; taken 4x, untaken 1x
	HALT
`)
	entry := CS.MustLookup("exec.br.loop.entry")
	taken := CS.MustLookup("exec.br.loop.taken")
	if p.counts[entry] != 5 {
		t.Errorf("loop entries = %d, want 5", p.counts[entry])
	}
	if p.counts[taken] != 4 {
		t.Errorf("loop taken = %d, want 4", p.counts[taken])
	}
}

func TestWriteStallsObserved(t *testing.T) {
	// Back-to-back memory writes must produce write stalls with the
	// one-longword write buffer: CLRQ writes two longwords on consecutive
	// microcycles, so its second write always stalls.
	_, p := run(t, `
	MOVL	#0x5000, R1
	MOVL	#20, R2
l:	CLRQ	(R1)
	CLRQ	8(R1)
	SOBGTR	R2, l
	HALT
`)
	var wstall uint64
	for upc, n := range p.stalls {
		if w := CS.Word(upc).Name; w == "spec1.write.data" || w == "spec1.write.data2" ||
			w == "spec26.write.data" || w == "spec26.write.data2" {
			wstall += n
		}
	}
	if wstall == 0 {
		t.Error("expected write stalls from back-to-back writes")
	}
}

func TestColdCacheReadStalls(t *testing.T) {
	_, p := run(t, `
	MOVL	#0x9000, R1
	MOVL	#64, R2
l:	MOVL	(R1)+, R3	; sequential cold reads
	SOBGTR	R2, l
	HALT
`)
	var rstall uint64
	for _, n := range p.stalls {
		rstall += n
	}
	if rstall == 0 {
		t.Error("expected read stalls on cold cache")
	}
}

// TestMonitorReadsMatchCacheHardware cross-validates the two measurement
// paths: the monitor's read-class execution counts (microcode view) must
// equal the cache's D-stream reference count (hardware view), since every
// D-stream longword reference is one cycle at a read-class microword.
func TestMonitorReadsMatchCacheHardware(t *testing.T) {
	m, p := run(t, `
	MOVL	#100, R7
l:	MOVL	(R7), R9
	ADDL2	#4, R7
	MOVQ	(R7), R2
	CMPL	R7, #500
	BLSS	l
	HALT
`)
	var monReads, monWrites uint64
	for upc, n := range p.counts {
		switch CS.Word(upc).Class {
		case ucode.ClassRead:
			monReads += n
		case ucode.ClassWrite:
			monWrites += n
		}
	}
	hwReads := m.Cache.Stats().Reads(cache.DStream)
	if monReads != hwReads {
		t.Errorf("monitor reads %d != cache D-stream reads %d", monReads, hwReads)
	}
	hwWrites := m.Cache.Stats().WriteHits + m.Cache.Stats().WriteMisses
	if monWrites != hwWrites {
		t.Errorf("monitor writes %d != cache writes %d", monWrites, hwWrites)
	}
}

// TestUnalignedReferenceAccounting: an unaligned longword read crosses a
// longword boundary: two physical references plus alignment microcode in
// the Mem Mgmt row (§3.3.1).
func TestUnalignedReferenceAccounting(t *testing.T) {
	m, p := run(t, `
	MOVL	#0x2002, R1	; unaligned by 2
	MOVL	(R1), R2
	HALT
`)
	if m.HW().Unaligned != 1 {
		t.Errorf("unaligned count = %d, want 1", m.HW().Unaligned)
	}
	align := CS.MustLookup("mm.align.entry")
	if p.counts[align] != 1 {
		t.Errorf("alignment microcode entries = %d, want 1", p.counts[align])
	}
	// The read-class word at spec1.read.data ticked twice (two refs).
	rd := CS.MustLookup("spec1.read.data")
	if p.counts[rd] != 2 {
		t.Errorf("read word executions = %d, want 2 (split reference)", p.counts[rd])
	}
}

// TestInterruptPriorityNesting: a higher-IPL interrupt preempts a lower
// one; an equal or lower request waits for REI.
func TestInterruptPriorityNesting(t *testing.T) {
	im, err := asm.Assemble(0x1000, `
	MOVL	#1000, R7
l:	SOBGTR	R7, l
	HALT
	; low-priority handler: spins a while, so the clock interrupt nests
low:	INCL	@#0x3000
	MOVL	#200, R6
lw:	SOBGTR	R6, lw
	MOVL	@#0x3004, R5	; observe high count while still in low
	MOVL	R5, @#0x3008
	REI
high:	INCL	@#0x3004
	REI
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetIPR(IPRSlotSCBB, 0x200)
	m.Mem.WriteLong(0x200+SCBTerminal, im.MustAddr("low")) // IPL 20
	m.Mem.WriteLong(0x200+SCBClock, im.MustAddr("high"))   // IPL 24
	m.SetPC(im.Org)
	m.QueueIRQ(IRQ{At: 100, IPL: IPLTerminal, Vector: SCBTerminal})
	m.QueueIRQ(IRQ{At: 120, IPL: IPLClock, Vector: SCBClock})
	res := m.Run(1_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("halted=%v err=%v", res.Halted, res.Err)
	}
	if m.Mem.ReadLong(0x3000) != 1 || m.Mem.ReadLong(0x3004) != 1 {
		t.Fatalf("handlers ran %d/%d times", m.Mem.ReadLong(0x3000), m.Mem.ReadLong(0x3004))
	}
	// The high handler must have nested inside the low one.
	if m.Mem.ReadLong(0x3008) != 1 {
		t.Errorf("high-IPL interrupt did not preempt the low handler")
	}
}

// TestEqualIPLDoesNotPreempt: a request at the current IPL waits.
func TestEqualIPLDoesNotPreempt(t *testing.T) {
	im, err := asm.Assemble(0x1000, `
	MOVL	#2000, R7
l:	SOBGTR	R7, l
	HALT
h:	INCL	@#0x3000
	MOVL	@#0x3000, R5
	MOVL	R5, @#0x3004	; record depth at entry: must always be 1-at-a-time
	REI
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetIPR(IPRSlotSCBB, 0x200)
	m.Mem.WriteLong(0x200+SCBTerminal, im.MustAddr("h"))
	m.SetPC(im.Org)
	m.QueueIRQ(IRQ{At: 100, IPL: IPLTerminal, Vector: SCBTerminal})
	m.QueueIRQ(IRQ{At: 101, IPL: IPLTerminal, Vector: SCBTerminal})
	res := m.Run(1_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("halted=%v err=%v", res.Halted, res.Err)
	}
	if m.Mem.ReadLong(0x3000) != 2 {
		t.Errorf("handler ran %d times, want 2 (second deferred to REI)", m.Mem.ReadLong(0x3000))
	}
}

func TestStatsReport(t *testing.T) {
	m, _ := run(t, `
	MOVL	#50, R7
l:	MOVL	#0x4000, R8
	INCL	(R8)
	SOBGTR	R7, l
	HALT
`)
	s := m.StatsReport()
	for _, want := range []string{"machine:", "cache:", "tb:", "sbi:", "wbuf:", "ib:", "events:", "CPI"} {
		if !containsSub(s, want) {
			t.Errorf("stats report missing %q:\n%s", want, s)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
