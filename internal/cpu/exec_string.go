package cpu

// Execute-phase microroutines for the CHARACTER group. The move loops work
// a longword at a time; the real microcode was "explicitly written to avoid
// write stalls by writing only in every sixth cycle" (§4.3, §5), modelled
// here by compute padding around each write (removable via the
// NoCharWriteSpacing ablation).

import "vax780/internal/vax"

// charSpacing pads the string-move loop so writes land ≥6 cycles apart.
func (m *Machine) charSpacing(n int) {
	if m.cfg.NoCharWriteSpacing {
		return
	}
	m.ticks(uw.chWork, n)
}

// movcSetup burns the common string-instruction setup microcycles.
func (m *Machine) movcSetup() {
	m.tick(uw.chEntry)
	m.ticks(uw.chSetup, 7)
}

// movcLoop copies length bytes from src to dst a longword at a time with
// real timed reads and writes, then handles the byte tail.
func (m *Machine) movcLoop(length int, src, dst uint32) {
	for length >= 4 {
		v := m.dread(uw.chRead, src, 4)
		m.ticks(uw.chWork, 3)
		m.dwrite(uw.chWrite, dst, 4, v)
		m.charSpacing(4)
		src += 4
		dst += 4
		length -= 4
	}
	for length > 0 {
		v := m.dread(uw.chRead, src, 1)
		m.ticks(uw.chByte, 2)
		m.dwrite(uw.chWrite, dst, 1, v)
		m.charSpacing(4)
		src++
		dst++
		length--
	}
}

func init() {
	// MOVC3 len.rw, src.ab, dst.ab
	register(vax.MOVC3, func(m *Machine) {
		m.movcSetup()
		length := int(uint16(m.opVal(0)))
		src, dst := m.opAddr(1), m.opAddr(2)
		m.movcLoop(length, src, dst)
		m.tick(uw.chDone)
		m.R[0], m.R[2], m.R[4] = 0, 0, 0
		m.R[1] = src + uint32(length)
		m.R[3] = dst + uint32(length)
		m.R[5] = dst + uint32(length)
		m.setCC(false, true, false, false)
	})

	// MOVC5 srclen.rw, src.ab, fill.rb, dstlen.rw, dst.ab
	register(vax.MOVC5, func(m *Machine) {
		m.movcSetup()
		m.ticks(uw.chSetup, 2)
		srclen := int(uint16(m.opVal(0)))
		dstlen := int(uint16(m.opVal(3)))
		src, dst := m.opAddr(1), m.opAddr(4)
		fill := byte(m.opVal(2))
		n := srclen
		if n > dstlen {
			n = dstlen
		}
		m.movcLoop(n, src, dst)
		// Fill the remainder (no source reads).
		for i := n; i < dstlen; i += 4 {
			w := dstlen - i
			if w > 4 {
				w = 4
			}
			fv := uint64(fill) | uint64(fill)<<8 | uint64(fill)<<16 | uint64(fill)<<24
			m.tick(uw.chWork)
			m.dwrite(uw.chWrite, dst+uint32(i), w, fv)
			m.charSpacing(3)
		}
		m.tick(uw.chDone)
		m.R[0] = uint32(srclen - n)
		m.R[1] = src + uint32(n)
		m.R[2], m.R[4] = 0, 0
		m.R[3] = dst + uint32(dstlen)
		m.R[5] = dst + uint32(dstlen)
		m.ccCmp(uint64(srclen), uint64(dstlen), 4)
	})

	// CMPC3 len.rw, src1.ab, src2.ab
	register(vax.CMPC3, func(m *Machine) {
		m.movcSetup()
		length := int(uint16(m.opVal(0)))
		a, b := m.opAddr(1), m.opAddr(2)
		i := 0
		for ; i+4 <= length; i += 4 {
			va := m.dread(uw.chRead, a+uint32(i), 4)
			vb := m.dread(uw.chRead, b+uint32(i), 4)
			m.ticks(uw.chWork, 3)
			if va != vb {
				break
			}
		}
		// Byte-resolve the mismatch (or the tail).
		var ba, bb uint64
		for ; i < length; i++ {
			ba = m.dread(uw.chRead, a+uint32(i), 1)
			bb = m.dread(uw.chRead, b+uint32(i), 1)
			m.tick(uw.chByte)
			if ba != bb {
				break
			}
		}
		m.tick(uw.chDone)
		m.R[0] = uint32(length - i)
		m.R[1] = a + uint32(i)
		m.R[2] = uint32(length - i)
		m.R[3] = b + uint32(i)
		m.ccCmp(ba, bb, 1)
	})

	// CMPC5 shares the CMPC3 microcode shape with fill handling.
	register(vax.CMPC5, func(m *Machine) {
		m.movcSetup()
		m.ticks(uw.chSetup, 2)
		len1 := int(uint16(m.opVal(0)))
		len2 := int(uint16(m.opVal(3)))
		a, b := m.opAddr(1), m.opAddr(4)
		fill := uint64(byte(m.opVal(2)))
		n := len1
		if len2 > n {
			n = len2
		}
		var ba, bb uint64
		i := 0
		for ; i < n; i++ {
			if i < len1 {
				ba = m.dread(uw.chRead, a+uint32(i), 1)
			} else {
				ba = fill
			}
			if i < len2 {
				bb = m.dread(uw.chRead, b+uint32(i), 1)
			} else {
				bb = fill
			}
			m.tick(uw.chByte)
			if ba != bb {
				break
			}
		}
		m.tick(uw.chDone)
		m.ccCmp(ba, bb, 1)
	})

	// MOVTC srclen.rw, src.ab, fill.rb, table.ab, dstlen.rw, dst.ab:
	// translate characters through a 256-byte table while moving.
	register(vax.MOVTC, func(m *Machine) {
		m.movcSetup()
		m.ticks(uw.chSetup, 2)
		srclen := int(uint16(m.opVal(0)))
		src := m.opAddr(1)
		fill := byte(m.opVal(2))
		table := m.opAddr(3)
		dstlen := int(uint16(m.opVal(4)))
		dst := m.opAddr(5)
		n := srclen
		if n > dstlen {
			n = dstlen
		}
		for i := 0; i < n; i++ {
			ch := m.dread(uw.chRead, src+uint32(i), 1)
			tr := m.dread(uw.chRead, table+uint32(byte(ch)), 1)
			m.tick(uw.chByte)
			m.dwrite(uw.chWrite, dst+uint32(i), 1, tr)
			m.charSpacing(3)
		}
		for i := n; i < dstlen; i++ {
			m.tick(uw.chByte)
			m.dwrite(uw.chWrite, dst+uint32(i), 1, uint64(fill))
			m.charSpacing(3)
		}
		m.tick(uw.chDone)
		m.R[0] = uint32(srclen - n)
		m.R[1] = src + uint32(n)
		m.R[2], m.R[4] = 0, 0
		m.R[3] = table
		m.R[5] = dst + uint32(dstlen)
		m.ccCmp(uint64(srclen), uint64(dstlen), 4)
	})

	// LOCC char.rb, len.rw, addr.ab — find a byte.
	register(vax.LOCC, loccLike(true))
	// SKPC — skip a byte.
	register(vax.SKPC, loccLike(false))

	// SCANC len.rw, addr.ab, tbladdr.ab, mask.rb — scan with table.
	register(vax.SCANC, scanLike(true))
	// SPANC — span with table.
	register(vax.SPANC, scanLike(false))
}

// loccLike scans length bytes for (or past) a target byte: a longword read
// feeds four byte-compare microcycles.
func loccLike(match bool) execFn {
	return func(m *Machine) {
		m.movcSetup()
		target := byte(m.opVal(0))
		length := int(uint16(m.opVal(1)))
		addr := m.opAddr(2)
		i := 0
		found := false
	scan:
		for i < length {
			span := minInt(4-int((addr+uint32(i))&3), length-i)
			m.dread(uw.chRead, addr+uint32(i), span)
			for j := 0; j < span; j++ {
				m.ticks(uw.chByte, 2)
				b := m.readVirtByte(addr + uint32(i))
				if (b == target) == match {
					found = true
					break scan
				}
				i++
			}
		}
		m.tick(uw.chDone)
		m.R[0] = uint32(length - i)
		m.R[1] = addr + uint32(i)
		m.setCC(false, !found, false, false)
	}
}

// scanLike implements SCANC/SPANC: each string byte indexes a translation
// table; the table byte is ANDed with the mask.
func scanLike(stopOnHit bool) execFn {
	return func(m *Machine) {
		m.movcSetup()
		m.ticks(uw.chSetup, 2)
		length := int(uint16(m.opVal(0)))
		addr := m.opAddr(1)
		table := m.opAddr(2)
		mask := byte(m.opVal(3))
		i := 0
		found := false
	scan:
		for i < length {
			span := minInt(4-int((addr+uint32(i))&3), length-i)
			m.dread(uw.chRead, addr+uint32(i), span)
			for j := 0; j < span; j++ {
				b := m.readVirtByte(addr + uint32(i))
				t := byte(m.dread(uw.chRead, table+uint32(b), 1))
				m.tick(uw.chByte)
				if (t&mask != 0) == stopOnHit {
					found = true
					break scan
				}
				i++
			}
		}
		m.tick(uw.chDone)
		m.R[0] = uint32(length - i)
		m.R[1] = addr + uint32(i)
		m.R[2] = 0
		m.R[3] = table
		m.setCC(false, !found, false, false)
	}
}
