package cpu

import "vax780/internal/vax"

// Execute-phase microroutines for the FLOAT group: F/D floating point
// (assisted by the Floating Point Accelerator all measured machines had,
// §2.2) plus integer multiply/divide, which Table 1 groups with FLOAT.

// fpWorkCycles is the FPA-assisted execute-phase cost by operation kind.
// Costs are in addition to the one-cycle entry word.
const (
	fpCostMove = 2
	fpCostAdd  = 6
	fpCostMul  = 9
	fpCostDiv  = 14
	fpCostCvt  = 5
	fpCostAddD = 9
	fpCostMulD = 13
	fpCostDivD = 18
	fpCostMulI = 12 // integer multiply (microcode loop)
	fpCostDivI = 20 // integer divide
)

// fpCost applies the FPA ablation: without the accelerator the floating
// microcode loops take several times as long.
func (m *Machine) fpCost(cost int) int {
	if m.cfg.NoFPA {
		return cost * m.cfg.FPASlowdown
	}
	return cost
}

func fpBinary(cost int, f func(a, b float64) float64, dst int) execFn {
	return func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(cost))
		t := m.ops[dst].dt
		a := fval(m.opVal(0), t)
		b := fval(m.opVal(1), t)
		r := f(b, a) // VAX order: op2 OP op1 for 2-operand, op1/op2 for 3-op
		m.ccFloat(r)
		m.fpStore(dst, fbits(r, t))
	}
}

// fpStore stores a floating result; D-floating register pairs store with
// the execute-phase write word covering the second longword of memory
// destinations (the small Float-row write traffic in Table 8).
func (m *Machine) fpStore(dst int, bits uint64) {
	op := &m.ops[dst]
	if !op.isReg && op.size() == 8 {
		// First longword through the specifier store, second here.
		//vaxlint:allow rowscope -- the first longword of a D-float memory store deliberately rides the destination specifier's bank write word (Spec-row traffic), not a Float-row word; only the second longword is Float-row execute-phase writing
		m.dwrite(op.bank.writeData, op.addr, 4, bits)
		m.dwrite(uw.fpWrite, op.addr+4, 4, bits>>32)
		return
	}
	m.storeResult(dst, bits)
}

func init() {
	add := func(a, b float64) float64 { return a + b }
	sub := func(a, b float64) float64 { return a - b }
	mul := func(a, b float64) float64 { return a * b }
	div := func(a, b float64) float64 { return a / b }

	register(vax.ADDF2, fpBinary(fpCostAdd, add, 1))
	register(vax.ADDF3, fpBinary(fpCostAdd, add, 2))
	register(vax.SUBF2, fpBinary(fpCostAdd, sub, 1))
	register(vax.SUBF3, fpBinary(fpCostAdd, sub, 2))
	register(vax.MULF2, fpBinary(fpCostMul, mul, 1))
	register(vax.MULF3, fpBinary(fpCostMul, mul, 2))
	register(vax.DIVF2, fpBinary(fpCostDiv, div, 1))
	register(vax.DIVF3, fpBinary(fpCostDiv, div, 2))
	register(vax.ADDD2, fpBinary(fpCostAddD, add, 1))
	register(vax.ADDD3, fpBinary(fpCostAddD, add, 2))
	register(vax.SUBD2, fpBinary(fpCostAddD, sub, 1))
	register(vax.SUBD3, fpBinary(fpCostAddD, sub, 2))
	register(vax.MULD2, fpBinary(fpCostMulD, mul, 1))
	register(vax.MULD3, fpBinary(fpCostMulD, mul, 2))
	register(vax.DIVD2, fpBinary(fpCostDivD, div, 1))
	register(vax.DIVD3, fpBinary(fpCostDivD, div, 2))

	register(vax.MOVF, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostMove))
		v := m.opVal(0)
		m.ccFloat(f32of(v))
		m.fpStore(1, v)
	})
	register(vax.MOVD, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostMove))
		v := m.opVal(0)
		m.ccFloat(f64of(v))
		m.fpStore(1, v)
	})
	register(vax.MNEGF, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostMove))
		r := -f32of(m.opVal(0))
		m.ccFloat(r)
		m.fpStore(1, f32bits(r))
	})
	register(vax.CMPF, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, 2)
		a, b := f32of(m.opVal(0)), f32of(m.opVal(1))
		m.setCC(a < b, a == b, false, false)
	})
	register(vax.CMPD, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, 2)
		a, b := f64of(m.opVal(0)), f64of(m.opVal(1))
		m.setCC(a < b, a == b, false, false)
	})
	register(vax.TSTF, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ccFloat(f32of(m.opVal(0)))
	})
	register(vax.TSTD, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ccFloat(f64of(m.opVal(0)))
	})
	register(vax.CVTFL, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostCvt))
		f := f32of(m.opVal(0))
		// Out-of-range conversions set V and truncate (architectural
		// integer overflow behaviour, kept deterministic here).
		if f > 2147483647 || f < -2147483648 || f != f {
			m.PSL |= vax.PSLV
			f = 0
		}
		r := int32(f)
		m.ccNZ(uint64(uint32(r)), 4)
		m.storeResult(1, uint64(uint32(r)))
	})
	register(vax.CVTLF, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostCvt))
		r := float64(int32(uint32(m.opVal(0))))
		m.ccFloat(r)
		m.fpStore(1, f32bits(r))
	})

	// Integer multiply and divide (FLOAT group per Table 1).
	imul2 := func(dst int) execFn {
		return func(m *Machine) {
			m.tick(uw.fpEntry)
			m.ticks(uw.fpWork, m.fpCost(fpCostMulI))
			r := int64(int32(uint32(m.opVal(0)))) * int64(int32(uint32(m.opVal(1))))
			m.ccNZ(uint64(uint32(r)), 4)
			m.storeResult(dst, uint64(uint32(r)))
		}
	}
	register(vax.MULL2, imul2(1))
	register(vax.MULL3, imul2(2))
	register(vax.MULW2, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostMulI))
		r := int32(int16(uint16(m.opVal(0)))) * int32(int16(uint16(m.opVal(1))))
		m.ccNZ(uint64(uint16(r)), 2)
		m.storeResult(1, uint64(uint16(r)))
	})
	idiv := func(dst int) execFn {
		return func(m *Machine) {
			m.tick(uw.fpEntry)
			m.ticks(uw.fpWork, m.fpCost(fpCostDivI))
			divisor := int32(uint32(m.opVal(0)))
			dividend := int32(uint32(m.opVal(1)))
			var r int32
			v := false
			if divisor == 0 {
				v = true
				r = dividend
			} else {
				r = dividend / divisor
			}
			m.ccNZ(uint64(uint32(r)), 4)
			if v {
				m.PSL |= vax.PSLV
			}
			m.storeResult(dst, uint64(uint32(r)))
		}
	}
	register(vax.DIVL2, idiv(1))
	register(vax.DIVL3, idiv(2))

	register(vax.EMUL, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostMulI+2))
		r := int64(int32(uint32(m.opVal(0))))*int64(int32(uint32(m.opVal(1)))) +
			int64(int32(uint32(m.opVal(2))))
		m.ccNZ(uint64(r), 8)
		m.storeResult(3, uint64(r))
	})
	register(vax.EDIV, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, m.fpCost(fpCostDivI+4))
		divisor := int64(int32(uint32(m.opVal(0))))
		dividend := int64(m.opVal(1))
		var q, rem int64
		if divisor != 0 {
			q = dividend / divisor
			rem = dividend % divisor
		} else {
			m.PSL |= vax.PSLV
		}
		m.storeResult(2, uint64(uint32(q)))
		m.storeResult(3, uint64(uint32(rem)))
		m.ccNZ(uint64(uint32(q)), 4)
	})
	register(vax.ASHQ, func(m *Machine) {
		m.tick(uw.fpEntry)
		m.ticks(uw.fpWork, 4)
		cnt := int8(uint8(m.opVal(0)))
		src := m.opVal(1)
		var r uint64
		if cnt >= 0 {
			r = src << uint(cnt%64)
		} else {
			r = uint64(int64(src) >> uint(-cnt%64))
		}
		m.ccNZ(r, 8)
		m.storeResult(2, r)
	})
}
