package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vax780/internal/asm"
	"vax780/internal/vax"
)

// buildAndRun assembles a builder program and runs it to HALT.
func buildAndRun(t *testing.T, build func(b *asm.Builder)) *Machine {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	build(b)
	im, err := b.Finish()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	res := m.Run(1_000_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	return m
}

// TestPropertySpecifierEffectiveAddress drives every memory addressing
// mode with randomized parameters: a value is planted at the effective
// address the mode should produce, then loaded through the mode; the
// loaded value must match.
func TestPropertySpecifierEffectiveAddress(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := uint32(0x4000 + 4*r.Intn(1024))
		val := uint32(r.Uint32())
		disp := int32(4 * (r.Intn(64) - 32))
		idx := uint32(r.Intn(16))
		ptrCell := uint32(0x9000 + 4*r.Intn(64))
		mode := r.Intn(7)

		m := buildAndRun(t, func(b *asm.Builder) {
			// Plant the value where the mode under test must find it.
			switch mode {
			case 0: // (Rn)
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(base))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.R(vax.R1))
				b.Op("MOVL", asm.Def(vax.R1), asm.R(vax.R2))
			case 1: // disp(Rn)
				ea := uint32(int64(base) + int64(disp))
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(ea))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.R(vax.R1))
				b.Op("MOVL", asm.D(disp, vax.R1), asm.R(vax.R2))
			case 2: // (Rn)+ leaves the register bumped
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(base))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.R(vax.R1))
				b.Op("MOVL", asm.Inc(vax.R1), asm.R(vax.R2))
			case 3: // -(Rn) pre-decrements
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(base))
				b.Op("MOVL", asm.Imm(uint64(base+4)), asm.R(vax.R1))
				b.Op("MOVL", asm.Dec(vax.R1), asm.R(vax.R2))
			case 4: // @(Rn)+ follows the pointer
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(base))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.Abs(ptrCell))
				b.Op("MOVL", asm.Imm(uint64(ptrCell)), asm.R(vax.R1))
				b.Op("MOVL", asm.IncDef(vax.R1), asm.R(vax.R2))
			case 5: // @disp(Rn) double-level
				ea := uint32(int64(ptrCell) + int64(disp))
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(base))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.Abs(ea))
				b.Op("MOVL", asm.Imm(uint64(ptrCell)), asm.R(vax.R1))
				b.Op("MOVL", asm.DDef(disp, vax.R1), asm.R(vax.R2))
			default: // disp(Rn)[Rx] scales by operand size
				ea := uint32(int64(base) + int64(disp) + int64(4*idx))
				b.Op("MOVL", asm.Imm(uint64(val)), asm.Abs(ea))
				b.Op("MOVL", asm.Imm(uint64(base)), asm.R(vax.R1))
				b.Op("MOVL", asm.Imm(uint64(idx)), asm.R(vax.R3))
				b.Op("MOVL", asm.Idx(asm.D(disp, vax.R1), vax.R3), asm.R(vax.R2))
			}
			b.Op("HALT")
		})
		if m.R[2] != val {
			t.Logf("seed %d mode %d: got %#x want %#x", seed, mode, m.R[2], val)
			return false
		}
		// Side effects of the auto modes.
		switch mode {
		case 2:
			if m.R[1] != base+4 {
				return false
			}
		case 3:
			if m.R[1] != base {
				return false
			}
		case 4:
			if m.R[1] != ptrCell+4 {
				return false
			}
		}
		return true
	}
	// A nil quick.Config Rand is seeded from the clock; seed it so a
	// failing input reproduces on re-run (vaxlint's determinism contract
	// applied to the tests themselves).
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(0x780))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyALUMatchesGo compares the machine's integer arithmetic
// against Go's on random operands, through randomly chosen operand routes
// (register, memory, immediate).
func TestPropertyALUMatchesGo(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Uint32()
		bv := r.Uint32()
		op := r.Intn(6)
		viaMem := r.Intn(2) == 1

		var want uint32
		var mnem string
		switch op {
		case 0:
			mnem, want = "ADDL3", a+bv
		case 1:
			mnem, want = "SUBL3", bv-a // SUBL3 sub, min, dst
		case 2:
			mnem, want = "BISL3", a|bv
		case 3:
			mnem, want = "BICL3", ^a&bv
		case 4:
			mnem, want = "XORL3", a^bv
		default:
			mnem, want = "MULL3", uint32(int32(a)*int32(bv))
		}
		m := buildAndRun(t, func(b *asm.Builder) {
			if viaMem {
				b.Op("MOVL", asm.Imm(uint64(a)), asm.Abs(0x5000))
				b.Op("MOVL", asm.Imm(uint64(bv)), asm.Abs(0x5004))
				b.Op(mnem, asm.Abs(0x5000), asm.Abs(0x5004), asm.Abs(0x5008))
				b.Op("MOVL", asm.Abs(0x5008), asm.R(vax.R2))
			} else {
				b.Op("MOVL", asm.Imm(uint64(a)), asm.R(vax.R0))
				b.Op("MOVL", asm.Imm(uint64(bv)), asm.R(vax.R1))
				b.Op(mnem, asm.R(vax.R0), asm.R(vax.R1), asm.R(vax.R2))
			}
			b.Op("HALT")
		})
		return m.R[2] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(0x781))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConditionCodesMatchComparison: after CMPL a,b the branch
// predicates must agree with Go's comparisons, signed and unsigned.
func TestPropertyConditionCodesMatchComparison(t *testing.T) {
	f := func(a, bv uint32) bool {
		m := buildAndRun(t, func(b *asm.Builder) {
			b.Op("MOVL", asm.Imm(uint64(a)), asm.R(vax.R0))
			b.Op("MOVL", asm.Imm(uint64(bv)), asm.R(vax.R1))
			// Record each predicate in a register. Every VAX instruction
			// sets condition codes, so the compare is redone per predicate.
			rec := func(br string, dst vax.Reg) {
				no := "n" + br + dst.String()
				b.Op("CLRL", asm.R(dst))
				b.Op("CMPL", asm.R(vax.R0), asm.R(vax.R1))
				b.Br(br, no)
				// fallthrough = branch NOT taken
				b.Br("BRB", "e"+br+dst.String())
				b.Label(no)
				b.Op("MOVL", asm.Lit(1), asm.R(dst))
				b.Label("e" + br + dst.String())
			}
			rec("BLSS", vax.R2) // signed <
			rec("BLEQ", vax.R3) // signed <=
			rec("BCS", vax.R4)  // unsigned < (C set)
			rec("BEQL", vax.R5) // equal
			b.Op("HALT")
		})
		signedLess := int32(a) < int32(bv)
		signedLeq := int32(a) <= int32(bv)
		unsLess := a < bv
		eq := a == bv
		return (m.R[2] == 1) == signedLess &&
			(m.R[3] == 1) == signedLeq &&
			(m.R[4] == 1) == unsLess &&
			(m.R[5] == 1) == eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(0x782))}); err != nil {
		t.Error(err)
	}
}
