package cpu

import (
	"fmt"
	"strings"
)

// Component is one block of the Figure 1 machine diagram.
type Component struct {
	Name    string
	Subsys  string // "CPU pipeline" or "Memory subsystem"
	FeedsTo []string
}

// Topology returns the machine's component graph — the structural content
// of the paper's Figure 1 (VAX-11/780 block diagram), generated from the
// simulator's actual composition so the experiment can assert that the
// modelled structure matches the paper's.
func (m *Machine) Topology() []Component {
	return []Component{
		{"I-Fetch", "CPU pipeline", []string{"Instruction Buffer"}},
		{"Instruction Buffer", "CPU pipeline", []string{"I-Decode"}},
		{"I-Decode", "CPU pipeline", []string{"EBOX"}},
		{"EBOX", "CPU pipeline", []string{"Translation Buffer", "Write Buffer", "I-Fetch"}},
		{"Translation Buffer", "Memory subsystem", []string{"Cache"}},
		{"Cache", "Memory subsystem", []string{"SBI"}},
		{"Write Buffer", "Memory subsystem", []string{"SBI"}},
		{"SBI", "Memory subsystem", []string{"Memory"}},
		{"Memory", "Memory subsystem", nil},
	}
}

// RenderTopology draws the block diagram as text.
func (m *Machine) RenderTopology() string {
	var sb strings.Builder
	sb.WriteString("VAX-11/780 block structure (Figure 1)\n")
	sb.WriteString("\n")
	sb.WriteString("  CPU pipeline:\n")
	sb.WriteString("    I-Fetch --> [8-byte IB] --> I-Decode --> EBOX (microcode, 200 ns cycle)\n")
	sb.WriteString("        ^                                     |  ^ dispatch/IB-stall\n")
	sb.WriteString("        +------- branch redirect -------------+\n")
	sb.WriteString("\n")
	sb.WriteString("  Memory subsystem:\n")
	sb.WriteString("    {I-Fetch, EBOX} --> Translation Buffer --> Cache --> SBI --> Memory\n")
	sb.WriteString("    EBOX writes ------> Write Buffer (1 longword) ----> SBI (write-through)\n")
	sb.WriteString("\n")
	cfg := m.Cache.Config()
	sbi := m.SBI.Config()
	fmt.Fprintf(&sb, "  Parameters: cache %d KB %d-way %dB blocks; TB 128 entries 2-way split;\n",
		cfg.SizeBytes/1024, cfg.Ways, cfg.BlockBytes)
	fmt.Fprintf(&sb, "  read miss %d cycles; write occupancy %d cycles; memory %d MB.\n",
		sbi.ReadLatency, sbi.WriteOccupancy, m.Mem.Size()>>20)
	return sb.String()
}
