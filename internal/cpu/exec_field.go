package cpu

import "vax780/internal/vax"

// Execute-phase microroutines for the FIELD group: variable bit-field
// operations and the bit branches (which Table 2 attributes to FIELD).

// fieldBits reads size bits starting pos bits beyond the field base
// operand. Register fields cost no memory reference; memory fields read
// one or two longwords at the given read-class microword.
func (m *Machine) fieldBits(op *operand, pos int32, size int, rw uint16) uint64 {
	if size <= 0 {
		return 0
	}
	if op.isReg {
		v := uint64(m.R[op.reg]) | uint64(m.R[(op.reg+1)&0xF])<<32
		return v >> uint(pos) & sizeMask8(size)
	}
	base := op.addr + uint32(pos>>3)
	bit := uint(pos & 7)
	v := m.dread(rw, base, 4)
	if bit+uint(size) > 32 {
		v |= m.dread(rw, base+4, 4) << 32
	}
	return v >> bit & sizeMask8(size)
}

// fieldInsert writes size bits at pos within the field base operand
// (read-modify-write for memory fields).
func (m *Machine) fieldInsert(op *operand, pos int32, size int, val uint64, rw, ww uint16) {
	if size <= 0 {
		return
	}
	mask := sizeMask8(size)
	if op.isReg {
		v := uint64(m.R[op.reg]) | uint64(m.R[(op.reg+1)&0xF])<<32
		v = v&^(mask<<uint(pos)) | (val&mask)<<uint(pos)
		m.R[op.reg] = uint32(v)
		if uint(pos)+uint(size) > 32 {
			m.R[(op.reg+1)&0xF] = uint32(v >> 32)
		}
		return
	}
	base := op.addr + uint32(pos>>3)
	bit := uint(pos & 7)
	span := 4
	v := m.dread(rw, base, 4)
	if bit+uint(size) > 32 {
		v |= m.dread(rw, base+4, 4) << 32
		span = 8
	}
	v = v&^(mask<<bit) | (val&mask)<<bit
	m.dwrite(ww, base, 4, v)
	if span == 8 {
		m.dwrite(ww, base+4, 4, v>>32)
	}
}

func sizeMask8(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

func init() {
	// EXTV/EXTZV pos.rl, size.rb, base.vb, dst.wl
	ext := func(signed bool) execFn {
		return func(m *Machine) {
			m.tick(uw.fldEntry)
			m.ticks(uw.fldWork, 5)
			pos := int32(uint32(m.opVal(0)))
			size := int(uint8(m.opVal(1)))
			v := m.fieldBits(&m.ops[2], pos, size, uw.fldRead)
			if signed && size > 0 && size < 64 && v&(1<<uint(size-1)) != 0 {
				v |= ^sizeMask8(size)
			}
			m.ticks(uw.fldWork, 3)
			m.ccNZ(v, 4)
			m.storeResult(3, v)
		}
	}
	register(vax.EXTV, ext(true))
	register(vax.EXTZV, ext(false))

	// INSV src.rl, pos.rl, size.rb, base.vb
	register(vax.INSV, func(m *Machine) {
		m.tick(uw.fldEntry)
		m.ticks(uw.fldWork, 5)
		pos := int32(uint32(m.opVal(1)))
		size := int(uint8(m.opVal(2)))
		m.fieldInsert(&m.ops[3], pos, size, m.opVal(0), uw.fldRead, uw.fldWrite)
		m.ticks(uw.fldWork, 3)
	})

	// FFS/FFC startpos.rl, size.rb, base.vb, findpos.wl
	ff := func(want uint64) execFn {
		return func(m *Machine) {
			m.tick(uw.fldEntry)
			m.ticks(uw.fldWork, 4)
			pos := int32(uint32(m.opVal(0)))
			size := int(uint8(m.opVal(1)))
			v := m.fieldBits(&m.ops[2], pos, size, uw.fldRead)
			found := -1
			for i := 0; i < size; i++ {
				m.tickEvery(uw.fldWork, i, 8) // scan loop, 8 bits per microcycle
				if v>>uint(i)&1 == want {
					found = i
					break
				}
			}
			var result uint64
			if found >= 0 {
				result = uint64(pos) + uint64(found)
				m.setCC(false, false, false, false)
			} else {
				result = uint64(pos) + uint64(size)
				m.setCC(false, true, false, false)
			}
			m.tick(uw.fldWork)
			m.storeResult(3, result)
		}
	}
	register(vax.FFS, ff(1))
	register(vax.FFC, ff(0))

	// CMPV/CMPZV pos.rl, size.rb, base.vb, src.rl
	cmpv := func(signed bool) execFn {
		return func(m *Machine) {
			m.tick(uw.fldEntry)
			m.ticks(uw.fldWork, 3)
			pos := int32(uint32(m.opVal(0)))
			size := int(uint8(m.opVal(1)))
			v := m.fieldBits(&m.ops[2], pos, size, uw.fldRead)
			if signed && size > 0 && size < 64 && v&(1<<uint(size-1)) != 0 {
				v |= ^sizeMask8(size)
			}
			m.tick(uw.fldWork)
			m.ccCmp(v, m.opVal(3), 4)
		}
	}
	register(vax.CMPV, cmpv(true))
	register(vax.CMPZV, cmpv(false))

	// Bit branches: BBS/BBC pos.rl, base.vb, disp; BBxx also set/clear.
	bb := func(want uint64, setTo int) execFn {
		return func(m *Machine) {
			m.tick(uw.bbEntry)
			m.ticks(uw.bbWork, 3)
			pos := int32(uint32(m.opVal(0)))
			bit := m.fieldBits(&m.ops[1], pos, 1, uw.bbRead)
			if setTo >= 0 {
				m.fieldInsert(&m.ops[1], pos, 1, uint64(setTo), uw.bbRead, uw.bbWrite)
			}
			if bit == want {
				m.branchTake(uw.bbTaken)
			} else {
				m.branchSkip()
			}
		}
	}
	register(vax.BBS, bb(1, -1))
	register(vax.BBC, bb(0, -1))
	register(vax.BBSS, bb(1, 1))
	register(vax.BBCS, bb(0, 1))
	register(vax.BBSC, bb(1, 0))
	register(vax.BBCC, bb(0, 0))
	// Interlocked variants: same dataflow plus a bus-interlock microcycle.
	bbi := func(want uint64, setTo int) execFn {
		plain := bb(want, setTo)
		return func(m *Machine) {
			m.tick(uw.bbWork) // interlock acquisition
			plain(m)
		}
	}
	register(vax.BBSSI, bbi(1, 1))
	register(vax.BBCCI, bbi(0, 0))
}

// tickEvery ticks w when i is a multiple of n (loop bodies processing
// several items per microcycle).
func (m *Machine) tickEvery(w uint16, i, n int) {
	if i%n == 0 {
		m.tick(w)
	}
}
