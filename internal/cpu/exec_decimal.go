package cpu

// Execute-phase microroutines for the DECIMAL group: packed-decimal
// arithmetic. Operands are architectural packed strings: two digits per
// byte, most significant first, sign in the low nibble of the last byte
// (0xC positive, 0xD negative); a string of n digits occupies n/2+1 bytes.

import "vax780/internal/vax"

func packedBytes(digits int) int { return digits/2 + 1 }

// readPacked reads a packed-decimal string with timed byte reads and the
// per-digit compute cycles of the decimal microcode loops.
func (m *Machine) readPacked(addr uint32, digits int) int64 {
	var v int64
	n := packedBytes(digits)
	for i := 0; i < n; i++ {
		b := byte(m.dread(uw.deRead, addr+uint32(i), 1))
		m.ticks(uw.deWork, 4)
		if i == n-1 {
			v = v*10 + int64(b>>4)
			if b&0x0F == 0x0D {
				v = -v
			}
		} else {
			v = v*100 + int64(b>>4)*10 + int64(b&0x0F)
		}
	}
	return v
}

// writePacked writes a packed-decimal string with timed writes.
func (m *Machine) writePacked(addr uint32, digits int, v int64) {
	neg := v < 0
	if neg {
		v = -v
	}
	n := packedBytes(digits)
	// Build digits least-significant first.
	//vaxlint:allow hotpath -- bounded: one ≤32-byte slice per decimal-string instruction, ~0.02% of the Table 4 mix
	ds := make([]byte, digits+1)
	for i := 0; i <= digits; i++ {
		ds[i] = byte(v % 10)
		v /= 10
	}
	for i := n - 1; i >= 0; i-- {
		var b byte
		if i == n-1 {
			sign := byte(0x0C)
			if neg {
				sign = 0x0D
			}
			b = ds[0]<<4 | sign
		} else {
			hi := ds[2*(n-1-i)]
			lo := ds[2*(n-1-i)-1]
			b = hi<<4 | lo
		}
		m.ticks(uw.deWork, 4)
		m.dwrite(uw.deWrite, addr+uint32(i), 1, uint64(b))
	}
}

func (m *Machine) decSetup(n int) {
	m.tick(uw.deEntry)
	m.ticks(uw.deSetup, 2*n)
}

func (m *Machine) decFinish(result int64) {
	m.tick(uw.deDone)
	m.setCC(result < 0, result == 0, false, false)
}

func init() {
	// ADDP4 addlen.rw, addaddr.ab, sumlen.rw, sumaddr.ab
	register(vax.ADDP4, decArith(func(a, b int64) int64 { return b + a }))
	// SUBP4: dif <- dif - sub
	register(vax.SUBP4, decArith(func(a, b int64) int64 { return b - a }))

	// ADDP6 / SUBP6 / MULP / DIVP: len1,addr1, len2,addr2, len3,addr3.
	register(vax.ADDP6, dec6(func(a, b int64) int64 { return a + b }, 0))
	register(vax.SUBP6, dec6(func(a, b int64) int64 { return b - a }, 0))
	register(vax.MULP, dec6(func(a, b int64) int64 { return a * b }, 8))
	register(vax.DIVP, dec6(func(a, b int64) int64 {
		if a == 0 {
			return 0
		}
		return b / a
	}, 16))

	// MOVP len.rw, src.ab, dst.ab
	register(vax.MOVP, func(m *Machine) {
		m.decSetup(3)
		digits := int(uint16(m.opVal(0)))
		v := m.readPacked(m.opAddr(1), digits)
		m.writePacked(m.opAddr(2), digits, v)
		m.decFinish(v)
	})

	// CMPP3 len.rw, src1.ab, src2.ab
	register(vax.CMPP3, func(m *Machine) {
		m.decSetup(3)
		digits := int(uint16(m.opVal(0)))
		a := m.readPacked(m.opAddr(1), digits)
		b := m.readPacked(m.opAddr(2), digits)
		m.tick(uw.deDone)
		m.setCC(a < b, a == b, false, false)
	})

	// CVTPL len.rw, src.ab, dst.wl
	register(vax.CVTPL, func(m *Machine) {
		m.decSetup(4)
		digits := int(uint16(m.opVal(0)))
		v := m.readPacked(m.opAddr(1), digits)
		m.ticks(uw.deWork, 4)
		m.ccNZ(uint64(uint32(int32(v))), 4)
		m.storeResult(2, uint64(uint32(int32(v))))
	})

	// CVTLP src.rl, len.rw, dst.ab
	register(vax.CVTLP, func(m *Machine) {
		m.decSetup(4)
		digits := int(uint16(m.opVal(1)))
		v := int64(int32(uint32(m.opVal(0))))
		m.ticks(uw.deWork, 6) // binary-to-decimal divide chain
		m.writePacked(m.opAddr(2), digits, clampDigits(v, digits))
		m.decFinish(v)
	})

	// ASHP cnt.rb, srclen.rw, src.ab, round.rb, dstlen.rw, dst.ab
	register(vax.ASHP, func(m *Machine) {
		m.decSetup(6)
		cnt := int(int8(uint8(m.opVal(0))))
		srcDigits := int(uint16(m.opVal(1)))
		dstDigits := int(uint16(m.opVal(4)))
		v := m.readPacked(m.opAddr(2), srcDigits)
		m.ticks(uw.deWork, 6)
		for i := 0; i < cnt; i++ {
			v *= 10
		}
		for i := 0; i > cnt; i-- {
			v /= 10
		}
		m.writePacked(m.opAddr(5), dstDigits, clampDigits(v, dstDigits))
		m.decFinish(v)
	})
}

// decArith builds the 4-operand add/subtract routine.
func decArith(f func(a, b int64) int64) execFn {
	return func(m *Machine) {
		m.decSetup(4)
		alen := int(uint16(m.opVal(0)))
		blen := int(uint16(m.opVal(2)))
		a := m.readPacked(m.opAddr(1), alen)
		b := m.readPacked(m.opAddr(3), blen)
		r := clampDigits(f(a, b), blen)
		m.writePacked(m.opAddr(3), blen, r)
		m.decFinish(r)
	}
}

// dec6 builds the 6-operand three-address routines with extra work cycles
// for multiply/divide digit loops.
func dec6(f func(a, b int64) int64, extra int) execFn {
	return func(m *Machine) {
		m.decSetup(5)
		alen := int(uint16(m.opVal(0)))
		blen := int(uint16(m.opVal(2)))
		rlen := int(uint16(m.opVal(4)))
		a := m.readPacked(m.opAddr(1), alen)
		b := m.readPacked(m.opAddr(3), blen)
		m.ticks(uw.deWork, extra)
		r := clampDigits(f(a, b), rlen)
		m.writePacked(m.opAddr(5), rlen, r)
		m.decFinish(r)
	}
}

// clampDigits truncates v to the given number of decimal digits (decimal
// overflow wraps in this model; the workloads keep within range).
func clampDigits(v int64, digits int) int64 {
	var mod int64 = 1
	for i := 0; i < digits && mod < 1e18; i++ {
		mod *= 10
	}
	return v % mod
}
