package cpu

import (
	"math"

	"vax780/internal/vax"
)

// operand is a decoded, processed operand latch.
type operand struct {
	spec  vax.Specifier
	acc   vax.AccessType
	dt    vax.DataType
	bank  *specBank // bank whose store microwords write the result back
	isReg bool
	reg   vax.Reg
	addr  uint32 // effective address for memory operands
	val   uint64 // operand value for read/modify access
}

// size returns the operand's size in bytes.
func (o *operand) size() int { return o.dt.Size() }

// runSpecifier decodes and processes operand specifier i of the current
// instruction. First specifiers dispatch through the SPEC1 bank, all others
// through SPEC2-6; an indexed specifier always runs in the SPEC2-6 bank
// (the microcode-sharing artifact §5 of the paper describes).
func (m *Machine) runSpecifier(i int, os vax.OperandSpec) {
	bank := &uw.spec[0]
	if i > 0 {
		bank = &uw.spec[1]
	}
	op := &m.ops[i]
	*op = operand{acc: os.Access, dt: os.Type}

	// Determine the specifier's I-stream length by peeking at the mode
	// byte(s); the decode hardware needs the bytes present, so waiting
	// here is IB stall charged to this bank's stall location.
	m.ibWait(1, bank.stall)
	if m.runErr != nil {
		return
	}
	prefix := 0
	b0 := m.ib.peek(1)[0]
	if b0>>4 == 4 { // index prefix
		prefix = 1
		m.ibWait(2, bank.stall)
		if m.runErr != nil {
			return
		}
		b0 = m.ib.peek(2)[1]
	}
	total := prefix + 1 + specExtraBytes(b0, os.Type)
	if total > ibSize {
		// An 8-byte immediate (9 I-stream bytes) cannot fit the IB at
		// once: the hardware consumes it in two dispatch cycles.
		m.wideImmediate(bank, op, os)
		return
	}
	m.ibWait(total, bank.stall)
	if m.runErr != nil {
		return
	}
	spec, n, err := vax.DecodeSpecifier(m.ib.peek(total), os.Type)
	if err != nil {
		// A malformed specifier is architecturally a reserved addressing
		// mode fault, not a simulator stop.
		m.deliverException(SCBReservedAddr, nil)
		return
	}
	if n != total {
		m.fail("specifier decode at pc %#x: consumed %d of %d bytes", m.ib.cur(), n, total)
		return
	}
	op.spec = spec
	if spec.Indexed {
		bank = &uw.spec[1]
	}
	op.bank = bank

	// Consume the specifier bytes: one dispatch cycle at the mode's entry
	// location (a second for immediates wider than the 4-byte data path).
	m.ib.consume(total)
	m.tick(bank.dispatch[spec.Mode])
	if spec.Mode == vax.ModeImmediate && os.Type.Size() > 4 {
		m.tick(bank.immExtra)
	}

	// Mode-specific operand processing.
	sz := os.Type.Size()
	switch spec.Mode {
	case vax.ModeLiteral:
		op.val = expandLiteral(uint8(spec.Disp), os.Type)
		return
	case vax.ModeImmediate:
		op.val = spec.Imm
		return
	case vax.ModeRegister:
		op.isReg = true
		op.reg = spec.Base
		if os.Access == vax.AccessRead || os.Access == vax.AccessModify {
			op.val = m.regRead(spec.Base, os.Type)
		}
		return
	case vax.ModeRegDeferred:
		op.addr = m.R[spec.Base]
	case vax.ModeAutoInc:
		op.addr = m.R[spec.Base]
		m.R[spec.Base] += uint32(sz)
		m.tick(bank.calc)
	case vax.ModeAutoDec:
		m.R[spec.Base] -= uint32(sz)
		op.addr = m.R[spec.Base]
		m.tick(bank.calc)
	case vax.ModeAutoIncDef:
		ptr := m.R[spec.Base]
		m.R[spec.Base] += 4
		m.tick(bank.calc)
		op.addr = uint32(m.dread(bank.readPtr, ptr, 4))
	case vax.ModeAbsolute:
		op.addr = uint32(spec.Imm)
	case vax.ModeByteDisp, vax.ModeWordDisp, vax.ModeLongDisp:
		op.addr = m.specBase(spec.Base) + uint32(spec.Disp)
		m.tick(bank.calc)
	case vax.ModeByteDispDef, vax.ModeWordDispDef, vax.ModeLongDispDef:
		ptr := m.specBase(spec.Base) + uint32(spec.Disp)
		m.tick(bank.calc)
		op.addr = uint32(m.dread(bank.readPtr, ptr, 4))
	}
	if spec.Indexed {
		op.addr += uint32(sz) * m.R[spec.Index]
		m.tick(bank.index)
	}

	// Access-type processing for memory operands.
	switch os.Access {
	case vax.AccessRead, vax.AccessModify:
		op.val = m.dread(bank.readData, op.addr, minInt(sz, 4))
		if sz == 8 {
			op.val |= m.dread(bank.readData2, op.addr+4, 4) << 32
		}
	case vax.AccessWrite, vax.AccessAddr, vax.AccessField:
		// Address only; data is written at result-store time (write) or
		// accessed by the execute phase (addr/field).
	}
}

// wideImmediate consumes a quadword immediate specifier: mode byte, then
// two longword helpings from the IB, each with a dispatch cycle.
func (m *Machine) wideImmediate(bank *specBank, op *operand, os vax.OperandSpec) {
	op.bank = bank
	op.spec = vax.Specifier{Mode: vax.ModeImmediate}
	m.ib.consume(1) // the (PC)+ mode byte
	m.tick(bank.dispatch[vax.ModeImmediate])
	// Fold each longword into the value before the next IB interaction:
	// takeExtra hands out the IB's scratch buffer, so the second helping
	// overwrites the first.
	lo := m.takeExtra(bank.stall, 4)
	var v uint64
	for i := 0; i < 4; i++ {
		v |= uint64(lo[i]) << (8 * i)
	}
	m.tick(bank.immExtra)
	hi := m.takeExtra(bank.stall, 4)
	if m.runErr != nil {
		return
	}
	for i := 0; i < 4; i++ {
		v |= uint64(hi[i]) << (32 + 8*i)
	}
	op.val = v
	op.spec.Imm = v
}

// specBase returns the value of a specifier base register; PC reads as the
// address of the byte following the specifier (the IB pointer, since the
// specifier bytes have been consumed).
func (m *Machine) specBase(r vax.Reg) uint32 {
	if r == vax.PC {
		return m.ib.cur()
	}
	return m.R[r]
}

// specExtraBytes returns the I-stream bytes that follow a specifier's mode
// byte.
func specExtraBytes(modeByte uint8, t vax.DataType) int {
	mode := modeByte >> 4
	reg := modeByte & 0x0F
	switch {
	case mode <= 3: // literal
		return 0
	case mode == 8 && reg == 0x0F: // immediate
		return t.Size()
	case mode == 9 && reg == 0x0F: // absolute
		return 4
	case mode == 0xA || mode == 0xB:
		return 1
	case mode == 0xC || mode == 0xD:
		return 2
	case mode == 0xE || mode == 0xF:
		return 4
	}
	return 0
}

// storeResult writes val back to operand i (a write- or modify-access
// destination). Register stores are the folded specifier/execute cycle the
// paper reports in the SPEC rows; memory stores are specifier-row writes.
func (m *Machine) storeResult(i int, val uint64) {
	op := &m.ops[i]
	sz := op.size()
	if op.isReg {
		m.tick(op.bank.storeReg)
		m.regWrite(op.reg, val, op.dt)
		return
	}
	m.dwrite(op.bank.writeData, op.addr, minInt(sz, 4), val)
	if sz == 8 {
		m.dwrite(op.bank.writeData2, op.addr+4, 4, val>>32)
	}
}

// regRead reads a register operand (quad operands pair Rn with Rn+1).
func (m *Machine) regRead(r vax.Reg, t vax.DataType) uint64 {
	switch t.Size() {
	case 8:
		return uint64(m.R[r]) | uint64(m.R[(r+1)&0xF])<<32
	default:
		return uint64(m.R[r]) & sizeMask(t.Size())
	}
}

// regWrite writes a register operand, preserving high-order bytes for
// sub-longword writes (VAX semantics).
func (m *Machine) regWrite(r vax.Reg, v uint64, t vax.DataType) {
	switch t.Size() {
	case 8:
		m.R[r] = uint32(v)
		m.R[(r+1)&0xF] = uint32(v >> 32)
	case 4:
		m.R[r] = uint32(v)
	case 2:
		m.R[r] = m.R[r]&0xFFFF0000 | uint32(v)&0xFFFF
	case 1:
		m.R[r] = m.R[r]&0xFFFFFF00 | uint32(v)&0xFF
	}
}

// opVal returns operand i's value (already fetched for read/modify access).
func (m *Machine) opVal(i int) uint64 { return m.ops[i].val }

// opAddr returns operand i's effective address.
func (m *Machine) opAddr(i int) uint32 { return m.ops[i].addr }

// expandLiteral expands a 6-bit short literal per the operand data type:
// integers zero-extend; floating literals encode (1 + f/8)·2^(e-1) with
// e = bits 5:3 and f = bits 2:0, spanning 0.5 .. 120.0.
func expandLiteral(lit uint8, t vax.DataType) uint64 {
	switch t {
	case vax.TypeFloatF:
		return uint64(math.Float32bits(float32(literalFloat(lit))))
	case vax.TypeFloatD:
		return math.Float64bits(literalFloat(lit))
	default:
		return uint64(lit)
	}
}

func literalFloat(lit uint8) float64 {
	e := int(lit>>3) & 7
	f := float64(lit & 7)
	return (1 + f/8) * math.Pow(2, float64(e-1))
}

func sizeMask(sz int) uint64 {
	if sz >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*uint(sz)) - 1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
