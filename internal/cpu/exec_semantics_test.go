package cpu

import (
	"testing"

	"vax780/internal/vax"
)

// semCase runs a program and checks register/memory results — one
// behavioural check per implemented opcode (or family member).
type semCase struct {
	name string
	src  string
	regs map[vax.Reg]uint32 // expected register values after HALT
	mem  map[uint32]uint32  // expected longwords after HALT
	cc   string             // expected condition codes, e.g. "Z", "NC", "" (unchecked)
}

func ccString(psl uint32) string {
	s := ""
	if psl&vax.PSLN != 0 {
		s += "N"
	}
	if psl&vax.PSLZ != 0 {
		s += "Z"
	}
	if psl&vax.PSLV != 0 {
		s += "V"
	}
	if psl&vax.PSLC != 0 {
		s += "C"
	}
	return s
}

func runSemCases(t *testing.T, cases []semCase) {
	t.Helper()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			m, _ := run(t, c.src)
			for r, want := range c.regs {
				if got := m.R[r]; got != want {
					t.Errorf("%s = %#x, want %#x", r, got, want)
				}
			}
			for addr, want := range c.mem {
				if got := m.Mem.ReadLong(addr); got != want {
					t.Errorf("mem[%#x] = %#x, want %#x", addr, got, want)
				}
			}
			if c.cc != "" {
				if got := ccString(m.PSL); got != c.cc {
					t.Errorf("cc = %q, want %q", got, c.cc)
				}
			}
		})
	}
}

func TestSemanticsMoves(t *testing.T) {
	runSemCases(t, []semCase{
		{"MOVB", "MOVL #0xAABBCCDD, R1\nMOVB #0x7F, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xAABBCC7F}, nil, ""},
		{"MOVW", "MOVL #0xAABBCCDD, R1\nMOVW #0x1234, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xAABB1234}, nil, ""},
		{"MOVL", "MOVL #0x12345678, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x12345678}, nil, ""},
		{"MOVQ", "MOVL #0x2000, R0\nMOVL #17, (R0)\nMOVL #42, 4(R0)\nMOVQ (R0), R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 17, vax.R3: 42}, nil, ""},
		{"MOVZBL", "MOVL #0xFFFFFFFF, R1\nMOVB #0x80, R2\nMOVZBL R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x80}, nil, ""},
		{"MOVZBW", "MOVL #0xFFFFFFFF, R1\nMOVB #0xFF, R2\nMOVZBW R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xFFFF00FF}, nil, ""},
		{"MOVZWL", "MOVL #0xFFFFFFFF, R1\nMOVW #0x8000, R2\nMOVZWL R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x8000}, nil, ""},
		{"MCOML", "MOVL #0x0F0F0F0F, R1\nMCOML R1, R2\nHALT", map[vax.Reg]uint32{vax.R2: 0xF0F0F0F0}, nil, ""},
		{"MCOMB", "MOVL #0, R2\nMCOMB #0x0F, R2\nHALT", map[vax.Reg]uint32{vax.R2: 0xF0}, nil, ""},
		{"MNEGL", "MOVL #5, R1\nMNEGL R1, R2\nHALT", map[vax.Reg]uint32{vax.R2: 0xFFFFFFFB}, nil, ""},
		{"MNEGB", "CLRL R2\nMNEGB #1, R2\nHALT", map[vax.Reg]uint32{vax.R2: 0xFF}, nil, ""},
		{"MNEGW", "CLRL R2\nMNEGW #2, R2\nHALT", map[vax.Reg]uint32{vax.R2: 0xFFFE}, nil, ""},
		{"CLRL", "MOVL #7, R1\nCLRL R1\nHALT", map[vax.Reg]uint32{vax.R1: 0}, nil, "Z"},
		{"CLRQ", "MOVL #7, R2\nMOVL #8, R3\nCLRQ R2\nHALT", map[vax.Reg]uint32{vax.R2: 0, vax.R3: 0}, nil, ""},
		{"CLRB-partial", "MOVL #0xAABBCCDD, R1\nCLRB R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xAABBCC00}, nil, ""},
		{"MOVAL", "MOVAL @#0x3000, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x3000}, nil, ""},
		{"MOVAW", "MOVL #0x2000, R2\nMOVAW 6(R2), R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x2006}, nil, ""},
		{"MOVAQ", "MOVL #0x2000, R2\nMOVAQ 8(R2), R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x2008}, nil, ""},
	})
}

func TestSemanticsArithmetic(t *testing.T) {
	runSemCases(t, []semCase{
		{"ADDL2", "MOVL #3, R1\nADDL2 #4, R1\nHALT", map[vax.Reg]uint32{vax.R1: 7}, nil, ""},
		{"ADDL3", "ADDL3 #3, #4, R1\nHALT", map[vax.Reg]uint32{vax.R1: 7}, nil, ""},
		{"ADDB2-wrap", "MOVL #0xFF, R1\nADDB2 #1, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0}, nil, ""},
		{"ADDW3", "ADDW3 #0x7000, #0x1000, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x8000}, nil, ""},
		{"SUBL2", "MOVL #10, R1\nSUBL2 #3, R1\nHALT", map[vax.Reg]uint32{vax.R1: 7}, nil, ""},
		{"SUBL3", "SUBL3 #3, #10, R1\nHALT", map[vax.Reg]uint32{vax.R1: 7}, nil, ""},
		{"SUBB3", "SUBB3 #1, #0, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xFF}, nil, ""},
		{"SUBW2", "MOVW #5, R1\nSUBW2 #6, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xFFFF}, nil, ""},
		{"INCL", "MOVL #41, R1\nINCL R1\nHALT", map[vax.Reg]uint32{vax.R1: 42}, nil, ""},
		{"DECL-tozero", "MOVL #1, R1\nDECL R1\nHALT", map[vax.Reg]uint32{vax.R1: 0}, nil, "Z"},
		{"INCB-wrap", "MOVL #0xFF, R1\nINCB R1\nHALT", map[vax.Reg]uint32{vax.R1: 0}, nil, ""},
		{"ADWC", "MOVL #0xFFFFFFFF, R1\nADDL2 #1, R1\nMOVL #5, R2\nADWC #0, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 6}, nil, ""}, // carry from the ADDL2 flows in
		{"SBWC", "MOVL #0, R1\nSUBL2 #1, R1\nMOVL #5, R2\nSBWC #0, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 4}, nil, ""}, // borrow flows in
		{"ADAWI", "MOVW #100, R1\nADAWI #3, R1\nHALT", map[vax.Reg]uint32{vax.R1: 103}, nil, ""},
		{"MULL3", "MULL3 #7, #6, R1\nHALT", map[vax.Reg]uint32{vax.R1: 42}, nil, ""},
		{"MULL2-neg", "MOVL #3, R1\nMNEGL R1, R1\nMULL2 #5, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xFFFFFFF1}, nil, ""}, // -15
		{"DIVL3", "DIVL3 #4, #22, R1\nHALT", map[vax.Reg]uint32{vax.R1: 5}, nil, ""},
		{"DIVL2-by-zero-sets-V", "MOVL #9, R1\nDIVL2 #0, R1\nHALT", nil, nil, "V"},
		{"EMUL", "EMUL #100000, #100000, #7, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 0x540BE407, vax.R3: 0x2}, nil, ""}, // 10^10+7
		{"EDIV", "MOVL #0, R3\nMOVL #100, R2\nEDIV #7, R2, R4, R5\nHALT",
			map[vax.Reg]uint32{vax.R4: 14, vax.R5: 2}, nil, ""},
	})
}

func TestSemanticsConverts(t *testing.T) {
	runSemCases(t, []semCase{
		{"CVTBL-sext", "CLRL R1\nMOVB #0x80, R2\nCVTBL R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xFFFFFF80}, nil, ""},
		{"CVTBW-sext", "CLRL R1\nMOVB #0xFF, R2\nCVTBW R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xFFFF}, nil, ""},
		{"CVTWL-sext", "CLRL R1\nMOVW #0x8000, R2\nCVTWL R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xFFFF8000}, nil, ""},
		{"CVTLB-narrow", "CLRL R1\nMOVL #0x17F, R2\nCVTLB R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x7F}, nil, "V"}, // 383 overflows a byte
		{"CVTLW-fits", "CLRL R1\nMOVL #0x1234, R2\nCVTLW R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x1234}, nil, ""},
		{"CVTWB-fits", "CLRL R1\nMOVW #0x44, R2\nCVTWB R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x44}, nil, ""},
	})
}

func TestSemanticsBooleansAndShifts(t *testing.T) {
	runSemCases(t, []semCase{
		{"BISL2", "MOVL #0x0F, R1\nBISL2 #0xF0, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xFF}, nil, ""},
		{"BISL3", "BISL3 #0x0F, #0x30, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x3F}, nil, ""},
		{"BICL2", "MOVL #0xFF, R1\nBICL2 #0x0F, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xF0}, nil, ""},
		{"BICL3", "BICL3 #0x3C, #0xFF, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xC3}, nil, ""},
		{"XORL2", "MOVL #0xFF, R1\nXORL2 #0x0F, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xF0}, nil, ""},
		{"XORL3", "XORL3 #0x3C, #0xFF, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xC3}, nil, ""},
		{"BISB2-partial", "MOVL #0xAABB0000, R1\nBISB2 #0x0F, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0xAABB000F}, nil, ""},
		{"BICW3", "CLRL R1\nBICW3 #0x0FF0, #0xFFFF, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0xF00F}, nil, ""},
		{"XORW2", "MOVW #0xAAAA, R1\nXORW2 #0xFFFF, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x5555}, nil, ""},
		{"ASHL-left", "ASHL #4, #3, R1\nHALT", map[vax.Reg]uint32{vax.R1: 48}, nil, ""},
		{"ASHL-right", "MOVL #0x80, R2\nMNEGL #0, R3\nASHL I^#-3, R2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x10}, nil, ""},
		{"ROTL", "ROTL #8, #0x11, R1\nHALT", map[vax.Reg]uint32{vax.R1: 0x1100}, nil, ""},
		{"ASHQ", "MOVL #1, R2\nCLRL R3\nASHQ #33, R2, R4\nHALT",
			map[vax.Reg]uint32{vax.R4: 0, vax.R5: 2}, nil, ""},
	})
}

func TestSemanticsCompares(t *testing.T) {
	runSemCases(t, []semCase{
		{"CMPL-less", "MOVL #3, R1\nCMPL R1, #5\nHALT", nil, nil, "NC"},
		{"CMPL-equal", "MOVL #5, R1\nCMPL R1, #5\nHALT", nil, nil, "Z"},
		{"CMPL-signed-vs-unsigned", "MNEGL #1, R1\nCMPL R1, #1\nHALT", nil, nil, "N"}, // -1 < 1 signed, > unsigned
		{"TSTL-neg", "MNEGL #7, R1\nTSTL R1\nHALT", nil, nil, "N"},
		{"TSTL-zero", "CLRL R1\nTSTL R1\nHALT", nil, nil, "Z"},
		{"BITL-hit", "MOVL #0x0F, R1\nBITL #0x08, R1\nHALT", nil, nil, ""},
		{"BITL-miss", "MOVL #0x0F, R1\nBITL #0x10, R1\nHALT", nil, nil, "Z"},
		{"CMPB", "MOVB #0x80, R1\nCMPB R1, #1\nHALT", nil, nil, "N"}, // signed byte -128 < 1
		{"CMPW", "MOVW #2, R1\nCMPW R1, #2\nHALT", nil, nil, "Z"},
	})
}

func TestSemanticsFloat(t *testing.T) {
	runSemCases(t, []semCase{
		{"ADDF-chain", "CVTLF #10, R1\nCVTLF #32, R2\nADDF2 R1, R2\nCVTFL R2, R3\nHALT",
			map[vax.Reg]uint32{vax.R3: 42}, nil, ""},
		{"SUBF3", "CVTLF #50, R1\nCVTLF #8, R2\nSUBF3 R2, R1, R4\nCVTFL R4, R3\nHALT",
			map[vax.Reg]uint32{vax.R3: 42}, nil, ""},
		{"MULF-literal", "CVTLF #21, R1\nMULF2 S^#16, R1\nCVTFL R1, R3\nHALT",
			map[vax.Reg]uint32{vax.R3: 42}, nil, ""}, // short literal 16 = 2.0
		{"DIVF", "CVTLF #84, R1\nDIVF2 S^#16, R1\nCVTFL R1, R3\nHALT",
			map[vax.Reg]uint32{vax.R3: 42}, nil, ""},
		{"MNEGF", "CVTLF #42, R1\nMNEGF R1, R2\nCVTFL R2, R3\nHALT",
			map[vax.Reg]uint32{vax.R3: 0xFFFFFFD6}, nil, ""},
		{"CMPF", "CVTLF #1, R1\nCVTLF #2, R2\nCMPF R1, R2\nHALT", nil, nil, "N"},
		{"TSTF-zero", "CVTLF #0, R1\nTSTF R1\nHALT", nil, nil, "Z"},
		{"MOVD-pair", "MOVL #0x2000, R0\nMOVL #0x11111111, (R0)\nMOVL #0x22222222, 4(R0)\nMOVD (R0), R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 0x11111111, vax.R3: 0x22222222}, nil, ""},
		{"ADDD", "MOVL #0x2000, R0\nCLRQ (R0)\nMOVD (R0), R2\nADDD2 S^#8, R2\nADDD2 S^#8, R2\nCMPD R2, S^#16\nHALT",
			nil, nil, "Z"}, // 0 + 1.0 + 1.0 == 2.0
	})
}

func TestSemanticsControlFlow(t *testing.T) {
	runSemCases(t, []semCase{
		{"BRW-far", "BRW far\nMOVL #1, R1\nfar: MOVL #2, R2\nHALT",
			map[vax.Reg]uint32{vax.R1: 0, vax.R2: 2}, nil, ""},
		{"BGTRU-unsigned", "MNEGL #1, R1\nCMPL R1, #1\nBGTRU big\nMOVL #1, R3\nbig: HALT",
			map[vax.Reg]uint32{vax.R3: 0}, nil, ""}, // 0xFFFFFFFF > 1 unsigned
		{"BVS-overflow", "MOVL #0x7FFFFFFF, R1\nADDL2 #1, R1\nBVS ov\nMOVL #1, R3\nov: HALT",
			map[vax.Reg]uint32{vax.R3: 0}, nil, ""},
		{"BCC-carry-clear", "MOVL #1, R1\nADDL2 #1, R1\nBCC ok\nMOVL #1, R3\nok: HALT",
			map[vax.Reg]uint32{vax.R3: 0}, nil, ""},
		{"SOBGEQ-runs-n-plus-1", "CLRL R2\nMOVL #3, R1\nl: INCL R2\nSOBGEQ R1, l\nHALT",
			map[vax.Reg]uint32{vax.R2: 4}, nil, ""},
		{"AOBLEQ", "CLRL R2\nCLRL R1\nl: INCL R2\nAOBLEQ #3, R1, l\nHALT",
			map[vax.Reg]uint32{vax.R2: 4}, nil, ""},
		{"ACBL-step2", "CLRL R2\nMOVL #1, R1\nl: INCL R2\nACBL #10, #2, R1, l\nHALT",
			map[vax.Reg]uint32{vax.R2: 5, vax.R1: 11}, nil, ""},
		{"BLBC", "MOVL #2, R1\nBLBC R1, even\nMOVL #1, R3\neven: HALT",
			map[vax.Reg]uint32{vax.R3: 0}, nil, ""},
		{"JSB-RSB-nested", `
	MOVL #1, R1
	JSB s1
	HALT
s1:	ADDL2 #10, R1
	JSB s2
	ADDL2 #100, R1
	RSB
s2:	ADDL2 #1000, R1
	RSB`, map[vax.Reg]uint32{vax.R1: 1111}, nil, ""},
		{"CASEB", "MOVB #2, R0\nCASEB R0, #1, #2, c1, c2\nMOVL #9, R5\nBRB d\nc1: MOVL #1, R5\nBRB d\nc2: MOVL #2, R5\nd: HALT",
			map[vax.Reg]uint32{vax.R5: 2}, nil, ""},
	})
}

func TestSemanticsFieldOps(t *testing.T) {
	runSemCases(t, []semCase{
		{"EXTV-signed", "MOVL #0xF0, R1\nEXTV #4, #4, R1, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 0xFFFFFFFF}, nil, ""}, // field 1111 sign-extends
		{"EXTZV-crossing", "MOVL #0x2000, R0\nMOVL #0x80000000, (R0)\nMOVL #1, 4(R0)\nEXTZV #31, #2, (R0), R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 3}, nil, ""}, // bits 31..32 across longwords
		{"INSV-register-field", "CLRL R1\nINSV #5, #8, #4, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 0x500}, nil, ""},
		{"FFS-found", "MOVL #0x10, R1\nFFS #0, #32, R1, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 4}, nil, ""},
		{"FFS-empty-sets-Z", "CLRL R1\nFFS #0, #32, R1, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 32}, nil, "Z"},
		{"FFC", "MOVL #0x03, R1\nFFC #0, #32, R1, R2\nHALT",
			map[vax.Reg]uint32{vax.R2: 2}, nil, ""},
		{"CMPV", "MOVL #0x70, R1\nCMPV #4, #4, R1, #7\nHALT", nil, nil, "Z"},
		{"CMPZV", "MOVL #0xF0, R1\nCMPZV #4, #4, R1, #15\nHALT", nil, nil, "Z"},
		{"BBSSI", "CLRL R1\nBBSSI #3, R1, was\nMOVL #1, R2\nwas: HALT",
			map[vax.Reg]uint32{vax.R1: 8, vax.R2: 1}, nil, ""},
		{"BBCCI", "MOVL #8, R1\nBBCCI #3, R1, was\nMOVL #1, R2\nwas: HALT",
			// Bit 3 was set: no branch (BBCC branches on clear), but the
			// interlocked clear still happens.
			map[vax.Reg]uint32{vax.R1: 0, vax.R2: 1}, nil, ""},
	})
}

func TestSemanticsStrings(t *testing.T) {
	runSemCases(t, []semCase{
		{"MOVC5-fill", `
	MOVC5 #3, src, #0x2A, #6, dst
	HALT
src:	.ascii "abcxxx"
dst:	.space 8`, map[vax.Reg]uint32{vax.R0: 0}, nil, ""},
		{"CMPC3-equal-sets-Z", `
	MOVC3 #8, a, b
	CMPC3 #8, a, b
	HALT
a:	.ascii "samesame"
b:	.space 8`, nil, nil, "Z"},
		{"SKPC", `
	SKPC #0x20, #6, s	; skip leading spaces
	HALT
s:	.ascii "   abc"`, map[vax.Reg]uint32{vax.R0: 3}, nil, ""},
		{"SCANC", `
	SCANC #6, s, tbl, #1
	HALT
s:	.ascii "abc!de"
tbl:	.space 33
	.byte 1		; table['!'] = 1
	.space 94`, map[vax.Reg]uint32{vax.R0: 3}, nil, ""},
		{"SPANC", `
	SPANC #6, s, tbl, #1
	HALT
s:	.ascii "!!?abc"
tbl:	.space 33
	.byte 1		; table['!'] = 1
	.space 94`, map[vax.Reg]uint32{vax.R0: 4}, nil, ""},
	})
}

func TestSemanticsDecimal(t *testing.T) {
	runSemCases(t, []semCase{
		{"SUBP4", `
	CVTLP #500, #5, pk1
	CVTLP #123, #5, pk2
	SUBP4 #5, pk2, #5, pk1	; pk1 -= pk2
	CVTPL #5, pk1, R7
	HALT
pk1:	.space 4
pk2:	.space 4`, map[vax.Reg]uint32{vax.R7: 377}, nil, ""},
		{"ADDP6", `
	CVTLP #111, #5, pk1
	CVTLP #222, #5, pk2
	ADDP6 #5, pk1, #5, pk2, #5, pk3
	CVTPL #5, pk3, R7
	HALT
pk1:	.space 4
pk2:	.space 4
pk3:	.space 4`, map[vax.Reg]uint32{vax.R7: 333}, nil, ""},
		{"MULP", `
	CVTLP #12, #5, pk1
	CVTLP #11, #5, pk2
	MULP #5, pk1, #5, pk2, #9, pk3
	CVTPL #9, pk3, R7
	HALT
pk1:	.space 4
pk2:	.space 4
pk3:	.space 8`, map[vax.Reg]uint32{vax.R7: 132}, nil, ""},
		{"DIVP", `
	CVTLP #7, #5, pk1
	CVTLP #100, #5, pk2
	DIVP #5, pk1, #5, pk2, #5, pk3
	CVTPL #5, pk3, R7
	HALT
pk1:	.space 4
pk2:	.space 4
pk3:	.space 4`, map[vax.Reg]uint32{vax.R7: 14}, nil, ""},
		{"CMPP3-less", `
	CVTLP #5, #5, pk1
	CVTLP #9, #5, pk2
	CMPP3 #5, pk1, pk2
	HALT
pk1:	.space 4
pk2:	.space 4`, nil, nil, "N"},
		{"ASHP-up", `
	CVTLP #42, #5, pk1
	ASHP #2, #5, pk1, #0, #7, pk2
	CVTPL #7, pk2, R7
	HALT
pk1:	.space 4
pk2:	.space 8`, map[vax.Reg]uint32{vax.R7: 4200}, nil, ""},
		{"negative-packed", `
	MNEGL #250, R1
	CVTLP R1, #5, pk1
	CVTPL #5, pk1, R7
	HALT
pk1:	.space 4`, map[vax.Reg]uint32{vax.R7: 0xFFFFFF06}, nil, "N"},
	})
}

func TestSemanticsAddressingEdge(t *testing.T) {
	runSemCases(t, []semCase{
		{"autodec-autoinc-pair", `
	MOVL #0x2010, R1
	MOVL #77, -(R1)		; writes 0x200C, R1 = 0x200C
	MOVL (R1)+, R2		; reads it back, R1 = 0x2010
	HALT`, map[vax.Reg]uint32{vax.R1: 0x2010, vax.R2: 77}, map[uint32]uint32{0x200C: 77}, ""},
		{"autoinc-byte-steps-1", `
	MOVL #0x2000, R1
	MOVB #1, (R1)+
	MOVB #2, (R1)+
	HALT`, map[vax.Reg]uint32{vax.R1: 0x2002}, nil, ""},
		{"deferred-displacement", `
	MOVL #0x2100, R1
	MOVL #0x2200, 8(R1)	; pointer stored at 0x2108
	MOVL #99, @8(R1)	; through it
	HALT`, nil, map[uint32]uint32{0x2200: 99}, ""},
		{"autoinc-deferred", `
	MOVL #0x2100, R1
	MOVL #0x2300, (R1)
	MOVL #55, @(R1)+
	HALT`, map[vax.Reg]uint32{vax.R1: 0x2104}, map[uint32]uint32{0x2300: 55}, ""},
		{"indexed-scales-by-size", `
	MOVL #0x2000, R1
	MOVL #3, R2
	MOVW #7, 0(R1)[R2]	; word indexing: 0x2000 + 2*3
	HALT`, nil, map[uint32]uint32{0x2004: 7 << 16}, ""},
		{"pc-relative-label", `
	MOVL val, R1
	HALT
val:	.long 123456`, map[vax.Reg]uint32{vax.R1: 123456}, nil, ""},
		{"quad-immediate", `
	MOVL #0x2000, R1
	MOVQ I^#7, (R1)
	HALT`, nil, map[uint32]uint32{0x2000: 7, 0x2004: 0}, ""},
	})
}

func TestSemanticsPSW(t *testing.T) {
	runSemCases(t, []semCase{
		{"BISPSW-sets-cc", "BISPSW #0x04\nHALT", nil, nil, "Z"},
		{"BICPSW-clears", "BISPSW #0x0F\nBICPSW #0x0A\nHALT", nil, nil, "ZC"},
	})
}

// TestSemanticsEveryRegisteredOpcodeHasExec verifies the dispatch table is
// complete: every opcode in the architectural table has a microroutine.
func TestSemanticsEveryRegisteredOpcodeHasExec(t *testing.T) {
	for _, info := range vax.All() {
		if execTable[info.Code] == nil {
			t.Errorf("%s (%#02x) has no execute routine", info.Name, info.Code)
		}
	}
}

func TestSemanticsIndexAndOrg(t *testing.T) {
	runSemCases(t, []semCase{
		{"INDEX-in-range", "INDEX #5, #1, #10, #4, #0, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 20}, nil, ""},
		{"INDEX-chained", "INDEX #3, #0, #9, #10, #2, R1\nHALT",
			map[vax.Reg]uint32{vax.R1: 50}, nil, ""}, // (2+3)*10
		{"INDEX-out-of-range-sets-V", "INDEX #12, #1, #10, #4, #0, R1\nHALT",
			nil, nil, "V"},
	})
}

func TestOrgDirectivePlacesCode(t *testing.T) {
	m, _, im := runImage(t, `
	MOVL	val, R1
	HALT
	.org	0x1200
val:	.long	777
`)
	if im.MustAddr("val") != 0x1200 {
		t.Fatalf("val at %#x, want 0x1200", im.MustAddr("val"))
	}
	if m.R[1] != 777 {
		t.Errorf("R1 = %d, want 777", m.R[1])
	}
}

func TestSemanticsMovtc(t *testing.T) {
	m, _, im := runImage(t, `
	MOVTC	#5, src, #0x2E, tbl, #8, dst
	HALT
src:	.ascii	"hello"
	; identity table except lowercase -> uppercase
tbl:	.space	97
	.byte	65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76, 77
	.byte	78, 79, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90
	.space	133
dst:	.space	8
`)
	got := string(m.Mem.Read(im.MustAddr("dst"), 8))
	if got != "HELLO..." {
		t.Errorf("dst = %q, want HELLO...", got)
	}
}
