package cpu

import (
	"vax780/internal/fault"
	"vax780/internal/mem"
)

// Machine checks: the 780's report path for hardware errors — cache and
// TB parity, SBI faults, memory RDS, control-store parity. The subsystem
// that detects the error latches a syndrome; the microcode polls the
// latches at the next instruction boundary, pushes a machine-check frame
// on the kernel stack, raises IPL to 31 and vectors through SCB offset
// 0x04. The kernel decides the policy: retry (REI — safe here because
// the check is delivered between instructions), log, or crash.
//
// The frame, built upward from the final SP:
//
//	0(SP)  byte count of the parameters below (8)
//	4(SP)  info  — the failing physical/virtual address or µPC
//	8(SP)  cause — an MCCause code
//	12(SP) PC    — the next instruction (the retry address)
//	16(SP) PSL
//
// A real 780 frame is longer (it dumps internal registers); the shape —
// count on top, parameters, PC, PSL — matches, which is what the kernel
// handler depends on.

// MCCause is the machine-check cause code pushed in the frame. The vmos
// kernel indexes its per-cause log table with it, so values must stay
// dense and below mcCauseSlots.
type MCCause uint32

const (
	MCMemRange    MCCause = iota // physical reference to nonexistent memory
	MCMemRDS                     // uncorrectable memory array error
	MCCacheParity                // cache tag/data parity error
	MCTBParity                   // translation-buffer parity error
	MCSBITimeout                 // SBI transaction timeout
	MCCSParity                   // microcode control-store parity error
	NumMCCauses
)

// mcCauseSlots is the size of the kernel's per-cause table (longwords);
// kept a power of two above NumMCCauses so the frame's cause can index it
// without bounds logic in assembly.
const mcCauseSlots = 8

func (c MCCause) String() string {
	switch c {
	case MCMemRange:
		return "nonexistent memory"
	case MCMemRDS:
		return "memory RDS"
	case MCCacheParity:
		return "cache parity"
	case MCTBParity:
		return "TB parity"
	case MCSBITimeout:
		return "SBI timeout"
	case MCCSParity:
		return "control-store parity"
	}
	return "unknown machine-check cause"
}

// pendingMC is a latched machine check awaiting delivery.
type pendingMC struct {
	cause MCCause
	info  uint32
}

// AttachFaultPlane wires a fault-injection plane into every injection
// point of the machine (nil detaches them all). See internal/fault.
func (m *Machine) AttachFaultPlane(p *fault.Plane) {
	m.plane = p
	m.Mem.SetInjector(p.Sampler(fault.MemRDS))
	m.Cache.SetInjector(p.Sampler(fault.CacheParity))
	m.TLB.SetInjector(p.Sampler(fault.TBParity))
	m.SBI.SetInjector(p.Sampler(fault.SBITimeout))
	m.csSample = p.Sampler(fault.CSParity)
}

// FaultPlane returns the attached fault plane (nil when none).
func (m *Machine) FaultPlane() *fault.Plane { return m.plane }

// pollMachineChecks drains the subsystem error latches and the
// control-store parity sampler, pending at most one machine check.
// Called at every instruction boundary.
func (m *Machine) pollMachineChecks() {
	if m.csSample != nil && m.csSample() {
		m.pendMachineCheck(MCCSParity, uint32(m.upc))
	}
	if f, ok := m.Mem.TakeFault(); ok {
		cause := MCMemRange
		if f.Kind == mem.FaultRDS {
			cause = MCMemRDS
		}
		m.pendMachineCheck(cause, f.Addr)
	}
	if pa, ok := m.Cache.TakeFault(); ok {
		m.pendMachineCheck(MCCacheParity, pa)
	}
	if va, ok := m.TLB.TakeFault(); ok {
		m.pendMachineCheck(MCTBParity, va)
	}
	if cyc, ok := m.SBI.TakeFault(); ok {
		m.pendMachineCheck(MCSBITimeout, uint32(cyc))
	}
}

// pendMachineCheck latches one machine check for delivery at the next
// instruction boundary. The latch holds a single syndrome: errors
// arriving while one is pending or being handled are counted as lost,
// not stacked — the hardware's lost-error behaviour, and what keeps an
// error burst from nesting machine checks inside their own handler.
func (m *Machine) pendMachineCheck(cause MCCause, info uint32) {
	if m.mcActive || m.mcPending {
		m.mcLost++
		return
	}
	m.pendMC = pendingMC{cause: cause, info: info}
	m.mcPending = true
}

// deliverMachineCheck runs the machine-check microcode: build the frame
// on the kernel stack, raise IPL to 31, vector through the SCB. All
// cycles land in the Int/Except row. An empty or unreachable vector is
// the unrecoverable case and halts with a structured error.
func (m *Machine) deliverMachineCheck() {
	mc := m.pendMC
	m.mcPending = false
	m.mcActive = true
	m.machineChecks++
	m.mcByCause[mc.cause]++

	m.tick(uw.mcEntry)
	m.ticks(uw.mcWork, 4)
	savedPSL := m.PSL
	savedPC := m.ib.cur() // boundary delivery: the next instruction, i.e. the retry address
	m.setMode(0)
	m.push32(uw.mcPush, savedPSL)
	m.push32(uw.mcPush, savedPC)
	m.push32(uw.mcPush, uint32(mc.cause))
	m.push32(uw.mcPush, mc.info)
	m.push32(uw.mcPush, 8) // byte count of {info, cause}
	handler := m.readSCB(uw.mcVec, uint16(SCBMachineChk))
	if m.runErr != nil {
		return
	}
	if handler == 0 {
		m.fail("machine check (%v, info %#x) with no SCB handler", mc.cause, mc.info)
		return
	}
	m.PSL = m.PSL&^(0x1F<<16) | 31<<16
	m.ticks(uw.mcWork, 2)
	m.ib.redirect(handler)
	m.lastPCChange = true
}
