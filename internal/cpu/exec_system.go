package cpu

import (
	"vax780/internal/mmu"
	"vax780/internal/vax"
)

// Execute-phase microroutines for the SYSTEM group: change-mode system
// service requests, REI, context switching, queue manipulation, protection
// probes and privileged register access.

// PCB layout used by SVPCTX/LDPCTX (longword offsets from PCBB, physical).
// A simplified but complete process context.
const (
	pcbKSP  = 0  // kernel stack pointer
	pcbUSP  = 1  // user stack pointer
	pcbR0   = 2  // R0..R11 in 2..13
	pcbAP   = 14 //
	pcbFP   = 15 //
	pcbPC   = 16 //
	pcbPSL  = 17 //
	pcbP0BR = 18 //
	pcbP0LR = 19 //
	pcbP1BR = 20 //
	pcbP1LR = 21 //
	// PCBSize is the PCB length in longwords.
	PCBSize = 22
)

// PCBOffset returns the byte offset of a PCB slot (for OS code building
// process control blocks).
func PCBOffset(slot int) uint32 { return uint32(4 * slot) }

func init() {
	// CHMK/CHME code.rw: change mode to kernel/executive; the system
	// service request mechanism (Table 1: "sys. serv. requests").
	chm := func(vec int) execFn {
		return func(m *Machine) {
			m.tick(uw.chmEntry)
			m.ticks(uw.chmWork, 8)
			code := uint32(int32(int16(uint16(m.opVal(0)))))
			savedPSL := m.PSL
			savedPC := m.ib.cur()
			prevMode := m.CurrentMode()
			m.setMode(0)
			m.push32(uw.chmPush, savedPSL)
			m.push32(uw.chmPush, savedPC)
			m.push32(uw.chmPush, code)
			handler := m.readSCB(uw.chmVec, uint16(vec))
			m.PSL = m.PSL&^(3<<22) | prevMode<<22
			m.ticks(uw.chmWork, 5)
			m.redirect(uw.chmTaken, handler)
		}
	}
	register(vax.CHMK, chm(SCBCHMK))
	register(vax.CHME, chm(SCBCHME))

	// REI: return from exception or interrupt.
	register(vax.REI, func(m *Machine) {
		m.tick(uw.reiEntry)
		m.ticks(uw.reiWork, 5)
		pc := m.pop32(uw.reiPop)
		m.ticks(uw.reiWork, 2)
		psl := m.pop32(uw.reiPop)
		m.ticks(uw.reiWork, 5)
		m.setMode(psl >> 24 & 3)
		m.PSL = psl
		// Returning re-opens the machine-check latch: the handler is done
		// (or an outer context resumed), so a new syndrome may be taken.
		m.mcActive = false
		m.redirect(uw.reiTaken, pc)
	})

	// SVPCTX: save process context into the PCB (run in kernel mode after
	// an interrupt: pops the interrupt PC/PSL pair into the PCB).
	register(vax.SVPCTX, func(m *Machine) {
		m.tick(uw.svpctxEntry)
		m.ticks(uw.svpctxWork, 3)
		pcb := m.ipr[IPRSlotPCBB]
		pc := uint32(m.dread(uw.svpctxRead, m.R[vax.SP], 4))
		psl := uint32(m.dread(uw.svpctxRead, m.R[vax.SP]+4, 4))
		m.R[vax.SP] += 8
		//vaxlint:allow hotpath -- cold: one closure per SVPCTX, a Table 7 context-switch event, not a per-cycle cost
		store := func(slot int, v uint32) {
			m.tick(uw.svpctxWork)
			m.cacheWriteRef(uw.svpctxStore, pcb+PCBOffset(slot))
			m.Mem.WriteLong(pcb+PCBOffset(slot), v)
		}
		store(pcbKSP, m.R[vax.SP])
		store(pcbUSP, m.ipr[IPRSlotUSP])
		for r := 0; r < 12; r++ {
			store(pcbR0+r, m.R[r])
		}
		store(pcbAP, m.R[vax.AP])
		store(pcbFP, m.R[vax.FP])
		store(pcbPC, pc)
		store(pcbPSL, psl)
		m.ticks(uw.svpctxWork, 2)
	})

	// LDPCTX: load process context from the PCB, flush the process half of
	// the TB, and push the saved PC/PSL for the REI that resumes the
	// process. This is the context-switch event of Table 7.
	register(vax.LDPCTX, func(m *Machine) {
		m.tick(uw.ldpctxEntry)
		m.ticks(uw.ldpctxWork, 3)
		pcb := m.ipr[IPRSlotPCBB]
		//vaxlint:allow hotpath -- cold: one closure per LDPCTX, a Table 7 context-switch event, not a per-cycle cost
		load := func(slot int) uint32 {
			// The PCB is addressed physically (PCBB is a physical address).
			return m.readPhys(uw.ldpctxLoad, pcb+PCBOffset(slot))
		}
		ksp := load(pcbKSP)
		m.ipr[IPRSlotUSP] = load(pcbUSP)
		for r := 0; r < 12; r++ {
			m.R[r] = load(pcbR0 + r)
		}
		m.R[vax.AP] = load(pcbAP)
		m.R[vax.FP] = load(pcbFP)
		pc := load(pcbPC)
		psl := load(pcbPSL)
		m.MMU.P0BR = load(pcbP0BR)
		m.MMU.P0LR = load(pcbP0LR)
		m.MMU.P1BR = load(pcbP1BR)
		m.MMU.P1LR = load(pcbP1LR)
		if !m.cfg.NoTBFlushOnSwitch {
			m.TLB.FlushProcess()
		}
		m.ticks(uw.ldpctxWork, 4)
		m.R[vax.SP] = ksp
		m.push32(uw.ldpctxPush, psl)
		m.push32(uw.ldpctxPush, pc)
		m.ctxSwitches++
	})

	// INSQUE entry.ab, pred.ab: insert into a doubly-linked queue.
	register(vax.INSQUE, func(m *Machine) {
		m.tick(uw.queueEntry)
		m.ticks(uw.queueWork, 6)
		entry := m.opAddr(0)
		pred := m.opAddr(1)
		succ := uint32(m.dread(uw.queueRead, pred, 4))
		m.dwrite(uw.queueWrite, entry, 4, uint64(succ))
		m.tick(uw.queueWork)
		m.dwrite(uw.queueWrite, entry+4, 4, uint64(pred))
		m.dwrite(uw.queueWrite, pred, 4, uint64(entry))
		m.tick(uw.queueWork)
		m.dwrite(uw.queueWrite, succ+4, 4, uint64(entry))
		// Z set when the queue was empty before insertion.
		m.setCC(false, succ == pred, false, false)
	})

	// REMQUE entry.ab, addr.wl: remove from a doubly-linked queue.
	register(vax.REMQUE, func(m *Machine) {
		m.tick(uw.queueEntry)
		m.ticks(uw.queueWork, 6)
		entry := m.opAddr(0)
		succ := uint32(m.dread(uw.queueRead, entry, 4))
		pred := uint32(m.dread(uw.queueRead, entry+4, 4))
		m.dwrite(uw.queueWrite, pred, 4, uint64(succ))
		m.tick(uw.queueWork)
		m.dwrite(uw.queueWrite, succ+4, 4, uint64(pred))
		m.storeResult(1, uint64(entry))
		// V set when the queue was already empty (entry linked to itself).
		m.setCC(false, succ == pred, entry == pred, false)
	})

	// PROBER/PROBEW mode.rb, len.rw, base.ab: accessibility probes.
	probe := func(m *Machine) {
		m.tick(uw.probeEntry)
		m.ticks(uw.probeWork, 10)
		base := m.opAddr(2)
		length := uint32(uint16(m.opVal(1)))
		ok := true
		for _, va := range []uint32{base, base + length - 1} {
			if _, err := mmu.Translate(va, &m.MMU, m.Mem); err != nil {
				ok = false
			}
		}
		// Z set when NOT accessible? Architecture: Z set when accessible
		// check fails; condition code Z <- NOT accessible.
		m.setCC(false, !ok, false, false)
	}
	register(vax.PROBER, probe)
	register(vax.PROBEW, probe)

	// MTPR src.rl, procreg.rl
	register(vax.MTPR, func(m *Machine) {
		m.tick(uw.mtprEntry)
		m.ticks(uw.mtprWork, 4)
		if m.CurrentMode() != 0 {
			m.deliverException(SCBReservedOp, nil)
			return
		}
		reg := uint32(m.opVal(1))
		if reg == PRSIRR {
			m.tick(uw.mtprSIRR)
		}
		m.prWrite(reg, uint32(m.opVal(0)))
	})

	// MFPR procreg.rl, dst.wl
	register(vax.MFPR, func(m *Machine) {
		m.tick(uw.mfprEntry)
		m.tick(uw.mtprWork)
		if m.CurrentMode() != 0 {
			m.deliverException(SCBReservedOp, nil)
			return
		}
		v := m.prRead(uint32(m.opVal(0)))
		m.storeResult(1, uint64(v))
	})

	// BISPSW/BICPSW mask.rw
	register(vax.BISPSW, func(m *Machine) {
		m.tick(uw.pswEntry)
		m.PSL |= uint32(uint16(m.opVal(0))) & 0xFF
	})
	register(vax.BICPSW, func(m *Machine) {
		m.tick(uw.pswEntry)
		m.PSL &^= uint32(uint16(m.opVal(0))) & 0xFF
	})

	// HALT: kernel mode stops the machine; user mode faults.
	register(vax.HALT, func(m *Machine) {
		m.tick(uw.haltEntry)
		if m.CurrentMode() != 0 {
			m.deliverException(SCBReservedOp, nil)
			return
		}
		m.halted = true
		m.haltReason = HaltInstruction
	})

	// BPT: breakpoint fault.
	register(vax.BPT, func(m *Machine) {
		m.tick(uw.haltEntry)
		m.deliverException(SCBReservedOp, nil)
	})
}
