// Package cpu implements a cycle-level model of the VAX-11/780 processor:
// the microcoded EBOX, the I-Fetch unit with its 8-byte instruction buffer,
// the I-Decode dispatch, and their connection to the memory subsystem
// (translation buffer, cache, write buffer and SBI).
//
// Every cycle the machine executes is attributed to exactly one microcode
// control-store location (see internal/ucode) and reported to an attached
// µPC histogram probe, reproducing the measurement substrate of Emer &
// Clark's ISCA 1984 study. Stalled cycles (read stall, write stall) are
// reported separately per location, and IB stalls are counted as executions
// of dedicated "insufficient bytes" dispatch locations, exactly as on the
// authors' monitor board (§2.2, §4.3 of the paper).
package cpu

import (
	"context"
	"errors"
	"fmt"

	"vax780/internal/cache"
	"vax780/internal/fault"
	"vax780/internal/mem"
	"vax780/internal/mmu"
	"vax780/internal/tb"
	"vax780/internal/vax"
)

// CycleNanoseconds is the EBOX microinstruction time: the paper's
// definition of a cycle (§2.1).
const CycleNanoseconds = 200

// Probe receives per-cycle µPC events. It is the attachment point for the
// µPC histogram monitor (internal/core). A nil probe means no monitor.
//
// The probe is passive: implementations must not mutate machine state.
type Probe interface {
	// Count records n executed (non-stalled) cycles at a control-store
	// location. n > 1 only for IB-stall locations, whose execution count
	// is defined to be the stall cycle count.
	Count(upc uint16, n uint64)
	// Stall records n read- or write-stalled cycles at the location of
	// the stalled microinstruction.
	Stall(upc uint16, n uint64)
}

// Config assembles a machine. Zero fields take 11/780 defaults.
type Config struct {
	MemBytes uint32        // physical memory size (default 8 MB, as measured)
	SBI      mem.SBIConfig // bus timing
	Cache    cache.Config  // cache geometry
	// DecodeOverlap removes the non-overlapped decode cycle on
	// non-PC-changing instructions (the 11/750 optimization discussed in
	// §5) — an ablation knob, off for the 11/780.
	DecodeOverlap bool
	// CharWriteSpacing enables the character-string microcode's
	// write-stall-avoidance spacing (§4.3); on for the real machine.
	// Disabling it is an ablation.
	NoCharWriteSpacing bool
	// PatchEvery inserts one Abort-row cycle every N instructions,
	// modelling the production machines' microcode patches ("one [abort
	// cycle] for each microcode patch", §5). Default 10; negative
	// disables.
	PatchEvery int
	// WriteBufferDepth sizes the write buffer in longwords (default 1,
	// the 11/780's; deeper buffers are an ablation).
	WriteBufferDepth int
	// NoTBFlushOnSwitch stops LDPCTX from flushing the process half of
	// the TB — the flush-policy ablation of §3.4 (which would require
	// address-space tags the 780 does not have).
	NoTBFlushOnSwitch bool
	// NoFPA removes the Floating Point Accelerator ("all of the VAXes had
	// Floating Point Accelerators", §2.2): floating execute phases take
	// FPASlowdown times as many microcycles.
	NoFPA bool
	// FPASlowdown is the microcode-only float cost multiplier when NoFPA
	// is set (default 3).
	FPASlowdown int
}

// IRQ is a pending interrupt request.
type IRQ struct {
	At     uint64 // cycle at which the request asserts
	IPL    uint8  // request priority level
	Vector uint16 // SCB vector offset (bytes)
}

// Machine is a complete VAX-11/780.
type Machine struct {
	cfg Config //vaxlint:allow statecomplete -- travels as checkpoint Meta.Machine; the resume path rebuilds with cpu.New

	Mem   *mem.Memory
	SBI   *mem.SBI
	WB    *mem.WriteBuffer
	Cache *cache.Cache
	TLB   *tb.TB
	MMU   mmu.Registers

	// Architectural state.
	R   [16]uint32 // R15 (PC) is shadowed by the IB pointer; see PCVal
	PSL uint32
	ipr [iprCount]uint32 // internal processor registers

	// Microarchitectural state.
	ib         ibox
	ops        [6]operand  //vaxlint:allow statecomplete -- per-instruction decode scratch, rewritten before any use
	nops       int         //vaxlint:allow statecomplete -- per-instruction decode scratch
	instr      *vax.OpInfo //vaxlint:allow statecomplete -- per-instruction decode scratch
	instPC     uint32      //vaxlint:allow statecomplete -- per-instruction decode scratch
	cycle      uint64
	instret    uint64
	upc        uint16 // control-store location of the last cycle
	halted     bool
	haltReason HaltReason
	runErr     error

	probe Probe //vaxlint:allow statecomplete -- attachment; the resume path re-attaches the monitor
	gate  bool  // monitor count enable (vmos drops it for the null process)

	irqs    []IRQ // time-ordered external interrupt requests
	nextIRQ int

	lastPCChange bool // previous instruction changed the PC (DecodeOverlap ablation)
	inExc        bool //vaxlint:allow statecomplete -- false at every instruction boundary (snapshots are taken there); ImportState re-clears it
	instAborted  bool //vaxlint:allow statecomplete -- false at every instruction boundary; ImportState re-clears it
	patchCtr     int  // instructions until the next patched microword

	// Progress watchdog (see SetWatchdog): a machine that burns wdLimit
	// cycles without retiring an instruction is stopped with a structured
	// error instead of spinning forever.
	wdLimit      uint64 //vaxlint:allow statecomplete -- supervisor configuration, re-armed by the supervisor on resume
	wdLastRetire uint64 // cycle at which the last instruction retired

	// Machine-check state (see mcheck.go).
	plane     *fault.Plane //vaxlint:allow statecomplete -- attachment; rebuilt from Meta.Fault, stream positions travel as FaultState
	csSample  func() bool  //vaxlint:allow statecomplete -- attachment derived from the plane (control-store parity sampler, nil = never)
	pendMC    pendingMC
	mcPending bool
	mcActive  bool // a machine check is being handled (cleared by REI)

	// Hardware event counters (not monitor-visible; used for cross-checks).
	// They travel as State.HW: ExportState captures them through the HW()
	// accessor, an indirection the statecomplete analyzer cannot follow,
	// so each carries the exemption naming that path.
	unaligned     uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.Unaligned
	sirrRequests  uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.SIRRRequests
	irqDelivered  uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.Interrupts
	exceptions    uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.Exceptions
	ctxSwitches   uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.CtxSwitches
	machineChecks uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.MachineChecks
	mcLost        uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.MachineChecksLost
	mcByCause     [NumMCCauses]uint64 //vaxlint:allow statecomplete -- exported via HW() into State.HW.MachineChecksByCause

	// OnInstruction, if set, runs between instructions (used by the OS
	// layer for scheduling decisions and by the RTE for terminal events).
	OnInstruction func(m *Machine) //vaxlint:allow statecomplete -- attachment; vmos re-installs its scheduler hook on boot
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 8 << 20
	}
	if cfg.SBI.ReadLatency == 0 {
		cfg.SBI = mem.DefaultSBIConfig()
	}
	if cfg.Cache.SizeBytes == 0 {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.PatchEvery == 0 {
		cfg.PatchEvery = 10
	}
	if cfg.FPASlowdown == 0 {
		cfg.FPASlowdown = 3
	}
	m := &Machine{}
	if cfg.WriteBufferDepth == 0 {
		cfg.WriteBufferDepth = 1
	}
	m.cfg = cfg
	m.Mem = mem.New(cfg.MemBytes)
	// A bad configuration does not abort construction: the machine is
	// built on defaults with a sticky error, so callers that ignore Err()
	// still hold a structurally sound (if halted) machine.
	sbi, err := mem.NewSBI(cfg.SBI)
	if err != nil {
		sbi, _ = mem.NewSBI(mem.DefaultSBIConfig())
		m.fail("bad configuration: %v", err)
	}
	m.SBI = sbi
	m.WB = mem.NewWriteBufferDepth(m.SBI, cfg.WriteBufferDepth)
	c, err := cache.New(cfg.Cache)
	if err != nil {
		c, _ = cache.New(cache.DefaultConfig())
		m.fail("bad configuration: %v", err)
	}
	m.Cache = c
	m.TLB = tb.New()
	m.ib.m = m
	m.gate = true
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// AttachProbe connects a µPC histogram probe. Passing nil detaches.
func (m *Machine) AttachProbe(p Probe) { m.probe = p }

// SetMonitorGate enables or disables monitor counting (the paper excluded
// the VMS null process from measurement, §2.2).
func (m *Machine) SetMonitorGate(on bool) { m.gate = on }

// MonitorGate reports whether monitor counting is enabled.
func (m *Machine) MonitorGate() bool { return m.gate }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Instructions returns the number of completed VAX instructions.
func (m *Machine) Instructions() uint64 { return m.instret }

// Halted reports whether the machine executed HALT in kernel mode.
func (m *Machine) Halted() bool { return m.halted }

// PCVal returns the architectural PC: the address of the next I-stream
// byte to be decoded.
func (m *Machine) PCVal() uint32 { return m.ib.cur() }

// SetPC redirects instruction fetch to va.
func (m *Machine) SetPC(va uint32) { m.ib.redirect(va) }

// QueueIRQ schedules an external interrupt request. Requests may arrive
// in any time order; each is inserted at its place in the pending queue
// (but never before a request that was already delivered).
func (m *Machine) QueueIRQ(q IRQ) {
	i := len(m.irqs)
	for i > m.nextIRQ && m.irqs[i-1].At > q.At {
		i--
	}
	m.irqs = append(m.irqs, IRQ{})
	copy(m.irqs[i+1:], m.irqs[i:])
	m.irqs[i] = q
}

// tick executes one non-stalled cycle at control-store location w.
func (m *Machine) tick(w uint16) {
	m.upc = w
	if m.probe != nil && m.gate {
		m.probe.Count(w, 1)
	}
	m.cycle++
	if m.wdLimit != 0 && m.cycle-m.wdLastRetire > m.wdLimit {
		m.watchdogExpire()
	}
}

// ticks executes n cycles at w (a microcode loop revisiting one location).
func (m *Machine) ticks(w uint16, n int) {
	for i := 0; i < n; i++ {
		m.tick(w)
	}
}

// stall accounts n read-/write-stalled cycles at w.
func (m *Machine) stall(w uint16, n uint64) {
	if n == 0 {
		return
	}
	m.upc = w
	if m.probe != nil && m.gate {
		m.probe.Stall(w, n)
	}
	m.cycle += n
	if m.wdLimit != 0 && m.cycle-m.wdLastRetire > m.wdLimit {
		m.watchdogExpire()
	}
}

// ibStallTick burns one cycle waiting for IB bytes, counted as an
// execution of the dedicated stall location w (§4.3).
func (m *Machine) ibStallTick(w uint16) {
	m.upc = w
	if m.probe != nil && m.gate {
		m.probe.Count(w, 1)
	}
	m.cycle++
	if m.wdLimit != 0 && m.cycle-m.wdLastRetire > m.wdLimit {
		m.watchdogExpire()
	}
}

// SetWatchdog arms the progress watchdog: if the machine executes cycles
// cycles without retiring a single instruction — a wedged µPC loop, an
// interrupt storm, a microcode spin — it stops with a *MachineError
// recording the stuck µPC and a full diagnostic state dump. Zero disarms.
// The budget must comfortably exceed the longest legitimate instruction
// (a maximum-length character-string instruction runs for tens of
// thousands of cycles).
func (m *Machine) SetWatchdog(cycles uint64) {
	m.wdLimit = cycles
	m.wdLastRetire = m.cycle
}

// watchdogExpire stops the machine with a livelock diagnosis. The failure
// µPC is the location the machine was stuck at; the error carries a state
// dump taken at expiry.
//
//vaxlint:allow hotpath -- cold: fires at most once per run, at livelock diagnosis; the machine stops
func (m *Machine) watchdogExpire() {
	if m.runErr != nil {
		return
	}
	dump := m.StateDump()
	m.fail("watchdog: no instruction retired in %d cycles (stuck at µpc %#04x)", m.wdLimit, m.upc)
	var me *MachineError
	if errors.As(m.runErr, &me) {
		me.Dump = dump
	}
}

// HaltReason classifies why the machine stopped.
type HaltReason int

const (
	// HaltNone: the machine has not halted (e.g. the cycle budget ran out).
	HaltNone HaltReason = iota
	// HaltInstruction: a kernel-mode HALT instruction — the orderly stop.
	HaltInstruction
	// HaltError: an unrecoverable model error; Err carries a *MachineError.
	HaltError
)

func (r HaltReason) String() string {
	switch r {
	case HaltNone:
		return "running"
	case HaltInstruction:
		return "HALT instruction"
	case HaltError:
		return "unrecoverable error"
	}
	return "unknown halt reason"
}

// MachineError is the sticky error of a machine that stopped on an
// unrecoverable condition. UPC and Cycle locate the failure: the
// control-store location of the last cycle executed and the cycle count
// at the stop.
type MachineError struct {
	UPC   uint16
	Cycle uint64
	Msg   string
	// Dump, when non-empty, is a diagnostic state snapshot taken at the
	// failure (the watchdog fills it in; see StateDump). It is not part
	// of Error() — callers that want the post-mortem print it explicitly.
	Dump string
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("cpu: %s (µpc %#04x, cycle %d)", e.Msg, e.UPC, e.Cycle)
}

// RunResult describes why Run returned.
type RunResult struct {
	Cycles       uint64
	Instructions uint64
	Halted       bool
	Reason       HaltReason
	Err          error
}

// Run executes instructions until a kernel-mode HALT, an unrecoverable
// error, or the cycle budget is exhausted.
func (m *Machine) Run(maxCycles uint64) RunResult {
	return m.RunCtx(context.Background(), maxCycles)
}

// RunCtx is Run with cooperative cancellation: the context is polled at
// every instruction boundary, so a cancelled or expired context stops the
// machine cleanly between instructions — the state remains checkpointable.
// On cancellation the result's Err is the context's error (the machine
// itself carries no sticky error and can keep running).
func (m *Machine) RunCtx(ctx context.Context, maxCycles uint64) RunResult {
	start := m.cycle
	startInst := m.instret
	var ctxErr error
	for !m.halted && m.runErr == nil && m.cycle-start < maxCycles {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		m.StepInstruction()
		if m.OnInstruction != nil {
			m.OnInstruction(m)
		}
	}
	err := m.runErr
	if err == nil {
		err = ctxErr
	}
	return RunResult{
		Cycles:       m.cycle - start,
		Instructions: m.instret - startInst,
		Halted:       m.halted,
		Reason:       m.haltReason,
		Err:          err,
	}
}

// Err returns the sticky machine error, if any.
func (m *Machine) Err() error { return m.runErr }

// Reason returns why the machine halted (HaltNone while running).
func (m *Machine) Reason() HaltReason { return m.haltReason }

// fail stops the machine with a structured *MachineError recording the
// failing µPC and cycle. Once failed, further Steps are inert and the
// first error sticks.
//
//vaxlint:allow hotpath -- cold: terminal failure path; the machine stops after the first error and further Steps are inert
func (m *Machine) fail(format string, args ...any) {
	if m.runErr == nil {
		m.runErr = &MachineError{
			UPC:   m.upc,
			Cycle: m.cycle,
			Msg:   fmt.Sprintf(format, args...),
		}
		m.haltReason = HaltError
	}
	m.halted = true
}

// CurrentMode returns the PSL current-mode field (0 kernel .. 3 user).
func (m *Machine) CurrentMode() uint32 { return m.PSL >> 24 & 3 }

// HWCounters are hardware event counts kept outside the monitor, used to
// cross-check the histogram-derived frequencies.
type HWCounters struct {
	Unaligned    uint64 // unaligned D-stream references (§3.3.1: ~0.016/instr)
	SIRRRequests uint64 // software interrupt requests (Table 7)
	Interrupts   uint64 // hardware+software interrupts delivered (Table 7)
	Exceptions   uint64
	CtxSwitches  uint64 // LDPCTX executions (Table 7)
	// MachineChecks counts delivered machine checks; MachineChecksLost
	// counts syndromes absorbed while a check was already outstanding
	// (the single-error latch, see mcheck.go).
	MachineChecks        uint64
	MachineChecksLost    uint64
	MachineChecksByCause [NumMCCauses]uint64
}

// HW returns the hardware event counters.
func (m *Machine) HW() HWCounters {
	return HWCounters{
		Unaligned:            m.unaligned,
		SIRRRequests:         m.sirrRequests,
		Interrupts:           m.irqDelivered,
		Exceptions:           m.exceptions,
		CtxSwitches:          m.ctxSwitches,
		MachineChecks:        m.machineChecks,
		MachineChecksLost:    m.mcLost,
		MachineChecksByCause: m.mcByCause,
	}
}

// setMode switches the current mode, banking the stack pointer.
func (m *Machine) setMode(mode uint32) {
	cur := m.CurrentMode()
	if cur == mode {
		return
	}
	// Save outgoing SP, load incoming.
	m.ipr[IPRSlotKSP+int(cur)] = m.R[vax.SP]
	m.R[vax.SP] = m.ipr[IPRSlotKSP+int(mode)]
	m.PSL = m.PSL&^(3<<24) | mode<<24
}
