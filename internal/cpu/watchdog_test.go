package cpu

import (
	"errors"
	"strings"
	"testing"

	"vax780/internal/asm"
	"vax780/internal/vax"
)

// TestWatchdogConvertsWedgedMachine arms the progress watchdog with a
// budget far smaller than one long string instruction: the machine burns
// thousands of cycles without retiring, the watchdog fires mid-
// instruction, and the run ends with a structured *MachineError carrying
// the stuck µPC and a diagnostic state dump — not an endless spin.
func TestWatchdogConvertsWedgedMachine(t *testing.T) {
	im, err := asm.Assemble(0x1000, `
	MOVC3	#4096, src, dst
	HALT
src:	.space	4096
dst:	.space	4096
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	m.SetWatchdog(300)

	res := m.Run(2_000_000)
	if res.Err == nil {
		t.Fatalf("wedged machine ran to completion (halted=%v after %d cycles)", res.Halted, res.Cycles)
	}
	var me *MachineError
	if !errors.As(res.Err, &me) {
		t.Fatalf("want *MachineError, got %T: %v", res.Err, res.Err)
	}
	if !strings.Contains(me.Msg, "watchdog") {
		t.Errorf("error does not identify the watchdog: %q", me.Msg)
	}
	if !strings.Contains(me.Msg, "µpc") {
		t.Errorf("error does not report the stuck µpc: %q", me.Msg)
	}
	if me.Dump == "" {
		t.Error("watchdog error carries no state dump")
	}
	for _, want := range []string{"r0", "psl", "cycle"} {
		if !strings.Contains(strings.ToLower(me.Dump), want) {
			t.Errorf("state dump missing %q:\n%s", want, me.Dump)
		}
	}
	// The run must end within the wedged instruction (string loops poll
	// no flags, so the error surfaces at the instruction's end), far
	// inside the 2M-cycle budget.
	if res.Cycles > 100_000 {
		t.Errorf("watchdog let the machine spin for %d cycles", res.Cycles)
	}
}

// TestWatchdogQuietOnProgress: a program that retires instructions
// steadily must never trip even a small watchdog budget (every retirement
// resets the clock).
func TestWatchdogQuietOnProgress(t *testing.T) {
	im, err := asm.Assemble(0x1000, `
	MOVL	#2000, R7
loop:	SOBGTR	R7, loop
	HALT
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(Config{MemBytes: 1 << 20})
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	m.SetWatchdog(300)
	res := m.Run(2_000_000)
	if res.Err != nil {
		t.Fatalf("watchdog tripped on a progressing machine: %v", res.Err)
	}
	if !res.Halted {
		t.Fatal("program did not halt")
	}
}
