package cpu

import (
	"fmt"

	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// CS is the control-store map of this microcode build. It is shared by all
// machines (the microcode is fixed; configuration knobs change timing
// parameters, not the store layout) and is what the reduction engine in
// internal/core interprets, just as the paper's analysts interpreted the
// real microcode listing.
//
// CS is sealed (ucode.Store.Seal) once the last microword below is
// defined, making every lookup race-free by construction: a fleet of
// machines stepping on separate goroutines (internal/farm) reads this one
// store; nothing per-machine is rebuilt.
var CS = ucode.NewStore()

// csSealed freezes CS after the uw table — whose initialization performs
// every Define — is built; referencing uw makes the dependency explicit
// so the initializer order cannot regress.
var csSealed = func() bool {
	_ = uw
	CS.Seal()
	return true
}()

func def(name string, row ucode.Row, class ucode.Class) uint16 {
	return CS.Define(name, row, class)
}

// specBank is the set of specifier-processing microwords for one dispatch
// bank. Bank 0 handles first specifiers (SPEC1), bank 1 all others
// (SPEC2-6). Mode-entry dispatch counts are the source of Table 4.
type specBank struct {
	dispatch   [vax.NumAddrModes]uint16
	stall      uint16
	immExtra   uint16 // second take cycle for 8-byte immediates
	calc       uint16 // effective-address add / autoincrement bump
	index      uint16 // index-register scaling (lives in SPEC2-6 only)
	readPtr    uint16 // indirect-pointer read of the deferred modes
	readData   uint16 // operand data read
	readData2  uint16 // second longword of a quadword operand
	writeData  uint16 // result store to memory
	writeData2 uint16
	storeReg   uint16 // result store to a register (the folded cycle the
	// paper reports in the specifier rows)
}

func defSpecBank(prefix string, row ucode.Row) specBank {
	var b specBank
	for mode := 0; mode < vax.NumAddrModes; mode++ {
		b.dispatch[mode] = def(fmt.Sprintf("%s.disp.%s", prefix, vax.AddrMode(mode)), row, ucode.ClassDispatch)
	}
	b.stall = def(prefix+".stall", row, ucode.ClassIBStall)
	b.immExtra = def(prefix+".imm.extra", row, ucode.ClassDispatch)
	b.calc = def(prefix+".calc", row, ucode.ClassCompute)
	b.index = def(prefix+".index", row, ucode.ClassCompute)
	b.readPtr = def(prefix+".read.ptr", row, ucode.ClassRead)
	b.readData = def(prefix+".read.data", row, ucode.ClassRead)
	b.readData2 = def(prefix+".read.data2", row, ucode.ClassRead)
	b.writeData = def(prefix+".write.data", row, ucode.ClassWrite)
	b.writeData2 = def(prefix+".write.data2", row, ucode.ClassWrite)
	b.storeReg = def(prefix+".store.reg", row, ucode.ClassCompute)
	return b
}

// uw holds every microword handle the engine executes. Names are the keys
// the reduction engine looks up.
var uw = struct {
	// Decode.
	ird       uint16
	irdFolded uint16
	irdStall  uint16

	// Specifier banks: [0] = SPEC1, [1] = SPEC2-6.
	spec [2]specBank

	// Branch displacement.
	bdisp      uint16
	bdispStall uint16

	// Microtrap.
	abort uint16

	// Memory management (TB miss service, alignment).
	mmTBMissEntryD uint16
	mmTBMissEntryI uint16
	mmTBMissWork   uint16
	mmTBMissRead   uint16
	mmTBMissDone   uint16
	mmAlignEntry   uint16
	mmAlignWork    uint16

	// Interrupts and exceptions.
	irqEntry uint16
	irqWork  uint16
	irqPush  uint16
	irqVec   uint16
	excEntry uint16
	excWork  uint16
	excPush  uint16
	excVec   uint16
	mcEntry  uint16
	mcWork   uint16
	mcPush   uint16
	mcVec    uint16

	// SIMPLE execute phase.
	sAluEntry   uint16
	sAluExtra   uint16
	sPushWrite  uint16
	brCondEntry uint16
	brCondTaken uint16
	brLoopEntry uint16
	brLoopTaken uint16
	brLBEntry   uint16
	brLBTaken   uint16
	brBSBEntry  uint16
	brBSBPush   uint16
	brBSBTaken  uint16
	brJSBEntry  uint16
	brJSBPush   uint16
	brJSBTaken  uint16
	brRSBEntry  uint16
	brRSBRead   uint16
	brRSBTaken  uint16
	brJMPEntry  uint16
	brJMPTaken  uint16
	brCaseEntry uint16
	brCaseWork  uint16
	brCaseRead  uint16
	brCaseTaken uint16

	// FIELD execute phase.
	fldEntry uint16
	fldWork  uint16
	fldRead  uint16
	fldWrite uint16
	bbEntry  uint16
	bbWork   uint16
	bbRead   uint16
	bbWrite  uint16
	bbTaken  uint16

	// FLOAT execute phase.
	fpEntry uint16
	fpWork  uint16
	fpWrite uint16

	// CALL/RET execute phase.
	callEntry    uint16
	callWork     uint16
	callMaskRead uint16
	callPush     uint16
	callTaken    uint16
	retEntry     uint16
	retWork      uint16
	retPop       uint16
	retTaken     uint16
	pushrEntry   uint16
	pushrWork    uint16
	pushrPush    uint16
	poprEntry    uint16
	poprWork     uint16
	poprPop      uint16

	// SYSTEM execute phase.
	chmEntry    uint16
	chmWork     uint16
	chmPush     uint16
	chmVec      uint16
	chmTaken    uint16
	reiEntry    uint16
	reiWork     uint16
	reiPop      uint16
	reiTaken    uint16
	svpctxEntry uint16
	svpctxWork  uint16
	svpctxRead  uint16
	svpctxStore uint16
	ldpctxEntry uint16
	ldpctxWork  uint16
	ldpctxLoad  uint16
	ldpctxPush  uint16
	queueEntry  uint16
	queueWork   uint16
	queueRead   uint16
	queueWrite  uint16
	probeEntry  uint16
	probeWork   uint16
	mtprEntry   uint16
	mtprWork    uint16
	mtprSIRR    uint16
	mfprEntry   uint16
	pswEntry    uint16
	haltEntry   uint16

	// CHARACTER execute phase.
	chEntry uint16
	chSetup uint16
	chRead  uint16
	chWork  uint16
	chWrite uint16
	chByte  uint16
	chDone  uint16

	// DECIMAL execute phase.
	deEntry uint16
	deSetup uint16
	deRead  uint16
	deWork  uint16
	deWrite uint16
	deDone  uint16
}{
	ird:       def("decode.ird", ucode.RowDecode, ucode.ClassDispatch),
	irdFolded: def("decode.ird.folded", ucode.RowDecode, ucode.ClassMarker),
	irdStall:  def("decode.ird.stall", ucode.RowDecode, ucode.ClassIBStall),

	spec: [2]specBank{
		defSpecBank("spec1", ucode.RowSpec1),
		defSpecBank("spec26", ucode.RowSpec26),
	},

	bdisp:      def("bdisp.calc", ucode.RowBDisp, ucode.ClassDispatch),
	bdispStall: def("bdisp.stall", ucode.RowBDisp, ucode.ClassIBStall),

	abort: def("abort.utrap", ucode.RowAbort, ucode.ClassCompute),

	mmTBMissEntryD: def("mm.tbmiss.d.entry", ucode.RowMemMgmt, ucode.ClassCompute),
	mmTBMissEntryI: def("mm.tbmiss.i.entry", ucode.RowMemMgmt, ucode.ClassCompute),
	mmTBMissWork:   def("mm.tbmiss.work", ucode.RowMemMgmt, ucode.ClassCompute),
	mmTBMissRead:   def("mm.tbmiss.read", ucode.RowMemMgmt, ucode.ClassRead),
	mmTBMissDone:   def("mm.tbmiss.done", ucode.RowMemMgmt, ucode.ClassCompute),
	mmAlignEntry:   def("mm.align.entry", ucode.RowMemMgmt, ucode.ClassCompute),
	mmAlignWork:    def("mm.align.work", ucode.RowMemMgmt, ucode.ClassCompute),

	irqEntry: def("int.irq.entry", ucode.RowIntExcept, ucode.ClassCompute),
	irqWork:  def("int.irq.work", ucode.RowIntExcept, ucode.ClassCompute),
	irqPush:  def("int.irq.push", ucode.RowIntExcept, ucode.ClassWrite),
	irqVec:   def("int.irq.vec", ucode.RowIntExcept, ucode.ClassRead),
	excEntry: def("int.exc.entry", ucode.RowIntExcept, ucode.ClassCompute),
	excWork:  def("int.exc.work", ucode.RowIntExcept, ucode.ClassCompute),
	excPush:  def("int.exc.push", ucode.RowIntExcept, ucode.ClassWrite),
	excVec:   def("int.exc.vec", ucode.RowIntExcept, ucode.ClassRead),
	mcEntry:  def("int.mcheck.entry", ucode.RowIntExcept, ucode.ClassCompute),
	mcWork:   def("int.mcheck.work", ucode.RowIntExcept, ucode.ClassCompute),
	mcPush:   def("int.mcheck.push", ucode.RowIntExcept, ucode.ClassWrite),
	mcVec:    def("int.mcheck.vec", ucode.RowIntExcept, ucode.ClassRead),

	sAluEntry:   def("exec.simple.alu.entry", ucode.RowSimple, ucode.ClassCompute),
	sAluExtra:   def("exec.simple.alu.extra", ucode.RowSimple, ucode.ClassCompute),
	sPushWrite:  def("exec.simple.push.write", ucode.RowSimple, ucode.ClassWrite),
	brCondEntry: def("exec.br.cond.entry", ucode.RowSimple, ucode.ClassCompute),
	brCondTaken: def("exec.br.cond.taken", ucode.RowSimple, ucode.ClassCompute),
	brLoopEntry: def("exec.br.loop.entry", ucode.RowSimple, ucode.ClassCompute),
	brLoopTaken: def("exec.br.loop.taken", ucode.RowSimple, ucode.ClassCompute),
	brLBEntry:   def("exec.br.lowbit.entry", ucode.RowSimple, ucode.ClassCompute),
	brLBTaken:   def("exec.br.lowbit.taken", ucode.RowSimple, ucode.ClassCompute),
	brBSBEntry:  def("exec.br.bsb.entry", ucode.RowSimple, ucode.ClassCompute),
	brBSBPush:   def("exec.br.bsb.push", ucode.RowSimple, ucode.ClassWrite),
	brBSBTaken:  def("exec.br.bsb.taken", ucode.RowSimple, ucode.ClassCompute),
	brJSBEntry:  def("exec.br.jsb.entry", ucode.RowSimple, ucode.ClassCompute),
	brJSBPush:   def("exec.br.jsb.push", ucode.RowSimple, ucode.ClassWrite),
	brJSBTaken:  def("exec.br.jsb.taken", ucode.RowSimple, ucode.ClassCompute),
	brRSBEntry:  def("exec.br.rsb.entry", ucode.RowSimple, ucode.ClassCompute),
	brRSBRead:   def("exec.br.rsb.read", ucode.RowSimple, ucode.ClassRead),
	brRSBTaken:  def("exec.br.rsb.taken", ucode.RowSimple, ucode.ClassCompute),
	brJMPEntry:  def("exec.br.jmp.entry", ucode.RowSimple, ucode.ClassCompute),
	brJMPTaken:  def("exec.br.jmp.taken", ucode.RowSimple, ucode.ClassCompute),
	brCaseEntry: def("exec.br.case.entry", ucode.RowSimple, ucode.ClassCompute),
	brCaseWork:  def("exec.br.case.work", ucode.RowSimple, ucode.ClassCompute),
	brCaseRead:  def("exec.br.case.read", ucode.RowSimple, ucode.ClassRead),
	brCaseTaken: def("exec.br.case.taken", ucode.RowSimple, ucode.ClassCompute),

	fldEntry: def("exec.field.entry", ucode.RowField, ucode.ClassCompute),
	fldWork:  def("exec.field.work", ucode.RowField, ucode.ClassCompute),
	fldRead:  def("exec.field.read", ucode.RowField, ucode.ClassRead),
	fldWrite: def("exec.field.write", ucode.RowField, ucode.ClassWrite),
	bbEntry:  def("exec.bb.entry", ucode.RowField, ucode.ClassCompute),
	bbWork:   def("exec.bb.work", ucode.RowField, ucode.ClassCompute),
	bbRead:   def("exec.bb.read", ucode.RowField, ucode.ClassRead),
	bbWrite:  def("exec.bb.write", ucode.RowField, ucode.ClassWrite),
	bbTaken:  def("exec.bb.taken", ucode.RowField, ucode.ClassCompute),

	fpEntry: def("exec.float.entry", ucode.RowFloat, ucode.ClassCompute),
	fpWork:  def("exec.float.work", ucode.RowFloat, ucode.ClassCompute),
	fpWrite: def("exec.float.write", ucode.RowFloat, ucode.ClassWrite),

	callEntry:    def("exec.call.entry", ucode.RowCallRet, ucode.ClassCompute),
	callWork:     def("exec.call.work", ucode.RowCallRet, ucode.ClassCompute),
	callMaskRead: def("exec.call.maskread", ucode.RowCallRet, ucode.ClassRead),
	callPush:     def("exec.call.push", ucode.RowCallRet, ucode.ClassWrite),
	callTaken:    def("exec.call.taken", ucode.RowCallRet, ucode.ClassCompute),
	retEntry:     def("exec.ret.entry", ucode.RowCallRet, ucode.ClassCompute),
	retWork:      def("exec.ret.work", ucode.RowCallRet, ucode.ClassCompute),
	retPop:       def("exec.ret.pop", ucode.RowCallRet, ucode.ClassRead),
	retTaken:     def("exec.ret.taken", ucode.RowCallRet, ucode.ClassCompute),
	pushrEntry:   def("exec.pushr.entry", ucode.RowCallRet, ucode.ClassCompute),
	pushrWork:    def("exec.pushr.work", ucode.RowCallRet, ucode.ClassCompute),
	pushrPush:    def("exec.pushr.push", ucode.RowCallRet, ucode.ClassWrite),
	poprEntry:    def("exec.popr.entry", ucode.RowCallRet, ucode.ClassCompute),
	poprWork:     def("exec.popr.work", ucode.RowCallRet, ucode.ClassCompute),
	poprPop:      def("exec.popr.pop", ucode.RowCallRet, ucode.ClassRead),

	chmEntry:    def("exec.sys.chm.entry", ucode.RowSystem, ucode.ClassCompute),
	chmWork:     def("exec.sys.chm.work", ucode.RowSystem, ucode.ClassCompute),
	chmPush:     def("exec.sys.chm.push", ucode.RowSystem, ucode.ClassWrite),
	chmVec:      def("exec.sys.chm.vec", ucode.RowSystem, ucode.ClassRead),
	chmTaken:    def("exec.sys.chm.taken", ucode.RowSystem, ucode.ClassCompute),
	reiEntry:    def("exec.sys.rei.entry", ucode.RowSystem, ucode.ClassCompute),
	reiWork:     def("exec.sys.rei.work", ucode.RowSystem, ucode.ClassCompute),
	reiPop:      def("exec.sys.rei.pop", ucode.RowSystem, ucode.ClassRead),
	reiTaken:    def("exec.sys.rei.taken", ucode.RowSystem, ucode.ClassCompute),
	svpctxEntry: def("exec.sys.svpctx.entry", ucode.RowSystem, ucode.ClassCompute),
	svpctxWork:  def("exec.sys.svpctx.work", ucode.RowSystem, ucode.ClassCompute),
	svpctxRead:  def("exec.sys.svpctx.read", ucode.RowSystem, ucode.ClassRead),
	svpctxStore: def("exec.sys.svpctx.store", ucode.RowSystem, ucode.ClassWrite),
	ldpctxEntry: def("exec.sys.ldpctx.entry", ucode.RowSystem, ucode.ClassCompute),
	ldpctxWork:  def("exec.sys.ldpctx.work", ucode.RowSystem, ucode.ClassCompute),
	ldpctxLoad:  def("exec.sys.ldpctx.load", ucode.RowSystem, ucode.ClassRead),
	ldpctxPush:  def("exec.sys.ldpctx.push", ucode.RowSystem, ucode.ClassWrite),
	queueEntry:  def("exec.sys.queue.entry", ucode.RowSystem, ucode.ClassCompute),
	queueWork:   def("exec.sys.queue.work", ucode.RowSystem, ucode.ClassCompute),
	queueRead:   def("exec.sys.queue.read", ucode.RowSystem, ucode.ClassRead),
	queueWrite:  def("exec.sys.queue.write", ucode.RowSystem, ucode.ClassWrite),
	probeEntry:  def("exec.sys.probe.entry", ucode.RowSystem, ucode.ClassCompute),
	probeWork:   def("exec.sys.probe.work", ucode.RowSystem, ucode.ClassCompute),
	mtprEntry:   def("exec.sys.mtpr.entry", ucode.RowSystem, ucode.ClassCompute),
	mtprWork:    def("exec.sys.mtpr.work", ucode.RowSystem, ucode.ClassCompute),
	mtprSIRR:    def("exec.sys.mtpr.sirr", ucode.RowSystem, ucode.ClassCompute),
	mfprEntry:   def("exec.sys.mfpr.entry", ucode.RowSystem, ucode.ClassCompute),
	pswEntry:    def("exec.sys.psw.entry", ucode.RowSystem, ucode.ClassCompute),
	haltEntry:   def("exec.sys.halt.entry", ucode.RowSystem, ucode.ClassCompute),

	chEntry: def("exec.char.entry", ucode.RowCharacter, ucode.ClassCompute),
	chSetup: def("exec.char.setup", ucode.RowCharacter, ucode.ClassCompute),
	chRead:  def("exec.char.read", ucode.RowCharacter, ucode.ClassRead),
	chWork:  def("exec.char.work", ucode.RowCharacter, ucode.ClassCompute),
	chWrite: def("exec.char.write", ucode.RowCharacter, ucode.ClassWrite),
	chByte:  def("exec.char.byte", ucode.RowCharacter, ucode.ClassCompute),
	chDone:  def("exec.char.done", ucode.RowCharacter, ucode.ClassCompute),

	deEntry: def("exec.dec.entry", ucode.RowDecimal, ucode.ClassCompute),
	deSetup: def("exec.dec.setup", ucode.RowDecimal, ucode.ClassCompute),
	deRead:  def("exec.dec.read", ucode.RowDecimal, ucode.ClassRead),
	deWork:  def("exec.dec.work", ucode.RowDecimal, ucode.ClassCompute),
	deWrite: def("exec.dec.write", ucode.RowDecimal, ucode.ClassWrite),
	deDone:  def("exec.dec.done", ucode.RowDecimal, ucode.ClassCompute),
}
