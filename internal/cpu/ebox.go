package cpu

import (
	"vax780/internal/cache"
	"vax780/internal/mmu"
	"vax780/internal/tb"
)

// ---------------------------------------------------------------------------
// Functional (untimed) virtual memory access. The timing model books cache
// and bus activity separately; data always comes from the memory array,
// which write-through keeps current. Translation here uses the reference
// page-table walk, independent of TB state.

func (m *Machine) readVirtByte(va uint32) byte {
	pa, err := mmu.Translate(va, &m.MMU, m.Mem)
	if err != nil {
		m.fail("functional read at %#x: %v", va, err)
		return 0
	}
	return m.Mem.Byte(pa)
}

func (m *Machine) readVirt(va uint32, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.readVirtByte(va+uint32(i))) << (8 * i)
	}
	return v
}

func (m *Machine) writeVirt(va uint32, size int, v uint64) {
	for i := 0; i < size; i++ {
		pa, err := mmu.Translate(va+uint32(i), &m.MMU, m.Mem)
		if err != nil {
			m.fail("functional write at %#x: %v", va, err)
			return
		}
		m.Mem.SetByte(pa, byte(v>>(8*i)))
	}
}

// ---------------------------------------------------------------------------
// Timed data-stream access. Each call accounts the cycles of exactly one
// read- or write-class microinstruction (plus any stall), and services TB
// misses through the microcode trap routine first.

// aborted reports whether the current instruction can make no further
// progress: the machine stopped, or an exception redirected control.
func (m *Machine) aborted() bool {
	return m.halted || m.runErr != nil || m.instAborted
}

// xlate translates a D-stream virtual address through the TB, running the
// TB-miss microtrap when needed. The loop is bounded but more than one
// round: an injected TB parity error can invalidate the very entry the
// miss routine just inserted, which on the real machine simply means the
// microtrap fires again.
func (m *Machine) xlate(va uint32) uint32 {
	if !m.MMU.Enabled {
		return va
	}
	const maxTries = 4
	for try := 0; try < maxTries; try++ {
		if pa, hit := m.TLB.Lookup(va, tb.DStream); hit {
			return pa
		}
		m.tbMissService(va, tb.DStream)
		if m.aborted() {
			return 0
		}
	}
	m.fail("TB fill did not take at %#x after %d tries", va, maxTries)
	return 0
}

// dread performs a D-stream read of size bytes (1..4) at the read-class
// microword w. Unaligned references crossing a longword boundary make two
// physical references and run the alignment microcode (counted under
// Mem Mgmt, as in Table 8).
func (m *Machine) dread(w uint16, va uint32, size int) uint64 {
	m.ib.advance(m.cycle)
	crosses := int(va&3)+size > 4
	if crosses {
		m.unalignedOverhead()
	}
	pa := m.xlate(va)
	if m.aborted() {
		return 0
	}
	m.cacheReadRef(w, pa)
	if crosses {
		pa2 := m.xlate((va &^ 3) + 4)
		if m.aborted() {
			return 0
		}
		m.cacheReadRef(w, pa2)
	}
	return m.readVirt(va, size)
}

// cacheReadRef accounts one longword read reference at microword w.
func (m *Machine) cacheReadRef(w uint16, pa uint32) {
	if !m.Cache.Read(pa&^3, cache.DStream) {
		done := m.SBI.Read(m.cycle)
		if done > m.cycle {
			m.stall(w, done-m.cycle)
		}
	}
	m.tick(w)
}

// dwrite performs a D-stream write at the write-class microword w. The
// EBOX spends one cycle initiating the write and stalls only if the write
// buffer still holds the previous write (§2.1).
func (m *Machine) dwrite(w uint16, va uint32, size int, val uint64) {
	m.ib.advance(m.cycle)
	crosses := int(va&3)+size > 4
	if crosses {
		m.unalignedOverhead()
	}
	pa := m.xlate(va)
	if m.aborted() {
		return
	}
	m.cacheWriteRef(w, pa)
	if crosses {
		pa2 := m.xlate((va &^ 3) + 4)
		if m.aborted() {
			return
		}
		m.cacheWriteRef(w, pa2)
	}
	m.writeVirt(va, size, val)
}

func (m *Machine) cacheWriteRef(w uint16, pa uint32) {
	if st := m.WB.Write(m.cycle); st > 0 {
		m.stall(w, st)
	}
	m.Cache.Write(pa &^ 3)
	m.tick(w)
}

// readPhys performs a timed physical read (used by the TB-miss routine for
// page-table entries; its stall cycles are the Mem Mgmt read stalls the
// paper highlights).
func (m *Machine) readPhys(w uint16, pa uint32) uint32 {
	if !m.Cache.Read(pa&^3, cache.DStream) {
		done := m.SBI.Read(m.cycle)
		if done > m.cycle {
			m.stall(w, done-m.cycle)
		}
	}
	m.tick(w)
	return m.Mem.ReadLong(pa)
}

// unalignedOverhead runs the alignment microcode (Mem Mgmt row).
func (m *Machine) unalignedOverhead() {
	m.tick(uw.mmAlignEntry)
	m.tick(uw.mmAlignWork)
	m.unaligned++
}

// ---------------------------------------------------------------------------
// TB miss service: a microcode trap. One Abort cycle (the trap itself),
// then the miss routine walks the page table with real timed reads and
// inserts the translation. Average cost lands near the paper's 21.6 cycles
// (§4.2), with the PTE read contributing read-stall inside Mem Mgmt.

func (m *Machine) tbMissService(va uint32, st tb.Stream) {
	m.tick(uw.abort) // microtrap: one abort cycle
	entry := uw.mmTBMissEntryD
	if st == tb.IStream {
		entry = uw.mmTBMissEntryI
	}
	m.tick(entry)
	// Set-up and probe microcode before touching the page table.
	m.ticks(uw.mmTBMissWork, 6)
	ref, err := m.MMU.PTEAddr(va)
	if err != nil {
		m.memMgmtFault(va, err)
		return
	}
	pteAddr := ref.Addr
	if !ref.IsPhys {
		// The process PTE lives in system space: translate its address,
		// possibly through the TB, possibly via a nested system-table walk.
		m.ticks(uw.mmTBMissWork, 2)
		if pa, hit := m.TLB.Lookup(pteAddr, st); hit {
			pteAddr = pa
		} else {
			sysRef, err := m.MMU.PTEAddr(pteAddr)
			if err != nil {
				m.memMgmtFault(va, err)
				return
			}
			m.ticks(uw.mmTBMissWork, 3)
			sysPTE := m.readPhys(uw.mmTBMissRead, sysRef.Addr)
			if !mmu.Valid(sysPTE) {
				m.pageFault(pteAddr)
				return
			}
			m.TLB.Insert(pteAddr, mmu.PFN(sysPTE))
			pteAddr = mmu.PFN(sysPTE)<<mmu.PageShift | pteAddr&mmu.PageMask
		}
	}
	pte := m.readPhys(uw.mmTBMissRead, pteAddr)
	m.ticks(uw.mmTBMissWork, 8)
	if !mmu.Valid(pte) {
		m.pageFault(va)
		return
	}
	m.TLB.Insert(va, mmu.PFN(pte))
	m.tick(uw.mmTBMissDone)
	if m.ib.tbMissPending && m.ib.tbMissVA == va {
		m.ib.tbMissPending = false
	}
}

// ---------------------------------------------------------------------------
// Instruction-buffer interaction: each take is a dispatch microinstruction
// that needs n bytes; waiting for bytes burns cycles at the dedicated
// IB-stall location stallW.

// ibWait blocks until the IB holds n bytes, servicing I-stream TB misses.
func (m *Machine) ibWait(n int, stallW uint16) {
	const guard = 1 << 20
	for i := 0; ; i++ {
		if m.halted || m.runErr != nil {
			return
		}
		m.ib.advance(m.cycle)
		if m.ib.valid >= n {
			return
		}
		if m.ib.tbMissPending {
			m.tbMissService(m.ib.tbMissVA, tb.IStream)
			continue
		}
		m.ibStallTick(stallW)
		if i > guard {
			m.fail("IB wait for %d bytes did not complete at pc %#x", n, m.ib.ptr)
			return
		}
	}
}

// take consumes n I-stream bytes with a one-cycle dispatch at w. The
// result aliases the IB scratch buffer (see ibox.peek).
func (m *Machine) take(w, stallW uint16, n int) []byte {
	m.ibWait(n, stallW)
	if m.runErr != nil {
		return m.ib.zeroed(n)
	}
	b := m.ib.consume(n)
	m.tick(w)
	return b
}

// takeExtra consumes n further bytes that arrive with the same dispatch
// (no additional cycle, but the wait can still IB-stall). The result
// aliases the IB scratch buffer (see ibox.peek).
func (m *Machine) takeExtra(stallW uint16, n int) []byte {
	m.ibWait(n, stallW)
	if m.runErr != nil {
		return m.ib.zeroed(n)
	}
	return m.ib.consume(n)
}
