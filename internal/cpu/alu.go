package cpu

import (
	"math"

	"vax780/internal/vax"
)

// Condition-code helpers. The model keeps the architectural N, Z, V, C
// semantics for the integer operations the workloads rely on.

func (m *Machine) setCC(n, z, v, c bool) {
	psl := m.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	if n {
		psl |= vax.PSLN
	}
	if z {
		psl |= vax.PSLZ
	}
	if v {
		psl |= vax.PSLV
	}
	if c {
		psl |= vax.PSLC
	}
	m.PSL = psl
}

// ccNZ sets N and Z from a result of the given size, clearing V (the move
// and logical instructions' behaviour); C is preserved.
func (m *Machine) ccNZ(val uint64, sz int) {
	val &= sizeMask(sz)
	n := val&(1<<(8*uint(sz)-1)) != 0
	c := m.PSL&vax.PSLC != 0
	m.setCC(n, val == 0, false, c)
}

// ccAdd sets condition codes for a+b=r at the given size.
func (m *Machine) ccAdd(a, b, r uint64, sz int) {
	mask := sizeMask(sz)
	sign := uint64(1) << (8*uint(sz) - 1)
	a, b, r = a&mask, b&mask, r&mask
	n := r&sign != 0
	v := (a&sign == b&sign) && (r&sign != a&sign)
	c := r < a || r < b
	m.setCC(n, r == 0, v, c)
}

// ccSub sets condition codes for a-b=r (VAX SUB: C = borrow).
func (m *Machine) ccSub(a, b, r uint64, sz int) {
	mask := sizeMask(sz)
	sign := uint64(1) << (8*uint(sz) - 1)
	a, b, r = a&mask, b&mask, r&mask
	n := r&sign != 0
	v := (a&sign != b&sign) && (r&sign == b&sign)
	m.setCC(n, r == 0, v, a < b)
}

// ccCmp sets condition codes for CMP a,b (signed N, unsigned C).
func (m *Machine) ccCmp(a, b uint64, sz int) {
	sa := signExtend(a, sz)
	sb := signExtend(b, sz)
	n := sa < sb
	z := a&sizeMask(sz) == b&sizeMask(sz)
	c := a&sizeMask(sz) < b&sizeMask(sz)
	m.setCC(n, z, false, c)
}

func signExtend(v uint64, sz int) int64 {
	shift := 64 - 8*uint(sz)
	return int64(v<<shift) >> shift
}

// branchCond evaluates a conditional branch opcode against the PSL.
func (m *Machine) branchCond(op vax.Opcode) bool {
	n := m.PSL&vax.PSLN != 0
	z := m.PSL&vax.PSLZ != 0
	v := m.PSL&vax.PSLV != 0
	c := m.PSL&vax.PSLC != 0
	switch op {
	case vax.BRB, vax.BRW:
		return true
	case vax.BNEQ:
		return !z
	case vax.BEQL:
		return z
	case vax.BGTR:
		return !(n || z)
	case vax.BLEQ:
		return n || z
	case vax.BGEQ:
		return !n
	case vax.BLSS:
		return n
	case vax.BGTRU:
		return !(c || z)
	case vax.BLEQU:
		return c || z
	case vax.BVC:
		return !v
	case vax.BVS:
		return v
	case vax.BCC:
		return !c
	case vax.BCS:
		return c
	}
	return false
}

// Floating-point value encoding. The model stores F_floating as IEEE
// float32 bits and D_floating as IEEE float64 bits (little-endian), a
// documented substitution: the paper's measurements depend on operation
// counts and cycle costs, not on the VAX exponent bias or byte-swizzle.

func f32of(bits uint64) float64 { return float64(math.Float32frombits(uint32(bits))) }
func f32bits(v float64) uint64  { return uint64(math.Float32bits(float32(v))) }
func f64of(bits uint64) float64 { return math.Float64frombits(bits) }
func f64bits(v float64) uint64  { return math.Float64bits(v) }

// fval decodes a floating operand per data type.
func fval(bits uint64, t vax.DataType) float64 {
	if t == vax.TypeFloatD {
		return f64of(bits)
	}
	return f32of(bits)
}

// fbits encodes a floating result per data type.
func fbits(v float64, t vax.DataType) uint64 {
	if t == vax.TypeFloatD {
		return f64bits(v)
	}
	return f32bits(v)
}

// ccFloat sets N and Z from a floating result.
func (m *Machine) ccFloat(v float64) {
	m.setCC(v < 0, v == 0, false, false)
}
