package cpu

import (
	"fmt"
	"strings"

	"vax780/internal/cache"
	"vax780/internal/mem"
	"vax780/internal/mmu"
	"vax780/internal/tb"
	"vax780/internal/vax"
)

// Checkpoint support: the complete run state of a machine, exportable at
// an instruction boundary and importable into a machine built with the
// same Config. The snapshot deliberately excludes:
//
//   - configuration (the resume path rebuilds the machine from the
//     checkpoint's recorded Config before importing);
//   - attachments — probe, fault plane, OnInstruction — which the resume
//     path re-attaches;
//   - per-instruction transients (decoded operands, the current OpInfo),
//     which are dead at the boundary where checkpoints are taken;
//   - the sticky error state: a stopped machine cannot be checkpointed.
//
// The completeness test in internal/checkpoint walks Machine's fields
// against this struct and an explicit exemption table, so a new field
// cannot be silently dropped from the snapshot.

// IBState is the serialized state of the I-Fetch unit.
type IBState struct {
	Ptr           uint32
	Valid         int
	FillPending   bool
	FillDone      uint64
	FillBytes     int
	TBMissPending bool
	TBMissVA      uint32
	Advanced      uint64
	Stats         IBStats
}

// State is the complete serialized run state of a Machine.
type State struct {
	// Architectural state.
	R   [16]uint32
	PSL uint32
	IPR [iprCount]uint32
	MMU mmu.Registers

	// Microarchitectural state.
	IB           IBState
	Cycle        uint64
	Instret      uint64
	UPC          uint16
	Gate         bool
	IRQs         []IRQ
	NextIRQ      int
	LastPCChange bool
	PatchCtr     int
	WDLastRetire uint64

	// Machine-check latch.
	MCPending bool
	MCActive  bool
	MCCause   MCCause
	MCInfo    uint32

	// Hardware event counters.
	HW HWCounters

	// Memory subsystem.
	Mem   mem.MemoryState
	SBI   mem.SBIState
	WB    mem.WriteBufferState
	Cache cache.State
	TB    tb.State
}

// ExportState captures the machine's complete run state. It must be
// called at an instruction boundary (between Run/StepInstruction calls)
// on a machine that is still running: a halted or failed machine has no
// resumable state and is refused.
func (m *Machine) ExportState() (State, error) {
	if m.runErr != nil {
		return State{}, fmt.Errorf("cpu: cannot checkpoint a failed machine: %w", m.runErr)
	}
	if m.halted {
		return State{}, fmt.Errorf("cpu: cannot checkpoint a halted machine (%v)", m.haltReason)
	}
	st := State{
		R:   m.R,
		PSL: m.PSL,
		IPR: m.ipr,
		MMU: m.MMU,
		IB: IBState{
			Ptr:           m.ib.ptr,
			Valid:         m.ib.valid,
			FillPending:   m.ib.fillPending,
			FillDone:      m.ib.fillDone,
			FillBytes:     m.ib.fillBytes,
			TBMissPending: m.ib.tbMissPending,
			TBMissVA:      m.ib.tbMissVA,
			Advanced:      m.ib.advanced,
			Stats:         m.ib.stats,
		},
		Cycle:        m.cycle,
		Instret:      m.instret,
		UPC:          m.upc,
		Gate:         m.gate,
		IRQs:         append([]IRQ(nil), m.irqs...),
		NextIRQ:      m.nextIRQ,
		LastPCChange: m.lastPCChange,
		PatchCtr:     m.patchCtr,
		WDLastRetire: m.wdLastRetire,
		MCPending:    m.mcPending,
		MCActive:     m.mcActive,
		MCCause:      m.pendMC.cause,
		MCInfo:       m.pendMC.info,
		HW:           m.HW(),
		Mem:          m.Mem.ExportState(),
		SBI:          m.SBI.ExportState(),
		WB:           m.WB.ExportState(),
		Cache:        m.Cache.ExportState(),
		TB:           m.TLB.ExportState(),
	}
	return st, nil
}

// ImportState restores a captured state into a machine built with the
// same Config as the one the state was exported from. Attachments
// (probe, fault plane, OnInstruction) are untouched; re-attach them
// before or after importing as needed.
func (m *Machine) ImportState(st State) error {
	if err := m.Mem.ImportState(st.Mem); err != nil {
		return err
	}
	if err := m.WB.ImportState(st.WB); err != nil {
		return err
	}
	if err := m.Cache.ImportState(st.Cache); err != nil {
		return err
	}
	m.SBI.ImportState(st.SBI)
	m.TLB.ImportState(st.TB)

	m.R = st.R
	m.PSL = st.PSL
	m.ipr = st.IPR
	m.MMU = st.MMU
	m.ib.ptr = st.IB.Ptr
	m.ib.valid = st.IB.Valid
	m.ib.fillPending = st.IB.FillPending
	m.ib.fillDone = st.IB.FillDone
	m.ib.fillBytes = st.IB.FillBytes
	m.ib.tbMissPending = st.IB.TBMissPending
	m.ib.tbMissVA = st.IB.TBMissVA
	m.ib.advanced = st.IB.Advanced
	m.ib.stats = st.IB.Stats
	m.cycle = st.Cycle
	m.instret = st.Instret
	m.upc = st.UPC
	m.gate = st.Gate
	m.irqs = append([]IRQ(nil), st.IRQs...)
	m.nextIRQ = st.NextIRQ
	m.lastPCChange = st.LastPCChange
	m.patchCtr = st.PatchCtr
	m.wdLastRetire = st.WDLastRetire
	m.pendMC = pendingMC{cause: st.MCCause, info: st.MCInfo}
	m.mcPending = st.MCPending
	m.mcActive = st.MCActive
	m.unaligned = st.HW.Unaligned
	m.sirrRequests = st.HW.SIRRRequests
	m.irqDelivered = st.HW.Interrupts
	m.exceptions = st.HW.Exceptions
	m.ctxSwitches = st.HW.CtxSwitches
	m.machineChecks = st.HW.MachineChecks
	m.mcLost = st.HW.MachineChecksLost
	m.mcByCause = st.HW.MachineChecksByCause

	// A snapshot is only taken from a running machine.
	m.halted = false
	m.haltReason = HaltNone
	m.runErr = nil
	m.inExc = false
	m.instAborted = false
	return nil
}

// StateDump renders a diagnostic summary of the machine — registers,
// PSL, µPC, cycle counts and pending machine-check state — for
// watchdog reports and post-mortem messages.
func (m *Machine) StateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "µpc=%#04x cycle=%d instret=%d pc=%#08x psl=%#08x mode=%d ipl=%d\n",
		m.upc, m.cycle, m.instret, m.ib.cur(), m.PSL, m.CurrentMode(), m.PSL>>16&0x1F)
	for i := 0; i < 16; i += 4 {
		for j := i; j < i+4; j++ {
			fmt.Fprintf(&b, "  %-3s=%#08x", vax.Reg(j).String(), m.R[j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  ib: ptr=%#08x valid=%d fill=%v tbmiss=%v",
		m.ib.ptr, m.ib.valid, m.ib.fillPending, m.ib.tbMissPending)
	if m.mcPending || m.mcActive {
		fmt.Fprintf(&b, "\n  mcheck: pending=%v active=%v cause=%v info=%#x",
			m.mcPending, m.mcActive, m.pendMC.cause, m.pendMC.info)
	}
	return b.String()
}
