package cpu

import (
	"fmt"
	"strings"

	"vax780/internal/cache"
	"vax780/internal/tb"
)

// StatsReport renders every hardware counter the machine keeps — the
// console operator's view, complementing the monitor's microcode view.
// Rates are per machine instruction (which, unlike the monitor's counts,
// include any gated-off periods such as the null process).
func (m *Machine) StatsReport() string {
	var sb strings.Builder
	instr := float64(m.Instructions())
	if instr == 0 {
		instr = 1
	}
	per := func(n uint64) float64 { return float64(n) / instr }

	fmt.Fprintf(&sb, "machine: %d cycles, %d instructions (%.3f CPI), %.3f simulated ms\n",
		m.Cycle(), m.Instructions(),
		float64(m.Cycle())/instr,
		float64(m.Cycle())*CycleNanoseconds/1e6)

	cs := m.Cache.Stats()
	fmt.Fprintf(&sb, "cache:   I-stream %.4f miss ratio (%d/%d), D-stream %.4f (%d/%d)\n",
		cs.MissRatio(cache.IStream), cs.ReadMisses[cache.IStream], cs.Reads(cache.IStream),
		cs.MissRatio(cache.DStream), cs.ReadMisses[cache.DStream], cs.Reads(cache.DStream))
	fmt.Fprintf(&sb, "         writes %d hit / %d miss (write-through, no allocate), %d flushes\n",
		cs.WriteHits, cs.WriteMisses, cs.Flushes)

	ts := m.TLB.Stats()
	fmt.Fprintf(&sb, "tb:      %.5f misses/instr (I %.5f, D %.5f), %d process flushes, %d full\n",
		per(ts.Misses[tb.IStream]+ts.Misses[tb.DStream]),
		per(ts.Misses[tb.IStream]), per(ts.Misses[tb.DStream]),
		ts.ProcessFlushes, ts.FullFlushes)

	ss := m.SBI.Stats()
	util := 0.0
	if m.Cycle() > 0 {
		util = float64(ss.BusyCycles) / float64(m.Cycle())
	}
	fmt.Fprintf(&sb, "sbi:     %d reads, %d writes, %.1f%% utilization\n",
		ss.Reads, ss.Writes, 100*util)

	ws := m.WB.Stats()
	fmt.Fprintf(&sb, "wbuf:    %d writes, %d stalled (%d cycles lost)\n",
		ws.Writes, ws.Stalls, ws.StallCycles)

	ib := m.IBStats()
	fmt.Fprintf(&sb, "ib:      %.2f refs/instr, %.2f bytes consumed/instr, %d redirects, %d I-TB misses\n",
		per(ib.CacheRefs), per(ib.BytesConsumed), ib.Redirects, ib.TBMisses)

	hw := m.HW()
	fmt.Fprintf(&sb, "events:  %d interrupts, %d SIRR requests, %d exceptions, %d context switches, %d unaligned\n",
		hw.Interrupts, hw.SIRRRequests, hw.Exceptions, hw.CtxSwitches, hw.Unaligned)

	if hw.MachineChecks > 0 || hw.MachineChecksLost > 0 {
		fmt.Fprintf(&sb, "mcheck:  %d delivered, %d lost", hw.MachineChecks, hw.MachineChecksLost)
		sep := " ("
		for c := MCCause(0); c < NumMCCauses; c++ {
			if n := hw.MachineChecksByCause[c]; n > 0 {
				fmt.Fprintf(&sb, "%s%s %d", sep, c, n)
				sep = ", "
			}
		}
		if sep == ", " {
			sb.WriteString(")")
		}
		fmt.Fprintf(&sb, "\nfaults:  %d cache parity, %d tb parity, %d sbi timeouts\n",
			cs.ParityErrors, ts.ParityErrors, ss.Timeouts)
	}
	return sb.String()
}
