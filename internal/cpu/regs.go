package cpu

// Architectural internal-processor-register numbers (the MTPR/MFPR
// namespace), following the VAX Architecture Reference Manual.
const (
	PRKSP   = 0  // kernel stack pointer
	PRESP   = 1  // executive stack pointer
	PRSSP   = 2  // supervisor stack pointer
	PRUSP   = 3  // user stack pointer
	PRISP   = 4  // interrupt stack pointer
	PRP0BR  = 8  // P0 base register
	PRP0LR  = 9  // P0 length register
	PRP1BR  = 10 // P1 base register
	PRP1LR  = 11 // P1 length register
	PRSBR   = 12 // system base register
	PRSLR   = 13 // system length register
	PRPCBB  = 16 // process control block base (physical)
	PRSCBB  = 17 // system control block base (physical)
	PRIPL   = 18 // interrupt priority level
	PRASTLV = 19 // AST level
	PRSIRR  = 20 // software interrupt request (write only)
	PRSISR  = 21 // software interrupt summary
	PRICCS  = 24 // interval clock control/status
	PRNICR  = 25 // next interval count
	PRMAPEN = 56 // memory management enable
	PRTBIA  = 57 // TB invalidate all
	PRTBIS  = 58 // TB invalidate single
)

// Storage slots for the internal registers the model keeps.
const (
	IPRSlotKSP = iota // kernel, exec, super, user SPs occupy 4 consecutive slots
	IPRSlotESP
	IPRSlotSSP
	IPRSlotUSP
	IPRSlotISP
	IPRSlotPCBB
	IPRSlotSCBB
	IPRSlotSISR
	IPRSlotASTLV
	IPRSlotICCS
	IPRSlotNICR
	iprCount
)

// SCB vector offsets (bytes from SCBB). A subset of the architectural
// system control block layout.
const (
	SCBMachineChk   = 0x04
	SCBArithTrap    = 0x34 // arithmetic trap (integer overflow, IV enabled)
	SCBAccessViol   = 0x20 // length violation / access control
	SCBTransInval   = 0x24 // translation not valid (page fault)
	SCBReservedOp   = 0x10 // reserved/privileged instruction
	SCBReservedAddr = 0x1C // reserved addressing mode (malformed specifier)
	SCBCHMK         = 0x40
	SCBCHME         = 0x44
	SCBSoftBase     = 0x80 // software interrupt level n vectors at 0x80+4n
	SCBClock        = 0xC0 // interval timer, IPL 24
	SCBTerminal     = 0xF8 // terminal controller, IPL 20 (model device)
	SCBDiskDevice   = 0xF4 // disk controller, IPL 21 (model device)
)

// InterruptPriority levels used by the model's devices.
const (
	IPLSoftMax  = 15
	IPLTerminal = 20
	IPLDisk     = 21
	IPLClock    = 24
)

// IPR reads an internal processor register slot (console access; the timed
// path is the MFPR instruction).
func (m *Machine) IPR(slot int) uint32 { return m.ipr[slot] }

// SetIPR writes an internal processor register slot (console access).
func (m *Machine) SetIPR(slot int, v uint32) { m.ipr[slot] = v }

// prRead implements MFPR semantics for the registers the model keeps.
func (m *Machine) prRead(n uint32) uint32 {
	switch n {
	case PRKSP, PRESP, PRSSP, PRUSP:
		if m.CurrentMode() == n { // current mode's SP lives in R14
			return m.R[14]
		}
		return m.ipr[IPRSlotKSP+int(n)]
	case PRISP:
		return m.ipr[IPRSlotISP]
	case PRP0BR:
		return m.MMU.P0BR
	case PRP0LR:
		return m.MMU.P0LR
	case PRP1BR:
		return m.MMU.P1BR
	case PRP1LR:
		return m.MMU.P1LR
	case PRSBR:
		return m.MMU.SBR
	case PRSLR:
		return m.MMU.SLR
	case PRPCBB:
		return m.ipr[IPRSlotPCBB]
	case PRSCBB:
		return m.ipr[IPRSlotSCBB]
	case PRIPL:
		return m.PSL >> 16 & 0x1F
	case PRSISR:
		return m.ipr[IPRSlotSISR]
	case PRASTLV:
		return m.ipr[IPRSlotASTLV]
	case PRICCS:
		return m.ipr[IPRSlotICCS]
	case PRNICR:
		return m.ipr[IPRSlotNICR]
	case PRMAPEN:
		if m.MMU.Enabled {
			return 1
		}
		return 0
	}
	return 0
}

// prWrite implements MTPR semantics.
func (m *Machine) prWrite(n, v uint32) {
	switch n {
	case PRKSP, PRESP, PRSSP, PRUSP:
		if m.CurrentMode() == n {
			m.R[14] = v
		} else {
			m.ipr[IPRSlotKSP+int(n)] = v
		}
	case PRISP:
		m.ipr[IPRSlotISP] = v
	case PRP0BR:
		m.MMU.P0BR = v
	case PRP0LR:
		m.MMU.P0LR = v
	case PRP1BR:
		m.MMU.P1BR = v
	case PRP1LR:
		m.MMU.P1LR = v
	case PRSBR:
		m.MMU.SBR = v
	case PRSLR:
		m.MMU.SLR = v
	case PRPCBB:
		m.ipr[IPRSlotPCBB] = v
	case PRSCBB:
		m.ipr[IPRSlotSCBB] = v
	case PRIPL:
		m.PSL = m.PSL&^(0x1F<<16) | (v&0x1F)<<16
	case PRSIRR:
		// Request software interrupt at level v (1..15).
		if v >= 1 && v <= IPLSoftMax {
			m.ipr[IPRSlotSISR] |= 1 << v
			m.sirrRequests++
		}
	case PRSISR:
		m.ipr[IPRSlotSISR] = v & 0xFFFE
	case PRASTLV:
		m.ipr[IPRSlotASTLV] = v
	case PRICCS:
		m.ipr[IPRSlotICCS] = v
	case PRNICR:
		m.ipr[IPRSlotNICR] = v
	case PRMAPEN:
		m.MMU.Enabled = v&1 != 0
	case PRTBIA:
		m.TLB.FlushAll()
	case PRTBIS:
		m.TLB.Invalidate(v)
	}
}
