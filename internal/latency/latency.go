// Package latency is the schema of the per-opcode latency table — the
// speedup regression oracle of DESIGN.md §16. The static side (the ulat
// analyzer in internal/analysis, emitted by cmd/vaxlat as LATENCY.md +
// latency.json) derives per-class microcycle bounds from the execute
// microroutines themselves; the dynamic side (internal/experiments)
// single-steps each opcode on a real Machine and must land inside those
// bounds. The package deliberately imports nothing from the model: rows
// and classes are carried as their Go constant names ("RowSimple",
// "ClassCompute"), which is the same name-space the analyzers prove
// things in and the one that survives into fixtures.
package latency

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Bound is one per-class microcycle interval: the fewest and the most
// execute-phase cycles any path through the microroutine can count in
// that class, loop bodies excluded (they are carried as LoopTerms).
type Bound struct {
	Min uint64 `json:"min"`
	Max uint64 `json:"max"`
}

// LoopTerm is one data-dependent loop of a microroutine: the per-class
// cycles one iteration counts, annotated with the loop variable that
// scales it (the string length, the digit count, the register mask).
// A loop term relaxes the Max bound of its classes — the static side
// cannot know the iteration count — but never the Min: a loop may run
// zero times.
type LoopTerm struct {
	Var     string            `json:"var"`
	Classes map[string]uint64 `json:"classes"`
}

// Opcode is one derived row of the table.
type Opcode struct {
	Name  string `json:"name"`
	Group string `json:"group,omitempty"` // opTable group constant name
	Row   string `json:"row,omitempty"`   // its Table 8 execute row

	// Classes bounds the execute-phase cycles per ucode.Class constant
	// name. A class absent from the map is bounded [0,0].
	Classes map[string]Bound `json:"classes"`

	// Sum is the perturbation fingerprint: every counted contribution of
	// the microroutine added up once per class — all branches, all loop
	// bodies (one iteration each), both arms of every conditional. Any
	// one-cycle change anywhere in the routine moves it even when the
	// min/max envelope happens to absorb the change.
	Sum map[string]uint64 `json:"sum,omitempty"`

	Loops []LoopTerm `json:"loops,omitempty"`

	// Words is the sorted set of microword names the routine can count
	// on the exec channel (service rows pruned): the dynamic harness
	// attributes measured cycles to the opcode by this set.
	Words []string `json:"words"`

	// Scaled marks a routine whose tick counts fold an FPA-configuration
	// cost (fpCost): the bounds hold for the default FPA-present config.
	Scaled bool `json:"scaled,omitempty"`
}

// Mode is one addressing-mode row: the specifier-phase cycles one
// operand of that mode costs (read access, longword operand), same
// bound semantics as Opcode.
type Mode struct {
	Mode    string           `json:"mode"`
	Classes map[string]Bound `json:"classes"`
	Words   []string         `json:"words"`
}

// Table is the whole committed latency.json.
type Table struct {
	Version int      `json:"version"`
	Note    string   `json:"note"`
	Opcodes []Opcode `json:"opcodes"`
	Modes   []Mode   `json:"modes,omitempty"`
}

// Version is the current schema version.
const Version = 1

// Marshal renders the table as the canonical committed byte form:
// opcodes sorted by name, word lists sorted, two-space indent, trailing
// newline. Byte-identical across runs for identical content (maps
// marshal key-sorted), so CI can diff regenerated against committed.
func (t *Table) Marshal() ([]byte, error) {
	sort.Slice(t.Opcodes, func(i, j int) bool { return t.Opcodes[i].Name < t.Opcodes[j].Name })
	for i := range t.Opcodes {
		sort.Strings(t.Opcodes[i].Words)
		sortLoops(t.Opcodes[i].Loops)
	}
	for i := range t.Modes {
		sort.Strings(t.Modes[i].Words)
	}
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// sortLoops orders loop terms by variable then by their class
// fingerprint so emission is deterministic whatever order derivation
// discovered them in.
func sortLoops(loops []LoopTerm) {
	key := func(l LoopTerm) string {
		names := make([]string, 0, len(l.Classes))
		for c := range l.Classes {
			names = append(names, c)
		}
		sort.Strings(names)
		s := l.Var
		for _, c := range names {
			s += fmt.Sprintf("|%s=%d", c, l.Classes[c])
		}
		return s
	}
	sort.Slice(loops, func(i, j int) bool { return key(loops[i]) < key(loops[j]) })
}

// Load reads a committed table.
func Load(path string) (*Table, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("latency table: %w", err)
	}
	var t Table
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("latency table %s: %w", path, err)
	}
	if t.Version != Version {
		return nil, fmt.Errorf("latency table %s: schema version %d, want %d", path, t.Version, Version)
	}
	return &t, nil
}

// LoopTouched reports whether class appears in any loop term of the
// opcode — such a class has no usable upper bound.
func (o *Opcode) LoopTouched(class string) bool {
	for _, l := range o.Loops {
		if l.Classes[class] > 0 {
			return true
		}
	}
	return false
}

// Check is the declared tolerance policy: measured execute-phase cycles
// (per class constant name, attributed over o.Words) must be ≥ Min for
// every class, and ≤ Max unless the class is scaled by a loop term.
// Exact integer containment — there is no epsilon; the bounds themselves
// carry all the declared slack. The returned problems are human-readable
// and empty on agreement.
func (o *Opcode) Check(measured map[string]uint64) []string {
	var probs []string
	classes := make(map[string]bool, len(o.Classes)+len(measured))
	for c := range o.Classes {
		classes[c] = true
	}
	for c := range measured {
		classes[c] = true
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		b := o.Classes[c] // zero Bound when the class never appears statically
		got := measured[c]
		if got < b.Min {
			probs = append(probs, fmt.Sprintf("%s: measured %d %s cycles, static minimum is %d", o.Name, got, c, b.Min))
		}
		if got > b.Max && !o.LoopTouched(c) {
			probs = append(probs, fmt.Sprintf("%s: measured %d %s cycles, static maximum is %d and no loop term scales the class", o.Name, got, c, b.Max))
		}
	}
	return probs
}

// Root walks up from dir (or the working directory when dir is empty)
// to the module root — the nearest ancestor holding go.mod — so tests
// and tools can locate the committed latency.json wherever they run.
func Root(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// File is the committed table's file name at the module root.
const File = "latency.json"

// Doc is the committed human-readable rendering's file name.
const Doc = "LATENCY.md"
