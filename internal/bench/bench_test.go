package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_step.json")

	// A missing ledger is empty, not an error.
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries) != 0 {
		t.Fatalf("fresh ledger has %d entries", len(l.Entries))
	}

	l.Append(Entry{
		Date:      "2026-08-08",
		GoVersion: "go1.0-test",
		Budget:    1000,
		Profiles: []ProfileResult{{
			Name: "timesharing-research", Cycles: 1000, Instructions: 96,
			Seconds: 0.5, CyclesPerSec: 2000, NsPerCycle: 500000,
			AllocsPerCycle: 0.001, BytesPerCycle: 0.25,
		}},
	})
	if err := l.Write(path); err != nil {
		t.Fatal(err)
	}

	// Append-on-reload: the second run lands after the first.
	l2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(Entry{Date: "2026-08-09", GoVersion: "go1.0-test", Budget: 1000})
	if err := l2.Write(path); err != nil {
		t.Fatal(err)
	}
	l3, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l3.Entries) != 2 || l3.Entries[0].Date != "2026-08-08" || l3.Entries[1].Date != "2026-08-09" {
		t.Fatalf("ledger after two writes: %+v", l3.Entries)
	}
	if got := l3.Entries[0].Profiles[0]; got.Name != "timesharing-research" || got.AllocsPerCycle != 0.001 {
		t.Fatalf("profile row did not round-trip: %+v", got)
	}

	// A corrupted ledger is an error, never silently replaced.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a truncated ledger")
	}
}
