package analysis_test

import (
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/analysis/analysistest"
	"vax780/internal/latency"
)

// TestULat exercises the derivation's finding surface: an unresolvable
// handler expression, a runtime-valued tick count, and a word counted
// outside its opcode's Table 8 row — the word arriving through a
// cross-package counting helper.
func TestULat(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ULat, "ulat")
}

// TestULatClean proves the derivation invents nothing on a table whose
// every handler derives exactly.
func TestULatClean(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ULat, "ulatclean")
}

// TestULatTable pins the derived numbers on the clean fixture: exact
// straight-line bounds, a branch widening only the max, a
// data-dependent loop surfacing as a loop term rather than a bound, and
// a factory constant folding to an exact count.
func TestULatTable(t *testing.T) {
	pkgs, err := analysis.LoadTestdataPackages("testdata/src", "ulatclean")
	if err != nil {
		t.Fatal(err)
	}
	tab, diags, err := analysis.DeriveLatencyTable(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}

	ops := make(map[string]*latency.Opcode, len(tab.Opcodes))
	for i := range tab.Opcodes {
		ops[tab.Opcodes[i].Name] = &tab.Opcodes[i]
	}
	for _, name := range []string{"ADDX", "DBLX", "LOOPX", "FACTX", "PAIRX", "QUADX"} {
		if ops[name] == nil {
			t.Fatalf("derived table misses %s; have %d opcodes", name, len(tab.Opcodes))
		}
	}

	wantBound := func(name, class string, min, max uint64) {
		t.Helper()
		b, ok := ops[name].Classes[class]
		if !ok {
			t.Errorf("%s: no %s bound; classes %v", name, class, ops[name].Classes)
			return
		}
		if b.Min != min || b.Max != max {
			t.Errorf("%s %s: derived %d–%d, want %d–%d", name, class, b.Min, b.Max, min, max)
		}
	}
	wantBound("ADDX", "ClassCompute", 1, 1)
	wantBound("ADDX", "ClassWrite", 1, 1)
	wantBound("ADDX", "ClassDispatch", 1, 1) // the shared-row SPEC1 word
	wantBound("DBLX", "ClassCompute", 1, 2)
	wantBound("FACTX", "ClassCompute", 3, 3)

	// The registrations sharing one handler share its bounds.
	wantBound("PAIRX", "ClassCompute", 1, 1)
	wantBound("QUADX", "ClassCompute", 1, 1)

	loop := ops["LOOPX"]
	if len(loop.Loops) != 1 {
		t.Fatalf("LOOPX: derived %d loop terms, want 1 (%+v)", len(loop.Loops), loop.Loops)
	}
	if v := loop.Loops[0].Var; v != "i,n" {
		t.Errorf("LOOPX loop variable: derived %q, want \"i,n\"", v)
	}
	if n := loop.Loops[0].Classes["ClassCompute"]; n != 1 {
		t.Errorf("LOOPX loop term: %d compute cycles per iteration, want 1", n)
	}
	if b := loop.Classes["ClassCompute"]; b.Min != 0 {
		t.Errorf("LOOPX ClassCompute min: %d, want 0 (the loop may run zero times)", b.Min)
	}

	found := false
	for _, w := range ops["ADDX"].Words {
		if w == "clean.op" {
			found = true
		}
	}
	if !found {
		t.Errorf("ADDX word set %v misses clean.op", ops["ADDX"].Words)
	}
}
