package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// paperHeadlines maps each of the paper's headline numbers — the CPI, the
// six Table 8 column marginals, and the Table 3 per-instruction event
// rates — to the internal/paper identifier that owns it. These values
// must have a single source of truth: a copy hard-coded elsewhere drifts
// silently when a garbled table cell is re-reconstructed.
var paperHeadlines = map[float64]string{
	10.593: "paper.CPI",
	7.267:  "paper.Table8Total.Compute",
	0.783:  "paper.Table8Total.DRead",
	0.964:  "paper.Table8Total.RStall",
	0.409:  "paper.Table8Total.DWrite",
	0.450:  "paper.Table8Total.WStall",
	0.720:  "paper.Table8Total.IBStall",
	0.726:  "paper.Table3FirstSpecs",
	0.758:  "paper.Table3OtherSpecs",
	0.312:  "paper.Table3BranchDisps",
}

// paperConstAllowed are the package-path suffixes where the numbers may
// appear: the table of record itself, the experiment drivers that render
// EXPERIMENTS.md against it, and this analyzer.
var paperConstAllowed = []string{
	"internal/paper",
	"internal/experiments",
	"internal/analysis",
}

// PaperConst flags hard-coded paper headline numbers outside
// internal/paper, keeping Emer & Clark's published values in one place.
var PaperConst = &Analyzer{
	Name: "paperconst",
	Doc:  "flag paper headline numbers hard-coded outside internal/paper",
	Run:  runPaperConst,
}

// hasTablePrecision reports whether a float literal is written with the
// tables' three-decimal precision. A two-decimal 0.72 is a probability, a
// three-decimal 0.720 is the IB-stall marginal; requiring the canonical
// spelling keeps coincidental thresholds out of the report.
func hasTablePrecision(text string) bool {
	if strings.ContainsAny(text, "eEpP") {
		return true // scientific notation: trust the value match
	}
	i := strings.IndexByte(text, '.')
	return i >= 0 && len(text)-i-1 >= 3
}

func runPaperConst(pass *Pass) error {
	for _, suffix := range paperConstAllowed {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			return nil
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			v, err := strconv.ParseFloat(lit.Value, 64)
			if err != nil || !hasTablePrecision(lit.Value) {
				return true
			}
			if owner, hit := paperHeadlines[v]; hit {
				pass.Reportf(lit.Pos(),
					"paper headline number %s hard-coded outside internal/paper; use %s",
					lit.Value, owner)
			}
			return true
		})
	}
	return nil
}
