package analysis

import (
	"go/types"
	"testing"
)

// TestInflowFactRoundTrip proves the Inflow half of uwChanFact survives
// the export/import hop: bank.TickIt receives a marker word from a caller
// inside its own package, and the fact handed to importing packages must
// carry that class inflow next to the channel summary.
func TestInflowFactRoundTrip(t *testing.T) {
	pkgs, err := LoadTestdataPackages("testdata/src", "uwflow")
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	facts := make(factStore)
	allows := buildAllowIndex(pkgs)
	var last *Pass
	for _, pkg := range pkgs {
		pass := &Pass{Analyzer: UWFlow, Fset: pkg.Fset, Pkg: pkg, All: pkgs, diags: &diags, facts: facts, allows: allows}
		if err := UWFlow.Run(pass); err != nil {
			t.Fatalf("uwflow over %s: %v", pkg.Types.Path(), err)
		}
		last = pass
	}
	var tickIt *types.Func
	for _, pkg := range pkgs {
		if pkg.Types.Name() == "bank" {
			tickIt, _ = pkg.Types.Scope().Lookup("TickIt").(*types.Func)
		}
	}
	if tickIt == nil {
		t.Fatal("bank.TickIt not found in the load")
	}
	var f uwChanFact
	if !last.ImportObjectFact(tickIt, &f) {
		t.Fatal("no uwChanFact exported for bank.TickIt")
	}
	if len(f.Params) != 2 || len(f.Inflow) != 2 {
		t.Fatalf("fact arity: Params=%d Inflow=%d, want 2 and 2", len(f.Params), len(f.Inflow))
	}
	if !hasString(f.Params[1], "exec") {
		t.Errorf("Params[1] = %v, want it to carry \"exec\"", f.Params[1])
	}
	if !hasString(f.Inflow[1], "ClassMarker") {
		t.Errorf("Inflow[1] = %v, want it to carry \"ClassMarker\"", f.Inflow[1])
	}
}

// TestFuncValueModel white-boxes the function-value layer of the µflow
// model over the uwvalueclean fixture: the closure registered in the
// handler table gets a real summary, and dynSummary unions it with the
// declared candidate's.
func TestFuncValueModel(t *testing.T) {
	pkgs, err := LoadTestdataPackages("testdata/src", "uwvalueclean")
	if err != nil {
		t.Fatal(err)
	}
	var target *Package
	for _, p := range pkgs {
		if p.Types.Name() == "uwvalueclean" {
			target = p
		}
	}
	if target == nil {
		t.Fatal("uwvalueclean package not found in the load")
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: UWFlow, Fset: target.Fset, Pkg: target, All: pkgs, diags: &diags, facts: make(factStore), allows: buildAllowIndex(pkgs)}
	m := buildUWModel(pass, []*Package{target})

	if len(m.litSummary) != 1 {
		t.Fatalf("litSummary has %d entries, want 1 (the table closure)", len(m.litSummary))
	}
	for _, summ := range m.litSummary {
		if len(summ) != 2 || !summ[1]["exec"] {
			t.Errorf("closure summary = %v, want param 1 reaching exec", summ)
		}
	}

	tn, _ := target.Types.Scope().Lookup("handler").(*types.TypeName)
	if tn == nil {
		t.Fatal("named function type handler not found")
	}
	summ := m.dynSummary(tn, false)
	if len(summ) != 2 || !summ[1]["exec"] {
		t.Errorf("dynSummary(handler) = %v, want param 1 reaching exec", summ)
	}
}

func hasString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
