package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// goDecl pairs a declared function's syntax with its owning package.
type goDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// GoLeak proves every spawned goroutine in the load has a statically
// guaranteed exit path, so no fleet run can strand workers: the farm's
// pool-drain contract (close(dispatch) → workers fall out of their range
// loops → wg.Wait returns) only holds if no worker body can get stuck.
//
// Three shapes are findings, checked on the body each `go` statement
// enters (the literal, or the static callee's declaration — spawns
// through function values or interface methods are invisible, the
// dynamic-goroutine caveat of DESIGN.md §15):
//
//   - an inescapable loop: a CFG cycle, reachable from entry, with no
//     edge out — the body can never reach return. A `for { select {...}
//     } }` whose arms all continue is the canonical worker-shaped bug;
//     cfg.go models a default-less select as blocking, so an escape arm
//     (return, break) is what creates the exit edge.
//   - select{}: permanently blocked by construction.
//   - a range over a channel that no function in the load ever closes
//     (per the load-wide aliasing groups of concmodel.go): the loop can
//     never terminate. Groups aliasing out-of-load channels are skipped.
//
// Independently of spawns, a time.After (or time.Tick) call inside any
// CFG cycle is reported: each iteration strands a live timer (and
// time.Tick a whole ticker) until it fires, the slow leak behind
// long-lived supervisor loops — use one reusable time.NewTimer.
var GoLeak = &Analyzer{
	Name:        "goleak",
	Doc:         "every spawned goroutine has a statically guaranteed exit path; no timers stranded in loops",
	ModuleLevel: true,
	Run:         runGoLeak,
}

func runGoLeak(pass *Pass) error {
	groups := buildChanGroups(pass.All)

	// Decl bodies are resolvable across the whole load: `go other.F()`
	// checks F's body in its own package.
	decls := make(map[*types.Func]goDecl)
	for _, pkg := range pass.All {
		for _, fd := range PackageFuncs(pkg) {
			decls[fd.Obj] = goDecl{decl: fd.Decl, pkg: pkg}
		}
	}

	reported := make(map[token.Pos]bool) // dedup bodies spawned from several sites
	for _, pkg := range pass.All {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, bodyPkg := goTargetBody(pkg, decls, g)
				if body == nil {
					return true
				}
				checkSpawnedBody(pass, groups, g, body, bodyPkg, reported)
				return true
			})
		}
		checkStrandedTimers(pass, pkg, reported)
	}
	return nil
}

// goTargetBody resolves the body a `go` statement enters, with the
// package owning it (for type info on its expressions). Function values
// and interface methods resolve to nothing.
func goTargetBody(pkg *Package, decls map[*types.Func]goDecl, g *ast.GoStmt) (*ast.BlockStmt, *Package) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pkg
	}
	if fn := Callee(pkg.Info, g.Call); fn != nil {
		if d, ok := decls[fn]; ok {
			return d.decl.Body, d.pkg
		}
	}
	return nil, nil
}

// checkSpawnedBody applies the three exit-path rules to one spawned body.
func checkSpawnedBody(pass *Pass, groups *chanGroups, g *ast.GoStmt, body *ast.BlockStmt, pkg *Package, reported map[token.Pos]bool) {
	// Inescapable loops.
	cfg := BuildCFG(body)
	for _, comp := range sccLoops(cfg) {
		where := "its body"
		if pos := compPos(comp); pos.IsValid() {
			p := pass.Fset.Position(pos)
			where = fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		}
		if !reported[g.Pos()] {
			reported[g.Pos()] = true
			pass.Reportf(g.Pos(),
				"goroutine spawned here never exits: the loop at %s has no path to return (give an arm that returns on ctx.Done or a closed channel, or justify with //vaxlint:allow goleak)",
				where)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 && !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(), "select{} in a spawned goroutine blocks forever")
			}
		case *ast.RangeStmt:
			if !isChanType(pkg.Info.TypeOf(n.X)) {
				return true
			}
			b := &chanGroupBuilder{g: groups, pkg: pkg}
			slot, ok := b.ref(ast.Unparen(n.X))
			if !ok || groups.External(slot) || groups.Closed(slot) {
				return true
			}
			if !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(),
					"spawned goroutine ranges over a channel no function in the module closes: the loop can never terminate (close it on every coordinator exit path, or //vaxlint:allow goleak)")
			}
		}
		return true
	})

	scanTimerLoops(pass, pkg, cfg, reported)
}

// checkStrandedTimers reports time.After/time.Tick calls sitting on a
// CFG cycle of any declared function in pkg (literals are scanned when
// their spawn is checked).
func checkStrandedTimers(pass *Pass, pkg *Package, reported map[token.Pos]bool) {
	for _, fd := range PackageFuncs(pkg) {
		scanTimerLoops(pass, pkg, BuildCFG(fd.Decl.Body), reported)
	}
}

// scanTimerLoops reports time.After/time.Tick calls in any block of cfg
// that sits on a cycle: each iteration strands a live timer.
func scanTimerLoops(pass *Pass, pkg *Package, cfg *CFG, reported map[token.Pos]bool) {
	for _, blk := range cfg.Blocks {
		if !cfg.Reaches(blk, blk) {
			continue
		}
		for _, s := range blk.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // a literal's own loops get their own CFG via spawns
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := timeFuncName(pkg.Info, call)
				if name == "" || reported[call.Pos()] {
					return true
				}
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"time.%s inside a loop strands a live timer every iteration until it fires; hoist one reusable time.NewTimer (Stop+drain before Reset) out of the loop, or //vaxlint:allow goleak", name)
				return true
			})
		}
	}
}

// timeFuncName returns "After" or "Tick" when call statically invokes
// that package-level function of package time, else "" — the Time.After
// comparison method shares the name and must not match.
func timeFuncName(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	if n := fn.Name(); n == "After" || n == "Tick" {
		return n
	}
	return ""
}

