package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// The hot set: every function body the machine can execute per simulated
// cycle. Roots are the Machine's stepping entry points (Step*, Run,
// RunCtx); edges are the statically resolvable calls plus the two
// approximations the simulator's dispatch shapes need — calls through
// *named* function types resolve to every value of that type collected by
// FuncValues (the execTable shape), and calls through module-declared
// interfaces resolve to every implementing method in the load (the Probe
// shape). Both hotpath and hotbox walk this one set, so the perf contract
// has a single definition of "hot".
//
// A function is pruned from the set — not entered, not scanned — when its
// declaration line carries a justified //vaxlint:allow hotpath note: that
// is the cold-slice escape hatch (machine checks, exception delivery
// bookkeeping, the HALT path). Calls *to* a pruned function are treated
// as cold sites: the scan does not descend into their argument lists, so
// a %v passed to the cold fail() helper is not a hot boxing finding.
//
// Within a body, statements the CFG proves unreachable from the entry
// block are skipped (code after return/goto, after-blocks of `for {}`);
// everything else counts as "reachable per cycle". Panic edges are not
// modeled, matching cfg.go.

// hotAllowName is the analyzer name a cold-slice allow must cover; a
// named string (not HotPath.Name) so buildHotSet, which runHotPath
// references, does not close an initialization cycle with the Analyzer
// value.
const hotAllowName = "hotpath"

// hotNode is one function body in the hot set.
type hotNode struct {
	fn    *types.Func  // nil for a literal
	lit   *ast.FuncLit // nil for a declared function
	pkg   *Package
	body  *ast.BlockStmt
	chain string            // "Machine.StepInstruction → runSpecifier → peek"
	dead  map[ast.Stmt]bool // statements in CFG-unreachable blocks
}

// hotDecl locates a function declaration with a body.
type hotDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// hotSet is the computed hot set plus the tables needed to scan it.
type hotSet struct {
	pass  *Pass
	nodes []*hotNode // BFS order from the roots; deterministic
	byFn  map[*types.Func]*hotNode
	byLit map[*ast.FuncLit]*hotNode
	decls map[*types.Func]hotDecl
	vals  map[*types.TypeName][]FuncValue
}

// isHotRoot reports whether fn is a stepping entry point: a method on a
// type named Machine called Run, RunCtx, or Step-anything.
func isHotRoot(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Machine" {
		return false
	}
	name := fn.Name()
	return name == "Run" || name == "RunCtx" || strings.HasPrefix(name, "Step")
}

// hotName renders a function for call chains: Machine.tick, runSpecifier.
func hotName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// isColdFn reports whether fn's declaration carries a justified
// //vaxlint:allow note covering "hotpath" (trailing on the func line or
// standing alone above it).
func (hs *hotSet) isColdFn(fn *types.Func) bool {
	d, ok := hs.decls[fn]
	if !ok {
		return false
	}
	return hs.pass.allowedAs(hotAllowName, d.decl.Pos())
}

// buildHotSet computes the hot set over the whole load.
func buildHotSet(pass *Pass) *hotSet {
	hs := &hotSet{
		pass:  pass,
		byFn:  make(map[*types.Func]*hotNode),
		byLit: make(map[*ast.FuncLit]*hotNode),
		decls: make(map[*types.Func]hotDecl),
	}
	for _, pkg := range pass.All {
		for _, fd := range PackageFuncs(pkg) {
			hs.decls[fd.Obj] = hotDecl{pkg, fd.Decl}
		}
	}
	hs.vals = FuncValues(pass.All)

	var queue []*hotNode
	addFn := func(fn *types.Func, parent *hotNode) {
		if hs.byFn[fn] != nil {
			return
		}
		d, ok := hs.decls[fn]
		if !ok {
			return // no body in the load (stdlib, declared-only)
		}
		if hs.isColdFn(fn) {
			return // justified cold slice: pruned, calls to it are cold sites
		}
		n := &hotNode{fn: fn, pkg: d.pkg, body: d.decl.Body, chain: hotName(fn)}
		if parent != nil {
			n.chain = parent.chain + " → " + hotName(fn)
		}
		hs.byFn[fn] = n
		queue = append(queue, n)
	}
	addLit := func(lit *ast.FuncLit, pkg *Package, parent *hotNode) {
		if hs.byLit[lit] != nil {
			return
		}
		if hs.pass.allowedAs(hotAllowName, lit.Pos()) {
			return
		}
		pos := pkg.Fset.Position(lit.Pos())
		name := fmt.Sprintf("func@%s:%d", filepath.Base(pos.Filename), pos.Line)
		n := &hotNode{lit: lit, pkg: pkg, body: lit.Body, chain: name}
		if parent != nil {
			n.chain = parent.chain + " → " + name
		}
		hs.byLit[lit] = n
		queue = append(queue, n)
	}

	for _, pkg := range pass.All {
		for _, fd := range PackageFuncs(pkg) {
			if isHotRoot(fd.Obj) {
				addFn(fd.Obj, nil)
			}
		}
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		hs.nodes = append(hs.nodes, n)
		n.dead = deadStmts(BuildCFG(n.body))
		hs.scanHot(n, func(stack []ast.Node, node ast.Node) bool {
			switch x := node.(type) {
			case *ast.FuncLit:
				// A literal in a hot body runs in the hot path (deferred,
				// invoked, or table-registered); it becomes its own node.
				addLit(x, n.pkg, n)
			case *ast.CallExpr:
				if fn := Callee(n.pkg.Info, x); fn != nil {
					addFn(fn, n)
					return true
				}
				if tn := DynamicFuncType(n.pkg.Info, x); tn != nil {
					for _, cand := range hs.vals[tn] {
						if cand.Fn != nil {
							addFn(cand.Fn, n)
						} else if cand.Lit != nil {
							addLit(cand.Lit, cand.Pkg, n)
						}
					}
					return true
				}
				for _, m := range ModuleInterfaceMethods(hs.pass.All, n.pkg, x) {
					addFn(m, n)
				}
			}
			return true
		})
	}
	return hs
}

// scanHot walks the live part of a node's body. Statements in
// CFG-unreachable blocks are skipped; nested function literals are
// visited once but not entered (they are nodes of their own); calls whose
// static callee is a pruned cold function are skipped entirely, argument
// lists included. visit returns whether to descend into the node.
func (hs *hotSet) scanHot(n *hotNode, visit func(stack []ast.Node, node ast.Node) bool) {
	var stack []ast.Node
	for _, root := range n.body.List {
		ast.Inspect(root, func(node ast.Node) bool {
			if node == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if s, ok := node.(ast.Stmt); ok && n.dead[s] {
				return false
			}
			if call, ok := node.(*ast.CallExpr); ok {
				if fn := Callee(n.pkg.Info, call); fn != nil && hs.isColdFn(fn) {
					return false // cold site: the cold slice absorbs its arguments
				}
			}
			descend := visit(stack, node)
			if _, ok := node.(*ast.FuncLit); ok {
				descend = false
			}
			if !descend {
				return false
			}
			stack = append(stack, node)
			return true
		})
	}
}

// deadStmts collects the statements of blocks the CFG cannot reach from
// the entry block: code after return/goto, after-blocks of `for {}`. The
// emit() revive in cfg.go parks exactly these in fresh predecessor-less
// blocks, so unreachability from Blocks[0] identifies them. Synthesized
// condition wrappers are fresh nodes that never appear in the source
// tree; carrying them in the map is harmless.
func deadStmts(cfg *CFG) map[ast.Stmt]bool {
	reach := make([]bool, len(cfg.Blocks))
	reach[0] = true
	work := []*Block{cfg.Blocks[0]}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s.Index] {
				reach[s.Index] = true
				work = append(work, s)
			}
		}
	}
	var dead map[ast.Stmt]bool
	for _, blk := range cfg.Blocks {
		if reach[blk.Index] {
			continue
		}
		for _, s := range blk.Stmts {
			if dead == nil {
				dead = make(map[ast.Stmt]bool)
			}
			dead[s] = true
		}
	}
	return dead
}
