package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ExecTable cross-checks the opcode table in internal/vax against the
// register()ed execute microroutines in internal/cpu.
//
// The architectural table is the `var opTable = []OpInfo{...}` literal;
// handlers are attached with register(vax.OP, fn), either directly, by
// ranging over a []vax.Opcode literal, or by ranging over a slice of
// structs with Opcode-typed fields. The analyzer resolves all three forms
// statically and reports:
//
//   - an opTable entry with no registered handler (would fail at run time
//     only when the opcode is first executed);
//   - a duplicate registration (today a runtime init panic);
//   - an orphaned handler registered for an opcode with no table entry;
//   - a register() call whose opcode argument cannot be resolved
//     statically (keeps the table machine-checkable as the code grows).
var ExecTable = &Analyzer{
	Name:        "exectable",
	Doc:         "cross-check the opcode table against register()ed execute microroutines",
	ModuleLevel: true,
	Run:         runExecTable,
}

// tableEntry is one opTable row as seen in source.
type tableEntry struct {
	name string
	pos  token.Pos
}

// registration is one statically resolved register() call.
type registration struct {
	name string
	pos  token.Pos
}

func runExecTable(pass *Pass) error {
	var table []tableEntry
	var regs []registration
	for _, pkg := range pass.All {
		table = append(table, opTableEntries(pkg)...)
		regs = append(regs, registerCalls(pass, pkg)...)
	}
	if len(table) == 0 {
		// No opcode table in the load (e.g. a partial pattern): nothing
		// to cross-check.
		return nil
	}

	inTable := make(map[string]token.Pos, len(table))
	for _, e := range table {
		inTable[e.name] = e.pos
	}
	first := make(map[string]token.Pos, len(regs))
	for _, r := range regs {
		if prev, dup := first[r.name]; dup {
			pass.Reportf(r.pos, "opcode %s: duplicate execute registration (previous at %s)",
				r.name, pass.Fset.Position(prev))
			continue
		}
		first[r.name] = r.pos
		if _, ok := inTable[r.name]; !ok {
			pass.Reportf(r.pos, "opcode %s has a registered execute microroutine but no opTable entry", r.name)
		}
	}
	for _, e := range table {
		if _, ok := first[e.name]; !ok {
			pass.Reportf(e.pos, "opcode %s has no registered execute microroutine", e.name)
		}
	}
	return nil
}

// opTableEntries extracts the opcode names of every `opTable = []OpInfo{...}`
// row declared in pkg.
func opTableEntries(pkg *Package) []tableEntry {
	var out []tableEntry
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "opTable" || len(vs.Values) != 1 {
				return true
			}
			cl, ok := vs.Values[0].(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range cl.Elts {
				row, ok := elt.(*ast.CompositeLit)
				if !ok || len(row.Elts) == 0 {
					continue
				}
				if name, ok := opcodeRefName(row.Elts[0]); ok {
					out = append(out, tableEntry{name: name, pos: row.Pos()})
				}
			}
			return false
		})
	}
	return out
}

// opcodeRefName returns the constant name of a direct opcode reference
// (HALT or vax.HALT).
func opcodeRefName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); ok {
			return e.Sel.Name, true
		}
	}
	return "", false
}

// registerCalls resolves every register(...) call in pkg to the set of
// opcode constant names it registers.
func registerCalls(pass *Pass, pkg *Package) []registration {
	var out []registration
	WalkWithStack(pkg, func(stack []ast.Node, n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "register" || len(call.Args) < 1 {
			return
		}
		names, ok := resolveOpcodeArg(pkg, stack, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"register() opcode argument cannot be resolved statically; use a constant or range over a composite literal")
			return
		}
		for _, nm := range names {
			out = append(out, registration{name: nm, pos: call.Pos()})
		}
	})
	return out
}

// resolveOpcodeArg maps a register() first argument to opcode constant
// names. It understands three shapes:
//
//	register(vax.MOVL, fn)                      // direct constant
//	for _, op := range []vax.Opcode{...} { register(op, fn) }
//	for _, e := range []struct{...}{...} { register(e.op2, fn) }
func resolveOpcodeArg(pkg *Package, stack []ast.Node, arg ast.Expr) ([]string, bool) {
	// Direct constant reference?
	if id, ok := arg.(*ast.Ident); ok {
		if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
			return []string{c.Name()}, true
		}
		// A plain variable: look for the enclosing range-over-literal.
		return rangeElements(pkg, stack, id, "")
	}
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if c, ok := pkg.Info.Uses[sel.Sel].(*types.Const); ok {
			return []string{c.Name()}, true
		}
		// e.field: resolve through the enclosing range statement.
		if base, ok := sel.X.(*ast.Ident); ok {
			return rangeElements(pkg, stack, base, sel.Sel.Name)
		}
	}
	return nil, false
}

// rangeElements finds the innermost enclosing `for _, v := range <lit>`
// whose value variable is v, and extracts the opcode names of the literal
// elements; field selects the struct field when the elements are structs
// ("" for plain opcode elements).
func rangeElements(pkg *Package, stack []ast.Node, v *ast.Ident, field string) ([]string, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		val, ok := rs.Value.(*ast.Ident)
		if !ok || val.Name != v.Name {
			continue
		}
		lit, ok := rs.X.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		var names []string
		for _, elt := range lit.Elts {
			e := elt
			if field != "" {
				row, ok := elt.(*ast.CompositeLit)
				if !ok {
					return nil, false
				}
				fe, ok := structFieldValue(pkg, lit, row, field)
				if !ok {
					return nil, false
				}
				e = fe
			}
			name, ok := opcodeRefName(e)
			if !ok {
				return nil, false
			}
			names = append(names, name)
		}
		return names, true
	}
	return nil, false
}

// structFieldValue returns the expression initializing the named field of
// one struct row in a slice-of-structs composite literal.
func structFieldValue(pkg *Package, slice *ast.CompositeLit, row *ast.CompositeLit, field string) (ast.Expr, bool) {
	// Keyed form: {op2: vax.BISL2, ...}
	for _, elt := range row.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == field {
				return kv.Value, true
			}
		}
	}
	// Positional form: field order comes from the slice's element type.
	tv, ok := pkg.Info.Types[slice]
	if !ok {
		return nil, false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	st, ok := sl.Elem().Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			if i < len(row.Elts) {
				return row.Elts[i], true
			}
			return nil, false
		}
	}
	return nil, false
}
