package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Determinism proves, at build time, that the measurement core is a pure
// function of its inputs. PR 3's deterministic-resume guarantee (a
// resumed run is bit-identical to an uninterrupted one) was nearly
// broken by an invisible nondeterminism source — gob's process-global
// type registry made histogram bytes depend on process history — and
// that bug class is exactly what runtime tests are worst at: the
// nondeterminism only shows under the right process history. So the
// property is proved statically instead, every `make check`.
//
// Roots — the functions that must be deterministic:
//
//   - (*Machine).StepInstruction / Run / RunCtx: the simulation loop;
//   - (*Histogram).Save and LoadHistogram: the measurement data product
//     (byte-identical files are the resume contract);
//   - every ExportState/ImportState method: the checkpoint image.
//
// From each root the analyzer follows the static call graph (see
// callgraph.go) through the whole load and reports any reachable:
//
//   - wall-clock read (time.Now/Since/Until);
//   - unseeded math/rand use (package-level functions draw from the
//     process-global source; *rand.Rand methods on a locally seeded
//     source are fine);
//   - goroutine/process identity read (os.Getpid, runtime.NumGoroutine,
//     runtime.NumCPU, runtime.GOMAXPROCS, os.Hostname, os.Environ,
//     os.Getenv);
//   - a range over a map: iteration order is randomized per run — the
//     moral twin of the gob registry bug. A map *lookup* is fine; only
//     iteration order leaks scheduling entropy into values.
//
// Propagation is fact-based: analyzing each package bottom-up in
// dependency order, every function with a violation (direct, or via a
// call to a function already known impure) exports a nondetFact naming
// the root cause; packages that import it see the fact and extend the
// chain. Calls through function values and interface methods have no
// edge — attachments (probes, injection samplers, OnInstruction hooks)
// are covered by probesafe's capture rules instead.
//
// Escape hatch: a justified `//vaxlint:allow determinism -- reason` on
// the offending line (or the line above) excuses that one site; the
// justification string is mandatory (see allow.go).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "prove the simulation core, serializers and checkpoint paths deterministic",
	Run:  runDeterminism,
}

// nondetFact marks a function from which nondeterminism is reachable.
// Why is the human-readable causal chain, ending at the original site's
// file:line (rendered at collection time, so the position is always
// printed with the FileSet of the package that owns it).
type nondetFact struct {
	Why string
}

func (*nondetFact) AFact() {}

// nondetCalls maps a denylisted stdlib function to what is wrong with
// calling it from the measurement core.
var nondetCalls = map[string]string{
	"time.Now":             "reads the wall clock",
	"time.Since":           "reads the wall clock",
	"time.Until":           "reads the wall clock",
	"os.Getpid":            "reads process identity",
	"os.Getppid":           "reads process identity",
	"os.Hostname":          "reads host identity",
	"os.Environ":           "reads the process environment",
	"os.Getenv":            "reads the process environment",
	"os.LookupEnv":         "reads the process environment",
	"runtime.NumGoroutine": "reads scheduler state",
	"runtime.NumCPU":       "reads host parallelism",
	"runtime.GOMAXPROCS":   "reads scheduler state",
}

// randPkgs are the packages whose package-level functions draw from a
// process-global (and in v2, always OS-seeded) source.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

func runDeterminism(pass *Pass) error {
	funcs := PackageFuncs(pass.Pkg)

	// Phase 1: direct violations per function, honoring allow notes at
	// the violation site (an excused site never enters a fact, so it is
	// invisible to every caller).
	direct := make(map[*types.Func]string, len(funcs))
	for _, fd := range funcs {
		if why := directViolation(pass, fd.Decl.Body); why != "" {
			direct[fd.Obj] = why
		}
	}

	// Phase 2: intra-package fixed point over the call graph, seeded
	// with direct violations and imported facts from dependencies.
	// Dependency packages were analyzed first (the engine runs passes in
	// topological order), so a cross-package callee's fact is already in
	// the store.
	why := make(map[*types.Func]string, len(funcs))
	for obj, w := range direct {
		why[obj] = w
	}
	calls := make(map[*types.Func][]*types.Func, len(funcs))
	for _, fd := range funcs {
		calls[fd.Obj] = Callees(pass.Pkg.Info, fd.Decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range funcs {
			if _, done := why[fd.Obj]; done {
				continue
			}
			for _, callee := range calls[fd.Obj] {
				w, impure := why[callee]
				if !impure {
					var f nondetFact
					if pass.ImportObjectFact(callee, &f) {
						w, impure = f.Why, true
					}
				}
				if impure {
					why[fd.Obj] = fmt.Sprintf("calls %s, which %s", funcString(callee), w)
					changed = true
					break
				}
			}
		}
	}
	for obj, w := range why {
		pass.ExportObjectFact(obj, &nondetFact{Why: w})
	}

	// Phase 3: report impure roots declared in this package.
	for _, fd := range funcs {
		if !determinismRoot(fd.Obj) {
			continue
		}
		if w, impure := why[fd.Obj]; impure {
			pass.Reportf(fd.Decl.Name.Pos(),
				"%s must be deterministic (measurement core) but %s", funcString(fd.Obj), w)
		}
	}
	return nil
}

// directViolation scans one function body and returns what is wrong at
// the first unexcused violation ("" for a clean body).
func directViolation(pass *Pass, body ast.Node) string {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.Pkg.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !pass.Allowed(n.Pos()) {
				why = fmt.Sprintf("ranges over a map (iteration order is randomized per run) at %s",
					pass.Fset.Position(n.Pos()))
			}
		case *ast.CallExpr:
			fn := Callee(pass.Pkg.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods: only package-level stdlib funcs are denylisted
			}
			path := fn.Pkg().Path()
			if randPkgs[path] {
				if !pass.Allowed(n.Pos()) {
					why = fmt.Sprintf("calls %s.%s (process-global random source; construct rand.New(rand.NewSource(seed)) locally) at %s",
						path, fn.Name(), pass.Fset.Position(n.Pos()))
				}
				return true
			}
			if what, bad := nondetCalls[path+"."+fn.Name()]; bad && !pass.Allowed(n.Pos()) {
				why = fmt.Sprintf("calls %s.%s (%s) at %s",
					path, fn.Name(), what, pass.Fset.Position(n.Pos()))
			}
		}
		return true
	})
	return why
}

// determinismRoot reports whether fn is one of the functions whose
// determinism the resume contract depends on.
func determinismRoot(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Name() == "LoadHistogram"
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil {
		return false
	}
	if fn.Name() == "ExportState" || fn.Name() == "ImportState" {
		return true
	}
	switch recv.Obj().Name() {
	case "Machine":
		return fn.Name() == "StepInstruction" || fn.Name() == "Run" || fn.Name() == "RunCtx"
	case "Histogram":
		return fn.Name() == "Save"
	}
	return false
}

// funcString renders a function as pkg.Name or (*pkg.Recv).Name.
func funcString(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), nil), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
