package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Cheap interprocedural call graph. Interprocedural analyses here do not
// need a sound whole-program graph (no SSA, no pointer analysis); they
// need the statically obvious edges — calls whose callee is a named
// function or method resolved by the type checker. Calls through
// function values, interface methods, or deferred closures have no edge:
// analyzers built on this (determinism) document that approximation and
// the simulator's conventions keep the interesting paths — the
// instruction-execution core, the serializers — free of such indirection.

// FuncDecl pairs a function's type-checker object with its syntax.
type FuncDecl struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
}

// PackageFuncs returns every function and method declared in pkg with a
// body, in file order.
func PackageFuncs(pkg *Package) []FuncDecl {
	var out []FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncDecl{Obj: obj, Decl: fd})
		}
	}
	return out
}

// Callee resolves a call expression to the named function or method it
// statically invokes, or nil for calls the type checker cannot pin down
// (function values, interface dispatch) and for conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls resolve to *types.Func too; reject them —
		// the concrete body is unknown, so there is no edge to follow.
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Callees returns the distinct statically resolved callees under root,
// in source order.
func Callees(info *types.Info, root ast.Node) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := Callee(info, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// Function-value edges. The dense jump table the perf phase introduces —
// `var execTable [256]execFn` filled by register() and dispatched with
// `fn(m)` — has no statically resolvable callee, so the cheap graph above
// is blind to it. The type-based approximation here recovers those edges:
// every function, method or literal that is *used as a value of a named
// function type* is a candidate callee of every dynamic call through an
// expression of that type. The named type is the license — the simulator's
// handler tables are all declared with one (execFn), while incidental
// func-typed plumbing (injection samplers, OnInstruction hooks) uses
// anonymous types and stays out, which DESIGN.md §13 documents as the
// approximation's soundness boundary.

// FuncValue is one candidate callee of a dynamic call through a named
// function type: a declared function/method (Fn) or a literal (Lit).
type FuncValue struct {
	Fn  *types.Func  // nil when the value is a literal
	Lit *ast.FuncLit // nil when the value is a declared function
	Pkg *Package     // package the value appears in
	Pos token.Pos    // where the value is used as a value
}

// FuncValues collects, over pkgs in slice order, every function value
// assigned, passed, stored or returned at a *named* function type, keyed
// by that type's name object. Candidates are deduplicated and kept in
// source order, so consumers iterating them are deterministic.
func FuncValues(pkgs []*Package) map[*types.TypeName][]FuncValue {
	c := &funcValueCollector{
		out:  make(map[*types.TypeName][]FuncValue),
		seen: make(map[*types.TypeName]map[any]bool),
	}
	for _, pkg := range pkgs {
		c.pkg = pkg
		WalkWithStack(pkg, func(stack []ast.Node, n ast.Node) {
			c.node(stack, n)
		})
	}
	return c.out
}

type funcValueCollector struct {
	pkg  *Package
	out  map[*types.TypeName][]FuncValue
	seen map[*types.TypeName]map[any]bool // per-type dedup: *types.Func or *ast.FuncLit
}

// NamedFuncType returns the name object of t when t is a named (or
// aliased) type whose underlying type is a function signature, else nil.
func NamedFuncType(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Signature); !ok {
		return nil
	}
	return named.Obj()
}

// add records expr as a candidate of target's named function type, when
// expr is a function literal or a reference to a declared function.
func (c *funcValueCollector) add(expr ast.Expr, target types.Type) {
	tn := NamedFuncType(target)
	if tn == nil {
		return
	}
	var key any
	fv := FuncValue{Pkg: c.pkg}
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		fv.Lit, fv.Pos, key = e, e.Pos(), e
	case *ast.Ident:
		fn, ok := c.pkg.Info.Uses[e].(*types.Func)
		if !ok {
			return
		}
		fv.Fn, fv.Pos, key = fn, e.Pos(), fn
	case *ast.SelectorExpr:
		fn, ok := c.pkg.Info.Uses[e.Sel].(*types.Func)
		if !ok {
			return
		}
		fv.Fn, fv.Pos, key = fn, e.Pos(), fn
	default:
		return
	}
	if c.seen[tn] == nil {
		c.seen[tn] = make(map[any]bool)
	}
	if c.seen[tn][key] {
		return
	}
	c.seen[tn][key] = true
	c.out[tn] = append(c.out[tn], fv)
}

func (c *funcValueCollector) node(stack []ast.Node, n ast.Node) {
	info := c.pkg.Info
	switch n := n.(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
			c.add(n.Args[0], tv.Type) // explicit conversion execFn(f)
			return
		}
		fn := Callee(info, n)
		if fn == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i, arg := range n.Args {
			c.add(arg, paramType(sig, i))
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i, rhs := range n.Rhs {
			if t := info.TypeOf(n.Lhs[i]); t != nil {
				c.add(rhs, t)
			}
		}
	case *ast.ValueSpec:
		for i, v := range n.Values {
			if i < len(n.Names) {
				if obj := info.Defs[n.Names[i]]; obj != nil {
					c.add(v, obj.Type())
				}
			}
		}
	case *ast.CompositeLit:
		t := info.TypeOf(n)
		if t == nil {
			return
		}
		c.compositeElems(n, t)
	case *ast.ReturnStmt:
		sig := enclosingSignature(c.pkg, stack)
		if sig == nil {
			return
		}
		for i, r := range n.Results {
			if i < sig.Results().Len() {
				c.add(r, sig.Results().At(i).Type())
			}
		}
	}
}

// compositeElems records the elements of a composite literal against the
// element/value/field types of the literal's type.
func (c *funcValueCollector) compositeElems(lit *ast.CompositeLit, t types.Type) {
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Array:
		for _, el := range lit.Elts {
			c.add(elemValue(el), u.Elem())
		}
	case *types.Slice:
		for _, el := range lit.Elts {
			c.add(elemValue(el), u.Elem())
		}
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.add(kv.Value, u.Elem())
			}
		}
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := c.pkg.Info.Uses[key].(*types.Var); ok {
						c.add(kv.Value, f.Type())
					}
				}
				continue
			}
			if i < u.NumFields() {
				c.add(el, u.Field(i).Type())
			}
		}
	}
}

// elemValue unwraps the value of a possibly-keyed composite element.
func elemValue(el ast.Expr) ast.Expr {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return el
}

// paramType returns the type of argument i of a call to sig, expanding
// the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && i >= np-1 {
		if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < np {
		return sig.Params().At(i).Type()
	}
	return nil
}

// enclosingSignature resolves the signature of the innermost function
// declaration or literal on the stack.
func enclosingSignature(pkg *Package, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if tv, ok := pkg.Info.Types[ast.Expr(fn)]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					return sig
				}
			}
			return nil
		case *ast.FuncDecl:
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
				return obj.Type().(*types.Signature)
			}
			return nil
		}
	}
	return nil
}

// DynamicFuncType classifies a call with no static callee: when the call
// goes through an expression whose type is a named function type, it
// returns that type's name object (the key into FuncValues). Interface
// method calls and calls through anonymous func types return nil.
func DynamicFuncType(info *types.Info, call *ast.CallExpr) *types.TypeName {
	if Callee(info, call) != nil {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return nil // a method call, not a function value
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	return NamedFuncType(tv.Type)
}

// ModuleInterfaceMethods resolves an interface method call against the
// analyzed packages (class-hierarchy style): when the receiver's static
// type is an interface *declared in pkgs*, it returns the concrete
// methods of every named type in pkgs that implements the interface, in
// package/declaration order. Interfaces declared outside the load
// (error, io.Reader) return nil — their implementors are unbounded.
func ModuleInterfaceMethods(pkgs []*Package, pkg *Package, call *ast.CallExpr) []*types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !types.IsInterface(s.Recv().Underlying()) {
		return nil
	}
	named, ok := types.Unalias(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	declared := false
	for _, p := range pkgs {
		if p.Types == named.Obj().Pkg() {
			declared = true
			break
		}
	}
	if !declared {
		return nil
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if ok2 := ok && !tn.IsAlias(); !ok2 {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t.Underlying()) {
				continue
			}
			impl := types.Type(t)
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(t)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), sel.Sel.Name)
			if m, ok := obj.(*types.Func); ok {
				out = append(out, m)
			}
		}
	}
	return out
}
