package analysis

import (
	"go/ast"
	"go/types"
)

// Cheap interprocedural call graph. Interprocedural analyses here do not
// need a sound whole-program graph (no SSA, no pointer analysis); they
// need the statically obvious edges — calls whose callee is a named
// function or method resolved by the type checker. Calls through
// function values, interface methods, or deferred closures have no edge:
// analyzers built on this (determinism) document that approximation and
// the simulator's conventions keep the interesting paths — the
// instruction-execution core, the serializers — free of such indirection.

// FuncDecl pairs a function's type-checker object with its syntax.
type FuncDecl struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
}

// PackageFuncs returns every function and method declared in pkg with a
// body, in file order.
func PackageFuncs(pkg *Package) []FuncDecl {
	var out []FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncDecl{Obj: obj, Decl: fd})
		}
	}
	return out
}

// Callee resolves a call expression to the named function or method it
// statically invokes, or nil for calls the type checker cannot pin down
// (function values, interface dispatch) and for conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls resolve to *types.Func too; reject them —
		// the concrete body is unknown, so there is no edge to follow.
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Callees returns the distinct statically resolved callees under root,
// in source order.
func Callees(info *types.Info, root ast.Node) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := Callee(info, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}
