package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutine/channel model, the substrate of the four concflow analyzers
// (goleak.go, chanprot.go, ctxflow.go, onewriter.go). Three pieces:
//
//   - spawnedFuncs: which function bodies execute on spawned goroutines —
//     the closure of every `go` statement's target over same-package
//     static calls, plus every literal nested inside such a body. This is
//     the "who spawns what" half of the model; calls through function
//     values or interfaces have no edge (DESIGN.md §15 documents the
//     soundness boundary), and a body reachable both from a spawn and
//     from the coordinator counts as spawned.
//
//   - chanGroups: a load-wide, Steensgaard-style unification of channel
//     handles — locals, params, struct fields and make sites that can
//     alias are one group. Context-insensitive by construction: two
//     distinct channels threaded through the same helper parameter
//     merge. The merge only ever widens a group, so analyzers that stay
//     silent on wide groups (goleak's never-closed-range rule) remain
//     sound-for-reporting; groups touching channels produced outside the
//     load (ctx.Done, time.After) are marked external and never reported.
//
//   - concFact: the cross-package summary chanprot exports per function —
//     which operations (send/recv/close/range) the function performs,
//     transitively, on each of its channel-typed parameters. This is how
//     close ownership is proved across the coordinator/worker split when
//     the close happens behind a helper in another package.

// concOps is a bitmask of channel operations.
type concOps uint8

const (
	opSend concOps = 1 << iota
	opRecv
	opClose
	opRange
)

// concFact summarizes, per channel-typed parameter (indexed over all
// params; non-channel params hold 0), the operations a function performs
// on it — directly or through its static callees. Exported by chanprot
// on every function with at least one channel parameter.
type concFact struct {
	Params []concOps
}

func (*concFact) AFact() {}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ---------------------------------------------------------------------------
// Spawn closure.

// spawnedFuncs returns the set of function nodes (*ast.FuncDecl or
// *ast.FuncLit) whose bodies run on goroutines spawned inside pkg:
// `go` statement targets, their same-package static callees
// (transitively), and every literal nested in such a body. Spawns whose
// target is a function value or an interface method have no entry — the
// dynamic-goroutine caveat every concflow analyzer inherits.
func spawnedFuncs(pkg *Package) map[ast.Node]bool {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, fd := range PackageFuncs(pkg) {
		decls[fd.Obj] = fd.Decl
	}
	spawned := make(map[ast.Node]bool)
	var work []ast.Node
	add := func(n ast.Node) {
		if n != nil && !spawned[n] {
			spawned[n] = true
			work = append(work, n)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			add(spawnTarget(pkg, decls, g))
			return true
		})
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		body := funcNodeBody(n)
		if body == nil {
			continue
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				add(m) // runs (or is handed off) on the spawned side
				return false
			case *ast.CallExpr:
				if fn := Callee(pkg.Info, m); fn != nil {
					if d, ok := decls[fn]; ok {
						add(d)
					}
				}
			}
			return true
		})
	}
	return spawned
}

// spawnTarget resolves the function node a `go` statement enters: the
// literal itself, or the same-package declaration of a static callee.
func spawnTarget(pkg *Package, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) ast.Node {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit
	}
	if fn := Callee(pkg.Info, g.Call); fn != nil {
		if d, ok := decls[fn]; ok {
			return d
		}
	}
	return nil
}

// funcNodeBody returns the body of a *ast.FuncDecl or *ast.FuncLit node.
func funcNodeBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// enclosingFuncNode returns the innermost *ast.FuncDecl or *ast.FuncLit
// on the ancestor stack, or nil at package level.
func enclosingFuncNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Channel handle unification.

// chanUF is a union-find over channel handle slots. Slots are
// types.Object (locals, params, fields), make-site origins (the
// *ast.CallExpr node), or result slots of in-load functions.
type chanUF struct {
	parent map[any]any
}

// chanResult keys the i-th result of an in-load function returning a
// channel, so `ch := f()` unifies with f's `return` operands.
type chanResult struct {
	fn *types.Func
	i  int
}

func newChanUF() *chanUF { return &chanUF{parent: make(map[any]any)} }

func (u *chanUF) find(x any) any {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *chanUF) union(a, b any) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *chanUF) same(a, b any) bool { return u.find(a) == u.find(b) }

// chanGroups is the load-wide channel aliasing model goleak runs on:
// the unification plus, per slot list, the close sites and the external
// marks (groups touching channels made outside the load).
type chanGroups struct {
	uf       *chanUF
	closes   []any // slots with a close(x) site somewhere in the load
	external []any // slots that alias an out-of-load channel
}

// Closed reports whether slot's group carries a close site.
func (g *chanGroups) Closed(slot any) bool {
	for _, c := range g.closes {
		if g.uf.same(c, slot) {
			return true
		}
	}
	return false
}

// External reports whether slot's group aliases a channel the load did
// not create (ctx.Done, time.After, results of unknown callees): its
// protocol is someone else's contract, so analyzers stay silent on it.
func (g *chanGroups) External(slot any) bool {
	for _, e := range g.external {
		if g.uf.same(e, slot) {
			return true
		}
	}
	return false
}

// buildChanGroups unifies channel handles over every package of the
// load. inLoad must hold the declared functions of all pkgs (for
// resolving which callees' params/results are unifiable).
func buildChanGroups(pkgs []*Package) *chanGroups {
	g := &chanGroups{uf: newChanUF()}
	inLoad := make(map[*types.Func]bool)
	for _, pkg := range pkgs {
		for _, fd := range PackageFuncs(pkg) {
			inLoad[fd.Obj] = true
		}
	}
	for _, pkg := range pkgs {
		b := &chanGroupBuilder{g: g, pkg: pkg, inLoad: inLoad}
		WalkWithStack(pkg, b.node)
	}
	return g
}

type chanGroupBuilder struct {
	g      *chanGroups
	pkg    *Package
	inLoad map[*types.Func]bool
}

// ref resolves a channel-typed expression to its slot. The second result
// is false when the expression has no stable slot (an out-of-load call,
// an element of a container): the caller marks the counterpart external.
func (b *chanGroupBuilder) ref(e ast.Expr) (any, bool) {
	e = ast.Unparen(e)
	info := b.pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v, true
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v, true
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v, true
		}
	case *ast.CallExpr:
		if isMakeChan(info, e) {
			return e, true
		}
		if fn := Callee(info, e); fn != nil && b.inLoad[fn] {
			return chanResult{fn: fn, i: 0}, true
		}
	}
	return nil, false
}

// bind unifies dst's slot with the value expression, or marks dst's
// group external when the value has no slot.
func (b *chanGroupBuilder) bind(dst any, val ast.Expr) {
	if !isChanType(b.pkg.Info.TypeOf(val)) {
		return
	}
	if src, ok := b.ref(val); ok {
		b.g.uf.union(dst, src)
	} else {
		b.g.external = append(b.g.external, dst)
	}
}

func (b *chanGroupBuilder) node(stack []ast.Node, n ast.Node) {
	info := b.pkg.Info
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			// Multi-value form (ch := f()): only the out-of-load case needs
			// handling; in-load multi-result channel returns are rare enough
			// to leave external.
			for _, lhs := range n.Lhs {
				if isChanType(info.TypeOf(lhs)) {
					if dst, ok := b.ref(lhs); ok {
						b.g.external = append(b.g.external, dst)
					}
				}
			}
			return
		}
		for i, lhs := range n.Lhs {
			if !isChanType(info.TypeOf(lhs)) {
				continue
			}
			if dst, ok := b.ref(lhs); ok {
				b.bind(dst, n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		for i, name := range n.Names {
			if i >= len(n.Values) {
				break
			}
			if v, ok := info.Defs[name].(*types.Var); ok && isChanType(v.Type()) {
				b.bind(v, n.Values[i])
			}
		}
	case *ast.CompositeLit:
		b.compositeBind(n)
	case *ast.CallExpr:
		b.callBind(n)
	case *ast.ReturnStmt:
		sig := enclosingSignature(b.pkg, stack)
		fn := enclosingDeclObj(b.pkg, stack)
		if sig == nil || fn == nil {
			return
		}
		for i, r := range n.Results {
			if i < sig.Results().Len() && isChanType(sig.Results().At(i).Type()) {
				b.bind(chanResult{fn: fn, i: i}, r)
			}
		}
	}
}

// compositeBind unifies channel-typed struct fields with their literal
// values; channels in arrays/slices/maps get no slot (external).
func (b *chanGroupBuilder) compositeBind(lit *ast.CompositeLit) {
	t := b.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	if !ok {
		for _, el := range lit.Elts {
			v := elemValue(el)
			if isChanType(b.pkg.Info.TypeOf(v)) {
				if src, ok := b.ref(v); ok {
					b.g.external = append(b.g.external, src)
				}
			}
		}
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if f, ok := b.pkg.Info.Uses[key].(*types.Var); ok && isChanType(f.Type()) {
					b.bind(f, kv.Value)
				}
			}
			continue
		}
		if i < st.NumFields() && isChanType(st.Field(i).Type()) {
			b.bind(st.Field(i), el)
		}
	}
}

// callBind unifies channel arguments with the callee's parameters (for
// in-load callees), records close sites, and marks channel arguments to
// unknown callees external.
func (b *chanGroupBuilder) callBind(call *ast.CallExpr) {
	info := b.pkg.Info
	if isBuiltin(info, call, "close") && len(call.Args) == 1 {
		if slot, ok := b.ref(call.Args[0]); ok {
			b.g.closes = append(b.g.closes, slot)
		}
		return
	}
	fn := Callee(info, call)
	for i, arg := range call.Args {
		if !isChanType(info.TypeOf(arg)) {
			continue
		}
		src, ok := b.ref(arg)
		if !ok {
			continue
		}
		if fn != nil && b.inLoad[fn] {
			if sig, ok := fn.Type().(*types.Signature); ok && i < sig.Params().Len() && !sig.Variadic() {
				b.g.uf.union(src, sig.Params().At(i))
				continue
			}
		}
		// Conversions, builtins other than close (cap/len are harmless but
		// cheap to include), function values, out-of-load callees: the
		// channel escapes the model.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			continue // conversion: same handle, nothing to do
		}
		if isBuiltin(info, call, "len") || isBuiltin(info, call, "cap") {
			continue
		}
		b.g.external = append(b.g.external, src)
	}
}

// isMakeChan reports whether call is make(chan ...).
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltin(info, call, "make") && len(call.Args) >= 1 && isChanType(info.Types[call.Args[0]].Type)
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// enclosingDeclObj resolves the *types.Func of the innermost enclosing
// function declaration (literals return nil: their results have no
// stable slot).
func enclosingDeclObj(pkg *Package, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			obj, _ := pkg.Info.Defs[n.Name].(*types.Func)
			return obj
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared small predicates.

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroupWait reports whether call is a .Wait() method call on a
// type named WaitGroup (sync.WaitGroup, or a fixture-local model of it).
func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	t := info.TypeOf(sel.X)
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// concSyncExempt reports whether a struct field of this type is exempt
// from the onewriter single-writer rule: channels, contexts, and
// anything from sync/atomic carry their own synchronization.
func concSyncExempt(t types.Type) bool {
	for {
		switch u := types.Unalias(t).(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	if isChanType(t) || isContextType(t) {
		return true
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	// Name-based like isWaitGroupWait, so fixtures can model sync types
	// locally without importing sync.
	if named.Obj().Name() == "WaitGroup" {
		return true
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// cfgIndex maps each statement of a CFG to its block and ordinal, for
// reachability queries with same-block ordering.
type cfgIndex struct {
	cfg *CFG
	blk map[ast.Stmt]*Block
	ord map[ast.Stmt]int
}

func indexCFG(cfg *CFG) *cfgIndex {
	ix := &cfgIndex{cfg: cfg, blk: make(map[ast.Stmt]*Block), ord: make(map[ast.Stmt]int)}
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			if _, ok := ix.blk[s]; !ok {
				ix.blk[s] = b
				ix.ord[s] = i
			}
		}
	}
	return ix
}

// locate finds the innermost statement on the stack (including n itself)
// that the CFG indexed, i.e. the block-level statement carrying n.
func (ix *cfgIndex) locate(stack []ast.Node, n ast.Node) (blk *Block, ord int, ok bool) {
	if s, isStmt := n.(ast.Stmt); isStmt {
		if b, found := ix.blk[s]; found {
			return b, ix.ord[s], true
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if _, isFunc := stack[i].(*ast.FuncLit); isFunc {
			return nil, 0, false // crossed into a different body
		}
		s, isStmt := stack[i].(ast.Stmt)
		if !isStmt {
			continue
		}
		if b, found := ix.blk[s]; found {
			return b, ix.ord[s], true
		}
	}
	return nil, 0, false
}

// ordered reports whether execution can pass through (ablk, aord) and
// later reach (bblk, bord): a same-block earlier ordinal, or a CFG path.
func (ix *cfgIndex) ordered(ablk *Block, aord int, bblk *Block, bord int) bool {
	if ablk == bblk && aord < bord {
		return true
	}
	return ix.cfg.Reaches(ablk, bblk)
}

// sccLoops returns the inescapable strongly connected components of the
// CFG that are reachable from entry: every component with a cycle whose
// blocks have no successor outside the component. A body stuck in such a
// component never reaches the exit block.
func sccLoops(cfg *CFG) [][]*Block {
	// Tarjan, iterative.
	n := len(cfg.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []*Block
	var comps [][]*Block
	next := 0

	type frame struct {
		b  *Block
		si int
	}
	var dfs []frame
	push := func(b *Block) {
		index[b.Index] = next
		low[b.Index] = next
		next++
		stack = append(stack, b)
		onStack[b.Index] = true
		dfs = append(dfs, frame{b: b})
	}
	for _, root := range cfg.Blocks {
		if index[root.Index] != -1 {
			continue
		}
		push(root)
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.si < len(f.b.Succs) {
				s := f.b.Succs[f.si]
				f.si++
				if index[s.Index] == -1 {
					push(s)
				} else if onStack[s.Index] {
					if index[s.Index] < low[f.b.Index] {
						low[f.b.Index] = index[s.Index]
					}
				}
				continue
			}
			b := f.b
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].b
				if low[b.Index] < low[p.Index] {
					low[p.Index] = low[b.Index]
				}
			}
			if low[b.Index] == index[b.Index] {
				var comp []*Block
				for {
					t := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[t.Index] = false
					comp = append(comp, t)
					if t == b {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}

	// Keep components that cycle (size > 1, or a self edge) and have no
	// escape edge, and are reachable from entry.
	reach := make([]bool, n)
	reach[cfg.Blocks[0].Index] = true
	work := []*Block{cfg.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s.Index] {
				reach[s.Index] = true
				work = append(work, s)
			}
		}
	}
	var out [][]*Block
	for _, comp := range comps {
		in := make(map[*Block]bool, len(comp))
		for _, b := range comp {
			in[b] = true
		}
		cycles := len(comp) > 1
		escapes := false
		reachable := false
		for _, b := range comp {
			if reach[b.Index] {
				reachable = true
			}
			for _, s := range b.Succs {
				if s == b {
					cycles = true
				}
				if !in[s] {
					escapes = true
				}
			}
		}
		if cycles && !escapes && reachable {
			out = append(out, comp)
		}
	}
	return out
}

// compPos returns the position of the first statement of an SCC, for
// naming the loop in a diagnostic; token.NoPos when every block is bare.
func compPos(comp []*Block) token.Pos {
	best := token.NoPos
	for _, b := range comp {
		for _, s := range b.Stmts {
			if p := s.Pos(); p.IsValid() && (best == token.NoPos || p < best) {
				best = p
			}
		}
	}
	return best
}
