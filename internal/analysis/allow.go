package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Escape hatch. A finding can be suppressed in source with
//
//	//vaxlint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// either trailing on the offending line or standing alone on the line
// directly above it. The justification is mandatory: an allow without
// one is itself a finding (the build stays red), so every suppression in
// the tree carries its reason next to the code it excuses. Unknown
// analyzer names are findings too — a typo must not silently allow
// nothing.

const allowPrefix = "//vaxlint:allow"

// allowNote is one parsed //vaxlint:allow comment.
type allowNote struct {
	analyzers []string
	reason    string
	pos       token.Pos
	raw       string
}

// allowKey locates a note by file and line.
type allowKey struct {
	file string
	line int
}

// allowIndex maps every source line carrying (or directly below) an
// allow comment to its note. Built once per Run over every package of
// the load.
type allowIndex map[allowKey]*allowNote

// covers reports whether the note names the analyzer.
func (n *allowNote) covers(analyzer string) bool {
	for _, a := range n.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// buildAllowIndex scans the comments of pkgs for allow notes. A note is
// indexed at its own line (suppressing trailing-comment findings) and at
// the line below (suppressing findings on the annotated statement when
// the comment stands alone above it).
func buildAllowIndex(pkgs []*Package) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					note := parseAllow(c.Text, c.Pos())
					p := pkg.Fset.Position(c.Pos())
					idx[allowKey{p.Filename, p.Line}] = note
					idx[allowKey{p.Filename, p.Line + 1}] = note
				}
			}
		}
	}
	return idx
}

// parseAllow splits "//vaxlint:allow a,b -- reason" into its parts. A
// missing "--" or empty reason leaves reason empty, which validation
// reports.
func parseAllow(text string, pos token.Pos) *allowNote {
	note := &allowNote{pos: pos, raw: text}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	names := rest
	if i := strings.Index(rest, "--"); i >= 0 {
		names = rest[:i]
		note.reason = strings.TrimSpace(rest[i+2:])
	}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			note.analyzers = append(note.analyzers, n)
		}
	}
	return note
}

// validateAllows reports malformed allow notes: no justification, no
// analyzer names, or names outside the known set. Reported under the
// pseudo-analyzer "allow" so `make check` fails on an annotation that
// excuses nothing or excuses it without saying why.
func validateAllows(idx allowIndex, known map[string]bool, fset *token.FileSet, diags *[]Diagnostic) {
	seen := make(map[*allowNote]bool)
	for _, note := range idx {
		if seen[note] {
			continue
		}
		seen[note] = true
		report := func(format string, args ...any) {
			*diags = append(*diags, Diagnostic{
				Pos:      fset.Position(note.pos),
				Analyzer: "allow",
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if len(note.analyzers) == 0 {
			report("vaxlint:allow names no analyzer: %q", note.raw)
		}
		for _, a := range note.analyzers {
			if !known[a] {
				report("vaxlint:allow names unknown analyzer %q", a)
			}
		}
		if note.reason == "" {
			report("vaxlint:allow lacks a justification; write //vaxlint:allow <analyzer> -- <reason>")
		}
	}
}

// Allowed reports whether a finding of this pass's analyzer at pos is
// suppressed by a justified allow note. Analyzers that aggregate
// findings across functions (determinism) call it at collection time so
// an excused site never enters a fact; Reportf calls it for everyone
// else. Notes without a justification never suppress — they are
// themselves findings.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.allowedAs(p.Analyzer.Name, pos)
}

// allowedAs is Allowed for an arbitrary analyzer name. The hot-set
// builder (hotset.go) uses it to prune cold functions for both hotpath
// and hotbox through one //vaxlint:allow hotpath note on the declaration.
func (p *Pass) allowedAs(name string, pos token.Pos) bool {
	if p.allows == nil {
		return false
	}
	position := p.Fset.Position(pos)
	note, ok := p.allows[allowKey{position.Filename, position.Line}]
	if !ok {
		return false
	}
	return note.covers(name) && note.reason != ""
}

// AllowEntry is one //vaxlint:allow note of the load, as listed by
// `vaxlint -allows`: the audit trail of every suppression in one place.
type AllowEntry struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
}

// CollectAllows scans pkgs for allow notes and returns them sorted by
// file, then line — a deterministic listing independent of map order.
func CollectAllows(pkgs []*Package) []AllowEntry {
	var out []AllowEntry
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					note := parseAllow(c.Text, c.Pos())
					out = append(out, AllowEntry{
						Pos:       pkg.Fset.Position(c.Pos()),
						Analyzers: note.analyzers,
						Reason:    note.reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
