package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath proves the per-cycle allocation contract of the measurement
// loop: on every path the CFG proves reachable from Machine.Step*/Run/
// RunCtx, nothing may allocate. The paper's method divides wall-clock by
// cycles; a single make() in the specifier decode path turns every
// measurement into a benchmark of the Go allocator instead of the
// machine model, and — worse — does it silently, because the histogram
// stays self-consistent. The analyzer flags, with the call chain from
// the root that reaches them:
//
//   - make/new and slice/map composite literals (heap, growth);
//   - &T{} composite literals whose address escapes the statement;
//   - function literals and method values (closure allocation);
//   - defer (runtime bookkeeping per cycle, on top of the closure);
//   - append (amortized growth of the backing array);
//   - go statements (a goroutine per cycle is never intended here).
//
// The escape judgment is an approximation, deliberately coarser than the
// compiler's: it flags what *may* allocate, and the justified cold
// slices — machine-check assembly, exception delivery, the HALT path —
// are pruned with //vaxlint:allow hotpath on the function declaration
// (see hotset.go) or excused per line. TestEscapeGroundTruth (`make
// escape-truth`, a named CI step) diffs the composite-literal half of
// the judgment against `go build -gcflags=-m` over the real hot set and
// fails on drift in either direction; DESIGN.md §13 documents the
// contract and its pinned over-approximations.
var HotPath = &Analyzer{
	Name:        "hotpath",
	Doc:         "nothing reachable from Machine.Step*/Run may allocate per cycle (make, escaping literals, closures, defer, append growth)",
	ModuleLevel: true,
	Run:         runHotPath,
}

func runHotPath(pass *Pass) error {
	hs := buildHotSet(pass)
	for _, n := range hs.nodes {
		hs.scanHot(n, func(stack []ast.Node, node ast.Node) bool {
			checkHotAlloc(pass, n, stack, node)
			return true
		})
	}
	return nil
}

func checkHotAlloc(pass *Pass, n *hotNode, stack []ast.Node, node ast.Node) {
	info := n.pkg.Info
	switch x := node.(type) {
	case *ast.DeferStmt:
		pass.Reportf(x.Pos(),
			"hot path (%s): defer runs its bookkeeping every cycle; restructure into explicit calls on each exit", n.chain)
	case *ast.GoStmt:
		pass.Reportf(x.Pos(),
			"hot path (%s): go statement launches a goroutine per cycle", n.chain)
	case *ast.FuncLit:
		pass.Reportf(x.Pos(),
			"hot path (%s): function literal allocates a closure per cycle; hoist it to a declared function", n.chain)
	case *ast.CallExpr:
		switch builtinName(info, x) {
		case "make":
			pass.Reportf(x.Pos(),
				"hot path (%s): make allocates per cycle; reuse a preallocated buffer on the machine", n.chain)
		case "new":
			pass.Reportf(x.Pos(),
				"hot path (%s): new allocates per cycle", n.chain)
		case "append":
			pass.Reportf(x.Pos(),
				"hot path (%s): append may grow its backing array per cycle; size the slice at construction", n.chain)
		}
	case *ast.CompositeLit:
		checkHotComposite(pass, n, stack, x)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal && !isCallFun(stack, x) {
			pass.Reportf(x.Pos(),
				"hot path (%s): method value %s allocates a bound-method closure per cycle; pass an interface or a declared function instead", n.chain, x.Sel.Name)
		}
	}
}

// escVerdict is the analyzer's allocation claim for one composite literal.
type escVerdict uint8

const (
	// escSilent: the literal is a plain value copy (struct or array, address
	// never taken at the literal). The analyzer makes no allocation claim —
	// if such a value heap-allocates it is through an interface conversion,
	// which is hotbox's finding, anchored at the conversion.
	escSilent escVerdict = iota
	// escStack: the analyzer claims the backing storage stays on the stack
	// (a slice literal ranged over in place).
	escStack
	// escHeap: the analyzer claims the literal allocates on the heap every
	// cycle and reports it.
	escHeap
)

// compositeEsc is one composite literal's verdict. pos is where the
// analyzer reports (the `&` for an escaping &T{…}, the literal's start
// otherwise); truthPos is where the compiler anchors its own verdict on
// the same literal — the opening brace for a plain T{…}, the `&` for
// &T{…} — which is what lets TestEscapeGroundTruth diff the two
// judgments position-exactly against `go build -gcflags=-m`.
type compositeEsc struct {
	verdict  escVerdict
	pos      token.Pos
	truthPos token.Pos
	kind     string // "slice", "map", "addr"; "" when silent
}

// compositeVerdict is the single escape judgment for composite literals,
// shared by the analyzer (checkHotComposite reports its escHeap verdicts)
// and by the compiler ground-truth diff (escape_truth_test.go), so the
// contract the CI step checks is exactly the judgment the analyzer ships:
// slice and map literals carry a backing allocation (except a slice
// literal ranged over in place, which the compiler keeps on the stack);
// struct and array literals allocate only when their address is taken, so
// plain value copies like `*op = operand{…}` stay silent.
func compositeVerdict(info *types.Info, parent ast.Node, lit *ast.CompositeLit) compositeEsc {
	t := info.TypeOf(lit)
	if t == nil {
		return compositeEsc{verdict: escSilent, pos: lit.Pos(), truthPos: lit.Lbrace}
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice:
		if rs, ok := parent.(*ast.RangeStmt); ok && ast.Unparen(rs.X) == ast.Expr(lit) {
			return compositeEsc{verdict: escStack, pos: lit.Pos(), truthPos: lit.Lbrace, kind: "slice"}
		}
		return compositeEsc{verdict: escHeap, pos: lit.Pos(), truthPos: lit.Lbrace, kind: "slice"}
	case *types.Map:
		return compositeEsc{verdict: escHeap, pos: lit.Pos(), truthPos: lit.Lbrace, kind: "map"}
	case *types.Struct, *types.Array:
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			return compositeEsc{verdict: escHeap, pos: u.Pos(), truthPos: u.Pos(), kind: "addr"}
		}
	}
	return compositeEsc{verdict: escSilent, pos: lit.Pos(), truthPos: lit.Lbrace}
}

// checkHotComposite reports the composite literals compositeVerdict judges
// heap-bound.
func checkHotComposite(pass *Pass, n *hotNode, stack []ast.Node, lit *ast.CompositeLit) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	v := compositeVerdict(n.pkg.Info, parent, lit)
	if v.verdict != escHeap {
		return
	}
	switch v.kind {
	case "slice":
		pass.Reportf(v.pos,
			"hot path (%s): slice literal allocates its backing array per cycle", n.chain)
	case "map":
		pass.Reportf(v.pos,
			"hot path (%s): map literal allocates per cycle", n.chain)
	case "addr":
		pass.Reportf(v.pos,
			"hot path (%s): &%s{…} escapes to the heap per cycle; reuse a field on the machine", n.chain, compositeTypeName(n.pkg.Info.TypeOf(lit)))
	}
}

func compositeTypeName(t types.Type) string {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// isCallFun reports whether e is the function operand of its enclosing
// call (m.tick(w): the selector m.tick is a call, not a method value).
func isCallFun(stack []ast.Node, e ast.Expr) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == ast.Unparen(e)
}

// builtinName names the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
