package analysis

import (
	"go/ast"
	"go/types"
)

// HotBox proves the dispatch-shape contract of the measurement loop: the
// hot path must not box values into interfaces, call through fmt, or
// touch maps. These are the shapes that cost indirect dispatch and
// allocation the paper's cycle attribution cannot see — a map lookup in
// the opcode dispatch would put Go's hash probe inside every "microcycle"
// while the histogram keeps claiming the cycle went to the VAX. Flagged,
// each with the call chain from the stepping root:
//
//   - fmt.* calls (reflection-driven formatting per cycle);
//   - explicit conversions of concrete non-pointer values to interface
//     types, and implicit ones at call arguments and assignments
//     (pointers ride in the interface word without allocating and stay
//     silent; a call whose static callee is a pruned cold function is a
//     cold site and its arguments are not judged);
//   - map iteration (nondeterministic order — also a determinism hazard)
//     and map indexing in the tick path.
//
// HotBox shares the hot set — and the //vaxlint:allow hotpath cold-slice
// pruning — with HotPath (hotset.go); per-line suppressions use its own
// name: //vaxlint:allow hotbox -- <reason>.
var HotBox = &Analyzer{
	Name:        "hotbox",
	Doc:         "no interface boxing, fmt calls, or map traffic reachable from Machine.Step*/Run",
	ModuleLevel: true,
	Run:         runHotBox,
}

func runHotBox(pass *Pass) error {
	hs := buildHotSet(pass)
	for _, n := range hs.nodes {
		hs.scanHot(n, func(stack []ast.Node, node ast.Node) bool {
			checkHotBox(pass, n, node)
			return true
		})
	}
	return nil
}

func checkHotBox(pass *Pass, n *hotNode, node ast.Node) {
	info := n.pkg.Info
	switch x := node.(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 && boxes(tv.Type, info.TypeOf(x.Args[0])) {
				pass.Reportf(x.Pos(),
					"hot path (%s): conversion boxes %s into %s per cycle", n.chain,
					typeName(info.TypeOf(x.Args[0])), typeName(tv.Type))
			}
			return
		}
		fn := Callee(info, x)
		if fn == nil {
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(x.Pos(),
				"hot path (%s): fmt.%s formats through reflection per cycle", n.chain, fn.Name())
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i, arg := range x.Args {
			pt := paramType(sig, i)
			if pt != nil && boxes(pt, info.TypeOf(arg)) {
				pass.Reportf(arg.Pos(),
					"hot path (%s): argument boxes %s into %s per cycle in the call to %s",
					n.chain, typeName(info.TypeOf(arg)), typeName(pt), fn.Name())
			}
		}
	case *ast.AssignStmt:
		if len(x.Lhs) != len(x.Rhs) {
			return
		}
		for i, lhs := range x.Lhs {
			lt := info.TypeOf(lhs)
			if lt != nil && boxes(lt, info.TypeOf(x.Rhs[i])) {
				pass.Reportf(x.Rhs[i].Pos(),
					"hot path (%s): assignment boxes %s into %s per cycle",
					n.chain, typeName(info.TypeOf(x.Rhs[i])), typeName(lt))
			}
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(x.X); t != nil {
			if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
				pass.Reportf(x.Pos(),
					"hot path (%s): map iteration per cycle (nondeterministic order, hash-probe cost)", n.chain)
			}
		}
	case *ast.IndexExpr:
		if t := info.TypeOf(x.X); t != nil {
			if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
				pass.Reportf(x.Pos(),
					"hot path (%s): map lookup per cycle; replace with a dense table", n.chain)
			}
		}
	}
}

// boxes reports whether storing a value of type src into a location of
// type dst boxes: dst is an interface, src is a concrete non-pointer
// type. Pointers (and nil, whose type is untyped) fit in the interface
// word without allocating; interface-to-interface copies do not box.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if !types.IsInterface(dst.Underlying()) {
		return false
	}
	if types.IsInterface(src.Underlying()) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false // nil, untyped constants: no runtime value to box here
	}
	if _, ok := src.Underlying().(*types.Pointer); ok {
		return false
	}
	return true
}

func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj() != nil {
		if named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
