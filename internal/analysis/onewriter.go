package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// OneWriter generalizes probesafe's single-writer rule to the farm: a
// struct field written from a spawned goroutine (a worker's local
// histograms, its outcome counters) is goroutine-owned, and no other
// goroutine may touch it — read or write — until a barrier proves the
// owner is done. Concretely, every access to an owned field from
// non-spawned code must be one of:
//
//   - construction: a composite-literal key, or any access through a
//     local freshly built in a function that spawns nothing — the value
//     has not been published yet;
//   - pre-spawn: in a spawning function, an access no `go` statement
//     can reach (CFG order) — still single-threaded;
//   - post-barrier: an access a WaitGroup.Wait in the same function
//     provably precedes (CFG order), or — one call level out — in a
//     function whose every static call site sits after such a Wait,
//     which is exactly the farm's merge-after-drain shape.
//
// Everything else is a report: the access races the owning goroutine,
// whether or not the soak's interleavings ever exhibit it. Fields that
// carry their own synchronization (channels, contexts, sync and
// sync/atomic types) are exempt; handoffs synchronized by channel
// send/recv pairs are real synchronization the model cannot see and
// take a justified //vaxlint:allow onewriter.
var OneWriter = &Analyzer{
	Name:        "onewriter",
	Doc:         "goroutine-owned fields are touched by other goroutines only across a Wait barrier",
	ModuleLevel: true,
	Run:         runOneWriter,
}

func runOneWriter(pass *Pass) error {
	for _, pkg := range pass.All {
		oneWriterPkg(pass, pkg)
	}
	return nil
}

// ownAccess is one syntactic touch of a package-declared struct field.
type ownAccess struct {
	field *types.Var
	pos   token.Pos
	write bool
	node  ast.Node    // enclosing function node
	decl  *types.Func // enclosing declaration
	stmt  ast.Stmt
	root  *types.Var // base variable of the selector chain, if any
	spawned bool
}

// ownSite is a spawn / Wait / call statement located for CFG queries.
type ownSite struct {
	node ast.Node
	stmt ast.Stmt
}

type ownModel struct {
	pass    *Pass
	pkg     *Package
	spawned map[ast.Node]bool

	accesses []ownAccess
	spawns   map[ast.Node][]ownSite   // per function node: go statements
	waits    map[ast.Node][]ownSite   // per function node: WaitGroup.Wait sites
	calls    map[*types.Func][]ownSite // per package function: its static call sites
	fresh    map[ast.Node]map[*types.Var]bool // per function node: composite-built locals

	writtenSel map[ast.Expr]bool // selectors already recorded as writes
	cfgs       map[ast.Node]*cfgIndex
}

func oneWriterPkg(pass *Pass, pkg *Package) {
	m := &ownModel{
		pass:       pass,
		pkg:        pkg,
		spawned:    spawnedFuncs(pkg),
		spawns:     make(map[ast.Node][]ownSite),
		waits:      make(map[ast.Node][]ownSite),
		calls:      make(map[*types.Func][]ownSite),
		fresh:      make(map[ast.Node]map[*types.Var]bool),
		writtenSel: make(map[ast.Expr]bool),
		cfgs:       make(map[ast.Node]*cfgIndex),
	}
	WalkWithStack(pkg, m.node)
	m.check()
}

func (m *ownModel) node(stack []ast.Node, n ast.Node) {
	switch n := n.(type) {
	case *ast.GoStmt:
		fn := enclosingFuncNode(stack)
		m.spawns[fn] = append(m.spawns[fn], ownSite{node: fn, stmt: n})

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			m.markWrite(stack, n, lhs)
		}
		// A local built from a composite literal is unpublished until it
		// flows somewhere; record it for the construction exemption.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if !isCompositeBuilt(n.Rhs[i]) {
					continue
				}
				v, ok := m.pkg.Info.Defs[id].(*types.Var)
				if !ok {
					if v, ok = m.pkg.Info.Uses[id].(*types.Var); !ok {
						continue
					}
				}
				fn := enclosingFuncNode(stack)
				if m.fresh[fn] == nil {
					m.fresh[fn] = make(map[*types.Var]bool)
				}
				m.fresh[fn][v] = true
			}
		}

	case *ast.IncDecStmt:
		m.markWrite(stack, n, n.X)

	case *ast.CallExpr:
		info := m.pkg.Info
		if isWaitGroupWait(info, n) {
			fn := enclosingFuncNode(stack)
			m.waits[fn] = append(m.waits[fn], ownSite{node: fn, stmt: enclosingBlockStmt(stack, n)})
		}
		// A method call through a field-rooted receiver may mutate it
		// (w.local[i].Add(h)): treat the root field as written.
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := info.Uses[sel.Sel].(*types.Func); isMethod {
				m.markWrite(stack, n, sel.X)
			}
		}
		if fn := Callee(info, n); fn != nil && fn.Pkg() == m.pkg.Types {
			node := enclosingFuncNode(stack)
			m.calls[fn] = append(m.calls[fn], ownSite{node: node, stmt: enclosingBlockStmt(stack, n)})
		}

	case *ast.SelectorExpr:
		if m.writtenSel[n] {
			return
		}
		m.record(stack, n, n, false)
	}
}

// markWrite peels index/star/paren wrappers off an assignment target (or
// method receiver) and records the underlying field selector as a write.
func (m *ownModel) markWrite(stack []ast.Node, at ast.Node, target ast.Expr) {
	e := ast.Unparen(target)
	for {
		switch w := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(w.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(w.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(w.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	m.writtenSel[sel] = true
	m.record(stack, at, sel, true)
}

// record captures one field access, if the selector resolves to a
// non-exempt struct field declared in this package.
func (m *ownModel) record(stack []ast.Node, at ast.Node, sel *ast.SelectorExpr, write bool) {
	v, ok := m.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() != m.pkg.Types || concSyncExempt(v.Type()) {
		return
	}
	node := enclosingFuncNode(stack)
	m.accesses = append(m.accesses, ownAccess{
		field:   v,
		pos:     sel.Sel.Pos(),
		write:   write,
		node:    node,
		decl:    protEnclosingDecl(m.pkg, stack),
		stmt:    enclosingBlockStmt(stack, at),
		root:    chainRoot(m.pkg.Info, sel),
		spawned: m.spawned[node],
	})
}

// chainRoot returns the variable at the base of a selector chain
// (w in w.local[i].n), or nil when the base is not a plain variable.
func chainRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

func (m *ownModel) cfgOf(node ast.Node) *cfgIndex {
	if ix, ok := m.cfgs[node]; ok {
		return ix
	}
	body := funcNodeBody(node)
	if body == nil {
		return nil
	}
	ix := indexCFG(BuildCFG(body))
	m.cfgs[node] = ix
	return ix
}

// siteLoc locates a recorded site in its function's CFG.
func (m *ownModel) siteLoc(node ast.Node, stmt ast.Stmt) (*Block, int, bool) {
	ix := m.cfgOf(node)
	if ix == nil || stmt == nil {
		return nil, 0, false
	}
	if b, ok := ix.blk[stmt]; ok {
		return b, ix.ord[stmt], true
	}
	return nil, 0, false
}

func (m *ownModel) check() {
	owned := make(map[*types.Var]bool)
	for _, a := range m.accesses {
		if a.spawned && a.write {
			owned[a.field] = true
		}
	}
	if len(owned) == 0 {
		return
	}

	reportedLine := make(map[string]bool)
	for _, a := range m.accesses {
		if !owned[a.field] || a.spawned {
			continue
		}
		if m.exemptAccess(a) {
			continue
		}
		p := m.pass.Fset.Position(a.pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		if reportedLine[key] {
			continue
		}
		reportedLine[key] = true
		verb := "read"
		if a.write {
			verb = "write"
		}
		m.pass.Reportf(a.pos,
			"field %s is written from a spawned goroutine; this %s outside it has no Wait barrier between the spawn and here (move it after wg.Wait/the merge, or //vaxlint:allow onewriter)",
			a.field.Name(), verb)
	}
}

// exemptAccess applies the construction / pre-spawn / post-barrier rules.
func (m *ownModel) exemptAccess(a ownAccess) bool {
	ix := m.cfgOf(a.node)
	ablk, aord, aok := m.siteLoc(a.node, a.stmt)
	spawns := m.spawns[a.node]

	// Construction: through a fresh local in a function that spawns
	// nothing — the struct is not published yet.
	if len(spawns) == 0 && a.root != nil && m.fresh[a.node][a.root] {
		return true
	}

	// Pre-spawn: no `go` statement in this function can reach the access.
	if len(spawns) > 0 && aok && ix != nil {
		before := true
		for _, s := range spawns {
			sblk, sord, sok := m.siteLoc(s.node, s.stmt)
			if !sok || ix.ordered(sblk, sord, ablk, aord) {
				before = false
				break
			}
		}
		if before {
			return true
		}
	}

	// Post-barrier, same function: a Wait provably precedes the access.
	if aok {
		for _, w := range m.waits[a.node] {
			wblk, word, wok := m.siteLoc(w.node, w.stmt)
			if wok && ix.ordered(wblk, word, ablk, aord) {
				return true
			}
		}
	}

	// Post-barrier, one call level out: every static call site of the
	// enclosing function sits after a Wait in its caller — the farm's
	// merge-after-drain shape.
	if a.decl != nil && len(spawns) == 0 {
		sites := m.calls[a.decl]
		if len(sites) > 0 {
			all := true
			for _, cs := range sites {
				cblk, cord, cok := m.siteLoc(cs.node, cs.stmt)
				if !cok {
					all = false
					break
				}
				cix := m.cfgOf(cs.node)
				after := false
				for _, w := range m.waits[cs.node] {
					wblk, word, wok := m.siteLoc(w.node, w.stmt)
					if wok && cix.ordered(wblk, word, cblk, cord) {
						after = true
						break
					}
				}
				if !after {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
	}
	return false
}

// isCompositeBuilt reports whether e is T{...} or &T{...}.
func isCompositeBuilt(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}
