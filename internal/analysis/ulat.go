package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vax780/internal/latency"
)

// ULat is the static half of the latency oracle (DESIGN.md §16): for
// every opcode registered in the exec tables it resolves the registered
// handler expression to its microroutine closure — through local
// variables, factory calls with constant arguments, and factories
// returned by factories — and walks the closure's CFG (the µflow model
// of cfg.go/dataflow.go/uwmodel.go), deriving per-ucode.Class bounds on
// the execute-phase cycles the routine can count. Data-dependent loops
// (string, decimal, field scans, register-mask pushes) are detected via
// SCC condensation of the CFG and annotated with their loop variable
// rather than reported as unbounded. The derivation is emitted by
// cmd/vaxlat as the committed LATENCY.md + latency.json regression
// oracle; the analyzer itself reports what makes an opcode's bounds
// underivable — an unresolvable handler, a tick count that is neither
// constant nor inside a loop, a microword operand that resolves to no
// handle — plus any counted microword whose row disagrees with the
// opcode's registered Table 8 row.
var ULat = &Analyzer{
	Name:        "ulat",
	Doc:         "derive static per-opcode latency bounds and check counted rows against the Table 8 registration",
	ModuleLevel: true,
	Run:         runULat,
}

func runULat(pass *Pass) error {
	deriveULat(pass)
	return nil
}

// DeriveLatencyTable runs the ulat derivation over an already-loaded
// module and returns the table alongside the findings the analyzer
// would report. It is the entry point for cmd/vaxlat and the
// latency-truth test; pkgs must share one FileSet (LoadModule and
// LoadTestdataPackages both guarantee this).
func DeriveLatencyTable(pkgs []*Package) (*latency.Table, []Diagnostic, error) {
	if len(pkgs) == 0 {
		return &latency.Table{Version: latency.Version}, nil, nil
	}
	fset := pkgs[0].Fset
	for _, pkg := range pkgs[1:] {
		if pkg.Fset != fset {
			return nil, nil, fmt.Errorf("ulat: packages with distinct FileSets")
		}
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: ULat, Fset: fset, All: pkgs, diags: &diags, allows: buildAllowIndex(pkgs)}
	tab := deriveULat(pass)
	return tab, diags, nil
}

// ulatPrunedRows are service rows whose cycles are excluded from both
// sides of the oracle: memory-management overhead, interrupt/exception
// delivery and the patch-ROM abort are environment costs, not the
// opcode's own, and the dynamic harness drives each opcode under
// conditions (physical addressing, aligned operands, no pending
// interrupts) where they cannot fire.
var ulatPrunedRows = map[string]bool{
	"RowMemMgmt":   true,
	"RowIntExcept": true,
	"RowAbort":     true,
}

// ulatSharedRows may appear in any opcode's word set regardless of its
// Table 8 row: register result stores and memory write-backs are
// specifier-row cycles by the paper's accounting, and taken branches
// dispatch through the BDISP row.
var ulatSharedRows = map[string]bool{
	"RowSpec1":  true,
	"RowSpec26": true,
	"RowBDisp":  true,
}

// ulatGroupRow maps an opTable group constant name to its Table 8
// execute row (the name-space mirror of core/reduce.go execRowOf).
var ulatGroupRow = map[string]string{
	"GroupSimple":    "RowSimple",
	"GroupField":     "RowField",
	"GroupFloat":     "RowFloat",
	"GroupCallRet":   "RowCallRet",
	"GroupSystem":    "RowSystem",
	"GroupCharacter": "RowCharacter",
	"GroupDecimal":   "RowDecimal",
}

// latSubst is the constant/word substitution in force while walking one
// function: factory and helper parameters bound to the values their
// call site passed.
type latSubst struct {
	consts map[types.Object]int64
	words  map[types.Object]valueSet
}

func newLatSubst() *latSubst {
	return &latSubst{consts: make(map[types.Object]int64), words: make(map[types.Object]valueSet)}
}

// latNote is one derivability problem found during a walk.
type latNote struct {
	pos token.Pos
	msg string
}

// latCost is the derived cost of one body (or one straight-line block):
// per-class bounds with loops excluded, loop terms, the perturbation
// fingerprint, and the contributing exec-channel words.
type latCost struct {
	lo, hi map[string]uint64
	sum    map[string]uint64
	loops  []latency.LoopTerm
	words  map[string]bool
	rows   map[string]bool // rows of contributing words, word name → row
	wrow   map[string]string
	scaled bool
	notes  []latNote
}

func newLatCost() *latCost {
	return &latCost{
		lo: make(map[string]uint64), hi: make(map[string]uint64),
		sum: make(map[string]uint64), words: make(map[string]bool),
		rows: make(map[string]bool), wrow: make(map[string]string),
	}
}

// addSeq composes c with a child cost executed unconditionally in
// sequence (bounds add; loops, words and notes union).
func (c *latCost) addSeq(o *latCost) {
	for k, v := range o.lo {
		c.lo[k] += v
	}
	for k, v := range o.hi {
		c.hi[k] += v
	}
	c.absorb(o)
}

// absorb merges everything but the path bounds.
func (c *latCost) absorb(o *latCost) {
	for k, v := range o.sum {
		c.sum[k] += v
	}
	c.loops = append(c.loops, o.loops...)
	for w := range o.words {
		c.words[w] = true
	}
	for r := range o.rows {
		c.rows[r] = true
	}
	for w, r := range o.wrow {
		c.wrow[w] = r
	}
	c.scaled = c.scaled || o.scaled
	c.notes = append(c.notes, o.notes...)
}

// resolvedFn is a handler expression resolved to a walkable body: its
// flow, the substitution its free parameters carry, and the lexical
// scope chain (innermost first) for resolving calls to locally assigned
// closures.
type resolvedFn struct {
	flow   *funcFlow
	sub    *latSubst
	scopes []*ast.BlockStmt
}

// latWalker derives costs over the µflow model.
type latWalker struct {
	m       *uwModel
	active  map[*funcFlow]bool
	svcMemo map[*types.Func]bool
	depth   int
}

const latMaxDepth = 24

// ---------------------------------------------------------------------------
// Handler resolution

// resolveFn resolves a handler-valued expression to a function body.
// It understands the registration shapes of the exec files: a direct
// closure literal, a named function, a local variable assigned either
// of those, and a factory call — a function (declared or itself a
// local closure) whose body returns the closure, with the factory's
// constant arguments folded into the substitution so tick counts like
// fpCost(cost) and 2*n resolve inside the returned body.
func (w *latWalker) resolveFn(pkg *Package, sub *latSubst, scopes []*ast.BlockStmt, e ast.Expr) *resolvedFn {
	if w.depth > latMaxDepth {
		return nil
	}
	w.depth++
	defer func() { w.depth-- }()

	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		flow := w.m.litFlows[x]
		if flow == nil {
			return nil
		}
		return &resolvedFn{flow: flow, sub: sub, scopes: append([]*ast.BlockStmt{x.Body}, scopes...)}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		switch obj := obj.(type) {
		case *types.Func:
			return w.declaredFn(obj)
		case *types.Var:
			if rhs, rscopes := localInitExpr(pkg, scopes, obj); rhs != nil {
				return w.resolveFn(pkg, sub, rscopes, rhs)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return w.declaredFn(fn)
		}
	case *ast.CallExpr:
		// A type conversion is transparent.
		if len(x.Args) == 1 {
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				return w.resolveFn(pkg, sub, scopes, x.Args[0])
			}
		}
		factory := w.resolveFn(pkg, sub, scopes, x.Fun)
		if factory == nil || factory.flow == nil {
			return nil
		}
		ret := returnedExpr(factory.scopes[0])
		if ret == nil {
			return nil
		}
		fsub := newLatSubst()
		params := paramsInOrder(factory.flow)
		for i, p := range params {
			if i >= len(x.Args) {
				break
			}
			if v, ok := w.constInt(pkg, sub, x.Args[i], nil); ok {
				fsub.consts[p] = v
			}
			if vs := w.argWords(pkg, sub, scopes, x.Args[i]); !vs.empty() {
				fsub.words[p] = vs
			}
		}
		return w.resolveFn(factory.flow.pkg, fsub, factory.scopes, ret)
	}
	return nil
}

func (w *latWalker) declaredFn(fn *types.Func) *resolvedFn {
	flow := w.m.flows[fn]
	if flow == nil || flow.fd.Decl == nil || flow.fd.Decl.Body == nil {
		return nil
	}
	return &resolvedFn{flow: flow, sub: newLatSubst(), scopes: []*ast.BlockStmt{flow.fd.Decl.Body}}
}

// paramsInOrder inverts a flow's paramIdx map.
func paramsInOrder(flow *funcFlow) []*types.Var {
	out := make([]*types.Var, flow.nparams)
	for p, i := range flow.paramIdx {
		if i >= 0 && i < len(out) {
			out[i] = p
		}
	}
	return out
}

// returnedExpr finds the single expression a factory body returns,
// skipping nested literals (their returns belong to the closure, not
// the factory).
func returnedExpr(body *ast.BlockStmt) ast.Expr {
	var ret ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 && ret == nil {
			ret = r.Results[0]
		}
		return true
	})
	return ret
}

// localInitExpr finds the expression a local variable was initialized
// with, searching the scope chain innermost first; the returned scope
// slice starts at the scope holding the assignment.
func localInitExpr(pkg *Package, scopes []*ast.BlockStmt, v *types.Var) (ast.Expr, []*ast.BlockStmt) {
	for si, scope := range scopes {
		var found ast.Expr
		ast.Inspect(scope, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj == v {
						found = n.Rhs[i]
						return false
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if pkg.Info.Defs[name] == v && i < len(n.Values) {
						found = n.Values[i]
						return false
					}
				}
			}
			return true
		})
		if found != nil {
			return found, scopes[si:]
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Constant folding and word resolution

// constInt folds an expression to a constant integer under the current
// substitution. Beyond what go/types folds it handles parameters bound
// to factory constants, arithmetic over them, transparent conversions,
// and Machine.fpCost — folded at its FPA-present value with the cost
// marked configuration-scaled on bc.
func (w *latWalker) constInt(pkg *Package, sub *latSubst, e ast.Expr, bc *latCost) (int64, bool) {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return v, true
		}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			if v, ok := sub.consts[obj]; ok {
				return v, true
			}
		}
	case *ast.BinaryExpr:
		a, oka := w.constInt(pkg, sub, x.X, bc)
		b, okb := w.constInt(pkg, sub, x.Y, bc)
		if oka && okb {
			switch x.Op {
			case token.ADD:
				return a + b, true
			case token.SUB:
				return a - b, true
			case token.MUL:
				return a * b, true
			case token.QUO:
				if b != 0 {
					return a / b, true
				}
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			if v, ok := w.constInt(pkg, sub, x.X, bc); ok {
				return -v, true
			}
		}
	case *ast.CallExpr:
		if len(x.Args) == 1 {
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				return w.constInt(pkg, sub, x.Args[0], bc)
			}
			if fn := Callee(pkg.Info, x); fn != nil && fn.Name() == "fpCost" {
				if v, ok := w.constInt(pkg, sub, x.Args[0], bc); ok {
					if bc != nil {
						bc.scaled = true
					}
					return v, true
				}
			}
		}
	}
	return 0, false
}

// argWords evaluates an expression's possible microword handles with no
// flow environment (package-level bindings and field selectors resolve
// statically; substituted parameters resolve through sub).
func (w *latWalker) argWords(pkg *Package, sub *latSubst, scopes []*ast.BlockStmt, e ast.Expr) valueSet {
	tmp := &funcFlow{pkg: pkg, paramIdx: make(map[*types.Var]int)}
	return w.expandParams(sub, w.m.eval(tmp, make(env), e))
}

// expandParams rewrites parameter aliases in a valueSet through the
// substitution, leaving a handle-only set.
func (w *latWalker) expandParams(sub *latSubst, vs valueSet) valueSet {
	var out valueSet
	for i := range vs.handles {
		out.addHandle(i)
	}
	for p := range vs.params {
		if pv, ok := sub.words[p]; ok {
			for i := range pv.handles {
				out.addHandle(i)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// The walk

// walk derives the cost of one resolved body: per-block contributions,
// SCC condensation for loops, then per-class shortest/longest path over
// the condensed DAG.
func (w *latWalker) walk(r *resolvedFn) *latCost {
	res := newLatCost()
	flow := r.flow
	if flow == nil || flow.cfg == nil {
		return res
	}
	if w.active[flow] {
		res.notes = append(res.notes, latNote{flowPos(flow), "recursive microroutine helper; latency bounds underivable"})
		return res
	}
	if w.depth > latMaxDepth {
		return res
	}
	w.active[flow] = true
	w.depth++
	defer func() { delete(w.active, flow); w.depth-- }()

	spans := collectLoopSpans(flow.pkg, r.scopes[0])

	nb := len(flow.cfg.Blocks)
	blockCost := make([]*latCost, nb)
	firstCount := make([]token.Pos, nb)
	for _, blk := range flow.cfg.Blocks {
		bc := newLatCost()
		cur := make(env)
		if blk.Index < len(flow.blockIn) && flow.blockIn[blk.Index] != nil {
			cur = flow.blockIn[blk.Index].clone()
		}
		for _, s := range blk.Stmts {
			w.stmtCost(r, cur, s, bc, &firstCount[blk.Index])
			w.m.transfer(flow, cur, s)
		}
		blockCost[blk.Index] = bc
	}

	comp, compLoop := ulatSCC(flow.cfg)
	ncomp := 0
	for _, c := range comp {
		if c+1 > ncomp {
			ncomp = c + 1
		}
	}

	// Reachability from the entry block, over components.
	preds := make([]map[int]bool, ncomp)
	for i := range preds {
		preds[i] = make(map[int]bool)
	}
	for _, blk := range flow.cfg.Blocks {
		for _, s := range blk.Succs {
			if comp[blk.Index] != comp[s.Index] {
				preds[comp[s.Index]][comp[blk.Index]] = true
			}
		}
	}
	entry := comp[0]
	reach := make([]bool, ncomp)
	loD := make([]map[string]uint64, ncomp)
	hiD := make([]map[string]uint64, ncomp)

	// Per-component straight-line contribution (zero for loop
	// components: their cycles become loop terms below).
	contribLo := make([]map[string]uint64, ncomp)
	contribHi := make([]map[string]uint64, ncomp)
	for i := range contribLo {
		contribLo[i] = make(map[string]uint64)
		contribHi[i] = make(map[string]uint64)
	}
	loopBody := make([]map[string]uint64, ncomp)
	for _, blk := range flow.cfg.Blocks {
		c := comp[blk.Index]
		bc := blockCost[blk.Index]
		if compLoop[c] {
			if loopBody[c] == nil {
				loopBody[c] = make(map[string]uint64)
			}
			for k, v := range bc.hi {
				loopBody[c][k] += v
			}
		} else {
			for k, v := range bc.lo {
				contribLo[c][k] += v
			}
			for k, v := range bc.hi {
				contribHi[c][k] += v
			}
		}
	}

	// Tarjan numbers components in reverse topological order:
	// processing ids descending visits every predecessor first.
	for c := ncomp - 1; c >= 0; c-- {
		if c == entry {
			reach[c] = true
			loD[c] = copyCounts(contribLo[c])
			hiD[c] = copyCounts(contribHi[c])
			continue
		}
		var lo, hi map[string]uint64
		any := false
		for p := range preds[c] {
			if !reach[p] {
				continue
			}
			if !any {
				lo = copyCounts(loD[p])
				hi = copyCounts(hiD[p])
				any = true
				continue
			}
			lo = joinMin(lo, loD[p])
			hi = joinMax(hi, hiD[p])
		}
		if !any {
			continue
		}
		reach[c] = true
		for k, v := range contribLo[c] {
			lo[k] += v
		}
		for k, v := range contribHi[c] {
			hi[k] += v
		}
		loD[c] = lo
		hiD[c] = hi
	}

	// Merge reachable blocks' fingerprints, words, notes and child
	// loops; turn each reachable loop component into a loop term.
	termed := make([]bool, ncomp)
	for _, blk := range flow.cfg.Blocks {
		c := comp[blk.Index]
		if !reach[c] {
			continue
		}
		res.absorb(blockCost[blk.Index])
		if compLoop[c] && !termed[c] && len(loopBody[c]) > 0 {
			termed[c] = true
			pos := loopTermPos(flow, comp, c, firstCount)
			res.loops = append(res.loops, latency.LoopTerm{
				Var:     loopVarAt(spans, pos),
				Classes: copyCounts(loopBody[c]),
			})
		}
	}

	exitComp := comp[flow.cfg.Exit.Index]
	if reach[exitComp] {
		res.lo = loD[exitComp]
		res.hi = hiD[exitComp]
	} else {
		res.notes = append(res.notes, latNote{flowPos(flow), "exit is unreachable; latency bounds underivable"})
	}
	return res
}

func flowPos(flow *funcFlow) token.Pos {
	if flow.lit != nil {
		return flow.lit.Pos()
	}
	if flow.fd.Decl != nil {
		return flow.fd.Decl.Pos()
	}
	return token.NoPos
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinMin takes the per-class minimum of two path costs; a class absent
// from either map costs 0 on that path.
func joinMin(a, b map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range a {
		if bv, ok := b[k]; ok && bv < v {
			out[k] = bv
		} else if ok {
			out[k] = v
		}
		// absent in b: min is 0, leave out
	}
	return out
}

// joinMax takes the per-class maximum.
func joinMax(a, b map[string]uint64) map[string]uint64 {
	out := copyCounts(a)
	for k, v := range b {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// loopTermPos picks a representative position inside a loop component:
// the first counted contribution, else the first statement.
func loopTermPos(flow *funcFlow, comp []int, c int, firstCount []token.Pos) token.Pos {
	for _, blk := range flow.cfg.Blocks {
		if comp[blk.Index] == c && firstCount[blk.Index].IsValid() {
			return firstCount[blk.Index]
		}
	}
	for _, blk := range flow.cfg.Blocks {
		if comp[blk.Index] == c && len(blk.Stmts) > 0 {
			return blk.Stmts[0].Pos()
		}
	}
	return token.NoPos
}

// stmtCost accumulates the contributions of every call in one statement
// into bc, skipping nested closures (separate flows).
func (w *latWalker) stmtCost(r *resolvedFn, cur env, s ast.Stmt, bc *latCost, firstCount *token.Pos) {
	flow, sub := r.flow, r.sub
	pkg := flow.pkg
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := Callee(pkg.Info, call); fn != nil {
			if ch, wi, ok := channelOf(fn); ok {
				w.primCost(r, cur, call, ch, wi, fn.Name(), bc, firstCount)
				return true
			}
			if w.serviceOnly(fn) {
				return true
			}
			if w.countingReachable(fn) {
				child := w.m.flows[fn]
				if child == nil || child.fd.Decl == nil {
					bc.notes = append(bc.notes, latNote{call.Pos(), fmt.Sprintf("counting helper %s has no analyzable body", fn.Name())})
					return true
				}
				cres := w.walk(&resolvedFn{
					flow:   child,
					sub:    w.bindSub(r, cur, call, child),
					scopes: []*ast.BlockStmt{child.fd.Decl.Body},
				})
				bc.addSeq(cres)
			}
			return true
		}
		if ch, ok := probeChannelOf(pkg, call); ok {
			w.primCost(r, cur, call, ch, 0, "Count", bc, firstCount)
			return true
		}
		// A call through a local variable holding a closure (the
		// SVPCTX/LDPCTX store/load pattern, and factory-local helpers
		// like bbi's plain).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := localVarOf(pkg, id); ok {
				if rhs, rscopes := localInitExpr(pkg, r.scopes, v); rhs != nil {
					if target := w.resolveFn(pkg, sub, rscopes, rhs); target != nil && target.flow != flow {
						csub := w.bindSub(r, cur, call, target.flow)
						for o, vv := range target.sub.consts {
							csub.consts[o] = vv
						}
						for o, vv := range target.sub.words {
							if _, have := csub.words[o]; !have {
								csub.words[o] = vv
							}
						}
						bc.addSeq(w.walk(&resolvedFn{flow: target.flow, sub: csub, scopes: target.scopes}))
					}
				}
			}
		}
		return true
	})
}

func localVarOf(pkg *Package, id *ast.Ident) (*types.Var, bool) {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil, false
	}
	return v, true
}

// primCost records one counting-primitive call. Only the exec channel
// contributes to bounds: stall cycles are timing-dependent (and
// recorded on the stall channel), IB-stall ticks and folded markers are
// excluded from the execute-phase comparison by class.
func (w *latWalker) primCost(r *resolvedFn, cur env, call *ast.CallExpr, ch uwChannel, wi int, name string, bc *latCost, firstCount *token.Pos) {
	if ch != chExec {
		return
	}
	flow, sub := r.flow, r.sub
	if wi >= len(call.Args) {
		return
	}
	var n int64 = 1
	if name == "ticks" || name == "Count" {
		if wi+1 >= len(call.Args) {
			return
		}
		v, ok := w.constInt(flow.pkg, sub, call.Args[wi+1], bc)
		if !ok {
			bc.notes = append(bc.notes, latNote{call.Pos(), "tick count is not statically constant; latency bounds underivable"})
			return
		}
		n = v
	}
	if n <= 0 {
		return
	}
	vs := w.expandParams(sub, w.m.eval(flow, cur, call.Args[wi]))
	if len(vs.handles) == 0 {
		bc.notes = append(bc.notes, latNote{call.Pos(), "microword operand resolves to no control-store handle; latency bounds underivable"})
		return
	}
	idx := make([]int, 0, len(vs.handles))
	for i := range vs.handles {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	classes := make(map[string]bool)
	for _, i := range idx {
		h := w.m.handles[i]
		if ulatPrunedRows[h.Row] {
			continue
		}
		if h.Class == "ClassIBStall" || h.Class == "ClassMarker" {
			continue
		}
		if h.Class == "" {
			bc.notes = append(bc.notes, latNote{call.Pos(), fmt.Sprintf("microword %s has no statically known class; latency bounds underivable", h.Name)})
			continue
		}
		classes[h.Class] = true
		bc.words[h.Name] = true
		bc.rows[h.Row] = true
		bc.wrow[h.Name] = h.Row
	}
	if len(classes) == 0 {
		return
	}
	if !firstCount.IsValid() {
		*firstCount = call.Pos()
	}
	exact := len(classes) == 1
	for c := range classes {
		bc.hi[c] += uint64(n)
		bc.sum[c] += uint64(n)
		if exact {
			bc.lo[c] += uint64(n)
		}
	}
}

// bindSub builds the substitution for a helper call: each callee
// parameter bound to the constant and/or word set its argument carries
// at the call site.
func (w *latWalker) bindSub(r *resolvedFn, cur env, call *ast.CallExpr, child *funcFlow) *latSubst {
	flow, sub := r.flow, r.sub
	cs := newLatSubst()
	for i, p := range paramsInOrder(child) {
		if p == nil || i >= len(call.Args) {
			continue
		}
		if v, ok := w.constInt(flow.pkg, sub, call.Args[i], nil); ok {
			cs.consts[p] = v
		}
		if vs := w.expandParams(sub, w.m.eval(flow, cur, call.Args[i])); !vs.empty() {
			cs.words[p] = vs
		}
	}
	return cs
}

// serviceOnly reports whether every concrete microword fn touches —
// words it counts directly and words it hands to parameterized helpers
// — sits in a pruned service row (TB-miss service, exception delivery,
// alignment microcode). Such a helper contributes nothing to the oracle
// by the pruning policy, and not descending into it is what breaks the
// one genuine recursion in the model: dread → xlate → tbMissService →
// pageFault → deliverException → push32 → dwrite → xlate. Dynamically
// the harness never enters these routines (physical addressing, aligned
// operands, no faults), and even when an opcode's own semantics deliver
// an exception the cycles land on pruned-row words outside the opcode's
// attribution set, so skipping keeps both sides of the oracle aligned.
func (w *latWalker) serviceOnly(fn *types.Func) bool {
	if v, ok := w.svcMemo[fn]; ok {
		return v
	}
	w.svcMemo[fn] = false // recursion guard: resolve cycles to "descend"
	res := false
	if flow := w.m.flows[fn]; flow != nil {
		any, allPruned := false, true
		for _, site := range flow.sites {
			for _, vs := range site.args {
				for i := range vs.handles {
					h := w.m.handles[i]
					if h.Row == "" {
						continue
					}
					any = true
					if !ulatPrunedRows[h.Row] {
						allPruned = false
					}
				}
			}
		}
		res = any && allPruned
	}
	w.svcMemo[fn] = res
	return res
}

// countingReachable reports whether fn can transitively reach a
// counting primitive (including through closures declared in its body).
func (w *latWalker) countingReachable(fn *types.Func) bool {
	return w.countingRec(fn, make(map[*types.Func]bool))
}

func (w *latWalker) countingRec(fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	flow := w.m.flows[fn]
	if flow == nil {
		return false
	}
	if flowCounts(flow) {
		return true
	}
	for _, site := range flow.sites {
		if site.callee != nil {
			if _, _, ok := channelOf(site.callee); ok {
				return true
			}
			if w.countingRec(site.callee, seen) {
				return true
			}
		}
	}
	// Closures declared inside the body count for the body.
	if flow.fd.Decl != nil && flow.fd.Decl.Body != nil {
		counts := false
		ast.Inspect(flow.fd.Decl.Body, func(n ast.Node) bool {
			if counts {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				if lf := w.m.litFlows[lit]; lf != nil && flowCounts(lf) {
					counts = true
				}
			}
			return true
		})
		if counts {
			return true
		}
	}
	return false
}

func flowCounts(flow *funcFlow) bool {
	for _, site := range flow.sites {
		if site.callee != nil {
			if _, _, ok := channelOf(site.callee); ok {
				return true
			}
		} else if site.probeCh != "" {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Loop spans

type loopSpan struct {
	pos, end token.Pos
	name     string
}

// collectLoopSpans records every for/range statement of a body with the
// name of the variable(s) its condition scales on.
func collectLoopSpans(pkg *Package, body *ast.BlockStmt) []loopSpan {
	var spans []loopSpan
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			spans = append(spans, loopSpan{n.Pos(), n.End(), forCondVars(pkg, n.Cond)})
		case *ast.RangeStmt:
			spans = append(spans, loopSpan{n.Pos(), n.End(), rangeName(n.X)})
		}
		return true
	})
	return spans
}

func forCondVars(pkg *Package, cond ast.Expr) string {
	if cond == nil {
		return "data"
	}
	var names []string
	seen := make(map[string]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if v, ok := obj.(*types.Var); ok && !v.IsField() && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	if len(names) == 0 {
		return "data"
	}
	return strings.Join(names, ",")
}

func rangeName(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "range"
}

// loopVarAt names the innermost loop span containing pos.
func loopVarAt(spans []loopSpan, pos token.Pos) string {
	best := ""
	var bestSize token.Pos = -1
	for _, s := range spans {
		if pos < s.pos || pos >= s.end {
			continue
		}
		size := s.end - s.pos
		if bestSize < 0 || size < bestSize {
			bestSize = size
			best = s.name
		}
	}
	if best == "" {
		return "data"
	}
	return best
}

// ---------------------------------------------------------------------------
// General SCCs (iterative Tarjan; unlike concmodel's sccLoops this keeps
// every component, escapable or not — a string-copy loop with a break is
// still a loop for latency purposes)

func ulatSCC(cfg *CFG) (comp []int, isLoop []bool) {
	n := len(cfg.Blocks)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var compSizes []int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		var call []frame
		call = append(call, frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			blk := cfg.Blocks[f.v]
			if f.ei < len(blk.Succs) {
				wi := blk.Succs[f.ei].Index
				f.ei++
				if index[wi] == -1 {
					index[wi] = next
					low[wi] = next
					next++
					stack = append(stack, wi)
					onStack[wi] = true
					call = append(call, frame{wi, 0})
				} else if onStack[wi] && index[wi] < low[f.v] {
					low[f.v] = index[wi]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				id := len(compSizes)
				size := 0
				for {
					wv := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[wv] = false
					comp[wv] = id
					size++
					if wv == v {
						break
					}
				}
				compSizes = append(compSizes, size)
			}
		}
	}

	isLoop = make([]bool, len(compSizes))
	for i, sz := range compSizes {
		if sz > 1 {
			isLoop[i] = true
		}
	}
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			if s.Index == blk.Index {
				isLoop[comp[blk.Index]] = true
			}
		}
	}
	return comp, isLoop
}

// ---------------------------------------------------------------------------
// Registrations and the table

// latRegistration is one register() call with its handler expression.
type latRegistration struct {
	names   []string
	handler ast.Expr
	pkg     *Package
	scopes  []*ast.BlockStmt
	pos     token.Pos
}

func collectLatRegistrations(pkgs []*Package) []latRegistration {
	var out []latRegistration
	for _, pkg := range pkgs {
		pkg := pkg
		WalkWithStack(pkg, func(stack []ast.Node, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "register" || len(call.Args) < 2 {
				return
			}
			names, ok := resolveOpcodeArg(pkg, stack, call.Args[0])
			if !ok {
				return // exectable reports the unresolvable opcode argument
			}
			var scopes []*ast.BlockStmt
			for i := len(stack) - 1; i >= 0; i-- {
				switch s := stack[i].(type) {
				case *ast.FuncLit:
					scopes = append(scopes, s.Body)
				case *ast.FuncDecl:
					scopes = append(scopes, s.Body)
				}
			}
			out = append(out, latRegistration{
				names: names, handler: call.Args[1], pkg: pkg, scopes: scopes, pos: call.Pos(),
			})
		})
	}
	return out
}

// opTableGroups maps opcode names to their opTable group constant name
// (positional row form: {CODE, "NAME", GroupX, ...}).
func opTableGroups(pkgs []*Package) map[string]string {
	out := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "opTable" || len(vs.Values) != 1 {
					return true
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					return true
				}
				for _, elt := range cl.Elts {
					row, ok := elt.(*ast.CompositeLit)
					if !ok || len(row.Elts) < 3 {
						continue
					}
					name, ok := opcodeRefName(row.Elts[0])
					if !ok {
						continue
					}
					if group, ok := opcodeRefName(row.Elts[2]); ok {
						out[name] = group
					}
				}
				return false
			})
		}
	}
	return out
}

// deriveULat is the shared engine behind the analyzer and
// DeriveLatencyTable: derive every registered opcode's bounds, report
// findings through the pass, return the table.
func deriveULat(pass *Pass) *latency.Table {
	m := buildUWModel(pass, pass.All)
	w := &latWalker{m: m, active: make(map[*funcFlow]bool), svcMemo: make(map[*types.Func]bool)}
	groups := opTableGroups(pass.All)

	tab := &latency.Table{
		Version: latency.Version,
		Note: "static per-opcode execute-phase cycle bounds derived from the microroutines " +
			"(ulat analyzer, DESIGN.md §16); regenerate with `go run ./cmd/vaxlat`",
	}
	reported := make(map[string]bool)
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d|%s", pos, msg)
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, "%s", msg)
	}

	for _, reg := range collectLatRegistrations(pass.All) {
		label := strings.Join(reg.names, ",")
		if len(reg.names) > 3 {
			label = fmt.Sprintf("%s,… (%d opcodes)", reg.names[0], len(reg.names))
		}
		res := w.resolveFn(reg.pkg, newLatSubst(), reg.scopes, reg.handler)
		if res == nil {
			report(reg.pos, "opcode %s: handler expression cannot be resolved statically; latency bounds underivable", label)
			continue
		}
		cost := w.walk(res)
		for _, note := range cost.notes {
			report(note.pos, "opcode %s: %s", label, note.msg)
		}

		group := groups[reg.names[0]]
		row := ulatGroupRow[group]
		if row != "" {
			words := make([]string, 0, len(cost.wrow))
			for name := range cost.wrow {
				words = append(words, name)
			}
			sort.Strings(words)
			for _, name := range words {
				r := cost.wrow[name]
				if r != row && !ulatSharedRows[r] && r != "" {
					report(reg.pos, "opcode %s: microword %s (row %s) counted outside its Table 8 row %s", label, name, r, row)
				}
			}
		}

		for _, name := range reg.names {
			op := latency.Opcode{
				Name:    name,
				Group:   groups[name],
				Row:     ulatGroupRow[groups[name]],
				Classes: make(map[string]latency.Bound),
				Scaled:  cost.scaled,
			}
			for c := range union2(cost.lo, cost.hi) {
				op.Classes[c] = latency.Bound{Min: cost.lo[c], Max: cost.hi[c]}
			}
			if len(cost.sum) > 0 {
				op.Sum = copyCounts(cost.sum)
			}
			for _, l := range cost.loops {
				op.Loops = append(op.Loops, latency.LoopTerm{Var: l.Var, Classes: copyCounts(l.Classes)})
			}
			op.Words = make([]string, 0, len(cost.words))
			for word := range cost.words {
				op.Words = append(op.Words, word)
			}
			sort.Strings(op.Words)
			tab.Opcodes = append(tab.Opcodes, op)
		}
	}

	tab.Modes = deriveModes(w, pass.All)
	sort.Slice(tab.Opcodes, func(i, j int) bool { return tab.Opcodes[i].Name < tab.Opcodes[j].Name })
	return tab
}

func union2(a, b map[string]uint64) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// ---------------------------------------------------------------------------
// Addressing-mode table

// deriveModes derives the per-addressing-mode specifier costs by walking
// the arms of runSpecifier's mode and access switches (read access,
// longword operand): each mode row is one dispatch cycle plus its arm's
// cost plus — for modes that fall through to the access switch — the
// read-access cost. Absent when the load has no runSpecifier (fixtures).
func deriveModes(w *latWalker, pkgs []*Package) []latency.Mode {
	var pkg *Package
	var body *ast.BlockStmt
	for _, p := range pkgs {
		for _, fd := range PackageFuncs(p) {
			if fd.Obj != nil && fd.Obj.Name() == "runSpecifier" && fd.Decl.Body != nil {
				pkg, body = p, fd.Decl.Body
			}
		}
	}
	if body == nil {
		return nil
	}

	var modeSwitch, accessSwitch *ast.SwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		if sel, ok := sw.Tag.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Mode":
				if modeSwitch == nil {
					modeSwitch = sw
				}
			case "Access":
				if accessSwitch == nil {
					accessSwitch = sw
				}
			}
		}
		return true
	})
	if modeSwitch == nil || accessSwitch == nil {
		return nil
	}

	// The common dispatch cycle: m.tick(bank.dispatch[...]).
	dispatch := newLatCost()
	immExtra := newLatCost()
	ast.Inspect(body, func(n ast.Node) bool {
		if n == modeSwitch || n == accessSwitch {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := Callee(pkg.Info, call)
		if fn == nil || fn.Name() != "tick" || len(call.Args) != 1 {
			return true
		}
		switch arg := call.Args[0].(type) {
		case *ast.IndexExpr:
			if sel, ok := arg.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "dispatch" {
				w.syntheticStmtCost(pkg, &ast.ExprStmt{X: call}, dispatch)
			}
		case *ast.SelectorExpr:
			if arg.Sel.Name == "immExtra" {
				w.syntheticStmtCost(pkg, &ast.ExprStmt{X: call}, immExtra)
			}
		}
		return true
	})

	var readCost *latCost
	for _, clause := range accessSwitch.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := opcodeRefName(e); ok && name == "AccessRead" {
				readCost = w.walkSynthetic(pkg, cc.Body)
			}
		}
	}
	if readCost == nil {
		readCost = newLatCost()
	}

	var modes []latency.Mode
	for _, clause := range modeSwitch.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok || len(cc.List) == 0 {
			continue
		}
		arm := w.walkSynthetic(pkg, cc.Body)
		terminal := len(cc.Body) > 0
		if terminal {
			_, terminal = cc.Body[len(cc.Body)-1].(*ast.ReturnStmt)
		}
		total := newLatCost()
		total.addSeq(dispatch)
		total.addSeq(arm)
		if !terminal {
			total.addSeq(readCost)
		}
		for _, e := range cc.List {
			name, ok := opcodeRefName(e)
			if !ok {
				continue
			}
			row := latency.Mode{Mode: name, Classes: make(map[string]latency.Bound)}
			lo, hi := copyCounts(total.lo), copyCounts(total.hi)
			if name == "ModeImmediate" {
				// Wider-than-longword immediates take an extra dispatch
				// cycle; the row's Max admits it.
				for c, v := range immExtra.hi {
					hi[c] += v
				}
				for wd := range immExtra.words {
					total.words[wd] = true
				}
			}
			for c := range union2(lo, hi) {
				row.Classes[c] = latency.Bound{Min: lo[c], Max: hi[c]}
			}
			for wd := range total.words {
				row.Words = append(row.Words, wd)
			}
			sort.Strings(row.Words)
			modes = append(modes, row)
		}
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i].Mode < modes[j].Mode })
	return modes
}

// walkSynthetic derives the cost of a statement list outside any real
// flow (a switch arm of runSpecifier): word operands resolve through
// static field bindings, which is all the specifier path uses.
func (w *latWalker) walkSynthetic(pkg *Package, stmts []ast.Stmt) *latCost {
	body := &ast.BlockStmt{List: stmts}
	cfg := BuildCFG(body)
	flow := &funcFlow{pkg: pkg, cfg: cfg, paramIdx: make(map[*types.Var]int)}
	flow.blockIn = make([]env, len(cfg.Blocks))
	for i := range flow.blockIn {
		flow.blockIn[i] = make(env)
	}
	return w.walk(&resolvedFn{flow: flow, sub: newLatSubst(), scopes: []*ast.BlockStmt{body}})
}

// syntheticStmtCost costs a single synthetic statement.
func (w *latWalker) syntheticStmtCost(pkg *Package, s ast.Stmt, bc *latCost) {
	flow := &funcFlow{pkg: pkg, paramIdx: make(map[*types.Var]int)}
	r := &resolvedFn{flow: flow, sub: newLatSubst(), scopes: []*ast.BlockStmt{{List: []ast.Stmt{s}}}}
	var first token.Pos
	w.stmtCost(r, make(env), s, bc, &first)
	for k, v := range bc.hi {
		if bc.lo[k] < v {
			// single statement: exact
			bc.lo[k] = v
		}
	}
}
