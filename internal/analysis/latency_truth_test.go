package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"vax780/internal/latency"
)

// TestLatencyTruth re-derives the static latency table from the real
// module and demands the committed latency.json be byte-identical — the
// static half of the oracle's drift gate (the rendered LATENCY.md is
// diffed by `vaxlat -check` in CI and `make latency-truth`). A
// one-cycle change to any microroutine moves its bounds, fails this
// test, and forces the regenerated table into review; an opcode whose
// bounds stop being derivable is a finding and fails the same way.
func TestLatencyTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and re-derives the whole module")
	}
	root := moduleRootDir(t)
	pkgs, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	tab, diags, err := DeriveLatencyTable(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("derivation finding (underivable bounds make an invalid oracle): %s", d)
	}
	if len(tab.Opcodes) == 0 {
		t.Fatal("derivation produced an empty opcode table; the registration scan is broken")
	}

	want, err := tab.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(root, latency.File))
	if err != nil {
		t.Fatalf("committed table: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("committed %s drifted from the microroutines; regenerate with `go run ./cmd/vaxlat` and review the diff", latency.File)
	}
}
