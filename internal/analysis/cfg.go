package analysis

import (
	"go/ast"
	"go/token"
)

// Intraprocedural control-flow graphs over go/ast, the substrate of the
// µflow dataflow engine (dataflow.go). One CFG per function body; blocks
// hold statements in execution order and successor edges cover the
// structured control flow Go has: if/else, for/range (including break,
// continue, labels), switch (with fallthrough), type switch, select,
// goto, and return. Deferred statements are modeled by appending them, in
// reverse registration order, to the function's single exit block — that
// is where they run, and it keeps handle flows inside deferred calls
// visible to the fixed point without simulating the defer stack.
//
// Panic edges are not modeled: a statement that panics leaves the
// function abruptly, so treating execution as falling through to the
// next statement only ever *adds* paths. For the forward may-analysis
// built on top (which unions over paths) that is a sound
// over-approximation.

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry block
	Exit   *Block   // the single exit block; deferred stmts live here
}

// cfgBuilder carries the state of one CFG construction.
type cfgBuilder struct {
	cfg *CFG
	cur *Block // current block, nil when the flow is dead (after return/goto)

	// breakTo/continueTo are stacks of jump targets; label is "" for the
	// innermost unlabeled form.
	breaks    []jumpTarget
	continues []jumpTarget

	labels     map[string]*Block // goto/labeled-statement targets
	defers     []ast.Stmt        // deferred statements, registration order
	labelStack []labeledStmt     // labels waiting to be claimed by their statement
}

type jumpTarget struct {
	label string
	block *Block
}

// BuildCFG constructs the CFG of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*Block)}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.cur = entry
	b.stmtList(body.List)
	b.jumpTo(exit) // fall off the end of the body
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Stmts = append(exit.Stmts, b.defers[i])
	}
	// Entry must stay Blocks[0]; swap exit to the end for readability.
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jumpTo adds an edge cur→dst and kills the current flow.
func (b *cfgBuilder) jumpTo(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock begins dst as the new current block.
func (b *cfgBuilder) startBlock(dst *Block) { b.cur = dst }

// emit appends a statement to the current block, reviving dead flow into
// a fresh unreachable block so syntactically-dead code is still scanned
// (its env stays bottom, so it cannot create flow findings, but direct
// handle references in it still count for uwdead).
func (b *cfgBuilder) emit(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelTarget returns (creating on demand) the block a goto or labeled
// statement resolves to.
func (b *cfgBuilder) labelTarget(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(&ast.ExprStmt{X: s.Cond})
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.jumpTo(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jumpTo(after)
		} else {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := after // continue target; the post statement runs on the back edge
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jumpTo(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.emit(&ast.ExprStmt{X: s.Cond})
			head = b.cur
			head.Succs = append(head.Succs, after)
		}
		head = b.cur
		head.Succs = append(head.Succs, body)
		label := b.pendingLabel(s)
		contTo := head
		if s.Post != nil {
			contTo = post
		}
		b.pushLoop(label, after, contTo)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popLoop()
		if s.Post != nil {
			b.jumpTo(post)
			b.startBlock(post)
			b.emit(s.Post)
			b.jumpTo(head)
		} else {
			b.jumpTo(head)
		}
		// For a condition-less `for {}` there is no head→after edge: after
		// is reachable only via break.
		b.startBlock(after)

	case *ast.RangeStmt:
		b.emit(&ast.ExprStmt{X: s.X})
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jumpTo(head)
		head.Succs = append(head.Succs, body, after)
		label := b.pendingLabel(s)
		b.pushLoop(label, after, head)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popLoop()
		b.jumpTo(head)
		b.startBlock(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(&ast.ExprStmt{X: s.Tag})
		}
		b.switchBody(s, s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchBody(s, s.Body, false)

	case *ast.SelectStmt:
		b.switchBody(s, s.Body, true)

	case *ast.LabeledStmt:
		target := b.labelTarget(s.Label.Name)
		b.jumpTo(target)
		b.startBlock(target)
		// Loops and switches consume the label for break/continue targets.
		b.labelStack = append(b.labelStack, labeledStmt{s.Label.Name, s.Stmt})
		b.stmt(s.Stmt)
		b.labelStack = b.labelStack[:len(b.labelStack)-1]

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jumpTo(b.findTarget(b.breaks, s.Label))
		case token.CONTINUE:
			b.jumpTo(b.findTarget(b.continues, s.Label))
		case token.GOTO:
			b.jumpTo(b.labelTarget(s.Label.Name))
		case token.FALLTHROUGH:
			// Handled structurally in switchBody; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.emit(s)
		b.jumpTo(b.cfg.Exit)

	case *ast.DeferStmt:
		b.defers = append(b.defers, &ast.ExprStmt{X: s.Call})

	case *ast.GoStmt:
		b.emit(&ast.ExprStmt{X: s.Call})

	default:
		// Expression, assignment, declaration, send, inc/dec, empty.
		b.emit(s)
	}
}

// labeledStmt records a label waiting to be claimed by the loop or switch
// statement it labels.
type labeledStmt struct {
	name string
	stmt ast.Stmt
}

// labelStack is managed inside cfgBuilder via an embedded field (declared
// here to keep the struct definition above focused on the graph state).
func (b *cfgBuilder) pendingLabel(s ast.Stmt) string {
	if n := len(b.labelStack); n > 0 && b.labelStack[n-1].stmt == s {
		return b.labelStack[n-1].name
	}
	return ""
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, jumpTarget{"", brk})
	b.continues = append(b.continues, jumpTarget{"", cont})
	if label != "" {
		b.breaks = append(b.breaks, jumpTarget{label, brk})
		b.continues = append(b.continues, jumpTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = popTargets(b.breaks)
	b.continues = popTargets(b.continues)
}

// popTargets removes the innermost unlabeled target and, if the same
// block was also pushed under a label, that labeled alias too.
func popTargets(ts []jumpTarget) []jumpTarget {
	if n := len(ts); n >= 2 && ts[n-1].label != "" && ts[n-1].block == ts[n-2].block {
		return ts[:n-2]
	}
	return ts[:len(ts)-1]
}

func (b *cfgBuilder) findTarget(ts []jumpTarget, label *ast.Ident) *Block {
	if label != nil {
		for i := len(ts) - 1; i >= 0; i-- {
			if ts[i].label == label.Name {
				return ts[i].block
			}
		}
	}
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].label == "" {
			return ts[i].block
		}
	}
	// break/continue outside any loop cannot type-check; route to exit so
	// a malformed tree still yields a well-formed graph.
	return b.cfg.Exit
}

// switchBody lowers switch/type-switch/select clause lists: every clause
// is a block branching from the dispatch point, all clauses join after,
// fallthrough chains a case into the next one, and a missing default adds
// a dispatch→after edge — for switches only. A select without a default
// does not fall through: it blocks until an arm is ready, so its only
// edges go to its arms, and the degenerate empty select{} has no
// successor at all (everything after it is dead, which is exactly what
// goleak reports).
func (b *cfgBuilder) switchBody(s ast.Stmt, body *ast.BlockStmt, isSelect bool) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	after := b.newBlock()
	label := b.pendingLabel(s)
	b.breaks = append(b.breaks, jumpTarget{"", after})
	if label != "" {
		b.breaks = append(b.breaks, jumpTarget{label, after})
	}

	hasDefault := false
	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	for _, cs := range body.List {
		var stmts []ast.Stmt
		var exprs []ast.Expr
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts, exprs = cs.Body, cs.List
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm != nil {
				stmts = append([]ast.Stmt{cs.Comm}, stmts...)
			} else {
				hasDefault = true
			}
		default:
			continue
		}
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		// Case guard expressions are evaluated at the dispatch point.
		for _, e := range exprs {
			dispatch.Stmts = append(dispatch.Stmts, &ast.ExprStmt{X: e})
		}
		clauseBlocks = append(clauseBlocks, blk)
		clauseStmts = append(clauseStmts, stmts)
	}
	for i, blk := range clauseBlocks {
		b.startBlock(blk)
		b.stmtList(clauseStmts[i])
		if !isSelect && b.cur != nil && endsInFallthrough(clauseStmts[i]) && i+1 < len(clauseBlocks) {
			b.jumpTo(clauseBlocks[i+1])
		} else {
			b.jumpTo(after)
		}
	}
	if !isSelect && (!hasDefault || len(clauseBlocks) == 0) {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	b.breaks = popTargets(b.breaks)
	b.startBlock(after)
}

func endsInFallthrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// Reaches reports whether a path of at least one successor edge leads
// from src to dst. src == dst is true only when the block sits on a
// cycle; same-block ordering without a back edge is the caller's job
// (statement order decides it).
func (c *CFG) Reaches(src, dst *Block) bool {
	seen := make([]bool, len(c.Blocks))
	work := []*Block{src}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if s == dst {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return false
}
