package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StateComplete is the static twin of the checkpoint-completeness
// reflection tests (internal/checkpoint, internal/cpu): every field of a
// struct that has ExportState/ImportState methods must be referenced in
// both bodies, or carry a justified exemption on its declaration line:
//
//	probe Probe //vaxlint:allow statecomplete -- attachment; re-attached on resume
//
// The runtime tests catch a forgotten field only when they run and only
// because someone once wrote the table entry; this analyzer makes the
// same omission a build failure at the field declaration itself. A field
// counts as referenced when the method body selects it through the
// receiver (m.field, including as the base of a deeper selection like
// m.ib.ptr); capture routed through helper calls (the hardware counters
// travel via m.HW()) is exactly the indirection the analyzer cannot see,
// and gets an exemption naming the helper.
var StateComplete = &Analyzer{
	Name: "statecomplete",
	Doc:  "every field of an ExportState/ImportState struct is captured or exempted",
	Run:  runStateComplete,
}

func runStateComplete(pass *Pass) error {
	// Collect the ExportState/ImportState method bodies per named type.
	type bodies struct {
		export, imp *ast.FuncDecl
	}
	methods := make(map[*types.TypeName]*bodies)
	for _, fd := range PackageFuncs(pass.Pkg) {
		name := fd.Obj.Name()
		if name != "ExportState" && name != "ImportState" {
			continue
		}
		sig := fd.Obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		named := namedOf(sig.Recv().Type())
		if named == nil {
			continue
		}
		b := methods[named.Obj()]
		if b == nil {
			b = &bodies{}
			methods[named.Obj()] = b
		}
		if name == "ExportState" {
			b.export = fd.Decl
		} else {
			b.imp = fd.Decl
		}
	}

	for tn, b := range methods {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		inExport := receiverFieldRefs(pass, b.export)
		inImport := receiverFieldRefs(pass, b.imp)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			var missing []string
			if b.export != nil && !inExport[f.Name()] {
				missing = append(missing, "ExportState")
			}
			if b.imp != nil && !inImport[f.Name()] {
				missing = append(missing, "ImportState")
			}
			if len(missing) == 0 {
				continue
			}
			pass.Reportf(f.Pos(),
				"field %s.%s is not referenced in %s — the snapshot silently drops it; capture it or exempt it with //vaxlint:allow statecomplete -- <why it need not travel>",
				tn.Name(), f.Name(), strings.Join(missing, " or "))
		}
	}
	return nil
}

// receiverFieldRefs returns the set of receiver fields a method body
// selects (directly or as the base of a longer selection). Nil decl
// yields an empty set.
func receiverFieldRefs(pass *Pass, decl *ast.FuncDecl) map[string]bool {
	refs := make(map[string]bool)
	if decl == nil || decl.Body == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return refs
	}
	var recvObj types.Object
	if names := decl.Recv.List[0].Names; len(names) > 0 {
		recvObj = pass.Pkg.Info.Defs[names[0]]
	}
	if recvObj == nil {
		return refs
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[base] != recvObj {
			return true
		}
		if s, ok := pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			refs[sel.Sel.Name] = true
		}
		return true
	})
	return refs
}
