package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive proves that switches over the hardware-event enums cover
// every declared value. The fault plane (fault.Point), the machine-check
// codes (cpu.MCCause) and the run/interrupt classifications (cpu.
// HaltReason, the vmos service codes) are closed sets wired through the
// whole delivery path: a new fault point added to internal/fault without
// a matching arm in the CPU's syndrome conversion or the kernel's policy
// switch silently falls through today. The analyzer makes the omission a
// build failure at the switch.
//
// A type is an enum here when it is a named integer type declared in one
// of the enum-bearing packages (fault, cpu, vmos — matched by package
// name so fixtures can model them) with at least two declared constants.
// A switch over such a type must either carry a default arm or name
// every declared constant. Bound markers — the NumPoints/NumMCCauses
// terminator convention — are not required (any constant whose name
// starts with "Num" or "num" is treated as the open end of the iota
// block, not a value).
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over fault/machine-check/interrupt enums cover every declared value",
	Run:  runExhaustive,
}

// enumPackages are the package names whose named integer types are
// treated as closed enums. farm joined for its outcome codes (Status:
// completed/rescued/shed/paused, and the worker event kinds).
var enumPackages = map[string]bool{"fault": true, "cpu": true, "vmos": true, "farm": true}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.Pkg.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !enumPackages[obj.Pkg().Name()] {
		return
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 {
		return
	}

	covered := make(map[string]bool) // constant value (exact string) -> seen
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default arm: the switch is closed by construction
		}
		for _, e := range cc.List {
			if ctv, ok := pass.Pkg.Info.Types[e]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s.%s is not exhaustive: missing %s (add the arms or a default)",
			obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
	}
}

// enumMember is one declared constant of an enum type.
type enumMember struct {
	name string
	val  string // constant.Value.ExactString(), so aliases compare equal
}

// enumMembers lists the package-level constants of exactly the named
// type, bound markers (Num*/num*) excluded, in declaration-name order.
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	var out []enumMember
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue
		}
		out = append(out, enumMember{name: name, val: c.Val().ExactString()})
	}
	// Deduplicate aliases: one missing value should be reported once,
	// under its first (alphabetical) name.
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	seen := make(map[string]bool)
	var uniq []enumMember
	for _, m := range out {
		if !seen[m.val] {
			seen[m.val] = true
			uniq = append(uniq, m)
		}
	}
	return uniq
}
