package analysis_test

import (
	"regexp"
	"sort"
	"strings"
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/analysis/analysistest"
)

func TestExecTable(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ExecTable, "exectable")
}

func TestUWRef(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWRef, "uwref")
}

func TestPaperConst(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PaperConst, "paperconst")
}

func TestProbeSafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ProbeSafe, "probesafe")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "determinism")
}

func TestStateComplete(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.StateComplete, "statecomplete")
}

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TypedErr, "typederr")
}

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Exhaustive, "exhaustive")
}

func TestUWFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWFlow, "uwflow")
}

func TestUWDead(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWDead, "uwdead")
}

func TestRowScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RowScope, "rowscope")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPath, "hotpath")
}

func TestHotBox(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotBox, "hotbox")
}

// TestHotClean proves both hot-path analyzers stay silent on a stepping
// loop that dispatches through a handler table and an interface probe but
// never allocates or boxes on a reachable path.
func TestHotClean(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.HotPath, analysis.HotBox} {
		analysistest.Run(t, "testdata", a, "hotclean")
	}
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GoLeak, "goleak")
}

func TestChanProt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ChanProt, "chanprot")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxFlow, "ctxflow")
}

func TestOneWriter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.OneWriter, "onewriter")
}

// TestConcClean proves all four concflow analyzers stay silent on a
// miniature farm that honors every contract: the worker exits when the
// jobs channel closes, the channel has one closing owner, and the merge
// happens across the Wait barrier.
func TestConcClean(t *testing.T) {
	for _, a := range []*analysis.Analyzer{
		analysis.GoLeak, analysis.ChanProt, analysis.CtxFlow, analysis.OneWriter,
	} {
		analysistest.Run(t, "testdata", a, "concclean")
	}
}

// TestSuiteSize pins the suite's advertised size: growing it without
// updating the docs (README, Makefile) should fail loudly here.
func TestSuiteSize(t *testing.T) {
	if got := len(analysis.All()); got != 18 {
		t.Fatalf("analysis.All() reports %d analyzers, want 18", got)
	}
}

// TestUWValue exercises the type-based callee approximation: class
// violations whose words only reach the count sites through a handler
// table of a named function type, landing inside the registered function
// and the registered closure.
func TestUWValue(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWFlow, "uwvalue")
}

// TestUWValueClean proves the dynamic-dispatch machinery does not invent
// findings (uwflow silent on a clean table) and that uwdead sees words
// counted only through function values.
func TestUWValueClean(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.UWFlow, analysis.UWDead} {
		analysistest.Run(t, "testdata", a, "uwvalueclean")
	}
}

// TestUWClean proves the three µflow analyzers stay silent on a fixture
// that counts every class on its proper channel, reaches every word, and
// keeps each exec file inside its row.
func TestUWClean(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.UWFlow, analysis.UWDead, analysis.RowScope} {
		analysistest.Run(t, "testdata", a, "uwclean")
	}
}

// trailFact carries the provenance trail of a function for the synthetic
// fact-propagation analyzer below.
type trailFact struct{ Trail string }

func (*trailFact) AFact() {}

// TestFactPropagation proves the engine's fact plumbing end to end: a
// synthetic analyzer marks facts/a.Source, and the mark must cross two
// import hops (a → b → c, analyzed in dependency order) with the trail
// growing at each step. This is the mechanism the determinism analyzer's
// purity propagation rides on.
func TestFactPropagation(t *testing.T) {
	propagate := &analysis.Analyzer{
		Name: "propagate",
		Doc:  "test-only: chains a trail fact through the static call graph",
		Run: func(pass *analysis.Pass) error {
			pkgName := pass.Pkg.Types.Name()
			for _, fd := range analysis.PackageFuncs(pass.Pkg) {
				if strings.HasPrefix(fd.Obj.Name(), "Source") {
					pass.ExportObjectFact(fd.Obj, &trailFact{Trail: pkgName})
					continue
				}
				for _, callee := range analysis.Callees(pass.Pkg.Info, fd.Decl.Body) {
					var f trailFact
					if !pass.ImportObjectFact(callee, &f) {
						continue
					}
					trail := f.Trail + "." + pkgName
					pass.ExportObjectFact(fd.Obj, &trailFact{Trail: trail})
					if callee.Pkg() != pass.Pkg.Types {
						pass.Reportf(fd.Decl.Name.Pos(), "fact trail %s", trail)
					}
					break
				}
			}
			return nil
		},
	}
	analysistest.Run(t, "testdata", propagate, "facts/c")
}

// TestAllowValidation checks that //vaxlint:allow notes missing a
// justification or naming an unknown analyzer are themselves findings and
// suppress nothing. Asserted directly rather than via want comments: a
// want clause cannot share a line with the allow comment under test (the
// line comment swallows it).
func TestAllowValidation(t *testing.T) {
	pkgs, err := analysis.LoadTestdataPackages("testdata/src", "allowbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{analysis.Determinism}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		analyzer string
		rx       string
	}{
		{"allow", `lacks a justification`},
		{"allow", `unknown analyzer "nosuchanalyzer"`},
		// Neither note is valid, so both map ranges still taint their roots.
		{"determinism", `Run must be deterministic .*ranges over a map`},
		{"determinism", `RunCtx must be deterministic .*ranges over a map`},
	}
	for _, w := range wants {
		rx := regexp.MustCompile(w.rx)
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && rx.MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing [%s] diagnostic matching %q in:\n%s", w.analyzer, w.rx, diagDump(diags))
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), diagDump(diags))
	}
}

// TestCollectAllows pins the audit listing behind `vaxlint -allows`: one
// entry per //vaxlint:allow note in the load, sorted by file then line,
// carrying the analyzer names and the justification text.
func TestCollectAllows(t *testing.T) {
	pkgs, err := analysis.LoadTestdataPackages("testdata/src", "hotpath")
	if err != nil {
		t.Fatal(err)
	}
	entries := analysis.CollectAllows(pkgs)
	if len(entries) != 2 {
		t.Fatalf("got %d allow entries, want 2: %+v", len(entries), entries)
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		if entries[i].Pos.Filename != entries[j].Pos.Filename {
			return entries[i].Pos.Filename < entries[j].Pos.Filename
		}
		return entries[i].Pos.Line < entries[j].Pos.Line
	}) {
		t.Errorf("entries not sorted by file then line: %+v", entries)
	}
	for i, wantPrefix := range []string{"bounded:", "cold:"} {
		e := entries[i]
		if len(e.Analyzers) != 1 || e.Analyzers[0] != "hotpath" {
			t.Errorf("entry %d analyzers = %v, want [hotpath]", i, e.Analyzers)
		}
		if !strings.HasPrefix(e.Reason, wantPrefix) {
			t.Errorf("entry %d reason %q, want prefix %q", i, e.Reason, wantPrefix)
		}
	}
}

func diagDump(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
