package analysis_test

import (
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/analysis/analysistest"
)

func TestExecTable(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ExecTable, "exectable")
}

func TestUWRef(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWRef, "uwref")
}

func TestPaperConst(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PaperConst, "paperconst")
}

func TestProbeSafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ProbeSafe, "probesafe")
}
