package analysis_test

import (
	"regexp"
	"strings"
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/analysis/analysistest"
)

func TestExecTable(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ExecTable, "exectable")
}

func TestUWRef(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWRef, "uwref")
}

func TestPaperConst(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PaperConst, "paperconst")
}

func TestProbeSafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ProbeSafe, "probesafe")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "determinism")
}

func TestStateComplete(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.StateComplete, "statecomplete")
}

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TypedErr, "typederr")
}

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Exhaustive, "exhaustive")
}

func TestUWFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWFlow, "uwflow")
}

func TestUWDead(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UWDead, "uwdead")
}

func TestRowScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RowScope, "rowscope")
}

// TestUWClean proves the three µflow analyzers stay silent on a fixture
// that counts every class on its proper channel, reaches every word, and
// keeps each exec file inside its row.
func TestUWClean(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.UWFlow, analysis.UWDead, analysis.RowScope} {
		analysistest.Run(t, "testdata", a, "uwclean")
	}
}

// trailFact carries the provenance trail of a function for the synthetic
// fact-propagation analyzer below.
type trailFact struct{ Trail string }

func (*trailFact) AFact() {}

// TestFactPropagation proves the engine's fact plumbing end to end: a
// synthetic analyzer marks facts/a.Source, and the mark must cross two
// import hops (a → b → c, analyzed in dependency order) with the trail
// growing at each step. This is the mechanism the determinism analyzer's
// purity propagation rides on.
func TestFactPropagation(t *testing.T) {
	propagate := &analysis.Analyzer{
		Name: "propagate",
		Doc:  "test-only: chains a trail fact through the static call graph",
		Run: func(pass *analysis.Pass) error {
			pkgName := pass.Pkg.Types.Name()
			for _, fd := range analysis.PackageFuncs(pass.Pkg) {
				if strings.HasPrefix(fd.Obj.Name(), "Source") {
					pass.ExportObjectFact(fd.Obj, &trailFact{Trail: pkgName})
					continue
				}
				for _, callee := range analysis.Callees(pass.Pkg.Info, fd.Decl.Body) {
					var f trailFact
					if !pass.ImportObjectFact(callee, &f) {
						continue
					}
					trail := f.Trail + "." + pkgName
					pass.ExportObjectFact(fd.Obj, &trailFact{Trail: trail})
					if callee.Pkg() != pass.Pkg.Types {
						pass.Reportf(fd.Decl.Name.Pos(), "fact trail %s", trail)
					}
					break
				}
			}
			return nil
		},
	}
	analysistest.Run(t, "testdata", propagate, "facts/c")
}

// TestAllowValidation checks that //vaxlint:allow notes missing a
// justification or naming an unknown analyzer are themselves findings and
// suppress nothing. Asserted directly rather than via want comments: a
// want clause cannot share a line with the allow comment under test (the
// line comment swallows it).
func TestAllowValidation(t *testing.T) {
	pkgs, err := analysis.LoadTestdataPackages("testdata/src", "allowbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{analysis.Determinism}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		analyzer string
		rx       string
	}{
		{"allow", `lacks a justification`},
		{"allow", `unknown analyzer "nosuchanalyzer"`},
		// Neither note is valid, so both map ranges still taint their roots.
		{"determinism", `Run must be deterministic .*ranges over a map`},
		{"determinism", `RunCtx must be deterministic .*ranges over a map`},
	}
	for _, w := range wants {
		rx := regexp.MustCompile(w.rx)
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && rx.MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing [%s] diagnostic matching %q in:\n%s", w.analyzer, w.rx, diagDump(diags))
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), diagDump(diags))
	}
}

func diagDump(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
