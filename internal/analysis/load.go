package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// pkgMeta is the slice of `go list -json` output the loader needs.
type pkgMeta struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Imports    []string
}

// LoadModule enumerates the packages matching patterns (via `go list`,
// run in dir), parses their non-test sources and type-checks them in
// dependency order. Standard-library imports are resolved from GOROOT
// source, so the loader needs no network and no pre-built export data.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return load(metas)
}

func goList(dir string, patterns []string) ([]*pkgMeta, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var metas []*pkgMeta
	dec := json.NewDecoder(&out)
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// load parses and type-checks metas in dependency order.
func load(metas []*pkgMeta) ([]*Package, error) {
	fset := token.NewFileSet()
	byPath := make(map[string]*pkgMeta, len(metas))
	files := make(map[string][]*ast.File, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}
	for _, m := range metas {
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files[m.ImportPath] = append(files[m.ImportPath], f)
		}
	}

	// Topological order over module-internal imports.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range byPath[path].Imports {
			if _, ok := byPath[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	imp := &chainImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files[path], info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		imp.mod[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Fset:  fset,
			Files: files[path],
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// chainImporter resolves module-internal imports from the packages already
// checked this load and everything else from GOROOT source.
type chainImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mod[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// LoadTestdataPackage loads the package rooted at srcRoot/pkgPath for the
// analysistest harness, returning just the named package.
func LoadTestdataPackage(srcRoot, pkgPath string) (*Package, error) {
	pkgs, err := LoadTestdataPackages(srcRoot, pkgPath)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Path == pkgPath {
			return p, nil
		}
	}
	return nil, fmt.Errorf("analysistest: package %s not found after load", pkgPath)
}

// LoadTestdataPackages loads the package rooted at srcRoot/pkgPath and
// every local package it (transitively) imports, returning all of them
// in dependency order — the same order the engine runs passes in, so
// fact-passing analyzers behave exactly as they do on the real module.
// Imports are resolved first against sibling directories under srcRoot
// (mirroring x/tools analysistest's GOPATH layout), then against GOROOT
// source.
func LoadTestdataPackages(srcRoot, pkgPath string) ([]*Package, error) {
	var metas []*pkgMeta
	seen := make(map[string]bool)
	var collect func(path string) error
	collect = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("analysistest package %s: %w", path, err)
		}
		m := &pkgMeta{Dir: dir, ImportPath: path}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			m.GoFiles = append(m.GoFiles, e.Name())
		}
		metas = append(metas, m)
		// One parse pass just to discover local imports.
		fset := token.NewFileSet()
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, is := range f.Imports {
				imp := strings.Trim(is.Path.Value, `"`)
				if _, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(imp))); err == nil {
					m.Imports = append(m.Imports, imp)
					if err := collect(imp); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := collect(pkgPath); err != nil {
		return nil, err
	}
	return load(metas)
}
