package analysis

import "sort"

// UWFlow proves that every microword is counted on the channel its
// declared ucode.Class permits. The paper's Table 8 is a Row×Class
// matrix whose cells are filled by *which* counting primitive fired —
// execution ticks, read/write stall accounting, the dedicated IB-stall
// locations — so a word counted on the wrong channel corrupts a cell
// silently: the histogram stays internally consistent and no test that
// sums cycles can notice. Per class:
//
//   - ClassCompute / ClassDispatch words may only be executed
//     (tick/ticks);
//   - ClassRead / ClassWrite words may tick and stall, but an execution
//     tick must have stall accounting for the same word reachable on
//     some path to it (the paper's memory-reference words are exactly
//     the ones that can wait on the cache and the UNIBUS);
//   - ClassIBStall words are counted only by ibStallTick (§4.3's
//     dedicated instruction-buffer stall locations);
//   - ClassMarker words are counted only by tickFree — they mark folded
//     cycles and must stay invisible to the paid channels outside the
//     folded-marker ablation.
//
// The verdicts ride on the µflow model (uwmodel.go, dataflow.go): handles
// are followed through locals, parameters and helpers, cross-package
// bindings and helper summaries arrive as object facts, and a value the
// model cannot interpret is silent rather than a false finding.
var UWFlow = &Analyzer{
	Name: "uwflow",
	Doc:  "microword class must match its count channel (ticks vs stalls vs IB-stall vs folded markers)",
	Run:  runUWFlow,
}

// uwAllowedChannels is the class→channel contract.
var uwAllowedChannels = map[string]map[uwChannel]bool{
	"ClassCompute":  {chExec: true},
	"ClassDispatch": {chExec: true},
	"ClassRead":     {chExec: true, chStall: true},
	"ClassWrite":    {chExec: true, chStall: true},
	"ClassIBStall":  {chIBStall: true},
	"ClassMarker":   {chFree: true},
}

func runUWFlow(pass *Pass) error {
	m := buildUWModel(pass, []*Package{pass.Pkg})
	for _, flow := range m.flowLst {
		for _, site := range flow.sites {
			m.checkFlowSite(flow, site)
		}
	}
	return nil
}

func (m *uwModel) checkFlowSite(flow *funcFlow, site *uwSite) {
	pass := m.pass
	// Direct channel call (a primitive or a raw Probe call).
	ch, hp, direct := channelOf(site.callee)
	if site.probeCh != "" {
		ch, hp, direct = site.probeCh, 0, true
	}
	if direct {
		if hp >= len(site.args) {
			return
		}
		v := site.args[hp]
		classes := m.classesOf(flow, v)
		for _, c := range sortedClasses(classes) {
			allowed, known := uwAllowedChannels[c]
			if !known || allowed[ch] {
				continue
			}
			pass.Reportf(site.call.Pos(),
				"%s microword (%s) counted on the %s channel; %s words are counted only on %s",
				c, m.handleNames(v), ch, c, channelList(allowed))
		}
		if ch == chExec && (classes["ClassRead"] || classes["ClassWrite"]) {
			if !m.stallCovered(flow, site, v) {
				pass.Reportf(site.call.Pos(),
					"read/write-class microword (%s) ticked with no stall accounting for it on any path to this tick",
					m.handleNames(v))
			}
		}
		return
	}
	// A call through a named function type feeds every collected value of
	// the type. Candidates analyzed by this pass (local functions and
	// literals) are judged at their own interior sites, where the table
	// dispatch's classes arrive by inflow; only candidates whose bodies
	// live elsewhere are judged here, against the union of their imported
	// summaries.
	if site.dyn != nil {
		m.checkDynSite(flow, site)
		return
	}
	// Call into a helper whose body this pass does not see (another
	// package): judge the handle against the helper's channel summary.
	if site.callee == nil || m.flows[site.callee] != nil {
		return // local helpers are checked at their own interior sites via inflow
	}
	summ := m.summaryOf(site.callee)
	for j := 0; j < len(summ) && j < len(site.args); j++ {
		if len(summ[j]) == 0 {
			continue
		}
		classes := m.classesOf(flow, site.args[j])
		for _, c := range sortedClasses(classes) {
			allowed, known := uwAllowedChannels[c]
			if !known {
				continue
			}
			for _, ch := range sortedChans(summ[j]) {
				if !allowed[ch] {
					pass.Reportf(site.call.Args[j].Pos(),
						"%s microword (%s) flows into %s, which counts it on the %s channel; %s words are counted only on %s",
						c, m.handleNames(site.args[j]), site.callee.Name(), ch, c, channelList(allowed))
				}
			}
			if (c == "ClassRead" || c == "ClassWrite") && summ[j][chExec] && !summ[j][chStall] {
				pass.Reportf(site.call.Args[j].Pos(),
					"read/write-class microword (%s) flows into %s, which ticks it without any stall accounting",
					m.handleNames(site.args[j]), site.callee.Name())
			}
		}
	}
}

// checkDynSite judges the arguments of a dynamic call against the summary
// union of the candidates this pass cannot see locally.
func (m *uwModel) checkDynSite(flow *funcFlow, site *uwSite) {
	summ := m.dynSummary(site.dyn, true)
	for j := 0; j < len(summ) && j < len(site.args); j++ {
		if len(summ[j]) == 0 {
			continue
		}
		classes := m.classesOf(flow, site.args[j])
		for _, c := range sortedClasses(classes) {
			allowed, known := uwAllowedChannels[c]
			if !known {
				continue
			}
			for _, ch := range sortedChans(summ[j]) {
				if !allowed[ch] {
					m.pass.Reportf(site.call.Args[j].Pos(),
						"%s microword (%s) flows into a %s value, which may count it on the %s channel; %s words are counted only on %s",
						c, m.handleNames(site.args[j]), site.dyn.Name(), ch, c, channelList(allowed))
				}
			}
		}
	}
}

// stallCovered reports whether some site in the function accounts stall
// cycles for the same value source and can precede the tick: an earlier
// site of the same block, or a site in a block with a CFG path to the
// tick's block. (cacheReadRef's shape — a conditional stall, then the
// tick after the join — is the canonical pass.)
func (m *uwModel) stallCovered(flow *funcFlow, tick *uwSite, v valueSet) bool {
	for _, s := range flow.sites {
		if s == tick {
			continue
		}
		if !m.stallsFor(s, v) {
			continue
		}
		if s.block == tick.block {
			if s.ord < tick.ord || flow.cfg.Reaches(s.block, tick.block) {
				return true
			}
			continue
		}
		if flow.cfg.Reaches(s.block, tick.block) {
			return true
		}
	}
	return false
}

// stallsFor reports whether site s performs stall accounting for any of
// v's origins — directly, or through a helper whose summary reaches the
// stall channel.
func (m *uwModel) stallsFor(s *uwSite, v valueSet) bool {
	if ch, hp, ok := channelOf(s.callee); ok && ch == chStall {
		return hp < len(s.args) && s.args[hp].sharesOrigin(v)
	}
	if s.probeCh == chStall {
		return len(s.args) > 0 && s.args[0].sharesOrigin(v)
	}
	if s.callee == nil {
		return false
	}
	summ := m.summaryOf(s.callee)
	for j := 0; j < len(summ) && j < len(s.args); j++ {
		if summ[j][chStall] && s.args[j].sharesOrigin(v) {
			return true
		}
	}
	return false
}

func sortedClasses(cs classSet) []string {
	out := make([]string, 0, len(cs))
	for c := range cs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func sortedChans(cs chanSet) []uwChannel {
	out := make([]uwChannel, 0, len(cs))
	for c := range cs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func channelList(allowed map[uwChannel]bool) string {
	chans := make([]string, 0, len(allowed))
	for ch := range allowed {
		chans = append(chans, string(ch))
	}
	sort.Strings(chans)
	s := ""
	for i, ch := range chans {
		if i > 0 {
			s += "/"
		}
		s += ch
	}
	return s
}
