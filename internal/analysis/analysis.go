// Package analysis is a vendored-in, dependency-free miniature of the
// golang.org/x/tools/go/analysis framework, carrying the project's custom
// static checks ("vaxlint", see cmd/vaxlint).
//
// The model's fidelity to Emer & Clark rests on cross-file invariants —
// every opcode in internal/vax's opTable must have exactly one register()ed
// execute microroutine in internal/cpu, every microword name referenced by
// the reduction engine must resolve in the control-store map built by
// internal/cpu/cs.go, the paper's headline numbers must live only in
// internal/paper, and the Machine/Probe pair is single-threaded. These are
// otherwise enforced by runtime panics or not at all; the analyzers in
// this package prove them at build time.
//
// The API mirrors go/analysis (Analyzer, Pass, Diagnostic, an
// analysistest-style harness under analysis/analysistest) so the suite can
// be ported to the real framework verbatim if golang.org/x/tools is ever
// vendored; the build environment for this repository is offline, so the
// framework itself is reimplemented here on top of go/ast and go/types
// only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// ModuleLevel marks analyzers whose invariant spans packages (e.g. the
	// opcode table lives in internal/vax, the handlers in internal/cpu).
	// A module-level analyzer runs once per load with Pass.Pkg == nil and
	// inspects Pass.All; a package-level analyzer runs once per package.
	ModuleLevel bool

	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// Package is one type-checked package of the load.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer invocation over one package (or, for
// module-level analyzers, over the whole load).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package   // package under analysis; nil for module-level runs
	All      []*Package // every package in the load, in dependency order

	diags  *[]Diagnostic
	facts  factStore  // shared by the analyzer's passes, nil for module-level
	allows allowIndex // //vaxlint:allow notes of the whole load
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos, unless a justified
// //vaxlint:allow note for this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the loaded packages and returns every
// finding, sorted by file position. A non-nil error means an analyzer
// itself failed, not that it found problems.
//
// The analyzers run concurrently, one goroutine per analyzer: the suite
// shares only immutable inputs (the type-checked packages, the allow
// index), facts never cross analyzers (each gets a private factStore),
// and each goroutine appends to a private diagnostic slice merged after
// the barrier. What CANNOT be parallelized is the fact-dependency order
// inside one analyzer: package-level analyzers visit pkgs in slice
// order, which the loader guarantees is dependency order, so facts
// exported while analyzing a package are visible in every pass over its
// importers. Total output order is independent of scheduling — the
// merged findings are sorted by position with analyzer name and message
// as tiebreakers, a total order (the previous serial implementation
// left same-position ties to sort.Slice's whim).
//
// Each pass positions its diagnostics with its own package's FileSet —
// a load whose packages span several FileSets (hand-assembled inputs)
// must not silently borrow pkgs[0]'s, or a diagnostic could name the
// wrong file; module-level analyzers, which report across the whole
// load through one Fset, refuse such an input outright.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	sharedFset := pkgs[0].Fset
	for _, pkg := range pkgs[1:] {
		if pkg.Fset != sharedFset {
			sharedFset = nil
			break
		}
	}

	allows := buildAllowIndex(pkgs)
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	if sharedFset != nil {
		validateAllows(allows, known, sharedFset, &diags)
	} else {
		// Distinct FileSets: validate per package so positions resolve
		// against the owning package's Fset.
		for _, pkg := range pkgs {
			validateAllows(buildAllowIndex([]*Package{pkg}), known, pkg.Fset, &diags)
		}
	}

	perDiags := make([][]Diagnostic, len(analyzers))
	perErrs := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			perDiags[i], perErrs[i] = runOne(a, pkgs, sharedFset, allows)
		}(i, a)
	}
	wg.Wait()
	for i := range analyzers {
		diags = append(diags, perDiags[i]...)
		if perErrs[i] != nil {
			return diags, perErrs[i] // first failure in suite order
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// runOne is one analyzer's complete run over the load: every package in
// dependency order for package-level analyzers, one whole-load pass for
// module-level ones. It touches nothing shared but its read-only inputs,
// which is what lets Run fan the suite out.
func runOne(a *Analyzer, pkgs []*Package, sharedFset *token.FileSet, allows allowIndex) ([]Diagnostic, error) {
	var diags []Diagnostic
	if a.ModuleLevel {
		if sharedFset == nil {
			return nil, fmt.Errorf("%s: module-level analyzer over packages with distinct FileSets", a.Name)
		}
		pass := &Pass{Analyzer: a, Fset: sharedFset, All: pkgs, diags: &diags, allows: allows}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
		return diags, nil
	}
	facts := make(factStore)
	for _, pkg := range pkgs {
		pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, All: pkgs, diags: &diags, facts: facts, allows: allows}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// All is the vaxlint suite in reporting order: the four cross-table
// analyzers from the original suite, the four determinism-contract
// analyzers built on the fact layer, the three µflow attribution
// analyzers built on the CFG + dataflow layer (cfg.go, dataflow.go,
// uwmodel.go), the two hot-path perf-contract analyzers built on the
// callgraph's function-value and interface approximations (hotset.go),
// the four concflow concurrency-contract analyzers built on the
// goroutine/channel model (concmodel.go), and the ulat latency-oracle
// derivation (ulat.go) that pins every microroutine's static cycle
// bounds.
func All() []*Analyzer {
	return []*Analyzer{
		ExecTable, UWRef, PaperConst, ProbeSafe,
		Determinism, StateComplete, TypedErr, Exhaustive,
		UWFlow, UWDead, RowScope,
		HotPath, HotBox,
		GoLeak, ChanProt, CtxFlow, OneWriter,
		ULat,
	}
}

// WalkWithStack walks every file of pkg, calling fn with the node and the
// stack of its ancestors (outermost first, not including n itself).
func WalkWithStack(pkg *Package, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			fn(stack, n)
			stack = append(stack, n)
			return true
		})
	}
}
