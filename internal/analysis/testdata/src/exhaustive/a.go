package exhaustive

import "exhaustive/fault"

// Name drops an arm and has no default: the fall-through is silent.
func Name(p fault.Point) string {
	switch p { // want `switch over fault\.Point is not exhaustive: missing TBParity`
	case fault.MemRDS:
		return "mem"
	case fault.CacheParity:
		return "cache"
	}
	return "?"
}

// NameDefault is closed by its default arm: fine.
func NameDefault(p fault.Point) string {
	switch p {
	case fault.MemRDS:
		return "mem"
	default:
		return "?"
	}
}

// NameAll covers every declared value (the Num* marker excluded): fine.
func NameAll(p fault.Point) string {
	switch p {
	case fault.MemRDS:
		return "mem"
	case fault.CacheParity:
		return "cache"
	case fault.TBParity:
		return "tb"
	}
	return "?"
}

// Toggle misses both values of the second enum.
func Toggle(m fault.Mode) bool {
	switch m { // want `switch over fault\.Mode is not exhaustive: missing ModeOn`
	case fault.ModeOff:
		return false
	}
	return true
}

// NotAnEnum: switches over plain integers are out of scope.
func NotAnEnum(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
