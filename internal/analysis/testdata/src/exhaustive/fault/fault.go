// Package fault is an enum-bearing fixture package (matched by name):
// Point is a closed enum with a Num* bound marker.
package fault

type Point int

const (
	MemRDS Point = iota
	CacheParity
	TBParity
	NumPoints // bound marker: never required in a switch
)

// Mode is a second enum to prove per-type member sets.
type Mode int

const (
	ModeOff Mode = iota
	ModeOn
)
