// Package farm models the fleet's outcome codes for the exhaustive
// fixture: Status is a closed enum with a Num* bound marker.
package farm

type Status int

const (
	StatusPending Status = iota
	StatusRunning
	StatusCompleted
	StatusRescued
	StatusShed
	StatusPaused
	NumStatuses
)
