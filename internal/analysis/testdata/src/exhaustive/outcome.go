package exhaustive

import "exhaustive/farm"

// Outcome drops the two outcome codes a rescue can end in: silently
// miscounted merges.
func Outcome(s farm.Status) string {
	switch s { // want `switch over farm\.Status is not exhaustive: missing StatusRescued, StatusShed`
	case farm.StatusPending:
		return "pending"
	case farm.StatusRunning:
		return "running"
	case farm.StatusCompleted:
		return "completed"
	case farm.StatusPaused:
		return "paused"
	}
	return "?"
}

// OutcomeAll covers every declared value (NumStatuses excluded): fine.
func OutcomeAll(s farm.Status) bool {
	switch s {
	case farm.StatusPending, farm.StatusRunning:
		return false
	case farm.StatusCompleted, farm.StatusRescued, farm.StatusShed, farm.StatusPaused:
		return true
	}
	return false
}
