// Package allowbad exercises the allow-note validation: annotations
// without a justification (or naming unknown analyzers) are findings in
// their own right and never suppress anything. Checked by
// TestAllowValidation, which asserts the diagnostics directly (a want
// comment cannot share a line with the allow comment under test).
package allowbad

type Machine struct {
	counts map[string]int
}

func (m *Machine) Run() int {
	n := 0
	//vaxlint:allow determinism
	for k := range m.counts {
		n += len(k)
	}
	return n
}

func (m *Machine) RunCtx() int {
	n := 0
	//vaxlint:allow nosuchanalyzer -- the name is a typo, so this excuses nothing
	for k := range m.counts {
		n += len(k)
	}
	return n
}
