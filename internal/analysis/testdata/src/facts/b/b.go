// Package b imports a: the analyzer must see a.Source's fact (exported
// during a's pass) and extend the trail.
package b

import "facts/a"

func Relay() { a.Source() } // want `fact trail a\.b`

func Quiet() { a.Unmarked() }
