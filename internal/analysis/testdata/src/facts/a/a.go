// Package a is the bottom of the fact-propagation chain: the synthetic
// analyzer marks Source here, and the mark must survive two import hops.
package a

func Source() {}

func Unmarked() {}
