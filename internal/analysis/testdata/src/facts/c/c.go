// Package c sits two hops above the source: its diagnostic proves the
// fact crossed a → b → c in dependency order.
package c

import "facts/b"

func Use() { b.Relay() } // want `fact trail a\.b\.c`

func Idle() { b.Quiet() }
