package ulat

type Op uint8
type Group uint8

const (
	GroupSimple Group = iota
	GroupFloat
)

const (
	TICKX Op = iota
	TABX
	ROWX
)

type OpInfo struct {
	Code  Op
	Name  string
	Group Group
}

var opTable = []OpInfo{
	{TICKX, "TICKX", GroupSimple},
	{TABX, "TABX", GroupSimple},
	{ROWX, "ROWX", GroupSimple},
}
