// Package ulat seeds latency-derivation findings for the ulat analyzer:
// a handler expression the resolver cannot see through, a tick count
// that is not a compile-time constant, and a word counted outside its
// opcode's Table 8 row — that last one arriving through a cross-package
// helper, so the word set and the row check ride the same flow the real
// tree's shared microroutines use.
package ulat

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	r0     int
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) ticks(w uint16, n uint64) { m.counts[w] += n }
func (m *Machine) stall(w uint16, c uint64) {}

var cs = uwucode.NewStore()

func def(name string, row uwucode.Row, class uwucode.Class) uint16 {
	return cs.Define(name, row, class)
}

var uw = struct {
	op uint16
}{
	op: def("ulat.op", uwucode.RowSimple, uwucode.ClassCompute),
}
