// Package bank hosts a microword handle and a counting helper in a
// separate package, so the ulat fixture's word flow and row check cross
// a package boundary the way internal/cpu's shared helpers do.
package bank

import "uwucode"

type Machine struct{ counts map[uint16]uint64 }

func (m *Machine) tick(w uint16) { m.counts[w]++ }

var cs = uwucode.NewStore()

var Words = struct {
	Fl uint16
}{
	Fl: cs.Define("bank.fl", uwucode.RowFloat, uwucode.ClassCompute),
}

// Spill counts whatever word flows in.
func Spill(m *Machine, w uint16) { m.tick(w) }
