package ulat

import "ulat/bank"

type execFn func(*Machine)

var execTable [8]execFn

func register(op Op, fn execFn) { execTable[op] = fn }

// handlerTable defeats static resolution: an indexed function value is
// not a shape the resolver follows, so TABX's bounds are underivable.
var handlerTable = []execFn{execTickx}

func init() {
	register(TICKX, execTickx)
	register(TABX, handlerTable[0]) // want `opcode TABX: handler expression cannot be resolved statically; latency bounds underivable`
	register(ROWX, execRowx)        // want `opcode ROWX: microword bank\.fl \(row RowFloat\) counted outside its Table 8 row RowSimple`
}

func execTickx(m *Machine) {
	m.ticks(uw.op, uint64(m.r0)) // want `opcode TICKX: tick count is not statically constant; latency bounds underivable`
}

// execRowx burns a Float-row word through bank's counting helper while
// registered as a Simple-group opcode: the row check must see the word
// arrive across the package boundary.
func execRowx(m *Machine) {
	m.tick(uw.op)
	bank.Spill(&bank.Machine{}, bank.Words.Fl)
}
