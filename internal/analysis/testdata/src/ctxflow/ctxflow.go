// Package ctxflow is the golden fixture for the cancellation-propagation
// analyzer: ctx-aware functions with unguarded block points, and the
// guarded shapes that are fine.
package ctxflow

import "context"

// WaitGroup models sync.WaitGroup (matched by type name) so the fixture
// stays stdlib-light.
type WaitGroup struct{}

func (g *WaitGroup) Wait() {}

// Feed holds a ctx but lets four block points ignore it.
func Feed(ctx context.Context, work chan int, out chan int) {
	work <- 1 // want `channel send can block past cancellation`
	<-out     // want `channel receive can block past cancellation`
	for range work { // want `ranging over a channel blocks past cancellation`
	}
	select { // want `select without a ctx\.Done arm or default`
	case v := <-work:
		_ = v
	case out <- 2:
	}
}

// Guarded shows the accepted shapes: a ctx.Done arm, a done-var arm, a
// default arm, and blocking on the cancellation signal itself.
func Guarded(ctx context.Context, work chan int) {
	select {
	case work <- 1:
	case <-ctx.Done():
		return
	}
	done := ctx.Done()
	select {
	case v := <-work:
		_ = v
	case <-done:
	}
	select {
	case work <- 2:
	default:
	}
	<-ctx.Done()
}

// pool carries its ctx as a field, the worker shape: its methods are
// ctx-aware too.
type pool struct {
	ctx  context.Context
	feed chan int
}

func (p *pool) drain() {
	<-p.feed // want `channel receive can block past cancellation`
}

// Gather waits on a WaitGroup with no bound in sight.
func Gather(ctx context.Context, wg *WaitGroup) {
	wg.Wait() // want `WaitGroup\.Wait can block past cancellation`
}

// NoCtx has no cancellation to propagate: out of scope.
func NoCtx(ch chan int) {
	ch <- 1
	<-ch
}
