// Package concclean is the shared clean negative for all four concflow
// analyzers: a miniature coordinator/worker farm that honors every
// contract — the worker exits when jobs closes, jobs has one closing
// owner, no ctx means no cancellation obligation, and the total is read
// only across the Wait barrier.
package concclean

// WaitGroup models sync.WaitGroup (matched by type name).
type WaitGroup struct{}

func (g *WaitGroup) Add(int) {}
func (g *WaitGroup) Done()   {}
func (g *WaitGroup) Wait()   {}

type runner struct {
	jobs    chan int
	results chan int
	stop    chan struct{}
	wg      *WaitGroup
	total   int
}

// Sweep dispatches n jobs, drains the pool, and merges after the
// barrier.
func Sweep(n int) int {
	r := &runner{
		jobs:    make(chan int, 4),
		results: make(chan int, 4),
		stop:    make(chan struct{}),
		wg:      &WaitGroup{},
	}
	r.wg.Add(1)
	go r.work()
	for i := 0; i < n; i++ {
		r.jobs <- i
	}
	close(r.jobs)
	r.wg.Wait()
	close(r.results)
	for v := range r.results {
		r.total += v
	}
	return r.total
}

// work exits when jobs closes (the range ends) or stop fires: a
// statically guaranteed exit path either way.
func (r *runner) work() {
	defer r.wg.Done()
	for j := range r.jobs {
		select {
		case r.results <- j * 2:
		case <-r.stop:
			return
		}
	}
}
