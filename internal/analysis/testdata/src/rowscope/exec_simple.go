package rowscope

func simpleOK(m *Machine) { m.tick(uw.sAlu) }

func simpleBad(m *Machine) {
	m.tick(uw.fAdd) // want `microword exec\.float\.add \(row RowFloat\) referenced in exec_simple\.go, which handles RowSimple opcodes only`
}
