// Package rowscope seeds a cross-row reference: a Float-row microword
// ticked from exec_simple.go. Handles are defined in this neutral file —
// a definition inside an exec file would itself be a reference.
package rowscope

import "uwucode"

type Machine struct{ counts map[uint16]uint64 }

func (m *Machine) tick(w uint16) { m.counts[w]++ }

var cs = uwucode.NewStore()

var uw = struct {
	sAlu uint16
	fAdd uint16
}{
	sAlu: cs.Define("exec.simple.alu", uwucode.RowSimple, uwucode.ClassCompute),
	fAdd: cs.Define("exec.float.add", uwucode.RowFloat, uwucode.ClassCompute),
}
