package rowscope

func floatOK(m *Machine) { m.tick(uw.fAdd) }

// floatShared deliberately rides a Simple-row word; the allow note turns
// the cross-row touch into an audited one.
func floatShared(m *Machine) {
	//vaxlint:allow rowscope -- fixture: shared machinery crossing rows on purpose
	m.tick(uw.sAlu)
}
