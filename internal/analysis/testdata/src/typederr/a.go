// The fixture package is named checkpoint so the boundary rules apply
// (the analyzer matches boundary packages by name, exactly so it can be
// modeled here).
package checkpoint

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the declared sentinel of this boundary.
var ErrCorrupt = errors.New("corrupt checkpoint")

// WriteError is a declared error type of this boundary.
type WriteError struct{ Path string }

func (e *WriteError) Error() string { return "write " + e.Path }

// Load mints a fresh untyped error at the boundary.
func Load() error {
	return errors.New("no snapshot") // want `returns errors\.New\(\.\.\.\) across the checkpoint boundary`
}

// Save stops the error chain with an unwrapped fmt.Errorf.
func Save(n int) error {
	if n < 0 {
		return fmt.Errorf("bad generation %d", n) // want `returns an unwrapped fmt\.Errorf across the checkpoint boundary`
	}
	if n == 0 {
		return fmt.Errorf("save: %w", ErrCorrupt) // wrapped: fine
	}
	return &WriteError{Path: "gen"} // declared type: fine
}

// internalHelper is unexported: its callers are checked instead.
func internalHelper() error {
	return errors.New("internal detail")
}

// Classify compares and asserts the breakable way.
func Classify(err error) string {
	if err == ErrCorrupt { // want `sentinel ErrCorrupt compared with ==: wrapped errors slip through; use errors\.Is`
		return "corrupt"
	}
	if err != ErrCorrupt { // want `sentinel ErrCorrupt compared with !=`
		return "other"
	}
	if _, ok := err.(*WriteError); ok { // want `type assertion on an error value.*use errors\.As`
		return "write"
	}
	return ""
}

// ClassifyRight routes the robust way: no findings.
func ClassifyRight(err error) string {
	if err == nil { // nil checks are fine
		return "ok"
	}
	if errors.Is(err, ErrCorrupt) {
		return "corrupt"
	}
	var we *WriteError
	if errors.As(err, &we) {
		return "write"
	}
	_ = internalHelper()
	return ""
}
