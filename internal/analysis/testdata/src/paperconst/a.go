// Package a seeds a paperconst violation: paper headline numbers
// hard-coded outside internal/paper.
package a

const cpi = 10.593 // want "paper headline number 10.593 hard-coded outside internal/paper; use paper.CPI"

var rstall = 0.964 // want "paper headline number 0.964 hard-coded outside internal/paper; use paper.Table8Total.RStall"

// Two-decimal floats are probabilities/thresholds, not table cells.
var threshold = 0.72

var unrelated = 3.1415

func use() (float64, float64, float64, float64) { return cpi, rstall, threshold, unrelated }
