package statecomplete

// State is the serialized form of Device.
type State struct {
	A int
	D int
}

// Device has one field the snapshot silently drops (b), one field
// captured on export but forgotten on import (d), and one justified
// exemption (c — declared last: an allow note also covers the following
// line, so it must not precede a field under test).
type Device struct {
	a int
	b int // want `field Device\.b is not referenced in ExportState or ImportState`
	d int // want `field Device\.d is not referenced in ImportState`
	c int //vaxlint:allow statecomplete -- derived scratch, rebuilt on first use
}

func (dv *Device) ExportState() State   { return State{A: dv.a, D: dv.d} }
func (dv *Device) ImportState(st State) { dv.a = st.A }

// Clean captures everything in both directions: no findings.
type Clean struct {
	x int
	y int
}

func (c *Clean) ExportState() [2]int { return [2]int{c.x, c.y} }
func (c *Clean) ImportState(v [2]int) {
	c.x = v[0]
	c.y = v[1]
}

// NoMethods has no ExportState/ImportState pair: out of scope.
type NoMethods struct {
	z int
}
