// Package a seeds uwref violations: a misspelled microword reference, an
// unresolvable prefix, a duplicate declaration, and an uninitialised
// microword handle field.
package a

type Row uint8

type Class uint8

const RowSimple Row = 0

const ClassCompute Class = 0

type Store struct{ byName map[string]uint16 }

func NewStore() *Store { return &Store{byName: map[string]uint16{}} }

func (s *Store) Define(name string, row Row, class Class) uint16 {
	addr := uint16(len(s.byName) + 1)
	s.byName[name] = addr
	return addr
}

func (s *Store) Lookup(name string) (uint16, bool) {
	a, ok := s.byName[name]
	return a, ok
}

var CS = NewStore()

func def(name string, row Row, class Class) uint16 { return CS.Define(name, row, class) }

type bank struct {
	stall uint16
	data  uint16
}

func defBank(prefix string, row Row) bank {
	return bank{
		stall: def(prefix+".stall", row, ClassCompute),
		data:  def(prefix+".data", row, ClassCompute),
	}
}

var uw = struct {
	entry uint16
	taken uint16
	dead  uint16 // want "microword handle field .dead. is never initialised"
	banks [2]bank
}{
	entry: def("exec.simple.entry", RowSimple, ClassCompute),
	taken: def("exec.simple.taken", RowSimple, ClassCompute),
	banks: [2]bank{defBank("spec1", RowSimple), defBank("spec26", RowSimple)},
}

var dup = def("exec.simple.entry", RowSimple, ClassCompute) // want "duplicate microword name .exec.simple.entry."

func lookups() {
	CS.Lookup("exec.simple.entry")
	CS.Lookup("exec.simple.taken")
	CS.Lookup("spec1.stall")
	CS.Lookup("spec26.data")
	CS.Lookup("spec1.stal")        // want "no microword matching .spec1.stal."
	CS.Lookup("exec.simple.entyr") // want "no microword matching .exec.simple.entyr."
	_, _ = CS.Lookup("spec26." + dynamicSegment())
	_ = "exec.bogus." // want "no microword matching .exec.bogus.."
}

func dynamicSegment() string { return "data" }
