// Package sink gives chanprot cross-package callees whose channel
// behavior is only visible through exported concFacts.
package sink

// Drain consumes the channel to exhaustion.
func Drain(ch <-chan int) {
	for range ch {
	}
}

// CloseIt closes its argument: a second closing owner for any caller
// that also closes.
func CloseIt(ch chan<- int) {
	close(ch)
}
