// Package chanprot is the golden fixture for the channel-protocol
// analyzer: ownership, close-ordering, direction, and liveness
// violations, one per function.
package chanprot

import "chanprot/sink"

// DoubleOwner closes a channel that sink.CloseIt (per its concFact)
// also closes: two owners, one panic away.
func DoubleOwner() chan int {
	ch := make(chan int) // want `channel has 2 closing owners`
	go sink.Drain(ch)
	close(ch)
	sink.CloseIt(ch)
	return ch
}

// SendAfterClose sends on a channel its own function already closed.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send reachable after the channel's close site`
}

// SelfDeadlock keeps every operation on one goroutine: the unbuffered
// send can never find its receiver.
func SelfDeadlock() {
	ch := make(chan string)
	ch <- "boom" // want `every operation runs on one goroutine`
	<-ch
}

// NeverReceived sends on a channel nothing ever receives from.
func NeverReceived() {
	done := make(chan struct{})
	done <- struct{}{} // want `sent to but never received`
}

// pump only ever sends on its bidirectional parameter: the declaration
// should say chan<- so the compiler enforces it.
func pump(ch chan int) { // want `declare it chan<-`
	for i := 0; i < 3; i++ {
		ch <- i
	}
}
