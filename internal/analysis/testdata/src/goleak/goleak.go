// Package goleak is the golden fixture for the goroutine-lifetime
// analyzer: each function spawns a goroutine with a different way of
// never exiting.
package goleak

import "time"

// Spin never leaves its loop: no exit edge at all.
func Spin() {
	go func() { // want `goroutine spawned here never exits`
		for {
		}
	}()
}

// Pump loops over a select whose only arm continues the loop: the
// worker-shaped leak — without a return arm the CFG cycle is
// inescapable (a default-less select blocks, it does not fall through).
func Pump(events chan int) {
	go func() { // want `goroutine spawned here never exits`
		for {
			select {
			case ev := <-events:
				_ = ev
			}
		}
	}()
}

// Consume ranges over a channel nothing in the module ever closes: the
// range can never terminate.
func Consume() {
	feed := make(chan int)
	go func() {
		for v := range feed { // want `ranges over a channel no function in the module closes`
			_ = v
		}
	}()
	feed <- 1
}

// Stuck blocks forever by construction.
func Stuck() {
	go func() {
		select {} // want `select\{\} in a spawned goroutine blocks forever`
	}()
}

// Poll has a perfectly good exit arm — but arms a fresh timer every
// iteration, stranding the previous one until it fires.
func Poll(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-time.After(time.Millisecond): // want `time\.After inside a loop strands a live timer`
				continue
			case <-stop:
				return
			}
		}
	}()
}
