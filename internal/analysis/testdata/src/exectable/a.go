// Package a seeds exectable violations: a table entry with no handler, a
// duplicate registration, an orphaned handler, and a registration the
// analyzer cannot resolve statically.
package a

type Opcode byte

const (
	HALT  Opcode = 0x00
	NOP   Opcode = 0x01
	RET   Opcode = 0x04
	ADDL2 Opcode = 0xC0
	ADDL3 Opcode = 0xC1
	XORL2 Opcode = 0xCC
	XORL3 Opcode = 0xCD
	MOVL  Opcode = 0xD0
	CLRL  Opcode = 0xD4
)

type OpInfo struct {
	Code Opcode
	Name string
}

var opTable = []OpInfo{
	{HALT, "HALT"},
	{NOP, "NOP"},
	{ADDL2, "ADDL2"}, // want "opcode ADDL2 has no registered execute microroutine"
	{ADDL3, "ADDL3"},
	{XORL2, "XORL2"},
	{XORL3, "XORL3"},
	{MOVL, "MOVL"},
	{CLRL, "CLRL"},
}

type Machine struct{}

type execFn func(m *Machine)

var execTable [256]execFn

func register(op Opcode, fn execFn) { execTable[op] = fn }

func nop(m *Machine) {}

func init() {
	register(HALT, nop)
	register(NOP, nop)
	register(MOVL, nop)
	register(MOVL, nop)         // want "opcode MOVL: duplicate execute registration"
	register(RET, nop)          // want "opcode RET has a registered execute microroutine but no opTable entry"
	register(Opcode(0xD5), nop) // want "cannot be resolved statically"

	for _, op := range []Opcode{ADDL3, CLRL} {
		register(op, nop)
	}

	for _, e := range []struct {
		op2, op3 Opcode
		n        int
	}{
		{XORL2, XORL3, 1},
	} {
		register(e.op2, nop)
		register(e.op3, nop)
	}
}
