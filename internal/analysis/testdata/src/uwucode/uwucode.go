// Package uwucode is a mirror-surface miniature of internal/ucode for
// the µflow analyzer fixtures: the same Store/Define/Lookup/MustLookup
// API and the same Row/Class constant names, so the analyzers'
// name-based matching exercises exactly the code paths of the real tree.
package uwucode

type Row uint8

const (
	RowSimple Row = iota
	RowFloat
	RowSpec1
)

type Class uint8

const (
	ClassCompute Class = iota
	ClassDispatch
	ClassRead
	ClassWrite
	ClassIBStall
	ClassMarker
)

type Store struct{ byName map[string]uint16 }

func NewStore() *Store { return &Store{byName: map[string]uint16{}} }

func (s *Store) Define(name string, row Row, class Class) uint16 {
	addr := uint16(len(s.byName) + 1)
	s.byName[name] = addr
	return addr
}

func (s *Store) Lookup(name string) (uint16, bool) {
	a, ok := s.byName[name]
	return a, ok
}

func (s *Store) MustLookup(name string) uint16 {
	a, ok := s.byName[name]
	if !ok {
		panic("uwucode: unknown microword " + name)
	}
	return a
}
