// Package hotpath seeds one instance of every allocation class the
// hotpath analyzer flags on a path reachable from the stepping roots —
// defer, go, closures and method values, make/new/append, escaping
// composite literals — in declared functions, in handlers reached through
// a table of a named function type, and in an interface implementation.
// It also exercises the shapes the analyzer must stay silent on: value
// copies, range-operand slice literals, pruned cold slices (declaration
// and line allows), and statements the CFG proves unreachable.
package hotpath

type Machine struct {
	cycle   uint64
	scratch [8]byte
	buf     []byte
	sink    func()
	probe   Probe
}

func (m *Machine) tick() { m.cycle++ }

// Probe is a module-declared interface: a call through it resolves to
// every implementing method in the load.
type Probe interface {
	Note(c uint64)
}

type rec struct{ log []uint64 }

func (r *rec) Note(c uint64) {
	r.log = append(r.log, c) // want `hot path \(Machine\.Step → rec\.Note\): append may grow its backing array per cycle`
}

// handler is a named function type: a call through a value of it
// resolves to every function or literal collected as a value of the type.
type handler func(*Machine)

var table = [...]handler{
	viaTable,
	func(m *Machine) {
		m.buf = append(m.buf, 1) // want `hot path \(Machine\.Step → func@hotpath\.go:\d+\): append may grow its backing array per cycle`
	},
}

func viaTable(m *Machine) {
	b := make([]byte, 4) // want `hot path \(Machine\.Step → viaTable\): make allocates per cycle`
	_ = b
}

type op struct{ a, b uint32 }

func (m *Machine) Step() {
	defer m.tick()                // want `hot path \(Machine\.Step\): defer runs its bookkeeping every cycle`
	go m.tick()                   // want `hot path \(Machine\.Step\): go statement launches a goroutine per cycle`
	m.sink = func() { m.cycle++ } // want `hot path \(Machine\.Step\): function literal allocates a closure per cycle`
	m.sink = m.tick               // want `hot path \(Machine\.Step\): method value tick allocates a bound-method closure per cycle`
	p := &op{a: 1, b: 2}          // want `hot path \(Machine\.Step\): &op\{…\} escapes to the heap per cycle`
	_ = p
	q := new(op) // want `hot path \(Machine\.Step\): new allocates per cycle`
	_ = q
	s := []uint32{1, 2, 3} // want `hot path \(Machine\.Step\): slice literal allocates its backing array per cycle`
	_ = s
	h := map[uint32]uint32{1: 2} // want `hot path \(Machine\.Step\): map literal allocates per cycle`
	_ = h

	table[int(m.cycle)&1](m)
	m.helper()
	m.probe.Note(m.cycle)

	v := op{a: 3} // silent: a value copy does not allocate
	_ = v
	for _, x := range []byte{1, 2} { // silent: the range operand stays on the stack
		m.scratch[0] = x
	}
	//vaxlint:allow hotpath -- bounded: grows to a fixed high-water mark on the first cycles, then stays flat
	m.buf = append(m.buf, byte(m.cycle))

	m.cold()
	if false {
		return
	}
	return
	m.dead() // unreachable: the CFG-dead tail is not scanned
}

func (m *Machine) helper() {
	m.buf = append(m.buf, 0) // want `hot path \(Machine\.Step → Machine\.helper\): append may grow its backing array per cycle`
}

// cold is pruned from the hot set: neither its interior allocations nor
// the arguments at its call sites are judged.
//
//vaxlint:allow hotpath -- cold: assembles the terminal error report once, after the machine stops
func (m *Machine) cold() {
	b := make([]byte, 64)
	_ = b
}

// dead is reached only from an unreachable statement, so it never joins
// the hot set.
func (m *Machine) dead() {
	b := make([]byte, 128)
	_ = b
}
