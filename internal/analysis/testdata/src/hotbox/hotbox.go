// Package hotbox seeds the dispatch shapes the hotbox analyzer flags on
// the tick path: fmt calls, explicit and implicit interface boxing, map
// iteration and map lookup — plus the silent shapes (a pointer riding in
// the interface word, interface-to-interface copies, arguments of a
// pruned cold call, and a line-allowed boxing).
package hotbox

import "fmt"

type Machine struct {
	cycle uint64
	tab   map[uint16]uint16
	sink  any
}

func (m *Machine) Step() {
	fmt.Printf("cycle %d\n", m.cycle) // want `hot path \(Machine\.Step\): fmt\.Printf formats through reflection per cycle`
	m.sink = m.cycle                  // want `hot path \(Machine\.Step\): assignment boxes uint64 into any per cycle`
	v := any(m.cycle)                 // want `hot path \(Machine\.Step\): conversion boxes uint64 into any per cycle`
	_ = v
	m.take(m.cycle) // want `hot path \(Machine\.Step\): argument boxes uint64 into any per cycle in the call to take`
	for k := range m.tab { // want `hot path \(Machine\.Step\): map iteration per cycle`
		_ = k
	}
	w := m.tab[3] // want `hot path \(Machine\.Step\): map lookup per cycle; replace with a dense table`
	_ = w

	m.sink = &m.cycle // silent: a pointer fits the interface word
	var o any = m.sink
	m.sink = o // silent: interface-to-interface copy
	m.cold(m.cycle)
	//vaxlint:allow hotbox -- cold: reached only on the error path of a decode the caller aborts on
	m.take(m.tab[0])
}

func (m *Machine) take(v any) { m.sink = v }

//vaxlint:allow hotpath -- cold: diagnostic formatting once, after the machine stops
func (m *Machine) cold(v any) { m.sink = v }
