// Package hotclean is the negative fixture for the two hot-path
// analyzers: a stepping loop with table dispatch through a named function
// type, an interface probe, reslicing, value copies and a justified cold
// slice — and not one heap allocation, boxing, or map touch on any
// reachable path. hotpath and hotbox must both stay silent.
package hotclean

type Machine struct {
	cycle   uint64
	scratch [8]byte
	counts  [16]uint64
	probe   Probe
	halted  bool
}

// Probe is a module-declared interface; the conforming counter below is
// pulled into the hot set by the call through it and must also be clean.
type Probe interface {
	Note(c uint64)
}

type counter struct{ n [4]uint64 }

func (c *counter) Note(v uint64) { c.n[v&3]++ }

type handler func(*Machine)

var table = [...]handler{
	stepA,
	func(m *Machine) { m.counts[m.cycle&15]++ },
}

func stepA(m *Machine) { m.cycle++ }

func (m *Machine) tickAll() {
	for i := range m.counts {
		m.counts[i] += m.cycle & 1
	}
}

type op struct{ a, b uint32 }

func (m *Machine) Step() {
	table[m.cycle&1](m)
	m.tickAll()
	if m.probe != nil {
		m.probe.Note(m.cycle)
	}
	b := m.scratch[:4] // reslicing an owned array does not allocate
	for i := range b {
		b[i] = 0
	}
	v := op{a: uint32(m.cycle)} // a value copy does not allocate
	m.counts[v.a&15]++
	if m.cycle > 1<<40 {
		m.fail("cycle budget exhausted at", m.cycle)
	}
}

// fail is the justified cold slice: the variadic boxing at its call site
// and the formatting inside are absorbed by the declaration allow.
//
//vaxlint:allow hotpath -- cold: terminal failure path; the machine halts and Step never runs again
func (m *Machine) fail(msg string, args ...any) {
	m.halted = true
	sink = append(sink, args...)
}

var sink []any
