package uwclean

func simpleALU(m *Machine) { m.tick(uw.sAlu) }
