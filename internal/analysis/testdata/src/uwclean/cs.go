// Package uwclean is the negative fixture: every class counted on its
// own channel, every word reachable, every exec file touching only its
// row. All three µflow analyzers must stay silent on it.
package uwclean

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	stalls map[uint16]uint64
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) ticks(w uint16, n uint64) { m.counts[w] += n }
func (m *Machine) stall(w uint16, c uint64) { m.stalls[w] += c }
func (m *Machine) ibStallTick(w uint16)     { m.counts[w]++ }
func (m *Machine) tickFree(w uint16)        { m.counts[w]++ }

var cs = uwucode.NewStore()

var uw = struct {
	sAlu uint16
	rd   uint16
	ib   uint16
	mark uint16
}{
	sAlu: cs.Define("clean.simple.alu", uwucode.RowSimple, uwucode.ClassCompute),
	rd:   cs.Define("clean.mem.read", uwucode.RowSimple, uwucode.ClassRead),
	ib:   cs.Define("clean.ib.stall", uwucode.RowSimple, uwucode.ClassIBStall),
	mark: cs.Define("clean.fold.mark", uwucode.RowSimple, uwucode.ClassMarker),
}

func pump(m *Machine, wait uint64) {
	if wait > 0 {
		m.stall(uw.rd, wait)
	}
	m.tick(uw.rd)
	m.ibStallTick(uw.ib)
	m.tickFree(uw.mark)
}
