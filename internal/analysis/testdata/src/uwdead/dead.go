// Package uwdead seeds one orphaned microword: defined, bound, never
// reaching any count site — a structurally-zero histogram bucket. The
// exempted word shows the //vaxlint:allow escape hatch, and the closure
// word proves that count sites inside function literals are seen.
package uwdead

import "uwucode"

type Machine struct{ counts map[uint16]uint64 }

func (m *Machine) tick(w uint16) { m.counts[w]++ }

var cs = uwucode.NewStore()

var uw = struct {
	live   uint16
	closed uint16
	orphan uint16
	exempt uint16
}{
	live:   cs.Define("dead.live", uwucode.RowSimple, uwucode.ClassCompute),
	closed: cs.Define("dead.closed", uwucode.RowSimple, uwucode.ClassCompute),
	orphan: cs.Define("dead.orphan", uwucode.RowSimple, uwucode.ClassCompute), // want `microword "dead\.orphan" \(RowSimple, ClassCompute\) is defined but reaches no count site`
	//vaxlint:allow uwdead -- counted through a table of function values the dataflow cannot see; kept as the documented escape hatch
	exempt: cs.Define("dead.exempt", uwucode.RowSimple, uwucode.ClassCompute),
}

var hooks []func(*Machine)

func init() {
	hooks = append(hooks, func(m *Machine) { m.tick(uw.closed) })
}

func run(m *Machine) {
	m.tick(uw.live)
	for _, h := range hooks {
		h(m)
	}
}
