// Package uwvalueclean is the negative half of the function-value
// fixtures: every microword is counted only through a handler table of a
// named function type — one candidate a declared function, one a closure
// — on its permitted channel. uwflow must stay silent, and uwdead must
// see through the dynamic dispatch (without the candidates' summaries the
// words would be reported as structurally-zero buckets).
package uwvalueclean

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
}

func (m *Machine) tick(w uint16) { m.counts[w]++ }

var cs = uwucode.NewStore()

var uw = struct {
	tabbed uint16
	inlit  uint16
}{
	tabbed: cs.Define("clean.tabbed", uwucode.RowSimple, uwucode.ClassCompute),
	inlit:  cs.Define("clean.inlit", uwucode.RowSimple, uwucode.ClassCompute),
}

type handler func(m *Machine, w uint16)

func tickIt(m *Machine, w uint16) { m.tick(w) }

var table = map[uint8]handler{
	0: tickIt,
	1: func(m *Machine, w uint16) { m.tick(w) },
}

func dispatch(m *Machine, k uint8) {
	table[k](m, uw.tabbed)
	table[k](m, uw.inlit)
}
