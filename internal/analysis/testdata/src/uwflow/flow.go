package uwflow

import "uwflow/bank"

// good exercises every channel on its permitted class; no findings.
func good(m *Machine, p Probe, n int) {
	m.tick(uw.compute)
	m.ticks(uw.compute, 3)
	if n > 0 {
		m.stall(uw.rd, uint64(n))
	}
	m.tick(uw.rd) // the conditional stall reaches the tick across the join
	m.ibStallTick(uw.ib)
	m.tickFree(uw.mark)
	p.Count(uw.compute, 1)
}

// loopPair ticks before stalling inside a loop body: the stall reaches
// the next iteration's tick over the back edge, so the pairing holds.
func loopPair(m *Machine) {
	for i := 0; i < 4; i++ {
		m.tick(uw.wr)
		m.stall(uw.wr, 1)
	}
}

func bad(m *Machine, p Probe) {
	m.tick(uw.ib)             // want `ClassIBStall microword \(flow\.ib\) counted on the exec channel; ClassIBStall words are counted only on ibstall`
	m.tick(uw.mark)           // want `ClassMarker microword \(flow\.mark\) counted on the exec channel`
	m.tick(uw.rd)             // want `read/write-class microword \(flow\.rd\) ticked with no stall accounting for it on any path`
	m.ibStallTick(uw.compute) // want `ClassCompute microword \(flow\.compute\) counted on the ibstall channel`
	p.Stall(uw.compute, 2)    // want `ClassCompute microword \(flow\.compute\) counted on the stall channel`
}

// stallAfter accounts the stall only after the tick: both sites exist,
// but no path carries the stall to the tick, so the pairing fails.
func stallAfter(m *Machine) {
	m.tick(uw.wr) // want `read/write-class microword \(flow\.wr\) ticked with no stall accounting`
	m.stall(uw.wr, 2)
}

// viaLookup resolves the handle by name through the store namespace.
func viaLookup(m *Machine) {
	w := cs.MustLookup("flow.mark")
	m.tick(w) // want `ClassMarker microword \(flow\.mark\) counted on the exec channel`
}

// burn is a local helper: the finding lands at its interior tick, the
// offending class arriving by inflow from callsBurn.
func burn(m *Machine, w uint16) {
	m.tick(w) // want `ClassMarker microword \(parameter w\) counted on the exec channel`
}

func callsBurn(m *Machine) {
	burn(m, uw.compute)
	burn(m, uw.mark)
}

// crossPackage judges handles against bank's channel summaries, which
// arrive as object facts — as do the bindings of bank.Words.
func crossPackage(m *bank.Machine) {
	bank.BurnMem(m, bank.Words.Rd, 4) // clean: BurnMem both stalls and ticks
	bank.TickIt(m, bank.Words.Marker) // want `ClassMarker microword \(bank\.mark\) flows into TickIt, which counts it on the exec channel`
	bank.TickIt(m, bank.Words.Rd)     // want `read/write-class microword \(bank\.rd\) flows into TickIt, which ticks it without any stall accounting`
}
