// Package bank is the cross-package half of the uwflow fixture: the
// bindings of Words and the channel summaries of TickIt/BurnMem travel
// to the importing package as object facts, so the checks there run
// without ever seeing these bodies.
package bank

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	stalls map[uint16]uint64
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) stall(w uint16, c uint64) { m.stalls[w] += c }

var cs = uwucode.NewStore()

var Words = struct {
	Rd     uint16
	Marker uint16
}{
	Rd:     cs.Define("bank.rd", uwucode.RowSimple, uwucode.ClassRead),
	Marker: cs.Define("bank.mark", uwucode.RowSimple, uwucode.ClassMarker),
}

// TickIt burns one execution cycle on w. The marker class arrives on w
// from markInternally below; that inflow travels in TickIt's exported
// fact alongside its channel summary.
func TickIt(m *Machine, w uint16) {
	m.tick(w) // want `ClassMarker microword \(parameter w\) counted on the exec channel`
}

func markInternally(m *Machine) { TickIt(m, Words.Marker) }

// BurnMem accounts the wait and then burns the execution cycle: the
// read/write pairing a memory-reference word needs.
func BurnMem(m *Machine, w uint16, wait uint64) {
	if wait > 0 {
		m.stall(w, wait)
	}
	m.tick(w)
}
