// Package uwflow seeds class/channel violations for the uwflow analyzer:
// wrong-channel ticks, a read ticked with no stall on any path, a stall
// that arrives only after its tick, and handles flowing through a local
// helper (judged by class inflow) and a cross-package helper (judged by
// its exported channel summary).
package uwflow

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	stalls map[uint16]uint64
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) ticks(w uint16, n uint64) { m.counts[w] += n }
func (m *Machine) stall(w uint16, c uint64) { m.stalls[w] += c }
func (m *Machine) ibStallTick(w uint16)     { m.counts[w]++ }
func (m *Machine) tickFree(w uint16)        { m.counts[w]++ }

type Probe interface {
	Count(w uint16, n uint64)
	Stall(w uint16, c uint64)
}

var cs = uwucode.NewStore()

func def(name string, row uwucode.Row, class uwucode.Class) uint16 {
	return cs.Define(name, row, class)
}

var uw = struct {
	compute uint16
	rd      uint16
	wr      uint16
	ib      uint16
	mark    uint16
}{
	compute: def("flow.compute", uwucode.RowSimple, uwucode.ClassCompute),
	rd:      def("flow.rd", uwucode.RowSimple, uwucode.ClassRead),
	wr:      def("flow.wr", uwucode.RowSimple, uwucode.ClassWrite),
	ib:      def("flow.ib", uwucode.RowSimple, uwucode.ClassIBStall),
	mark:    def("flow.mark", uwucode.RowSimple, uwucode.ClassMarker),
}
