package determinism

// Histogram.Save is a serializer root: a map range here is exactly the
// gob-registry bug class (value-identical, byte-different output).
type Histogram struct {
	buckets map[int]uint64
	out     []uint64
}

func (h *Histogram) Save() { // want `Save must be deterministic .*ranges over a map`
	for _, v := range h.buckets {
		h.out = append(h.out, v)
	}
}

// Board models the justified escape hatch: a map-to-map copy cannot leak
// iteration order, so the allow note (with its mandatory justification)
// suppresses the finding.
type Board struct {
	cpuTime map[uint32]uint64
}

func (b *Board) ExportState() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(b.cpuTime))
	//vaxlint:allow determinism -- map-to-map copy; iteration order cannot reach the result
	for k, v := range b.cpuTime {
		out[k] = v
	}
	return out
}

func (b *Board) ImportState(st map[uint32]uint64) { // want `ImportState must be deterministic .*ranges over a map`
	for k, v := range st {
		b.cpuTime[k] = v
	}
}
