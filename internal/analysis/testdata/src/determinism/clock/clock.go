// Package clock is a dependency fixture: its impurity must reach the
// determinism analyzer's roots in the importing package through the fact
// layer, not through same-package analysis.
package clock

import "time"

// Stamp reads the wall clock; any root that can reach it is impure.
func Stamp() int64 { return time.Now().UnixNano() }

// Pure is deterministic; calling it taints nothing.
func Pure() int64 { return 42 }
