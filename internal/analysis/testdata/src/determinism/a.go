package determinism

import (
	"math/rand"

	"determinism/clock"
)

type Machine struct {
	counts map[string]int
	seen   uint64
}

// StepInstruction reaches the wall clock two calls deep in another
// package; the fact layer must carry the taint across the import.
func (m *Machine) StepInstruction() { // want `StepInstruction must be deterministic .*calls clock\.Stamp, which calls time\.Now`
	m.seen = uint64(stamped())
}

func stamped() int64 { return clock.Stamp() }

// Run draws from the process-global rand source.
func (m *Machine) Run() int { // want `Run must be deterministic .*math/rand\.Intn \(process-global random source`
	return rand.Intn(4)
}

// RunCtx ranges over a map — the iteration-order bug class.
func (m *Machine) RunCtx() int { // want `RunCtx must be deterministic .*ranges over a map`
	n := 0
	for k := range m.counts {
		n += len(k)
	}
	return n
}

// free is impure but unreachable from any root: no finding.
func free() int64 { return clock.Stamp() }

// pureUser only touches the pure dependency: no finding.
func (m *Machine) pureUser() int64 { return clock.Pure() }
