package ulatclean

type Op uint8
type Group uint8

const GroupSimple Group = 0

const (
	ADDX Op = iota
	DBLX
	LOOPX
	FACTX
	PAIRX
	QUADX
)

type OpInfo struct {
	Code  Op
	Name  string
	Group Group
}

var opTable = []OpInfo{
	{ADDX, "ADDX", GroupSimple},
	{DBLX, "DBLX", GroupSimple},
	{LOOPX, "LOOPX", GroupSimple},
	{FACTX, "FACTX", GroupSimple},
	{PAIRX, "PAIRX", GroupSimple},
	{QUADX, "QUADX", GroupSimple},
}
