package ulatclean

type execFn func(*Machine)

var execTable [8]execFn

func register(op Op, fn execFn) { execTable[op] = fn }

func init() {
	register(ADDX, execAdd)
	register(DBLX, execDbl)
	register(LOOPX, execLoop)
	register(FACTX, makeTicker(3))
	for _, op := range []Op{PAIRX, QUADX} {
		register(op, execAdd)
	}
}

// execAdd is the straight line: one compute, one result write, and a
// SPEC1-row dispatch word, which the shared-row policy admits in any
// opcode's word set.
func execAdd(m *Machine) {
	m.tick(uw.op)
	m.tick(uw.spec)
	m.tick(uw.wr)
	m.stall(uw.wr, 1)
}

// execDbl branches: the short path costs one compute, the long path two.
func execDbl(m *Machine) {
	if m.r0 > 0 {
		m.tick(uw.op)
		m.tick(uw.op)
	} else {
		m.tick(uw.op)
	}
}

// execLoop is the data-dependent case: the iteration count comes from
// machine state, so the compute cost appears as a loop term, not a
// bound.
func execLoop(m *Machine) {
	n := m.r0
	for i := 0; i < n; i++ {
		m.tick(uw.step)
	}
}

// makeTicker is a factory handler: the constant flows through the
// closure and folds into an exact bound.
func makeTicker(k int) execFn {
	return func(m *Machine) {
		m.ticks(uw.op, uint64(k))
	}
}
