// Package ulatclean is the clean negative for the ulat analyzer: every
// registered opcode's bounds derive exactly — straight-line, branching,
// data-dependent loop, factory-built handler, and a shared-row
// specifier word — so the derivation must stay silent and the table it
// returns is pinned by TestULatTable.
package ulatclean

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	r0     int
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) ticks(w uint16, n uint64) { m.counts[w] += n }
func (m *Machine) stall(w uint16, c uint64) {}

var cs = uwucode.NewStore()

func def(name string, row uwucode.Row, class uwucode.Class) uint16 {
	return cs.Define(name, row, class)
}

var uw = struct {
	op   uint16
	wr   uint16
	step uint16
	spec uint16
}{
	op:   def("clean.op", uwucode.RowSimple, uwucode.ClassCompute),
	wr:   def("clean.wr", uwucode.RowSimple, uwucode.ClassWrite),
	step: def("clean.step", uwucode.RowSimple, uwucode.ClassCompute),
	spec: def("clean.spec", uwucode.RowSpec1, uwucode.ClassDispatch),
}
