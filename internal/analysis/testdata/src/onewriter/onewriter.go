// Package onewriter is the golden fixture for the single-writer
// analyzer: a goroutine-owned tally read by the coordinator before the
// Wait barrier.
package onewriter

// WaitGroup models sync.WaitGroup (matched by type name).
type WaitGroup struct{}

func (g *WaitGroup) Add(int) {}
func (g *WaitGroup) Done()   {}
func (g *WaitGroup) Wait()   {}

type tally struct{ n int }

func (t *tally) bump() { t.n++ }

type crew struct {
	local *tally
	done  *WaitGroup
}

// Race reads the crew's tally after the spawn but before the Wait: it
// races the owning goroutine's writes. The read after Wait is fine.
func Race() int {
	wg := &WaitGroup{}
	crews := []*crew{{local: &tally{}, done: wg}}
	wg.Add(1)
	go crews[0].work()
	early := crews[0].local.n // want `has no Wait barrier between the spawn and here`
	wg.Wait()
	return early + crews[0].local.n
}

func (c *crew) work() {
	c.local.bump()
	c.done.Done()
}
