// Package fault mirrors the shape of vax780/internal/fault for the
// probesafe testdata: an injection plane whose hooks must stay pure
// observers.
package fault

type Plane struct{}

func (p *Plane) SetObserver(fn func(int)) {}

func Register(fn func() bool) {}
