// Package a seeds probesafe violations: counter pokes from outside the
// monitor's package and goroutines capturing a *Machine.
package a

import (
	"probesafe/core"
	"probesafe/fault"
)

type Machine struct{ probe *core.Monitor }

func poke(mo *core.Monitor, h *core.Histogram) uint64 {
	mo.Running = true // want "direct access to core.Monitor field Running"
	h.Counts[3]++     // want "direct access to core.Histogram field Counts"
	s := mo.Snapshot()
	return s.Stalls[0] // want "direct access to core.Histogram field Stalls"
}

func helper(m *Machine) {}

func spawn(m *Machine, done chan struct{}) {
	go func() { // want "goroutine captures \\*Machine"
		m.probe = nil
		close(done)
	}()
	go helper(m) // want "goroutine captures \\*Machine"
	go func() { close(done) }()
}

func wire(m *Machine, p *fault.Plane, count *int) {
	p.SetObserver(func(int) { // want "fault hook captures \\*Machine"
		m.probe = nil
	})
	fault.Register(func() bool { return m != nil }) // want "fault hook captures \\*Machine"
	p.SetObserver(func(int) { *count++ })           // pure observer: fine
	fault.Register(func() bool { return *count > 0 })
}
