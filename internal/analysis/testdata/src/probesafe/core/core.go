// Package core mirrors the shape of vax780/internal/core for the
// probesafe testdata: a monitor with counter fields that must only be
// touched through the command interface.
package core

type Histogram struct {
	Counts [16]uint64
	Stalls [16]uint64
}

type Monitor struct {
	Hist    Histogram
	Running bool
}

func (m *Monitor) Snapshot() *Histogram {
	h := m.Hist
	return &h
}

func (m *Monitor) Start() { m.Running = true }
