// Package uwvalue seeds class violations that are only visible through
// the type-based callee approximation: microwords dispatched through a
// table of a *named* function type. The dispatch site has no static
// callee; the classes of the dispatched words arrive on the candidates'
// parameters as inflow, so the findings land at the count sites inside
// the registered function and the registered closure.
package uwvalue

import "uwucode"

type Machine struct {
	counts map[uint16]uint64
	stalls map[uint16]uint64
}

func (m *Machine) tick(w uint16)            { m.counts[w]++ }
func (m *Machine) stall(w uint16, c uint64) { m.stalls[w] += c }

var cs = uwucode.NewStore()

var uw = struct {
	compute uint16
	mark    uint16
}{
	compute: cs.Define("value.compute", uwucode.RowSimple, uwucode.ClassCompute),
	mark:    cs.Define("value.mark", uwucode.RowSimple, uwucode.ClassMarker),
}

// handler is the named function type of the dispatch table.
type handler func(m *Machine, w uint16)

// tickWord is registered in the table; the marker word reaches its
// parameter only through the dynamic dispatch below.
func tickWord(m *Machine, w uint16) {
	m.tick(w) // want `ClassMarker microword \(parameter w\) counted on the exec channel; ClassMarker words are counted only on free`
}

var table = [...]handler{
	tickWord,
	func(m *Machine, w uint16) {
		m.tick(w) // want `ClassMarker microword \(parameter w\) counted on the exec channel; ClassMarker words are counted only on free`
	},
}

func dispatch(m *Machine, i int) {
	table[i](m, uw.compute) // clean: compute words may tick
	table[i](m, uw.mark)
}
