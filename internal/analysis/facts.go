package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// Fact layer. Mirroring golang.org/x/tools/go/analysis, an analyzer may
// attach typed facts to types.Objects while analyzing the package that
// declares them, and read those facts back while analyzing any package
// that imports it. The engine runs package-level analyzers over the load
// in dependency order (the loader's topological order), so by the time a
// pass sees a cross-package reference the fact for the referenced object
// has already been computed. This is what makes cheap interprocedural
// analyses (the determinism analyzer's purity propagation) possible
// without whole-program fixed points: facts summarize a dependency once,
// and downstream packages consume the summary.
//
// Facts are keyed by (analyzer, object); an analyzer can neither see nor
// clobber another analyzer's facts.

// Fact is a typed datum attached to a types.Object by an analyzer. The
// marker method exists only to catch accidental exports of untyped
// values; implementations must be pointer types so ImportObjectFact can
// fill the caller's copy.
type Fact interface {
	AFact()
}

// factKey identifies one fact: facts are per-analyzer, per-object.
type factKey struct {
	obj types.Object
}

// factStore is one analyzer's fact table, shared by every pass of that
// analyzer across the load.
type factStore map[factKey]Fact

// ExportObjectFact attaches a fact to obj for later passes of the same
// analyzer. The object should belong to the package under analysis —
// exporting facts about another package's objects is allowed (the store
// is load-wide) but facts flow reliably only in dependency order.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil {
		panic("ExportObjectFact: nil object")
	}
	if f == nil || reflect.ValueOf(f).Kind() != reflect.Pointer {
		panic(fmt.Sprintf("ExportObjectFact: fact %T must be a pointer", f))
	}
	if p.facts == nil {
		panic(fmt.Sprintf("analyzer %s has no fact store (module-level analyzers cannot export facts)", p.Analyzer.Name))
	}
	p.facts[factKey{obj}] = f
}

// ImportObjectFact copies the fact previously exported for obj into ptr
// (which must be a pointer to the same concrete fact type) and reports
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil {
		return false
	}
	f, ok := p.facts[factKey{obj}]
	if !ok {
		return false
	}
	got, want := reflect.TypeOf(f), reflect.TypeOf(ptr)
	if got != want {
		panic(fmt.Sprintf("ImportObjectFact: fact for %s is %s, caller asked for %s", obj.Name(), got, want))
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}
