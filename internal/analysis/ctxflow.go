package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow extends the PR 3 cancellation contract from "Machine.RunCtx
// exists" to "cancellation provably reaches every block point". In any
// ctx-aware function — one with a context.Context parameter, or a method
// whose receiver struct carries a context.Context field, as the farm's
// workers do — every operation that can block forever must be
// select-guarded so ctx.Done can preempt it:
//
//   - a channel send or receive outside any select
//   - a select with neither a default arm nor a ctx.Done receive arm
//   - ranging over a channel (ends only when someone closes it)
//   - WaitGroup.Wait
//
// Receives that are themselves the cancellation signal (<-ctx.Done(),
// or a variable assigned from ctx.Done()) and bounded waits
// (<-time.After(d)) are exempt. The check is intraprocedural: each
// ctx-aware body answers for its own block points; bodies without ctx
// access have, by construction, no cancellation to propagate and are
// someone else's contract. Where the protocol itself is the guarantee —
// the worker's range over dispatch, whose closing owner is proved by
// chanprot — a justified //vaxlint:allow ctxflow documents the argument.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "every blocking op in a ctx-aware function is select-guarded by ctx, bounded, or justified",
	Run:  runCtxFlow,
}

type ctxChecker struct {
	pass   *Pass
	pkg    *Package
	done   map[*types.Var]bool // vars assigned from ctx.Done()
	inComm map[ast.Node]bool   // send/recv nodes that are select comm ops
}

func runCtxFlow(pass *Pass) error {
	c := &ctxChecker{
		pass:   pass,
		pkg:    pass.Pkg,
		done:   ctxDoneVars(pass.Pkg),
		inComm: selectCommOps(pass.Pkg),
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.walkBody(fd.Body, c.subjectDecl(fd))
		}
	}
	return nil
}

// subjectDecl reports whether a declared function is ctx-aware: a
// context.Context parameter, or a receiver whose struct type holds a
// context.Context field.
func (c *ctxChecker) subjectDecl(fd *ast.FuncDecl) bool {
	obj, _ := c.pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if signatureHasCtx(sig) {
		return true
	}
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func signatureHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// walkBody checks one function body; nested literals inherit the
// enclosing subject-ness (a literal inside a ctx-aware body shares its
// cancellation obligation) or establish their own via a ctx parameter.
func (c *ctxChecker) walkBody(body *ast.BlockStmt, subject bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litSubject := subject
			if sig, ok := c.pkg.Info.TypeOf(n).(*types.Signature); ok && signatureHasCtx(sig) {
				litSubject = true
			}
			c.walkBody(n.Body, litSubject)
			return false
		case *ast.SelectStmt:
			if subject && len(n.Body.List) > 0 && !c.guardedSelect(n) {
				c.pass.Reportf(n.Pos(),
					"select without a ctx.Done arm or default: cancellation cannot preempt whichever arm blocks (add case <-ctx.Done(), or //vaxlint:allow ctxflow)")
			}
		case *ast.SendStmt:
			if subject && !c.inComm[n] {
				c.pass.Reportf(n.Arrow,
					"channel send can block past cancellation: wrap it in a select with a ctx.Done arm, or //vaxlint:allow ctxflow")
			}
		case *ast.UnaryExpr:
			if subject && n.Op == token.ARROW && !c.inComm[n] && !c.exemptRecv(n.X) {
				c.pass.Reportf(n.OpPos,
					"channel receive can block past cancellation: wrap it in a select with a ctx.Done arm, or //vaxlint:allow ctxflow")
			}
		case *ast.RangeStmt:
			if subject && isChanType(c.pkg.Info.TypeOf(n.X)) {
				c.pass.Reportf(n.For,
					"ranging over a channel blocks past cancellation: the loop ends only when the channel closes (receive in a ctx-guarded select, or //vaxlint:allow ctxflow)")
			}
		case *ast.CallExpr:
			if subject && isWaitGroupWait(c.pkg.Info, n) {
				c.pass.Reportf(n.Pos(),
					"WaitGroup.Wait can block past cancellation: bound it (workers exiting on ctx/closed dispatch), or //vaxlint:allow ctxflow")
			}
		}
		return true
	})
}

// guardedSelect reports whether a select can always be preempted: a
// default arm, or a receive arm on ctx.Done (direct call or done-var).
func (c *ctxChecker) guardedSelect(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		if u := commRecv(cc.Comm); u != nil && c.isDoneExpr(u.X) {
			return true
		}
	}
	return false
}

// exemptRecv reports whether receiving from e cannot outlive the
// contract: the cancellation signal itself, or a bounded timer.
func (c *ctxChecker) exemptRecv(e ast.Expr) bool {
	if c.isDoneExpr(e) {
		return true
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return timeFuncName(c.pkg.Info, call) == "After"
	}
	return false
}

// isDoneExpr reports whether e is ctx.Done() (a Done call on a
// context.Context) or a variable assigned from one.
func (c *ctxChecker) isDoneExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Done" && isContextType(c.pkg.Info.TypeOf(sel.X))
	case *ast.Ident:
		v, ok := c.pkg.Info.Uses[e].(*types.Var)
		return ok && c.done[v]
	case *ast.SelectorExpr:
		v, ok := c.pkg.Info.Uses[e.Sel].(*types.Var)
		return ok && c.done[v]
	}
	return false
}

// ctxDoneVars collects every variable in pkg assigned from a ctx.Done()
// call, so `doneC := ctx.Done(); <-doneC` counts as guarded.
func ctxDoneVars(pkg *Package) map[*types.Var]bool {
	done := make(map[*types.Var]bool)
	isDoneCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Done" && isContextType(pkg.Info.TypeOf(sel.X))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if !isDoneCall(n.Rhs[i]) {
						continue
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						done[v] = true
					} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						done[v] = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && isDoneCall(n.Values[i]) {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							done[v] = true
						}
					}
				}
			}
			return true
		})
	}
	return done
}

// selectCommOps collects the send/recv nodes that are comm operations of
// any select in pkg: the select itself answers for them.
func selectCommOps(pkg *Package) map[ast.Node]bool {
	comms := make(map[ast.Node]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, cs := range sel.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if s, ok := cc.Comm.(*ast.SendStmt); ok {
					comms[s] = true
				}
				if u := commRecv(cc.Comm); u != nil {
					comms[u] = true
				}
			}
			return true
		})
	}
	return comms
}

// commRecv extracts the receive expression of a select comm statement.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if e == nil {
		return nil
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}
