package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// UWRef proves that every microword name the module refers to resolves in
// the control-store map built by def()/Store.Define() calls.
//
// Microword names are dot-paths ("exec.br.cond.entry"). The reduction
// engine references them as string literals (directly, in lookup tables,
// and as prefixes concatenated with computed segments), and a typo is
// silent until a run panics in MustLookup or — worse — a Lookup miss
// quietly drops a table cell. The analyzer:
//
//   - collects the declared names: literal Define/def arguments, plus
//     names built by helper functions (one level of call-site constant
//     propagation, so defSpecBank("spec1", …) declares "spec1.stall" and
//     the pattern "spec1.disp.*");
//   - reports duplicate literal declarations (today an init-time panic);
//   - reports any microword-shaped string literal elsewhere in the module
//     that resolves to no declared name or pattern (literals ending in "."
//     are treated as prefixes and must be extensible to a declared name);
//   - reports fields of a microword-handle struct literal (a struct
//     initialised with def() calls) that are never assigned: a forgotten
//     field keeps address 0, the reserved control-store location, and
//     silently swallows its counts.
var UWRef = &Analyzer{
	Name:        "uwref",
	Doc:         "resolve microword name references against the control-store declarations",
	ModuleLevel: true,
	Run:         runUWRef,
}

// uwDecls is the statically known control-store namespace.
type uwDecls struct {
	exact    map[string]token.Pos // literal (or fully folded) names
	patterns []string             // names with '*' wildcards for computed segments
	litPos   map[token.Pos]bool   // positions of literals that ARE declarations
}

func runUWRef(pass *Pass) error {
	decls := &uwDecls{
		exact:  make(map[string]token.Pos),
		litPos: make(map[token.Pos]bool),
	}
	collectUWDecls(pass, decls)
	if len(decls.exact) == 0 && len(decls.patterns) == 0 {
		return nil // no control store in this load
	}
	roots := make(map[string]bool)
	for name := range decls.exact {
		roots[firstSegment(name)] = true
	}
	for _, p := range decls.patterns {
		if seg := firstSegment(p); !strings.Contains(seg, "*") {
			roots[seg] = true
		}
	}

	for _, pkg := range pass.All {
		checkUWFieldInit(pass, pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if decls.litPos[lit.Pos()] {
					return true
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil || !looksLikeMicroword(v, roots) {
					return true
				}
				if !decls.resolves(v) {
					pass.Reportf(lit.Pos(), "no microword matching %q is defined in the control store", v)
				}
				return true
			})
		}
	}
	return nil
}

// collectUWDecls walks every package gathering Define/def calls, folding
// their name arguments, and instantiating helper-function name templates
// at their call sites.
func collectUWDecls(pass *Pass, decls *uwDecls) {
	// tmpl is a declaration whose name depends on parameters of its
	// enclosing function; markers "\x00name\x00" stand for the parameters.
	type tmpl struct {
		fn      *types.Func
		params  []string // parameter names, in call-argument order
		pattern string
	}
	var tmpls []tmpl

	for _, pkg := range pass.All {
		WalkWithStack(pkg, func(stack []ast.Node, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isDefineCall(call) || len(call.Args) < 1 {
				return
			}
			fd := enclosingFunc(stack)
			params := paramNames(fd)
			name, usesParam := foldName(pkg, call.Args[0], params)
			decls.markLiterals(call.Args[0])
			switch {
			case usesParam && fd != nil:
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				tmpls = append(tmpls, tmpl{fn: obj, params: params, pattern: name})
			case !strings.Contains(name, "*"):
				if prev, dup := decls.exact[name]; dup {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						pass.Reportf(lit.Pos(), "duplicate microword name %q (previously defined at %s)",
							name, pass.Fset.Position(prev))
					}
				} else {
					decls.exact[name] = call.Args[0].Pos()
				}
			case name != "*":
				decls.patterns = append(decls.patterns, name)
			}
		})
	}

	// Instantiate parameter-dependent templates at their call sites.
	for _, t := range tmpls {
		if t.fn == nil {
			continue
		}
		instantiated := false
		for _, pkg := range pass.All {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var callee *ast.Ident
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						callee = fun
					case *ast.SelectorExpr:
						callee = fun.Sel
					default:
						return true
					}
					if pkg.Info.Uses[callee] != t.fn {
						return true
					}
					name := t.pattern
					for i, p := range t.params {
						val := "*"
						if i < len(call.Args) {
							if lit, ok := call.Args[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
								if s, err := strconv.Unquote(lit.Value); err == nil {
									val = s
								}
							}
						}
						name = strings.ReplaceAll(name, "\x00"+p+"\x00", val)
					}
					name = collapseStars(name)
					instantiated = true
					if !strings.Contains(name, "*") {
						if _, dup := decls.exact[name]; !dup {
							decls.exact[name] = call.Pos()
						}
					} else if name != "*" {
						decls.patterns = append(decls.patterns, name)
					}
					return true
				})
			}
		}
		if !instantiated {
			if p := collapseStars(wildcardMarkers(t.pattern)); p != "*" {
				decls.patterns = append(decls.patterns, p)
			}
		}
	}
}

// markLiterals records the positions of string literals inside a Define
// name argument so the reference scan does not re-check declarations.
func (d *uwDecls) markLiterals(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			d.litPos[lit.Pos()] = true
		}
		return true
	})
}

// resolves reports whether a referenced name (or, with a trailing dot, a
// name prefix) matches the declared namespace.
func (d *uwDecls) resolves(ref string) bool {
	if strings.HasSuffix(ref, ".") {
		for name := range d.exact {
			if strings.HasPrefix(name, ref) {
				return true
			}
		}
		for _, p := range d.patterns {
			if globsIntersect(p, ref+"*") {
				return true
			}
		}
		return false
	}
	if _, ok := d.exact[ref]; ok {
		return true
	}
	for _, p := range d.patterns {
		if globsIntersect(p, ref) {
			return true
		}
	}
	return false
}

// enclosingFunc returns the innermost function declaration on the stack.
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// paramNames lists a function's parameter names in call-argument order.
func paramNames(fd *ast.FuncDecl) []string {
	if fd == nil || fd.Type.Params == nil {
		return nil
	}
	var out []string
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// isDefineCall recognises the project's two declaration spellings:
// the package-local helper def(...) and the Store.Define(...) method.
func isDefineCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "def"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Define"
	}
	return false
}

// foldName folds a Define name expression into a string where computed
// segments become "*" and references to enclosing-function parameters
// become "\x00param\x00" markers. usesParam reports whether any marker
// was produced.
func foldName(pkg *Package, e ast.Expr, params []string) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if s, err := strconv.Unquote(e.Value); err == nil {
				return s, false
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			l, lp := foldName(pkg, e.X, params)
			r, rp := foldName(pkg, e.Y, params)
			return collapseStars(l + r), lp || rp
		}
	case *ast.Ident:
		for _, p := range params {
			if e.Name == p {
				return "\x00" + p + "\x00", true
			}
		}
		if c, ok := pkg.Info.Uses[e].(*types.Const); ok {
			if c.Val().Kind() == constant.String {
				return constant.StringVal(c.Val()), false
			}
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" && len(e.Args) > 0 {
			if f, ok := e.Args[0].(*ast.BasicLit); ok && f.Kind == token.STRING {
				if format, err := strconv.Unquote(f.Value); err == nil {
					return foldSprintf(pkg, format, e.Args[1:], params)
				}
			}
		}
	}
	return "*", false
}

// foldSprintf substitutes the folded verb arguments into a Sprintf format.
func foldSprintf(pkg *Package, format string, args []ast.Expr, params []string) (string, bool) {
	var sb strings.Builder
	usesParam := false
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			sb.WriteByte(format[i])
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			sb.WriteByte('%')
			i++
			continue
		}
		// Skip flags/width to the verb character.
		j := i + 1
		for j < len(format) && !isVerbChar(format[j]) {
			j++
		}
		i = j
		if arg < len(args) {
			s, p := foldName(pkg, args[arg], params)
			sb.WriteString(s)
			usesParam = usesParam || p
			arg++
		} else {
			sb.WriteString("*")
		}
	}
	return collapseStars(sb.String()), usesParam
}

func isVerbChar(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// checkUWFieldInit verifies that every field of a microword-handle struct
// literal (a keyed struct literal whose values call def/Define) is
// initialised.
func checkUWFieldInit(pass *Pass, pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			st, ok := cl.Type.(*ast.StructType)
			if !ok || !containsDefineCall(cl) {
				return true
			}
			set := make(map[string]bool)
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if k, ok := kv.Key.(*ast.Ident); ok {
						set[k.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if !set[name.Name] {
						pass.Reportf(name.Pos(),
							"microword handle field %q is never initialised; it keeps address 0, the reserved control-store location",
							name.Name)
					}
				}
			}
			return true
		})
	}
}

func containsDefineCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isDefineCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// looksLikeMicroword reports whether a string literal is shaped like a
// control-store dot-path rooted at a declared namespace root.
func looksLikeMicroword(v string, roots map[string]bool) bool {
	if !strings.Contains(v, ".") || strings.ContainsAny(v, "/ \t\n%\"") {
		return false
	}
	seg := firstSegment(v)
	if seg == "" || !roots[seg] {
		return false
	}
	return true
}

func firstSegment(s string) string {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

func collapseStars(s string) string {
	for strings.Contains(s, "**") {
		s = strings.ReplaceAll(s, "**", "*")
	}
	return s
}

// wildcardMarkers turns leftover parameter markers into wildcards.
func wildcardMarkers(s string) string {
	var sb strings.Builder
	in := false
	for i := 0; i < len(s); i++ {
		if s[i] == '\x00' {
			if !in {
				sb.WriteByte('*')
			}
			in = !in
			continue
		}
		if !in {
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// globsIntersect reports whether two patterns over literal characters and
// '*' wildcards can match a common string.
func globsIntersect(a, b string) bool {
	type key struct{ i, j int }
	memo := make(map[key]int) // 0 unknown, 1 true, 2 false
	var rec func(i, j int) bool
	rec = func(i, j int) bool {
		k := key{i, j}
		if v := memo[k]; v != 0 {
			return v == 1
		}
		memo[k] = 2
		var res bool
		switch {
		case i == len(a) && j == len(b):
			res = true
		case i < len(a) && a[i] == '*':
			res = rec(i+1, j) || (j < len(b) && rec(i, j+1))
		case j < len(b) && b[j] == '*':
			res = rec(i, j+1) || (i < len(a) && rec(i+1, j))
		case i < len(a) && j < len(b) && a[i] == b[j]:
			res = rec(i+1, j+1)
		}
		if res {
			memo[k] = 1
		}
		return res
	}
	return rec(0, 0)
}
