package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestEscapeGroundTruth confronts the hotpath analyzer's composite-literal
// escape verdicts with the compiler's own escape analysis (`go build
// -gcflags=-m`) over the real hot set, and fails on drift in either
// direction:
//
//   - understated (the hole): the analyzer claims a literal stays on the
//     stack — a slice literal ranged over in place — but the compiler
//     reports "escapes to heap" at that position. The perf contract would
//     be silently blessing a per-cycle allocation. Zero tolerance.
//
//   - overstated (the noise): the analyzer claims a literal allocates but
//     the compiler proves "does not escape". The analyzer is documented as
//     deliberately coarser than the compiler (it has no interprocedural
//     leak analysis), so known over-approximations are pinned below with a
//     reason; the test fails when a NEW one appears (decide: fix the code,
//     or pin it) and when a pinned one disappears (the pin is stale —
//     drop it). Either way the diff against ground truth stays current.
//
// Both sides anchor their verdict at the same position — the literal, or
// the `&` of an escaping &T{…} — which is what makes the diff exact: the
// analyzer through compositeVerdict (the same judgment checkHotComposite
// reports from), the compiler through its `T{...} escapes to heap` /
// `T{...} does not escape` diagnostics. Line-allowed sites are included:
// an //vaxlint:allow hotpath note justifies an allocation, it does not
// dispute one, so the ground truth keeps the note honest too.
func TestEscapeGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build -gcflags=-m")
	}
	root := moduleRootDir(t)
	pkgs, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: HotPath, Fset: pkgs[0].Fset, All: pkgs, diags: &diags, allows: buildAllowIndex(pkgs)}
	hs := buildHotSet(pass)

	type claim struct {
		verdict escVerdict
		kind    string
		chain   string
	}
	claims := make(map[string]claim) // "rel/file.go:line:col" → verdict
	hotPkgs := make(map[string]bool)
	for _, n := range hs.nodes {
		hotPkgs[n.pkg.Path] = true
		hs.scanHot(n, func(stack []ast.Node, node ast.Node) bool {
			lit, ok := node.(*ast.CompositeLit)
			if !ok {
				return true
			}
			var parent ast.Node
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			v := compositeVerdict(n.pkg.Info, parent, lit)
			if v.verdict == escSilent {
				return true
			}
			p := pass.Fset.Position(v.truthPos)
			key := fmt.Sprintf("%s:%d:%d", relTo(root, p.Filename), p.Line, p.Column)
			claims[key] = claim{v.verdict, v.kind, n.chain}
			return true
		})
	}
	if len(claims) == 0 {
		t.Fatal("no composite-literal verdicts anywhere in the hot set; the hot-set walk or the verdict function is broken")
	}

	truth := compilerEscapes(t, root, sortedKeys(hotPkgs))

	var drift []string
	for _, pos := range sortedKeys(claims) {
		c := claims[pos]
		escapes, seen := truth[pos]
		switch c.verdict {
		case escStack:
			if seen && escapes {
				drift = append(drift, fmt.Sprintf(
					"%s: analyzer claims stack (%s literal ranged in place; %s) but the compiler reports it escapes to heap",
					pos, c.kind, c.chain))
			}
		case escHeap:
			switch {
			case !seen:
				drift = append(drift, fmt.Sprintf(
					"%s: analyzer claims heap (%s literal; %s) but the compiler emitted no escape verdict at this position — the anchor positions have diverged",
					pos, c.kind, c.chain))
			case !escapes && knownOverApprox[pos] == "":
				drift = append(drift, fmt.Sprintf(
					"%s: analyzer claims heap (%s literal; %s) but the compiler proves it does not escape — a new over-approximation; fix the site (and its allow note) or pin it in knownOverApprox with a reason",
					pos, c.kind, c.chain))
			}
		}
	}
	for _, pos := range sortedKeys(knownOverApprox) {
		c, ok := claims[pos]
		if !ok || c.verdict != escHeap {
			drift = append(drift, fmt.Sprintf(
				"%s: pinned over-approximation no longer has a heap verdict in the hot set — drop the stale knownOverApprox entry",
				pos))
			continue
		}
		if escapes, seen := truth[pos]; seen && escapes {
			drift = append(drift, fmt.Sprintf(
				"%s: pinned as compiler-proven stack-resident, but the compiler now reports it escapes to heap — drop the pin; the analyzer's verdict is exact here",
				pos))
		}
	}
	if len(drift) > 0 {
		t.Errorf("hotpath escape verdicts drifted from go build -gcflags=-m ground truth:\n  %s",
			strings.Join(drift, "\n  "))
	}
}

// knownOverApprox pins every hot-set site where the analyzer's coarse
// judgment says heap but the compiler proves the allocation away. Keys are
// module-root-relative "file:line:col" of the verdict anchor; values say
// why the compiler wins. An entry here still carries its //vaxlint:allow
// note in the source — the analyzer keeps flagging the shape — but the
// ground truth records that the per-cycle cost the note tolerates does
// not, with the current compiler, actually exist.
var knownOverApprox = map[string]string{
	"internal/cpu/exec.go:119:44": "arith-trap parameter slice: deliverException copies the words into machine state and never leaks the slice, so the backing array stays on the caller's stack",
	"internal/cpu/exec.go:301:44": "page-fault parameter slice: same deliverException sink as exec.go:119",
	"internal/cpu/exec.go:306:44": "memory-management-fault parameter slice: same deliverException sink as exec.go:119",
}

// escLine matches one compiler escape diagnostic:
//
//	internal/cpu/exec.go:105:44: []uint32{...} does not escape
var escLine = regexp.MustCompile(`^(.+\.go:\d+:\d+): .* (escapes to heap|does not escape)$`)

// compilerEscapes builds `pkgs` with -gcflags=-m from the module root and
// indexes every escape verdict by "file:line:col" (root-relative, the
// compiler's own rendering). true = escapes to heap. When one position
// carries several verdicts (generic instantiations), escaping wins: the
// analyzer's stack claim must hold for every instantiation.
func compilerEscapes(t *testing.T, root string, pkgs []string) map[string]bool {
	t.Helper()
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}
	truth := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := escLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		escapes := m[2] == "escapes to heap"
		truth[m[1]] = truth[m[1]] || escapes
	}
	if len(truth) == 0 {
		t.Fatalf("go build -gcflags=-m over %v produced no escape diagnostics; the -m output format has changed", pkgs)
	}
	return truth
}

// moduleRootDir walks up from the test's working directory to go.mod.
func moduleRootDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// relTo renders filename relative to root when it lives under it, matching
// the compiler's root-relative rendering of positions.
func relTo(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

// sortedKeys renders a map's keys in a deterministic reporting order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
