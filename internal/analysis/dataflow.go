package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Forward dataflow over the CFGs of cfg.go. The lattice value of one
// local variable is a valueSet — the set of microword handles the
// variable may hold plus the parameters it may alias — and the
// environment maps locals to values. Joins are set unions (a
// may-analysis), transfer is strong update on assignment, and the fixed
// point terminates because the per-function lattice is finite and every
// operation is monotone. Expressions that the model cannot interpret
// (arithmetic, channel receives, map loads, calls with no static callee)
// evaluate to bottom: a handle laundered through one of them simply stops
// being tracked, which for every downstream verdict errs toward silence,
// never toward a false finding — except uwdead, whose reachability proof
// this makes conservative in the other direction; its fixtures and
// DESIGN.md §12 spell the trade-off out.

// valueSet is one lattice value: which handles and which enclosing-
// function parameters a value may originate from.
type valueSet struct {
	handles map[int]bool        // indices into uwModel.handles
	params  map[*types.Var]bool // parameters of the enclosing function
}

func (v valueSet) empty() bool { return len(v.handles) == 0 && len(v.params) == 0 }

func (v *valueSet) addHandle(i int) {
	if v.handles == nil {
		v.handles = make(map[int]bool)
	}
	v.handles[i] = true
}

func (v *valueSet) addParam(p *types.Var) {
	if v.params == nil {
		v.params = make(map[*types.Var]bool)
	}
	v.params[p] = true
}

// merge unions src into v, reporting change.
func (v *valueSet) merge(src valueSet) bool {
	changed := false
	for i := range src.handles {
		if !v.handles[i] {
			v.addHandle(i)
			changed = true
		}
	}
	for p := range src.params {
		if !v.params[p] {
			v.addParam(p)
			changed = true
		}
	}
	return changed
}

// sharesOrigin reports whether two values can stem from the same source —
// a common handle or a common parameter. The read/write pairing check
// uses it to demand that the stall accounted belongs to the word ticked.
func (v valueSet) sharesOrigin(o valueSet) bool {
	for i := range v.handles {
		if o.handles[i] {
			return true
		}
	}
	for p := range v.params {
		if o.params[p] {
			return true
		}
	}
	return false
}

// env is the abstract state at one program point.
type env map[types.Object]valueSet

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		var c valueSet
		c.merge(v)
		out[k] = c
	}
	return out
}

// join unions src into e, reporting change.
func (e env) join(src env) bool {
	changed := false
	for k, v := range src {
		cur := e[k]
		if cur.merge(v) {
			e[k] = cur
			changed = true
		}
	}
	return changed
}

// uwSite is one call site with its abstract arguments.
type uwSite struct {
	call    *ast.CallExpr
	callee  *types.Func     // nil for raw probe and dynamic calls
	probeCh uwChannel       // set when callee is nil (interface dispatch on Probe)
	dyn     *types.TypeName // named function type of a call with no static callee
	block   *Block
	ord     int // site ordinal within the function, in block-statement order
	args    []valueSet
}

// funcFlow is the analyzed state of one function or literal: its CFG, the
// fixed-point env at each block entry, and every call site with abstract
// argument values.
type funcFlow struct {
	pkg      *Package
	fd       FuncDecl
	fn       *types.Func  // nil for literals
	lit      *ast.FuncLit // nil for declared functions
	cfg      *CFG
	blockIn  []env
	sites    []*uwSite
	paramIdx map[*types.Var]int
	nparams  int
}

// flowFunc builds the CFG of fd, runs the forward fixed point, and
// extracts the call sites with their abstract arguments.
func (m *uwModel) flowFunc(pkg *Package, fd FuncDecl) {
	flow := m.flowBody(pkg, fd.Obj, fd.Obj.Type().(*types.Signature), fd.Decl.Body)
	flow.fd = fd
	m.flows[fd.Obj] = flow
}

// flowLit analyzes one function literal as its own flow. The count sites
// inside it are real sites (the exec microroutines are registered as
// literals in init), and the literal carries a real summary and inflow,
// keyed by its AST node, so a table dispatch through a named function
// type sees the closure's channels. Free variables of the enclosing
// function evaluate to bottom; package vars and handle-struct fields
// still resolve through the static bindings.
func (m *uwModel) flowLit(pkg *Package, lit *ast.FuncLit) {
	tv, ok := pkg.Info.Types[ast.Expr(lit)]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	flow := m.flowBody(pkg, nil, sig, lit.Body)
	flow.lit = lit
	m.litFlows[lit] = flow
}

// flowBody is the engine shared by flowFunc and flowLit: CFG, forward
// fixed point, site extraction. fn is nil for literals; the flow is
// appended to flowLst either way, so site-driven verdicts cover closures.
func (m *uwModel) flowBody(pkg *Package, fn *types.Func, sig *types.Signature, body *ast.BlockStmt) *funcFlow {
	flow := &funcFlow{
		pkg:      pkg,
		fn:       fn,
		cfg:      BuildCFG(body),
		paramIdx: make(map[*types.Var]int),
		nparams:  sig.Params().Len(),
	}
	entry := make(env)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		flow.paramIdx[p] = i
		var v valueSet
		v.addParam(p)
		entry[p] = v
	}

	n := len(flow.cfg.Blocks)
	flow.blockIn = make([]env, n)
	for i := range flow.blockIn {
		flow.blockIn[i] = make(env)
	}
	flow.blockIn[0].join(entry)

	// Worklist fixed point: recompute a block's out-state and propagate to
	// successors until nothing changes.
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := flow.cfg.Blocks[bi]
		out := flow.blockIn[bi].clone()
		for _, s := range blk.Stmts {
			m.transfer(flow, out, s)
		}
		for _, succ := range blk.Succs {
			if flow.blockIn[succ.Index].join(out) && !inWork[succ.Index] {
				work = append(work, succ.Index)
				inWork[succ.Index] = true
			}
		}
	}

	// Site extraction: replay each block from its fixed-point entry state,
	// evaluating the arguments of every statically resolvable call (and
	// raw Probe calls) against the env in force at the statement.
	ord := 0
	for _, blk := range flow.cfg.Blocks {
		cur := flow.blockIn[blk.Index].clone()
		for _, s := range blk.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures are separate flows the model does not enter
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				site := &uwSite{call: call, block: blk, ord: ord}
				if fn := Callee(pkg.Info, call); fn != nil {
					site.callee = fn
				} else if ch, ok := probeChannelOf(pkg, call); ok {
					site.probeCh = ch
				} else if tn := DynamicFuncType(pkg.Info, call); tn != nil {
					site.dyn = tn
				} else {
					return true
				}
				ord++
				site.args = make([]valueSet, len(call.Args))
				for i, a := range call.Args {
					site.args[i] = m.eval(flow, cur, a)
				}
				flow.sites = append(flow.sites, site)
				return true
			})
			m.transfer(flow, cur, s)
		}
	}

	m.flowLst = append(m.flowLst, flow)
	return flow
}

// transfer applies one statement to the environment: assignments and
// declarations update locals (strong update — the join at block entry
// supplies the may-union across paths); everything else leaves the state
// alone.
func (m *uwModel) transfer(flow *funcFlow, e env, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// x += … launders the handle; drop to bottom.
			for _, lhs := range s.Lhs {
				if obj := localObj(flow.pkg, lhs); obj != nil {
					e[obj] = valueSet{}
				}
			}
			return
		}
		switch {
		case len(s.Rhs) == len(s.Lhs):
			for i, lhs := range s.Lhs {
				v := m.eval(flow, e, s.Rhs[i])
				if obj := localObj(flow.pkg, lhs); obj != nil {
					e[obj] = v
				}
			}
		case len(s.Rhs) == 1:
			// Tuple assignment: only a Lookup-style (value, ok) call keeps
			// its handle value, on the first variable.
			v := m.eval(flow, e, s.Rhs[0])
			for i, lhs := range s.Lhs {
				obj := localObj(flow.pkg, lhs)
				if obj == nil {
					continue
				}
				if i == 0 {
					e[obj] = v
				} else {
					e[obj] = valueSet{}
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := flow.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				var v valueSet
				if i < len(vs.Values) {
					v = m.eval(flow, e, vs.Values[i])
				}
				e[obj] = v
			}
		}
	case *ast.ExprStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt,
		*ast.ReturnStmt, *ast.EmptyStmt, *ast.LabeledStmt, *ast.BranchStmt:
		// No local-state effect the model tracks.
	}
}

// localObj resolves an assignment target to a local variable object, or
// nil for anything else (fields and package vars are bound statically by
// the model, not tracked per-flow).
func localObj(pkg *Package, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package var: statically bound, not flow-tracked
	}
	return v
}

// eval folds an expression to the valueSet it may hold.
func (m *uwModel) eval(flow *funcFlow, e env, expr ast.Expr) valueSet {
	switch x := expr.(type) {
	case *ast.Ident:
		obj := flow.pkg.Info.Uses[x]
		if obj == nil {
			obj = flow.pkg.Info.Defs[x]
		}
		if obj == nil {
			return valueSet{}
		}
		if v, ok := e[obj]; ok {
			return v
		}
		if p, ok := obj.(*types.Var); ok {
			if _, isParam := flow.paramIdx[p]; isParam {
				var v valueSet
				v.addParam(p)
				return v
			}
		}
		return m.bindingValue(obj)
	case *ast.SelectorExpr:
		return m.bindingValue(flow.pkg.Info.Uses[x.Sel])
	case *ast.IndexExpr:
		return m.eval(flow, e, x.X)
	case *ast.ParenExpr:
		return m.eval(flow, e, x.X)
	case *ast.StarExpr:
		return m.eval(flow, e, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return m.eval(flow, e, x.X)
		}
	case *ast.CallExpr:
		return m.evalCall(flow, e, x)
	}
	return valueSet{}
}

// bindingValue wraps a static binding lookup as a value.
func (m *uwModel) bindingValue(obj types.Object) valueSet {
	var v valueSet
	for _, i := range m.binding(obj) {
		v.addHandle(i)
	}
	return v
}

// evalCall folds the calls that can produce a handle: Define/def (the
// handle born at this site), MustLookup/Lookup by literal name, and type
// conversions, which are transparent.
func (m *uwModel) evalCall(flow *funcFlow, e env, call *ast.CallExpr) valueSet {
	if isDefineCall(call) && len(call.Args) > 0 {
		if i, ok := m.defSite[call.Args[0].Pos()]; ok {
			var v valueSet
			v.addHandle(i)
			return v
		}
		return valueSet{}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "MustLookup" || sel.Sel.Name == "Lookup" {
			return m.evalLookup(flow, sel, call)
		}
	}
	// A type conversion (uint16(x)) is transparent.
	if len(call.Args) == 1 {
		if tv, ok := flow.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return m.eval(flow, e, call.Args[0])
		}
	}
	return valueSet{}
}

// evalLookup resolves store.MustLookup("name") / store.Lookup("name")
// against the store's namespace. Only literal (or constant) names
// resolve; a computed name is bottom.
func (m *uwModel) evalLookup(flow *funcFlow, sel *ast.SelectorExpr, call *ast.CallExpr) valueSet {
	if len(call.Args) < 1 {
		return valueSet{}
	}
	name := ""
	switch a := ast.Unparen(call.Args[0]).(type) {
	case *ast.BasicLit:
		if a.Kind == token.STRING {
			if s, err := strconv.Unquote(a.Value); err == nil {
				name = s
			}
		}
	default:
		if folded, usesParam := foldName(flow.pkg, call.Args[0], nil); !usesParam && folded != "*" {
			name = folded
		}
	}
	if name == "" {
		return valueSet{}
	}
	var storeObj types.Object
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		storeObj = flow.pkg.Info.Uses[base]
	case *ast.SelectorExpr:
		storeObj = flow.pkg.Info.Uses[base.Sel]
	}
	var v valueSet
	for _, i := range m.storeHandles(storeObj) {
		h := m.handles[i]
		if h.Name == name || globsIntersect(h.Name, name) {
			v.addHandle(i)
		}
	}
	return v
}
