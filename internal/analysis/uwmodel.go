package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// µflow handle model. The three attribution analyzers (uwflow, uwdead,
// rowscope) share one view of the world:
//
//   - a *handle* is one Define()d microword: its folded name (wildcards
//     for computed segments, exactly as uwref folds them), its declared
//     ucode.Row and ucode.Class — identified by the *names* of the
//     constants, so fixtures with a mirror mini-ucode package exercise
//     the same code paths as the real tree;
//   - a *binding* maps a types.Object (a handle-struct field, a package
//     var) to the set of handles that can live in it. Bindings come from
//     the syntax of the Define call (struct-literal keys, field
//     assignments in builder helpers like defSpecBank — instantiated at
//     their call sites) and cross package boundaries as object facts;
//   - a *count channel* is one of the four counting primitives on the
//     Machine: tick/ticks (the execution channel), stall (the read/write
//     stall channel), ibStallTick (the dedicated IB-stall locations of
//     §4.3), and tickFree (the folded-marker channel the ablation
//     flips). Raw Probe.Count/Probe.Stall calls outside the primitives
//     are channels too;
//   - the *dataflow* (dataflow.go) answers, per function and per CFG
//     block, which handles each local value may hold, so a handle is
//     followed through locals, parameters and helper calls to the
//     channel it is counted on.
//
// The model is deliberately a may-analysis: sets only grow, so every
// verdict that depends on absence ("never reaches a count site", "no
// stall on any path") is computed against an over-approximation of the
// true flows. What the model cannot see — calls through function values
// and interfaces, handles smuggled through the heap — is documented in
// DESIGN.md §12.

// uwChannel names one counting channel.
type uwChannel string

const (
	chExec    uwChannel = "exec"    // Machine.tick / Machine.ticks / Probe.Count
	chStall   uwChannel = "stall"   // Machine.stall / Probe.Stall
	chIBStall uwChannel = "ibstall" // Machine.ibStallTick
	chFree    uwChannel = "free"    // Machine.tickFree (folded-marker ablation)
)

// uwHandle is one defined microword.
type uwHandle struct {
	Name  string // folded dot-path; '*' for computed segments
	Row   string // Row constant name ("RowSimple"); "" when not statically known
	Class string // Class constant name ("ClassRead"); "" when not statically known
	Pos   token.Pos
}

// uwHandleData is the fact-serializable core of a handle.
type uwHandleData struct {
	Name, Row, Class string
}

// uwObjFact carries handle knowledge about one object across packages
// (the store holds one fact per object, so bindings and store tables
// share a type). On a field or package-var object (Store false) it lists
// the handles the object may hold; on a package-level control-store
// variable (Store true) it lists every handle defined in that store, so
// MustLookup("name") call sites in importing packages resolve to
// row/class without seeing the Define.
type uwObjFact struct {
	Handles []uwHandleData
	Store   bool
}

func (*uwObjFact) AFact() {}

// uwChanFact summarizes a function for its importers: for each parameter,
// the set of count channels the parameter's value may reach inside the
// callee (transitively), and the set of microword Class constant names
// observed flowing into the parameter from the callers the exporting pass
// analyzed (the class inflow, promoted to an object fact so an importer
// can judge a helper's parameters without seeing the helper's callers).
type uwChanFact struct {
	Params [][]string
	Inflow [][]string
}

func (*uwChanFact) AFact() {}

// uwModel is the shared analysis state over one set of packages: the
// package under analysis for the fact-passing analyzers (uwflow,
// rowscope), the whole load for the module-wide reachability proof
// (uwdead).
type uwModel struct {
	pass *Pass
	pkgs []*Package

	handles  []uwHandle
	hIndex   map[string]int         // dedup key → index into handles
	byObj    map[types.Object][]int // bindings
	defSite  map[token.Pos]int      // Define name-arg position → handle
	stores   map[types.Object]bool  // package-level control-store vars
	storeTab map[types.Object][]int // imported store namespaces
	probed   map[types.Object]bool  // objects whose fact import was attempted

	flows   map[*types.Func]*funcFlow
	flowLst []*funcFlow // deterministic iteration order
	summary map[*types.Func][]chanSet
	inflow  map[*types.Func][]classSet
	sumSeen map[*types.Func]bool // functions whose summary fact import was attempted

	// Closures get real summaries and inflows, keyed by their literal:
	// a literal registered in a handler table is a callee like any other.
	litFlows   map[*ast.FuncLit]*funcFlow
	litSummary map[*ast.FuncLit][]chanSet
	litInflow  map[*ast.FuncLit][]classSet

	// funcVals is the type-based callee approximation for calls through
	// *named* function types (the execTable shape): every value of the
	// type collected anywhere in the analyzed packages is a candidate.
	funcVals map[*types.TypeName][]FuncValue
}

type chanSet map[uwChannel]bool

type classSet map[string]bool

// buildUWModel collects handles, bindings and per-function flows over
// pkgs, then computes channel summaries (bottom-up) and parameter class
// inflows (top-down) to a fixed point. When the pass is package-level the
// bindings, store tables and summaries are exported as object facts for
// importing packages.
func buildUWModel(pass *Pass, pkgs []*Package) *uwModel {
	m := &uwModel{
		pass:       pass,
		pkgs:       pkgs,
		hIndex:     make(map[string]int),
		byObj:      make(map[types.Object][]int),
		defSite:    make(map[token.Pos]int),
		stores:     make(map[types.Object]bool),
		storeTab:   make(map[types.Object][]int),
		probed:     make(map[types.Object]bool),
		flows:      make(map[*types.Func]*funcFlow),
		summary:    make(map[*types.Func][]chanSet),
		inflow:     make(map[*types.Func][]classSet),
		sumSeen:    make(map[*types.Func]bool),
		litFlows:   make(map[*ast.FuncLit]*funcFlow),
		litSummary: make(map[*ast.FuncLit][]chanSet),
		litInflow:  make(map[*ast.FuncLit][]classSet),
	}
	m.funcVals = FuncValues(pkgs)
	m.collectHandles()
	m.exportBindings()
	for _, pkg := range pkgs {
		for _, fd := range PackageFuncs(pkg) {
			if ch, _, ok := channelOf(fd.Obj); ok && ch != "" {
				continue // the primitives ARE the channels; their bodies are not re-derived
			}
			m.flowFunc(pkg, fd)
		}
		// Function literals get their own flows: site extraction skips
		// nested literals, so walking every literal in the file covers
		// each body exactly once, however deeply the closures nest.
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					m.flowLit(pkg, lit)
				}
				return true
			})
		}
	}
	m.computeSummaries()
	m.computeInflows()
	m.exportSummaries()
	return m
}

// addHandle interns a handle, deduplicating by (name, row, class).
func (m *uwModel) addHandle(h uwHandle) int {
	key := h.Name + "\x00" + h.Row + "\x00" + h.Class
	if i, ok := m.hIndex[key]; ok {
		return i
	}
	i := len(m.handles)
	m.handles = append(m.handles, h)
	m.hIndex[key] = i
	return i
}

func (m *uwModel) bind(obj types.Object, idx int) {
	if obj == nil {
		return
	}
	for _, have := range m.byObj[obj] {
		if have == idx {
			return
		}
	}
	m.byObj[obj] = append(m.byObj[obj], idx)
}

// uwTemplate is a Define whose name or row depends on parameters of its
// enclosing builder function; it is instantiated at the builder's call
// sites, exactly like uwref instantiates name templates.
type uwTemplate struct {
	fn         *types.Func
	params     []string // parameter names in call-argument order
	pattern    string   // folded name with \x00param\x00 markers
	class      string   // resolved class constant, or ""
	classParam int      // parameter index supplying the class, or -1
	row        string   // resolved row constant, or ""
	rowParam   int      // parameter index supplying the row, or -1
	bindObj    types.Object
}

// collectHandles walks every Define/def call in the model's packages,
// interning handles and recording which object each one is bound to.
func (m *uwModel) collectHandles() {
	var tmpls []uwTemplate
	for _, pkg := range m.pkgs {
		m.collectStores(pkg)
		WalkWithStack(pkg, func(stack []ast.Node, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isDefineCall(call) || len(call.Args) < 3 {
				return
			}
			fd := enclosingFunc(stack)
			params := paramNames(fd)
			name, nameUsesParam := foldName(pkg, call.Args[0], params)
			row, rowParam := constNameOf(pkg, call.Args[1], params)
			class, classParam := constNameOf(pkg, call.Args[2], params)
			bindObj := bindTarget(pkg, stack, call)
			if (nameUsesParam || rowParam >= 0 || classParam >= 0) && fd != nil {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					tmpls = append(tmpls, uwTemplate{
						fn: obj, params: params, pattern: name,
						class: class, classParam: classParam,
						row: row, rowParam: rowParam,
						bindObj: bindObj,
					})
					return
				}
			}
			idx := m.addHandle(uwHandle{Name: name, Row: row, Class: class, Pos: call.Args[0].Pos()})
			m.defSite[call.Args[0].Pos()] = idx
			m.bind(bindObj, idx)
		})
	}
	m.instantiate(tmpls)
}

// collectStores records the package-level variables holding a control
// store (a type named Store, by value or pointer) so MustLookup call
// sites can be resolved against the right namespace.
func (m *uwModel) collectStores(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		t := v.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Store" {
			m.stores[v] = true
		}
	}
}

// instantiate resolves parameter-dependent Defines at the builder's call
// sites: defSpecBank("spec1", RowSpec1) turns the template for
// "\x00prefix\x00.stall" into the handle ("spec1.stall", RowSpec1,
// ClassIBStall), bound to the same field object the builder assigns.
func (m *uwModel) instantiate(tmpls []uwTemplate) {
	for _, t := range tmpls {
		if t.fn == nil {
			continue
		}
		instantiated := false
		for _, pkg := range m.pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || Callee(pkg.Info, call) != t.fn {
						return true
					}
					name := t.pattern
					for i, p := range t.params {
						val := "*"
						if i < len(call.Args) {
							if lit, ok := call.Args[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
								if s, err := strconv.Unquote(lit.Value); err == nil {
									val = s
								}
							}
						}
						name = strings.ReplaceAll(name, "\x00"+p+"\x00", val)
					}
					name = collapseStars(name)
					if name == "*" {
						// A fully computed name (the def wrapper called with a
						// Sprintf argument, say) carries no information; the
						// defining call collects the real handle itself.
						instantiated = true
						return true
					}
					row := t.row
					if t.rowParam >= 0 && t.rowParam < len(call.Args) {
						row, _ = constNameOf(pkg, call.Args[t.rowParam], nil)
					}
					class := t.class
					if t.classParam >= 0 && t.classParam < len(call.Args) {
						class, _ = constNameOf(pkg, call.Args[t.classParam], nil)
					}
					idx := m.addHandle(uwHandle{
						Name: name, Row: row, Class: class, Pos: call.Pos(),
					})
					m.bind(t.bindObj, idx)
					instantiated = true
					return true
				})
			}
		}
		if !instantiated {
			// Builder never called in the analyzed set: keep a wildcard
			// handle so the binding is not silently empty.
			idx := m.addHandle(uwHandle{
				Name: collapseStars(wildcardMarkers(t.pattern)), Row: t.row, Class: t.class,
				Pos: t.fn.Pos(),
			})
			m.bind(t.bindObj, idx)
		}
	}
}

// bindTarget finds the object a Define call's result is stored into:
// a keyed struct-literal field, the field or package var on the left of
// an assignment (possibly through an index expression), or the var of a
// declaration. Local variables are not bound — the dataflow tracks them
// flow-sensitively.
func bindTarget(pkg *Package, stack []ast.Node, call *ast.CallExpr) types.Object {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.KeyValueExpr:
			if parent.Value != call {
				continue
			}
			if key, ok := parent.Key.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[key]; isBindable(obj) {
					return obj
				}
			}
			return nil
		case *ast.AssignStmt:
			for j, rhs := range parent.Rhs {
				if rhs != call || j >= len(parent.Lhs) {
					continue
				}
				return lhsObject(pkg, parent.Lhs[j])
			}
			return nil
		case *ast.ValueSpec:
			for j, v := range parent.Values {
				if v != call || j >= len(parent.Names) {
					continue
				}
				if obj := pkg.Info.Defs[parent.Names[j]]; isBindable(obj) {
					return obj
				}
			}
			return nil
		case *ast.CallExpr, *ast.CompositeLit, *ast.IndexExpr, *ast.UnaryExpr, *ast.ParenExpr:
			continue // keep climbing through expression context
		default:
			return nil
		}
	}
	return nil
}

// lhsObject resolves an assignment target to a bindable object: a struct
// field (b.stall, b.dispatch[mode]) or a package-level variable.
func lhsObject(pkg *Package, lhs ast.Expr) types.Object {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if obj := pkg.Info.Uses[e.Sel]; isBindable(obj) {
				return obj
			}
			return nil
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; isBindable(obj) {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

// isBindable reports whether obj is a flow-insensitive binding target: a
// struct field or a package-level variable. (Fields are identified by
// IsField; package vars by a package-scope parent.)
func isBindable(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

// constNameOf resolves an expression to the name of the constant it
// denotes ("RowSimple", "ClassRead"), or to the index of the enclosing
// function parameter it forwards. Returns ("", -1) when neither.
func constNameOf(pkg *Package, e ast.Expr, params []string) (string, int) {
	switch e := e.(type) {
	case *ast.Ident:
		for i, p := range params {
			if e.Name == p {
				return "", i
			}
		}
		if c, ok := pkg.Info.Uses[e].(*types.Const); ok {
			return c.Name(), -1
		}
	case *ast.SelectorExpr:
		if c, ok := pkg.Info.Uses[e.Sel].(*types.Const); ok {
			return c.Name(), -1
		}
	case *ast.ParenExpr:
		return constNameOf(pkg, e.X, params)
	}
	return "", -1
}

// channelOf classifies a function as one of the counting primitives,
// returning the channel and the index of the parameter that carries the
// microword. The primitives are methods of the Machine (tick, ticks,
// stall, ibStallTick, tickFree); the raw Probe interface calls are
// handled separately at call sites because interface dispatch has no
// static callee.
func channelOf(fn *types.Func) (uwChannel, int, bool) {
	if fn == nil {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", 0, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Machine" {
		return "", 0, false
	}
	switch fn.Name() {
	case "tick", "ticks":
		return chExec, 0, true
	case "stall":
		return chStall, 0, true
	case "ibStallTick":
		return chIBStall, 0, true
	case "tickFree":
		return chFree, 0, true
	}
	return "", 0, false
}

// probeChannelOf classifies a call with no static callee as a raw probe
// channel: a Count or Stall method call on a value of an interface type
// named Probe.
func probeChannelOf(pkg *Package, call *ast.CallExpr) (uwChannel, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var ch uwChannel
	switch sel.Sel.Name {
	case "Count":
		ch = chExec
	case "Stall":
		ch = chStall
	default:
		return "", false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || !types.IsInterface(tv.Type) {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Probe" {
		return ch, true
	}
	return "", false
}

// exportBindings publishes the model's bindings, store tables and (later,
// from computeSummaries) channel summaries as object facts. Module-level
// passes have no fact store; they see the whole load at once and need
// none.
func (m *uwModel) exportBindings() {
	if m.pass.Pkg == nil {
		return
	}
	for obj, idxs := range m.byObj {
		if obj.Pkg() != m.pass.Pkg.Types {
			continue
		}
		f := &uwObjFact{}
		for _, i := range idxs {
			h := m.handles[i]
			f.Handles = append(f.Handles, uwHandleData{h.Name, h.Row, h.Class})
		}
		sort.Slice(f.Handles, func(a, b int) bool { return f.Handles[a].Name < f.Handles[b].Name })
		m.pass.ExportObjectFact(obj, f)
	}
	if len(m.handles) == 0 {
		return
	}
	for store := range m.stores {
		if store.Pkg() != m.pass.Pkg.Types {
			continue
		}
		f := &uwObjFact{Store: true}
		for _, h := range m.handles {
			f.Handles = append(f.Handles, uwHandleData{h.Name, h.Row, h.Class})
		}
		sort.Slice(f.Handles, func(a, b int) bool { return f.Handles[a].Name < f.Handles[b].Name })
		m.pass.ExportObjectFact(store, f)
	}
}

// probeObj imports the fact for an object declared outside the analyzed
// packages (once), interning its handles as a binding or a store table.
func (m *uwModel) probeObj(obj types.Object) {
	if obj == nil || m.probed[obj] {
		return
	}
	if _, ok := obj.(*types.Var); !ok {
		return // only vars carry bindings or store tables (funcs carry uwChanFacts)
	}
	m.probed[obj] = true
	var f uwObjFact
	if !m.pass.ImportObjectFact(obj, &f) {
		return
	}
	idxs := make([]int, 0, len(f.Handles))
	for _, h := range f.Handles {
		idxs = append(idxs, m.addHandle(uwHandle{Name: h.Name, Row: h.Row, Class: h.Class, Pos: obj.Pos()}))
	}
	if f.Store {
		m.stores[obj] = true
		m.storeTab[obj] = idxs
	} else {
		m.byObj[obj] = idxs
	}
}

// binding returns the handle set an object may hold, importing a
// cross-package fact on first touch.
func (m *uwModel) binding(obj types.Object) []int {
	if obj == nil {
		return nil
	}
	if idxs, ok := m.byObj[obj]; ok {
		return idxs
	}
	m.probeObj(obj)
	return m.byObj[obj]
}

// storeHandles returns the namespace of the store object: for a store of
// the analyzed packages, every collected handle; for an imported store,
// the handles of its store fact.
func (m *uwModel) storeHandles(obj types.Object) []int {
	if obj == nil {
		return nil
	}
	if m.stores[obj] && (obj.Pkg() == nil || m.isLocalPkg(obj.Pkg())) {
		all := make([]int, len(m.handles))
		for i := range m.handles {
			all[i] = i
		}
		return all
	}
	m.probeObj(obj)
	return m.storeTab[obj]
}

func (m *uwModel) isLocalPkg(p *types.Package) bool {
	for _, pkg := range m.pkgs {
		if pkg.Types == p {
			return true
		}
	}
	return false
}

// summaryOf returns the channel summary of fn — per parameter, the
// channels the parameter may reach — from the primitives, the local
// fixed point, or an imported fact.
func (m *uwModel) summaryOf(fn *types.Func) []chanSet {
	if fn == nil {
		return nil
	}
	if ch, hp, ok := channelOf(fn); ok {
		sig := fn.Type().(*types.Signature)
		s := make([]chanSet, sig.Params().Len())
		if hp < len(s) {
			s[hp] = chanSet{ch: true}
		}
		return s
	}
	if s, ok := m.summary[fn]; ok {
		return s
	}
	if m.sumSeen[fn] {
		return nil
	}
	m.sumSeen[fn] = true
	var f uwChanFact
	if !m.pass.ImportObjectFact(fn, &f) {
		return nil
	}
	s := make([]chanSet, len(f.Params))
	for i, chans := range f.Params {
		if len(chans) == 0 {
			continue
		}
		s[i] = make(chanSet)
		for _, ch := range chans {
			s[i][uwChannel(ch)] = true
		}
	}
	m.summary[fn] = s
	// The fact also carries the class inflow the exporting pass observed;
	// importing it seeds this pass's view of the helper's parameters.
	if len(f.Inflow) > 0 && m.inflow[fn] == nil {
		in := make([]classSet, len(f.Inflow))
		for i, classes := range f.Inflow {
			if len(classes) == 0 {
				continue
			}
			in[i] = make(classSet)
			for _, c := range classes {
				in[i][c] = true
			}
		}
		m.inflow[fn] = in
	}
	return s
}

// summaryOfLit returns the channel summary of a function literal computed
// by the local fixed point (closures never cross packages as facts: a
// literal's identity is its AST node).
func (m *uwModel) summaryOfLit(lit *ast.FuncLit) []chanSet {
	return m.litSummary[lit]
}

// dynSummary unions the channel summaries of every candidate callee of a
// call through the named function type tn — every function or literal
// used anywhere in the analyzed packages as a value of that type. When
// localChecked is true, candidates whose bodies this pass analyzes are
// skipped: their interior sites are judged directly (with inflow-borne
// classes), so re-judging them through the union would double-report.
func (m *uwModel) dynSummary(tn *types.TypeName, localChecked bool) []chanSet {
	sig, ok := tn.Type().Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]chanSet, sig.Params().Len())
	for _, cand := range m.funcVals[tn] {
		var cs []chanSet
		switch {
		case cand.Lit != nil:
			if localChecked {
				continue
			}
			cs = m.summaryOfLit(cand.Lit)
		case cand.Fn != nil:
			if localChecked && m.flows[cand.Fn] != nil {
				continue
			}
			cs = m.summaryOf(cand.Fn)
		}
		for j := 0; j < len(cs) && j < len(out); j++ {
			for ch := range cs[j] {
				if out[j] == nil {
					out[j] = make(chanSet)
				}
				out[j][ch] = true
			}
		}
	}
	return out
}

// computeSummaries iterates the bottom-up parameter→channel fixed point:
// if a function's (or literal's) parameter flows into a call whose own
// parameter reaches a channel, the caller's parameter reaches it too.
// Calls through named function types contribute the union of their
// candidates' summaries, so a handler registered in a table is seen
// through the table's call site.
func (m *uwModel) computeSummaries() {
	for changed := true; changed; {
		changed = false
		for _, flow := range m.flowLst {
			for _, site := range flow.sites {
				var cs []chanSet
				switch {
				case site.probeCh != "":
					cs = []chanSet{{site.probeCh: true}}
				case site.dyn != nil:
					cs = m.dynSummary(site.dyn, false)
				default:
					cs = m.summaryOf(site.callee)
				}
				if cs == nil {
					continue
				}
				for j := 0; j < len(cs) && j < len(site.args); j++ {
					if len(cs[j]) == 0 {
						continue
					}
					for p := range site.args[j].params {
						pi, ok := flow.paramIdx[p]
						if !ok {
							continue
						}
						if flow.fn != nil {
							if m.mergeSummary(flow.fn, pi, cs[j]) {
								changed = true
							}
						} else if flow.lit != nil {
							if m.mergeLitSummary(flow, pi, cs[j]) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// exportSummaries publishes the channel summaries and class inflows of
// the package's functions as uwChanFact object facts, after both fixed
// points have run. Module-level passes have no fact store and need none.
func (m *uwModel) exportSummaries() {
	if m.pass.Pkg == nil {
		return
	}
	export := make(map[*types.Func]bool)
	for fn := range m.summary {
		export[fn] = true
	}
	for fn := range m.inflow {
		export[fn] = true
	}
	for fn := range export {
		if fn.Pkg() != m.pass.Pkg.Types || m.flows[fn] == nil {
			continue
		}
		n := fn.Type().(*types.Signature).Params().Len()
		f := &uwChanFact{Params: make([][]string, n), Inflow: make([][]string, n)}
		any := false
		for i, set := range m.summary[fn] {
			for ch := range set {
				f.Params[i] = append(f.Params[i], string(ch))
				any = true
			}
			sort.Strings(f.Params[i])
		}
		for i, classes := range m.inflow[fn] {
			if i >= n {
				break
			}
			for c := range classes {
				f.Inflow[i] = append(f.Inflow[i], c)
				any = true
			}
			sort.Strings(f.Inflow[i])
		}
		if any {
			m.pass.ExportObjectFact(fn, f)
		}
	}
}

func (m *uwModel) mergeSummary(fn *types.Func, param int, chans chanSet) bool {
	s := m.summary[fn]
	if s == nil {
		sig := fn.Type().(*types.Signature)
		s = make([]chanSet, sig.Params().Len())
		m.summary[fn] = s
	}
	return mergeChanSet(s, param, chans)
}

func (m *uwModel) mergeLitSummary(flow *funcFlow, param int, chans chanSet) bool {
	s := m.litSummary[flow.lit]
	if s == nil {
		s = make([]chanSet, flow.nparams)
		m.litSummary[flow.lit] = s
	}
	return mergeChanSet(s, param, chans)
}

func mergeChanSet(s []chanSet, param int, chans chanSet) bool {
	if param >= len(s) {
		return false
	}
	if s[param] == nil {
		s[param] = make(chanSet)
	}
	changed := false
	for ch := range chans {
		if !s[param][ch] {
			s[param][ch] = true
			changed = true
		}
	}
	return changed
}

// computeInflows iterates the top-down caller→parameter fixed point: the
// classes of every value passed at every call site accumulate on the
// callee's parameters, so checks inside a helper know what a bare uint16
// parameter stands for. Inflow is computed over the analyzed packages
// only — the counting primitives are unexported, so every caller of a
// counting helper is visible to the pass that analyzes internal/cpu.
func (m *uwModel) computeInflows() {
	for changed := true; changed; {
		changed = false
		for _, flow := range m.flowLst {
			for _, site := range flow.sites {
				// A call through a named function type feeds every
				// candidate value of the type: the handler-table dispatch
				// becomes inflow on each registered handler or literal.
				if site.dyn != nil {
					for _, cand := range m.funcVals[site.dyn] {
						for j := range site.args {
							classes := m.classesOf(flow, site.args[j])
							if len(classes) == 0 {
								continue
							}
							switch {
							case cand.Lit != nil:
								if m.mergeLitInflow(cand.Lit, j, classes) {
									changed = true
								}
							case cand.Fn != nil && m.flows[cand.Fn] != nil:
								if m.mergeInflow(cand.Fn, j, classes) {
									changed = true
								}
							}
						}
					}
					continue
				}
				callee := site.callee
				if callee == nil || m.flows[callee] == nil {
					continue
				}
				for j := range site.args {
					classes := m.classesOf(flow, site.args[j])
					if len(classes) == 0 {
						continue
					}
					if m.mergeInflow(callee, j, classes) {
						changed = true
					}
				}
			}
		}
	}
}

func (m *uwModel) mergeInflow(fn *types.Func, param int, classes classSet) bool {
	s := m.inflow[fn]
	if s == nil {
		sig := fn.Type().(*types.Signature)
		s = make([]classSet, sig.Params().Len())
		m.inflow[fn] = s
	}
	return mergeClassSet(s, param, classes)
}

func (m *uwModel) mergeLitInflow(lit *ast.FuncLit, param int, classes classSet) bool {
	flow := m.litFlows[lit]
	if flow == nil {
		return false
	}
	s := m.litInflow[lit]
	if s == nil {
		s = make([]classSet, flow.nparams)
		m.litInflow[lit] = s
	}
	return mergeClassSet(s, param, classes)
}

func mergeClassSet(s []classSet, param int, classes classSet) bool {
	if param >= len(s) {
		return false
	}
	if s[param] == nil {
		s[param] = make(classSet)
	}
	changed := false
	for c := range classes {
		if !s[param][c] {
			s[param][c] = true
			changed = true
		}
	}
	return changed
}

// classesOf folds a value to the set of Class constant names it may
// carry: the classes of its handles plus, for parameter origins, the
// classes flowing into that parameter from the callers analyzed so far.
func (m *uwModel) classesOf(flow *funcFlow, v valueSet) classSet {
	out := make(classSet)
	for i := range v.handles {
		if c := m.handles[i].Class; c != "" {
			out[c] = true
		}
	}
	for p := range v.params {
		pi, ok := flow.paramIdx[p]
		if !ok {
			continue
		}
		var in []classSet
		if flow.fn != nil {
			in = m.inflow[flow.fn]
		} else if flow.lit != nil {
			in = m.litInflow[flow.lit]
		}
		if in != nil && pi < len(in) {
			for c := range in[pi] {
				out[c] = true
			}
		}
	}
	return out
}

// handleNames renders the (sorted, capped) microword names of a value for
// diagnostics. A value with no concrete handle (a parameter whose classes
// arrive by inflow) is named by its parameter instead.
func (m *uwModel) handleNames(v valueSet) string {
	var names []string
	for i := range v.handles {
		names = append(names, m.handles[i].Name)
	}
	if len(names) == 0 {
		for p := range v.params {
			names = append(names, "parameter "+p.Name())
		}
	}
	sort.Strings(names)
	if len(names) > 3 {
		names = append(names[:3], "…")
	}
	return strings.Join(names, ", ")
}
