package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// ChanProt proves channel-protocol discipline, the contract the farm's
// coordinator/worker split rests on:
//
//   - exactly one closing owner per channel. The closer is found through
//     per-function summaries (concFact) so ownership is proved even when
//     the close hides behind a helper in another package; two distinct
//     owners is the double-close panic waiting for the right interleaving.
//   - no send reachable from the owner's close site (CFG reachability
//     within the owner, call sites included): send-on-closed is a panic
//     the race detector cannot see.
//   - direction discipline: a bidirectional channel parameter whose
//     summary only ever sends/closes (or only receives) should be
//     declared chan<- / <-chan, so the compiler enforces what the
//     analyzer inferred.
//   - unbuffered liveness: an unbuffered channel all of whose operations
//     run on one goroutine deadlocks at the first blocking send — the
//     shape a chaos soak cannot systematically explore, because the run
//     never gets past it.
//
// The model is package-local Steensgaard unification (locals, params,
// fields and make sites that can alias form one group) plus imported
// concFacts for cross-package callees. Channels that escape to unknown
// code (returned, stored in containers, passed to summary-less
// functions) and channels produced outside the load (ctx.Done,
// time.After) are skipped for the liveness rules; close-ownership is
// still counted, since a second owner is a bug wherever the channel
// travels.
var ChanProt = &Analyzer{
	Name: "chanprot",
	Doc:  "one closing owner per channel, no send after close, direction-honest params, live receivers for unbuffered sends",
	Run:  runChanProt,
}

// protSite is one channel operation: direct (send/recv/close/range in
// this package) or injected from a callee's summary at the call site.
type protSite struct {
	kind concOps
	slot any
	pos  token.Pos
	node ast.Node    // enclosing function node (decl or lit)
	decl *types.Func // enclosing declaration (lits attribute to theirs)
	via  *types.Func // non-nil: ops imported from this callee's summary
	stmt ast.Stmt    // innermost block-level statement, for CFG location
	lit  bool        // site sits inside a function literal
	spawned     bool
	nonblocking bool // direct comm of a select that has a default arm
}

// protInj records a channel argument to a static callee, expanded into
// via-sites once summaries are known.
type protInj struct {
	slot     any
	callee   *types.Func
	paramIdx int
	site     protSite // template: pos/node/decl/stmt/spawned filled in
}

type protModel struct {
	pass    *Pass
	pkg     *Package
	uf      *chanUF
	spawned map[ast.Node]bool

	origins  []protOrigin
	sites    []protSite
	injs     []protInj
	escaped  []any
	external []any

	decls    map[*types.Func]*ast.FuncDecl
	nonblock map[ast.Node]bool // SendStmt/UnaryExpr comm ops under select-with-default
	goCalls  map[*ast.CallExpr]bool
}

type protOrigin struct {
	call     *ast.CallExpr
	slot     any
	buffered bool
}

func runChanProt(pass *Pass) error {
	m := &protModel{
		pass:     pass,
		pkg:      pass.Pkg,
		uf:       newChanUF(),
		spawned:  spawnedFuncs(pass.Pkg),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		nonblock: make(map[ast.Node]bool),
		goCalls:  make(map[*ast.CallExpr]bool),
	}
	for _, fd := range PackageFuncs(pass.Pkg) {
		m.decls[fd.Obj] = fd.Decl
	}
	m.markSelectComms()
	WalkWithStack(pass.Pkg, m.node)

	sums := m.summaries()
	for fn, bits := range sums {
		any := false
		for _, b := range bits {
			if b != 0 {
				any = true
			}
		}
		if any {
			pass.ExportObjectFact(fn, &concFact{Params: bits})
		}
	}
	m.expandInjections(sums)
	m.checkDirections(sums)
	m.checkGroups()
	return nil
}

// markSelectComms records, for every select with a default arm, its comm
// operations — they are nonblocking, so the liveness rules skip them.
func (m *protModel) markSelectComms() {
	for _, f := range m.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, cs := range sel.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cs := range sel.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					m.nonblock[comm] = true
				case *ast.ExprStmt:
					m.nonblock[ast.Unparen(comm.X)] = true
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						m.nonblock[ast.Unparen(comm.Rhs[0])] = true
					}
				}
			}
			return true
		})
	}
}

// ref resolves a channel expression to its package-local slot.
func (m *protModel) ref(e ast.Expr) (any, bool) {
	e = ast.Unparen(e)
	info := m.pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v, true
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v, true
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v, true
		}
	case *ast.CallExpr:
		if isMakeChan(info, e) {
			return e, true
		}
	}
	return nil, false
}

// bind unifies a destination slot with a value expression; values with
// no slot (results of out-of-load calls, container elements) mark the
// destination external.
func (m *protModel) bind(dst any, val ast.Expr) {
	if !isChanType(m.pkg.Info.TypeOf(val)) {
		return
	}
	if src, ok := m.ref(val); ok {
		m.uf.union(dst, src)
	} else {
		m.external = append(m.external, dst)
	}
}

func (m *protModel) site(stack []ast.Node, n ast.Node, kind concOps, chanExpr ast.Expr, pos token.Pos) {
	slot, ok := m.ref(chanExpr)
	if !ok {
		return
	}
	node := enclosingFuncNode(stack)
	s := protSite{
		kind:        kind,
		slot:        slot,
		pos:         pos,
		node:        node,
		decl:        protEnclosingDecl(m.pkg, stack),
		stmt:        enclosingBlockStmt(stack, n),
		lit:         isLitNode(node),
		spawned:     m.spawned[node],
		nonblocking: m.nonblock[n],
	}
	m.sites = append(m.sites, s)
}

func (m *protModel) node(stack []ast.Node, n ast.Node) {
	info := m.pkg.Info
	switch n := n.(type) {
	case *ast.GoStmt:
		m.goCalls[n.Call] = true

	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			for _, lhs := range n.Lhs {
				if isChanType(info.TypeOf(lhs)) {
					if dst, ok := m.ref(lhs); ok {
						m.external = append(m.external, dst)
					}
				}
			}
			return
		}
		for i, lhs := range n.Lhs {
			if !isChanType(info.TypeOf(lhs)) {
				continue
			}
			if dst, ok := m.ref(lhs); ok {
				m.bind(dst, n.Rhs[i])
			}
		}

	case *ast.ValueSpec:
		for i, name := range n.Names {
			if i >= len(n.Values) {
				break
			}
			if v, ok := info.Defs[name].(*types.Var); ok && isChanType(v.Type()) {
				m.bind(v, n.Values[i])
			}
		}

	case *ast.CompositeLit:
		m.composite(n)

	case *ast.SendStmt:
		m.site(stack, n, opSend, n.Chan, n.Arrow)

	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			m.site(stack, n, opRecv, n.X, n.OpPos)
		}

	case *ast.RangeStmt:
		if isChanType(info.TypeOf(n.X)) {
			m.site(stack, n, opRange, n.X, n.For)
		}

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if isChanType(info.TypeOf(r)) {
				if slot, ok := m.ref(r); ok {
					m.escaped = append(m.escaped, slot)
				}
			}
		}

	case *ast.CallExpr:
		m.call(stack, n)
	}
}

func (m *protModel) composite(lit *ast.CompositeLit) {
	t := m.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	if !ok {
		// A channel stored in an array/slice/map escapes the model.
		for _, el := range lit.Elts {
			v := elemValue(el)
			if isChanType(m.pkg.Info.TypeOf(v)) {
				if slot, ok := m.ref(v); ok {
					m.escaped = append(m.escaped, slot)
				}
			}
		}
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if f, ok := m.pkg.Info.Uses[key].(*types.Var); ok && isChanType(f.Type()) {
					m.bind(f, kv.Value)
				}
			}
			continue
		}
		if i < st.NumFields() && isChanType(st.Field(i).Type()) {
			m.bind(st.Field(i), el)
		}
	}
}

func (m *protModel) call(stack []ast.Node, call *ast.CallExpr) {
	info := m.pkg.Info
	if isMakeChan(info, call) {
		m.origins = append(m.origins, protOrigin{
			call:     call,
			slot:     call,
			buffered: len(call.Args) >= 2,
		})
		return
	}
	if isBuiltin(info, call, "close") && len(call.Args) == 1 {
		m.site(stack, call, opClose, call.Args[0], call.Pos())
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: same handle
	}
	if isBuiltin(info, call, "len") || isBuiltin(info, call, "cap") {
		return
	}
	fn := Callee(info, call)
	spawnCall := m.goCalls[call]
	for i, arg := range call.Args {
		if !isChanType(info.TypeOf(arg)) {
			continue
		}
		slot, ok := m.ref(arg)
		if !ok {
			continue
		}
		if fn != nil {
			sig, sok := fn.Type().(*types.Signature)
			if sok && !sig.Variadic() && i < sig.Params().Len() {
				if _, local := m.decls[fn]; local {
					// Same package: unify with the callee's parameter (its
					// direct sites join the group) and record the injection
					// for transitive summaries.
					m.uf.union(slot, sig.Params().At(i))
				}
				node := enclosingFuncNode(stack)
				m.injs = append(m.injs, protInj{
					slot:     slot,
					callee:   fn,
					paramIdx: i,
					site: protSite{
						slot:    slot,
						pos:     call.Pos(),
						node:    node,
						decl:    protEnclosingDecl(m.pkg, stack),
						stmt:    enclosingBlockStmt(stack, call),
						lit:     isLitNode(node),
						spawned: m.spawned[node] || spawnCall,
						via:     fn,
					},
				})
				continue
			}
		}
		// Function values, interface methods, variadics: unknown hands.
		m.escaped = append(m.escaped, slot)
	}
}

// summaries computes, to a fixed point, the ops each package function
// performs on each of its parameters — directly, or through callees
// (same-package summaries, imported concFacts for the rest).
func (m *protModel) summaries() map[*types.Func][]concOps {
	sums := make(map[*types.Func][]concOps)
	var fns []*types.Func
	for fn := range m.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	params := make(map[*types.Func][]*types.Var)
	for _, fn := range fns {
		sig := fn.Type().(*types.Signature)
		ps := make([]*types.Var, sig.Params().Len())
		for i := range ps {
			ps[i] = sig.Params().At(i)
		}
		params[fn] = ps
		sums[fn] = make([]concOps, len(ps))
	}
	calleeBits := func(fn *types.Func, idx int) concOps {
		if bits, ok := sums[fn]; ok {
			if idx < len(bits) {
				return bits[idx]
			}
			return 0
		}
		var f concFact
		if m.pass.ImportObjectFact(fn, &f) && idx < len(f.Params) {
			return f.Params[idx]
		}
		return 0
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			bits := sums[fn]
			for i, p := range params[fn] {
				if !isChanType(p.Type()) {
					continue
				}
				b := bits[i]
				for _, s := range m.sites {
					if s.decl == fn && s.via == nil && m.uf.same(s.slot, p) {
						b |= s.kind
					}
				}
				for _, inj := range m.injs {
					if inj.site.decl == fn && m.uf.same(inj.slot, p) {
						b |= calleeBits(inj.callee, inj.paramIdx)
					}
				}
				if b != bits[i] {
					bits[i] = b
					changed = true
				}
			}
		}
	}
	return sums
}

// expandInjections turns each recorded channel argument into via-sites
// carrying the callee's summarized ops; summary-less callees make the
// argument escape.
func (m *protModel) expandInjections(sums map[*types.Func][]concOps) {
	for _, inj := range m.injs {
		var bits concOps
		if b, ok := sums[inj.callee]; ok {
			if inj.paramIdx < len(b) {
				bits = b[inj.paramIdx]
			}
		} else {
			var f concFact
			if m.pass.ImportObjectFact(inj.callee, &f) {
				if inj.paramIdx < len(f.Params) {
					bits = f.Params[inj.paramIdx]
				}
			} else if inj.callee.Pkg() != m.pkg.Types {
				// No summary at all (stdlib, or a fact-less dependency):
				// the channel is in unknown hands.
				m.escaped = append(m.escaped, inj.slot)
				continue
			}
		}
		for _, k := range []concOps{opSend, opRecv, opClose, opRange} {
			if bits&k != 0 {
				s := inj.site
				s.kind = k
				m.sites = append(m.sites, s)
			}
		}
	}
}

// checkDirections reports bidirectional channel parameters whose summary
// is one-way: the declaration should say so.
func (m *protModel) checkDirections(sums map[*types.Func][]concOps) {
	var fns []*types.Func
	for fn := range m.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		sig := fn.Type().(*types.Signature)
		bits := sums[fn]
		for i := 0; i < sig.Params().Len() && i < len(bits); i++ {
			p := sig.Params().At(i)
			ch, ok := p.Type().Underlying().(*types.Chan)
			if !ok || ch.Dir() != types.SendRecv || bits[i] == 0 {
				continue
			}
			switch {
			case bits[i]&(opRecv|opRange) == 0:
				m.pass.Reportf(p.Pos(),
					"parameter %s of %s is only sent to or closed; declare it chan<- %s so the compiler enforces the direction",
					p.Name(), fn.Name(), ch.Elem())
			case bits[i]&(opSend|opClose) == 0:
				m.pass.Reportf(p.Pos(),
					"parameter %s of %s is only received from; declare it <-chan %s so the compiler enforces the direction",
					p.Name(), fn.Name(), ch.Elem())
			}
		}
	}
}

// checkGroups runs the per-channel protocol rules over every make-site
// group of the package.
func (m *protModel) checkGroups() {
	seen := make(map[any]bool)
	cfgs := make(map[ast.Node]*cfgIndex)
	cfgOf := func(node ast.Node) *cfgIndex {
		if ix, ok := cfgs[node]; ok {
			return ix
		}
		body := funcNodeBody(node)
		if body == nil {
			return nil
		}
		ix := indexCFG(BuildCFG(body))
		cfgs[node] = ix
		return ix
	}
	inGroup := func(root any, slot any) bool { return m.uf.find(slot) == root }
	anyIn := func(root any, slots []any) bool {
		for _, s := range slots {
			if inGroup(root, s) {
				return true
			}
		}
		return false
	}

	for _, o := range m.origins {
		root := m.uf.find(o.slot)
		if seen[root] {
			continue
		}
		seen[root] = true

		var group []protSite
		for _, s := range m.sites {
			if inGroup(root, s.slot) {
				group = append(group, s)
			}
		}
		escaped := anyIn(root, m.escaped)
		external := anyIn(root, m.external)

		// Rule: exactly one closing owner.
		closers := make(map[string]bool)
		for _, s := range group {
			if s.kind != opClose {
				continue
			}
			closers[m.actorLabel(s)] = true
		}
		if len(closers) > 1 {
			var names []string
			for n := range closers {
				names = append(names, n)
			}
			sort.Strings(names)
			m.pass.Reportf(o.call.Pos(),
				"channel has %d closing owners (%s); exactly one goroutine may own the close — move the extra close behind the owner, or //vaxlint:allow chanprot",
				len(closers), strings.Join(names, ", "))
		}

		// Rule: no send reachable after the owner's close site. A deferred
		// close runs at return, after every send in the body: skip it.
		for _, c := range group {
			if c.kind != opClose {
				continue
			}
			if _, isDefer := c.stmt.(*ast.DeferStmt); isDefer {
				continue
			}
			cix := cfgOf(c.node)
			cblk, cord, cok := locateSite(cix, c)
			if !cok {
				continue
			}
			for _, s := range group {
				if s.kind != opSend || s.node != c.node {
					continue
				}
				sblk, sord, sok := locateSite(cix, s)
				if !sok {
					continue
				}
				if cix.ordered(cblk, cord, sblk, sord) {
					p := m.pass.Fset.Position(c.pos)
					m.pass.Reportf(s.pos,
						"send reachable after the channel's close site at %s:%d; a send on a closed channel panics",
						filepath.Base(p.Filename), p.Line)
				}
			}
		}

		// Liveness rules want the whole protocol in view: only unbuffered,
		// non-escaping, load-made channels qualify.
		if o.buffered || escaped || external {
			continue
		}
		allUnbuffered := true
		for _, o2 := range m.origins {
			if inGroup(root, o2.slot) && o2.buffered {
				allUnbuffered = false
			}
		}
		if !allUnbuffered {
			continue
		}
		var blockingSends []protSite
		recvs := 0
		anySpawned := false
		for _, s := range group {
			if s.spawned {
				anySpawned = true
			}
			switch {
			case s.kind == opSend && !s.nonblocking:
				blockingSends = append(blockingSends, s)
			case s.kind&(opRecv|opRange) != 0:
				recvs++
			}
		}
		if len(blockingSends) == 0 {
			continue
		}
		first := blockingSends[0]
		for _, s := range blockingSends[1:] {
			if s.pos < first.pos {
				first = s
			}
		}
		switch {
		case recvs == 0:
			m.pass.Reportf(first.pos,
				"unbuffered channel is sent to but never received from anywhere in the load; the first send blocks forever")
		case !anySpawned:
			m.pass.Reportf(first.pos,
				"send on an unbuffered channel whose every operation runs on one goroutine: this blocks forever (spawn the receiver, buffer the channel, or //vaxlint:allow chanprot)")
		}
	}
}

// actorLabel names the owner of a site for the closing-owners message.
func (m *protModel) actorLabel(s protSite) string {
	if s.via != nil {
		return s.via.Name()
	}
	name := "package scope"
	if s.decl != nil {
		name = s.decl.Name()
	}
	if s.lit {
		return fmt.Sprintf("a function literal in %s", name)
	}
	return name
}

// locateSite finds a site's CFG block via its recorded statement.
func locateSite(ix *cfgIndex, s protSite) (*Block, int, bool) {
	if ix == nil || s.stmt == nil {
		return nil, 0, false
	}
	if b, ok := ix.blk[s.stmt]; ok {
		return b, ix.ord[s.stmt], true
	}
	return nil, 0, false
}

// protEnclosingDecl resolves the innermost enclosing *declared* function
// (literals attribute their sites to the declaration that owns them).
func protEnclosingDecl(pkg *Package, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			return obj
		}
	}
	return nil
}

// enclosingBlockStmt returns the innermost statement on the stack that a
// function-body CFG will have emitted (not crossing literal boundaries).
func enclosingBlockStmt(stack []ast.Node, n ast.Node) ast.Stmt {
	if s, ok := n.(ast.Stmt); ok {
		return s
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if _, isLit := stack[i].(*ast.FuncLit); isLit {
			return nil
		}
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

func isLitNode(n ast.Node) bool {
	_, ok := n.(*ast.FuncLit)
	return ok
}
