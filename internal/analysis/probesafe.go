package analysis

import (
	"go/ast"
	"go/types"
)

// ProbeSafe documents and enforces the single-threaded probe contract.
//
// The µPC histogram board (core.Monitor, core.Histogram) mirrors the
// paper's passive hardware monitor: exactly one Machine drives it, from
// one goroutine, and its counters are read through the command interface
// (Start/Stop/ReadBucket/Snapshot). Before future sharding work
// introduces concurrency, the analyzer flags the two ways the contract
// can be violated today:
//
//   - direct field access to core.Monitor or core.Histogram from outside
//     their defining package (counter pokes bypassing the Unibus-style
//     command interface);
//   - a go statement that captures a *Machine: the simulator core and its
//     probe are not safe for concurrent use; parallel measurement must
//     shard by Machine, one per goroutine, and merge Histograms.
//   - a function literal handed to the fault package that captures a
//     *Machine: injection hooks fire from deep inside the subsystems and
//     must stay pure observers — a hook that re-enters the Machine would
//     recurse into the cycle it is instrumenting.
var ProbeSafe = &Analyzer{
	Name: "probesafe",
	Doc:  "enforce the single-threaded Machine/probe contract",
	Run:  runProbeSafe,
}

func runProbeSafe(pass *Pass) error {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkCounterAccess(pass, n)
			case *ast.GoStmt:
				checkGoCapture(pass, n)
			case *ast.CallExpr:
				checkFaultHook(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCounterAccess reports field selections on core.Monitor or
// core.Histogram values from outside their defining package.
func checkCounterAccess(pass *Pass, sel *ast.SelectorExpr) {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := namedOf(s.Recv())
	if named == nil {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() == pass.Pkg.Types || obj.Pkg().Name() != "core" {
		return
	}
	if obj.Name() != "Monitor" && obj.Name() != "Histogram" {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"direct access to %s.%s field %s outside package %s; use the monitor command interface (single-writer probe contract)",
		obj.Pkg().Name(), obj.Name(), sel.Sel.Name, obj.Pkg().Name())
}

// checkGoCapture reports go statements whose call references a *Machine.
func checkGoCapture(pass *Pass, g *ast.GoStmt) {
	if v, id := machineCapture(pass, g.Call); v != nil {
		pass.Reportf(g.Pos(),
			"goroutine captures %s (via %q): Machine and its probe are single-threaded; shard by Machine and merge Histograms instead",
			types.TypeString(v.Type(), types.RelativeTo(pass.Pkg.Types)), id.Name)
	}
}

// checkFaultHook reports function literals passed to the fault package
// that reference a *Machine. Injection hooks run inside the memory and
// bus models mid-cycle; one that retains the Machine could re-enter it.
func checkFaultHook(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types || fn.Pkg().Name() != "fault" {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		if v, id := machineCapture(pass, lit); v != nil {
			pass.Reportf(lit.Pos(),
				"fault hook captures %s (via %q): injection hooks must not retain a Machine",
				types.TypeString(v.Type(), types.RelativeTo(pass.Pkg.Types)), id.Name)
		}
	}
}

// machineCapture returns the first Machine-typed variable referenced
// anywhere under root, with the identifier that references it.
func machineCapture(pass *Pass, root ast.Node) (*types.Var, *ast.Ident) {
	var foundVar *types.Var
	var foundID *ast.Ident
	ast.Inspect(root, func(n ast.Node) bool {
		if foundVar != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		named := namedOf(v.Type())
		if named == nil || named.Obj().Name() != "Machine" {
			return true
		}
		foundVar, foundID = v, id
		return false
	})
	return foundVar, foundID
}

// namedOf unwraps pointers and aliases down to a named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
