// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a trailing line comment of the form
//
//	// want "regexp" `another regexp`
//
// every diagnostic reported on that line must match one of the regexps,
// and every regexp must be matched by exactly one diagnostic. Backquoted
// patterns are raw — no escape processing — which keeps regexps with
// backslashes readable.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vax780/internal/analysis"
)

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads testdata/src/<pkg> and every local package it imports,
// applies the analyzer over all of them in dependency order (so facts
// propagate exactly as in a real load), and reports any mismatch between
// expected and actual diagnostics as test failures. Expectations are
// honored in every loaded package, not just the named one — a fixture
// can assert diagnostics in its dependencies.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	pkgs, err := analysis.LoadTestdataPackages(srcRoot, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		rx      *regexp.Regexp
		matched bool
	}
	var files []string
	for _, p := range pkgs {
		files = append(files, packageFiles(t, srcRoot, p.Path)...)
	}
	want := make(map[key][]*expectation)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{filepath.Base(name), i + 1}
			for _, q := range splitQuoted(t, name, i+1, m[1]) {
				rx, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, q, err)
				}
				want[k] = append(want[k], &expectation{rx: rx})
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		found := false
		for _, e := range want[k] {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, e.rx)
			}
		}
	}
}

func packageFiles(t *testing.T, srcRoot, pkg string) []string {
	t.Helper()
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkg))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// splitQuoted extracts the quoted strings of a want clause: double-quoted
// (Go escape processing applies) or backquoted (raw).
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s:%d: unterminated want pattern %q", file, line, s)
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, s[:end+1], err)
			}
			out = append(out, q)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern %q", file, line, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			t.Fatalf("%s:%d: malformed want clause at %q", file, line, s)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: empty want clause", file, line)
	}
	return out
}
