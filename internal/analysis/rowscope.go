package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// RowScope proves that the per-opcode-group exec files touch only
// microwords of their own ucode.Row. The simulator splits instruction
// execution by the paper's Table 8 rows — exec_simple.go holds the
// Simple-row microroutines, exec_float.go the Float row, and so on — and
// the row of every cycle an exec handler burns is exactly the row of the
// handle it passes to a counting primitive. A handler that reaches
// across rows (ticking, say, a Simple-row word from the Float file)
// would charge cycles to the wrong Table 8 row with no dynamic symptom
// at all: the histogram total still balances.
//
// Legitimate cross-row touches exist — shared machinery such as the
// memory-management and abort words, or a result store that rides the
// specifier bank — and each one must carry a justified
// //vaxlint:allow rowscope, turning an invisible attribution decision
// into an audited one.
//
// The check is per reference and flow-insensitive: any identifier in an
// exec_<group>.go file that resolves to a handle binding whose every
// known row differs from the file's row is a finding. Bindings whose row
// is not statically known (or that mix a matching row in) are silent.
var RowScope = &Analyzer{
	Name: "rowscope",
	Doc:  "exec_<group>.go files may touch only microword handles of the matching ucode.Row",
	Run:  runRowScope,
}

// execFileRows maps the per-opcode-group exec files to the Row constant
// their handles must carry. exec.go itself (decode, branch plumbing,
// exceptions) is shared machinery and deliberately absent.
var execFileRows = map[string]string{
	"exec_simple.go":  "RowSimple",
	"exec_field.go":   "RowField",
	"exec_float.go":   "RowFloat",
	"exec_callret.go": "RowCallRet",
	"exec_system.go":  "RowSystem",
	"exec_string.go":  "RowCharacter",
	"exec_decimal.go": "RowDecimal",
}

func runRowScope(pass *Pass) error {
	m := buildUWModel(pass, []*Package{pass.Pkg})
	for _, file := range pass.Pkg.Files {
		base := filepath.Base(pass.Fset.Position(file.Package).Filename)
		wantRow, ok := execFileRows[base]
		if !ok {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			idxs := m.binding(obj)
			if len(idxs) == 0 {
				return true
			}
			var names, rows []string
			match := false
			for _, i := range idxs {
				h := m.handles[i]
				if h.Row == "" || h.Row == wantRow {
					match = true
					break
				}
				names = append(names, h.Name)
				rows = append(rows, h.Row)
			}
			if match {
				return true
			}
			sort.Strings(names)
			rows = dedupSorted(rows)
			if len(names) > 3 {
				names = append(names[:3], "…")
			}
			pass.Reportf(id.Pos(),
				"microword %s (row %s) referenced in %s, which handles %s opcodes only",
				strings.Join(names, ", "), strings.Join(rows, "/"), base, wantRow)
			return true
		})
	}
	return nil
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
