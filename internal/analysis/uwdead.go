package analysis

// UWDead proves that no histogram bucket is structurally zero: every
// Define()d control-store location must be statically reachable at at
// least one count site — an execution tick, stall accounting, an
// IB-stall count, or the folded-marker channel. A word that is defined
// but never counted does not fail any dynamic test (its bucket simply
// stays zero), yet it silently skews every Table 8 marginal computed
// over its Row or Class and misstates the control-store occupancy the
// listing reports.
//
// Reachability is a module-wide property — a handle defined in
// internal/cpu could be counted from any importer — so unlike uwflow and
// rowscope this analyzer runs module-level, over the whole load at once,
// and needs no facts: the µflow model is built with every package's
// bindings and summaries in one table.
//
// The proof is conservative in the direction uwdead cares about: the
// dataflow is a may-analysis, so a handle laundered through arithmetic,
// an interface, or a closure stops being tracked and would be reported
// dead even if a count site dynamically sees it. Such a word is exempted
// with a justified //vaxlint:allow uwdead on its Define — the audit
// trail the analyzer exists to force. (The real tree needs none.)
var UWDead = &Analyzer{
	Name:        "uwdead",
	Doc:         "every defined microword must be statically reachable at a count site (no structurally-zero buckets)",
	ModuleLevel: true,
	Run:         runUWDead,
}

func runUWDead(pass *Pass) error {
	m := buildUWModel(pass, pass.All)
	if len(m.handles) == 0 {
		return nil
	}
	counted := make([]bool, len(m.handles))
	mark := func(v valueSet) {
		for i := range v.handles {
			counted[i] = true
		}
	}
	for _, flow := range m.flowLst {
		for _, site := range flow.sites {
			if site.probeCh != "" {
				if len(site.args) > 0 {
					mark(site.args[0])
				}
				continue
			}
			// A dynamic call counts a handle if any candidate value of the
			// named function type (a registered handler or literal) leads
			// the parameter to a channel.
			if site.dyn != nil {
				summ := m.dynSummary(site.dyn, false)
				for j := 0; j < len(summ) && j < len(site.args); j++ {
					if len(summ[j]) > 0 {
						mark(site.args[j])
					}
				}
				continue
			}
			if ch, hp, ok := channelOf(site.callee); ok && ch != "" {
				if hp < len(site.args) {
					mark(site.args[hp])
				}
				continue
			}
			// A helper counts a handle if the parameter the handle flows
			// into reaches any channel inside it.
			summ := m.summaryOf(site.callee)
			for j := 0; j < len(summ) && j < len(site.args); j++ {
				if len(summ[j]) > 0 {
					mark(site.args[j])
				}
			}
		}
	}
	for i, h := range m.handles {
		if counted[i] {
			continue
		}
		where := describeRowClass(h)
		pass.Reportf(h.Pos,
			"microword %q%s is defined but reaches no count site; its histogram bucket is structurally zero",
			h.Name, where)
	}
	return nil
}

func describeRowClass(h uwHandle) string {
	switch {
	case h.Row != "" && h.Class != "":
		return " (" + h.Row + ", " + h.Class + ")"
	case h.Row != "":
		return " (" + h.Row + ")"
	case h.Class != "":
		return " (" + h.Class + ")"
	}
	return ""
}
