package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr polices the error contract at the measurement-infrastructure
// boundaries. The checkpoint/resume and supervision layers promise
// callers machine-checkable failure classes — checkpoint.ErrCorrupt,
// ErrBadVersion, ErrNoSnapshot, core.ErrCorruptHistogram, workload's
// *Interrupted — and cmd/* routes on them with errors.Is/errors.As. The
// contract decays in two ways:
//
//   - a boundary package returns a fresh untyped error (errors.New, or
//     fmt.Errorf without %w) from an exported function: callers can only
//     string-match it. Every error leaving internal/checkpoint,
//     internal/workload or internal/cli must be a declared sentinel, a
//     declared error type, or wrap an underlying error with %w;
//   - a caller compares a module sentinel with == / != or asserts an
//     error type with .(…): both break under wrapping. errors.Is and
//     errors.As are required (stdlib sentinels like io.EOF keep their
//     documented identity contract and are left alone).
//
// The sentinel/assert rules run module-wide; the return-shape rule only
// in the boundary packages (by package name, so the analysistest
// fixtures can model them).
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "boundary errors are typed or %w-wrapped; sentinel checks use errors.Is/As",
	Run:  runTypedErr,
}

// typedErrBoundaries are the package names whose exported functions may
// only return typed or wrapped errors.
var typedErrBoundaries = map[string]bool{
	"checkpoint": true,
	"workload":   true,
	"cli":        true,
}

func runTypedErr(pass *Pass) error {
	boundary := typedErrBoundaries[pass.Pkg.Types.Name()]
	for _, fd := range PackageFuncs(pass.Pkg) {
		if boundary && fd.Obj.Exported() {
			checkBoundaryReturns(pass, fd)
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.TypeAssertExpr:
				checkErrorAssert(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBoundaryReturns flags returned error expressions that mint a
// fresh untyped error: errors.New, or fmt.Errorf whose format has no %w
// verb. Returning a variable, a sentinel, a typed error literal, or the
// result of another call is fine (the latter is conservative: the callee
// is itself checked where it is declared).
func checkBoundaryReturns(pass *Pass, fd FuncDecl) {
	sig := fd.Obj.Type().(*types.Signature)
	errResult := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errResult = i
		}
	}
	if errResult < 0 {
		return
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		// Nested function literals have their own signatures; do not
		// attribute their returns to the enclosing function.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != sig.Results().Len() {
			return true
		}
		checkErrorExpr(pass, fd, ret.Results[errResult])
		return true
	})
}

func checkErrorExpr(pass *Pass, fd FuncDecl, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := Callee(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "errors.New":
		pass.Reportf(e.Pos(),
			"%s returns errors.New(...) across the %s boundary: callers can only string-match it; return a declared sentinel/error type or wrap with fmt.Errorf(\"...: %%w\", ...)",
			funcString(fd.Obj), pass.Pkg.Types.Name())
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return
		}
		format, ok := stringConstant(pass, call.Args[0])
		if ok && !strings.Contains(format, "%w") {
			pass.Reportf(e.Pos(),
				"%s returns an unwrapped fmt.Errorf across the %s boundary: the error chain stops here; use %%w or a declared error type",
				funcString(fd.Obj), pass.Pkg.Types.Name())
		}
	}
}

// stringConstant returns the compile-time string value of e, if it has one.
func stringConstant(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkSentinelCompare flags ==/!= where one operand is a module-declared
// error sentinel (a package-level Err* variable of error type) and the
// other is not nil.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, b.X) || isNilExpr(pass, b.Y) {
		return
	}
	for _, e := range []ast.Expr{b.X, b.Y} {
		if s := sentinelOf(pass, e); s != nil {
			pass.Reportf(b.Pos(),
				"sentinel %s compared with %s: wrapped errors slip through; use errors.Is", s.Name(), b.Op)
			return
		}
	}
}

// checkErrorAssert flags err.(*SomeError)-style assertions where the
// asserted type implements error. Type switches are *ast.TypeAssertExpr
// with a nil Type and are handled via their case clauses' implicit
// assertions being... not represented in the AST; a direct assertion is
// the form that appears in this codebase.
func checkErrorAssert(pass *Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // type switch header: cases are checked by convention/review
	}
	tv, ok := pass.Pkg.Info.Types[ta.Type]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	// Only flag assertions on an error-typed operand (asserting a
	// concrete type out of a non-error interface is unrelated).
	if xtv, ok := pass.Pkg.Info.Types[ta.X]; !ok || !isErrorInterface(xtv.Type) {
		return
	}
	pass.Reportf(ta.Pos(),
		"type assertion on an error value: wrapped errors slip through; use errors.As")
}

// sentinelOf returns the object when e names a module-declared package-
// level error variable following the Err* convention.
func sentinelOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() || !isErrorType(v.Type()) {
		return nil
	}
	// Module-declared only: stdlib sentinels (io.EOF — not Err* anyway,
	// but e.g. os.ErrNotExist) keep their documented identity semantics
	// for code that owns the value; we scope the rule to sentinels the
	// load itself declares.
	for _, pkg := range pass.All {
		if pkg.Types == v.Pkg() {
			return v
		}
	}
	return nil
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(t, true, nil, "Error")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		sig.Results().At(0).Type().String() == "string"
}

// isErrorInterface reports whether t is an interface type implementing
// error (typically the error interface itself).
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok && isErrorType(t)
}
