package fault_test

import (
	"fmt"
	"testing"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/vmos"
	"vax780/internal/workload"
)

// soakCycles satisfies the robustness acceptance bar: at least five
// million cycles of multiprogrammed OS workload with every injection
// point firing, and nothing worse than a machine check comes out.
const soakCycles = 6_000_000

// soakSystem builds a booted vmos system running a generated workload
// with the given fault plane attached, plus a collecting monitor.
func soakSystem(t *testing.T, plane *fault.Plane) (*vmos.System, *core.Monitor) {
	t.Helper()
	p, ok := workload.ByName("rte-commercial")
	if !ok {
		p = workload.All()[0]
	}
	sys := vmos.NewSystem(vmos.Config{IncludeNull: true})
	mon := core.NewMonitor()
	mon.Start()
	sys.Machine().AttachProbe(mon)
	sys.Machine().AttachFaultPlane(plane)
	for i := 0; i < p.Procs; i++ {
		im, err := workload.Generate(workload.GenConfig{
			Mix:       p.Mix,
			Blocks:    p.Blocks,
			LoopIter:  p.LoopIter,
			StringLen: p.StringLen,
			Seed:      p.Seed + int64(i)*1000,
		})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if _, err := sys.AddProcess(fmt.Sprintf("soak-%d", i), im); err != nil {
			t.Fatalf("add process: %v", err)
		}
	}
	if err := sys.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	sys.SetScriptText(p.Script)
	sys.QueueTerminalEvents(p.TerminalSchedule(soakCycles))
	return sys, mon
}

// TestChaosSoak runs a full OS workload for millions of cycles with all
// five injection points live. The machine must absorb every fault as an
// architectural machine check: no panic, no hard stop, the monitor's
// cycle-accounting identity intact, and the kernel's log in agreement
// with the hardware counters.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	plane := fault.NewPlane(fault.Config{
		Seed: 0x780C0FFEE,
		Sched: [fault.NumPoints]fault.Schedule{
			// Low background rates keep the error arrival well under the
			// kernel's per-tick retry budget; the Every backstops make
			// every point fire even if its reference stream is sparse.
			fault.MemRDS:      {Rate: 3e-5, Every: 200_000},
			fault.CacheParity: {Rate: 3e-5, Every: 250_000},
			fault.TBParity:    {Rate: 2e-5, Every: 300_000},
			fault.SBITimeout:  {Rate: 2e-4, Every: 20_000},
			fault.CSParity:    {Rate: 2e-5, Every: 100_000},
		},
	})
	sys, mon := soakSystem(t, plane)
	m := sys.Machine()

	res := sys.Run(soakCycles)
	if res.Err != nil {
		t.Fatalf("soak run failed: %v (reason %v)", res.Err, res.Reason)
	}
	if res.Halted {
		t.Fatalf("soak run halted: kernel declared an error storm after %d checks",
			sys.MachineChecks())
	}
	if m.Cycle() < soakCycles {
		t.Fatalf("ran %d cycles, want >= %d", m.Cycle(), soakCycles)
	}

	// Every injection point was consulted and fired.
	st := plane.Stats()
	for pt := fault.Point(0); pt < fault.NumPoints; pt++ {
		if st.Samples[pt] == 0 {
			t.Errorf("point %v was never sampled", pt)
		}
		if st.Injected[pt] == 0 {
			t.Errorf("point %v never fired (%d samples)", pt, st.Samples[pt])
		}
	}

	// The monitor's identity survived the chaos: every cycle is still
	// attributed to exactly one control-store location.
	hist := mon.Snapshot()
	if hist.TotalCycles() != m.Cycle() {
		t.Errorf("monitor identity broken: %d classified cycles != %d machine cycles",
			hist.TotalCycles(), m.Cycle())
	}

	// Machine checks were delivered, and the kernel's software log agrees
	// with the hardware counter (the final check may still be mid-handler
	// when the cycle budget expires, hence the one-count slack).
	hw := m.HW()
	if hw.MachineChecks == 0 {
		t.Fatal("no machine checks delivered")
	}
	kern := uint64(sys.MachineChecks())
	if kern > hw.MachineChecks || hw.MachineChecks-kern > 1 {
		t.Errorf("kernel logged %d machine checks, hardware delivered %d", kern, hw.MachineChecks)
	}
	var causes uint64
	for c := cpu.MCCause(0); c < cpu.NumMCCauses; c++ {
		causes += uint64(sys.MachineCheckCause(c))
	}
	if causes > kern || kern-causes > 1 {
		t.Errorf("per-cause log sums to %d, total log is %d", causes, kern)
	}

	// The histogram still reduces into the paper's tables.
	r := core.Reduce(hist, cpu.CS)
	if r.Instructions == 0 || r.CPI() <= 0 {
		t.Errorf("post-soak reduction degenerate: %d instructions, CPI %.3f",
			r.Instructions, r.CPI())
	}
}

// TestZeroRatePlaneIsFree proves injection-off observational transparency:
// a wired-up plane with all schedules zero yields a run bit-identical to
// one with no plane at all.
func TestZeroRatePlaneIsFree(t *testing.T) {
	const cycles = 300_000
	p := workload.All()[0]
	base, err := workload.Run(p, cycles, cpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	injected, err := workload.RunInjected(p, cycles, cpu.Config{},
		fault.NewPlane(fault.Config{Seed: 12345}))
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != injected.Cycles || base.Instructions != injected.Instructions {
		t.Fatalf("zero-rate plane perturbed the run: %d/%d cycles, %d/%d instructions",
			base.Cycles, injected.Cycles, base.Instructions, injected.Instructions)
	}
	if *base.Hist != *injected.Hist {
		t.Fatal("zero-rate plane perturbed the histogram")
	}
	if base.HW.MachineChecks != 0 || injected.HW.MachineChecks != 0 {
		t.Fatal("zero-rate plane delivered a machine check")
	}
}
