package fault

// State is the serialized state of a fault plane, for the checkpoint/
// resume path (internal/checkpoint): the per-point PRNG stream positions
// and the sampling statistics. The schedules and the observer are
// configuration/attachment wiring — a resumed plane is rebuilt from the
// same Config and then imports this state, after which it produces the
// exact fault schedule the uninterrupted run would have (the deterministic-
// resume guarantee depends on this).
type State struct {
	Streams [NumPoints]uint64
	Stats   Stats
}

// ExportState captures the stream positions and statistics. Returns nil
// for a nil plane (no injection attached).
func (p *Plane) ExportState() *State {
	if p == nil {
		return nil
	}
	return &State{Streams: p.streams, Stats: p.stats}
}

// ImportState restores captured stream positions and statistics. A no-op
// on a nil plane.
func (p *Plane) ImportState(st *State) {
	if p == nil || st == nil {
		return
	}
	p.streams = st.Streams
	p.stats = st.Stats
}
