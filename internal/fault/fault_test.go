package fault

import (
	"math"
	"testing"
)

func TestNilPlaneNeverFires(t *testing.T) {
	var p *Plane
	for i := 0; i < 1000; i++ {
		if p.Sample(MemRDS) {
			t.Fatal("nil plane fired")
		}
	}
	if p.Sampler(MemRDS) != nil {
		t.Error("nil plane should hand out nil samplers")
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Errorf("nil plane stats = %+v", s)
	}
}

func TestZeroRatePlaneNeverFires(t *testing.T) {
	p := NewPlane(Config{Seed: 1})
	for pt := Point(0); pt < NumPoints; pt++ {
		for i := 0; i < 1000; i++ {
			if p.Sample(pt) {
				t.Fatalf("zero-rate point %v fired", pt)
			}
		}
	}
	// Disabled points must not even count samples, so attaching a
	// zero-rate plane is observationally free.
	if s := p.Stats(); s != (Stats{}) {
		t.Errorf("zero-rate plane recorded activity: %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42}
	cfg.Sched[CacheParity] = Schedule{Rate: 0.01}
	cfg.Sched[TBParity] = Schedule{Rate: 0.05}
	a, b := NewPlane(cfg), NewPlane(cfg)
	for i := 0; i < 100_000; i++ {
		pt := Point(i % int(NumPoints))
		if a.Sample(pt) != b.Sample(pt) {
			t.Fatalf("streams diverged at sample %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestPointsIndependent(t *testing.T) {
	// Enabling a second point must not change the first point's schedule.
	cfg1 := Config{Seed: 7}
	cfg1.Sched[MemRDS] = Schedule{Rate: 0.01}
	cfg2 := cfg1
	cfg2.Sched[SBITimeout] = Schedule{Rate: 0.5}
	a, b := NewPlane(cfg1), NewPlane(cfg2)
	for i := 0; i < 50_000; i++ {
		b.Sample(SBITimeout)
		if a.Sample(MemRDS) != b.Sample(MemRDS) {
			t.Fatalf("mem stream perturbed by sbi sampling at %d", i)
		}
	}
}

func TestRateApproximate(t *testing.T) {
	cfg := Config{Seed: 3}
	cfg.Sched[MemRDS] = Schedule{Rate: 0.01}
	p := NewPlane(cfg)
	const n = 200_000
	fired := 0
	for i := 0; i < n; i++ {
		if p.Sample(MemRDS) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.01) > 0.002 {
		t.Errorf("rate 0.01 fired at %v", got)
	}
	st := p.Stats()
	if st.Samples[MemRDS] != n || st.Injected[MemRDS] != uint64(fired) {
		t.Errorf("stats = %+v", st)
	}
}

func TestEveryNExact(t *testing.T) {
	cfg := Config{Seed: 9}
	cfg.Sched[CSParity] = Schedule{Every: 100}
	p := NewPlane(cfg)
	fired := 0
	for i := 1; i <= 1000; i++ {
		if p.Sample(CSParity) {
			fired++
			if i%100 != 0 {
				t.Fatalf("every=100 fired at sample %d", i)
			}
		}
	}
	if fired != 10 {
		t.Errorf("every=100 fired %d times in 1000, want 10", fired)
	}
}

func TestObserver(t *testing.T) {
	cfg := Config{Seed: 11}
	cfg.Sched[TBParity] = Schedule{Every: 5}
	p := NewPlane(cfg)
	var seen []Point
	p.SetObserver(func(pt Point) { seen = append(seen, pt) })
	for i := 0; i < 12; i++ {
		p.Sample(TBParity)
	}
	if len(seen) != 2 || seen[0] != TBParity {
		t.Errorf("observer saw %v", seen)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=0x2a, mem=1e-4, cache=0.5, sbi=1/5000")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 0x2a {
		t.Errorf("seed = %d", cfg.Seed)
	}
	if cfg.Sched[MemRDS].Rate != 1e-4 || cfg.Sched[CacheParity].Rate != 0.5 {
		t.Errorf("rates = %+v", cfg.Sched)
	}
	if cfg.Sched[SBITimeout].Every != 5000 {
		t.Errorf("sbi every = %d", cfg.Sched[SBITimeout].Every)
	}

	for _, bad := range []string{
		"", "mem", "bogus=1", "mem=2", "mem=-1", "mem=xyz", "seed=no", "mem=1/0",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestPointNames(t *testing.T) {
	for pt := Point(0); pt < NumPoints; pt++ {
		got, ok := PointByName(pt.String())
		if !ok || got != pt {
			t.Errorf("PointByName(%q) = %v, %v", pt.String(), got, ok)
		}
	}
	if _, ok := PointByName("nope"); ok {
		t.Error("PointByName accepted unknown name")
	}
}
