// Package fault is the simulator's deterministic fault-injection plane.
//
// The real VAX-11/780 reported cache parity errors, translation-buffer
// parity errors, SBI faults and memory RDS (Read Data Substitute) errors
// through the machine-check mechanism; VMS logged them, retried the
// operation, or crashed deliberately when the error rate exceeded its
// tolerance. To prove the reproduction survives the same weather, this
// package provides named injection points threaded through the memory
// subsystem and CPU, each driven by its own deterministic pseudo-random
// stream so a given seed reproduces a fault schedule exactly — and a nil
// or zero-rate plane perturbs nothing, keeping baseline measurements
// bit-identical.
//
// Each injection point samples independently: per-point splitmix64
// streams mean enabling one point never shifts another point's schedule.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Point names one fault-injection site.
type Point int

// Injection points. Each maps to a distinct real-780 error source; the
// CPU converts a fired point into the matching machine-check cause (see
// DESIGN.md "Fault model & machine checks").
const (
	MemRDS      Point = iota // memory array uncorrectable error (RDS)
	CacheParity              // cache data/tag store parity error
	TBParity                 // translation-buffer parity error
	SBITimeout               // SBI transaction timeout / fault
	CSParity                 // microcode control-store parity error
	NumPoints
)

var pointNames = [NumPoints]string{"mem", "cache", "tb", "sbi", "cs"}

func (p Point) String() string {
	if p >= 0 && int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("fault.Point(%d)", int(p))
}

// PointByName resolves a spec key to an injection point.
func PointByName(name string) (Point, bool) {
	for i, n := range pointNames {
		if n == name {
			return Point(i), true
		}
	}
	return 0, false
}

// Schedule sets how often one point fires. Rate and Every compose: the
// point fires when either schedule says so.
type Schedule struct {
	// Rate is the per-reference firing probability (0 disables).
	Rate float64
	// Every fires on every Nth sample of the point (0 disables). Unlike
	// Rate it guarantees the point is exercised on long runs.
	Every uint64
}

func (s Schedule) enabled() bool { return s.Rate > 0 || s.Every > 0 }

// Config seeds a plane.
type Config struct {
	Seed  uint64
	Sched [NumPoints]Schedule
}

// Stats counts sampling activity per point.
type Stats struct {
	Samples  [NumPoints]uint64 // times the point was consulted
	Injected [NumPoints]uint64 // times it fired
}

// Plane is a deterministic fault scheduler. It is not safe for concurrent
// use; like the Machine it instruments, one Plane belongs to one
// simulation goroutine.
type Plane struct {
	sched    [NumPoints]Schedule //vaxlint:allow statecomplete -- rebuilt from checkpoint Meta.Fault by NewPlane
	streams  [NumPoints]uint64   // per-point splitmix64 states
	stats    Stats
	observer func(Point) //vaxlint:allow statecomplete -- attachment; re-attached after resume
}

// NewPlane builds a plane from a config. A nil *Plane is valid everywhere
// a plane is accepted and injects nothing.
func NewPlane(cfg Config) *Plane {
	p := &Plane{sched: cfg.Sched}
	for i := range p.streams {
		// Decorrelate the per-point streams from one seed.
		p.streams[i] = splitmix64(cfg.Seed + 0x9E3779B97F4A7C15*uint64(i+1))
	}
	return p
}

// SetObserver installs a callback fired on every injection (nil removes
// it). The callback must be a pure observer: in particular it must not
// retain or touch a *cpu.Machine — the probesafe analyzer enforces this.
func (p *Plane) SetObserver(fn func(Point)) {
	if p != nil {
		p.observer = fn
	}
}

// Sample consults one injection point and reports whether a fault fires
// on this reference. Safe on a nil plane (never fires).
func (p *Plane) Sample(pt Point) bool {
	if p == nil {
		return false
	}
	s := p.sched[pt]
	if !s.enabled() {
		return false
	}
	p.stats.Samples[pt]++
	fire := false
	if s.Every > 0 && p.stats.Samples[pt]%s.Every == 0 {
		fire = true
	}
	if !fire && s.Rate > 0 {
		p.streams[pt] = splitmix64(p.streams[pt])
		// Map the top 53 bits to [0,1).
		u := float64(p.streams[pt]>>11) / (1 << 53)
		fire = u < s.Rate
	}
	if fire {
		p.stats.Injected[pt]++
		if p.observer != nil {
			p.observer(pt)
		}
	}
	return fire
}

// Sampler returns a bound sampler for one point, for wiring into a
// subsystem that should not know about the whole plane. Safe on a nil
// plane (returns nil, which subsystems treat as "no injection").
func (p *Plane) Sampler(pt Point) func() bool {
	if p == nil {
		return nil
	}
	return func() bool { return p.Sample(pt) }
}

// Stats returns cumulative sampling statistics (zero for a nil plane).
func (p *Plane) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats
}

// splitmix64 is the SplitMix64 output function: a bijective mixer whose
// iterated application passes BigCrush; ideal here because each call is a
// few arithmetic ops and the state is one word per point.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ParseSpec parses a vaxsim-style injection spec:
//
//	seed=7,mem=1e-5,cache=2e-5,tb=1e-5,sbi=1/50000,cs=1/200000
//
// Keys are injection point names (mem, cache, tb, sbi, cs) plus "seed".
// A point's value is either a probability (float in [0,1]) or "1/N" to
// fire on every Nth reference.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("fault: empty injection spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if k == "seed" {
			seed, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			cfg.Seed = seed
			continue
		}
		pt, ok := PointByName(k)
		if !ok {
			return cfg, fmt.Errorf("fault: unknown injection point %q (have mem, cache, tb, sbi, cs)", k)
		}
		if num, ok := strings.CutPrefix(v, "1/"); ok {
			every, err := strconv.ParseUint(num, 10, 64)
			if err != nil || every == 0 {
				return cfg, fmt.Errorf("fault: bad interval %q for %s (want 1/N)", v, k)
			}
			cfg.Sched[pt].Every = every
			continue
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, fmt.Errorf("fault: bad rate %q for %s: %w", v, k, err)
		}
		if rate < 0 || rate > 1 {
			return cfg, fmt.Errorf("fault: rate %v for %s outside [0,1]", rate, k)
		}
		cfg.Sched[pt].Rate = rate
	}
	return cfg, nil
}
