package asm

import (
	"strings"
	"testing"

	"vax780/internal/vax"
)

func TestBuilderSimpleProgram(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("start")
	b.Op("MOVL", Lit(5), R(vax.R0))
	b.Label("loop")
	b.Br("SOBGTR", "loop", R(vax.R0))
	b.Op("HALT")
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if im.MustAddr("start") != 0x1000 {
		t.Errorf("start = %#x, want 0x1000", im.MustAddr("start"))
	}
	// MOVL S^#5, R0 = D0 05 50 (3 bytes); loop at 0x1003.
	if im.MustAddr("loop") != 0x1003 {
		t.Errorf("loop = %#x, want 0x1003", im.MustAddr("loop"))
	}
	// SOBGTR R0, loop = F5 50 <disp>; disp relative to 0x1006 -> -3.
	want := []byte{0xD0, 0x05, 0x50, 0xF5, 0x50, 0xFD, 0x00}
	if len(im.Bytes) != len(want) {
		t.Fatalf("image = % x, want % x", im.Bytes, want)
	}
	for i := range want {
		if im.Bytes[i] != want[i] {
			t.Fatalf("image[%d] = %#02x, want %#02x (image % x)", i, im.Bytes[i], want[i], im.Bytes)
		}
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder(0)
	b.Br("BRB", "fwd")
	b.Op("NOP")
	b.Op("NOP")
	b.Label("fwd")
	b.Op("HALT")
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// BRB disp relative to address 2; fwd at 4 -> disp 2.
	if im.Bytes[1] != 2 {
		t.Errorf("BRB displacement = %d, want 2", int8(im.Bytes[1]))
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Br("BRB", "nowhere")
	if _, err := b.Finish(); err == nil {
		t.Error("undefined label should fail")
	}
}

func TestBuilderByteRangeError(t *testing.T) {
	b := NewBuilder(0)
	b.Br("BRB", "far")
	b.Space(200)
	b.Label("far")
	if _, err := b.Finish(); err == nil {
		t.Error("byte displacement of +198 should fail")
	}
}

func TestBuilderCaseTable(t *testing.T) {
	b := NewBuilder(0x100)
	b.Case("CASEL", R(vax.R0), Lit(0), Lit(2), "c0", "c1", "c2")
	b.Label("c0")
	b.Op("NOP")
	b.Label("c1")
	b.Op("NOP")
	b.Label("c2")
	b.Op("HALT")
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// CASEL R0,S^#0,S^#2 = CF 50 00 02 then 3 word displacements from table
	// base 0x104; c0 = 0x10A -> 6, c1 -> 7, c2 -> 8.
	tab := im.Bytes[4:]
	wants := []int16{6, 7, 8}
	for i, w := range wants {
		got := int16(uint16(tab[2*i]) | uint16(tab[2*i+1])<<8)
		if got != w {
			t.Errorf("case entry %d = %d, want %d", i, got, w)
		}
	}
}

func TestTextAssembler(t *testing.T) {
	src := `
; a tiny program
start:	MOVL	#10, R0
	CLRL	R1
loop:	ADDL2	R0, R1
	SOBGTR	R0, loop
	MOVL	R1, @#0x2000
	HALT
data:	.long	0xdeadbeef, start
	.word	7
	.byte	1, 2, 3
	.ascii	"ok"
	.align	4
end:
`
	im, err := Assemble(0x400, src)
	if err != nil {
		t.Fatal(err)
	}
	if im.MustAddr("start") != 0x400 {
		t.Errorf("start = %#x", im.MustAddr("start"))
	}
	if im.MustAddr("end")%4 != 0 {
		t.Errorf("end %#x not aligned", im.MustAddr("end"))
	}
	// .long start must hold 0x400.
	d := im.MustAddr("data") - im.Org
	got := uint32(im.Bytes[d+4]) | uint32(im.Bytes[d+5])<<8 | uint32(im.Bytes[d+6])<<16 | uint32(im.Bytes[d+7])<<24
	if got != 0x400 {
		t.Errorf(".long start = %#x, want 0x400", got)
	}
	// Round trip: the code region must disassemble.
	text, n, err := DisasmOne(im.Bytes, im.Org, 0)
	if err != nil || n == 0 {
		t.Fatalf("disasm: %v", err)
	}
	if !strings.HasPrefix(text, "MOVL") {
		t.Errorf("disasm = %q", text)
	}
}

func TestTextOperandForms(t *testing.T) {
	src := `
top:	MOVL	(R1), R2
	MOVL	(R1)+, R2
	MOVL	-(R1), R2
	MOVL	@(R1)+, R2
	MOVL	8(R3), R2
	MOVL	B^8(R3), R2
	MOVL	W^300(R3), R2
	MOVL	L^70000(R3), R2
	MOVL	@12(FP), R2
	MOVL	4(R5)[R6], R2
	MOVL	I^#100, R2
	MOVL	S^#3, R2
	MOVL	#200, R2
	MOVL	@#0x8000, R2
	JSB	top
	HALT
`
	im, err := Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	// Every statement must disassemble cleanly until HALT.
	off := uint32(0)
	count := 0
	for off < uint32(len(im.Bytes)) {
		_, n, err := DisasmOne(im.Bytes, im.Org, off)
		if err != nil {
			t.Fatalf("disasm at +%#x: %v", off, err)
		}
		off += uint32(n)
		count++
	}
	if count != 16 {
		t.Errorf("decoded %d instructions, want 16", count)
	}
}

func TestTextErrors(t *testing.T) {
	bad := []string{
		"FROB R1",            // unknown mnemonic
		"MOVL R1",            // operand count
		"MOVL R1, R2, R3",    // operand count
		"MOVL #zork, R1",     // bad integer
		"MOVL (R99), R1",     // bad register
		".weird 1",           // unknown directive
		"BRB",                // missing target
		"MOVL label[R1], R0", // indexed label
	}
	for _, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestListingContainsLabels(t *testing.T) {
	im, err := Assemble(0, "a: NOP\nb: HALT\n")
	if err != nil {
		t.Fatal(err)
	}
	l := Listing(im)
	if !strings.Contains(l, "a:") || !strings.Contains(l, "b:") || !strings.Contains(l, "NOP") {
		t.Errorf("listing missing pieces:\n%s", l)
	}
}

func TestImmediateVsLiteralSelection(t *testing.T) {
	// #n with a write-access operand must not become a short literal.
	im, err := Assemble(0, "MOVL #5, R0\nCLRL R1\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Bytes[1] != 0x05 {
		t.Errorf("read access #5 should be short literal, got %#02x", im.Bytes[1])
	}
	in, err := vax.Decode(im.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if in.Specs[0].Mode != vax.ModeLiteral {
		t.Errorf("mode = %v, want literal", in.Specs[0].Mode)
	}
}

func TestSymbolExpressions(t *testing.T) {
	im, err := Assemble(0x1000, `
	MOVAL	tbl+8, R1	; PC-relative label+offset
	MOVL	@#tbl+4, R2	; absolute label+offset
	HALT
tbl:	.long	10, 20, 30
ptr:	.long	tbl+8, tbl-4
`)
	if err != nil {
		t.Fatal(err)
	}
	m := mustRunAsm(t, im)
	tbl := im.MustAddr("tbl")
	if m.regs[1] != tbl+8 {
		t.Errorf("R1 = %#x, want tbl+8 = %#x", m.regs[1], tbl+8)
	}
	if m.regs[2] != 20 {
		t.Errorf("R2 = %d, want 20 (tbl[1])", m.regs[2])
	}
	p := im.MustAddr("ptr") - im.Org
	got := uint32(im.Bytes[p]) | uint32(im.Bytes[p+1])<<8 | uint32(im.Bytes[p+2])<<16 | uint32(im.Bytes[p+3])<<24
	if got != tbl+8 {
		t.Errorf(".long tbl+8 = %#x, want %#x", got, tbl+8)
	}
	got2 := uint32(im.Bytes[p+4]) | uint32(im.Bytes[p+5])<<8 | uint32(im.Bytes[p+6])<<16 | uint32(im.Bytes[p+7])<<24
	if got2 != tbl-4 {
		t.Errorf(".long tbl-4 = %#x, want %#x", got2, tbl-4)
	}
}

// mustRunAsm is a tiny interpreter-free check: the asm package cannot
// import cpu (the dependency points the other way), so we decode the two
// MOVALs/MOVLs ourselves via the disassembler to validate the fixups, and
// return the addresses the operands resolve to.
type asmProbe struct{ regs [16]uint32 }

func mustRunAsm(t *testing.T, im *Image) *asmProbe {
	t.Helper()
	p := &asmProbe{}
	// Instruction 1: MOVAL L^disp(PC), R1 -> effective = pc-after + disp.
	in, err := vax.Decode(im.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if in.Specs[0].Mode != vax.ModeLongDisp || in.Specs[0].Base != vax.PC {
		t.Fatalf("first operand not PC-relative: %+v", in.Specs[0])
	}
	// The displacement is relative to the address after the specifier,
	// which is the last byte of the instruction minus the R1 specifier.
	pcAfter := im.Org + uint32(in.Size) - 1 // one byte for the R1 specifier
	p.regs[1] = pcAfter + uint32(in.Specs[0].Disp)
	// Instruction 2: MOVL @#addr, R2.
	in2, err := vax.Decode(im.Bytes[in.Size:])
	if err != nil {
		t.Fatal(err)
	}
	if in2.Specs[0].Mode != vax.ModeAbsolute {
		t.Fatalf("second operand not absolute: %+v", in2.Specs[0])
	}
	addr := uint32(in2.Specs[0].Imm)
	off := addr - im.Org
	p.regs[2] = uint32(im.Bytes[off]) | uint32(im.Bytes[off+1])<<8 |
		uint32(im.Bytes[off+2])<<16 | uint32(im.Bytes[off+3])<<24
	return p
}

func TestOrgBackwardFails(t *testing.T) {
	if _, err := Assemble(0x1000, ".space 64\n.org 0x1010\n"); err == nil {
		t.Error(".org behind the current address should fail")
	}
}
