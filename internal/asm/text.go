package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vax780/internal/vax"
)

// Assemble assembles a text program at the given origin.
//
// Syntax (one statement per line, ';' comments):
//
//	label:  MOVL  #5, R0
//	loop:   SOBGTR R0, loop
//	        MOVL  4(R2)[R3], @#0x1000
//	        JSB   sub              ; PC-relative label reference
//	        CASEL R0, #0, #2, c0, c1, c2
//	        .org   0x200
//	        .byte  1, 2, 3
//	        .long  0xdeadbeef, table
//	        .word  10
//	        .ascii "hello"
//	        .space 16
//	        .align 4
func Assemble(org uint32, src string) (*Image, error) {
	b := NewBuilder(org)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t\"#@(") {
				break
			}
			b.Label(strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleStatement(b, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return b.Finish()
}

func assembleStatement(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if strings.HasPrefix(mnemonic, ".") {
		return assembleDirective(b, mnemonic, rest)
	}
	mnemonic = strings.ToUpper(mnemonic)
	info := vax.LookupName(mnemonic)
	if info == nil {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	fields := splitOperands(rest)
	want := len(info.Specs)
	if info.BranchDisp != vax.TypeNone {
		want++
	}
	if info.PCClass == vax.PCCase {
		if len(fields) < want {
			return fmt.Errorf("%s wants at least %d operands, got %d", mnemonic, want, len(fields))
		}
	} else if len(fields) != want {
		return fmt.Errorf("%s wants %d operands, got %d", mnemonic, want, len(fields))
	}
	args := make([]Arg, len(info.Specs))
	for i := range info.Specs {
		a, err := parseOperand(fields[i], info.Specs[i])
		if err != nil {
			return fmt.Errorf("%s operand %d: %w", mnemonic, i+1, err)
		}
		args[i] = a
	}
	switch {
	case info.PCClass == vax.PCCase:
		b.Case(mnemonic, args[0], args[1], args[2], fields[len(info.Specs):]...)
	case info.BranchDisp != vax.TypeNone:
		b.Br(mnemonic, fields[len(fields)-1], args...)
	default:
		b.Op(mnemonic, args...)
	}
	return nil
}

func assembleDirective(b *Builder, name, rest string) error {
	fields := splitOperands(rest)
	switch strings.ToLower(name) {
	case ".byte":
		for _, f := range fields {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			b.Byte(byte(v))
		}
	case ".word":
		for _, f := range fields {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			b.Word(uint16(v))
		}
	case ".long":
		for _, f := range fields {
			if v, err := parseInt(f); err == nil {
				b.Long(uint32(v))
			} else if name, off, ok := splitSymExpr(f); ok {
				b.LongLabelOff(name, off)
			} else {
				return err
			}
		}
	case ".quad":
		for _, f := range fields {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			b.Quad(uint64(v))
		}
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf(".ascii %s: %w", rest, err)
		}
		b.Byte([]byte(s)...)
	case ".space":
		v, err := parseInt(rest)
		if err != nil {
			return err
		}
		b.Space(int(v))
	case ".align":
		v, err := parseInt(rest)
		if err != nil {
			return err
		}
		b.Align(int(v))
	case ".org":
		v, err := parseInt(rest)
		if err != nil {
			return err
		}
		if err := b.Org(uint32(v)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown directive %q", name)
	}
	return nil
}

// splitOperands splits on commas not inside quotes, parens or brackets.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// parseOperand parses one operand in MACRO-like syntax.
func parseOperand(f string, spec vax.OperandSpec) (Arg, error) {
	orig := f
	// Index suffix: base[Rx]
	var index vax.Reg
	indexed := false
	if strings.HasSuffix(f, "]") {
		i := strings.LastIndexByte(f, '[')
		if i < 0 {
			return Arg{}, fmt.Errorf("bad index in %q", orig)
		}
		r, ok := parseReg(f[i+1 : len(f)-1])
		if !ok {
			return Arg{}, fmt.Errorf("bad index register in %q", orig)
		}
		index, indexed = r, true
		f = f[:i]
	}
	wrap := func(a Arg) (Arg, error) {
		if indexed {
			if a.kind != argSpec {
				return Arg{}, fmt.Errorf("label operand cannot be indexed: %q", orig)
			}
			a = Idx(a, index)
		}
		return a, nil
	}

	switch {
	case strings.HasPrefix(f, "S^#"):
		v, err := parseInt(f[3:])
		if err != nil {
			return Arg{}, err
		}
		return wrap(Lit(int32(v)))
	case strings.HasPrefix(f, "I^#"):
		v, err := parseInt(f[3:])
		if err != nil {
			return Arg{}, err
		}
		return wrap(Imm(uint64(v)))
	case strings.HasPrefix(f, "#"):
		v, err := parseInt(f[1:])
		if err != nil {
			return Arg{}, err
		}
		// Prefer the short literal where architecturally allowed.
		if v >= 0 && v <= 63 && spec.Access == vax.AccessRead {
			return wrap(Lit(int32(v)))
		}
		return wrap(Imm(uint64(v)))
	case strings.HasPrefix(f, "@#"):
		if v, err := parseInt(f[2:]); err == nil {
			return wrap(Abs(uint32(v)))
		}
		if name, off, ok := splitSymExpr(f[2:]); ok {
			return wrap(LblAbsOff(name, off))
		}
		return Arg{}, fmt.Errorf("bad absolute operand %q", orig)
	case strings.HasPrefix(f, "-(") && strings.HasSuffix(f, ")"):
		r, ok := parseReg(f[2 : len(f)-1])
		if !ok {
			return Arg{}, fmt.Errorf("bad register in %q", orig)
		}
		return wrap(Dec(r))
	case strings.HasPrefix(f, "@(") && strings.HasSuffix(f, ")+"):
		r, ok := parseReg(f[2 : len(f)-2])
		if !ok {
			return Arg{}, fmt.Errorf("bad register in %q", orig)
		}
		return wrap(IncDef(r))
	case strings.HasPrefix(f, "(") && strings.HasSuffix(f, ")+"):
		r, ok := parseReg(f[1 : len(f)-2])
		if !ok {
			return Arg{}, fmt.Errorf("bad register in %q", orig)
		}
		return wrap(Inc(r))
	case strings.HasPrefix(f, "(") && strings.HasSuffix(f, ")"):
		r, ok := parseReg(f[1 : len(f)-1])
		if !ok {
			return Arg{}, fmt.Errorf("bad register in %q", orig)
		}
		return wrap(Def(r))
	}
	if r, ok := parseReg(f); ok {
		return wrap(R(r))
	}
	// Displacement forms: [@][B^|W^|L^]disp(Rn)
	if strings.HasSuffix(f, ")") {
		deferred := false
		g := f
		if strings.HasPrefix(g, "@") {
			deferred = true
			g = g[1:]
		}
		i := strings.LastIndexByte(g, '(')
		if i < 0 {
			return Arg{}, fmt.Errorf("bad operand %q", orig)
		}
		r, ok := parseReg(g[i+1 : len(g)-1])
		if !ok {
			return Arg{}, fmt.Errorf("bad register in %q", orig)
		}
		dstr := g[:i]
		force := vax.TypeNone
		switch {
		case strings.HasPrefix(dstr, "B^"):
			force, dstr = vax.TypeByte, dstr[2:]
		case strings.HasPrefix(dstr, "W^"):
			force, dstr = vax.TypeWord, dstr[2:]
		case strings.HasPrefix(dstr, "L^"):
			force, dstr = vax.TypeLong, dstr[2:]
		}
		d, err := parseInt(dstr)
		if err != nil {
			return Arg{}, fmt.Errorf("bad displacement in %q: %w", orig, err)
		}
		var a Arg
		if deferred {
			a = DDef(int32(d), r)
		} else {
			a = D(int32(d), r)
		}
		// Honor a forced displacement width.
		switch force {
		case vax.TypeByte:
			a.spec.Mode = pick(deferred, vax.ModeByteDispDef, vax.ModeByteDisp)
		case vax.TypeWord:
			a.spec.Mode = pick(deferred, vax.ModeWordDispDef, vax.ModeWordDisp)
		case vax.TypeLong:
			a.spec.Mode = pick(deferred, vax.ModeLongDispDef, vax.ModeLongDisp)
		}
		return wrap(a)
	}
	if name, off, ok := splitSymExpr(f); ok {
		// Bare label (optionally label+const): PC-relative reference.
		return wrap(LblAddrOff(name, off))
	}
	return Arg{}, fmt.Errorf("cannot parse operand %q", orig)
}

func pick(c bool, t, f vax.AddrMode) vax.AddrMode {
	if c {
		return t
	}
	return f
}

func parseReg(s string) (vax.Reg, bool) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "AP":
		return vax.AP, true
	case "FP":
		return vax.FP, true
	case "SP":
		return vax.SP, true
	case "PC":
		return vax.PC, true
	}
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == 'R' || s[0] == 'r') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return vax.Reg(n), true
		}
	}
	return 0, false
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "^X") || strings.HasPrefix(s, "^x"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// splitSymExpr parses "label", "label+const" or "label-const".
func splitSymExpr(s string) (name string, off int32, ok bool) {
	cut := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			cut = i
			break
		}
	}
	if cut < 0 {
		if isIdent(s) {
			return s, 0, true
		}
		return "", 0, false
	}
	name = s[:cut]
	if !isIdent(name) {
		return "", 0, false
	}
	v, err := parseInt(s[cut:])
	if err != nil {
		return "", 0, false
	}
	return name, int32(v), true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
