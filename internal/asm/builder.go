// Package asm provides two assemblers for the VAX subset described by
// internal/vax: a programmatic Builder used by the synthetic workload
// generators, and a small text assembler (see text.go) for hand-written
// programs. It also provides a disassembler used by tests and tools.
package asm

import (
	"fmt"
	"sort"

	"vax780/internal/vax"
)

// Arg is one operand of an instruction under construction: either a
// concrete specifier or a symbolic reference resolved at Finish time.
type Arg struct {
	spec   vax.Specifier
	label  string // non-empty for symbolic operands
	addend int32  // constant offset applied to a symbolic reference
	kind   argKind
}

type argKind uint8

const (
	argSpec    argKind = iota // concrete specifier
	argPCRel                  // L^label(PC): PC-relative long displacement
	argAbsLbl                 // @#label: absolute address of a label
)

// Lit returns a short-literal operand (0..63).
func Lit(n int32) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeLiteral, Disp: n}} }

// R returns a register operand.
func R(r vax.Reg) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeRegister, Base: r}} }

// Def returns a register-deferred operand (Rn).
func Def(r vax.Reg) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeRegDeferred, Base: r}} }

// Inc returns an autoincrement operand (Rn)+.
func Inc(r vax.Reg) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeAutoInc, Base: r}} }

// Dec returns an autodecrement operand -(Rn).
func Dec(r vax.Reg) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeAutoDec, Base: r}} }

// IncDef returns an autoincrement-deferred operand @(Rn)+.
func IncDef(r vax.Reg) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeAutoIncDef, Base: r}} }

// Imm returns an immediate operand I^#v.
func Imm(v uint64) Arg { return Arg{spec: vax.Specifier{Mode: vax.ModeImmediate, Imm: v}} }

// Abs returns an absolute operand @#addr.
func Abs(addr uint32) Arg {
	return Arg{spec: vax.Specifier{Mode: vax.ModeAbsolute, Imm: uint64(addr)}}
}

// D returns a displacement operand d(Rn), choosing the shortest encoding.
func D(d int32, r vax.Reg) Arg {
	m := vax.ModeLongDisp
	switch {
	case d >= -128 && d <= 127:
		m = vax.ModeByteDisp
	case d >= -32768 && d <= 32767:
		m = vax.ModeWordDisp
	}
	return Arg{spec: vax.Specifier{Mode: m, Base: r, Disp: d}}
}

// DDef returns a displacement-deferred operand @d(Rn).
func DDef(d int32, r vax.Reg) Arg {
	m := vax.ModeLongDispDef
	switch {
	case d >= -128 && d <= 127:
		m = vax.ModeByteDispDef
	case d >= -32768 && d <= 32767:
		m = vax.ModeWordDispDef
	}
	return Arg{spec: vax.Specifier{Mode: m, Base: r, Disp: d}}
}

// Idx adds an index register to a memory operand.
func Idx(a Arg, x vax.Reg) Arg {
	a.spec.Indexed = true
	a.spec.Index = x
	return a
}

// LblAddr returns a PC-relative reference to a label, usable wherever an
// address or data operand is wanted; it assembles as L^disp(PC).
func LblAddr(name string) Arg { return Arg{label: name, kind: argPCRel} }

// LblAddrOff returns a PC-relative reference to label+off.
func LblAddrOff(name string, off int32) Arg {
	return Arg{label: name, addend: off, kind: argPCRel}
}

// LblAbs returns an absolute (@#) reference to a label.
func LblAbs(name string) Arg { return Arg{label: name, kind: argAbsLbl} }

// LblAbsOff returns an absolute (@#) reference to label+off.
func LblAbsOff(name string, off int32) Arg {
	return Arg{label: name, addend: off, kind: argAbsLbl}
}

type fixup struct {
	at     uint32 // image offset of the field to patch
	size   int    // 1, 2 or 4 bytes
	label  string
	addend int32  // constant added to the label's address
	rel    uint32 // if nonzero: PC value the displacement is relative to
	isCase bool   // CASEx table entry: relative to table base
	base   uint32 // table base for case entries
	loc    string // description for error messages
}

// Builder assembles a contiguous image at a fixed origin.
type Builder struct {
	org    uint32
	buf    []byte
	labels map[string]uint32
	fixups []fixup
	errs   []error
}

// NewBuilder returns a Builder assembling at origin org.
func NewBuilder(org uint32) *Builder {
	return &Builder{org: org, labels: make(map[string]uint32)}
}

// PC returns the current assembly address.
func (b *Builder) PC() uint32 { return b.org + uint32(len(b.buf)) }

// Label defines name at the current address.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// SetLabel defines name at an explicit address (for externally-placed data).
func (b *Builder) SetLabel(name string, addr uint32) { b.labels[name] = addr }

// Op assembles an instruction with the given operands. For branch opcodes
// the final argument must be a label name passed via Br; use Op for
// non-branching instructions and Br for branches.
func (b *Builder) Op(name string, args ...Arg) {
	b.emit(name, "", nil, args...)
}

// Br assembles a branch-displacement instruction; target is a label.
func (b *Builder) Br(name, target string, args ...Arg) {
	b.emit(name, target, nil, args...)
}

// Case assembles a CASEx instruction with a displacement table targeting
// the given labels.
func (b *Builder) Case(name string, sel, base, limit Arg, targets ...string) {
	b.emit(name, "", targets, sel, base, limit)
}

func (b *Builder) emit(name, brTarget string, caseTargets []string, args ...Arg) {
	info := vax.LookupName(name)
	if info == nil {
		b.errs = append(b.errs, fmt.Errorf("asm: unknown mnemonic %q", name))
		return
	}
	if len(args) != len(info.Specs) {
		b.errs = append(b.errs, fmt.Errorf("asm: %s wants %d operands, got %d", name, len(info.Specs), len(args)))
		return
	}
	if (brTarget != "") != (info.BranchDisp != vax.TypeNone) {
		b.errs = append(b.errs, fmt.Errorf("asm: %s branch displacement mismatch", name))
		return
	}
	b.buf = append(b.buf, byte(info.Code))
	for i, a := range args {
		dt := info.Specs[i].Type
		switch a.kind {
		case argSpec:
			nb, err := vax.EncodeSpecifier(b.buf, a.spec, dt)
			if err != nil {
				b.errs = append(b.errs, fmt.Errorf("asm: %s operand %d: %w", name, i+1, err))
				return
			}
			b.buf = nb
		case argPCRel:
			// L^disp(PC): one mode byte + 4 displacement bytes.
			b.buf = append(b.buf, 0xE0|byte(vax.PC))
			at := uint32(len(b.buf))
			b.buf = append(b.buf, 0, 0, 0, 0)
			b.fixups = append(b.fixups, fixup{
				at: at, size: 4, label: a.label, addend: a.addend,
				rel: b.org + uint32(len(b.buf)),
				loc: fmt.Sprintf("%s operand %d", name, i+1),
			})
		case argAbsLbl:
			b.buf = append(b.buf, 0x90|byte(vax.PC))
			at := uint32(len(b.buf))
			b.buf = append(b.buf, 0, 0, 0, 0)
			b.fixups = append(b.fixups, fixup{
				at: at, size: 4, label: a.label, addend: a.addend,
				loc: fmt.Sprintf("%s operand %d", name, i+1),
			})
		}
	}
	switch info.BranchDisp {
	case vax.TypeByte:
		at := uint32(len(b.buf))
		b.buf = append(b.buf, 0)
		b.fixups = append(b.fixups, fixup{
			at: at, size: 1, label: brTarget, rel: b.org + uint32(len(b.buf)),
			loc: name + " displacement",
		})
	case vax.TypeWord:
		at := uint32(len(b.buf))
		b.buf = append(b.buf, 0, 0)
		b.fixups = append(b.fixups, fixup{
			at: at, size: 2, label: brTarget, rel: b.org + uint32(len(b.buf)),
			loc: name + " displacement",
		})
	}
	if info.PCClass == vax.PCCase {
		base := b.org + uint32(len(b.buf))
		for _, tgt := range caseTargets {
			at := uint32(len(b.buf))
			b.buf = append(b.buf, 0, 0)
			b.fixups = append(b.fixups, fixup{
				at: at, size: 2, label: tgt, isCase: true, base: base,
				loc: name + " case table",
			})
		}
	} else if len(caseTargets) != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: %s is not a case instruction", name))
	}
}

// Byte, Word, Long, Quad and Space emit raw data.
func (b *Builder) Byte(vals ...byte) { b.buf = append(b.buf, vals...) }

func (b *Builder) Word(vals ...uint16) {
	for _, v := range vals {
		b.buf = append(b.buf, byte(v), byte(v>>8))
	}
}

func (b *Builder) Long(vals ...uint32) {
	for _, v := range vals {
		b.buf = append(b.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

func (b *Builder) Quad(vals ...uint64) {
	for _, v := range vals {
		b.Long(uint32(v), uint32(v>>32))
	}
}

// Space emits n zero bytes.
func (b *Builder) Space(n int) { b.buf = append(b.buf, make([]byte, n)...) }

// Align pads with zeros to the given power-of-two alignment.
func (b *Builder) Align(n int) {
	for b.PC()%uint32(n) != 0 {
		b.buf = append(b.buf, 0)
	}
}

// Org pads with zeros up to an absolute address (which must not be behind
// the current assembly position).
func (b *Builder) Org(addr uint32) error {
	if addr < b.PC() {
		return fmt.Errorf("asm: .org %#x is behind the current address %#x", addr, b.PC())
	}
	b.Space(int(addr - b.PC()))
	return nil
}

// LongLabel emits a 4-byte cell holding the address of a label.
func (b *Builder) LongLabel(name string) { b.LongLabelOff(name, 0) }

// LongLabelOff emits a 4-byte cell holding label+off.
func (b *Builder) LongLabelOff(name string, off int32) {
	at := uint32(len(b.buf))
	b.buf = append(b.buf, 0, 0, 0, 0)
	b.fixups = append(b.fixups, fixup{at: at, size: 4, label: name, addend: off, loc: ".long " + name})
}

// Image is a finished assembly: bytes to be loaded at Org.
type Image struct {
	Org    uint32
	Bytes  []byte
	Labels map[string]uint32
}

// Addr returns the address of a defined label.
func (im *Image) Addr(name string) (uint32, bool) {
	a, ok := im.Labels[name]
	return a, ok
}

// MustAddr returns the address of a label, panicking if undefined.
func (im *Image) MustAddr(name string) uint32 {
	a, ok := im.Labels[name]
	if !ok {
		panic("asm: undefined label " + name)
	}
	return a
}

// Symbols returns label names sorted by address (for disassembly listings).
func (im *Image) Symbols() []string {
	names := make([]string, 0, len(im.Labels))
	for n := range im.Labels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if im.Labels[names[i]] != im.Labels[names[j]] {
			return im.Labels[names[i]] < im.Labels[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Finish resolves fixups and returns the image.
func (b *Builder) Finish() (*Image, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("asm: undefined label %q in %s", f.label, f.loc))
			continue
		}
		var v int64
		switch {
		case f.isCase:
			v = int64(target) + int64(f.addend) - int64(f.base)
		case f.rel != 0:
			v = int64(target) + int64(f.addend) - int64(f.rel)
		default:
			v = int64(target) + int64(f.addend)
		}
		switch f.size {
		case 1:
			if v < -128 || v > 127 {
				b.errs = append(b.errs, fmt.Errorf("asm: byte displacement to %q out of range (%d) in %s", f.label, v, f.loc))
				continue
			}
			b.buf[f.at] = byte(int8(v))
		case 2:
			if v < -32768 || v > 32767 {
				b.errs = append(b.errs, fmt.Errorf("asm: word displacement to %q out of range (%d) in %s", f.label, v, f.loc))
				continue
			}
			b.buf[f.at] = byte(v)
			b.buf[f.at+1] = byte(v >> 8)
		case 4:
			b.buf[f.at] = byte(v)
			b.buf[f.at+1] = byte(v >> 8)
			b.buf[f.at+2] = byte(v >> 16)
			b.buf[f.at+3] = byte(v >> 24)
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	labels := make(map[string]uint32, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Image{Org: b.org, Bytes: b.buf, Labels: labels}, nil
}
