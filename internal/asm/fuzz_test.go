package asm

import "testing"

// FuzzDisasmOne throws arbitrary code bytes and offsets at the
// disassembler. It must never panic; when it accepts an instruction the
// reported size must stay inside the buffer.
func FuzzDisasmOne(f *testing.F) {
	f.Add([]byte{0xD0, 0x01, 0x51}, uint32(0))
	f.Add([]byte{0x11, 0xFE}, uint32(0))
	f.Add([]byte{0x00, 0xD0, 0x01, 0x51}, uint32(1))
	f.Add([]byte{0x31, 0x00}, uint32(0)) // truncated BRW
	f.Add([]byte{0xFF, 0xFF}, uint32(0)) // reserved opcode
	f.Add([]byte{}, uint32(4))           // offset past the end
	f.Add([]byte{0x9E, 0x41, 0x62, 0x53}, uint32(0))
	f.Fuzz(func(t *testing.T, code []byte, off uint32) {
		text, n, err := DisasmOne(code, 0x1000, off)
		if err != nil {
			return
		}
		if text == "" || n <= 0 {
			t.Fatalf("accepted instruction with text %q size %d", text, n)
		}
		if uint64(off)+uint64(n) > uint64(len(code)) {
			t.Fatalf("size %d at offset %d overruns %d code bytes", n, off, len(code))
		}
	})
}
