package asm

import (
	"fmt"
	"strings"

	"vax780/internal/vax"
)

// DisasmOne disassembles the instruction at offset off within code (which
// is loaded at origin org) and returns its text and encoded size.
func DisasmOne(code []byte, org, off uint32) (string, int, error) {
	if uint64(off) > uint64(len(code)) {
		return "", 0, vax.ErrTruncated
	}
	in, err := vax.Decode(code[off:])
	if err != nil {
		return "", 0, err
	}
	var sb strings.Builder
	sb.WriteString(in.Info.Name)
	for i, s := range in.Specs {
		if i == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(s.String())
	}
	if in.Info.BranchDisp != vax.TypeNone {
		target := org + off + uint32(in.Size) + uint32(in.Disp)
		if len(in.Specs) > 0 {
			sb.WriteString(", ")
		} else {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%#x", target)
	}
	return sb.String(), in.Size, nil
}

// Listing disassembles an image into an address-annotated listing. It stops
// at the first undecodable byte (data regions are not distinguished from
// code in a flat image).
func Listing(im *Image) string {
	var sb strings.Builder
	byAddr := make(map[uint32][]string)
	for name, addr := range im.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	off := uint32(0)
	for off < uint32(len(im.Bytes)) {
		for _, l := range byAddr[im.Org+off] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		text, n, err := DisasmOne(im.Bytes, im.Org, off)
		if err != nil {
			fmt.Fprintf(&sb, "%08x:  .byte %#02x ; %v\n", im.Org+off, im.Bytes[off], err)
			return sb.String()
		}
		fmt.Fprintf(&sb, "%08x:  %s\n", im.Org+off, text)
		off += uint32(n)
	}
	return sb.String()
}
