package asm

import (
	"fmt"
	"strings"
	"testing"

	"vax780/internal/vax"
)

// TestDisasmRoundTrip proves, for every opcode in the architecture table,
// that assemble → disassemble → reassemble is the identity on the encoded
// bytes. Each opcode is emitted once with operand forms that cycle through
// the addressing modes whose textual rendering is parseable by the text
// assembler, so the test also pins down the Specifier.String syntax.
//
// Because it iterates vax.All(), this test doubles as a live fixture for
// the exectable analyzer (cmd/vaxlint): an opcode added to the table
// without decode/encode support fails here before it ever reaches the
// simulator.
func TestDisasmRoundTrip(t *testing.T) {
	const org = 0x200

	for _, info := range vax.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			b := NewBuilder(org)
			b.Label("start")
			args := make([]Arg, len(info.Specs))
			for i, os := range info.Specs {
				args[i] = stableArg(i, os)
			}
			switch {
			case info.PCClass == vax.PCCase:
				// Zero case targets: opcode + three specifiers, empty
				// displacement table.
				b.Case(info.Name, args[0], args[1], args[2])
			case info.BranchDisp != vax.TypeNone:
				b.Br(info.Name, "start", args...)
			default:
				b.Op(info.Name, args...)
			}
			im, err := b.Finish()
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}

			text, n, err := DisasmOne(im.Bytes, im.Org, 0)
			if err != nil {
				t.Fatalf("disassemble % x: %v", im.Bytes, err)
			}
			if n != len(im.Bytes) {
				t.Fatalf("disassembler consumed %d of %d bytes of % x", n, len(im.Bytes), im.Bytes)
			}

			// Branch targets disassemble as absolute addresses; rewrite the
			// known target back to its label for the text assembler.
			src := text
			if info.BranchDisp != vax.TypeNone {
				src = strings.Replace(src, fmt.Sprintf("%#x", uint32(org)), "start", 1)
			}
			im2, err := Assemble(org, "start:\n"+src)
			if err != nil {
				t.Fatalf("reassemble %q: %v", src, err)
			}
			if string(im2.Bytes) != string(im.Bytes) {
				t.Fatalf("round trip diverged for %q:\n  first  % x\n  second % x", text, im.Bytes, im2.Bytes)
			}

			// Fixpoint: disassembling the reassembled bytes must reproduce
			// the same text.
			text2, _, err := DisasmOne(im2.Bytes, im2.Org, 0)
			if err != nil {
				t.Fatalf("second disassembly: %v", err)
			}
			if text2 != text {
				t.Fatalf("disassembly not a fixpoint:\n  first  %q\n  second %q", text, text2)
			}
		})
	}
}

// stableArg picks an operand whose textual form survives the round trip,
// cycling modes by position so successive operands of one instruction
// exercise different encodings. Register numbers avoid PC and the
// architectural registers.
func stableArg(i int, os vax.OperandSpec) Arg {
	switch os.Access {
	case vax.AccessRead:
		forms := []Arg{
			Lit(int32(9 + i)),
			Def(vax.R2),
			Inc(vax.R3),
			D(8, vax.R5),
			Idx(Def(vax.R6), vax.R7),
			Imm(200),
		}
		return forms[i%len(forms)]
	case vax.AccessWrite, vax.AccessModify:
		forms := []Arg{
			R(vax.R4),
			Def(vax.R8),
			Dec(vax.R9),
			D(-12, vax.R10),
		}
		return forms[i%len(forms)]
	case vax.AccessAddr:
		forms := []Arg{
			Def(vax.R3),
			D(100, vax.R5),
			Abs(0x1234),
		}
		return forms[i%len(forms)]
	case vax.AccessField:
		forms := []Arg{
			R(vax.R2),
			Def(vax.R11),
		}
		return forms[i%len(forms)]
	}
	return R(vax.R0)
}
