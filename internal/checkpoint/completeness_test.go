package checkpoint

import (
	"reflect"
	"testing"

	"vax780/internal/cache"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/mem"
	"vax780/internal/tb"
	"vax780/internal/vmos"
)

// TestSnapshotCompleteness walks every stateful struct the snapshot
// claims to capture and requires each field to be either (a) named in the
// captured table — it travels in the snapshot — or (b) named in the
// exemption table with a reason it need not travel (rebuilt
// deterministically, re-attached wiring, per-instruction scratch, or
// refused by ExportState). A field added to any of these structs without
// a decision here fails the build's tests: silent checkpoint
// incompleteness is how resumed runs drift. Both tables are also checked
// against the real field set, so a renamed or deleted field cannot leave
// a stale entry behind.
//
// The unexported cpu ibox is covered by the equivalent test inside
// package cpu (it is unreachable by reflection from here).
func TestSnapshotCompleteness(t *testing.T) {
	cases := []struct {
		name     string
		typ      reflect.Type
		captured map[string]string // field -> where it lands in the snapshot
		exempt   map[string]string // field -> why it need not travel
	}{
		{
			name: "cpu.Machine",
			typ:  reflect.TypeOf(cpu.Machine{}),
			captured: map[string]string{
				"R":            "State.R",
				"PSL":          "State.PSL",
				"ipr":          "State.IPR",
				"MMU":          "State.MMU",
				"Mem":          "State.Mem",
				"SBI":          "State.SBI",
				"WB":           "State.WB",
				"Cache":        "State.Cache",
				"TLB":          "State.TB",
				"ib":           "State.IB",
				"cycle":        "State.Cycle",
				"instret":      "State.Instret",
				"upc":          "State.UPC",
				"gate":         "State.Gate",
				"irqs":         "State.IRQs",
				"nextIRQ":      "State.NextIRQ",
				"lastPCChange": "State.LastPCChange",
				"patchCtr":     "State.PatchCtr",
				"wdLastRetire": "State.WDLastRetire",
				"mcPending":    "State.MCPending",
				"mcActive":     "State.MCActive",
				"pendMC":       "State.MCCause + State.MCInfo",
				"unaligned":    "State.HW",
				"sirrRequests": "State.HW",
				"irqDelivered": "State.HW",
				"exceptions":   "State.HW",
				"ctxSwitches":  "State.HW",
				"machineChecks": "State.HW",
				"mcLost":        "State.HW",
				"mcByCause":     "State.HW",
			},
			exempt: map[string]string{
				"cfg":           "travels as Meta.Machine; the resume path rebuilds with cpu.New",
				"ops":           "per-instruction decode scratch, rewritten before any use",
				"nops":          "per-instruction decode scratch",
				"instr":         "per-instruction decode scratch",
				"instPC":        "per-instruction decode scratch",
				"instAborted":   "false at every instruction boundary (snapshots are taken there)",
				"inExc":         "false at every instruction boundary",
				"halted":        "ExportState refuses halted machines",
				"haltReason":    "ExportState refuses halted machines",
				"runErr":        "ExportState refuses failed machines",
				"probe":         "attachment; the resume path re-attaches the monitor",
				"plane":         "attachment; rebuilt from Meta.Fault, stream positions travel as FaultState",
				"csSample":      "attachment derived from the plane",
				"wdLimit":       "supervisor configuration, re-armed by the supervisor on resume",
				"OnInstruction": "attachment; vmos re-installs its scheduler hook on boot",
			},
		},
		{
			name: "vmos.System",
			typ:  reflect.TypeOf(vmos.System{}),
			captured: map[string]string{
				"nextClock":  "State.NextClock",
				"termEvents": "State.TermEvents",
				"termNext":   "State.TermNext",
				"diskSeen":   "State.DiskSeen",
				"diskDue":    "State.DiskDue",
				"lastCycle":  "State.LastCycle",
				"lastPCB":    "State.LastPCB",
				"cpuTime":    "State.CPUTime",
			},
			exempt: map[string]string{
				"cfg":       "the resume path rebuilds the system from the same Config",
				"m":         "the machine travels as Snapshot.CPU",
				"kern":      "kernel image is laid down deterministically by Boot; bytes travel in memory",
				"procs":     "process set is regenerated deterministically from the profile",
				"nullPCB":   "assigned deterministically by Boot",
				"nextFrame": "frame allocator is deterministic given the same boot sequence",
				"booted":    "the resume path boots before importing",
			},
		},
		{
			name: "cache.Cache",
			typ:  reflect.TypeOf(cache.Cache{}),
			captured: map[string]string{
				"sets":      "State.Lines",
				"stamp":     "State.Stamp",
				"stats":     "State.Stats",
				"faultAddr": "State.FaultAddr",
				"hasFault":  "State.HasFault",
			},
			exempt: map[string]string{
				"cfg":      "travels as part of Meta.Machine",
				"setShift": "derived from cfg by New",
				"setMask":  "derived from cfg by New",
				"tracer":   "attachment",
				"inject":   "attachment derived from the fault plane",
			},
		},
		{
			name: "tb.TB",
			typ:  reflect.TypeOf(tb.TB{}),
			captured: map[string]string{
				"halves":   "State.Halves",
				"stats":    "State.Stats",
				"faultVA":  "State.FaultVA",
				"hasFault": "State.HasFault",
			},
			exempt: map[string]string{
				"tracer": "attachment",
				"inject": "attachment derived from the fault plane",
			},
		},
		{
			name: "mem.Memory",
			typ:  reflect.TypeOf(mem.Memory{}),
			captured: map[string]string{
				"data":     "MemoryState.Data",
				"fault":    "MemoryState.Fault",
				"hasFault": "MemoryState.HasFault",
			},
			exempt: map[string]string{
				"inject": "attachment derived from the fault plane",
			},
		},
		{
			name: "mem.SBI",
			typ:  reflect.TypeOf(mem.SBI{}),
			captured: map[string]string{
				"busyUntil":  "SBIState.BusyUntil",
				"stats":      "SBIState.Stats",
				"faultCycle": "SBIState.FaultCycle",
				"hasFault":   "SBIState.HasFault",
			},
			exempt: map[string]string{
				"cfg":    "travels as part of Meta.Machine",
				"inject": "attachment derived from the fault plane",
			},
		},
		{
			name: "mem.WriteBuffer",
			typ:  reflect.TypeOf(mem.WriteBuffer{}),
			captured: map[string]string{
				"drains": "WriteBufferState.Drains",
				"stats":  "WriteBufferState.Stats",
			},
			exempt: map[string]string{
				"sbi":   "wiring to the rebuilt SBI",
				"depth": "travels as part of Meta.Machine",
			},
		},
		{
			name: "fault.Plane",
			typ:  reflect.TypeOf(fault.Plane{}),
			captured: map[string]string{
				"streams": "fault.State.Streams",
				"stats":   "fault.State.Stats",
			},
			exempt: map[string]string{
				"sched":    "rebuilt from Meta.Fault by NewPlane",
				"observer": "attachment",
			},
		},
		{
			name: "core.Monitor",
			typ:  reflect.TypeOf(core.Monitor{}),
			captured: map[string]string{
				"hist":      "MonitorState.Hist",
				"running":   "MonitorState.Running",
				"overflow":  "MonitorState.Overflow",
				"maxBucket": "MonitorState.MaxBucket",
			},
			exempt: map[string]string{},
		},
	}

	for _, c := range cases {
		fields := make(map[string]bool, c.typ.NumField())
		for i := 0; i < c.typ.NumField(); i++ {
			fields[c.typ.Field(i).Name] = true
		}
		for name := range c.captured {
			if !fields[name] {
				t.Errorf("%s: captured table names unknown field %q (renamed or removed?)", c.name, name)
			}
			if _, both := c.exempt[name]; both {
				t.Errorf("%s: field %q is both captured and exempted", c.name, name)
			}
		}
		for name := range c.exempt {
			if !fields[name] {
				t.Errorf("%s: exemption table names unknown field %q (renamed or removed?)", c.name, name)
			}
		}
		for name := range fields {
			if c.captured[name] == "" && c.exempt[name] == "" {
				t.Errorf("%s: field %q is neither captured by the snapshot nor exempted — extend the State struct or add a justified exemption", c.name, name)
			}
		}
	}
}
