package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointLoad feeds arbitrary bytes to the snapshot decoder. The
// contract: Decode never panics; it returns either an error or a
// snapshot, and a snapshot it returns re-encodes successfully (no
// half-valid states escape). Seeds cover the interesting neighborhoods:
// a pristine snapshot, truncations, and bit flips in each region.
func FuzzCheckpointLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot(42_000)); err != nil {
		f.Fatalf("Encode: %v", err)
	}
	valid := buf.Bytes()

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	for _, off := range []int{0, 8, 12, headerLen + 5, len(valid) - 1} {
		b := append([]byte(nil), valid...)
		b[off] ^= 0xff
		f.Add(b)
	}
	f.Add(append(append([]byte(nil), valid...), 0xba))
	f.Add([]byte("VAX780CP but then garbage follows the magic number here"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatalf("Decode returned both a snapshot and error %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := Encode(&out, s); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
	})
}
